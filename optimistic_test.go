package ytcdn

import (
	"fmt"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// This file is the optimistic (Time Warp) execution property suite: the
// speculative mode must be bit-identical to the sequential single-engine
// run — not within tolerance, identical — at every shard count and both
// sharding granularities, with and without rollbacks on the path.

// TestOptimisticParity is the headline acceptance gate: optimistic runs
// at shards {2, 5} × both granularities, at two window lengths, must be
// bit-identical to the sequential run in everything the analysis side
// can observe (SelectionMetrics, session counts, per-dataset traces
// record by record) and in the rendered tables.
func TestOptimisticParity(t *testing.T) {
	base := Options{Scale: 0.05, Span: 7 * 24 * time.Hour}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	wantRender := parityRender(t, base)

	for _, by := range []ShardBy{ShardByVP, ShardBySubnet} {
		for _, shards := range []int{2, 5} {
			for _, window := range []time.Duration{6 * time.Hour, 37 * time.Hour} {
				label := fmt.Sprintf("optimistic shards=%d by=%s window=%v", shards, by, window)
				opts := base
				opts.SimShards = shards
				opts.ShardBy = by
				opts.OptimisticWindow = window
				s, err := Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				assertStudiesIdentical(t, label, s, ref)
				if got := parityRender(t, opts); got != wantRender {
					t.Errorf("%s: rendered tables diverged from the sequential engine", label)
				}
			}
		}
	}
}

// TestOptimisticForcedRollback drives every window down the rollback
// path (the test-only force knob fails each validation) and requires
// the sequential re-execution to restore bit-identical results: the
// journal undo plus RNG rewinds must reconstruct LoadTracker, placement,
// counter and sink state exactly at every horizon.
func TestOptimisticForcedRollback(t *testing.T) {
	base := Options{Scale: 0.02, Span: 3 * 24 * time.Hour, Seed: 7}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.SimShards = 5
	opts.ShardBy = ShardBySubnet
	opts.OptimisticWindow = 5 * time.Hour
	opts.optimisticForceRollback = true
	reg := obs.NewRegistry()
	opts.Metrics = reg
	s, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertStudiesIdentical(t, "forced-rollback optimistic", s, ref)

	snap := reg.Snapshot()
	windows := int64(base.Span / opts.OptimisticWindow)
	if base.Span%opts.OptimisticWindow != 0 {
		windows++
	}
	if got := snap.Counters["sim.optimistic.violations"]; got != windows {
		t.Errorf("violations = %d, want %d (every window forced down the rollback path)", got, windows)
	}
	if got := snap.Counters["sim.runner.rollbacks"]; got != windows {
		t.Errorf("rollbacks = %d, want %d", got, windows)
	}
	if got := snap.Counters["sim.runner.commits"]; got != windows {
		t.Errorf("commits = %d, want %d (every window still commits after its re-run)", got, windows)
	}
	// The final committed horizon covers the whole span (the last
	// window may overshoot it: horizons advance in whole windows).
	if got := snap.Gauges["sim.optimistic.horizon_ns"]; time.Duration(got) < base.Span {
		t.Errorf("final commit horizon = %v, want >= %v", time.Duration(got), base.Span)
	}

	// Selector end state must match the sequential run exactly: the
	// journal undo restored loads and counters at every rollback.
	wSpills, wHot, wMiss := ref.Selector.Counters()
	gSpills, gHot, gMiss := s.Selector.Counters()
	if gSpills != wSpills || gHot != wHot || gMiss != wMiss {
		t.Errorf("selector counters (spills=%d hotspots=%d misses=%d), want (%d %d %d)",
			gSpills, gHot, gMiss, wSpills, wHot, wMiss)
	}
}

// TestOptimisticMetricsParity pins the zero-perturbation contract
// across the optimistic protocol: an instrumented optimistic run is
// bit-identical to an uninstrumented one, and its deterministic "sim.*"
// aggregates match the sequential run's (only the protocol telemetry —
// rollbacks, commits, violations, horizon — may differ between
// protocols).
func TestOptimisticMetricsParity(t *testing.T) {
	base := Options{Scale: 0.02, Span: 2 * 24 * time.Hour, Seed: 3}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.SimShards = 2
	opts.OptimisticWindow = 6 * time.Hour
	plain, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	inst := opts
	inst.Metrics = obs.NewRegistry()
	got, err := Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	assertStudiesIdentical(t, "optimistic instrumented vs plain", got, plain)
	assertStudiesIdentical(t, "optimistic vs sequential", got, ref)

	seqReg := obs.NewRegistry()
	seqOpts := base
	seqOpts.Metrics = seqReg
	if _, err := Run(seqOpts); err != nil {
		t.Fatal(err)
	}
	want := seqReg.Snapshot()
	snap := inst.Metrics.Snapshot()
	protocol := map[string]bool{
		// Schedule-/protocol-shape telemetry differs by construction.
		"sim.runner.windows":        true,
		"sim.runner.merged_events":  true,
		"sim.runner.rollbacks":      true,
		"sim.runner.commits":        true,
		"sim.optimistic.violations": true,
	}
	for name, v := range want.Counters {
		if protocol[name] {
			continue
		}
		if got := snap.Counters[name]; got != v {
			t.Errorf("counter %s = %d, want %d (sequential)", name, got, v)
		}
	}
}

// TestOptimisticValidationErrors covers the option misconfigurations
// the optimistic mode must reject loudly instead of silently dropping.
func TestOptimisticValidationErrors(t *testing.T) {
	base := Options{Scale: 0.002, Span: 24 * time.Hour}
	for name, mutate := range map[string]func(*Options){
		"negative window":       func(o *Options) { o.OptimisticWindow = -time.Second },
		"no shards":             func(o *Options) { o.OptimisticWindow = time.Minute },
		"one shard":             func(o *Options) { o.SimShards = 1; o.OptimisticWindow = time.Minute },
		"sync window no shards": func(o *Options) { o.SyncWindow = time.Minute },
		"sync window one shard": func(o *Options) { o.SimShards = 1; o.SyncWindow = time.Minute },
		"both windows": func(o *Options) {
			o.SimShards = 2
			o.SyncWindow = time.Minute
			o.OptimisticWindow = time.Minute
		},
	} {
		opts := base
		mutate(&opts)
		if _, err := Run(opts); err == nil {
			t.Errorf("%s: Run accepted %+v", name, opts)
		}
	}

	// RunMany surfaces the same validation errors (index order).
	bad := base
	bad.OptimisticWindow = time.Minute // SimShards unset
	if _, err := RunMany([]Options{base, bad}, 1); err == nil {
		t.Error("RunMany accepted an OptimisticWindow without shards")
	}
}

// TestOptimisticMetamorphic extends the metamorphic sharding suite to
// the optimistic protocol: randomized configurations (seed, scale,
// span, policy, mid-run switch, shard count, granularity, window) must
// all land bit-identical on the sequential ground truth.
func TestOptimisticMetamorphic(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic suite runs several studies; skipped in -short")
	}
	meta := stats.NewRNG(20110215)
	policies := PolicyNames()
	const rounds = 3
	for round := 0; round < rounds; round++ {
		base := Options{
			Seed:  meta.Int63(),
			Scale: 0.004 + 0.008*meta.Float64(),
			Span:  time.Duration(36+meta.Intn(36)) * time.Hour,
		}
		name := policies[meta.Intn(len(policies))]
		if name != "paper" {
			p, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			base.Policy = p
		}
		if meta.Bool(0.5) {
			to, err := PolicyByName(policies[meta.Intn(len(policies))])
			if err != nil {
				t.Fatal(err)
			}
			base.PolicySwitch = &PolicySwitch{At: base.Span / 2, To: to}
			base.Policy = nil
		}
		label := fmt.Sprintf("round %d (seed=%d scale=%.4f span=%v policy=%s switch=%v)",
			round, base.Seed, base.Scale, base.Span, name, base.PolicySwitch != nil)

		ref, err := Run(base)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}

		opt := base
		opt.SimShards = 2 + meta.Intn(6)
		opt.ShardBy = []ShardBy{ShardByVP, ShardBySubnet}[meta.Intn(2)]
		opt.OptimisticWindow = time.Duration(3+meta.Intn(12)) * time.Hour
		s, err := Run(opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertStudiesIdentical(t, fmt.Sprintf("%s optimistic shards=%d by=%s window=%v",
			label, opt.SimShards, opt.ShardBy, opt.OptimisticWindow), s, ref)
	}
}

// TestOptimisticJournalUndo is the forced-violation state-restore unit
// test at the coordinator level: it pins that a rolled-back window
// leaves no observable residue — a run whose every window rolls back
// must leave the selector's counters, the placement's pull count and
// the capture totals exactly where an untouched sequential run puts
// them (assertStudiesIdentical covers traces; this covers the shared
// engine state the traces do not expose directly).
func TestOptimisticJournalUndo(t *testing.T) {
	base := Options{Scale: 0.01, Span: 24 * time.Hour, Seed: 99}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.SimShards = 2
	opts.OptimisticWindow = 3 * time.Hour
	opts.optimisticForceRollback = true
	s, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertStudiesIdentical(t, "journal undo", s, ref)
	if got, want := s.Placement.Pulls(), ref.Placement.Pulls(); got != want {
		t.Errorf("pull-throughs = %d, want %d", got, want)
	}
}
