package ytcdn

// One benchmark per table and figure of the paper. Each bench shares a
// single reduced-scale study (building it and running CBG geolocation
// once), then measures the cost of regenerating its table or figure
// from the traces, reporting the experiment's headline metric via
// b.ReportMetric so `go test -bench` output doubles as a compact
// reproduction summary.

import (
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/experiments"
)

var (
	benchOnce sync.Once
	benchH    *experiments.Harness
	benchErr  error
)

// benchHarness builds the shared study: a full week (the diurnal and
// video-of-the-day structure needs all seven days) at 4% volume. The
// expensive shared setup (CBG geolocation, campaigns, sessionization)
// warms through the parallel harness at one worker per core; the
// cached artifacts are bit-identical to a sequential warm.
func benchHarness(b *testing.B) *experiments.Harness {
	b.Helper()
	benchOnce.Do(func() {
		var s *Study
		s, benchErr = Run(Options{Scale: 0.04, Span: 7 * 24 * time.Hour, Parallelism: runtime.NumCPU()})
		if benchErr != nil {
			return
		}
		benchH = s.Experiments()
		benchErr = benchH.Warm()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchH
}

// benchWarm measures the full analysis warm (geolocation + campaigns +
// dataset pipelines) from cold caches at the given pool size, sharing
// one study across iterations. Comparing the two pool sizes shows the
// wall-clock win of the concurrent runtime.
func benchWarm(b *testing.B, parallelism int) {
	s, err := Run(Options{Scale: 0.02, Span: 7 * 24 * time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	in := s.Experiments().Input()
	in.Parallelism = parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.New(in).Warm(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmSequential(b *testing.B) { benchWarm(b, 1) }

func BenchmarkWarmParallel(b *testing.B) { benchWarm(b, runtime.NumCPU()) }

func BenchmarkTableI(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var flows int
	for i := 0; i < b.N; i++ {
		res, err := h.TableI()
		if err != nil {
			b.Fatal(err)
		}
		flows = 0
		for _, row := range res.Rows {
			flows += row.Flows
		}
	}
	b.ReportMetric(float64(flows), "flows")
}

func BenchmarkTableII(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var googleByteFrac float64
	for i := 0; i < b.N; i++ {
		res, err := h.TableII()
		if err != nil {
			b.Fatal(err)
		}
		googleByteFrac = res.Rows[0].Breakdown.Google.ByteFrac
	}
	b.ReportMetric(googleByteFrac*100, "us_google_bytes_%")
}

func BenchmarkTableIII(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var na int
	for i := 0; i < b.N; i++ {
		res, err := h.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		na = res.Rows[0].Counts.NorthAmerica
	}
	b.ReportMetric(float64(na), "us_na_servers")
}

func BenchmarkFig02RTTCDF(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig02RTT()
		if err != nil {
			b.Fatal(err)
		}
		med = res.RTTms[DatasetUSCampus].Median()
	}
	b.ReportMetric(med, "us_median_rtt_ms")
}

func BenchmarkFig03CBGRadius(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig03CBGRadius()
		if err != nil {
			b.Fatal(err)
		}
		med = res.US.Median()
	}
	b.ReportMetric(med, "us_median_radius_km")
}

func BenchmarkFig04FlowSizes(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var kink float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig04FlowSizes()
		if err != nil {
			b.Fatal(err)
		}
		kink = res.ControlFrac[DatasetUSCampus]
	}
	b.ReportMetric(kink*100, "control_flows_%")
}

func BenchmarkFig05SessionGapT(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig05SessionGapT()
		if err != nil {
			b.Fatal(err)
		}
		spread = res.Hist[time.Second][0] - res.Hist[300*time.Second][0]
	}
	b.ReportMetric(spread, "t1_vs_t300_singleflow_delta")
}

func BenchmarkFig06FlowsPerSession(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig06FlowsPerSession()
		if err != nil {
			b.Fatal(err)
		}
		frac = res.SingleFlowFrac(DatasetUSCampus)
	}
	b.ReportMetric(frac, "us_singleflow_frac")
}

func BenchmarkFig07BytesByRTT(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig07BytesByRTT()
		if err != nil {
			b.Fatal(err)
		}
		share = res.PreferredShare[DatasetUSCampus]
	}
	b.ReportMetric(share*100, "us_preferred_share_%")
}

func BenchmarkFig08BytesByDistance(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig08BytesByDistance()
		if err != nil {
			b.Fatal(err)
		}
		share = res.ClosestFiveShare[DatasetUSCampus]
	}
	b.ReportMetric(share*100, "us_closest5_share_%")
}

func BenchmarkFig09NonPreferredHourly(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig09NonPreferredHourly()
		if err != nil {
			b.Fatal(err)
		}
		med = res.Fracs[DatasetEU2].Median()
	}
	b.ReportMetric(med, "eu2_hourly_nonpref_median")
}

func BenchmarkFig10aSingleFlow(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var nonPref float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig10SessionPatterns()
		if err != nil {
			b.Fatal(err)
		}
		nonPref = res.Single[DatasetEU2].NonPreferred
	}
	b.ReportMetric(nonPref, "eu2_singleflow_nonpref")
}

func BenchmarkFig10bTwoFlow(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var pn float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig10SessionPatterns()
		if err != nil {
			b.Fatal(err)
		}
		pn = res.Two[DatasetEU1ADSL].PrefNonPref
	}
	b.ReportMetric(pn, "eu1adsl_pref_nonpref_frac")
}

func BenchmarkFig11EU2Diurnal(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var day float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig11EU2Diurnal()
		if err != nil {
			b.Fatal(err)
		}
		day, _ = res.DayNightLocalFrac()
	}
	b.ReportMetric(day, "eu2_daytime_local_frac")
}

func BenchmarkFig12SubnetBias(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var net3 float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig12SubnetBias()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Shares {
			if s.Name == "Net-3" {
				net3 = s.NonPrefFrac
			}
		}
	}
	b.ReportMetric(net3*100, "net3_nonpref_share_%")
}

func BenchmarkFig13VideoNonPref(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var once float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig13VideoNonPref()
		if err != nil {
			b.Fatal(err)
		}
		once = res.ExactlyOnce[DatasetEU1Campus]
	}
	b.ReportMetric(once*100, "exactly_once_%")
}

func BenchmarkFig14HotVideos(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig14HotVideos()
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, v := range res.Videos {
			for _, x := range v.All {
				if x > peak {
					peak = x
				}
			}
		}
	}
	b.ReportMetric(peak, "hot_video_peak_per_hour")
}

func BenchmarkFig15ServerLoad(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig15ServerLoad()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.PeakRatio()
	}
	b.ReportMetric(ratio, "max_over_avg_load")
}

func BenchmarkFig16Video1Server(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var redirected float64
	for i := 0; i < b.N; i++ {
		res, err := h.Fig16Video1Server()
		if err != nil {
			b.Fatal(err)
		}
		redirected = res.Pattern.FirstPrefOnly.Total()
	}
	b.ReportMetric(redirected, "redirected_sessions")
}

func BenchmarkFig17FirstAccess(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var penalty float64
	for i := 0; i < b.N; i++ {
		fig17, _, err := h.PlanetLab()
		if err != nil {
			b.Fatal(err)
		}
		if len(fig17.Samples) >= 2 && fig17.Samples[1].RTTMs > 0 {
			penalty = fig17.Samples[0].RTTMs / fig17.Samples[1].RTTMs
		}
	}
	b.ReportMetric(penalty, "first_access_rtt_ratio")
}

func BenchmarkFig18RTTRatio(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	var gt1 float64
	for i := 0; i < b.N; i++ {
		_, fig18, err := h.PlanetLab()
		if err != nil {
			b.Fatal(err)
		}
		gt1 = 1 - fig18.Ratios.At(1.0000001)
	}
	b.ReportMetric(gt1, "frac_nodes_ratio_gt1")
}

// BenchmarkSimulationWeek measures raw simulation throughput: one
// simulated week of the five networks per iteration.
func BenchmarkSimulationWeek(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := Run(Options{Scale: 0.02, Span: 7 * 24 * time.Hour, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.TotalFlows()), "flows")
	}
}

// BenchmarkAblationSelectionPolicies compares the full selection
// engine against the pre-2010 design of Adhikari et al. [7] — no
// load-adaptive mechanisms — measuring the non-preferred share the
// mechanisms add.
func BenchmarkAblationSelectionPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sel := core.DefaultConfig()
		sel.DNSLoadBalancing = false
		sel.HotspotRedirection = false
		s, err := Run(Options{Scale: 0.02, Span: 3 * 24 * time.Hour, Selector: &sel})
		if err != nil {
			b.Fatal(err)
		}
		spills, hotspots, misses := s.Selector.Counters()
		if spills != 0 || hotspots != 0 {
			b.Fatal("ablated mechanisms still firing")
		}
		b.ReportMetric(float64(misses), "residual_miss_redirects")
	}
}

// BenchmarkFullStudyAndAllExperiments is the end-to-end cost of
// regenerating the complete paper at reduced scale.
func BenchmarkFullStudyAndAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := Run(Options{Scale: 0.02, Span: 7 * 24 * time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Experiments().RunAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullStudyDiskStore is the same end-to-end run with capture
// spilled to the disk-backed tracestore: the cost of the columnar
// round trip in exchange for flat RSS at paper scale. Small segments
// force many spills, the worst case for the disk path.
func BenchmarkFullStudyDiskStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := Run(Options{
			Scale: 0.02, Span: 7 * 24 * time.Hour,
			Store: &StoreOptions{Dir: b.TempDir(), SegmentRecords: 4096},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Experiments().RunAll(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.TotalFlows()), "flows")
	}
}
