module github.com/ytcdn-sim/ytcdn

go 1.21
