package ytcdn

import (
	"bytes"
	"io"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
)

// TestStoreParity is the disk-store acceptance gate: the same study
// run through capture.MemSink and through the disk-backed tracestore
// must produce byte-identical tables and figures, because the analysis
// consumes an unordered record multiset either way.
func TestStoreParity(t *testing.T) {
	opts := Options{Scale: 0.01, Span: 2 * 24 * time.Hour, Seed: 99}

	memStudy, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	diskOpts := opts
	diskOpts.Store = &StoreOptions{Dir: t.TempDir(), SegmentRecords: 1024}
	diskStudy, err := Run(diskOpts)
	if err != nil {
		t.Fatal(err)
	}

	if memStudy.TotalFlows() != diskStudy.TotalFlows() {
		t.Fatalf("TotalFlows: mem %d, disk %d", memStudy.TotalFlows(), diskStudy.TotalFlows())
	}
	if dir := diskStudy.StoreDir(); dir == "" {
		t.Error("disk study must report its store directory")
	}
	if memStudy.StoreDir() != "" {
		t.Error("in-memory study must report no store directory")
	}

	// Per-dataset record multisets must match (the store reorders
	// within segments by start time, so compare via sorted copies).
	for _, name := range DatasetNames() {
		memRecs := memStudy.Trace(name)
		diskRecs, err := capture.Collect(diskStudy.TraceIter(name))
		if err != nil {
			t.Fatal(err)
		}
		if len(memRecs) != len(diskRecs) {
			t.Fatalf("%s: mem %d records, disk %d", name, len(memRecs), len(diskRecs))
		}
		counts := make(map[capture.FlowRecord]int, len(memRecs))
		for _, r := range memRecs {
			counts[r]++
		}
		for _, r := range diskRecs {
			counts[r]--
		}
		for r, c := range counts {
			if c != 0 {
				t.Fatalf("%s: record multiset differs at %+v (delta %d)", name, r, c)
			}
		}
	}

	var memOut, diskOut bytes.Buffer
	if err := memStudy.Experiments().RunAll(&memOut); err != nil {
		t.Fatal(err)
	}
	if err := diskStudy.Experiments().RunAll(&diskOut); err != nil {
		t.Fatal(err)
	}
	if memOut.String() != diskOut.String() {
		t.Errorf("rendered output differs between MemSink and tracestore paths:\n--- mem ---\n%s\n--- disk ---\n%s",
			memOut.String(), diskOut.String())
	}
}

// TestStoreStudyTraceAccessors exercises the disk-backed Study surface
// used by examples and cmds.
func TestStoreStudyTraceAccessors(t *testing.T) {
	s, err := Run(Options{
		Scale: 0.002, Span: 24 * time.Hour,
		Store: &StoreOptions{Dir: t.TempDir(), SegmentRecords: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, name := range DatasetNames() {
		recs := s.Trace(name)
		it := s.TraceIter(name)
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if n != len(recs) {
			t.Errorf("%s: TraceIter %d records, Trace %d", name, n, len(recs))
		}
		total += n
	}
	if total != s.TotalFlows() {
		t.Errorf("sum of traces %d, TotalFlows %d", total, s.TotalFlows())
	}
}

// TestAnalysisBoundedMemory is the regression gate for the streaming
// Google-AS pipeline: running the ENTIRE experiment suite over a
// disk-backed study — including the sessionizing figures, which now
// consume StreamSessions over ScanByStart instead of a materialized
// Google subset — must never buffer more than a small constant number
// of decoded segments per dataset. The bound is expressed against the
// decoded size of the full trace: if someone reintroduces a
// materializing pass (Collect, GoogleFilterIter, Sessionize over a
// collected slice) through the reader, the peak jumps to ~100% and
// this test fails loudly.
func TestAnalysisBoundedMemory(t *testing.T) {
	const segRecords = 2048
	opts := Options{Scale: 0.05, Span: 7 * 24 * time.Hour, Parallelism: 4}
	opts.Store = &StoreOptions{Dir: t.TempDir(), SegmentRecords: segRecords}
	s, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Experiments().RunAll(io.Discard); err != nil {
		t.Fatal(err)
	}

	// ~64 bytes per decoded record (the reader's own gauge constant),
	// ignoring the small shared dictionary strings.
	approxTotal := s.store.TotalRecords() * 64
	peak := s.store.PeakBufferedBytes()
	if peak == 0 {
		t.Fatal("peak buffered bytes is zero; the suite did not stream from the store")
	}
	// Generous ceiling: 20% of the trace (measured ~5%). Materializing
	// any full dataset would exceed it several times over.
	if limit := approxTotal / 5; peak > limit {
		t.Errorf("peak buffered bytes = %d, want <= %d (~20%% of the %d-record trace); a pass is materializing the trace",
			peak, limit, s.store.TotalRecords())
	}
}
