package ytcdn

import (
	"fmt"
	"path/filepath"
	"strings"

	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/experiments"
)

// NamedPolicy pairs a selection policy with the label it carries in
// comparison tables and command-line flags.
type NamedPolicy struct {
	Name   string
	Policy core.SelectionPolicy
}

// BuiltinPolicies returns fresh instances of the four built-in
// selection policies, in canonical order:
//
//   - paper: the reverse-engineered 2010 YouTube behaviour
//     (RTT-preferred with adaptive DNS spilling, miss and hot-spot
//     redirection) — the default
//   - proximity: pure RTT-preferred, no load adaptation
//   - least-loaded: the least-loaded of the closest DCs wins
//   - client-race: go-with-the-winner client-side racing
func BuiltinPolicies() []NamedPolicy {
	return []NamedPolicy{
		{"paper", core.DefaultPaperPolicy()},
		{"proximity", core.ProximityOnly{}},
		{"least-loaded", &core.LeastLoadedDC{}},
		{"client-race", &core.ClientRace{}},
	}
}

// PolicyNames returns the built-in policy names in canonical order.
func PolicyNames() []string {
	builtins := BuiltinPolicies()
	out := make([]string, len(builtins))
	for i, np := range builtins {
		out[i] = np.Name
	}
	return out
}

// PolicyByName resolves a built-in policy by its name (as used by the
// -policy command-line flags).
func PolicyByName(name string) (core.SelectionPolicy, error) {
	for _, np := range BuiltinPolicies() {
		if np.Name == name {
			return np.Policy, nil
		}
	}
	return nil, fmt.Errorf("ytcdn: unknown policy %q (built-ins: %s)", name, strings.Join(PolicyNames(), ", "))
}

// ComparePolicies runs one study per policy over an identical
// workload — same seed, scale, span and world configuration — and
// tabulates each policy's ground-truth selection outcomes: the
// preferred-DC fraction, mean base RTT to the serving server,
// redirect-chain lengths, and the spill/hotspot/miss mechanism
// counters. With no policies given it compares the four built-ins.
//
// The studies run concurrently through RunMany (bounded by
// base.Parallelism), and every row is bit-reproducible: each study's
// randomness forks from the shared seed independently of scheduling
// order, so row i is identical to a sequential Run with that policy.
// base.Policy and base.PolicySwitch must be unset — the compared
// policies replace them (a PolicySwitch timeline can itself be
// compared by wrapping it in the per-run Options instead). When
// base.Store is set, each policy's capture spills to a per-policy
// subdirectory of base.Store.Dir.
func ComparePolicies(base Options, policies ...NamedPolicy) (*experiments.PolicyComparison, error) {
	if base.Policy != nil || base.PolicySwitch != nil {
		return nil, fmt.Errorf("ytcdn: ComparePolicies needs a policy-free base Options")
	}
	if len(policies) == 0 {
		policies = BuiltinPolicies()
	}
	seen := make(map[string]bool, len(policies))
	optss := make([]Options, len(policies))
	for i, np := range policies {
		if np.Name == "" || np.Policy == nil {
			return nil, fmt.Errorf("ytcdn: policy %d: Name and Policy must be set", i)
		}
		if seen[np.Name] {
			return nil, fmt.Errorf("ytcdn: duplicate policy name %q", np.Name)
		}
		seen[np.Name] = true
		optss[i] = base
		optss[i].Policy = np.Policy
		if base.Store != nil {
			st := *base.Store
			st.Dir = filepath.Join(st.Dir, np.Name)
			optss[i].Store = &st
		}
	}

	studies, err := RunMany(optss, base.Parallelism)
	if err != nil {
		return nil, err
	}

	cmp := &experiments.PolicyComparison{Rows: make([]experiments.PolicyComparisonRow, len(studies))}
	for i, s := range studies {
		spills, hotspots, misses := s.Selector.Counters()
		m := s.Selection
		cmp.Rows[i] = experiments.PolicyComparisonRow{
			Policy:          policies[i].Name,
			Flows:           s.TotalFlows(),
			Chains:          m.Chains,
			PreferredFrac:   m.PreferredFrac(),
			MeanServedRTTms: m.MeanServedRTTms(),
			MeanRedirects:   m.MeanRedirects(),
			MaxChain:        m.MaxChain,
			RaceWins:        m.RaceWins,
			Spills:          spills,
			Hotspots:        hotspots,
			Misses:          misses,
		}
	}
	return cmp, nil
}
