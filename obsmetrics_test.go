package ytcdn

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
	"github.com/ytcdn-sim/ytcdn/internal/obs/obshttp"
	"github.com/ytcdn-sim/ytcdn/internal/obs/report"
)

// TestMetricsZeroPerturbation is the acceptance gate of the
// observability layer: the same study with metrics enabled renders
// byte-identically to the pre-observability golden. If an instrument
// ever draws randomness, reads the wall clock into simulated state, or
// reorders events, this diverges.
func TestMetricsZeroPerturbation(t *testing.T) {
	reg := obs.NewRegistry()
	got := parityRender(t, Options{Scale: 0.05, Span: 7 * 24 * time.Hour, Metrics: reg})

	want, err := os.ReadFile(policyParityGolden)
	if err != nil {
		t.Fatalf("golden missing: %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics-enabled run diverged from the metrics-free golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The run actually recorded: the registry must hold the core
	// instrument population, not an accidentally-disconnected one.
	snap := reg.Snapshot()
	for _, name := range []string{"sim.cdn.sessions", "sim.cdn.flows", "sim.cdn.chains", "sim.workload.arrivals"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s is 0 after a full run — instrumentation disconnected?", name)
		}
	}

	// The window-0 sharded mode must hold the same bit-identity with
	// metrics on: shared instruments across shard engines are
	// recording-only, never coordination.
	shardedGot := parityRender(t, Options{
		Scale: 0.05, Span: 7 * 24 * time.Hour,
		SimShards: 5, Metrics: obs.NewRegistry(),
	})
	if shardedGot != string(want) {
		t.Errorf("metrics-enabled 5-shard window-0 run diverged from the golden")
	}
}

// TestMetricsMatchStudy pins instrument values against the study's own
// ground truth: the counters are the same facts, counted a second way.
func TestMetricsMatchStudy(t *testing.T) {
	reg := obs.NewRegistry()
	study, err := Run(Options{
		Scale: 0.02, Span: 3 * 24 * time.Hour, Seed: 11, Metrics: reg,
		Store: &StoreOptions{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sim.cdn.sessions"]; got != int64(study.Sessions) {
		t.Errorf("sim.cdn.sessions = %d, study.Sessions = %d", got, study.Sessions)
	}
	if got := snap.Counters["sim.cdn.flows"]; got != int64(study.TotalFlows()) {
		t.Errorf("sim.cdn.flows = %d, study.TotalFlows() = %d", got, study.TotalFlows())
	}
	if got := snap.Counters["sim.cdn.chains"]; got != int64(study.Selection.Chains) {
		t.Errorf("sim.cdn.chains = %d, study.Selection.Chains = %d", got, study.Selection.Chains)
	}
	hist := snap.Histograms["sim.cdn.chain_depth_hops"]
	if hist.Count != int64(study.Selection.Chains) {
		t.Errorf("chain_depth histogram count = %d, chains = %d", hist.Count, study.Selection.Chains)
	}
	if snap.Histograms["sim.cdn.chain_latency_us"].Count != int64(study.Selection.Chains) {
		t.Errorf("chain_latency histogram count = %d, chains = %d",
			snap.Histograms["sim.cdn.chain_latency_us"].Count, study.Selection.Chains)
	}
	if got := snap.Gauges["sim.des.events"]; got <= 0 {
		t.Errorf("sim.des.events = %v, want > 0", got)
	}
	if got := snap.Gauges["store.write.records"]; int64(got) != int64(study.TotalFlows()) {
		t.Errorf("store.write.records = %v, study.TotalFlows() = %d", got, study.TotalFlows())
	}
}

// TestMetricsDeterministic: two identical runs publish byte-identical
// metric snapshots — the metrics themselves are part of the
// deterministic surface, so a report diff between two CI runs of the
// same commit is meaningful.
func TestMetricsDeterministic(t *testing.T) {
	run := func() []byte {
		reg := obs.NewRegistry()
		if _, err := Run(Options{Scale: 0.02, Span: 3 * 24 * time.Hour, Seed: 11, Metrics: reg}); err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("identical runs produced different metric snapshots\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	// The snapshot also feeds the -report artifact; the flattened
	// report must validate under the shared schema.
	rep := report.New("determinism-test").Set("scale", "0.02")
	var snap obs.Snapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatal(err)
	}
	data, err := rep.AddSnapshot(snap).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := report.ValidateJSON(data); err != nil {
		t.Errorf("flattened run report failed validation: %v", err)
	}
}

// TestMetricsLiveScrapeWindowed serves /metrics while a 5-shard
// windowed run is in flight and scrapes it continuously: every scrape
// must be valid snapshot JSON, and counters must be monotone across
// scrapes. Run under -race in CI this is the scrape-during-run data
// race exercise for the whole deterministic plane.
func TestMetricsLiveScrapeWindowed(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := obshttp.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/metrics"

	done := make(chan error, 1)
	go func() {
		_, err := Run(Options{
			Scale: 0.05, Span: 7 * 24 * time.Hour, Seed: 3,
			SimShards: 5, SyncWindow: time.Minute,
			Metrics: reg,
		})
		done <- err
	}()

	var scrapes int
	var lastSessions int64
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if scrapes == 0 {
				t.Error("run finished before a single scrape landed")
			}
			t.Logf("%d live scrapes, final sim.cdn.sessions=%d", scrapes, lastSessions)
			return
		default:
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("scrape %d: %v", scrapes, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %d: %v", scrapes, err)
		}
		if err := obs.ValidateSnapshotJSON(body); err != nil {
			t.Fatalf("scrape %d invalid: %v\n%s", scrapes, err, body)
		}
		var s struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal(body, &s); err != nil {
			t.Fatalf("scrape %d: %v", scrapes, err)
		}
		if got := s.Counters["sim.cdn.sessions"]; got < lastSessions {
			t.Fatalf("scrape %d: sim.cdn.sessions went backwards: %d -> %d", scrapes, lastSessions, got)
		} else {
			lastSessions = got
		}
		scrapes++
		time.Sleep(20 * time.Millisecond)
	}
}
