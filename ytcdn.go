// Package ytcdn reproduces the system studied in "Dissecting Video
// Server Selection Strategies in the YouTube CDN" (Torres et al.,
// IEEE ICDCS 2011): a simulator of the 2010 YouTube content
// distribution network — preferred-data-center DNS mapping, adaptive
// DNS load balancing, hot-spot and content-miss application-layer
// redirection — together with the paper's complete measurement and
// analysis pipeline (Tstat-style flow capture, video-session grouping,
// CBG delay-based geolocation, per-AS and per-data-center accounting).
//
// The typical entry point is Run, which simulates the paper's five
// monitored networks for a configurable window and returns the
// captured traces plus handles to the world for active measurements:
//
//	study, err := ytcdn.Run(ytcdn.Options{Scale: 0.05, Span: 2 * 24 * time.Hour})
//	...
//	trace := study.Trace(ytcdn.DatasetEU1ADSL)
//
// Analysis of the traces lives in internal/analysis and is surfaced
// through the experiments harness (cmd/ytcdn-experiments), which
// regenerates every table and figure of the paper.
package ytcdn

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/cdn"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/experiments"
	"github.com/ytcdn-sim/ytcdn/internal/obs"
	"github.com/ytcdn-sim/ytcdn/internal/par"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
	"github.com/ytcdn-sim/ytcdn/internal/tracestore"
	"github.com/ytcdn-sim/ytcdn/internal/workload"
)

// Dataset names re-exported for callers of the public API.
const (
	DatasetUSCampus  = topology.DatasetUSCampus
	DatasetEU1Campus = topology.DatasetEU1Campus
	DatasetEU1ADSL   = topology.DatasetEU1ADSL
	DatasetEU1FTTH   = topology.DatasetEU1FTTH
	DatasetEU2       = topology.DatasetEU2
)

// DatasetNames returns the five dataset names in the paper's order.
func DatasetNames() []string { return topology.DatasetNames() }

// Options configures a study run. The zero value runs the full paper
// setting (five networks, one week, full-scale populations); set Scale
// below 1 to shrink the workload proportionally.
type Options struct {
	// Seed makes the whole study reproducible.
	Seed int64
	// Scale multiplies session volumes (1.0 = paper scale, ~2.4M
	// flows; 0.05 runs in well under a second).
	Scale float64
	// Span is the capture window (default: one week, like the paper).
	Span time.Duration
	// Topology, Catalog, Selector and Player override subsystem
	// configurations; zero values mean calibrated defaults.
	Topology *topology.PaperConfig
	Catalog  *content.Config
	Selector *core.Config
	Player   *cdn.Config
	// Policy is the server-selection policy the engine delegates to.
	// Nil means the paper's reverse-engineered behaviour
	// (core.PaperPolicy, configured by the Selector ablation flags);
	// see BuiltinPolicies for the other built-ins. Setting both
	// Policy and Selector.Policy is rejected.
	Policy core.SelectionPolicy
	// PolicySwitch, when non-nil, swaps the selection policy mid-run —
	// the scenario the paper stumbled into when Google changed the
	// assignment policy between the 2010 captures and the February
	// 2011 follow-up. Load state, placement and counters carry across
	// the switch; only decisions after At change.
	PolicySwitch *PolicySwitch
	// Store, when non-nil, spills the captured traces to a disk-backed
	// columnar store instead of holding them in memory: capture runs
	// through a tracestore.Writer (one shard per dataset, fixed-size
	// segments), and the analysis side streams the segments back with
	// bounded buffering. Use it for paper-scale (Scale near 1.0 and
	// beyond) studies; the in-memory default remains right for tests
	// and small runs. Tables and figures are bit-identical either way.
	Store *StoreOptions
	// ExtraSink, when non-nil, additionally receives every flow record
	// as it is emitted (e.g. a capture.WriterSink streaming to disk).
	// It must be safe for concurrent use when the same sink is shared
	// by concurrent studies (RunMany) and when a single study runs
	// windowed shards (SimShards > 1 with SyncWindow > 0), where shard
	// goroutines record concurrently.
	ExtraSink capture.Sink
	// Parallelism bounds the worker pool of the analysis harness
	// returned by Study.Experiments (per-server CBG geolocation, the
	// per-VP ping campaigns, the per-dataset pipelines). 1 means
	// strictly sequential; 0 or negative means one worker per core.
	// The computed tables and figures are bit-identical either way.
	Parallelism int
	// SimShards splits the simulation itself across engines (the
	// monitored networks couple only through the selection engine,
	// which is concurrency-safe). 0 or 1 means one engine for
	// everything; values above the number of shardable units (vantage
	// points, or subnets with ShardBySubnet) are clamped. With
	// SyncWindow == 0 the sharded run is bit-identical to the unsharded
	// one at any shard count and either ShardBy granularity; pair it
	// with a positive SyncWindow for wall-clock speedup.
	SimShards int
	// ShardBy selects the unit SimShards distributes across engines.
	// The default (ShardByVP) places whole vantage points; ShardBySubnet
	// splits below the vantage point, placing per-subnet buckets — the
	// right choice when one heavy VP (millions of users behind one ISP)
	// would otherwise pin a single engine. Because every subnet owns its
	// own workload and player RNG streams, both granularities produce
	// bit-identical results at SyncWindow == 0; at a positive window,
	// ShardBySubnet simply balances better. Ignored unless SimShards > 1.
	ShardBy ShardBy
	// Metrics, when non-nil, instruments the run: the deterministic
	// core publishes sim-time counters, gauges and histograms
	// ("sim.*" / "store.*" names) into the registry as it executes,
	// and a live scrape (obshttp) may read them from another goroutine
	// mid-run. Every instrument is keyed on simulated time and event
	// counts only — recording draws no randomness, reads no wall clock
	// and schedules nothing — so a run with Metrics set is
	// bit-identical to one without (the parity tests pin this).
	Metrics *obs.Registry
	// Profiler, when non-nil, wall-clock-times the analysis harness's
	// pipeline phases (localization, probing, per-dataset analysis);
	// see experiments.Profiler. obs/profile.NewProfiler builds one.
	// Profiling never changes computed results.
	Profiler experiments.Profiler
	// SyncWindow bounds how far one simulation shard may run ahead of
	// another (see des.ShardedRunner). 0 — the default — is the exact
	// mode: shards advance through a sequential k-way merge that is
	// bit-identical to a single engine. A positive window runs shards
	// concurrently in lockstep windows of that length: policies may
	// observe DC/server loads that are stale by up to the window,
	// which perturbs individual redirect decisions slightly (aggregate
	// tables stay within tolerance) in exchange for near-linear
	// speedup. Ignored unless SimShards > 1.
	SyncWindow time.Duration
	// OptimisticWindow enables optimistic (Time Warp) sharded
	// execution: shards run each window of this length concurrently and
	// speculatively against live shared state while journaling every
	// shared-state effect and decision; at the window barrier a
	// single-threaded sweep replays the journals in the sequential merge
	// order, and on any causality violation the whole window is rolled
	// back to the last committed horizon and re-run sequentially from
	// the same per-subnet RNG streams. Either way the committed state —
	// and therefore every trace, table and figure — is bit-identical to
	// SyncWindow == 0 at any shard count and either ShardBy granularity;
	// only the protocol telemetry (rollback/commit counts) depends on
	// scheduling. Mutually exclusive with SyncWindow; requires
	// SimShards > 1.
	OptimisticWindow time.Duration
	// optimisticForceRollback forces every optimistic window to roll
	// back and re-run sequentially, exercising the rollback/replay path
	// end to end. Test-only (unexported).
	optimisticForceRollback bool
}

// ShardBy names the unit of simulation sharding.
type ShardBy string

// Sharding granularities. The zero value means ShardByVP.
const (
	// ShardByVP assigns whole vantage points to engines (VP i → shard
	// i mod SimShards).
	ShardByVP ShardBy = "vp"
	// ShardBySubnet assigns per-subnet buckets to engines round-robin
	// in (VP, subnet) order, so a single heavy vantage point spreads
	// across all engines.
	ShardBySubnet ShardBy = "subnet"
)

// PolicySwitch schedules a mid-run selection-policy change.
type PolicySwitch struct {
	// At is the simulation time of the switch (offset into the span).
	At time.Duration
	// To is the policy in force from At on.
	To core.SelectionPolicy
}

// StoreOptions configures the disk-backed trace store of a study.
// Every study needs its own directory: concurrent studies (RunMany)
// sharing one Dir would overwrite each other's shards.
type StoreOptions struct {
	// Dir is the store directory. It is created if missing; stale
	// shard files in it are replaced.
	Dir string
	// SegmentRecords is the per-dataset spill threshold (records per
	// segment). Zero means the tracestore default (64Ki records,
	// a few MB decoded). Smaller segments lower peak memory; larger
	// ones compress and scan slightly better.
	SegmentRecords int
}

// Study is the result of a run: the world (for active probing) and the
// captured traces (for passive analysis).
type Study struct {
	World       *topology.World
	Catalog     *content.Catalog
	Placement   *core.Placement
	Selector    *core.Selector
	Span        time.Duration
	Seed        int64
	Parallelism int

	// Selection holds the ground-truth selection outcomes of the run
	// (preferred-DC fraction, served RTT, redirect-chain lengths) —
	// what ComparePolicies tabulates per policy. For sharded runs it
	// is the merge of the per-shard metrics.
	Selection cdn.SelectionMetrics
	// Sessions is the number of sessions executed across all vantage
	// points.
	Sessions int
	// SimShards is the effective shard count the simulation ran with
	// (Options.SimShards after defaulting and clamping to the number
	// of vantage points).
	SimShards int

	// Metrics is the registry the run was instrumented into (nil when
	// Options.Metrics was nil). The post-run analysis keeps recording
	// into it (store scans), so a -report emitted after the tables
	// includes the full pipeline.
	Metrics *obs.Registry

	mem      *capture.MemSink   // in-memory capture (nil when store-backed)
	store    *tracestore.Reader // disk-backed capture (nil when in-memory)
	profiler experiments.Profiler

	expOnce sync.Once
	exp     *experiments.Harness
}

// Run builds the paper world, generates the five networks' workloads,
// executes them against the selection engine, and captures the traces.
func Run(opts Options) (*Study, error) {
	if opts.Seed == 0 {
		opts.Seed = 20100904
	}
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.Span == 0 {
		opts.Span = 7 * 24 * time.Hour
	}

	topoCfg := topology.PaperConfig{}
	if opts.Topology != nil {
		topoCfg = *opts.Topology
	}
	topoCfg.Scale = opts.Scale
	if topoCfg.Seed == 0 {
		topoCfg.Seed = opts.Seed
	}
	w, err := topology.BuildPaperWorld(topoCfg)
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}
	return RunWorld(w, opts)
}

// RunWorld runs a study against a caller-built (and possibly modified)
// world — for example with altered preferred-DC overrides to model the
// assignment-policy change the paper observed in its February 2011
// follow-up dataset. Options.Topology is ignored; Seed, Scale and Span
// default as in Run.
func RunWorld(w *topology.World, opts Options) (*Study, error) {
	if opts.Seed == 0 {
		opts.Seed = 20100904
	}
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.Span == 0 {
		opts.Span = 7 * 24 * time.Hour
	}

	catCfg := content.DefaultConfig()
	if opts.Catalog != nil {
		catCfg = *opts.Catalog
	}
	cat, err := content.NewCatalog(catCfg)
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}

	placement, err := core.NewPlacement(w, cat, core.OriginPolicy{CopiesPerVideo: 2})
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}

	selCfg := core.DefaultConfig()
	if opts.Selector != nil {
		selCfg = *opts.Selector
	}
	if opts.Policy != nil {
		if selCfg.Policy != nil {
			return nil, fmt.Errorf("ytcdn: Options.Policy and Options.Selector.Policy both set")
		}
		selCfg.Policy = opts.Policy
	}
	sel, err := core.NewSelector(w, placement, selCfg)
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}
	if opts.Metrics != nil {
		sel.Instrument(opts.Metrics)
	}

	playerCfg := cdn.DefaultConfig()
	if opts.Player != nil {
		playerCfg = *opts.Player
	}

	// Validate the scenario timeline before the store writer below
	// touches disk: opening a store replaces existing shard files, so
	// every option error must surface first.
	if sw := opts.PolicySwitch; sw != nil {
		if sw.To == nil {
			return nil, fmt.Errorf("ytcdn: PolicySwitch.To must be set")
		}
		if err := core.ValidatePolicy(sw.To); err != nil {
			return nil, fmt.Errorf("ytcdn: PolicySwitch: %w", err)
		}
		if sw.At < 0 || sw.At >= opts.Span {
			// At == Span is rejected too: no decision happens at or
			// after the end of the span, so such a switch silently
			// changes nothing — a misconfiguration, not a scenario.
			return nil, fmt.Errorf("ytcdn: PolicySwitch.At %v outside span [0, %v)", sw.At, opts.Span)
		}
	}

	if opts.SyncWindow < 0 {
		return nil, fmt.Errorf("ytcdn: SyncWindow %v must be >= 0", opts.SyncWindow)
	}
	if opts.OptimisticWindow < 0 {
		return nil, fmt.Errorf("ytcdn: OptimisticWindow %v must be >= 0", opts.OptimisticWindow)
	}
	if opts.SyncWindow > 0 && opts.OptimisticWindow > 0 {
		return nil, fmt.Errorf("ytcdn: SyncWindow and OptimisticWindow are mutually exclusive")
	}
	// A window on a single-engine run is a silent misconfiguration: the
	// option would be dropped and the caller would believe they measured
	// a windowed (or optimistic) run. Reject it before clamping — asking
	// for more shards than the topology has units is a different, valid
	// request that still clamps below.
	if opts.SimShards <= 1 {
		if opts.SyncWindow > 0 {
			return nil, fmt.Errorf("ytcdn: SyncWindow %v requires SimShards > 1 (got %d)", opts.SyncWindow, opts.SimShards)
		}
		if opts.OptimisticWindow > 0 {
			return nil, fmt.Errorf("ytcdn: OptimisticWindow %v requires SimShards > 1 (got %d)", opts.OptimisticWindow, opts.SimShards)
		}
	}
	shardBy := opts.ShardBy
	if shardBy == "" {
		shardBy = ShardByVP
	}
	if shardBy != ShardByVP && shardBy != ShardBySubnet {
		return nil, fmt.Errorf("ytcdn: unknown ShardBy %q (want %q or %q)", shardBy, ShardByVP, ShardBySubnet)
	}
	units := len(w.VantagePoints)
	if shardBy == ShardBySubnet {
		units = 0
		for _, vp := range w.VantagePoints {
			units += len(vp.Subnets)
		}
	}
	shardCount := opts.SimShards
	if shardCount < 1 {
		shardCount = 1
	}
	if shardCount > units {
		shardCount = units
	}
	syncWindow := opts.SyncWindow
	optWindow := opts.OptimisticWindow
	if shardCount == 1 {
		// Only reachable by clamping (SimShards > units): a single
		// shard is already exact, so the windows degenerate to it.
		syncWindow, optWindow = 0, 0
	}

	var mem *capture.MemSink
	var writer *tracestore.Writer
	var sink capture.Sink
	if opts.Store != nil {
		writer, err = tracestore.NewWriter(opts.Store.Dir, tracestore.Options{
			SegmentRecords: opts.Store.SegmentRecords,
		})
		if err != nil {
			return nil, fmt.Errorf("ytcdn: %w", err)
		}
		if opts.Metrics != nil {
			writer.Instrument(opts.Metrics)
		}
		sink = writer
	} else {
		mem = capture.NewMemSink()
		sink = mem
	}
	if opts.ExtraSink != nil {
		sink = capture.NewTeeSink(sink, opts.ExtraSink)
	}

	// One engine per shard, one simulator per bucket. Every SUBNET
	// draws from its own pair of RNG streams ("workload-<vp>/subnet/<j>"
	// arrivals, "player-<vp>/subnet/<j>" player behaviour), so a
	// subnet's draw order depends only on its own event sequence — which
	// is what makes any bucket grouping at any shard count with
	// SyncWindow == 0 bit-identical to the single-engine run. ShardByVP
	// groups each VP's subnets into one bucket on engine i mod
	// SimShards; ShardBySubnet walks (VP, subnet) pairs round-robin, so
	// one heavy VP's subnets land on distinct engines.
	root := stats.NewRNG(opts.Seed)
	engines := make([]*des.Engine, shardCount)
	for i := range engines {
		engines[i] = &des.Engine{}
	}
	// groups[e][vp] lists the subnet indices of vp placed on engine e.
	groups := make([]map[int][]int, shardCount)
	for e := range groups {
		groups[e] = make(map[int][]int)
	}
	if shardBy == ShardBySubnet {
		k := 0
		for i, vp := range w.VantagePoints {
			for j := range vp.Subnets {
				e := k % shardCount
				groups[e][i] = append(groups[e][i], j)
				k++
			}
		}
	} else {
		for i := range w.VantagePoints {
			e := i % shardCount
			for j := range w.VantagePoints[i].Subnets {
				groups[e][i] = append(groups[e][i], j)
			}
		}
	}
	// Optimistic mode routes each shard's capture emissions through a
	// per-shard staging buffer (flushed in merge order at each commit)
	// and journals every shared-state effect and decision; see
	// optimistic.go for the hook wiring.
	var opt *optimisticRun
	if optWindow > 0 {
		opt = newOptimisticRun(engines, sel, placement, sink, opts.Metrics)
		opt.forceRollback = opts.optimisticForceRollback
	}
	var sims []*cdn.Simulator
	for e := 0; e < shardCount; e++ {
		// Deterministic bucket order: VP index ascending.
		for i := range w.VantagePoints {
			subnets := groups[e][i]
			if len(subnets) == 0 {
				continue
			}
			name := w.VantagePoints[i].Name
			eng := engines[e]
			simSink := sink
			if opt != nil {
				simSink = opt.stages[e]
			}
			sim, err := cdn.NewSimulator(w, cat, sel, eng, simSink, playerCfg, root, opts.Span)
			if err != nil {
				return nil, fmt.Errorf("ytcdn: %w", err)
			}
			sims = append(sims, sim)
			gen, err := workload.NewGeneratorSubset(w, i, subnets, cat, opts.Span, root.Fork("workload-"+name))
			if err != nil {
				return nil, fmt.Errorf("ytcdn: %w", err)
			}
			if opt != nil {
				sim.SetJournal(opt.journals[e])
				opt.sims[e] = append(opt.sims[e], sim)
				opt.gens[e] = append(opt.gens[e], gen)
			}
			if opts.Metrics != nil {
				sim.Instrument(opts.Metrics)
				gen.Instrument(opts.Metrics)
			}
			gen.Schedule(eng, sim.SubmitSession)
		}
	}

	runner, err := des.NewShardedRunner(syncWindow, engines...)
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}
	if opts.Metrics != nil {
		runner.Instrument(opts.Metrics)
	}
	if opt != nil {
		if err := runner.SetOptimistic(optWindow, opt); err != nil {
			return nil, fmt.Errorf("ytcdn: %w", err)
		}
	}
	if sw := opts.PolicySwitch; sw != nil {
		// Validated above (before the store writer), so the switch
		// cannot fail mid-run. As a runner barrier it fires with every
		// shard parked exactly at sw.At, so no shard can observe the
		// new policy before another has finished the old window.
		runner.AddBarrier(sw.At, func() { _ = sel.SetPolicy(sw.To) })
	}

	runner.Run()

	var selection cdn.SelectionMetrics
	sessions := 0
	for _, sim := range sims {
		selection.Merge(sim.Metrics())
		sessions += sim.Sessions()
	}

	var store *tracestore.Reader
	if writer != nil {
		if err := writer.Close(); err != nil {
			return nil, fmt.Errorf("ytcdn: %w", err)
		}
		store, err = tracestore.OpenReader(opts.Store.Dir)
		if err != nil {
			return nil, fmt.Errorf("ytcdn: %w", err)
		}
		if opts.Metrics != nil {
			store.Instrument(opts.Metrics)
		}
	}

	return &Study{
		World:       w,
		Catalog:     cat,
		Placement:   placement,
		Selector:    sel,
		Span:        opts.Span,
		Seed:        opts.Seed,
		Parallelism: opts.Parallelism,
		Selection:   selection,
		Sessions:    sessions,
		SimShards:   shardCount,
		Metrics:     opts.Metrics,
		mem:         mem,
		store:       store,
		profiler:    opts.Profiler,
	}, nil
}

// RunMany executes one independent study per Options entry, running up
// to parallelism of them concurrently (values < 1 mean one per core).
// Every study gets its own world, DES engine and RNG streams forked
// from its own seed, so result i is bit-identical to Run(optss[i]) no
// matter how the studies are scheduled. The first error in index order
// is returned.
func RunMany(optss []Options, parallelism int) ([]*Study, error) {
	studies := make([]*Study, len(optss))
	errs := make([]error, len(optss))
	par.ForEach(len(optss), par.Normalize(parallelism), func(i int) {
		studies[i], errs[i] = Run(optss[i])
	})
	return studies, par.FirstError(errs)
}

// Replicates derives n copies of base whose seeds are forked from the
// base seed by replicate index, for seed-sweep studies via RunMany.
// The derivation is order-independent, so replicate i has the same
// seed no matter how many replicates are requested.
func Replicates(base Options, n int) []Options {
	if base.Seed == 0 {
		base.Seed = 20100904
	}
	out := make([]Options, n)
	for i := range out {
		out[i] = base
		out[i].Seed = stats.ForkSeed(base.Seed, fmt.Sprintf("replicate/%d", i))
	}
	return out
}

// Trace returns the flow records captured at the named vantage point.
// In-memory studies return a fresh copy in emission order; disk-backed
// studies materialize the shard (segments in spill order, records
// start-sorted within each segment — the stored order). The slice is
// the caller's to keep. For large disk-backed studies prefer
// TraceIter, which also surfaces read errors; Trace returns what was
// readable.
func (s *Study) Trace(dataset string) []capture.FlowRecord {
	if s.store != nil {
		recs, _ := capture.Collect(s.store.Iter(dataset))
		return recs
	}
	return s.mem.Trace(dataset)
}

// TraceIter streams the flow records captured at the named vantage
// point. Disk-backed studies decode one segment at a time; check the
// iterator's Err after exhaustion.
func (s *Study) TraceIter(dataset string) capture.Iterator {
	return s.source().Iter(dataset)
}

// StoreDir returns the disk store directory, or "" for an in-memory
// study.
func (s *Study) StoreDir() string {
	if s.store == nil {
		return ""
	}
	return s.store.Dir()
}

// source exposes the captured traces as a capture.TraceSource. Both
// paths report every expected dataset — including one that captured
// zero flows — so a store-backed study renders the same zero rows an
// in-memory one does.
func (s *Study) source() capture.TraceSource {
	if s.store != nil {
		return allDatasetsSource{inner: s.store}
	}
	// Read-only views over the sink: the simulation has finished, so
	// the backing slices are stable and need no copying.
	traces := make(capture.MapSource)
	for _, name := range DatasetNames() {
		traces[name] = s.mem.View(name)
	}
	return traces
}

// allDatasetsSource widens a trace source to the study's full dataset
// list: the tracestore only creates a shard on the first record, so a
// zero-flow dataset would otherwise vanish from the analysis instead
// of rendering as a zero row.
type allDatasetsSource struct {
	inner capture.TraceSource
}

// Datasets returns the union of the expected names and whatever the
// source recorded, sorted.
func (s allDatasetsSource) Datasets() []string {
	seen := make(map[string]bool)
	var out []string
	for _, name := range append(DatasetNames(), s.inner.Datasets()...) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Iter streams a dataset; names absent from the source yield an empty
// iterator.
func (s allDatasetsSource) Iter(dataset string) capture.Iterator { return s.inner.Iter(dataset) }

// ScanByStart forwards the store's start-ordered stream, preserving
// the bounded-memory capability the streaming sessionizer keys on.
// The inner source is always the tracestore reader (the in-memory
// path never constructs an allDatasetsSource); anything else would be
// a wiring bug, surfaced as an explicit iterator error rather than a
// silently unordered stream.
func (s allDatasetsSource) ScanByStart(dataset string) capture.Iterator {
	if r, ok := s.inner.(interface {
		ScanByStart(string) capture.Iterator
	}); ok {
		return r.ScanByStart(dataset)
	}
	return capture.ErrIter(fmt.Errorf("ytcdn: trace source %T has no start-ordered scan", s.inner))
}

// TotalFlows returns the number of flows captured across all datasets.
func (s *Study) TotalFlows() int {
	if s.store != nil {
		return int(s.store.TotalRecords())
	}
	return s.mem.TotalRecords()
}

// Experiments returns the harness that regenerates the paper's tables
// and figures from this study. The harness is built once and shared
// by every caller: its caches are concurrency-safe, and the PlanetLab
// experiment mutates per-study state (placement pull-through, the
// fresh-video counter) that must be claimed through a single harness.
func (s *Study) Experiments() *experiments.Harness {
	s.expOnce.Do(func() {
		s.exp = experiments.New(experiments.Input{
			World:       s.World,
			Catalog:     s.Catalog,
			Placement:   s.Placement,
			Source:      s.source(),
			Span:        s.Span,
			Seed:        s.Seed,
			Parallelism: s.Parallelism,
			Profiler:    s.profiler,
		})
	})
	return s.exp
}
