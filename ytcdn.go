// Package ytcdn reproduces the system studied in "Dissecting Video
// Server Selection Strategies in the YouTube CDN" (Torres et al.,
// IEEE ICDCS 2011): a simulator of the 2010 YouTube content
// distribution network — preferred-data-center DNS mapping, adaptive
// DNS load balancing, hot-spot and content-miss application-layer
// redirection — together with the paper's complete measurement and
// analysis pipeline (Tstat-style flow capture, video-session grouping,
// CBG delay-based geolocation, per-AS and per-data-center accounting).
//
// The typical entry point is Run, which simulates the paper's five
// monitored networks for a configurable window and returns the
// captured traces plus handles to the world for active measurements:
//
//	study, err := ytcdn.Run(ytcdn.Options{Scale: 0.05, Span: 2 * 24 * time.Hour})
//	...
//	trace := study.Trace(ytcdn.DatasetEU1ADSL)
//
// Analysis of the traces lives in internal/analysis and is surfaced
// through the experiments harness (cmd/ytcdn-experiments), which
// regenerates every table and figure of the paper.
package ytcdn

import (
	"fmt"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/cdn"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/experiments"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
	"github.com/ytcdn-sim/ytcdn/internal/workload"
)

// Dataset names re-exported for callers of the public API.
const (
	DatasetUSCampus  = topology.DatasetUSCampus
	DatasetEU1Campus = topology.DatasetEU1Campus
	DatasetEU1ADSL   = topology.DatasetEU1ADSL
	DatasetEU1FTTH   = topology.DatasetEU1FTTH
	DatasetEU2       = topology.DatasetEU2
)

// DatasetNames returns the five dataset names in the paper's order.
func DatasetNames() []string { return topology.DatasetNames() }

// Options configures a study run. The zero value runs the full paper
// setting (five networks, one week, full-scale populations); set Scale
// below 1 to shrink the workload proportionally.
type Options struct {
	// Seed makes the whole study reproducible.
	Seed int64
	// Scale multiplies session volumes (1.0 = paper scale, ~2.4M
	// flows; 0.05 runs in well under a second).
	Scale float64
	// Span is the capture window (default: one week, like the paper).
	Span time.Duration
	// Topology, Catalog, Selector and Player override subsystem
	// configurations; zero values mean calibrated defaults.
	Topology *topology.PaperConfig
	Catalog  *content.Config
	Selector *core.Config
	Player   *cdn.Config
	// ExtraSink, when non-nil, additionally receives every flow record
	// as it is emitted (e.g. a capture.WriterSink streaming to disk).
	ExtraSink capture.Sink
}

// Study is the result of a run: the world (for active probing) and the
// captured traces (for passive analysis).
type Study struct {
	World     *topology.World
	Catalog   *content.Catalog
	Placement *core.Placement
	Selector  *core.Selector
	Span      time.Duration
	Seed      int64

	sink *capture.MemSink
}

// Run builds the paper world, generates the five networks' workloads,
// executes them against the selection engine, and captures the traces.
func Run(opts Options) (*Study, error) {
	if opts.Seed == 0 {
		opts.Seed = 20100904
	}
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.Span == 0 {
		opts.Span = 7 * 24 * time.Hour
	}

	topoCfg := topology.PaperConfig{}
	if opts.Topology != nil {
		topoCfg = *opts.Topology
	}
	topoCfg.Scale = opts.Scale
	if topoCfg.Seed == 0 {
		topoCfg.Seed = opts.Seed
	}
	w, err := topology.BuildPaperWorld(topoCfg)
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}
	return RunWorld(w, opts)
}

// RunWorld runs a study against a caller-built (and possibly modified)
// world — for example with altered preferred-DC overrides to model the
// assignment-policy change the paper observed in its February 2011
// follow-up dataset. Options.Topology is ignored; Seed, Scale and Span
// default as in Run.
func RunWorld(w *topology.World, opts Options) (*Study, error) {
	if opts.Seed == 0 {
		opts.Seed = 20100904
	}
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.Span == 0 {
		opts.Span = 7 * 24 * time.Hour
	}

	catCfg := content.DefaultConfig()
	if opts.Catalog != nil {
		catCfg = *opts.Catalog
	}
	cat, err := content.NewCatalog(catCfg)
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}

	placement, err := core.NewPlacement(w, cat, core.OriginPolicy{CopiesPerVideo: 2})
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}

	selCfg := core.DefaultConfig()
	if opts.Selector != nil {
		selCfg = *opts.Selector
	}
	sel, err := core.NewSelector(w, placement, selCfg)
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}

	playerCfg := cdn.DefaultConfig()
	if opts.Player != nil {
		playerCfg = *opts.Player
	}

	var eng des.Engine
	mem := capture.NewMemSink()
	var sink capture.Sink = mem
	if opts.ExtraSink != nil {
		sink = capture.NewTeeSink(mem, opts.ExtraSink)
	}

	root := stats.NewRNG(opts.Seed)
	sim, err := cdn.NewSimulator(w, cat, sel, &eng, sink, playerCfg, root.Fork("player"))
	if err != nil {
		return nil, fmt.Errorf("ytcdn: %w", err)
	}

	for i := range w.VantagePoints {
		gen, err := workload.NewGenerator(w, i, cat, opts.Span, root.Fork("workload-"+w.VantagePoints[i].Name))
		if err != nil {
			return nil, fmt.Errorf("ytcdn: %w", err)
		}
		gen.Schedule(&eng, sim.SubmitSession)
	}

	eng.Run()

	return &Study{
		World:     w,
		Catalog:   cat,
		Placement: placement,
		Selector:  sel,
		Span:      opts.Span,
		Seed:      opts.Seed,
		sink:      mem,
	}, nil
}

// Trace returns the flow records captured at the named vantage point,
// in emission order.
func (s *Study) Trace(dataset string) []capture.FlowRecord {
	return s.sink.Trace(dataset)
}

// TotalFlows returns the number of flows captured across all datasets.
func (s *Study) TotalFlows() int { return s.sink.TotalRecords() }

// Experiments returns a harness that regenerates the paper's tables
// and figures from this study.
func (s *Study) Experiments() *experiments.Harness {
	traces := make(map[string][]capture.FlowRecord)
	for _, name := range DatasetNames() {
		traces[name] = s.sink.Trace(name)
	}
	return experiments.New(experiments.Input{
		World:     s.World,
		Catalog:   s.Catalog,
		Placement: s.Placement,
		Traces:    traces,
		Span:      s.Span,
		Seed:      s.Seed,
	})
}
