package ytcdn

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// This file is the sub-VP sharding property suite: determinism and
// metamorphic tests pinning every sharding configuration — shard count
// × granularity (whole vantage points vs per-subnet buckets) × sync
// window — to the sequential single-engine ground truth. Window 0 must
// be bit-identical (tables, traces, SelectionMetrics, session counts);
// positive windows must stay within the documented load-staleness
// tolerance. CI runs the suite under -race.

// shardConfigs enumerates the (shards, granularity) grid of the
// acceptance criteria. Shard counts above the unit count are exercised
// too (16 subnets, 5 VPs): they clamp, which must also be exact.
func shardConfigs() []struct {
	shards int
	by     ShardBy
} {
	var out []struct {
		shards int
		by     ShardBy
	}
	for _, by := range []ShardBy{ShardByVP, ShardBySubnet} {
		for _, shards := range []int{1, 2, 5} {
			out = append(out, struct {
				shards int
				by     ShardBy
			}{shards, by})
		}
	}
	return out
}

// assertStudiesIdentical requires two studies to agree bit-for-bit on
// everything the analysis side can observe: ground-truth selection
// metrics, session counts, flow totals and the per-dataset traces
// record by record.
func assertStudiesIdentical(t *testing.T, label string, got, want *Study) {
	t.Helper()
	if got.Selection != want.Selection {
		t.Errorf("%s: SelectionMetrics = %+v, want %+v", label, got.Selection, want.Selection)
	}
	if got.Sessions != want.Sessions {
		t.Errorf("%s: sessions = %d, want %d", label, got.Sessions, want.Sessions)
	}
	if got.TotalFlows() != want.TotalFlows() {
		t.Errorf("%s: flows = %d, want %d", label, got.TotalFlows(), want.TotalFlows())
	}
	for _, name := range DatasetNames() {
		a, b := got.Trace(name), want.Trace(name)
		if len(a) != len(b) {
			t.Errorf("%s: %s has %d records, want %d", label, name, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: %s record %d differs: %+v vs %+v", label, name, i, a[i], b[i])
				break
			}
		}
	}
}

// TestSubVPWindowZeroParity is the headline determinism gate: for every
// (shards, granularity) combination of the grid, a window-0 run must be
// bit-identical to the sequential single-engine run — rendered tables,
// per-dataset traces, SelectionMetrics and session counts. Together
// with TestPolicyParity (sequential against the pinned golden) this
// proves the whole grid reproduces one canonical simulation.
func TestSubVPWindowZeroParity(t *testing.T) {
	base := Options{Scale: 0.05, Span: 7 * 24 * time.Hour}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	wantRender := parityRender(t, base)

	for _, cfg := range shardConfigs() {
		if cfg.shards == 1 && cfg.by == ShardByVP {
			continue // that is the reference itself
		}
		label := fmt.Sprintf("shards=%d by=%s window=0", cfg.shards, cfg.by)
		opts := base
		opts.SimShards = cfg.shards
		opts.ShardBy = cfg.by
		s, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		assertStudiesIdentical(t, label, s, ref)
		if got := parityRender(t, opts); got != wantRender {
			t.Errorf("%s: rendered tables diverged from the sequential engine\n--- got ---\n%s\n--- want ---\n%s",
				label, got, wantRender)
		}
	}
}

// TestSubVPShardClamp pins the clamping rule: requesting more shards
// than shardable units must clamp (16 subnets, 5 VPs) and stay exact.
func TestSubVPShardClamp(t *testing.T) {
	base := Options{Scale: 0.01, Span: 2 * 24 * time.Hour, Seed: 11}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		shards int
		by     ShardBy
		want   int
	}{
		{shards: 99, by: ShardByVP, want: 5},
		{shards: 99, by: ShardBySubnet, want: 16},
		{shards: 16, by: ShardBySubnet, want: 16},
	} {
		opts := base
		opts.SimShards = cfg.shards
		opts.ShardBy = cfg.by
		s, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if s.SimShards != cfg.want {
			t.Errorf("shards=%d by=%s: effective shards = %d, want %d", cfg.shards, cfg.by, s.SimShards, cfg.want)
		}
		assertStudiesIdentical(t, fmt.Sprintf("clamped shards=%d by=%s", cfg.shards, cfg.by), s, ref)
	}
}

// TestSubVPShardByValidation rejects unknown granularities.
func TestSubVPShardByValidation(t *testing.T) {
	_, err := Run(Options{Scale: 0.001, Span: time.Hour, ShardBy: "bogus"})
	if err == nil {
		t.Fatal("Run accepted ShardBy \"bogus\"")
	}
}

// TestShardingMetamorphic is the metamorphic suite: random study
// configurations (seed, scale, span, policy, mid-run switch) must obey
// the sharding invariance — every window-0 sharding produces the exact
// sequential result, and a windowed sub-VP run keeps arrivals exact
// with aggregates inside tolerance. The configurations themselves come
// from a deterministically seeded generator, so a failure reproduces.
func TestShardingMetamorphic(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic suite runs several studies; skipped in -short")
	}
	meta := stats.NewRNG(20110214) // the paper's Feb-2011 follow-up
	policies := PolicyNames()
	const rounds = 4
	for round := 0; round < rounds; round++ {
		base := Options{
			Seed:  meta.Int63(),
			Scale: 0.004 + 0.008*meta.Float64(),
			Span:  time.Duration(36+meta.Intn(36)) * time.Hour,
		}
		name := policies[meta.Intn(len(policies))]
		if name != "paper" {
			p, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			base.Policy = p
		}
		if meta.Bool(0.3) {
			to, err := PolicyByName(policies[meta.Intn(len(policies))])
			if err != nil {
				t.Fatal(err)
			}
			base.PolicySwitch = &PolicySwitch{At: base.Span / 2, To: to}
			base.Policy = nil // ComparePolicies-style: switch from the default
		}
		label := fmt.Sprintf("round %d (seed=%d scale=%.4f span=%v policy=%s switch=%v)",
			round, base.Seed, base.Scale, base.Span, name, base.PolicySwitch != nil)

		ref, err := Run(base)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}

		// Exactness: a random point of the sharding grid at window 0.
		exact := base
		exact.SimShards = 2 + meta.Intn(10)
		exact.ShardBy = []ShardBy{ShardByVP, ShardBySubnet}[meta.Intn(2)]
		s, err := Run(exact)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertStudiesIdentical(t, fmt.Sprintf("%s shards=%d by=%s", label, exact.SimShards, exact.ShardBy), s, ref)

		// Exactness under speculation: an optimistic run of the same
		// study — random shard count, granularity and window — must
		// also be bit-identical to sequential (rollbacks included).
		optimistic := base
		optimistic.SimShards = 2 + meta.Intn(10)
		optimistic.ShardBy = []ShardBy{ShardByVP, ShardBySubnet}[meta.Intn(2)]
		optimistic.OptimisticWindow = time.Duration(2+meta.Intn(10)) * time.Hour
		o, err := Run(optimistic)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertStudiesIdentical(t, fmt.Sprintf("%s optimistic shards=%d by=%s window=%v",
			label, optimistic.SimShards, optimistic.ShardBy, optimistic.OptimisticWindow), o, ref)

		// Tolerance: a windowed sub-VP run of the same study.
		windowed := base
		windowed.SimShards = 5
		windowed.ShardBy = ShardBySubnet
		windowed.SyncWindow = time.Duration(30+meta.Intn(90)) * time.Second
		win, err := Run(windowed)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertWindowedTolerance(t, label, win, ref)
	}
}

// assertWindowedTolerance checks the documented windowed-mode contract:
// session arrivals are exact (they come from the per-subnet workload
// streams, untouched by load), while chain counts and flow totals stay
// within a small tolerance of sequential.
func assertWindowedTolerance(t *testing.T, label string, win, ref *Study) {
	t.Helper()
	if win.Sessions != ref.Sessions {
		t.Errorf("%s: windowed sessions = %d, want exactly %d", label, win.Sessions, ref.Sessions)
	}
	const tol = 0.02
	if d := relDelta(float64(win.Selection.Chains), float64(ref.Selection.Chains)); d > tol {
		t.Errorf("%s: windowed chains %d vs sequential %d (%.1f%% apart)",
			label, win.Selection.Chains, ref.Selection.Chains, d*100)
	}
	if d := relDelta(float64(win.TotalFlows()), float64(ref.TotalFlows())); d > tol {
		t.Errorf("%s: windowed flows %d vs sequential %d (%.1f%% apart)",
			label, win.TotalFlows(), ref.TotalFlows(), d*100)
	}
	if d := math.Abs(win.Selection.PreferredFrac() - ref.Selection.PreferredFrac()); d > 0.05 {
		t.Errorf("%s: windowed preferred frac %.3f vs sequential %.3f",
			label, win.Selection.PreferredFrac(), ref.Selection.PreferredFrac())
	}
}

// TestSubVPWindowedTolerance is the fixed-config windowed exercise for
// sub-VP sharding, mirroring TestShardedWindowedTolerance (which covers
// per-VP sharding): 5 subnet-shards in one-minute lockstep windows keep
// arrivals exact and Table I within tolerance. Under -race this is the
// concurrency exercise for several bucket simulators of one vantage
// point sharing a capture sink.
func TestSubVPWindowedTolerance(t *testing.T) {
	base := Options{Scale: 0.05, Span: 7 * 24 * time.Hour}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.SimShards = 5
	opts.ShardBy = ShardBySubnet
	opts.SyncWindow = time.Minute
	win, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertWindowedTolerance(t, "subvp windowed", win, seq)

	tabSeq := tableIByDataset(t, seq)
	tabWin := tableIByDataset(t, win)
	const tol = 0.02
	for name, sr := range tabSeq {
		wr := tabWin[name]
		if relDelta(float64(wr.Flows), float64(sr.Flows)) > tol {
			t.Errorf("%s flows: windowed %d vs sequential %d (> %.0f%% apart)", name, wr.Flows, sr.Flows, tol*100)
		}
		if relDelta(wr.GB, sr.GB) > tol {
			t.Errorf("%s volume: windowed %.2f GB vs sequential %.2f GB (> %.0f%% apart)", name, wr.GB, sr.GB, tol*100)
		}
	}
}

// TestShardMatrixCell is the CI shard-matrix entry point: when
// YTCDN_MATRIX_SHARDS / YTCDN_MATRIX_WINDOW are set, it runs exactly
// that cell of the grid at both granularities against the sequential
// reference — exact at window 0, within tolerance otherwise. Without
// the env vars it skips (the fixed tests above cover the defaults).
func TestShardMatrixCell(t *testing.T) {
	shardsEnv := os.Getenv("YTCDN_MATRIX_SHARDS")
	if shardsEnv == "" {
		t.Skip("set YTCDN_MATRIX_SHARDS (and optionally YTCDN_MATRIX_WINDOW) to run one matrix cell")
	}
	shards, err := strconv.Atoi(shardsEnv)
	if err != nil {
		t.Fatalf("YTCDN_MATRIX_SHARDS: %v", err)
	}
	window := time.Duration(0)
	if w := os.Getenv("YTCDN_MATRIX_WINDOW"); w != "" {
		window, err = time.ParseDuration(w)
		if err != nil {
			t.Fatalf("YTCDN_MATRIX_WINDOW: %v", err)
		}
	}
	base := Options{Scale: 0.03, Span: 4 * 24 * time.Hour}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, by := range []ShardBy{ShardByVP, ShardBySubnet} {
		opts := base
		opts.SimShards = shards
		opts.ShardBy = by
		opts.SyncWindow = window
		label := fmt.Sprintf("matrix shards=%d by=%s window=%v", shards, by, window)
		if shards <= 1 && window > 0 {
			// This cell is the silent misconfiguration Run now rejects:
			// a window cannot apply to a single engine.
			if _, err := Run(opts); err == nil {
				t.Errorf("%s: want a SyncWindow-without-shards error, got nil", label)
			}
			continue
		}
		s, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if window == 0 || shards <= 1 {
			assertStudiesIdentical(t, label, s, ref)
		} else {
			assertWindowedTolerance(t, label, s, ref)

			// The optimistic flavour of the same cell must be exact,
			// not merely within tolerance.
			oopts := base
			oopts.SimShards = shards
			oopts.ShardBy = by
			oopts.OptimisticWindow = window
			o, err := Run(oopts)
			if err != nil {
				t.Fatal(err)
			}
			assertStudiesIdentical(t, label+" optimistic", o, ref)
		}
	}
}
