package ytcdn

import (
	"math"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/experiments"
)

// TestShardedWindowZeroParity is the determinism suite for the sharded
// runner's exact mode: the same seed at 1, 2 and 5 shards with
// SyncWindow 0 must be bit-identical — rendered tables, ground-truth
// selection metrics, session and flow totals. Together with
// TestPolicyParity (shards=1 against the golden) this proves the
// window-0 sharded run is bit-identical to the sequential engine.
func TestShardedWindowZeroParity(t *testing.T) {
	base := Options{Scale: 0.05, Span: 7 * 24 * time.Hour}
	want := parityRender(t, base)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 5} {
		opts := base
		opts.SimShards = shards
		got := parityRender(t, opts)
		if got != want {
			t.Errorf("shards=%d window=0 diverged from the sequential engine\n--- got ---\n%s\n--- want ---\n%s", shards, got, want)
		}
		s, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if s.Selection != ref.Selection {
			t.Errorf("shards=%d SelectionMetrics = %+v, want %+v", shards, s.Selection, ref.Selection)
		}
		if s.Sessions != ref.Sessions {
			t.Errorf("shards=%d sessions = %d, want %d", shards, s.Sessions, ref.Sessions)
		}
		if s.TotalFlows() != ref.TotalFlows() {
			t.Errorf("shards=%d flows = %d, want %d", shards, s.TotalFlows(), ref.TotalFlows())
		}
		// Per-dataset traces are record-for-record identical, not just
		// identical in aggregate.
		for _, name := range DatasetNames() {
			a, b := s.Trace(name), ref.Trace(name)
			if len(a) != len(b) {
				t.Errorf("shards=%d %s: %d records, want %d", shards, name, len(a), len(b))
				continue
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("shards=%d %s: record %d differs", shards, name, i)
					break
				}
			}
		}
	}
}

// TestShardedWindowedTolerance runs the concurrent (windowed) mode and
// pins it against the sequential run: session counts are exactly equal
// (arrivals come from the per-VP workload streams, untouched by load),
// while everything downstream of selection decisions — chain counts,
// Table I flows and volume — stays within a small tolerance of
// sequential, the documented price of bounded load staleness. Run
// under -race in CI, this is also the data race exercise for the whole
// sharded path.
func TestShardedWindowedTolerance(t *testing.T) {
	base := Options{Scale: 0.05, Span: 7 * 24 * time.Hour}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.SimShards = 5
	opts.SyncWindow = time.Minute
	win, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	if win.Sessions != seq.Sessions {
		t.Errorf("windowed sessions = %d, want %d (arrivals are per-VP deterministic)", win.Sessions, seq.Sessions)
	}

	tabSeq := tableIByDataset(t, seq)
	tabWin := tableIByDataset(t, win)
	const tol = 0.02
	if relDelta(float64(win.Selection.Chains), float64(seq.Selection.Chains)) > tol {
		t.Errorf("windowed chains = %d vs sequential %d (> %.0f%% apart)", win.Selection.Chains, seq.Selection.Chains, tol*100)
	}
	for name, sr := range tabSeq {
		wr := tabWin[name]
		if relDelta(float64(wr.Flows), float64(sr.Flows)) > tol {
			t.Errorf("%s flows: windowed %d vs sequential %d (> %.0f%% apart)", name, wr.Flows, sr.Flows, tol*100)
		}
		if relDelta(wr.GB, sr.GB) > tol {
			t.Errorf("%s volume: windowed %.2f GB vs sequential %.2f GB (> %.0f%% apart)", name, wr.GB, sr.GB, tol*100)
		}
	}
	if frac := win.Selection.PreferredFrac(); math.Abs(frac-seq.Selection.PreferredFrac()) > 0.05 {
		t.Errorf("preferred-DC fraction: windowed %.3f vs sequential %.3f", frac, seq.Selection.PreferredFrac())
	}
}

func tableIByDataset(t *testing.T, s *Study) map[string]experiments.TableIRow {
	t.Helper()
	res, err := s.Experiments().TableI()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]experiments.TableIRow, len(res.Rows))
	for _, row := range res.Rows {
		out[row.Dataset] = row
	}
	return out
}

func relDelta(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / b
}

// TestShardedPolicySwitchParity checks the scenario-timeline barrier:
// a mid-run policy switch under window-0 sharding lands at the same
// simulated instant on every shard, so the run stays bit-identical to
// the sequential switched run.
func TestShardedPolicySwitchParity(t *testing.T) {
	sw := &PolicySwitch{At: 3 * 24 * time.Hour, To: mustPolicy(t, "proximity")}
	base := Options{Scale: 0.02, Span: 6 * 24 * time.Hour, PolicySwitch: sw}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.SimShards = 5
	sh, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Selection != seq.Selection {
		t.Errorf("switched run: sharded SelectionMetrics %+v, want %+v", sh.Selection, seq.Selection)
	}
	if sh.TotalFlows() != seq.TotalFlows() {
		t.Errorf("switched run: sharded flows %d, want %d", sh.TotalFlows(), seq.TotalFlows())
	}
}

// TestStudySpanNotExceeded is the end-to-end regression for the
// capture-window overrun: no captured flow may start at or after the
// configured span (follow-up chains used to land up to ~11 minutes
// past it).
func TestStudySpanNotExceeded(t *testing.T) {
	span := 24 * time.Hour
	s, err := Run(Options{Scale: 0.01, Span: span, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range DatasetNames() {
		for _, rec := range s.Trace(name) {
			if rec.Start >= span {
				t.Fatalf("%s: flow starts at %v, at/after span %v", name, rec.Start, span)
			}
		}
	}
}

func mustPolicy(t *testing.T, name string) core.SelectionPolicy {
	t.Helper()
	p, err := PolicyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
