package ytcdn

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/core"
)

// cmpOpts is a fast comparison base: two simulated days at 1% volume.
func cmpOpts() Options {
	return Options{Scale: 0.01, Span: 2 * 24 * time.Hour, Seed: 7, Parallelism: 4}
}

// TestComparePoliciesReproducible is the acceptance gate for the
// comparison harness: all four built-ins run concurrently, and the
// table is bit-reproducible across invocations (seed-stable,
// independent of worker scheduling).
func TestComparePoliciesReproducible(t *testing.T) {
	first, err := ComparePolicies(cmpOpts())
	if err != nil {
		t.Fatal(err)
	}
	second, err := ComparePolicies(cmpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("comparison not reproducible:\n%s\nvs\n%s", first.Render(), second.Render())
	}

	if got := len(first.Rows); got != 4 {
		t.Fatalf("%d rows, want 4 built-ins", got)
	}
	byName := map[string]int{}
	for i, row := range first.Rows {
		byName[row.Policy] = i
		if row.Chains == 0 || row.Flows == 0 {
			t.Errorf("%s: empty study (chains=%d flows=%d)", row.Policy, row.Chains, row.Flows)
		}
	}
	for i, want := range PolicyNames() {
		if first.Rows[i].Policy != want {
			t.Fatalf("row %d is %q, want builtin order %v", i, first.Rows[i].Policy, PolicyNames())
		}
	}

	// Distinguishing ground truth per policy.
	prox := first.Rows[byName["proximity"]]
	if prox.Spills != 0 || prox.Hotspots != 0 || prox.RaceWins != 0 {
		t.Errorf("proximity must never spill/shed/race: %+v", prox)
	}
	race := first.Rows[byName["client-race"]]
	if race.RaceWins != race.Chains {
		t.Errorf("client-race resolved %d of %d chains by racing", race.RaceWins, race.Chains)
	}
	paper := first.Rows[byName["paper"]]
	if paper.RaceWins != 0 {
		t.Errorf("paper policy raced %d chains", paper.RaceWins)
	}
	least := first.Rows[byName["least-loaded"]]
	if least.PreferredFrac >= paper.PreferredFrac {
		t.Errorf("least-loaded preferred fraction %.3f not below paper %.3f",
			least.PreferredFrac, paper.PreferredFrac)
	}
	if prox.PreferredFrac <= paper.PreferredFrac {
		t.Errorf("proximity preferred fraction %.3f not above paper %.3f",
			prox.PreferredFrac, paper.PreferredFrac)
	}
}

// TestComparePoliciesMatchesRun pins each comparison row to an
// individual Run with the same options: the harness adds nothing and
// loses nothing.
func TestComparePoliciesMatchesRun(t *testing.T) {
	base := cmpOpts()
	cmp, err := ComparePolicies(base, NamedPolicy{Name: "least-loaded", Policy: &core.LeastLoadedDC{}})
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.Policy = &core.LeastLoadedDC{}
	study, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	row := cmp.Rows[0]
	spills, hotspots, misses := study.Selector.Counters()
	if row.Flows != study.TotalFlows() || row.Chains != study.Selection.Chains ||
		row.Spills != spills || row.Hotspots != hotspots || row.Misses != misses {
		t.Errorf("comparison row %+v does not match direct run (flows=%d chains=%d s/h/m=%d/%d/%d)",
			row, study.TotalFlows(), study.Selection.Chains, spills, hotspots, misses)
	}
}

func TestComparePoliciesValidation(t *testing.T) {
	base := cmpOpts()
	base.Policy = core.ProximityOnly{}
	if _, err := ComparePolicies(base); err == nil {
		t.Error("base with Policy set must be rejected")
	}
	base = cmpOpts()
	base.PolicySwitch = &PolicySwitch{At: time.Hour, To: core.ProximityOnly{}}
	if _, err := ComparePolicies(base); err == nil {
		t.Error("base with PolicySwitch set must be rejected")
	}
	if _, err := ComparePolicies(cmpOpts(), NamedPolicy{Name: "", Policy: core.ProximityOnly{}}); err == nil {
		t.Error("unnamed policy must be rejected")
	}
	if _, err := ComparePolicies(cmpOpts(), NamedPolicy{Name: "x", Policy: nil}); err == nil {
		t.Error("nil policy must be rejected")
	}
	dup := NamedPolicy{Name: "x", Policy: core.ProximityOnly{}}
	if _, err := ComparePolicies(cmpOpts(), dup, dup); err == nil {
		t.Error("duplicate names must be rejected")
	}
}

// TestComparePoliciesStoreSubdirs checks disk-backed comparisons keep
// one store per policy.
func TestComparePoliciesStoreSubdirs(t *testing.T) {
	base := Options{Scale: 0.002, Span: 24 * time.Hour, Seed: 7, Parallelism: 2}
	base.Store = &StoreOptions{Dir: t.TempDir(), SegmentRecords: 256}
	cmp, err := ComparePolicies(base,
		NamedPolicy{Name: "paper", Policy: core.DefaultPaperPolicy()},
		NamedPolicy{Name: "proximity", Policy: core.ProximityOnly{}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range cmp.Rows {
		entries, err := os.ReadDir(filepath.Join(base.Store.Dir, row.Policy))
		if err != nil || len(entries) == 0 {
			t.Errorf("policy %s: missing per-policy store (%v)", row.Policy, err)
		}
	}
}

// TestPolicyByName covers the flag-facing lookup.
func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown name must error")
	}
}

// TestPolicySwitchMidRun models the paper's observed assignment-policy
// change: a run that starts proximity-only and switches to the
// least-loaded policy halfway shows spills only the switched half can
// produce, while a switch at the very end leaves the run spill-free.
func TestPolicySwitchMidRun(t *testing.T) {
	base := Options{Scale: 0.01, Span: 2 * 24 * time.Hour, Seed: 7}
	base.Policy = core.ProximityOnly{}

	pure, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if spills, _, _ := pure.Selector.Counters(); spills != 0 {
		t.Fatalf("pure proximity run spilled %d times", spills)
	}

	switched := base
	switched.Policy = nil
	switched.Selector = &core.Config{MaxRedirects: 3, Policy: core.ProximityOnly{}}
	switched.PolicySwitch = &PolicySwitch{At: base.Span / 2, To: &core.LeastLoadedDC{}}
	study, err := Run(switched)
	if err != nil {
		t.Fatal(err)
	}
	if got := study.Selector.Policy().Name(); got != "least-loaded" {
		t.Errorf("post-run active policy = %q, want least-loaded", got)
	}
	spills, _, _ := study.Selector.Counters()
	if spills == 0 {
		t.Error("switched run produced no spills; the policy change had no effect")
	}
	if study.Selection.Chains == 0 {
		t.Error("no chains executed")
	}

	// A switch at the end of the span can never affect a decision —
	// it is a silent misconfiguration, and Run rejects it.
	lateSwitch := base
	lateSwitch.PolicySwitch = &PolicySwitch{At: base.Span, To: &core.LeastLoadedDC{}}
	if _, err := Run(lateSwitch); err == nil {
		t.Error("PolicySwitch.At == Span must be rejected")
	}
}

// TestPolicySwitchValidation covers the timeline's error paths.
func TestPolicySwitchValidation(t *testing.T) {
	base := Options{Scale: 0.002, Span: 24 * time.Hour}
	for _, sw := range []*PolicySwitch{
		{At: time.Hour, To: nil},
		{At: -time.Hour, To: core.ProximityOnly{}},
		{At: 24 * time.Hour, To: core.ProximityOnly{}},
		{At: 48 * time.Hour, To: core.ProximityOnly{}},
		{At: time.Hour, To: &core.ClientRace{K: -1}},
	} {
		opts := base
		opts.PolicySwitch = sw
		if _, err := Run(opts); err == nil {
			t.Errorf("PolicySwitch %+v must be rejected", sw)
		}
	}
}

// TestOptionsPolicyConflict rejects double policy configuration.
func TestOptionsPolicyConflict(t *testing.T) {
	opts := Options{Scale: 0.002, Span: 24 * time.Hour}
	opts.Policy = core.ProximityOnly{}
	opts.Selector = &core.Config{MaxRedirects: 3, Policy: core.ProximityOnly{}}
	if _, err := Run(opts); err == nil {
		t.Error("Options.Policy plus Selector.Policy must be rejected")
	}
}

// TestComparePoliciesShardedParity is the sub-VP sharding coverage for
// the comparison harness: every built-in policy run at SimShards > 1
// with SyncWindow 0 — at either sharding granularity — must produce a
// comparison table bit-identical to the unsharded one. Selection
// metrics, mechanism counters and flow totals all ride through the
// sharded merge unchanged, so sharded comparisons are trustworthy
// drop-in replacements for sequential ones.
func TestComparePoliciesShardedParity(t *testing.T) {
	ref, err := ComparePolicies(cmpOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		shards int
		by     ShardBy
	}{
		{shards: 5, by: ShardByVP},
		{shards: 5, by: ShardBySubnet},
	} {
		base := cmpOpts()
		base.SimShards = cfg.shards
		base.ShardBy = cfg.by
		got, err := ComparePolicies(base)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d by=%s: sharded comparison diverged from unsharded\n--- got ---\n%s\n--- want ---\n%s",
				cfg.shards, cfg.by, got.Render(), ref.Render())
		}
	}
}
