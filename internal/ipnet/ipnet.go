// Package ipnet provides the IPv4 addressing substrate for the
// simulated world: compact address values, prefix (CIDR) math, and
// sequential allocators that hand out server and client addresses from
// per-entity prefixes.
//
// The paper aggregates servers into data centers partly by /24 prefix
// (Section V: "all servers with IP addresses in the same /24 subnet are
// always aggregated to the same data center"), so /24 handling is a
// first-class operation here.
package ipnet

import (
	"fmt"
	"net/netip"
)

// Addr is a compact IPv4 address. Using uint32 keeps flow records small
// and hashable; convert with ToNetip for display.
type Addr uint32

// MustParseAddr parses dotted-quad s, panicking on malformed input.
// Intended for static world definitions, not untrusted input.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a dotted-quad IPv4 string.
func ParseAddr(s string) (Addr, error) {
	ip, err := netip.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("ipnet: %w", err)
	}
	if !ip.Is4() {
		return 0, fmt.Errorf("ipnet: %q is not IPv4", s)
	}
	b := ip.As4()
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])), nil
}

// ToNetip converts to a netip.Addr.
func (a Addr) ToNetip() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}

// String renders the address as a dotted quad.
func (a Addr) String() string { return a.ToNetip().String() }

// Slash24 returns the /24 prefix containing a, expressed as the network
// address (host byte zeroed).
func (a Addr) Slash24() Addr { return a &^ 0xff }

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Base Addr
	Bits int // prefix length, 0..32
}

// MustParsePrefix parses "a.b.c.d/n", panicking on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/n".
func ParsePrefix(s string) (Prefix, error) {
	pp, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, fmt.Errorf("ipnet: %w", err)
	}
	if !pp.Addr().Is4() {
		return Prefix{}, fmt.Errorf("ipnet: %q is not IPv4", s)
	}
	b := pp.Addr().As4()
	base := Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	p := Prefix{Base: base, Bits: pp.Bits()}
	return Prefix{Base: p.mask(base), Bits: pp.Bits()}, nil
}

func (p Prefix) maskBits() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	if p.Bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - p.Bits)
}

func (p Prefix) mask(a Addr) Addr { return Addr(uint32(a) & p.maskBits()) }

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool { return p.mask(a) == p.Base }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() int {
	if p.Bits >= 32 {
		return 1
	}
	return 1 << (32 - p.Bits)
}

// Nth returns the i-th address in the prefix. It returns an error when
// i is out of range rather than silently bleeding into a neighbour
// block, which would corrupt AS attribution in the simulator.
func (p Prefix) Nth(i int) (Addr, error) {
	if i < 0 || i >= p.Size() {
		return 0, fmt.Errorf("ipnet: index %d out of range for %s (size %d)", i, p, p.Size())
	}
	return p.Base + Addr(i), nil
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Base, p.Bits) }

// Allocator hands out sequential addresses from a prefix. The zero
// value is not usable; construct with NewAllocator.
type Allocator struct {
	prefix Prefix
	next   int
}

// NewAllocator returns an allocator over p starting at the first host
// offset (the network address itself is skipped, mirroring real
// deployments).
func NewAllocator(p Prefix) *Allocator {
	return &Allocator{prefix: p, next: 1}
}

// Next allocates the next unused address, or an error if p is
// exhausted.
func (al *Allocator) Next() (Addr, error) {
	a, err := al.prefix.Nth(al.next)
	if err != nil {
		return 0, fmt.Errorf("ipnet: prefix %s exhausted after %d allocations", al.prefix, al.next-1)
	}
	al.next++
	return a, nil
}

// Allocated returns how many addresses have been handed out.
func (al *Allocator) Allocated() int { return al.next - 1 }

// Prefix returns the block this allocator draws from.
func (al *Allocator) Prefix() Prefix { return al.prefix }
