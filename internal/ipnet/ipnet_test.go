package ipnet

import (
	"testing"
	"testing/quick"
)

func TestParseAddrRoundTrip(t *testing.T) {
	tests := []string{"0.0.0.0", "10.1.2.3", "192.168.0.1", "255.255.255.255", "8.8.8.8"}
	for _, s := range tests {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "not-an-ip", "1.2.3", "::1", "256.1.1.1"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) must fail", s)
		}
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr on bad input must panic")
		}
	}()
	MustParseAddr("nope")
}

func TestSlash24(t *testing.T) {
	a := MustParseAddr("172.16.5.77")
	if got := a.Slash24().String(); got != "172.16.5.0" {
		t.Errorf("Slash24 = %s", got)
	}
	// Property: any two addresses in the same /24 agree.
	f := func(raw uint32, h1, h2 uint8) bool {
		base := Addr(raw &^ 0xff)
		return (base + Addr(h1)).Slash24() == (base + Addr(h2)).Slash24()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.20.30.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.20.30.0/24" {
		t.Errorf("String = %s", p.String())
	}
	if p.Size() != 256 {
		t.Errorf("Size = %d", p.Size())
	}
	if !p.Contains(MustParseAddr("10.20.30.255")) {
		t.Error("must contain broadcast address of its own block")
	}
	if p.Contains(MustParseAddr("10.20.31.0")) {
		t.Error("must not contain neighbour block")
	}
}

func TestParsePrefixNormalizesHostBits(t *testing.T) {
	p, err := ParsePrefix("10.20.30.77/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.Base.String() != "10.20.30.0" {
		t.Errorf("Base = %s, want host bits cleared", p.Base)
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"", "10.0.0.0", "10.0.0.0/33", "::/64", "bogus/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) must fail", s)
		}
	}
}

func TestPrefixNth(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/30")
	a, err := p.Nth(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "192.0.2.3" {
		t.Errorf("Nth(3) = %s", a)
	}
	if _, err := p.Nth(4); err == nil {
		t.Error("Nth(4) of a /30 must fail")
	}
	if _, err := p.Nth(-1); err == nil {
		t.Error("Nth(-1) must fail")
	}
}

func TestPrefixSizeEdges(t *testing.T) {
	if MustParsePrefix("1.2.3.4/32").Size() != 1 {
		t.Error("/32 size must be 1")
	}
	if MustParsePrefix("128.0.0.0/1").Size() != 1<<31 {
		t.Error("/1 size wrong")
	}
}

func TestAllocatorSequence(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/29"))
	var got []string
	for i := 0; i < 7; i++ {
		a, err := al.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		got = append(got, a.String())
	}
	if got[0] != "10.0.0.1" || got[6] != "10.0.0.7" {
		t.Errorf("allocation order wrong: %v", got)
	}
	if al.Allocated() != 7 {
		t.Errorf("Allocated = %d", al.Allocated())
	}
	if _, err := al.Next(); err == nil {
		t.Error("allocator must exhaust after size-1 addresses")
	}
}

func TestAllocatorPrefix(t *testing.T) {
	p := MustParsePrefix("10.9.0.0/16")
	if NewAllocator(p).Prefix() != p {
		t.Error("Prefix accessor wrong")
	}
}

func TestAddrOrderingWithinPrefix(t *testing.T) {
	// Allocations from the same /24 must share the /24.
	al := NewAllocator(MustParsePrefix("203.0.113.0/24"))
	first, _ := al.Next()
	for i := 0; i < 100; i++ {
		a, err := al.Next()
		if err != nil {
			t.Fatal(err)
		}
		if a.Slash24() != first.Slash24() {
			t.Fatalf("address %s escaped the /24", a)
		}
	}
}
