// Package capture is the simulated Tstat probe: it defines the
// flow-level records logged at each vantage point's access link and
// the trace serialization used to move them between the simulator and
// the analysis pipeline.
//
// A record carries exactly the fields the paper's datasets expose
// (§III-B): source and destination addresses, start and end times,
// byte count, the VideoID string and the requested resolution. The
// analysis side sees nothing else — in particular, no data-center,
// redirect-reason or class annotations.
package capture

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// FlowRecord is one TCP flow as logged by the probe.
type FlowRecord struct {
	Client     ipnet.Addr
	Server     ipnet.Addr
	Start      time.Duration // offset from capture start
	End        time.Duration
	Bytes      int64
	VideoID    string // 11-character YouTube-style identifier
	Resolution string
}

// Duration returns the flow's lifetime.
func (r FlowRecord) Duration() time.Duration { return r.End - r.Start }

// Sink consumes flow records as the simulation emits them.
type Sink interface {
	Record(dataset string, rec FlowRecord)
}

// Iterator streams flow records one at a time. Next returns the next
// record and true, or a zero record and false once the stream is
// exhausted or fails; after Next returns false, Err reports the first
// error encountered (nil on clean exhaustion). Iterators are not safe
// for concurrent use.
type Iterator interface {
	Next() (FlowRecord, bool)
	Err() error
}

// TraceSource exposes captured traces per dataset as streams. It is
// the seam between trace storage (in-memory sinks, the disk-backed
// tracestore) and the analysis side: consumers that accept a
// TraceSource work identically over both.
type TraceSource interface {
	// Datasets returns the dataset names present, sorted.
	Datasets() []string
	// Iter returns a fresh iterator over one dataset's records. An
	// unknown dataset yields an empty iterator.
	Iter(dataset string) Iterator
}

// sliceIterator walks an in-memory record slice.
type sliceIterator struct {
	recs []FlowRecord
	i    int
}

// IterSlice returns an Iterator over recs. The slice is not copied;
// callers must not mutate it while iterating.
func IterSlice(recs []FlowRecord) Iterator { return &sliceIterator{recs: recs} }

func (it *sliceIterator) Next() (FlowRecord, bool) {
	if it.i >= len(it.recs) {
		return FlowRecord{}, false
	}
	r := it.recs[it.i]
	it.i++
	return r, true
}

func (it *sliceIterator) Err() error { return nil }

// ErrIter returns an empty iterator whose Err reports err — the
// iterator-shaped way to surface a failure discovered before streaming
// could begin.
func ErrIter(err error) Iterator { return &errIterator{err: err} }

type errIterator struct{ err error }

func (e *errIterator) Next() (FlowRecord, bool) { return FlowRecord{}, false }
func (e *errIterator) Err() error               { return e.err }

// FilterIter wraps an iterator, yielding only the records keep accepts.
// It is lazy — one upstream record is consumed per accepted (or
// skipped) record — so filtering a disk-backed stream stays bounded by
// the upstream's buffering.
func FilterIter(it Iterator, keep func(FlowRecord) bool) Iterator {
	return &filterIterator{it: it, keep: keep}
}

type filterIterator struct {
	it   Iterator
	keep func(FlowRecord) bool
}

func (f *filterIterator) Next() (FlowRecord, bool) {
	for {
		r, ok := f.it.Next()
		if !ok {
			return FlowRecord{}, false
		}
		if f.keep(r) {
			return r, true
		}
	}
}

func (f *filterIterator) Err() error { return f.it.Err() }

// Collect drains an iterator into a slice, returning the iterator's
// error if the stream failed.
func Collect(it Iterator) ([]FlowRecord, error) {
	var out []FlowRecord
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, it.Err()
}

// MapSource adapts a per-dataset record map to the TraceSource
// interface. The map and its slices are referenced, not copied.
type MapSource map[string][]FlowRecord

// Datasets implements TraceSource.
func (m MapSource) Datasets() []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Iter implements TraceSource.
func (m MapSource) Iter(dataset string) Iterator { return IterSlice(m[dataset]) }

var _ TraceSource = MapSource(nil)

// MemSink accumulates records per dataset in memory. It is safe for
// concurrent use, so it survives being tee'd from studies running in
// parallel.
type MemSink struct {
	mu sync.Mutex
	// guarded by mu
	byDataset map[string][]FlowRecord
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink {
	return &MemSink{byDataset: make(map[string][]FlowRecord)}
}

// Record implements Sink.
func (m *MemSink) Record(dataset string, rec FlowRecord) {
	m.mu.Lock()
	m.byDataset[dataset] = append(m.byDataset[dataset], rec)
	m.mu.Unlock()
}

// Trace returns a copy of the records captured for a dataset, in
// emission order. The copy is the caller's to keep: mutating it cannot
// corrupt the sink, and later Record calls do not grow it. A dataset
// never recorded returns nil. Use View to avoid the copy on hot paths.
func (m *MemSink) Trace(dataset string) []FlowRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	recs := m.byDataset[dataset]
	if recs == nil {
		return nil
	}
	out := make([]FlowRecord, len(recs))
	copy(out, recs)
	return out
}

// View returns the live backing slice for a dataset, in emission
// order. It is a read-only view: callers must not modify it, and must
// not call View while records are still being emitted (a concurrent
// Record may reallocate the slice). Analysis hot paths use View to
// avoid duplicating multi-million-record traces; everyone else should
// prefer Trace.
func (m *MemSink) View(dataset string) []FlowRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byDataset[dataset]
}

// Datasets returns the dataset names seen so far, sorted.
func (m *MemSink) Datasets() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.byDataset))
	for name := range m.byDataset {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Iter returns an iterator over a dataset's records in emission order.
// Like View, it reads the live backing slice: do not iterate while
// records are still being emitted.
func (m *MemSink) Iter(dataset string) Iterator { return IterSlice(m.View(dataset)) }

var _ TraceSource = (*MemSink)(nil)

// TotalRecords returns the record count across datasets.
func (m *MemSink) TotalRecords() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, recs := range m.byDataset {
		n += len(recs)
	}
	return n
}

var _ Sink = (*MemSink)(nil)

// WriterSink streams records as TSV lines, one file per study (the
// dataset name is the first column). It buffers internally; call Flush
// before reading the output. WriterSink is safe for concurrent use —
// each record is written as one atomic line, so a sink shared by
// concurrent studies (RunMany with a common ExtraSink) produces an
// interleaved but well-formed stream.
type WriterSink struct {
	mu sync.Mutex
	// guarded by mu
	w *bufio.Writer
	// err is sticky: the first write failure wins.
	// guarded by mu
	err error
}

// NewWriterSink wraps w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{w: bufio.NewWriterSize(w, 1<<20)}
}

// Record implements Sink. Errors are sticky and surfaced by Flush.
func (ws *WriterSink) Record(dataset string, rec FlowRecord) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.err != nil {
		return
	}
	_, ws.err = fmt.Fprintf(ws.w, "%s\t%s\t%s\t%d\t%d\t%d\t%s\t%s\n",
		dataset, rec.Client, rec.Server,
		rec.Start.Microseconds(), rec.End.Microseconds(),
		rec.Bytes, rec.VideoID, rec.Resolution)
}

// Flush drains the buffer and returns any write error.
func (ws *WriterSink) Flush() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.err != nil {
		return ws.err
	}
	return ws.w.Flush()
}

var _ Sink = (*WriterSink)(nil)

// ParseLine parses one TSV trace line produced by WriterSink.
func ParseLine(line string) (dataset string, rec FlowRecord, err error) {
	fields := strings.Split(strings.TrimRight(line, "\n"), "\t")
	if len(fields) != 8 {
		return "", FlowRecord{}, fmt.Errorf("capture: %d fields, want 8", len(fields))
	}
	client, err := ipnet.ParseAddr(fields[1])
	if err != nil {
		return "", FlowRecord{}, fmt.Errorf("capture: client: %w", err)
	}
	server, err := ipnet.ParseAddr(fields[2])
	if err != nil {
		return "", FlowRecord{}, fmt.Errorf("capture: server: %w", err)
	}
	startUs, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return "", FlowRecord{}, fmt.Errorf("capture: start: %w", err)
	}
	endUs, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil {
		return "", FlowRecord{}, fmt.Errorf("capture: end: %w", err)
	}
	bytes, err := strconv.ParseInt(fields[5], 10, 64)
	if err != nil {
		return "", FlowRecord{}, fmt.Errorf("capture: bytes: %w", err)
	}
	rec = FlowRecord{
		Client:     client,
		Server:     server,
		Start:      time.Duration(startUs) * time.Microsecond,
		End:        time.Duration(endUs) * time.Microsecond,
		Bytes:      bytes,
		VideoID:    fields[6],
		Resolution: fields[7],
	}
	return fields[0], rec, nil
}

// ReadTraces parses a full TSV stream into per-dataset record slices.
func ReadTraces(r io.Reader) (map[string][]FlowRecord, error) {
	out := make(map[string][]FlowRecord)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		ds, rec, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("capture: line %d: %w", lineNo, err)
		}
		out[ds] = append(out[ds], rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return out, nil
}

// TeeSink duplicates records to multiple sinks.
type TeeSink struct {
	sinks []Sink
}

// NewTeeSink combines sinks.
func NewTeeSink(sinks ...Sink) *TeeSink { return &TeeSink{sinks: sinks} }

// Record implements Sink.
func (t *TeeSink) Record(dataset string, rec FlowRecord) {
	for _, s := range t.sinks {
		s.Record(dataset, rec)
	}
}

var _ Sink = (*TeeSink)(nil)
