package capture

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

func sampleRecord() FlowRecord {
	return FlowRecord{
		Client:     ipnet.MustParseAddr("128.210.1.2"),
		Server:     ipnet.MustParseAddr("173.194.5.9"),
		Start:      1500 * time.Millisecond,
		End:        61500 * time.Millisecond,
		Bytes:      5_000_000,
		VideoID:    "dQw4w9WgXcQ",
		Resolution: "360p",
	}
}

func TestFlowRecordDuration(t *testing.T) {
	if got := sampleRecord().Duration(); got != time.Minute {
		t.Errorf("Duration = %v", got)
	}
}

func TestMemSink(t *testing.T) {
	m := NewMemSink()
	m.Record("ds1", sampleRecord())
	m.Record("ds1", sampleRecord())
	m.Record("ds2", sampleRecord())
	if len(m.Trace("ds1")) != 2 || len(m.Trace("ds2")) != 1 {
		t.Errorf("trace lengths wrong")
	}
	if m.TotalRecords() != 3 {
		t.Errorf("TotalRecords = %d", m.TotalRecords())
	}
	if len(m.Datasets()) != 2 {
		t.Errorf("Datasets = %v", m.Datasets())
	}
	if m.Trace("missing") != nil {
		t.Error("missing dataset must return nil")
	}
}

// TestMemSinkConcurrentRecord exercises the sink from many goroutines;
// meaningful under -race, and the totals must still add up.
func TestMemSinkConcurrentRecord(t *testing.T) {
	m := NewMemSink()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			ds := "ds1"
			if w%2 == 1 {
				ds = "ds2"
			}
			for i := 0; i < perWorker; i++ {
				m.Record(ds, sampleRecord())
			}
		}()
	}
	wg.Wait()
	if got := m.TotalRecords(); got != workers*perWorker {
		t.Errorf("TotalRecords = %d, want %d", got, workers*perWorker)
	}
	if len(m.Trace("ds1")) != workers/2*perWorker || len(m.Trace("ds2")) != workers/2*perWorker {
		t.Errorf("per-dataset counts wrong: %d / %d", len(m.Trace("ds1")), len(m.Trace("ds2")))
	}
}

// TestMemSinkTraceReturnsCopy pins the Trace contract: mutating the
// returned slice must not corrupt the sink, and View must keep
// exposing the original records.
func TestMemSinkTraceReturnsCopy(t *testing.T) {
	m := NewMemSink()
	m.Record("ds", sampleRecord())
	got := m.Trace("ds")
	got[0].Bytes = -1
	got[0].VideoID = "corrupted"
	if again := m.Trace("ds"); again[0] != sampleRecord() {
		t.Errorf("sink corrupted through Trace copy: %+v", again[0])
	}
	if view := m.View("ds"); view[0] != sampleRecord() {
		t.Errorf("sink corrupted through View: %+v", view[0])
	}
}

func TestMemSinkDatasetsSorted(t *testing.T) {
	m := NewMemSink()
	for _, ds := range []string{"zz", "aa", "mm"} {
		m.Record(ds, sampleRecord())
	}
	got := m.Datasets()
	want := []string{"aa", "mm", "zz"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Datasets = %v, want %v", got, want)
		}
	}
}

func TestIterSliceAndCollect(t *testing.T) {
	recs := []FlowRecord{sampleRecord(), sampleRecord()}
	recs[1].Bytes = 42
	got, err := Collect(IterSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Errorf("Collect = %+v", got)
	}
	it := IterSlice(nil)
	if _, ok := it.Next(); ok {
		t.Error("empty iterator must be exhausted")
	}
	if it.Err() != nil {
		t.Errorf("Err = %v", it.Err())
	}
}

func TestMapSource(t *testing.T) {
	src := MapSource{"b": {sampleRecord()}, "a": {sampleRecord(), sampleRecord()}}
	names := src.Datasets()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Datasets = %v", names)
	}
	recs, err := Collect(src.Iter("a"))
	if err != nil || len(recs) != 2 {
		t.Errorf("Iter(a): %d records, err %v", len(recs), err)
	}
	if recs, _ := Collect(src.Iter("missing")); recs != nil {
		t.Errorf("missing dataset iterated %d records", len(recs))
	}
}

func TestMemSinkIter(t *testing.T) {
	m := NewMemSink()
	m.Record("ds", sampleRecord())
	recs, err := Collect(m.Iter("ds"))
	if err != nil || len(recs) != 1 || recs[0] != sampleRecord() {
		t.Errorf("Iter: %+v, err %v", recs, err)
	}
}

func TestWriterSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ws := NewWriterSink(&buf)
	rec := sampleRecord()
	ws.Record("US-Campus", rec)
	ws.Record("EU2", rec)
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	traces, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces["US-Campus"]) != 1 || len(traces["EU2"]) != 1 {
		t.Fatalf("traces = %v", traces)
	}
	got := traces["US-Campus"][0]
	if got != rec {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

func TestWriterSinkStickyError(t *testing.T) {
	ws := NewWriterSink(failWriter{})
	for i := 0; i < 100000; i++ {
		ws.Record("x", sampleRecord())
	}
	if err := ws.Flush(); err == nil {
		t.Error("Flush must surface the write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "boom" }

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"",
		"too\tfew\tfields",
		"ds\tnot-an-ip\t1.1.1.1\t0\t1\t2\tv\t360p",
		"ds\t1.1.1.1\tnot-an-ip\t0\t1\t2\tv\t360p",
		"ds\t1.1.1.1\t2.2.2.2\tx\t1\t2\tv\t360p",
		"ds\t1.1.1.1\t2.2.2.2\t0\tx\t2\tv\t360p",
		"ds\t1.1.1.1\t2.2.2.2\t0\t1\tx\tv\t360p",
	}
	for _, line := range bad {
		if _, _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) must fail", line)
		}
	}
}

func TestReadTracesSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	ws := NewWriterSink(&buf)
	ws.Record("a", sampleRecord())
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	in := buf.String() + "\n\n"
	traces, err := ReadTraces(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces["a"]) != 1 {
		t.Errorf("records = %d", len(traces["a"]))
	}
}

func TestReadTracesReportsLineNumber(t *testing.T) {
	in := "ds\t1.1.1.1\t2.2.2.2\t0\t1\t2\tv\t360p\ngarbage line\n"
	if _, err := ReadTraces(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-numbered error, got %v", err)
	}
}

func TestTeeSink(t *testing.T) {
	a, b := NewMemSink(), NewMemSink()
	tee := NewTeeSink(a, b)
	tee.Record("x", sampleRecord())
	if a.TotalRecords() != 1 || b.TotalRecords() != 1 {
		t.Error("tee did not duplicate")
	}
}

func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(client, server uint32, startUs, durUs uint32, bytes uint32, vidRaw uint16) bool {
		rec := FlowRecord{
			Client:     ipnet.Addr(client),
			Server:     ipnet.Addr(server),
			Start:      time.Duration(startUs) * time.Microsecond,
			End:        time.Duration(startUs+durUs) * time.Microsecond,
			Bytes:      int64(bytes),
			VideoID:    "vid" + string(rune('A'+vidRaw%26)),
			Resolution: "480p",
		}
		var buf strings.Builder
		ws := NewWriterSink(&buf)
		ws.Record("p", rec)
		if err := ws.Flush(); err != nil {
			return false
		}
		ds, got, err := ParseLine(strings.TrimRight(buf.String(), "\n"))
		return err == nil && ds == "p" && got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
