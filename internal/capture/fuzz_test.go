package capture

import (
	"strings"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// FuzzTraceLineRoundTrip drives the text-trace serialization both
// ways: serialize an arbitrary record through WriterSink, parse the
// line back with ParseLine, and require the parsed record to equal the
// original. The TSV format's documented preconditions are enforced by
// skipping inputs it cannot represent: tab/newline bytes inside string
// fields (they are field and record separators) and timestamps outside
// microsecond precision or the representable microsecond range.
func FuzzTraceLineRoundTrip(f *testing.F) {
	f.Add("US-Campus", uint32(0x80D20102), uint32(0xADC20509), int64(1_500_000), int64(61_500_000), int64(5_000_000), "dQw4w9WgXcQ", "360p")
	f.Add("EU2", uint32(0), uint32(0xFFFFFFFF), int64(0), int64(0), int64(0), "", "")
	f.Add("x", uint32(1), uint32(2), int64(-5), int64(7), int64(-9), "v", "1080p")
	f.Fuzz(func(t *testing.T, dataset string, client, server uint32, startUs, endUs, bytes int64, videoID, resolution string) {
		for _, s := range []string{dataset, videoID, resolution} {
			if strings.ContainsAny(s, "\t\n\r") {
				t.Skip("TSV cannot represent separators inside fields")
			}
		}
		// Stay where Duration(us)*Microsecond cannot overflow int64.
		const maxUs = int64(1) << 52
		if startUs > maxUs || startUs < -maxUs || endUs > maxUs || endUs < -maxUs {
			t.Skip("outside representable microsecond range")
		}
		rec := FlowRecord{
			Client:     ipnet.Addr(client),
			Server:     ipnet.Addr(server),
			Start:      time.Duration(startUs) * time.Microsecond,
			End:        time.Duration(endUs) * time.Microsecond,
			Bytes:      bytes,
			VideoID:    videoID,
			Resolution: resolution,
		}
		var buf strings.Builder
		ws := NewWriterSink(&buf)
		ws.Record(dataset, rec)
		if err := ws.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		line := strings.TrimRight(buf.String(), "\n")
		gotDS, got, err := ParseLine(line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if gotDS != dataset {
			t.Errorf("dataset %q round-tripped to %q", dataset, gotDS)
		}
		if got != rec {
			t.Errorf("record round trip:\n got %+v\nwant %+v", got, rec)
		}
	})
}

// FuzzParseLine hammers the parser with arbitrary bytes: it must never
// panic, and every line it accepts must re-serialize to an equivalent
// record (parse → write → parse is a fixed point).
func FuzzParseLine(f *testing.F) {
	f.Add("ds\t1.1.1.1\t2.2.2.2\t0\t1\t2\tv\t360p")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		ds, rec, err := ParseLine(line)
		if err != nil {
			return
		}
		var buf strings.Builder
		ws := NewWriterSink(&buf)
		ws.Record(ds, rec)
		if err := ws.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		ds2, rec2, err := ParseLine(strings.TrimRight(buf.String(), "\n"))
		if err != nil {
			t.Fatalf("re-parse of accepted line failed: %v", err)
		}
		if ds2 != ds || rec2 != rec {
			t.Errorf("parse/write/parse not a fixed point:\n got (%q, %+v)\nwant (%q, %+v)", ds2, rec2, ds, rec)
		}
	})
}
