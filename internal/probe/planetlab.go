package probe

import (
	"fmt"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/netmodel"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// PLNode is one PlanetLab-style download node.
type PLNode struct {
	Name string
	Loc  geo.Point
	// Preferred is the node's RTT-best Google data center.
	Preferred topology.DataCenterID
}

// PLSample is one timed download measurement.
type PLSample struct {
	Node   int
	Round  int
	At     time.Duration
	Server topology.ServerID
	// FromDC is the data center that served the request.
	FromDC topology.DataCenterID
	// RTTMs is the measured RTT to the serving server.
	RTTMs float64
}

// PLResult collects an unpopular-video experiment.
type PLResult struct {
	Nodes   []PLNode
	Samples []PLSample
	// OriginDC is where the fresh test video was placed at upload.
	OriginDC topology.DataCenterID
}

// NodeSeries returns one node's samples in round order (Fig 17).
func (r *PLResult) NodeSeries(node int) []PLSample {
	var out []PLSample
	for _, s := range r.Samples {
		if s.Node == node {
			out = append(out, s)
		}
	}
	return out
}

// RTTRatios returns RTT(first sample)/RTT(second sample) per node
// (Fig 18).
func (r *PLResult) RTTRatios() []float64 {
	out := make([]float64, 0, len(r.Nodes))
	for n := range r.Nodes {
		series := r.NodeSeries(n)
		if len(series) < 2 || series[1].RTTMs <= 0 {
			continue
		}
		out = append(out, series[0].RTTMs/series[1].RTTMs)
	}
	return out
}

// PlanetLabConfig parameterizes the §VII-C active experiment.
type PlanetLabConfig struct {
	// Nodes is the number of download nodes (the paper used 45).
	Nodes int
	// Rounds is the number of downloads per node (every 30 minutes for
	// 12 hours = 25 samples including the first).
	Rounds int
	// Interval is the time between rounds.
	Interval time.Duration
	// OriginCity places the freshly uploaded test video (the paper's
	// test video landed in the Netherlands).
	OriginCity string
	// Video optionally selects the uploaded test video; zero means the
	// catalog's last (deepest-tail) video. Repeated experiments must
	// use distinct videos: pull-through is permanent, so re-running
	// with the same video finds it already cached everywhere.
	Video content.VideoID
	// PingSamples is the number of pings per RTT measurement.
	PingSamples int
}

// DefaultPlanetLabConfig matches the paper's setup.
func DefaultPlanetLabConfig() PlanetLabConfig {
	return PlanetLabConfig{
		Nodes:       45,
		Rounds:      25,
		Interval:    30 * time.Minute,
		OriginCity:  geo.Amsterdam.Name,
		PingSamples: 5,
	}
}

// RunPlanetLab uploads a fresh tail video to one origin data center
// and downloads it repeatedly from a worldwide node set, recording the
// serving data center and RTT of every download. It reproduces the
// paper's finding: the first access is often served from the (distant)
// origin, subsequent accesses from the node's preferred data center,
// because the preferred DC pulls the video through on the miss.
func RunPlanetLab(w *topology.World, cat *content.Catalog, pl *core.Placement, cfg PlanetLabConfig, g *stats.RNG) (*PLResult, error) {
	if cfg.Nodes < 1 || cfg.Rounds < 2 {
		return nil, fmt.Errorf("probe: need >= 1 node and >= 2 rounds, got %d/%d", cfg.Nodes, cfg.Rounds)
	}
	if len(w.Landmarks) < cfg.Nodes {
		return nil, fmt.Errorf("probe: world has %d landmark sites, need %d", len(w.Landmarks), cfg.Nodes)
	}

	// The fresh upload, pinned to the origin city.
	video := cfg.Video
	if video == 0 {
		video = content.VideoID(cat.N() - 1)
	}
	if !cat.IsTail(video) {
		return nil, fmt.Errorf("probe: video %d is not a tail video", video)
	}
	var origin *topology.DataCenter
	for _, id := range w.GoogleDCs() {
		if w.DC(id).City.Name == cfg.OriginCity {
			origin = w.DC(id)
			break
		}
	}
	if origin == nil {
		return nil, fmt.Errorf("probe: no Google data center in %q", cfg.OriginCity)
	}
	pl.ForceOrigins(video, []topology.DataCenterID{origin.ID})

	res := &PLResult{OriginDC: origin.ID}

	// Spread nodes over the landmark sites (which follow the paper's
	// continental mix). A random subset avoids resonances between the
	// landmark layout and the node count, maximizing the diversity of
	// preferred data centers ("nodes were carefully selected so that
	// most of them had different preferred data centers", §VII-C).
	google := w.GoogleDCs()
	perm := g.Perm(len(w.Landmarks))
	endpoints := make([]netmodel.Endpoint, 0, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		lm := w.Landmarks[perm[n]]
		ep := netmodel.Endpoint{ID: "pl-" + lm.Name, Loc: lm.Loc, Access: netmodel.AccessBackbone}
		best := google[0]
		bestRTT := w.Net.BaseRTT(ep, w.DC(best).Endpoint())
		for _, id := range google[1:] {
			if rtt := w.Net.BaseRTT(ep, w.DC(id).Endpoint()); rtt < bestRTT {
				best, bestRTT = id, rtt
			}
		}
		res.Nodes = append(res.Nodes, PLNode{Name: lm.Name, Loc: lm.Loc, Preferred: best})
		endpoints = append(endpoints, ep)
	}

	// Rounds: all nodes download once per interval. Within a round
	// nodes proceed in order, so a node can benefit from a pull
	// triggered earlier in the same round (as overlapping PlanetLab
	// schedules did).
	for round := 0; round < cfg.Rounds; round++ {
		at := time.Duration(round) * cfg.Interval
		for n := range res.Nodes {
			node := &res.Nodes[n]
			serveDC := node.Preferred
			if !pl.Has(serveDC, video, geo.ContinentOf(node.Loc), 0, nil) {
				// Miss: served by the origin, pulled through locally.
				pl.Pull(serveDC, video)
				serveDC = origin.ID
			}
			fleet := w.DC(serveDC).Servers
			srv := fleet[int(hashNodeVideo(n, int(video)))%len(fleet)]
			rtt := w.Net.MinRTT(endpoints[n], netmodel.Endpoint{
				ID:     "srv-" + srv.Addr.String(),
				Loc:    w.DC(serveDC).City.Point,
				Access: netmodel.AccessDataCenter,
			}, cfg.PingSamples, g)
			res.Samples = append(res.Samples, PLSample{
				Node:   n,
				Round:  round,
				At:     at,
				Server: srv.ID,
				FromDC: serveDC,
				RTTMs:  rtt.Seconds() * 1000,
			})
		}
	}
	return res, nil
}

// hashNodeVideo gives the within-DC server choice for a download.
func hashNodeVideo(node, video int) uint32 {
	x := uint32(node)*2654435761 + uint32(video)*40503
	x ^= x >> 13
	return x * 2246822519
}
