package probe

import (
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

func testWorld(t *testing.T) *topology.World {
	t.Helper()
	w, err := topology.BuildPaperWorld(topology.PaperConfig{
		Scale:             0.01,
		ServersPerDCNA:    4,
		ServersPerDCEU:    4,
		ServersPerDCOther: 4,
		LegacyServers:     8,
		ThirdPartyServers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMinRTTFromVP(t *testing.T) {
	w := testWorld(t)
	p := New(w, stats.NewRNG(1))
	// A Milan server from the Turin campus: a few ms.
	var milanSrv, mvSrv ipnet.Addr
	for _, dc := range w.DataCenters {
		if dc.Class != topology.ClassGoogle {
			continue
		}
		switch dc.City.Name {
		case geo.Milan.Name:
			milanSrv = dc.Servers[0].Addr
		case geo.MountainView.Name:
			mvSrv = dc.Servers[0].Addr
		}
	}
	near, err := p.MinRTTFromVP(topology.DatasetEU1Campus, milanSrv, 10)
	if err != nil {
		t.Fatal(err)
	}
	far, err := p.MinRTTFromVP(topology.DatasetEU1Campus, mvSrv, 10)
	if err != nil {
		t.Fatal(err)
	}
	if near >= far {
		t.Errorf("Milan (%v) must be closer than Mountain View (%v)", near, far)
	}
	if far < 90*time.Millisecond {
		t.Errorf("transatlantic RTT %v implausibly low", far)
	}
}

func TestMinRTTUnknownTargets(t *testing.T) {
	w := testWorld(t)
	p := New(w, stats.NewRNG(2))
	if _, err := p.MinRTTFromVP(topology.DatasetEU2, ipnet.MustParseAddr("9.9.9.9"), 3); err == nil {
		t.Error("unknown target must error")
	}
	if _, err := p.MinRTTFromVP("nope", w.Servers[0].Addr, 3); err == nil {
		t.Error("unknown VP must error")
	}
}

func TestCampaignSkipsUnroutable(t *testing.T) {
	w := testWorld(t)
	p := New(w, stats.NewRNG(3))
	targets := []ipnet.Addr{w.Servers[0].Addr, ipnet.MustParseAddr("9.9.9.9")}
	out, err := p.CampaignFromVP(topology.DatasetUSCampus, targets, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("campaign answered %d targets, want 1", len(out))
	}
	if _, err := p.CampaignFromVP(topology.DatasetUSCampus, []ipnet.Addr{ipnet.MustParseAddr("9.9.9.9")}, 3); err == nil {
		t.Error("all-unroutable campaign must error")
	}
}

// TestCampaignParallelMatchesSequential pins the order-independence
// contract: a campaign fanned out over a pool is bit-identical to the
// sequential one, because every pair draws noise from its own forked
// stream.
func TestCampaignParallelMatchesSequential(t *testing.T) {
	w := testWorld(t)
	p := New(w, stats.NewRNG(11))
	var targets []ipnet.Addr
	for _, srv := range w.Servers {
		targets = append(targets, srv.Addr)
		if len(targets) == 40 {
			break
		}
	}
	seq, err := p.CampaignFromVP(topology.DatasetUSCampus, targets, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range []int{2, 8, 0} {
		got, err := p.CampaignFromVPParallel(topology.DatasetUSCampus, targets, 5, pool)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(seq) {
			t.Fatalf("pool %d: %d answers, want %d", pool, len(got), len(seq))
		}
		for addr, ms := range seq {
			if got[addr] != ms {
				t.Errorf("pool %d: %s = %v, want %v", pool, addr, got[addr], ms)
			}
		}
	}
}

func TestCrossRTTMatrixSymmetric(t *testing.T) {
	w := testWorld(t)
	p := New(w, stats.NewRNG(4))
	m := p.CrossRTTMatrix(3)
	n := len(w.Landmarks)
	if len(m) != n {
		t.Fatalf("matrix size %d, want %d", len(m), n)
	}
	for i := 0; i < n; i += 17 {
		for j := 0; j < n; j += 13 {
			if m[i][j] != m[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
			if i == j && m[i][j] != 0 {
				t.Fatalf("diagonal not zero")
			}
		}
	}
}

func TestLandmarkRTTsPlausible(t *testing.T) {
	w := testWorld(t)
	p := New(w, stats.NewRNG(5))
	rtts, err := p.LandmarkRTTs(w.Servers[0].Addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtts) != len(w.Landmarks) {
		t.Fatalf("rtts = %d, want %d", len(rtts), len(w.Landmarks))
	}
	for i, rtt := range rtts {
		if rtt <= 0 || rtt > time.Second {
			t.Fatalf("landmark %d rtt %v implausible", i, rtt)
		}
	}
}

func newPlacement(t *testing.T, w *topology.World) (*content.Catalog, *core.Placement) {
	t.Helper()
	cat, err := content.NewCatalog(content.Config{
		N: 1000, ZipfExponent: 0.8, TailRank: 500, VOTDShare: 0, Days: 1,
		MedianDuration: time.Minute, DurationSigma: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlacement(w, cat, core.OriginPolicy{CopiesPerVideo: 2})
	if err != nil {
		t.Fatal(err)
	}
	return cat, pl
}

func TestRunPlanetLabValidation(t *testing.T) {
	w := testWorld(t)
	cat, pl := newPlacement(t, w)
	cfg := DefaultPlanetLabConfig()
	cfg.Nodes = 0
	if _, err := RunPlanetLab(w, cat, pl, cfg, stats.NewRNG(6)); err == nil {
		t.Error("zero nodes must fail")
	}
	cfg = DefaultPlanetLabConfig()
	cfg.OriginCity = "Atlantis"
	if _, err := RunPlanetLab(w, cat, pl, cfg, stats.NewRNG(6)); err == nil {
		t.Error("unknown origin city must fail")
	}
}

func TestRunPlanetLabFirstAccessPenalty(t *testing.T) {
	w := testWorld(t)
	cat, pl := newPlacement(t, w)
	cfg := DefaultPlanetLabConfig()
	cfg.Nodes = 20
	cfg.Rounds = 5
	res, err := RunPlanetLab(w, cat, pl, cfg, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 20*5 {
		t.Fatalf("samples = %d", len(res.Samples))
	}

	// Every node is served from its preferred DC from round 1 onward.
	for n := range res.Nodes {
		series := res.NodeSeries(n)
		for _, s := range series[1:] {
			if s.FromDC != res.Nodes[n].Preferred {
				t.Fatalf("node %d round %d served from %d, want preferred %d",
					n, s.Round, s.FromDC, res.Nodes[n].Preferred)
			}
		}
	}

	// Some node far from the origin must pay a first-access penalty.
	ratios := res.RTTRatios()
	if len(ratios) == 0 {
		t.Fatal("no ratios")
	}
	maxRatio := 0.0
	for _, r := range ratios {
		if r > maxRatio {
			maxRatio = r
		}
	}
	if maxRatio < 3 {
		t.Errorf("max RTT1/RTT2 = %.2f; expected a clear first-access penalty", maxRatio)
	}
	// And no ratio is materially below 1 (the second access is never
	// slower than the first in expectation).
	for _, r := range ratios {
		if r < 0.3 {
			t.Errorf("ratio %.2f too low", r)
		}
	}
}

func TestRunPlanetLabSharedPull(t *testing.T) {
	// Two nodes with the same preferred DC: only the first one's first
	// access misses.
	w := testWorld(t)
	cat, pl := newPlacement(t, w)
	cfg := DefaultPlanetLabConfig()
	cfg.Nodes = 45
	cfg.Rounds = 3
	res, err := RunPlanetLab(w, cat, pl, cfg, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	missed := make(map[topology.DataCenterID]int)
	for _, s := range res.Samples {
		if s.Round == 0 && s.FromDC == res.OriginDC {
			node := res.Nodes[s.Node]
			if node.Preferred != res.OriginDC {
				missed[node.Preferred]++
			}
		}
	}
	for dc, n := range missed {
		if n > 1 {
			t.Errorf("preferred DC %d missed %d times in round 0; pull-through must dedupe", dc, n)
		}
	}
}
