// Package probe provides the active-measurement side of the paper's
// methodology: ping campaigns from vantage points and landmarks toward
// content servers (Figs 2, 3, 7, 8; Table III inputs) and the
// PlanetLab first-access experiment on unpopular videos (Figs 17, 18).
//
// A Prober interacts with the simulated network the way ping interacts
// with the real one: it learns round-trip times and nothing else.
package probe

import (
	"fmt"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/geoloc"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/netmodel"
	"github.com/ytcdn-sim/ytcdn/internal/par"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// Prober issues RTT measurements against a world. Every measurement
// draws its noise from a stream forked off the prober's base RNG and
// labelled by the measured pair, so results depend only on what is
// measured — never on the order measurements are issued in. That makes
// the Prober safe for concurrent use and keeps parallel measurement
// campaigns bit-identical to sequential ones.
type Prober struct {
	w *topology.World
	g *stats.RNG
}

// New returns a prober drawing measurement noise from streams forked
// off g.
func New(w *topology.World, g *stats.RNG) *Prober {
	return &Prober{w: w, g: g}
}

// serverEndpoint builds the per-server network endpoint. Servers in
// one data center share a location but keep distinct identities, so
// measured paths to them differ slightly — like real co-located
// machines behind different ports and peerings.
func (p *Prober) serverEndpoint(addr ipnet.Addr) (netmodel.Endpoint, error) {
	srv, ok := p.w.ServerByAddr(addr)
	if !ok {
		return netmodel.Endpoint{}, fmt.Errorf("probe: %s does not answer pings", addr)
	}
	dc := p.w.DC(srv.DC)
	return netmodel.Endpoint{
		ID:     "srv-" + addr.String(),
		Loc:    dc.City.Point,
		Access: netmodel.AccessDataCenter,
	}, nil
}

// MinRTT probes target n times from the given endpoint and returns the
// minimum, the standard latency estimate. The measurement noise is a
// pure function of (prober seed, from.ID, target), so repeating a
// measurement reproduces it.
func (p *Prober) MinRTT(from netmodel.Endpoint, target ipnet.Addr, n int) (time.Duration, error) {
	ep, err := p.serverEndpoint(target)
	if err != nil {
		return 0, err
	}
	g := p.g.Fork("minrtt/" + from.ID + "/" + target.String())
	return p.w.Net.MinRTT(from, ep, n, g), nil
}

// MinRTTFromVP probes target from a vantage point's monitored network.
func (p *Prober) MinRTTFromVP(vpName string, target ipnet.Addr, n int) (time.Duration, error) {
	idx := p.w.VPIndex(vpName)
	if idx < 0 {
		return 0, fmt.Errorf("probe: unknown vantage point %q", vpName)
	}
	return p.MinRTT(p.w.VantagePoints[idx].Endpoint(), target, n)
}

// CampaignFromVP measures every target from a vantage point and
// returns per-address minimum RTTs in milliseconds (the Fig 2 / Fig 7
// campaigns). It probes sequentially; CampaignFromVPParallel fans the
// same measurements out over a worker pool.
func (p *Prober) CampaignFromVP(vpName string, targets []ipnet.Addr, n int) (map[ipnet.Addr]float64, error) {
	return p.CampaignFromVPParallel(vpName, targets, n, 1)
}

// CampaignFromVPParallel measures every target from a vantage point,
// fanning the per-target probes out across a worker pool of the given
// size (values < 1 mean one worker per core). Each measurement draws
// noise from a stream forked by (vantage point, target), so the
// campaign is order-independent: the result map is identical at every
// pool size, including the sequential CampaignFromVP.
func (p *Prober) CampaignFromVPParallel(vpName string, targets []ipnet.Addr, n, parallelism int) (map[ipnet.Addr]float64, error) {
	idx := p.w.VPIndex(vpName)
	if idx < 0 {
		return nil, fmt.Errorf("probe: unknown vantage point %q", vpName)
	}
	from := p.w.VantagePoints[idx].Endpoint()
	rtts := make([]time.Duration, len(targets))
	answered := make([]bool, len(targets))
	par.ForEach(len(targets), par.Normalize(parallelism), func(i int) {
		rtt, err := p.MinRTT(from, targets[i], n)
		if err != nil {
			// Unroutable targets simply drop out of the campaign, as
			// unreachable hosts do in real ping sweeps.
			return
		}
		rtts[i] = rtt
		answered[i] = true
	})
	out := make(map[ipnet.Addr]float64, len(targets))
	for i, t := range targets {
		if answered[i] {
			out[t] = rtts[i].Seconds() * 1000
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("probe: no target of %d answered from %s", len(targets), vpName)
	}
	return out, nil
}

// LandmarkInfos converts the world's landmarks into CBG inputs.
func (p *Prober) LandmarkInfos() []geoloc.LandmarkInfo {
	out := make([]geoloc.LandmarkInfo, len(p.w.Landmarks))
	for i, lm := range p.w.Landmarks {
		out[i] = geoloc.LandmarkInfo{Name: lm.Name, Loc: lm.Loc}
	}
	return out
}

// LandmarkPairRTT measures one landmark-to-landmark minimum RTT (a
// single CBG calibration input). The noise stream is forked per
// ordered pair, so measuring pairs in any order — or concurrently —
// reproduces the same matrix.
func (p *Prober) LandmarkPairRTT(i, j, samples int) time.Duration {
	if i > j {
		i, j = j, i
	}
	if i == j {
		return 0
	}
	g := p.g.Fork(fmt.Sprintf("cross/%d/%d", i, j))
	return p.w.Net.MinRTT(p.w.Landmarks[i].Endpoint(), p.w.Landmarks[j].Endpoint(), samples, g)
}

// CrossRTTMatrix measures landmark-to-landmark minimum RTTs for CBG
// calibration.
func (p *Prober) CrossRTTMatrix(samples int) [][]time.Duration {
	return p.CrossRTTMatrixParallel(samples, 1)
}

// CrossRTTMatrixParallel measures the same matrix fanning the
// independent pair measurements out across a worker pool of the given
// size. The result is identical at every pool size.
func (p *Prober) CrossRTTMatrixParallel(samples, parallelism int) [][]time.Duration {
	n := len(p.w.Landmarks)
	m := make([][]time.Duration, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
	}
	type pair struct{ i, j int }
	pairs := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	vals := make([]time.Duration, len(pairs))
	par.ForEach(len(pairs), parallelism, func(k int) {
		vals[k] = p.LandmarkPairRTT(pairs[k].i, pairs[k].j, samples)
	})
	for k, pr := range pairs {
		m[pr.i][pr.j] = vals[k]
		m[pr.j][pr.i] = vals[k]
	}
	return m
}

// LandmarkRTTs measures a target from every landmark (one CBG
// localization input). The whole sweep draws from one stream forked
// per target, so localizing many targets concurrently reproduces the
// sequential measurements exactly.
func (p *Prober) LandmarkRTTs(target ipnet.Addr, samples int) ([]time.Duration, error) {
	ep, err := p.serverEndpoint(target)
	if err != nil {
		return nil, err
	}
	g := p.g.Fork("lmrtt/" + target.String())
	out := make([]time.Duration, len(p.w.Landmarks))
	for i, lm := range p.w.Landmarks {
		out[i] = p.w.Net.MinRTT(lm.Endpoint(), ep, samples, g)
	}
	return out, nil
}
