// Package probe provides the active-measurement side of the paper's
// methodology: ping campaigns from vantage points and landmarks toward
// content servers (Figs 2, 3, 7, 8; Table III inputs) and the
// PlanetLab first-access experiment on unpopular videos (Figs 17, 18).
//
// A Prober interacts with the simulated network the way ping interacts
// with the real one: it learns round-trip times and nothing else.
package probe

import (
	"fmt"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/geoloc"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/netmodel"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// Prober issues RTT measurements against a world.
type Prober struct {
	w *topology.World
	g *stats.RNG
}

// New returns a prober drawing measurement noise from g.
func New(w *topology.World, g *stats.RNG) *Prober {
	return &Prober{w: w, g: g}
}

// serverEndpoint builds the per-server network endpoint. Servers in
// one data center share a location but keep distinct identities, so
// measured paths to them differ slightly — like real co-located
// machines behind different ports and peerings.
func (p *Prober) serverEndpoint(addr ipnet.Addr) (netmodel.Endpoint, error) {
	srv, ok := p.w.ServerByAddr(addr)
	if !ok {
		return netmodel.Endpoint{}, fmt.Errorf("probe: %s does not answer pings", addr)
	}
	dc := p.w.DC(srv.DC)
	return netmodel.Endpoint{
		ID:     "srv-" + addr.String(),
		Loc:    dc.City.Point,
		Access: netmodel.AccessDataCenter,
	}, nil
}

// MinRTT probes target n times from the given endpoint and returns the
// minimum, the standard latency estimate.
func (p *Prober) MinRTT(from netmodel.Endpoint, target ipnet.Addr, n int) (time.Duration, error) {
	ep, err := p.serverEndpoint(target)
	if err != nil {
		return 0, err
	}
	return p.w.Net.MinRTT(from, ep, n, p.g), nil
}

// MinRTTFromVP probes target from a vantage point's monitored network.
func (p *Prober) MinRTTFromVP(vpName string, target ipnet.Addr, n int) (time.Duration, error) {
	idx := p.w.VPIndex(vpName)
	if idx < 0 {
		return 0, fmt.Errorf("probe: unknown vantage point %q", vpName)
	}
	return p.MinRTT(p.w.VantagePoints[idx].Endpoint(), target, n)
}

// CampaignFromVP measures every target from a vantage point and
// returns per-address minimum RTTs in milliseconds (the Fig 2 / Fig 7
// campaigns).
func (p *Prober) CampaignFromVP(vpName string, targets []ipnet.Addr, n int) (map[ipnet.Addr]float64, error) {
	out := make(map[ipnet.Addr]float64, len(targets))
	for _, t := range targets {
		rtt, err := p.MinRTT(p.w.VantagePoints[p.w.VPIndex(vpName)].Endpoint(), t, n)
		if err != nil {
			// Unroutable targets simply drop out of the campaign, as
			// unreachable hosts do in real ping sweeps.
			continue
		}
		out[t] = rtt.Seconds() * 1000
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("probe: no target of %d answered from %s", len(targets), vpName)
	}
	return out, nil
}

// LandmarkInfos converts the world's landmarks into CBG inputs.
func (p *Prober) LandmarkInfos() []geoloc.LandmarkInfo {
	out := make([]geoloc.LandmarkInfo, len(p.w.Landmarks))
	for i, lm := range p.w.Landmarks {
		out[i] = geoloc.LandmarkInfo{Name: lm.Name, Loc: lm.Loc}
	}
	return out
}

// CrossRTTMatrix measures landmark-to-landmark minimum RTTs for CBG
// calibration.
func (p *Prober) CrossRTTMatrix(samples int) [][]time.Duration {
	n := len(p.w.Landmarks)
	m := make([][]time.Duration, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rtt := p.w.Net.MinRTT(p.w.Landmarks[i].Endpoint(), p.w.Landmarks[j].Endpoint(), samples, p.g)
			m[i][j] = rtt
			m[j][i] = rtt
		}
	}
	return m
}

// LandmarkRTTs measures a target from every landmark (one CBG
// localization input).
func (p *Prober) LandmarkRTTs(target ipnet.Addr, samples int) ([]time.Duration, error) {
	ep, err := p.serverEndpoint(target)
	if err != nil {
		return nil, err
	}
	out := make([]time.Duration, len(p.w.Landmarks))
	for i, lm := range p.w.Landmarks {
		out[i] = p.w.Net.MinRTT(lm.Endpoint(), ep, samples, p.g)
	}
	return out, nil
}
