// Package asdb is the simulated whois: a registry mapping IP prefixes
// to autonomous systems. The analysis pipeline queries it exactly the
// way the paper used the whois tool (Section IV) to produce Table II,
// with no access to simulator internals.
package asdb

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// ASN is an autonomous system number.
type ASN uint32

// Well-known ASNs from the paper (Section IV / Table II).
const (
	ASGoogle    ASN = 15169 // Google Inc.
	ASYouTubeEU ASN = 43515 // YouTube-EU (legacy)
	ASCW        ASN = 1273  // Cable & Wireless
	ASGBLX      ASN = 3549  // Global Crossing
)

// AS describes one autonomous system.
type AS struct {
	Number ASN
	Name   string
}

// String implements fmt.Stringer.
func (a AS) String() string { return fmt.Sprintf("AS%d (%s)", a.Number, a.Name) }

// Registry maps prefixes to ASes with longest-prefix-match lookup.
// The zero value is an empty registry ready for Register calls.
// Registration is not safe for concurrent use, but once registration
// is done, any number of goroutines may Lookup concurrently (the lazy
// sort on first lookup is mutex-guarded).
type Registry struct {
	mu sync.Mutex // guards the lazy sort
	// entries is append-only during single-threaded registration and
	// immutable after the first Lookup sorts it.
	entries []entry
	asNames map[ASN]string
	// guarded by mu
	sorted bool
}

type entry struct {
	prefix ipnet.Prefix
	asn    ASN
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{asNames: make(map[ASN]string)}
}

// Register announces prefix as originated by the given AS.
func (r *Registry) Register(prefix ipnet.Prefix, as AS) {
	if r.asNames == nil {
		r.asNames = make(map[ASN]string)
	}
	r.entries = append(r.entries, entry{prefix: prefix, asn: as.Number})
	r.asNames[as.Number] = as.Name
	//lint:ok lockguard registration is single-threaded by contract (type doc); concurrency starts at the first Lookup
	r.sorted = false
}

func (r *Registry) ensureSorted() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sorted {
		return
	}
	// Longest prefixes first so the first containing entry wins.
	sort.SliceStable(r.entries, func(i, j int) bool {
		return r.entries[i].prefix.Bits > r.entries[j].prefix.Bits
	})
	r.sorted = true
}

// Lookup performs a whois-style query: it returns the AS originating
// the longest registered prefix containing addr, or ok=false when the
// address is unrouted.
func (r *Registry) Lookup(addr ipnet.Addr) (AS, bool) {
	r.ensureSorted()
	for _, e := range r.entries {
		if e.prefix.Contains(addr) {
			return AS{Number: e.asn, Name: r.asNames[e.asn]}, true
		}
	}
	return AS{}, false
}

// Name returns the registered name for an ASN, or "" if unknown.
func (r *Registry) Name(asn ASN) string { return r.asNames[asn] }

// Len returns the number of registered prefixes.
func (r *Registry) Len() int { return len(r.entries) }
