package asdb

import (
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

func TestLookupBasic(t *testing.T) {
	r := NewRegistry()
	r.Register(ipnet.MustParsePrefix("173.194.0.0/16"), AS{ASGoogle, "Google Inc."})
	r.Register(ipnet.MustParsePrefix("208.117.224.0/19"), AS{ASYouTubeEU, "YouTube-EU"})

	as, ok := r.Lookup(ipnet.MustParseAddr("173.194.55.1"))
	if !ok || as.Number != ASGoogle {
		t.Fatalf("Lookup google addr = %v, %v", as, ok)
	}
	as, ok = r.Lookup(ipnet.MustParseAddr("208.117.230.9"))
	if !ok || as.Number != ASYouTubeEU {
		t.Fatalf("Lookup yt-eu addr = %v, %v", as, ok)
	}
	if _, ok := r.Lookup(ipnet.MustParseAddr("9.9.9.9")); ok {
		t.Error("unrouted address must miss")
	}
}

func TestLookupLongestPrefixWins(t *testing.T) {
	r := NewRegistry()
	r.Register(ipnet.MustParsePrefix("10.0.0.0/8"), AS{100, "coarse"})
	r.Register(ipnet.MustParsePrefix("10.5.0.0/16"), AS{200, "fine"})
	r.Register(ipnet.MustParsePrefix("10.5.5.0/24"), AS{300, "finest"})

	tests := []struct {
		addr string
		want ASN
	}{
		{"10.1.1.1", 100},
		{"10.5.1.1", 200},
		{"10.5.5.5", 300},
	}
	for _, tt := range tests {
		as, ok := r.Lookup(ipnet.MustParseAddr(tt.addr))
		if !ok || as.Number != tt.want {
			t.Errorf("Lookup(%s) = %v, want AS%d", tt.addr, as, tt.want)
		}
	}
}

func TestLookupAfterLateRegister(t *testing.T) {
	r := NewRegistry()
	r.Register(ipnet.MustParsePrefix("10.0.0.0/8"), AS{100, "coarse"})
	if as, _ := r.Lookup(ipnet.MustParseAddr("10.5.5.5")); as.Number != 100 {
		t.Fatal("initial lookup failed")
	}
	// Registering a more specific prefix after a lookup must take
	// effect (re-sort).
	r.Register(ipnet.MustParsePrefix("10.5.5.0/24"), AS{300, "finest"})
	if as, _ := r.Lookup(ipnet.MustParseAddr("10.5.5.5")); as.Number != 300 {
		t.Error("late registration ignored")
	}
}

func TestName(t *testing.T) {
	r := NewRegistry()
	r.Register(ipnet.MustParsePrefix("1.0.0.0/8"), AS{ASCW, "Cable&Wireless"})
	if r.Name(ASCW) != "Cable&Wireless" {
		t.Errorf("Name = %q", r.Name(ASCW))
	}
	if r.Name(999) != "" {
		t.Error("unknown ASN must return empty name")
	}
}

func TestZeroValueRegistry(t *testing.T) {
	var r Registry
	r.Register(ipnet.MustParsePrefix("1.0.0.0/8"), AS{1, "x"})
	if as, ok := r.Lookup(ipnet.MustParseAddr("1.2.3.4")); !ok || as.Number != 1 {
		t.Error("zero-value registry must work after Register")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestASString(t *testing.T) {
	as := AS{ASGoogle, "Google Inc."}
	if as.String() != "AS15169 (Google Inc.)" {
		t.Errorf("String = %q", as.String())
	}
}
