package netmodel

import (
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

func testModel() *Model { return New(DefaultConfig()) }

func ep(id string, city geo.City, access AccessTech) Endpoint {
	return Endpoint{ID: id, Loc: city.Point, Access: access}
}

func TestBaseRTTSymmetric(t *testing.T) {
	m := testModel()
	a := ep("a", geo.Turin, AccessCampus)
	b := ep("b", geo.NewYork, AccessDataCenter)
	if m.BaseRTT(a, b) != m.BaseRTT(b, a) {
		t.Error("BaseRTT must be symmetric")
	}
}

func TestBaseRTTDeterministic(t *testing.T) {
	m1, m2 := testModel(), testModel()
	a := ep("a", geo.Turin, AccessADSL)
	b := ep("b", geo.Milan, AccessDataCenter)
	if m1.BaseRTT(a, b) != m2.BaseRTT(a, b) {
		t.Error("BaseRTT must be deterministic")
	}
}

func TestBaseRTTScalesWithDistance(t *testing.T) {
	m := testModel()
	src := ep("src", geo.Turin, AccessCampus)
	near := m.BaseRTT(src, ep("near", geo.Milan, AccessDataCenter))
	mid := m.BaseRTT(src, ep("mid", geo.London, AccessDataCenter))
	far := m.BaseRTT(src, ep("far", geo.MountainView, AccessDataCenter))
	if !(near < mid && mid < far) {
		t.Errorf("RTT ordering wrong: near=%v mid=%v far=%v", near, mid, far)
	}
}

func TestBaseRTTTransatlanticPlausible(t *testing.T) {
	m := testModel()
	rtt := m.BaseRTT(ep("t", geo.Turin, AccessCampus), ep("mv", geo.MountainView, AccessDataCenter))
	if rtt < 90*time.Millisecond || rtt > 250*time.Millisecond {
		t.Errorf("Turin->MountainView base RTT = %v, want 90-250ms", rtt)
	}
	rtt = m.BaseRTT(ep("t", geo.Turin, AccessCampus), ep("mi", geo.Milan, AccessDataCenter))
	if rtt > 10*time.Millisecond {
		t.Errorf("Turin->Milan base RTT = %v, want < 10ms", rtt)
	}
}

func TestADSLSlowerThanFTTH(t *testing.T) {
	m := testModel()
	dst := ep("dc", geo.Milan, AccessDataCenter)
	adsl := m.BaseRTT(ep("c1", geo.Turin, AccessADSL), dst)
	ftth := m.BaseRTT(ep("c1", geo.Turin, AccessFTTH), dst)
	diff := adsl - ftth
	if diff < 5*time.Millisecond || diff > 25*time.Millisecond {
		t.Errorf("ADSL-FTTH delta = %v, want ~14ms", diff)
	}
}

func TestGatewayDetourInvertsProximity(t *testing.T) {
	// The US-Campus scenario: a campus near Chicago routing through a
	// New York gateway must see lower RTT to a New York data center
	// than to a Chicago one, even though Chicago is far closer.
	m := testModel()
	gw := geo.NewYork.Point
	campus := Endpoint{ID: "campus", Loc: geo.WestLafayette.Point, Access: AccessCampus, Gateway: &gw}
	chicago := ep("dc-chi", geo.Chicago, AccessDataCenter)
	newyork := ep("dc-nyc", geo.NewYork, AccessDataCenter)

	dChi := geo.Distance(geo.WestLafayette.Point, geo.Chicago.Point)
	dNyc := geo.Distance(geo.WestLafayette.Point, geo.NewYork.Point)
	if dChi >= dNyc {
		t.Fatalf("test premise broken: Chicago (%f km) not closer than NYC (%f km)", dChi, dNyc)
	}
	if m.BaseRTT(campus, newyork) >= m.BaseRTT(campus, chicago) {
		t.Errorf("gateway detour must make NYC lower-RTT: nyc=%v chi=%v",
			m.BaseRTT(campus, newyork), m.BaseRTT(campus, chicago))
	}
}

func TestSelfRTT(t *testing.T) {
	m := testModel()
	a := ep("x", geo.Turin, AccessCampus)
	if got := m.BaseRTT(a, a); got != DefaultConfig().BaseProcessing {
		t.Errorf("self RTT = %v", got)
	}
}

func TestSampleRTTAlwaysAtLeastBase(t *testing.T) {
	m := testModel()
	g := stats.NewRNG(1)
	a := ep("a", geo.Turin, AccessADSL)
	b := ep("b", geo.Amsterdam, AccessDataCenter)
	base := m.BaseRTT(a, b)
	for i := 0; i < 2000; i++ {
		if s := m.SampleRTT(a, b, g); s < base {
			t.Fatalf("sample %v below base %v", s, base)
		}
	}
}

func TestMinRTTConvergesToBase(t *testing.T) {
	m := testModel()
	g := stats.NewRNG(2)
	a := ep("a", geo.Turin, AccessCampus)
	b := ep("b", geo.Frankfurt, AccessDataCenter)
	base := m.BaseRTT(a, b)
	min := m.MinRTT(a, b, 50, g)
	if min < base {
		t.Fatalf("min below base")
	}
	if min-base > 2*time.Millisecond {
		t.Errorf("MinRTT(50 probes) = %v, base = %v; want within 2ms", min, base)
	}
}

func TestMinRTTZeroProbes(t *testing.T) {
	m := testModel()
	g := stats.NewRNG(3)
	a := ep("a", geo.Turin, AccessCampus)
	b := ep("b", geo.Paris, AccessDataCenter)
	if m.MinRTT(a, b, 0, g) != m.BaseRTT(a, b) {
		t.Error("MinRTT with 0 probes must fall back to BaseRTT")
	}
}

func TestPathInflationBounds(t *testing.T) {
	m := testModel()
	cfg := DefaultConfig()
	for i := 0; i < 200; i++ {
		f := m.pathInflation("a", string(rune('0'+i%60))+"suffix")
		if f < cfg.InflationMin || f > cfg.InflationMax {
			t.Fatalf("inflation %f out of bounds", f)
		}
	}
}

func TestAccessTechString(t *testing.T) {
	if AccessADSL.String() != "adsl" {
		t.Errorf("AccessADSL.String() = %q", AccessADSL.String())
	}
	if AccessTech(99).String() != "invalid" {
		t.Errorf("invalid tech String() = %q", AccessTech(99).String())
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := DefaultConfig()
	if New(cfg).Config() != cfg {
		t.Error("Config accessor mismatch")
	}
}
