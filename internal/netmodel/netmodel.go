// Package netmodel is the Internet latency substrate of the simulator.
// It computes round-trip times between network endpoints from first
// principles: great-circle propagation at the speed of light in fiber,
// a deterministic per-path inflation factor (routes are not geodesics),
// per-endpoint access-technology delay, an optional routing detour
// through a peering gateway, and per-sample queueing jitter.
//
// Two properties matter for reproducing the paper:
//
//  1. RTT correlates with distance but is not determined by it. The
//     US-Campus vantage point reaches geographically close data centers
//     through a distant peering point, so its lowest-RTT data center is
//     not its closest (paper, Fig. 8).
//  2. The *minimum* RTT over repeated probes converges to a stable,
//     deterministic base value, which is what delay-based geolocation
//     (CBG) and the paper's ping campaigns rely on.
package netmodel

import (
	"hash/fnv"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// AccessTech describes the last-mile technology of an endpoint and
// determines its fixed access delay. The values mirror the paper's
// vantage points (campus, ADSL, FTTH) plus data-center and backbone
// (landmark) attachment.
type AccessTech int

// Access technologies, starting at 1 so the zero value is invalid.
const (
	AccessUnknown AccessTech = iota
	AccessCampus
	AccessADSL
	AccessFTTH
	AccessDataCenter
	AccessBackbone
)

var accessNames = map[AccessTech]string{
	AccessUnknown:    "unknown",
	AccessCampus:     "campus",
	AccessADSL:       "adsl",
	AccessFTTH:       "ftth",
	AccessDataCenter: "datacenter",
	AccessBackbone:   "backbone",
}

// String implements fmt.Stringer.
func (a AccessTech) String() string {
	if s, ok := accessNames[a]; ok {
		return s
	}
	return "invalid"
}

// oneWayAccessDelay returns the one-way last-mile delay contributed by
// an endpoint with this access technology. ADSL interleaving dominates
// everything else, which is why the paper's EU1-ADSL RTT curves sit
// ~15 ms right of EU1-FTTH (Fig. 2).
func (a AccessTech) oneWayAccessDelay() time.Duration {
	switch a {
	case AccessCampus:
		return 500 * time.Microsecond
	case AccessADSL:
		return 8 * time.Millisecond
	case AccessFTTH:
		return 800 * time.Microsecond
	case AccessDataCenter:
		return 150 * time.Microsecond
	case AccessBackbone:
		return 300 * time.Microsecond
	default:
		return 2 * time.Millisecond
	}
}

// Endpoint is anything with a network position: a client pool, a
// content server, a DNS server, or a measurement landmark.
type Endpoint struct {
	// ID must be stable and unique; the per-path inflation factor is
	// derived from the unordered ID pair so that RTTs are symmetric
	// and reproducible.
	ID string
	// Loc is the geographic position.
	Loc geo.Point
	// Access is the last-mile technology.
	Access AccessTech
	// Gateway, when non-nil, is a peering point all wide-area traffic
	// of this endpoint detours through (e.g. a campus ISP handing off
	// at a distant IXP). The effective path length becomes
	// Loc→Gateway→destination.
	Gateway *geo.Point
}

// Config holds the latency-model parameters. The zero value is not
// valid; use DefaultConfig.
type Config struct {
	// FiberKmPerMs is the one-way propagation speed in fiber,
	// kilometers per millisecond (~200 km/ms, i.e. 2/3 c).
	FiberKmPerMs float64
	// InflationMin/InflationMax bound the deterministic per-path route
	// inflation factor applied to geodesic distance.
	InflationMin, InflationMax float64
	// BaseProcessing is the fixed per-RTT router/stack overhead.
	BaseProcessing time.Duration
	// JitterMean is the mean of the exponential queueing jitter added
	// to each sampled RTT on top of the deterministic base.
	JitterMean time.Duration
	// SpikeProb is the probability that a sample takes a congestion
	// spike of up to SpikeMax extra delay.
	SpikeProb float64
	// SpikeMax bounds congestion spikes.
	SpikeMax time.Duration
}

// DefaultConfig returns the calibrated parameters used by the paper
// world. With these values a 1000 km geodesic path has a base RTT of
// roughly 10–18 ms depending on its inflation factor, and transatlantic
// paths land in the 80–120 ms band, matching Fig. 2.
func DefaultConfig() Config {
	return Config{
		FiberKmPerMs:   200,
		InflationMin:   1.2,
		InflationMax:   1.8,
		BaseProcessing: 1 * time.Millisecond,
		JitterMean:     2 * time.Millisecond,
		SpikeProb:      0.02,
		SpikeMax:       80 * time.Millisecond,
	}
}

// Model computes RTTs between endpoints. It is immutable after
// construction and safe for concurrent use.
type Model struct {
	cfg Config
}

// New returns a Model with the given configuration.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// pathInflation returns the deterministic inflation factor for the
// unordered endpoint pair, uniformly spread over
// [InflationMin, InflationMax] by hashing the IDs.
func (m *Model) pathInflation(a, b string) float64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(lo))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(hi))
	u := float64(h.Sum64()%1_000_000) / 1_000_000
	return m.cfg.InflationMin + u*(m.cfg.InflationMax-m.cfg.InflationMin)
}

// routeKm returns the effective route length in km, accounting for
// gateway detours on either side.
func routeKm(a, b Endpoint) float64 {
	from := a.Loc
	total := 0.0
	if a.Gateway != nil {
		total += geo.Distance(a.Loc, *a.Gateway)
		from = *a.Gateway
	}
	to := b.Loc
	if b.Gateway != nil {
		total += geo.Distance(b.Loc, *b.Gateway)
		to = *b.Gateway
	}
	total += geo.Distance(from, to)
	return total
}

// BaseRTT returns the deterministic floor RTT between a and b: the
// value min-RTT probing converges to. It is symmetric in its
// arguments.
func (m *Model) BaseRTT(a, b Endpoint) time.Duration {
	if a.ID == b.ID {
		return m.cfg.BaseProcessing
	}
	km := routeKm(a, b) * m.pathInflation(a.ID, b.ID)
	prop := time.Duration(2 * km / m.cfg.FiberKmPerMs * float64(time.Millisecond))
	return prop + m.cfg.BaseProcessing + a.Access.oneWayAccessDelay() + b.Access.oneWayAccessDelay()
}

// SampleRTT returns one measured RTT: BaseRTT plus non-negative
// exponential jitter and occasional congestion spikes, drawn from g.
func (m *Model) SampleRTT(a, b Endpoint, g *stats.RNG) time.Duration {
	rtt := m.BaseRTT(a, b)
	rtt += time.Duration(g.ExpFloat64() * float64(m.cfg.JitterMean))
	if g.Bool(m.cfg.SpikeProb) {
		rtt += time.Duration(g.Float64() * float64(m.cfg.SpikeMax))
	}
	return rtt
}

// MinRTT returns the minimum of n samples, the standard active-probing
// estimate used by the paper for Figs. 2 and 7 and by CBG.
func (m *Model) MinRTT(a, b Endpoint, n int, g *stats.RNG) time.Duration {
	if n <= 0 {
		return m.BaseRTT(a, b)
	}
	best := m.SampleRTT(a, b, g)
	for i := 1; i < n; i++ {
		if v := m.SampleRTT(a, b, g); v < best {
			best = v
		}
	}
	return best
}

// Config returns the model parameters.
func (m *Model) Config() Config { return m.cfg }
