package topology

import (
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/asdb"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
)

func buildTestWorld(t *testing.T) *World {
	t.Helper()
	w, err := BuildPaperWorld(PaperConfig{Scale: 0.01})
	if err != nil {
		t.Fatalf("BuildPaperWorld: %v", err)
	}
	return w
}

func TestBuildPaperWorldValidates(t *testing.T) {
	w := buildTestWorld(t)
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGoogleDCCount(t *testing.T) {
	w := buildTestWorld(t)
	dcs := w.GoogleDCs()
	if len(dcs) != 33 {
		t.Fatalf("Google DCs = %d, want 33", len(dcs))
	}
	var us, eu, other, internal int
	for _, id := range dcs {
		dc := w.DC(id)
		switch {
		case dc.City.Continent == geo.NorthAmerica:
			us++
		case dc.City.Continent == geo.Europe:
			eu++
		default:
			other++
		}
		if dc.Internal {
			internal++
		}
	}
	if us != 13 || eu != 14 || other != 6 {
		t.Errorf("DC split US/EU/other = %d/%d/%d, want 13/14/6", us, eu, other)
	}
	if internal != 1 {
		t.Errorf("internal DCs = %d, want 1 (EU2)", internal)
	}
}

func TestInternalDCProperties(t *testing.T) {
	w := buildTestWorld(t)
	var internal *DataCenter
	for _, dc := range w.DataCenters {
		if dc.Internal {
			internal = dc
			break
		}
	}
	if internal == nil {
		t.Fatal("no internal DC")
	}
	if internal.City.Name != geo.Budapest.Name {
		t.Errorf("internal DC city = %s, want Budapest", internal.City.Name)
	}
	if internal.AS.Number == asdb.ASGoogle {
		t.Error("internal DC must not be in the Google AS")
	}
	if internal.DNSCapacity <= 0 {
		t.Error("internal DC must have bounded DNS capacity")
	}
	// It must share its AS with the EU2 vantage point (Table II
	// "Same AS" column).
	eu2 := w.VantagePoints[w.VPIndex(DatasetEU2)]
	if eu2.AS.Number != internal.AS.Number {
		t.Errorf("EU2 AS %d != internal DC AS %d", eu2.AS.Number, internal.AS.Number)
	}
}

func TestServerFleetSizes(t *testing.T) {
	w := buildTestWorld(t)
	cfg := DefaultPaperConfig()
	google := w.ServersOfClass(ClassGoogle)
	want := 13*cfg.ServersPerDCNA + 14*cfg.ServersPerDCEU + 6*cfg.ServersPerDCOther
	if len(google) != want {
		t.Errorf("google servers = %d, want %d", len(google), want)
	}
	if got := len(w.ServersOfClass(ClassLegacyEU)); got != cfg.LegacyServers {
		t.Errorf("legacy servers = %d, want %d", got, cfg.LegacyServers)
	}
	if got := len(w.ServersOfClass(ClassThirdParty)); got != cfg.ThirdPartyServers {
		t.Errorf("third-party servers = %d, want %d", got, cfg.ThirdPartyServers)
	}
}

func TestServersShareSlash24WithinDC(t *testing.T) {
	w := buildTestWorld(t)
	// Every /24 must belong to exactly one data center (the paper's
	// aggregation rule relies on this).
	owner := make(map[uint32]DataCenterID)
	for _, s := range w.Servers {
		p := uint32(s.Addr.Slash24())
		if dc, ok := owner[p]; ok && dc != s.DC {
			t.Fatalf("/24 %s spans DCs %d and %d", s.Addr.Slash24(), dc, s.DC)
		}
		owner[p] = s.DC
	}
}

func TestWhoisOfServers(t *testing.T) {
	w := buildTestWorld(t)
	for _, s := range w.Servers {
		as, ok := w.Registry.Lookup(s.Addr)
		if !ok {
			t.Fatalf("server %s unrouted", s.Addr)
		}
		dc := w.DC(s.DC)
		if as.Number != dc.AS.Number {
			t.Fatalf("server %s whois AS%d != DC AS%d", s.Addr, as.Number, dc.AS.Number)
		}
	}
}

func TestVantagePoints(t *testing.T) {
	w := buildTestWorld(t)
	if len(w.VantagePoints) != 5 {
		t.Fatalf("VPs = %d, want 5", len(w.VantagePoints))
	}
	for i, name := range DatasetNames() {
		if w.VantagePoints[i].Name != name {
			t.Errorf("VP %d = %s, want %s", i, w.VantagePoints[i].Name, name)
		}
		if w.VPIndex(name) != i {
			t.Errorf("VPIndex(%s) = %d, want %d", name, w.VPIndex(name), i)
		}
	}
	if w.VPIndex("nope") != -1 {
		t.Error("VPIndex of unknown name must be -1")
	}
}

func TestUSCampusNet3Override(t *testing.T) {
	w := buildTestWorld(t)
	us := w.VantagePoints[w.VPIndex(DatasetUSCampus)]
	var net3 *Subnet
	for _, sn := range us.Subnets {
		if sn.Name == "Net-3" {
			net3 = sn
		}
	}
	if net3 == nil {
		t.Fatal("US-Campus has no Net-3")
	}
	dcID, ok := w.PreferredOverrides[net3.LDNS]
	if !ok {
		t.Fatal("Net-3 LDNS has no preferred override")
	}
	if w.DC(dcID).City.Name != geo.Dallas.Name {
		t.Errorf("Net-3 override -> %s, want Dallas", w.DC(dcID).City.Name)
	}
	// The override DC must not be among the five closest (it would
	// break Fig 8's "closest five serve <2%" claim).
	us2 := w.VantagePoints[w.VPIndex(DatasetUSCampus)]
	closer := 0
	for _, id := range w.GoogleDCs() {
		if geo.Distance(us2.City.Point, w.DC(id).City.Point) < geo.Distance(us2.City.Point, w.DC(dcID).City.Point) {
			closer++
		}
	}
	if closer < 5 {
		t.Errorf("Net-3 override DC is #%d closest; want outside top 5", closer+1)
	}
	// No other US subnet may share Net-3's LDNS.
	for _, sn := range us.Subnets {
		if sn.Name != "Net-3" && sn.LDNS == net3.LDNS {
			t.Errorf("subnet %s shares Net-3's LDNS", sn.Name)
		}
	}
}

func TestLandmarkMix(t *testing.T) {
	w := buildTestWorld(t)
	if len(w.Landmarks) != 215 {
		t.Fatalf("landmarks = %d, want 215", len(w.Landmarks))
	}
	for _, lm := range w.Landmarks {
		if !lm.Loc.Valid() {
			t.Errorf("landmark %s has invalid location %v", lm.Name, lm.Loc)
		}
	}
}

func TestServerByAddr(t *testing.T) {
	w := buildTestWorld(t)
	s := w.Servers[17]
	got, ok := w.ServerByAddr(s.Addr)
	if !ok || got.ID != s.ID {
		t.Errorf("ServerByAddr(%s) = %v, %v", s.Addr, got, ok)
	}
	if _, ok := w.ServerByAddr(0); ok {
		t.Error("ServerByAddr(0) must miss")
	}
}

func TestUSCampusPreferredIsNotClosest(t *testing.T) {
	// The structural precondition for Fig 8: the RTT-best DC for
	// US-Campus must not be among its five geographically closest.
	w := buildTestWorld(t)
	us := w.VantagePoints[w.VPIndex(DatasetUSCampus)]
	ep := us.Endpoint()

	type dcDist struct {
		id   DataCenterID
		dist float64
	}
	var byDist []dcDist
	bestRTT := -1.0
	var bestDC DataCenterID
	for _, id := range w.GoogleDCs() {
		dc := w.DC(id)
		byDist = append(byDist, dcDist{id, geo.Distance(us.City.Point, dc.City.Point)})
		rtt := w.Net.BaseRTT(ep, dc.Endpoint()).Seconds()
		if bestRTT < 0 || rtt < bestRTT {
			bestRTT, bestDC = rtt, id
		}
	}
	if w.DC(bestDC).City.Name != geo.NewYork.Name {
		t.Fatalf("US-Campus RTT-best DC = %s, want New York", w.DC(bestDC).City.Name)
	}
	// Rank DCs by distance and check New York is not in the top 5.
	for rank := 0; rank < 5; rank++ {
		min := rank
		for j := rank + 1; j < len(byDist); j++ {
			if byDist[j].dist < byDist[min].dist {
				min = j
			}
		}
		byDist[rank], byDist[min] = byDist[min], byDist[rank]
		if byDist[rank].id == bestDC {
			t.Errorf("RTT-best DC is #%d closest; must be outside top 5", rank+1)
		}
	}
}

func TestEU2PreferredIsInternal(t *testing.T) {
	w := buildTestWorld(t)
	eu2 := w.VantagePoints[w.VPIndex(DatasetEU2)]
	ep := eu2.Endpoint()
	bestRTT := -1.0
	var best *DataCenter
	for _, id := range w.GoogleDCs() {
		dc := w.DC(id)
		rtt := w.Net.BaseRTT(ep, dc.Endpoint()).Seconds()
		if bestRTT < 0 || rtt < bestRTT {
			bestRTT, best = rtt, dc
		}
	}
	if best == nil || !best.Internal {
		t.Errorf("EU2 RTT-best DC = %v, want the internal Budapest DC", best)
	}
}

func TestEU1PreferredIsMilan(t *testing.T) {
	w := buildTestWorld(t)
	for _, name := range []string{DatasetEU1Campus, DatasetEU1ADSL, DatasetEU1FTTH} {
		vp := w.VantagePoints[w.VPIndex(name)]
		ep := vp.Endpoint()
		bestRTT := -1.0
		var best *DataCenter
		for _, id := range w.GoogleDCs() {
			dc := w.DC(id)
			rtt := w.Net.BaseRTT(ep, dc.Endpoint()).Seconds()
			if bestRTT < 0 || rtt < bestRTT {
				bestRTT, best = rtt, dc
			}
		}
		if best.City.Name != geo.Milan.Name {
			t.Errorf("%s RTT-best DC = %s, want Milan", name, best.City.Name)
		}
	}
}

func TestValidateCatchesBadWeights(t *testing.T) {
	w := buildTestWorld(t)
	w.VantagePoints[0].Subnets[0].Weight += 0.5
	if err := w.Validate(); err == nil {
		t.Error("Validate must reject subnet weights not summing to 1")
	}
}

func TestDeterministicBuild(t *testing.T) {
	w1 := buildTestWorld(t)
	w2 := buildTestWorld(t)
	if len(w1.Servers) != len(w2.Servers) {
		t.Fatal("server counts differ across builds")
	}
	for i := range w1.Servers {
		if w1.Servers[i].Addr != w2.Servers[i].Addr {
			t.Fatal("server addressing not deterministic")
		}
	}
	for i := range w1.Landmarks {
		if w1.Landmarks[i].Loc != w2.Landmarks[i].Loc {
			t.Fatal("landmark placement not deterministic")
		}
	}
}

func TestServerClassString(t *testing.T) {
	if ClassGoogle.String() != "google" || ClassLegacyEU.String() != "legacy-eu" ||
		ClassThirdParty.String() != "third-party" || ServerClass(0).String() != "invalid" {
		t.Error("ServerClass.String broken")
	}
}
