// Package topology defines the simulated world: data centers and their
// server fleets, vantage-point networks with internal subnets and local
// DNS servers, measurement landmarks, and the address/AS plan tying
// them together. BuildPaperWorld constructs the world matching the
// paper's measurement setting.
package topology

import (
	"fmt"

	"github.com/ytcdn-sim/ytcdn/internal/asdb"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/netmodel"
)

// DataCenterID indexes a data center within a World.
type DataCenterID int

// ServerID indexes a server within a World (global, across DCs).
type ServerID int

// LDNSID indexes a local DNS server within a World.
type LDNSID int

// ServerClass distinguishes the CDN generations observed in the paper.
type ServerClass int

// Server classes. ClassGoogle is the post-2009 Google CDN serving
// ~99% of bytes; ClassLegacyEU is the residual YouTube-EU (AS 43515)
// infrastructure; ClassThirdParty stands for caches still reachable in
// transit ASes (CW, GBLX).
const (
	ClassGoogle ServerClass = iota + 1
	ClassLegacyEU
	ClassThirdParty
)

// String implements fmt.Stringer.
func (c ServerClass) String() string {
	switch c {
	case ClassGoogle:
		return "google"
	case ClassLegacyEU:
		return "legacy-eu"
	case ClassThirdParty:
		return "third-party"
	default:
		return "invalid"
	}
}

// Server is one content server.
type Server struct {
	ID    ServerID
	Addr  ipnet.Addr
	DC    DataCenterID
	Class ServerClass
	// Capacity is the number of concurrent sessions the server handles
	// before application-layer redirection kicks in (paper §VII-C).
	Capacity int
}

// DataCenter is a co-located group of servers; the paper's analysis
// aggregates servers into data centers by geolocation city.
type DataCenter struct {
	ID   DataCenterID
	City geo.City
	AS   asdb.AS
	// Class distinguishes Google-operated sites (participating in DNS
	// selection) from legacy/third-party pools that only appear via
	// quirk paths.
	Class ServerClass
	// Servers lists the fleet of this DC.
	Servers []*Server
	// DNSCapacity is the concurrent-video-flow level above which the
	// authoritative DNS starts spilling resolutions to other DCs
	// (paper §VII-A). Zero means effectively unbounded.
	DNSCapacity int
	// Internal marks a data center deployed inside an ISP's own
	// network (the EU2 case, Table II "Same AS").
	Internal bool

	// ep caches the value Endpoint returns. BuildPaperWorld seals it
	// after assembly so the per-flow RTT path never re-renders the ID
	// string; hand-assembled DCs (tests) fall back to rendering.
	ep netmodel.Endpoint
}

// Endpoint returns the DC's network endpoint for latency computations.
// It sits on the simulator's per-flow path, hence the cache.
//
//perf:inline
//perf:noalloc
func (dc *DataCenter) Endpoint() netmodel.Endpoint {
	if dc.ep.ID == "" {
		return dc.renderEndpoint()
	}
	return dc.ep
}

// renderEndpoint builds the endpoint value from scratch — the cold
// path behind the Endpoint cache. Kept out of line so its Sprintf
// never lands on Endpoint's inlining budget or allocation contract.
//
//go:noinline
func (dc *DataCenter) renderEndpoint() netmodel.Endpoint {
	return netmodel.Endpoint{
		ID:     fmt.Sprintf("dc-%d-%s", dc.ID, dc.City.Name),
		Loc:    dc.City.Point,
		Access: netmodel.AccessDataCenter,
	}
}

// Subnet is an internal subnet of a vantage-point network. Clients in
// a subnet share a local DNS server; the paper's Fig. 12 shows one
// campus subnet (Net-3) whose LDNS receives a different preferred DC.
type Subnet struct {
	Name   string
	Prefix ipnet.Prefix
	LDNS   LDNSID
	// Weight is the fraction of the vantage point's request volume
	// originating from this subnet.
	Weight float64
}

// LDNS is a local DNS resolver as seen by the authoritative DNS.
type LDNS struct {
	ID   LDNSID
	Name string
	Addr ipnet.Addr
	// VantagePoint is the index of the owning VP in World.VantagePoints.
	VantagePoint int
}

// VantagePoint is one monitored network: a campus or an ISP PoP with a
// Tstat-style probe on its access link.
type VantagePoint struct {
	Name   string
	City   geo.City
	Access netmodel.AccessTech
	AS     asdb.AS
	// GatewayCity, when non-nil, is the peering city all wide-area
	// traffic detours through (drives the RTT/distance divergence of
	// Fig. 8).
	GatewayCity *geo.City
	Prefix      ipnet.Prefix
	Subnets     []*Subnet
	// NumClients is the client population (Table I).
	NumClients int
	// WeeklySessions is the target number of video sessions generated
	// over one simulated week at full scale.
	WeeklySessions int
	// DiurnalPeakHour is the local hour of peak demand.
	DiurnalPeakHour float64
	// DiurnalMinFrac is the night/peak demand ratio.
	DiurnalMinFrac float64
	// LegacyProb is the probability a session is served by the legacy
	// YouTube-EU infrastructure (Table II).
	LegacyProb float64
	// ThirdPartyProb is the probability a session is served by a
	// third-party-AS cache (Table II "Others").
	ThirdPartyProb float64
	// SizeScale multiplies sampled flow sizes, capturing per-network
	// differences in resolution mix and watch behaviour (Table I byte
	// volumes).
	SizeScale float64
	// TailForeignProb is the probability that a tail (unreplicated)
	// video requested from this network originates on another
	// continent, forcing a cross-continent first access (Table III's
	// ≥10% foreign servers; the PlanetLab experiment of §VII-C).
	TailForeignProb float64
	// ForeignWeights distributes foreign tail origins over continents.
	ForeignWeights map[geo.Continent]float64
}

// HomeContinent returns the continent the vantage point sits on.
func (vp *VantagePoint) HomeContinent() geo.Continent { return vp.City.Continent }

// Endpoint returns the VP's network endpoint (clients collapse to the
// PoP position at the latency scales of interest).
func (vp *VantagePoint) Endpoint() netmodel.Endpoint {
	e := netmodel.Endpoint{
		ID:     "vp-" + vp.Name,
		Loc:    vp.City.Point,
		Access: vp.Access,
	}
	if vp.GatewayCity != nil {
		gw := vp.GatewayCity.Point
		e.Gateway = &gw
	}
	return e
}

// Landmark is a measurement host with known position, used by CBG.
type Landmark struct {
	Name string
	City string
	Loc  geo.Point
}

// Endpoint returns the landmark's network endpoint.
func (l *Landmark) Endpoint() netmodel.Endpoint {
	return netmodel.Endpoint{ID: "lm-" + l.Name, Loc: l.Loc, Access: netmodel.AccessBackbone}
}

// World is the complete simulated universe.
type World struct {
	DataCenters   []*DataCenter
	Servers       []*Server // all servers, indexed by ServerID
	VantagePoints []*VantagePoint
	LDNSes        []*LDNS
	Landmarks     []*Landmark
	Registry      *asdb.Registry
	Net           *netmodel.Model
	// PreferredOverrides pins specific LDNSes to a preferred data
	// center other than their RTT-best one (the Net-3 mechanism of
	// paper §VII-B).
	PreferredOverrides map[LDNSID]DataCenterID
	// Config records the parameters this world was built with.
	Config PaperConfig

	byAddr map[ipnet.Addr]*Server
}

// ServerByAddr resolves a server IP seen in a trace back to the server
// object. Only the simulator side uses this; analysis code must treat
// addresses as opaque.
func (w *World) ServerByAddr(a ipnet.Addr) (*Server, bool) {
	s, ok := w.byAddr[a]
	return s, ok
}

// DC returns the data center with the given ID.
func (w *World) DC(id DataCenterID) *DataCenter { return w.DataCenters[id] }

// Server returns the server with the given ID.
func (w *World) Server(id ServerID) *Server { return w.Servers[id] }

// VPIndex returns the index of the named vantage point, or -1.
func (w *World) VPIndex(name string) int {
	for i, vp := range w.VantagePoints {
		if vp.Name == name {
			return i
		}
	}
	return -1
}

// GoogleDCs returns the IDs of all Google-class data centers (the DNS
// selection pool), including the ISP-internal one.
func (w *World) GoogleDCs() []DataCenterID {
	var out []DataCenterID
	for _, dc := range w.DataCenters {
		if dc.Class == ClassGoogle {
			out = append(out, dc.ID)
		}
	}
	return out
}

// ServersOfClass returns all servers of the given class.
func (w *World) ServersOfClass(c ServerClass) []*Server {
	var out []*Server
	for _, s := range w.Servers {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// addServer registers a server and indexes its address.
func (w *World) addServer(s *Server) {
	s.ID = ServerID(len(w.Servers))
	w.Servers = append(w.Servers, s)
	if w.byAddr == nil {
		w.byAddr = make(map[ipnet.Addr]*Server)
	}
	w.byAddr[s.Addr] = s
	if s.DC >= 0 {
		dc := w.DataCenters[s.DC]
		dc.Servers = append(dc.Servers, s)
	}
}

// Validate performs internal consistency checks and returns the first
// problem found. A World that fails validation would silently corrupt
// experiments, so callers should treat an error as fatal.
func (w *World) Validate() error {
	if len(w.DataCenters) == 0 {
		return fmt.Errorf("topology: no data centers")
	}
	for i, dc := range w.DataCenters {
		if dc.ID != DataCenterID(i) {
			return fmt.Errorf("topology: DC %d has ID %d", i, dc.ID)
		}
		if len(dc.Servers) == 0 {
			return fmt.Errorf("topology: DC %s has no servers", dc.City.Name)
		}
	}
	seen := make(map[ipnet.Addr]bool, len(w.Servers))
	for i, s := range w.Servers {
		if s.ID != ServerID(i) {
			return fmt.Errorf("topology: server %d has ID %d", i, s.ID)
		}
		if seen[s.Addr] {
			return fmt.Errorf("topology: duplicate server address %s", s.Addr)
		}
		seen[s.Addr] = true
	}
	for _, vp := range w.VantagePoints {
		total := 0.0
		for _, sn := range vp.Subnets {
			total += sn.Weight
			if int(sn.LDNS) >= len(w.LDNSes) {
				return fmt.Errorf("topology: subnet %s/%s references unknown LDNS", vp.Name, sn.Name)
			}
		}
		if total < 0.999 || total > 1.001 {
			return fmt.Errorf("topology: subnet weights of %s sum to %f", vp.Name, total)
		}
	}
	return nil
}
