package topology

import (
	"fmt"

	"github.com/ytcdn-sim/ytcdn/internal/asdb"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/netmodel"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// Dataset names, matching the paper's Table I.
const (
	DatasetUSCampus  = "US-Campus"
	DatasetEU1Campus = "EU1-Campus"
	DatasetEU1ADSL   = "EU1-ADSL"
	DatasetEU1FTTH   = "EU1-FTTH"
	DatasetEU2       = "EU2"
)

// DatasetNames returns the five dataset names in the paper's order.
func DatasetNames() []string {
	return []string{DatasetUSCampus, DatasetEU1Campus, DatasetEU1ADSL, DatasetEU1FTTH, DatasetEU2}
}

// PaperConfig parameterizes BuildPaperWorld. All counts are full-scale;
// use Scale to shrink workloads for tests and benchmarks.
type PaperConfig struct {
	// Seed drives landmark placement and any other randomized layout.
	Seed int64
	// Scale multiplies per-VP weekly session counts (1.0 = paper scale).
	Scale float64
	// Servers per Google data center, by region. The paper observed
	// roughly 1464 North American, 769 European and 180 other-continent
	// Google servers across datasets (Table III), which these defaults
	// reproduce: 13*113, 14*56, 6*30.
	ServersPerDCNA    int
	ServersPerDCEU    int
	ServersPerDCOther int
	// LegacyServers / ThirdPartyServers size the residual YouTube-EU
	// (AS 43515) and transit-AS pools (Table II).
	LegacyServers     int
	ThirdPartyServers int
	// GoogleServerCapacity is the concurrent-session threshold above
	// which a server issues application-layer redirects (paper §VII-C).
	GoogleServerCapacity int
	// EU2InternalDNSCapacity is the concurrent-flow capacity of the
	// data center inside the EU2 ISP; exceeding it triggers DNS-level
	// load balancing (paper §VII-A).
	EU2InternalDNSCapacity int
	// EU1PreferredDNSCapacity bounds the EU1 preferred DC (Milan),
	// producing the mild direct-to-non-preferred DNS share of Fig 10a.
	EU1PreferredDNSCapacity int
	// USPreferredDNSCapacity bounds the US-Campus preferred DC.
	USPreferredDNSCapacity int
}

// DefaultPaperConfig returns the calibrated full-scale configuration.
func DefaultPaperConfig() PaperConfig {
	return PaperConfig{
		Seed:                    20100904,
		Scale:                   1.0,
		ServersPerDCNA:          113,
		ServersPerDCEU:          56,
		ServersPerDCOther:       30,
		LegacyServers:           520,
		ThirdPartyServers:       120,
		GoogleServerCapacity:    10,
		EU2InternalDNSCapacity:  52,
		EU1PreferredDNSCapacity: 320,
		USPreferredDNSCapacity:  390,
	}
}

// normalize fills zero fields with defaults so tests can specify only
// what they care about.
func (c PaperConfig) normalize() PaperConfig {
	d := DefaultPaperConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.ServersPerDCNA == 0 {
		c.ServersPerDCNA = d.ServersPerDCNA
	}
	if c.ServersPerDCEU == 0 {
		c.ServersPerDCEU = d.ServersPerDCEU
	}
	if c.ServersPerDCOther == 0 {
		c.ServersPerDCOther = d.ServersPerDCOther
	}
	if c.LegacyServers == 0 {
		c.LegacyServers = d.LegacyServers
	}
	if c.ThirdPartyServers == 0 {
		c.ThirdPartyServers = d.ThirdPartyServers
	}
	if c.GoogleServerCapacity == 0 {
		c.GoogleServerCapacity = d.GoogleServerCapacity
	}
	if c.EU2InternalDNSCapacity == 0 {
		c.EU2InternalDNSCapacity = d.EU2InternalDNSCapacity
	}
	if c.EU1PreferredDNSCapacity == 0 {
		c.EU1PreferredDNSCapacity = d.EU1PreferredDNSCapacity
	}
	if c.USPreferredDNSCapacity == 0 {
		c.USPreferredDNSCapacity = d.USPreferredDNSCapacity
	}
	return c
}

// Well-known ASes in the simulated world.
var (
	asGoogle    = asdb.AS{Number: asdb.ASGoogle, Name: "Google Inc."}
	asYouTubeEU = asdb.AS{Number: asdb.ASYouTubeEU, Name: "YouTube-EU"}
	asCW        = asdb.AS{Number: asdb.ASCW, Name: "CW"}
	asGBLX      = asdb.AS{Number: asdb.ASGBLX, Name: "GBLX"}
	asUSCampus  = asdb.AS{Number: 17, Name: "US-Campus"}
	asEU1Campus = asdb.AS{Number: 137, Name: "EU1-Campus"}
	asEU1ISP    = asdb.AS{Number: 3269, Name: "EU1-ISP"}
	asEU2ISP    = asdb.AS{Number: 5483, Name: "EU2-ISP"}
)

// BuildPaperWorld constructs the world of the paper: 33 Google-class
// data centers (13 US, 14 EU including one inside the EU2 ISP, 6
// elsewhere), legacy and third-party server pools, the five monitored
// networks, and 215 CBG landmarks.
func BuildPaperWorld(cfg PaperConfig) (*World, error) {
	cfg = cfg.normalize()
	w := &World{
		Registry:           asdb.NewRegistry(),
		Net:                netmodel.New(netmodel.DefaultConfig()),
		PreferredOverrides: make(map[LDNSID]DataCenterID),
		Config:             cfg,
	}

	if err := buildDataCenters(w, cfg); err != nil {
		return nil, err
	}
	if err := buildEdgePools(w, cfg); err != nil {
		return nil, err
	}
	if err := buildVantagePoints(w, cfg); err != nil {
		return nil, err
	}
	buildLandmarks(w, cfg)

	if err := w.Validate(); err != nil {
		return nil, err
	}
	// Seal the per-DC endpoint cache: Endpoint sits on the simulator's
	// per-flow RTT path and must not render its ID string there.
	for _, dc := range w.DataCenters {
		dc.ep = dc.renderEndpoint()
	}
	return w, nil
}

// scaleCap scales a full-scale capacity with the workload so that
// load-dependent mechanisms (DNS spill, hot-spot redirects) trigger at
// the same relative utilization at any Scale.
func scaleCap(capacity int, scale float64) int {
	v := int(float64(capacity)*scale + 0.5)
	if v < 3 {
		// Integer granularity would invent overload at tiny scales:
		// with a capacity of 1-2, ordinary Poisson coincidences of two
		// concurrent flows register as congestion even at night.
		v = 3
	}
	return v
}

// buildDataCenters creates the 33 Google-class data centers with their
// server fleets and address plan (one or more /24s per DC, so the
// paper's /24-aggregation rule holds by construction).
func buildDataCenters(w *World, cfg PaperConfig) error {
	cities := geo.DataCenterCities()
	if len(cities) != 33 {
		return fmt.Errorf("topology: expected 33 DC cities, got %d", len(cities))
	}
	nextPrefix := 0
	for _, city := range cities {
		var nServers int
		switch city.Continent {
		case geo.NorthAmerica:
			nServers = cfg.ServersPerDCNA
		case geo.Europe:
			nServers = cfg.ServersPerDCEU
		default:
			nServers = cfg.ServersPerDCOther
		}

		dc := &DataCenter{
			ID:    DataCenterID(len(w.DataCenters)),
			City:  city,
			AS:    asGoogle,
			Class: ClassGoogle,
		}
		// The Budapest DC lives inside the EU2 ISP: its own AS, its
		// own address space, and a DNS capacity it exceeds at daytime.
		if city.Name == geo.Budapest.Name {
			dc.AS = asEU2ISP
			dc.Internal = true
			dc.DNSCapacity = scaleCap(cfg.EU2InternalDNSCapacity, cfg.Scale)
		}
		switch city.Name {
		case geo.Milan.Name:
			dc.DNSCapacity = scaleCap(cfg.EU1PreferredDNSCapacity, cfg.Scale)
		case geo.NewYork.Name:
			dc.DNSCapacity = scaleCap(cfg.USPreferredDNSCapacity, cfg.Scale)
		}
		w.DataCenters = append(w.DataCenters, dc)

		// Allocate servers from consecutive /24s (max 200 per /24 so
		// large fleets span several prefixes, exercising the /24
		// clustering logic in analysis).
		remaining := nServers
		for remaining > 0 {
			n := remaining
			if n > 200 {
				n = 200
			}
			var base string
			if dc.Internal {
				base = fmt.Sprintf("84.116.%d.0/24", nextPrefix%250)
			} else {
				base = fmt.Sprintf("173.194.%d.0/24", nextPrefix%250)
			}
			nextPrefix++
			prefix := ipnet.MustParsePrefix(base)
			w.Registry.Register(prefix, dc.AS)
			alloc := ipnet.NewAllocator(prefix)
			for i := 0; i < n; i++ {
				addr, err := alloc.Next()
				if err != nil {
					return fmt.Errorf("topology: %w", err)
				}
				capacity := scaleCap(cfg.GoogleServerCapacity, cfg.Scale)
				if capacity < 2 {
					// A capacity of 1 makes every concurrent pair of
					// requests a "hot-spot" at reduced scales; keep
					// redirects tied to genuine bursts.
					capacity = 2
				}
				w.addServer(&Server{
					Addr:     addr,
					DC:       dc.ID,
					Class:    ClassGoogle,
					Capacity: capacity,
				})
			}
			remaining -= n
		}
	}
	return nil
}

// buildEdgePools creates the legacy YouTube-EU (AS 43515) and
// third-party (CW, GBLX) server pools. They are modelled as extra
// sites so traces contain their addresses, but they never participate
// in Google's DNS selection; only the per-VP legacy/third-party quirk
// paths reach them.
func buildEdgePools(w *World, cfg PaperConfig) error {
	type pool struct {
		city   geo.City
		as     asdb.AS
		class  ServerClass
		count  int
		prefix string
	}
	legacyPer := cfg.LegacyServers / 4
	tpPer := cfg.ThirdPartyServers / 4
	pools := []pool{
		{geo.Amsterdam, asYouTubeEU, ClassLegacyEU, legacyPer, "208.117.224.0/24"},
		{geo.London, asYouTubeEU, ClassLegacyEU, legacyPer, "208.117.225.0/24"},
		{geo.WashingtonDC, asYouTubeEU, ClassLegacyEU, legacyPer, "208.117.226.0/24"},
		{geo.MountainView, asYouTubeEU, ClassLegacyEU, cfg.LegacyServers - 3*legacyPer, "208.117.227.0/24"},
		{geo.London, asCW, ClassThirdParty, tpPer, "166.49.128.0/24"},
		{geo.NewYork, asCW, ClassThirdParty, tpPer, "166.49.129.0/24"},
		{geo.Frankfurt, asGBLX, ClassThirdParty, tpPer, "64.214.0.0/24"},
		{geo.Dallas, asGBLX, ClassThirdParty, cfg.ThirdPartyServers - 3*tpPer, "64.214.1.0/24"},
	}
	for _, p := range pools {
		dc := &DataCenter{
			ID:    DataCenterID(len(w.DataCenters)),
			City:  p.city,
			AS:    p.as,
			Class: p.class,
		}
		w.DataCenters = append(w.DataCenters, dc)
		prefix := ipnet.MustParsePrefix(p.prefix)
		w.Registry.Register(prefix, p.as)
		alloc := ipnet.NewAllocator(prefix)
		for i := 0; i < p.count; i++ {
			addr, err := alloc.Next()
			if err != nil {
				return fmt.Errorf("topology: %w", err)
			}
			w.addServer(&Server{
				Addr:     addr,
				DC:       dc.ID,
				Class:    p.class,
				Capacity: cfg.GoogleServerCapacity,
			})
		}
	}
	return nil
}

// buildVantagePoints creates the five monitored networks of Table I,
// their internal subnets, and their local DNS servers, including the
// US-Campus Net-3 LDNS whose preferred data center differs (Fig 12).
func buildVantagePoints(w *World, cfg PaperConfig) error {
	newLDNS := func(name string, addr string, vpIdx int) LDNSID {
		id := LDNSID(len(w.LDNSes))
		w.LDNSes = append(w.LDNSes, &LDNS{
			ID:           id,
			Name:         name,
			Addr:         ipnet.MustParseAddr(addr),
			VantagePoint: vpIdx,
		})
		return id
	}
	scale := func(n int) int { return int(float64(n) * cfg.Scale) }

	// --- US-Campus -------------------------------------------------
	// A midwest campus whose ISP hands traffic off in New York, so its
	// lowest-RTT DC (New York) is only the sixth closest (Fig 8).
	nyGW := geo.NewYork
	usIdx := 0
	usLDNSa := newLDNS("us-ldns-a", "128.210.11.5", usIdx)
	usLDNSb := newLDNS("us-ldns-b", "128.210.11.6", usIdx)
	usLDNSc := newLDNS("us-ldns-c", "128.210.156.4", usIdx) // Net-3's
	us := &VantagePoint{
		Name:        DatasetUSCampus,
		City:        geo.WestLafayette,
		Access:      netmodel.AccessCampus,
		AS:          asUSCampus,
		GatewayCity: &nyGW,
		Prefix:      ipnet.MustParsePrefix("128.210.0.0/16"),
		Subnets: []*Subnet{
			{Name: "Net-1", Prefix: ipnet.MustParsePrefix("128.210.0.0/19"), LDNS: usLDNSa, Weight: 0.31},
			{Name: "Net-2", Prefix: ipnet.MustParsePrefix("128.210.32.0/19"), LDNS: usLDNSa, Weight: 0.26},
			{Name: "Net-3", Prefix: ipnet.MustParsePrefix("128.210.64.0/19"), LDNS: usLDNSc, Weight: 0.04},
			{Name: "Net-4", Prefix: ipnet.MustParsePrefix("128.210.96.0/19"), LDNS: usLDNSb, Weight: 0.21},
			{Name: "Net-5", Prefix: ipnet.MustParsePrefix("128.210.128.0/19"), LDNS: usLDNSb, Weight: 0.18},
		},
		NumClients:      20443,
		WeeklySessions:  scale(648000),
		DiurnalPeakHour: 15,
		DiurnalMinFrac:  0.12,
		LegacyProb:      0.009,
		ThirdPartyProb:  0.0003,
		SizeScale:       1.02,
		TailForeignProb: 0.005,
		ForeignWeights:  map[geo.Continent]float64{geo.Europe: 0.57, geo.Asia: 0.28, geo.SouthAmerica: 0.1, geo.Oceania: 0.05},
	}
	w.VantagePoints = append(w.VantagePoints, us)

	// --- EU1-Campus (Turin) ----------------------------------------
	eu1cIdx := 1
	eu1cLDNS := newLDNS("eu1c-ldns", "130.192.3.21", eu1cIdx)
	eu1c := &VantagePoint{
		Name:   DatasetEU1Campus,
		City:   geo.Turin,
		Access: netmodel.AccessCampus,
		AS:     asEU1Campus,
		Prefix: ipnet.MustParsePrefix("130.192.0.0/16"),
		Subnets: []*Subnet{
			{Name: "Net-1", Prefix: ipnet.MustParsePrefix("130.192.0.0/18"), LDNS: eu1cLDNS, Weight: 0.62},
			{Name: "Net-2", Prefix: ipnet.MustParsePrefix("130.192.64.0/18"), LDNS: eu1cLDNS, Weight: 0.38},
		},
		NumClients:      1113,
		WeeklySessions:  scale(100000),
		DiurnalPeakHour: 14,
		DiurnalMinFrac:  0.06,
		LegacyProb:      0.006,
		ThirdPartyProb:  0.004,
		SizeScale:       0.55,
		TailForeignProb: 0.011,
		ForeignWeights:  map[geo.Continent]float64{geo.NorthAmerica: 0.95, geo.Asia: 0.05},
	}
	w.VantagePoints = append(w.VantagePoints, eu1c)

	// --- EU1-ADSL (same ISP, Turin PoP) ----------------------------
	adslIdx := 2
	adslLDNSa := newLDNS("eu1adsl-ldns-a", "151.8.1.1", adslIdx)
	adslLDNSb := newLDNS("eu1adsl-ldns-b", "151.8.1.2", adslIdx)
	adsl := &VantagePoint{
		Name:   DatasetEU1ADSL,
		City:   geo.Turin,
		Access: netmodel.AccessADSL,
		AS:     asEU1ISP,
		Prefix: ipnet.MustParsePrefix("151.8.0.0/16"),
		Subnets: []*Subnet{
			{Name: "Net-1", Prefix: ipnet.MustParsePrefix("151.8.0.0/18"), LDNS: adslLDNSa, Weight: 0.41},
			{Name: "Net-2", Prefix: ipnet.MustParsePrefix("151.8.64.0/18"), LDNS: adslLDNSa, Weight: 0.33},
			{Name: "Net-3", Prefix: ipnet.MustParsePrefix("151.8.128.0/18"), LDNS: adslLDNSb, Weight: 0.26},
		},
		NumClients:      8348,
		WeeklySessions:  scale(650000),
		DiurnalPeakHour: 21,
		DiurnalMinFrac:  0.08,
		LegacyProb:      0.008,
		ThirdPartyProb:  0.003,
		SizeScale:       0.54,
		TailForeignProb: 0.016,
		ForeignWeights:  map[geo.Continent]float64{geo.NorthAmerica: 0.92, geo.Asia: 0.08},
	}
	w.VantagePoints = append(w.VantagePoints, adsl)

	// --- EU1-FTTH (same ISP, Milan PoP) ----------------------------
	ftthIdx := 3
	ftthLDNS := newLDNS("eu1ftth-ldns", "151.9.1.1", ftthIdx)
	ftth := &VantagePoint{
		Name:   DatasetEU1FTTH,
		City:   geo.Milan,
		Access: netmodel.AccessFTTH,
		AS:     asEU1ISP,
		Prefix: ipnet.MustParsePrefix("151.9.0.0/16"),
		Subnets: []*Subnet{
			{Name: "Net-1", Prefix: ipnet.MustParsePrefix("151.9.0.0/18"), LDNS: ftthLDNS, Weight: 0.55},
			{Name: "Net-2", Prefix: ipnet.MustParsePrefix("151.9.64.0/18"), LDNS: ftthLDNS, Weight: 0.45},
		},
		NumClients:      997,
		WeeklySessions:  scale(68000),
		DiurnalPeakHour: 21,
		DiurnalMinFrac:  0.08,
		LegacyProb:      0.008,
		ThirdPartyProb:  0.004,
		SizeScale:       0.66,
		TailForeignProb: 0.017,
		ForeignWeights:  map[geo.Continent]float64{geo.NorthAmerica: 0.70, geo.Asia: 0.30},
	}
	w.VantagePoints = append(w.VantagePoints, ftth)

	// --- EU2 (Budapest, largest ISP, in-network DC) ----------------
	eu2Idx := 4
	eu2LDNSa := newLDNS("eu2-ldns-a", "84.2.0.1", eu2Idx)
	eu2LDNSb := newLDNS("eu2-ldns-b", "84.2.0.2", eu2Idx)
	eu2 := &VantagePoint{
		Name:   DatasetEU2,
		City:   geo.Budapest,
		Access: netmodel.AccessADSL,
		AS:     asEU2ISP,
		Prefix: ipnet.MustParsePrefix("84.2.0.0/16"),
		Subnets: []*Subnet{
			{Name: "Net-1", Prefix: ipnet.MustParsePrefix("84.2.0.0/18"), LDNS: eu2LDNSa, Weight: 0.30},
			{Name: "Net-2", Prefix: ipnet.MustParsePrefix("84.2.64.0/18"), LDNS: eu2LDNSa, Weight: 0.27},
			{Name: "Net-3", Prefix: ipnet.MustParsePrefix("84.2.128.0/18"), LDNS: eu2LDNSb, Weight: 0.25},
			{Name: "Net-4", Prefix: ipnet.MustParsePrefix("84.2.192.0/18"), LDNS: eu2LDNSb, Weight: 0.18},
		},
		NumClients:      6552,
		WeeklySessions:  scale(380000),
		DiurnalPeakHour: 20,
		DiurnalMinFrac:  0.07,
		LegacyProb:      0.07,
		ThirdPartyProb:  0.006,
		SizeScale:       0.70,
		TailForeignProb: 0.009,
		ForeignWeights:  map[geo.Continent]float64{geo.NorthAmerica: 1.0},
	}
	w.VantagePoints = append(w.VantagePoints, eu2)

	// Register client prefixes in whois.
	for _, vp := range w.VantagePoints {
		w.Registry.Register(vp.Prefix, vp.AS)
	}

	// Preferred-DC overrides. The US-Campus Net-3 LDNS is mapped by
	// the authoritative DNS to Dallas instead of the RTT-best New York
	// DC (paper §VII-B: an assignment-policy variation, not a
	// misconfiguration). Dallas is well outside the five closest DCs,
	// preserving Fig 8's "closest five serve <2%" property.
	if dc := w.dcByCity(geo.Dallas.Name); dc != nil {
		w.PreferredOverrides[usLDNSc] = dc.ID
	} else {
		return fmt.Errorf("topology: Dallas data center missing")
	}
	return nil
}

// dcByCity returns the first Google-class DC in the named city.
func (w *World) dcByCity(name string) *DataCenter {
	for _, dc := range w.DataCenters {
		if dc.Class == ClassGoogle && dc.City.Name == name {
			return dc
		}
	}
	return nil
}

// buildLandmarks spreads 215 landmarks with the paper's continental
// mix (97 NA, 82 EU, 24 Asia, 8 SA, 3 Oceania, 1 Africa) by jittering
// positions around the seed cities of each continent.
func buildLandmarks(w *World, cfg PaperConfig) {
	counts := map[geo.Continent]int{
		geo.NorthAmerica: 97,
		geo.Europe:       82,
		geo.Asia:         24,
		geo.SouthAmerica: 8,
		geo.Oceania:      3,
		geo.Africa:       1,
	}
	seedsByCont := make(map[geo.Continent][]geo.City)
	for _, c := range geo.LandmarkSeedCities() {
		seedsByCont[c.Continent] = append(seedsByCont[c.Continent], c)
	}
	g := stats.NewRNG(cfg.Seed).Fork("landmarks")
	// Iterate continents in a fixed order for determinism.
	order := []geo.Continent{geo.NorthAmerica, geo.Europe, geo.Asia, geo.SouthAmerica, geo.Oceania, geo.Africa}
	for _, cont := range order {
		seeds := seedsByCont[cont]
		for i := 0; i < counts[cont]; i++ {
			seed := seeds[i%len(seeds)]
			bearing := g.Uniform(0, 360)
			dist := g.Uniform(5, 350)
			loc := geo.Destination(seed.Point, bearing, dist)
			w.Landmarks = append(w.Landmarks, &Landmark{
				Name: fmt.Sprintf("%s-%d", seed.Name, i),
				City: seed.Name,
				Loc:  loc,
			})
		}
	}
}
