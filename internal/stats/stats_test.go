package stats

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRNGForkIndependentButReproducible(t *testing.T) {
	a1 := NewRNG(7).Fork("workload")
	a2 := NewRNG(7).Fork("workload")
	b := NewRNG(7).Fork("dns")
	same, diff := true, false
	for i := 0; i < 50; i++ {
		v1, v2, v3 := a1.Float64(), a2.Float64(), b.Float64()
		if v1 != v2 {
			same = false
		}
		if v1 != v3 {
			diff = true
		}
	}
	if !same {
		t.Error("Fork with same name must be reproducible")
	}
	if !diff {
		t.Error("Fork with different names must differ")
	}
}

// TestRNGForkOrderIndependent pins the contract the concurrent
// analysis runtime depends on: a fork's stream is a pure function of
// (parent seed, name), no matter how much the parent has drawn or how
// many siblings were forked first.
func TestRNGForkOrderIndependent(t *testing.T) {
	fresh := NewRNG(42).Fork("x")
	busy := NewRNG(42)
	for i := 0; i < 17; i++ {
		busy.Float64() // consume parent state
	}
	busy.Fork("sibling")
	late := busy.Fork("x")
	for i := 0; i < 50; i++ {
		if fresh.Float64() != late.Float64() {
			t.Fatal("fork stream depends on parent draw position or sibling order")
		}
	}
}

func TestForkSeedPure(t *testing.T) {
	if ForkSeed(1, "a") != ForkSeed(1, "a") {
		t.Error("ForkSeed not deterministic")
	}
	if ForkSeed(1, "a") == ForkSeed(1, "b") {
		t.Error("ForkSeed ignores name")
	}
	if ForkSeed(1, "a") == ForkSeed(2, "a") {
		t.Error("ForkSeed ignores seed")
	}
	if got := NewRNG(9).Fork("n").Seed(); got != ForkSeed(9, "n") {
		t.Errorf("Fork seed = %d, want ForkSeed = %d", got, ForkSeed(9, "n"))
	}
}

// TestRNGForkConcurrent forks from one parent in many goroutines;
// meaningful under -race.
func TestRNGForkConcurrent(t *testing.T) {
	parent := NewRNG(3)
	var wg sync.WaitGroup
	vals := make([]float64, 16)
	for k := range vals {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals[k] = parent.Fork("worker").Float64()
		}()
	}
	wg.Wait()
	for k := range vals {
		if vals[k] != vals[0] {
			t.Fatal("same-name forks must agree regardless of goroutine schedule")
		}
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform(5,10) = %v out of range", v)
		}
	}
}

func TestRNGPoissonMean(t *testing.T) {
	g := NewRNG(3)
	for _, mean := range []float64{0.5, 4, 40, 800} {
		n := 5000
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.1+0.2 {
			t.Errorf("Poisson(%g) sample mean = %g", mean, got)
		}
	}
}

func TestRNGPoissonEdge(t *testing.T) {
	g := NewRNG(4)
	if got := g.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := g.Poisson(-3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := g.LogNormal(1, 2); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(6)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %g", frac)
	}
}

func TestNewZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) must fail")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf(10, -1) must fail")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(8)
	counts := make([]int, 1000)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(g)]++
	}
	// Rank 0 should get about 1/H(1000) ~ 13.4% of draws.
	frac0 := float64(counts[0]) / float64(n)
	if frac0 < 0.10 || frac0 > 0.17 {
		t.Errorf("rank-0 fraction = %g, want ~0.134", frac0)
	}
	// Monotone non-increasing on average: first decile outweighs last.
	head, tail := 0, 0
	for i := 0; i < 100; i++ {
		head += counts[i]
		tail += counts[900+i]
	}
	if head <= tail*10 {
		t.Errorf("zipf not skewed: head=%d tail=%d", head, tail)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if math.Abs(z.ProbOfRank(r)-0.1) > 1e-9 {
			t.Errorf("ProbOfRank(%d) = %g, want 0.1", r, z.ProbOfRank(r))
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw)%100 + 1
		s := float64(sRaw) / 64.0
		z, err := NewZipf(n, s)
		if err != nil {
			return false
		}
		sum := 0.0
		for r := 0; r < n; r++ {
			sum += z.ProbOfRank(r)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	z, _ := NewZipf(17, 0.9)
	g := NewRNG(9)
	for i := 0; i < 10000; i++ {
		r := z.Sample(g)
		if r < 0 || r >= 17 {
			t.Fatalf("Sample out of range: %d", r)
		}
	}
}

func TestZipfProbOfRankOutOfRange(t *testing.T) {
	z, _ := NewZipf(5, 1)
	if z.ProbOfRank(-1) != 0 || z.ProbOfRank(5) != 0 {
		t.Error("out-of-range ranks must have zero probability")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %g, want 0", got)
	}
	if got := c.At(1); got != 1.0/3 {
		t.Errorf("At(1) = %g, want 1/3", got)
	}
	if got := c.At(2.5); got != 2.0/3 {
		t.Errorf("At(2.5) = %g, want 2/3", got)
	}
	if got := c.At(99); got != 1 {
		t.Errorf("At(99) = %g, want 1", got)
	}
	if c.Min() != 1 || c.Max() != 3 {
		t.Errorf("Min/Max = %g/%g", c.Min(), c.Max())
	}
	if c.Median() != 2 {
		t.Errorf("Median = %g", c.Median())
	}
	if math.Abs(c.Mean()-2) > 1e-12 {
		t.Errorf("Mean = %g", c.Mean())
	}
}

func TestCDFAddAfterQuery(t *testing.T) {
	c := &CDF{}
	c.Add(5)
	if c.At(5) != 1 {
		t.Error("single sample CDF broken")
	}
	c.Add(1)
	if c.At(1) != 0.5 {
		t.Errorf("At(1) after Add = %g, want 0.5", c.At(1))
	}
}

func TestCDFQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty CDF must panic")
		}
	}()
	(&CDF{}).Quantile(0.5)
}

func TestCDFQuantileRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile(1.5) must panic")
		}
	}()
	NewCDF([]float64{1}).Quantile(1.5)
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		c := NewCDF(samples)
		xs := append([]float64(nil), samples...)
		sort.Float64s(xs)
		prev := 0.0
		for _, x := range xs {
			cur := c.At(x)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return c.At(xs[len(xs)-1]) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	// At(Quantile(q)) >= q for all q.
	c := NewCDF([]float64{5, 2, 9, 1, 7, 3, 8, 4, 6, 0})
	for q := 0.0; q <= 1.0; q += 0.05 {
		x := c.Quantile(q)
		if c.At(x) < q-1e-9 {
			t.Errorf("At(Quantile(%g)) = %g < %g", q, c.At(x), q)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{10, 20})
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("Points len = %d", len(pts))
	}
	if pts[0].X != 10 || pts[0].F != 0.5 || pts[1].X != 20 || pts[1].F != 1 {
		t.Errorf("Points = %+v", pts)
	}
}

func TestCDFRenderASCII(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	s := c.RenderASCII("test", []float64{2})
	if s == "" {
		t.Error("RenderASCII returned empty string")
	}
}

func TestTimeBinsBasics(t *testing.T) {
	tb := NewTimeBins(3*time.Hour, time.Hour)
	if tb.N() != 3 {
		t.Fatalf("N = %d", tb.N())
	}
	tb.Incr(30 * time.Minute)
	tb.Incr(90 * time.Minute)
	tb.Add(150*time.Minute, 2)
	if tb.Bin(0) != 1 || tb.Bin(1) != 1 || tb.Bin(2) != 2 {
		t.Errorf("bins = %v", tb.Values())
	}
	if tb.Total() != 4 {
		t.Errorf("Total = %g", tb.Total())
	}
	idx, v := tb.MaxBin()
	if idx != 2 || v != 2 {
		t.Errorf("MaxBin = %d,%g", idx, v)
	}
}

func TestTimeBinsClamping(t *testing.T) {
	tb := NewTimeBins(2*time.Hour, time.Hour)
	tb.Incr(-5 * time.Minute)
	tb.Incr(100 * time.Hour)
	if tb.Bin(0) != 1 || tb.Bin(1) != 1 {
		t.Errorf("clamping failed: %v", tb.Values())
	}
}

func TestTimeBinsUnevenSpan(t *testing.T) {
	tb := NewTimeBins(90*time.Minute, time.Hour)
	if tb.N() != 2 {
		t.Errorf("N = %d, want 2 (rounded up)", tb.N())
	}
}

func TestTimeBinsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width must panic")
		}
	}()
	NewTimeBins(time.Hour, 0)
}

func TestRatio(t *testing.T) {
	num := NewTimeBins(3*time.Hour, time.Hour)
	den := NewTimeBins(3*time.Hour, time.Hour)
	num.Add(0, 1)
	den.Add(0, 4)
	den.Add(time.Hour, 2)
	vals, ok := Ratio(num, den)
	if vals[0] != 0.25 || !ok[0] {
		t.Errorf("bin 0: %g %v", vals[0], ok[0])
	}
	if vals[1] != 0 || !ok[1] {
		t.Errorf("bin 1: %g %v", vals[1], ok[1])
	}
	if vals[2] != 0 || ok[2] {
		t.Errorf("bin 2 must be masked: %g %v", vals[2], ok[2])
	}
}

func TestRatioGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched geometry must panic")
		}
	}()
	Ratio(NewTimeBins(2*time.Hour, time.Hour), NewTimeBins(3*time.Hour, time.Hour))
}

func TestTimeBinsString(t *testing.T) {
	tb := NewTimeBins(time.Hour, time.Hour)
	if tb.String() == "" {
		t.Error("String empty")
	}
}

// TestForkIndexed pins the bucketed fork: children depend only on
// (parent seed, name, index) — not on sibling count, fork order or the
// parent's draw position — and distinct indices give distinct streams.
func TestForkIndexed(t *testing.T) {
	parent := NewRNG(99)
	a := parent.ForkIndexed("subnet", 3)
	parent.Float64() // advance the parent; must not matter
	b := NewRNG(99).ForkIndexed("subnet", 3)
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("ForkIndexed depends on parent draw position or fork order")
		}
	}
	if NewRNG(99).ForkIndexed("subnet", 3).Seed() == NewRNG(99).ForkIndexed("subnet", 4).Seed() {
		t.Error("distinct indices must give distinct streams")
	}
	if NewRNG(99).ForkIndexed("subnet", 3).Seed() != NewRNG(99).Fork("subnet/3").Seed() {
		t.Error("ForkIndexed must be the documented name/index fork")
	}
}
