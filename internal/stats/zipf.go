package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF so draws are O(log n) binary
// searches, which keeps multi-million-request workloads cheap, and it
// is deterministic given the RNG stream.
//
// YouTube video popularity is well modelled by a Zipf-like law with
// exponent near 1 (Cha et al., IMC 2007), which is what the workload
// generator uses.
type Zipf struct {
	cdf []float64
	s   float64
}

// NewZipf builds a sampler over n ranks with exponent s. It returns an
// error if n < 1 or s < 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: zipf needs n >= 1, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("stats: zipf needs s >= 0, got %g", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, s: s}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Exponent returns the skew parameter s.
func (z *Zipf) Exponent() float64 { return z.s }

// Sample draws a rank in [0, N) using g.
func (z *Zipf) Sample(g *RNG) int {
	u := g.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// ProbOfRank returns the probability mass of the given rank.
func (z *Zipf) ProbOfRank(rank int) float64 {
	if rank < 0 || rank >= len(z.cdf) {
		return 0
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
