// Package stats provides the statistical toolkit shared by the
// simulator and the analysis pipeline: deterministic random streams,
// empirical CDFs and quantiles, time-binned counters, and the heavy-tail
// samplers (Zipf, log-normal) that drive the synthetic workload.
package stats

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// rngMask truncates a raw 64-bit source value to the non-negative
// 63-bit range, exactly as math/rand's own rngSource.Int63 does.
const rngMask = 1<<63 - 1

// tapeSource interposes between math/rand and the underlying seeded
// source, treating the source's Uint64 outputs as a fixed value tape.
// While recording (Mark) every produced value is journaled; Rewind
// pushes the journal back onto a pending queue, so the next draws
// replay the exact tape before the inner source resumes — which is what
// makes deterministic replay after an optimistic rollback possible: the
// tape is a pure function of the seed, so "rewind and re-execute" is
// indistinguishable from never having sped ahead, even when the replay
// consumes a different number of values than the speculation did.
//
// Int63 is int64(Uint64() & rngMask), byte-identical to the stdlib
// rngSource, so wrapping changes no draw of any seeded stream.
type tapeSource struct {
	inner     rand.Source64
	recording bool
	journal   []uint64 // values produced since the last Mark
	pending   []uint64 // rewound values to replay before inner resumes
}

func (t *tapeSource) Uint64() uint64 {
	var v uint64
	if len(t.pending) > 0 {
		v = t.pending[0]
		t.pending = t.pending[1:]
	} else {
		v = t.inner.Uint64()
	}
	if t.recording {
		t.journal = append(t.journal, v)
	}
	return v
}

func (t *tapeSource) Int63() int64 { return int64(t.Uint64() & rngMask) }

func (t *tapeSource) Seed(seed int64) {
	t.inner.Seed(seed)
	t.journal = nil
	t.pending = nil
}

// replaySource feeds a recorded tape back through math/rand. Once the
// tape is exhausted it returns zeros instead of panicking and marks
// itself overdrawn — an overdraw is a causality violation for the
// caller to detect, not a crash.
type replaySource struct {
	steps     []uint64
	next      int
	overdrawn bool
}

func (s *replaySource) Uint64() uint64 {
	if s.next >= len(s.steps) {
		s.overdrawn = true
		return 0
	}
	v := s.steps[s.next]
	s.next++
	return v
}

func (s *replaySource) Int63() int64 { return int64(s.Uint64() & rngMask) }

func (s *replaySource) Seed(int64) {}

// RNG is a deterministic random stream. It wraps math/rand with a few
// distributions the workload model needs. Drawing from an RNG is not
// safe for concurrent use; derive independent streams with Fork
// (which is safe to call concurrently) instead of sharing one.
type RNG struct {
	seed int64
	r    *rand.Rand
	// tape is the source interposer of a seeded stream (nil for replay
	// streams); it carries the Mark/Rewind rollback machinery.
	tape *tapeSource
	// replay is set on streams built by NewReplayRNG.
	replay *replaySource
}

// NewRNG returns a stream seeded with seed. The stream's draws are
// identical to rand.New(rand.NewSource(seed)): the tape interposer
// underneath (see Mark/Rewind) forwards the source values untouched.
func NewRNG(seed int64) *RNG {
	t := &tapeSource{inner: rand.NewSource(seed).(rand.Source64)}
	return &RNG{seed: seed, r: rand.New(t), tape: t}
}

// NewReplayRNG returns a stream that replays a tape recorded with
// TapeSince: its draws reproduce the recorded stream segment exactly.
// Drawing past the tape's end does not panic — the stream yields zeros
// and reports the overdraw through ReplayOverdrawn, so a replay that
// consumes more values than the original is detectable. A replay that
// consumes fewer is detected with ReplayExhausted.
func NewReplayRNG(steps []uint64) *RNG {
	s := &replaySource{steps: steps}
	return &RNG{r: rand.New(s), replay: s}
}

// ReplayExhausted reports whether a replay stream has consumed its
// whole tape (and no more). It is false for non-replay streams.
func (g *RNG) ReplayExhausted() bool {
	return g.replay != nil && g.replay.next == len(g.replay.steps) && !g.replay.overdrawn
}

// ReplayOverdrawn reports whether a replay stream was drawn from past
// the end of its tape.
func (g *RNG) ReplayOverdrawn() bool {
	return g.replay != nil && g.replay.overdrawn
}

// Mark starts (or restarts) recording the stream's source values. The
// journal is cleared, so a later Rewind returns the stream to exactly
// this point. Replay streams ignore Mark.
func (g *RNG) Mark() {
	if g.tape == nil {
		return
	}
	g.tape.recording = true
	g.tape.journal = g.tape.journal[:0]
}

// Rewind returns the stream to the last Mark: every source value
// produced since then is queued for replay, so re-executing the same
// (or a different) draw sequence continues the seed's fixed tape
// without a gap. Rewound values are re-journaled as they replay, so
// repeated rollbacks of one interval compose. Calling Rewind without a
// prior Mark (or on a replay stream) is a no-op.
func (g *RNG) Rewind() {
	if g.tape == nil || len(g.tape.journal) == 0 {
		return
	}
	t := g.tape
	replay := make([]uint64, 0, len(t.journal)+len(t.pending))
	replay = append(replay, t.journal...)
	replay = append(replay, t.pending...)
	t.pending = replay
	t.journal = t.journal[:0]
}

// TapePos returns the number of source values recorded since the last
// Mark. Zero for non-recording and replay streams.
func (g *RNG) TapePos() int {
	if g.tape == nil {
		return 0
	}
	return len(g.tape.journal)
}

// TapeSince returns a copy of the source values recorded since the
// given TapePos — the tape segment one decision consumed, ready to seed
// a NewReplayRNG. The copy never aliases the live journal.
func (g *RNG) TapeSince(pos int) []uint64 {
	if g.tape == nil || pos >= len(g.tape.journal) {
		return nil
	}
	out := make([]uint64, len(g.tape.journal)-pos)
	copy(out, g.tape.journal[pos:])
	return out
}

// Seed returns the seed the stream was created with.
func (g *RNG) Seed() int64 { return g.seed }

// ForkSeed derives the seed of the child stream labelled name from a
// parent seed. It is a pure function of its arguments, so child
// streams are independent of how much the parent has drawn and of the
// order in which siblings are forked.
func ForkSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64())
}

// Fork derives an independent stream labelled by name. The child seed
// depends only on the parent's seed and the name — not on the parent's
// draw position — which keeps every experiment bit-reproducible
// regardless of the order in which subsystems draw random numbers, and
// makes Fork safe to call from concurrent goroutines. Forking the same
// name twice from one parent yields identical streams; use distinct
// names for independent streams.
func (g *RNG) Fork(name string) *RNG {
	return NewRNG(ForkSeed(g.seed, name))
}

// ForkIndexed derives the i-th stream of a bucketed family ("name/i").
// It is the fork used to split one logical actor into independent
// sub-streams — e.g. a vantage point's per-subnet workload and player
// streams — and inherits Fork's guarantees: the child depends only on
// (parent seed, name, i), never on how many siblings exist or in which
// order they are forked, so any grouping of the buckets onto engines
// reproduces bit-identically.
func (g *RNG) ForkIndexed(name string, i int) *RNG {
	return g.Fork(fmt.Sprintf("%s/%d", name, i))
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential draw with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// LogNormal returns a draw from a log-normal distribution with the
// given parameters of the underlying normal (mu, sigma).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Poisson returns a Poisson draw with the given mean, using Knuth's
// algorithm for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation; adequate for arrival counts.
		n := int(math.Round(mean + math.Sqrt(mean)*g.r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
