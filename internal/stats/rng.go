// Package stats provides the statistical toolkit shared by the
// simulator and the analysis pipeline: deterministic random streams,
// empirical CDFs and quantiles, time-binned counters, and the heavy-tail
// samplers (Zipf, log-normal) that drive the synthetic workload.
package stats

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. It wraps math/rand with a few
// distributions the workload model needs. Drawing from an RNG is not
// safe for concurrent use; derive independent streams with Fork
// (which is safe to call concurrently) instead of sharing one.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed the stream was created with.
func (g *RNG) Seed() int64 { return g.seed }

// ForkSeed derives the seed of the child stream labelled name from a
// parent seed. It is a pure function of its arguments, so child
// streams are independent of how much the parent has drawn and of the
// order in which siblings are forked.
func ForkSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64())
}

// Fork derives an independent stream labelled by name. The child seed
// depends only on the parent's seed and the name — not on the parent's
// draw position — which keeps every experiment bit-reproducible
// regardless of the order in which subsystems draw random numbers, and
// makes Fork safe to call from concurrent goroutines. Forking the same
// name twice from one parent yields identical streams; use distinct
// names for independent streams.
func (g *RNG) Fork(name string) *RNG {
	return NewRNG(ForkSeed(g.seed, name))
}

// ForkIndexed derives the i-th stream of a bucketed family ("name/i").
// It is the fork used to split one logical actor into independent
// sub-streams — e.g. a vantage point's per-subnet workload and player
// streams — and inherits Fork's guarantees: the child depends only on
// (parent seed, name, i), never on how many siblings exist or in which
// order they are forked, so any grouping of the buckets onto engines
// reproduces bit-identically.
func (g *RNG) ForkIndexed(name string, i int) *RNG {
	return g.Fork(fmt.Sprintf("%s/%d", name, i))
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential draw with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// LogNormal returns a draw from a log-normal distribution with the
// given parameters of the underlying normal (mu, sigma).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Poisson returns a Poisson draw with the given mean, using Knuth's
// algorithm for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation; adequate for arrival counts.
		n := int(math.Round(mean + math.Sqrt(mean)*g.r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
