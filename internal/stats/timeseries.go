package stats

import (
	"fmt"
	"time"
)

// TimeBins accumulates counts (or sums) into fixed-width time bins over
// a window [0, span). It backs every "per hour" figure in the paper
// (Figs 9, 11, 14, 15, 16). Times are offsets from the start of the
// capture, matching the trace format.
type TimeBins struct {
	width time.Duration
	bins  []float64
}

// NewTimeBins creates span/width bins of the given width. It panics if
// width <= 0 or span < width, which are programming errors.
func NewTimeBins(span, width time.Duration) *TimeBins {
	if width <= 0 {
		panic("stats: TimeBins width must be positive")
	}
	if span < width {
		panic("stats: TimeBins span must cover at least one bin")
	}
	n := int(span / width)
	if span%width != 0 {
		n++
	}
	return &TimeBins{width: width, bins: make([]float64, n)}
}

// Add accumulates v into the bin containing t. Out-of-range times are
// clamped to the first/last bin so boundary flows are never lost.
func (tb *TimeBins) Add(t time.Duration, v float64) {
	idx := int(t / tb.width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tb.bins) {
		idx = len(tb.bins) - 1
	}
	tb.bins[idx] += v
}

// Incr adds 1 to the bin containing t.
func (tb *TimeBins) Incr(t time.Duration) { tb.Add(t, 1) }

// N returns the number of bins.
func (tb *TimeBins) N() int { return len(tb.bins) }

// Width returns the bin width.
func (tb *TimeBins) Width() time.Duration { return tb.width }

// Bin returns the accumulated value of bin i.
func (tb *TimeBins) Bin(i int) float64 { return tb.bins[i] }

// Values returns a copy of all bin values.
func (tb *TimeBins) Values() []float64 {
	out := make([]float64, len(tb.bins))
	copy(out, tb.bins)
	return out
}

// Total returns the sum over all bins.
func (tb *TimeBins) Total() float64 {
	sum := 0.0
	for _, v := range tb.bins {
		sum += v
	}
	return sum
}

// Ratio returns num/den bin-by-bin. Bins where den is zero yield 0 and
// ok=false in the mask. Both inputs must have identical geometry.
func Ratio(num, den *TimeBins) (vals []float64, ok []bool) {
	if num.width != den.width || len(num.bins) != len(den.bins) {
		panic("stats: Ratio requires identical bin geometry")
	}
	vals = make([]float64, len(num.bins))
	ok = make([]bool, len(num.bins))
	for i := range num.bins {
		if den.bins[i] > 0 {
			vals[i] = num.bins[i] / den.bins[i]
			ok[i] = true
		}
	}
	return vals, ok
}

// MaxBin returns the index and value of the largest bin (first on tie).
func (tb *TimeBins) MaxBin() (int, float64) {
	best, bestV := 0, tb.bins[0]
	for i, v := range tb.bins {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// String summarizes the series.
func (tb *TimeBins) String() string {
	_, maxV := tb.MaxBin()
	return fmt.Sprintf("TimeBins{n=%d width=%s total=%.0f max=%.0f}",
		len(tb.bins), tb.width, tb.Total(), maxV)
}
