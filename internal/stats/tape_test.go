package stats

import (
	"math/rand"
	"testing"
)

// TestTapeWrapperMatchesStdlib pins the draw-identity contract of the
// tape interposer: an RNG is byte-identical to a bare
// rand.New(rand.NewSource(seed)) across every draw method. This is
// what keeps the trace goldens from re-rolling when the tape layer is
// in the path.
func TestTapeWrapperMatchesStdlib(t *testing.T) {
	g := NewRNG(42)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		switch i % 6 {
		case 0:
			if a, b := g.Float64(), r.Float64(); a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, a, b)
			}
		case 1:
			if a, b := g.Intn(97), r.Intn(97); a != b {
				t.Fatalf("draw %d: Intn %d != %d", i, a, b)
			}
		case 2:
			if a, b := g.Int63(), r.Int63(); a != b {
				t.Fatalf("draw %d: Int63 %d != %d", i, a, b)
			}
		case 3:
			if a, b := g.NormFloat64(), r.NormFloat64(); a != b {
				t.Fatalf("draw %d: NormFloat64 %v != %v", i, a, b)
			}
		case 4:
			if a, b := g.ExpFloat64(), r.ExpFloat64(); a != b {
				t.Fatalf("draw %d: ExpFloat64 %v != %v", i, a, b)
			}
		case 5:
			if a, b := g.Perm(7), r.Perm(7); !equalInts(a, b) {
				t.Fatalf("draw %d: Perm %v != %v", i, a, b)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMarkRewindReplays pins the rollback contract: after Mark, any
// draw sequence followed by Rewind replays the same tape, even when the
// replay interprets the values through different draw methods or
// consumes a different count before continuing live.
func TestMarkRewindReplays(t *testing.T) {
	g := NewRNG(7)
	ref := NewRNG(7)
	// Burn a prefix on both so the mark is mid-stream.
	for i := 0; i < 13; i++ {
		g.Float64()
		ref.Float64()
	}
	g.Mark()
	// Speculate: draw a mixture, then roll back.
	for i := 0; i < 31; i++ {
		g.Intn(1000)
		g.NormFloat64()
	}
	g.Rewind()
	// Replay with a different interpretation and length; the stream
	// must still equal the never-speculated reference.
	for i := 0; i < 200; i++ {
		if a, b := g.Float64(), ref.Float64(); a != b {
			t.Fatalf("draw %d after rewind: %v != %v", i, a, b)
		}
	}
}

// TestRewindTwice pins that rollbacks compose: rewound values are
// re-journaled while they replay, so a second rollback of the same
// interval replays the identical tape.
func TestRewindTwice(t *testing.T) {
	g := NewRNG(99)
	ref := NewRNG(99)
	g.Mark()
	first := make([]float64, 10)
	for i := range first {
		first[i] = g.Float64()
	}
	g.Rewind()
	g.Mark()
	for i := 0; i < 4; i++ { // partial replay, then roll back again
		if v := g.Float64(); v != first[i] {
			t.Fatalf("partial replay draw %d diverged", i)
		}
	}
	g.Rewind()
	for i := 0; i < 50; i++ {
		if a, b := g.Float64(), ref.Float64(); a != b {
			t.Fatalf("draw %d after second rewind: %v != %v", i, a, b)
		}
	}
}

// TestTapeSinceAndReplayRNG pins the decision-validation path: the tape
// segment one decision consumed, replayed through NewReplayRNG,
// reproduces the decision's draws exactly and reports exhaustion and
// overdraw states correctly.
func TestTapeSinceAndReplayRNG(t *testing.T) {
	g := NewRNG(5)
	g.Mark()
	g.Float64() // another decision's draws
	pos := g.TapePos()
	want := []float64{g.Float64(), g.Float64(), g.Float64()}
	steps := g.TapeSince(pos)

	rg := NewReplayRNG(steps)
	if rg.ReplayExhausted() && len(steps) > 0 {
		t.Fatalf("fresh replay already exhausted")
	}
	for i, w := range want {
		if v := rg.Float64(); v != w {
			t.Fatalf("replay draw %d: %v != %v", i, v, w)
		}
	}
	if !rg.ReplayExhausted() {
		t.Fatalf("replay not exhausted after consuming the tape")
	}
	if rg.ReplayOverdrawn() {
		t.Fatalf("replay overdrawn without drawing past the tape")
	}
	rg.Float64() // one past the end
	if !rg.ReplayOverdrawn() {
		t.Fatalf("overdraw not reported")
	}
	if rg.ReplayExhausted() {
		t.Fatalf("an overdrawn replay must not count as cleanly exhausted")
	}

	// A replay that consumes fewer values than recorded is not
	// exhausted — the step-count mismatch a validator must flag.
	rg2 := NewReplayRNG(steps)
	rg2.Float64()
	if rg2.ReplayExhausted() {
		t.Fatalf("short replay reported exhausted")
	}
}

// TestSeededStreamsIgnoreReplayAccessors pins the accessor defaults on
// ordinary streams.
func TestSeededStreamsIgnoreReplayAccessors(t *testing.T) {
	g := NewRNG(1)
	if g.ReplayExhausted() || g.ReplayOverdrawn() {
		t.Fatalf("seeded stream reports replay state")
	}
	if g.TapePos() != 0 || g.TapeSince(0) != nil {
		t.Fatalf("tape journal non-empty before Mark")
	}
	g.Rewind() // no-op without Mark
	g.Float64()
}
