package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is an empty distribution ready for Add.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF builds a CDF from the given samples. The input slice is
// copied, so callers may reuse it.
func NewCDF(samples []float64) *CDF {
	c := &CDF{samples: make([]float64, len(samples))}
	copy(c.samples, samples)
	return c
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns the empirical CDF evaluated at x: the fraction of samples
// <= x. An empty CDF returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	// Number of samples <= x.
	n := sort.Search(len(c.samples), func(i int) bool { return c.samples[i] > x })
	return float64(n) / float64(len(c.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. It panics on an empty CDF or q outside [0, 1]; quantiles of
// nothing are a programming error, not a data condition.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%g) out of [0,1]", q))
	}
	c.ensureSorted()
	if q == 0 {
		return c.samples[0]
	}
	idx := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.samples) {
		idx = len(c.samples) - 1
	}
	return c.samples[idx]
}

// Median is shorthand for Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min returns the smallest sample. Panics if empty.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		panic("stats: Min of empty CDF")
	}
	c.ensureSorted()
	return c.samples[0]
}

// Max returns the largest sample. Panics if empty.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		panic("stats: Max of empty CDF")
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Mean returns the arithmetic mean, or 0 for an empty CDF.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Points returns (x, F(x)) pairs suitable for plotting: the sorted
// sample values with their cumulative fractions.
func (c *CDF) Points() []CDFPoint {
	c.ensureSorted()
	pts := make([]CDFPoint, len(c.samples))
	n := float64(len(c.samples))
	for i, v := range c.samples {
		pts[i] = CDFPoint{X: v, F: float64(i+1) / n}
	}
	return pts
}

// CDFPoint is one point of an empirical CDF curve.
type CDFPoint struct {
	X float64 // sample value
	F float64 // cumulative fraction of samples <= X
}

// RenderASCII renders the CDF as a fixed-width table sampling the
// curve at the given x values, matching how the paper's figures are
// tabulated in EXPERIMENTS.md.
func (c *CDF) RenderASCII(label string, xs []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", label)
	for _, x := range xs {
		fmt.Fprintf(&b, " F(%-8.4g)=%.3f", x, c.At(x))
	}
	return b.String()
}
