package des

import (
	"testing"
	"time"
)

func TestRunInTimeOrder(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestScheduleDuringRun(t *testing.T) {
	var e Engine
	var got []string
	e.Schedule(time.Second, func() {
		got = append(got, "first")
		e.ScheduleAfter(time.Second, func() { got = append(got, "second") })
	})
	e.Run()
	if len(got) != 2 || got[1] != "second" {
		t.Errorf("got %v", got)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestSchedulePastClamps(t *testing.T) {
	var e Engine
	fired := time.Duration(-1)
	e.Schedule(5*time.Second, func() {
		e.Schedule(time.Second, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 5*time.Second {
		t.Errorf("past event fired at %v, want clamped to 5s", fired)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(5*time.Second, func() { got = append(got, 5) })
	e.RunUntil(3 * time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("got %v", got)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if len(got) != 2 {
		t.Errorf("remaining event lost: %v", got)
	}
}

func TestStepOnEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty engine must return false")
	}
}

// TestPopReleasesEventClosures checks that executed events are not
// pinned by the heap's backing array: over a paper-scale week every
// retained closure (and its captured session state) would otherwise
// accumulate without bound.
func TestPopReleasesEventClosures(t *testing.T) {
	var e Engine
	const n = 64
	for i := 0; i < n; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run", e.Pending())
	}
	backing := e.queue[:cap(e.queue)]
	for i, ev := range backing {
		if ev.run != nil {
			t.Fatalf("slot %d still holds an executed event's closure", i)
		}
	}
}

func TestManyEventsOrdered(t *testing.T) {
	var e Engine
	const n = 10000
	prev := time.Duration(-1)
	ok := true
	for i := 0; i < n; i++ {
		at := time.Duration((i*7919)%n) * time.Millisecond
		e.Schedule(at, func() {
			if e.Now() < prev {
				ok = false
			}
			prev = e.Now()
		})
	}
	e.Run()
	if !ok {
		t.Error("clock went backwards")
	}
}
