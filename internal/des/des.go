// Package des is a minimal deterministic discrete-event simulation
// engine: a time-ordered event queue with a monotonically advancing
// clock. Ties are broken by scheduling order, so a run is a pure
// function of its inputs.
package des

import (
	"sync/atomic"
	"time"
)

// Engine runs events in non-decreasing time order. The zero value is
// ready to use. An Engine is not safe for concurrent use: each engine
// is driven by exactly one goroutine so that runs are reproducible.
// Concurrency across engines is the ShardedRunner's job.
//
// The atomic fields shadow the single-goroutine state for the
// observability scrape goroutine (LiveStats): a /metrics request must
// be able to read progress while the engine runs without taking part
// in its synchronization.
type Engine struct {
	queue eventHeap
	now   time.Duration
	seq   uint64

	executed  atomic.Int64 // events run, shadows the Step count
	liveDepth atomic.Int64 // shadows len(queue)
	liveNow   atomic.Int64 // shadows now, in nanoseconds
}

type event struct {
	at  time.Duration
	seq uint64
	run func()
}

// eventHeap is a concrete-typed binary min-heap ordered by (at, seq).
// It deliberately does not implement container/heap: the interface{}
// Push/Pop protocol boxes every event — two heap allocations per
// scheduled event, on the busiest loop in the simulator. The sift
// operations below mirror container/heap's up/down exactly and (at,
// seq) is a strict total order (seq is unique), so the pop sequence —
// and therefore every simulation result — is identical to the
// container/heap version.
type eventHeap []event

//perf:inline
//perf:noalloc
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and sifts it up.
//
//perf:hot
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev) //lint:ok hotalloc queue growth is amortized; the backing array is retained across pops
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
//
//perf:hot
//perf:noalloc
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	ev := s[n]
	// Zero the vacated slot so the popped event's run closure (and
	// whatever it captures) becomes collectable; otherwise the backing
	// array pins every executed event for the lifetime of the engine.
	s[n] = event{}
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		m := left
		if right := left + 1; right < n && s.less(right, left) {
			m = right
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return ev
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekTime returns the time of the earliest queued event, or false
// when the queue is empty. The sharded runner's k-way merge uses it to
// pick which shard steps next.
func (e *Engine) PeekTime() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Schedule enqueues run at the given absolute simulated time. Events
// scheduled in the past execute at the current time (the clock never
// moves backwards).
func (e *Engine) Schedule(at time.Duration, run func()) {
	if at < e.now {
		at = e.now
	}
	e.queue.push(event{at: at, seq: e.seq, run: run})
	e.seq++
	e.liveDepth.Store(int64(len(e.queue)))
}

// ScheduleAfter enqueues run delay after the current time.
func (e *Engine) ScheduleAfter(delay time.Duration, run func()) {
	e.Schedule(e.now+delay, run)
}

// Step executes the earliest event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	e.liveDepth.Store(int64(len(e.queue)))
	e.liveNow.Store(int64(ev.at))
	ev.run()
	e.executed.Add(1)
	return true
}

// Executed returns how many events have run. Unlike the other
// accessors it is safe to call from any goroutine while the engine
// runs — the sharded runner's stall accounting and the live metrics
// endpoint both rely on that.
func (e *Engine) Executed() int64 { return e.executed.Load() }

// LiveStats returns a racy-but-consistent view of engine progress —
// events executed, current queue depth, and the simulated clock — safe
// to call from the metrics scrape goroutine while the engine's own
// goroutine is mid-run. Each value is an atomic shadow updated as
// events are scheduled and run; they may lag the engine by an event.
func (e *Engine) LiveStats() (executed, queueDepth int64, now time.Duration) {
	return e.executed.Load(), e.liveDepth.Load(), time.Duration(e.liveNow.Load())
}

// EngineSnapshot is a restorable copy of an engine's run state: the
// pending queue, clock, scheduling sequence and executed count. It is
// the engine's contribution to an optimistic checkpoint; the event
// closures themselves are shared, not deep-copied, which is sound
// because everything mutable they capture is checkpointed and restored
// by the same coordinator that snapshots the engine.
type EngineSnapshot struct {
	queue    []event
	now      time.Duration
	seq      uint64
	executed int64
}

// Snapshot captures the engine's current state for a later Restore.
// Like every Engine method it must be called from the engine's driving
// goroutine (the sharded runner checkpoints only with all shards
// parked at a barrier).
func (e *Engine) Snapshot() *EngineSnapshot {
	q := make([]event, len(e.queue))
	copy(q, e.queue)
	return &EngineSnapshot{queue: q, now: e.now, seq: e.seq, executed: e.executed.Load()}
}

// Restore rewinds the engine to a Snapshot: pending events, clock,
// sequence counter and executed count, plus the atomic shadows the
// metrics scrape reads. The snapshot is copied out, so one snapshot
// can restore repeatedly.
func (e *Engine) Restore(s *EngineSnapshot) {
	e.queue = append(e.queue[:0], s.queue...)
	e.now = s.now
	e.seq = s.seq
	e.executed.Store(s.executed)
	e.liveDepth.Store(int64(len(e.queue)))
	e.liveNow.Store(int64(s.now))
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline, advancing the clock
// to exactly deadline afterwards. Events beyond the deadline stay
// queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
		e.liveNow.Store(int64(deadline))
	}
}

// RunBefore executes events with time strictly before deadline,
// advancing the clock to exactly deadline afterwards. It is the
// window step of the sharded runner: events at the window boundary
// belong to the next window, so a barrier at a boundary cleanly
// separates the events before it from the events at or after it.
func (e *Engine) RunBefore(deadline time.Duration) {
	for len(e.queue) > 0 && e.queue[0].at < deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
		e.liveNow.Store(int64(deadline))
	}
}
