// Package des is a minimal deterministic discrete-event simulation
// engine: a time-ordered event queue with a monotonically advancing
// clock. Ties are broken by scheduling order, so a run is a pure
// function of its inputs.
package des

import (
	"container/heap"
	"sync/atomic"
	"time"
)

// Engine runs events in non-decreasing time order. The zero value is
// ready to use. An Engine is not safe for concurrent use: each engine
// is driven by exactly one goroutine so that runs are reproducible.
// Concurrency across engines is the ShardedRunner's job.
//
// The atomic fields shadow the single-goroutine state for the
// observability scrape goroutine (LiveStats): a /metrics request must
// be able to read progress while the engine runs without taking part
// in its synchronization.
type Engine struct {
	queue eventHeap
	now   time.Duration
	seq   uint64

	executed  atomic.Int64 // events run, shadows the Step count
	liveDepth atomic.Int64 // shadows len(queue)
	liveNow   atomic.Int64 // shadows now, in nanoseconds
}

type event struct {
	at  time.Duration
	seq uint64
	run func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	// Zero the vacated slot so the popped event's run closure (and
	// whatever it captures) becomes collectable; otherwise the backing
	// array pins every executed event for the lifetime of the engine.
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekTime returns the time of the earliest queued event, or false
// when the queue is empty. The sharded runner's k-way merge uses it to
// pick which shard steps next.
func (e *Engine) PeekTime() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Schedule enqueues run at the given absolute simulated time. Events
// scheduled in the past execute at the current time (the clock never
// moves backwards).
func (e *Engine) Schedule(at time.Duration, run func()) {
	if at < e.now {
		at = e.now
	}
	heap.Push(&e.queue, event{at: at, seq: e.seq, run: run})
	e.seq++
	e.liveDepth.Store(int64(len(e.queue)))
}

// ScheduleAfter enqueues run delay after the current time.
func (e *Engine) ScheduleAfter(delay time.Duration, run func()) {
	e.Schedule(e.now+delay, run)
}

// Step executes the earliest event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.liveDepth.Store(int64(len(e.queue)))
	e.liveNow.Store(int64(ev.at))
	ev.run()
	e.executed.Add(1)
	return true
}

// Executed returns how many events have run. Unlike the other
// accessors it is safe to call from any goroutine while the engine
// runs — the sharded runner's stall accounting and the live metrics
// endpoint both rely on that.
func (e *Engine) Executed() int64 { return e.executed.Load() }

// LiveStats returns a racy-but-consistent view of engine progress —
// events executed, current queue depth, and the simulated clock — safe
// to call from the metrics scrape goroutine while the engine's own
// goroutine is mid-run. Each value is an atomic shadow updated as
// events are scheduled and run; they may lag the engine by an event.
func (e *Engine) LiveStats() (executed, queueDepth int64, now time.Duration) {
	return e.executed.Load(), e.liveDepth.Load(), time.Duration(e.liveNow.Load())
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline, advancing the clock
// to exactly deadline afterwards. Events beyond the deadline stay
// queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
		e.liveNow.Store(int64(deadline))
	}
}

// RunBefore executes events with time strictly before deadline,
// advancing the clock to exactly deadline afterwards. It is the
// window step of the sharded runner: events at the window boundary
// belong to the next window, so a barrier at a boundary cleanly
// separates the events before it from the events at or after it.
func (e *Engine) RunBefore(deadline time.Duration) {
	for len(e.queue) > 0 && e.queue[0].at < deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
		e.liveNow.Store(int64(deadline))
	}
}
