package des

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMergedOrderMatchesSingleEngine proves the window-0 guarantee at
// the engine level: splitting an event population across shards and
// merge-running them executes the union in exactly the order one
// engine would, with equal-time events ordered by shard index (the
// wiring order, which is the scheduling order on a single engine).
func TestMergedOrderMatchesSingleEngine(t *testing.T) {
	type ev struct {
		src int
		at  time.Duration
	}
	// Two sources with interleaved and colliding times.
	times := [][]time.Duration{
		{0, 10 * time.Second, 20 * time.Second, 20 * time.Second, 35 * time.Second},
		{0, 5 * time.Second, 20 * time.Second, 40 * time.Second},
	}

	var single Engine
	var want []ev
	for src, ts := range times { // wiring order: source 0 first
		src, ts := src, ts
		for _, at := range ts {
			at := at
			single.Schedule(at, func() { want = append(want, ev{src, at}) })
		}
	}
	single.Run()

	shards := []*Engine{{}, {}}
	var got []ev
	for src, ts := range times {
		src := src
		for _, at := range ts {
			at := at
			shards[src].Schedule(at, func() { got = append(got, ev{src, at}) })
		}
	}
	r, err := NewShardedRunner(0, shards...)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()

	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged order:\n got %v\nwant %v", got, want)
	}
}

// TestMergedBarrierOrdering pins barrier semantics under window 0: a
// barrier at T runs after every event strictly before T and before any
// event at or after T; trailing barriers still run.
func TestMergedBarrierOrdering(t *testing.T) {
	shards := []*Engine{{}, {}}
	var log []string
	shards[0].Schedule(1*time.Second, func() { log = append(log, "a@1") })
	shards[1].Schedule(2*time.Second, func() { log = append(log, "b@2") })
	shards[0].Schedule(2*time.Second, func() { log = append(log, "a@2") })
	shards[1].Schedule(3*time.Second, func() { log = append(log, "b@3") })

	r, err := NewShardedRunner(0, shards...)
	if err != nil {
		t.Fatal(err)
	}
	r.AddBarrier(2*time.Second, func() { log = append(log, "bar@2") })
	r.AddBarrier(10*time.Second, func() { log = append(log, "bar@10") })
	r.Run()

	want := []string{"a@1", "bar@2", "a@2", "b@2", "b@3", "bar@10"}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

// TestWindowedLockstep checks windowed mode executes every event
// exactly once and keeps each shard's own events in time order.
// Cross-shard order inside a window is unspecified.
func TestWindowedLockstep(t *testing.T) {
	const window = 10 * time.Second
	shards := []*Engine{{}, {}, {}}
	var mu sync.Mutex
	executed := make(map[int][]time.Duration)

	total := 0
	for s, e := range shards {
		s, e := s, e
		for i := 0; i < 50; i++ {
			at := time.Duration(i*(s+2)) * time.Second / 2
			total++
			e.Schedule(at, func() {
				mu.Lock()
				executed[s] = append(executed[s], at)
				mu.Unlock()
			})
		}
	}

	r, err := NewShardedRunner(window, shards...)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()

	ran := 0
	for s, ts := range executed {
		ran += len(ts)
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Errorf("shard %d executed out of order: %v before %v", s, ts[i-1], ts[i])
			}
		}
	}
	if ran != total {
		t.Errorf("executed %d events, want %d", ran, total)
	}
}

// TestWindowedBarrier checks that a barrier in windowed mode runs with
// every shard parked exactly at the barrier time: no event before it
// is pending, no event at or after it has run.
func TestWindowedBarrier(t *testing.T) {
	shards := []*Engine{{}, {}}
	var mu sync.Mutex
	var before, after int
	for _, e := range shards {
		e := e
		for i := 0; i < 20; i++ {
			at := time.Duration(i) * 7 * time.Second
			e.Schedule(at, func() {
				mu.Lock()
				if at < 60*time.Second {
					before++
				} else {
					after++
				}
				mu.Unlock()
			})
		}
	}
	r, err := NewShardedRunner(13*time.Second, shards...)
	if err != nil {
		t.Fatal(err)
	}
	var seenBefore, seenAfter int
	r.AddBarrier(60*time.Second, func() {
		mu.Lock()
		seenBefore, seenAfter = before, after
		mu.Unlock()
		for i, e := range shards {
			if e.Now() != 60*time.Second {
				t.Errorf("shard %d clock at barrier = %v, want 60s", i, e.Now())
			}
		}
	})
	r.Run()

	if seenBefore != 2*9 { // events at 0,7,...,56 per shard
		t.Errorf("events before barrier when it ran = %d, want 18", seenBefore)
	}
	if seenAfter != 0 {
		t.Errorf("events at/after barrier already run = %d, want 0", seenAfter)
	}
}

// TestBarrierInEventGap pins the clock invariant when a barrier falls
// inside an event gap longer than the window (and after the last
// event): every shard must still park exactly at the barrier time
// before the action runs, in both windowed and merged modes.
func TestBarrierInEventGap(t *testing.T) {
	for _, window := range []time.Duration{0, 10 * time.Second} {
		shards := []*Engine{{}, {}}
		for _, e := range shards {
			e := e
			e.Schedule(0, func() {})
			e.Schedule(100*time.Second, func() {})
		}
		r, err := NewShardedRunner(window, shards...)
		if err != nil {
			t.Fatal(err)
		}
		check := func(at time.Duration) func() {
			return func() {
				for i, e := range shards {
					if e.Now() != at {
						t.Errorf("window %v: shard %d clock at %v-barrier = %v", window, i, at, e.Now())
					}
				}
			}
		}
		r.AddBarrier(50*time.Second, check(50*time.Second))   // mid-gap
		r.AddBarrier(200*time.Second, check(200*time.Second)) // past the last event
		r.Run()
	}
}

// TestShardedRunnerValidation rejects bad construction.
func TestShardedRunnerValidation(t *testing.T) {
	if _, err := NewShardedRunner(0); err == nil {
		t.Error("no shards must be rejected")
	}
	if _, err := NewShardedRunner(-time.Second, &Engine{}); err == nil {
		t.Error("negative window must be rejected")
	}
}

// TestMergedCrossShardTieBreak pins the merge's deterministic
// tie-break: equal-time events on different shards run in shard-index
// order, regardless of the order the shards were wired. Sub-VP
// sharding relies on this being deterministic (one vantage point's
// hour batches land on several shards at exactly coinciding times);
// bit-identity to a single engine additionally requires such tied
// events not to touch shared state, which the ytcdn-level property
// suite pins.
func TestMergedCrossShardTieBreak(t *testing.T) {
	a, b, c := &Engine{}, &Engine{}, &Engine{}
	var order []string
	for _, at := range []time.Duration{time.Second, 2 * time.Second} {
		at := at
		// Wire in reverse shard order to prove wiring order is irrelevant.
		c.Schedule(at, func() { order = append(order, "c") })
		b.Schedule(at, func() { order = append(order, "b") })
		a.Schedule(at, func() { order = append(order, "a") })
	}
	r, err := NewShardedRunner(0, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	want := "abcabc"
	if got := strings.Join(order, ""); got != want {
		t.Errorf("tied events ran in order %q, want shard-index order %q", got, want)
	}
}

// TestMergedBarrierSchedulesEvents pins the re-peek fix: a barrier
// action that schedules events must have them merged in time order,
// not run after a stale pre-barrier pick — including events scheduled
// by barriers beyond the last originally-wired event.
func TestMergedBarrierSchedulesEvents(t *testing.T) {
	shards := []*Engine{{}, {}}
	var log []string
	shards[0].Schedule(10*time.Second, func() { log = append(log, "a@10") })

	r, err := NewShardedRunner(0, shards...)
	if err != nil {
		t.Fatal(err)
	}
	// Fires before a@10 and schedules an earlier cross-shard event: the
	// old loop would have stepped the stale pick (a@10) first.
	r.AddBarrier(5*time.Second, func() {
		log = append(log, "bar@5")
		shards[1].Schedule(7*time.Second, func() { log = append(log, "b@7") })
	})
	// A trailing barrier that schedules work: the old trailing loop
	// fired barriers only, orphaning the event inside fireBarrier's
	// clock advance on the NEXT trailing barrier (shard order, not
	// merge order) or dropping it entirely after the last barrier.
	r.AddBarrier(20*time.Second, func() {
		log = append(log, "bar@20")
		shards[0].Schedule(21*time.Second, func() { log = append(log, "a@21") })
		shards[1].Schedule(21*time.Second, func() { log = append(log, "b@21") })
	})
	r.AddBarrier(30*time.Second, func() { log = append(log, "bar@30") })
	r.Run()

	want := []string{"bar@5", "b@7", "a@10", "bar@20", "a@21", "b@21", "bar@30"}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

// TestWindowedBarrierSchedulesEvents is the windowed-mode twin: events
// scheduled by a (trailing) barrier must still run, and a barrier
// falling exactly on a window boundary fires with every clock parked
// on it before any boundary-time event runs.
func TestWindowedBarrierSchedulesEvents(t *testing.T) {
	shards := []*Engine{{}, {}}
	var mu sync.Mutex
	var ran []string
	shards[0].Schedule(0, func() { mu.Lock(); ran = append(ran, "a@0"); mu.Unlock() })

	r, err := NewShardedRunner(10*time.Second, shards...)
	if err != nil {
		t.Fatal(err)
	}
	// 0 + window = 10s: exactly on the first window's boundary.
	r.AddBarrier(10*time.Second, func() {
		mu.Lock()
		defer mu.Unlock()
		ran = append(ran, "bar@10")
		for i, e := range shards {
			if e.Now() != 10*time.Second {
				t.Errorf("shard %d clock at boundary barrier = %v", i, e.Now())
			}
		}
		shards[1].Schedule(10*time.Second, func() { mu.Lock(); ran = append(ran, "b@10"); mu.Unlock() })
	})
	r.AddBarrier(40*time.Second, func() {
		mu.Lock()
		defer mu.Unlock()
		ran = append(ran, "bar@40")
		shards[0].Schedule(45*time.Second, func() { mu.Lock(); ran = append(ran, "a@45"); mu.Unlock() })
	})
	r.Run()

	want := []string{"a@0", "bar@10", "b@10", "bar@40", "a@45"}
	if !reflect.DeepEqual(ran, want) {
		t.Errorf("ran = %v, want %v", ran, want)
	}
}

// TestShardedRunnerRejectsNilAndDuplicateShards pins the construction
// validation: a nil engine or the same engine wired twice used to be
// accepted and fail only later as a data race or a double-stepped
// queue.
func TestShardedRunnerRejectsNilAndDuplicateShards(t *testing.T) {
	if _, err := NewShardedRunner(0, &Engine{}, nil); err == nil {
		t.Error("nil shard must be rejected")
	}
	e := &Engine{}
	if _, err := NewShardedRunner(0, e, &Engine{}, e); err == nil {
		t.Error("duplicate shard must be rejected")
	}
}

// TestAddBarrierAfterRunPanics pins the mid-run registration guard.
func TestAddBarrierAfterRunPanics(t *testing.T) {
	r, err := NewShardedRunner(0, &Engine{})
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	defer func() {
		if recover() == nil {
			t.Error("AddBarrier after Run did not panic")
		}
	}()
	r.AddBarrier(time.Second, func() {})
}

// hookRecorder is a scripted OptimisticHooks: it snapshots/restores
// the engines AND the test's side-effect log (a real coordinator
// checkpoints every effect a rollback must undo), and fails validation
// on the intervals listed in failOn, counting protocol calls.
type hookRecorder struct {
	t        *testing.T
	shards   []*Engine
	failOn   map[int]bool
	interval int
	snaps    []*EngineSnapshot
	log      []string
	horizons []time.Duration
	// sideEffects is the test-owned record the simulated events append
	// to; checkpointed by length, truncated on rollback.
	sideEffects *[]string
	effectsMu   *sync.Mutex
	effectsLen  int
}

func (h *hookRecorder) Checkpoint() {
	h.snaps = make([]*EngineSnapshot, len(h.shards))
	for i, e := range h.shards {
		h.snaps[i] = e.Snapshot()
	}
	if h.sideEffects != nil {
		h.effectsMu.Lock()
		h.effectsLen = len(*h.sideEffects)
		h.effectsMu.Unlock()
	}
	h.log = append(h.log, "ckpt")
}

func (h *hookRecorder) Validate() bool {
	h.log = append(h.log, "validate")
	ok := !h.failOn[h.interval]
	h.interval++
	return ok
}

func (h *hookRecorder) Rollback() {
	for i, e := range h.shards {
		e.Restore(h.snaps[i])
	}
	if h.sideEffects != nil {
		h.effectsMu.Lock()
		*h.sideEffects = (*h.sideEffects)[:h.effectsLen]
		h.effectsMu.Unlock()
	}
	h.log = append(h.log, "rollback")
}

func (h *hookRecorder) Commit(horizon time.Duration) {
	h.log = append(h.log, "commit")
	h.horizons = append(h.horizons, horizon)
}

// TestOptimisticDriver pins the runner's optimistic control flow:
// checkpoint → speculate → validate, commit on success, rollback +
// sequential re-execution on failure — with every event running
// exactly once per committed interval and results independent of which
// intervals fail.
func TestOptimisticDriver(t *testing.T) {
	run := func(failOn map[int]bool) ([]string, []string, []time.Duration) {
		shards := []*Engine{{}, {}}
		var mu sync.Mutex
		var events []string
		for s, e := range shards {
			s, e := s, e
			for i := 0; i < 6; i++ {
				at := time.Duration(i*4+s) * time.Second
				name := fmt.Sprintf("s%d@%v", s, at)
				e.Schedule(at, func() {
					mu.Lock()
					events = append(events, name)
					mu.Unlock()
				})
			}
		}
		r, err := NewShardedRunner(0, shards...)
		if err != nil {
			t.Fatal(err)
		}
		h := &hookRecorder{t: t, shards: shards, failOn: failOn, sideEffects: &events, effectsMu: &mu}
		if err := r.SetOptimistic(8*time.Second, h); err != nil {
			t.Fatal(err)
		}
		r.Run()
		sort.Strings(events) // cross-shard speculation order is free
		return events, h.log, h.horizons
	}

	clean, cleanLog, cleanHz := run(nil)
	if len(clean) != 12 {
		t.Fatalf("clean run executed %d events, want 12", len(clean))
	}
	for _, s := range cleanLog {
		if s == "rollback" {
			t.Fatal("clean run rolled back")
		}
	}

	dirty, dirtyLog, dirtyHz := run(map[int]bool{0: true, 2: true})
	if !reflect.DeepEqual(dirty, clean) {
		t.Errorf("rollback changed the executed event set:\n got %v\nwant %v", dirty, clean)
	}
	if !reflect.DeepEqual(dirtyHz, cleanHz) {
		t.Errorf("rollback changed commit horizons: %v vs %v", dirtyHz, cleanHz)
	}
	rollbacks := 0
	for _, s := range dirtyLog {
		if s == "rollback" {
			rollbacks++
		}
	}
	if rollbacks != 2 {
		t.Errorf("rollbacks = %d, want 2", rollbacks)
	}
}

// TestOptimisticEqualTimeBarriersAtHorizon pins the barrier edge the
// optimistic mode must get right: several equal-time barriers sitting
// exactly on a rollback horizon all fire once, in registration order,
// after the interval before them has committed — a rollback of that
// interval must neither re-fire nor skip them.
func TestOptimisticEqualTimeBarriersAtHorizon(t *testing.T) {
	shards := []*Engine{{}, {}}
	var mu sync.Mutex
	var log []string
	shards[0].Schedule(1*time.Second, func() { mu.Lock(); log = append(log, "a@1"); mu.Unlock() })
	shards[1].Schedule(12*time.Second, func() { mu.Lock(); log = append(log, "b@12"); mu.Unlock() })

	r, err := NewShardedRunner(0, shards...)
	if err != nil {
		t.Fatal(err)
	}
	// Interval [1s, 10s) fails validation and is re-executed; the
	// barriers at its horizon fire exactly once afterwards.
	h := &hookRecorder{t: t, shards: shards, failOn: map[int]bool{0: true}, sideEffects: &log, effectsMu: &mu}
	if err := r.SetOptimistic(9*time.Second, h); err != nil {
		t.Fatal(err)
	}
	r.AddBarrier(10*time.Second, func() { log = append(log, "bar1@10") })
	r.AddBarrier(10*time.Second, func() { log = append(log, "bar2@10") })
	r.Run()

	want := []string{"a@1", "bar1@10", "bar2@10", "b@12"}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

// TestSetOptimisticValidation rejects bad optimistic configuration.
func TestSetOptimisticValidation(t *testing.T) {
	h := &hookRecorder{}
	if r, _ := NewShardedRunner(0, &Engine{}); r.SetOptimistic(0, h) == nil {
		t.Error("zero optimistic window must be rejected")
	}
	if r, _ := NewShardedRunner(0, &Engine{}); r.SetOptimistic(time.Second, nil) == nil {
		t.Error("nil hooks must be rejected")
	}
	if r, _ := NewShardedRunner(time.Minute, &Engine{}); r.SetOptimistic(time.Second, h) == nil {
		t.Error("optimistic over a conservative window must be rejected")
	}
	r, _ := NewShardedRunner(0, &Engine{})
	r.Run()
	if r.SetOptimistic(time.Second, h) == nil {
		t.Error("SetOptimistic after Run must be rejected")
	}
}

// TestEngineSnapshotRestore pins the engine half of a checkpoint:
// pending events, clock, tie-break sequence and executed count all
// rewind, and one snapshot restores repeatedly.
func TestEngineSnapshotRestore(t *testing.T) {
	e := &Engine{}
	var log []string
	e.Schedule(1*time.Second, func() { log = append(log, "a") })
	e.Schedule(2*time.Second, func() {
		log = append(log, "b")
		e.ScheduleAfter(time.Second, func() { log = append(log, "c") })
	})
	e.Step() // run "a"
	snap := e.Snapshot()

	for round := 0; round < 2; round++ {
		e.Restore(snap)
		if e.Now() != 1*time.Second || e.Pending() != 1 {
			t.Fatalf("round %d: now=%v pending=%d after restore", round, e.Now(), e.Pending())
		}
		e.Run()
	}
	want := []string{"a", "b", "c", "b", "c"}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("log = %v, want %v", log, want)
	}
	if e.Executed() != 3 { // restored to 1, then b and c
		t.Errorf("executed = %d, want 3", e.Executed())
	}
}
