package des

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMergedOrderMatchesSingleEngine proves the window-0 guarantee at
// the engine level: splitting an event population across shards and
// merge-running them executes the union in exactly the order one
// engine would, with equal-time events ordered by shard index (the
// wiring order, which is the scheduling order on a single engine).
func TestMergedOrderMatchesSingleEngine(t *testing.T) {
	type ev struct {
		src int
		at  time.Duration
	}
	// Two sources with interleaved and colliding times.
	times := [][]time.Duration{
		{0, 10 * time.Second, 20 * time.Second, 20 * time.Second, 35 * time.Second},
		{0, 5 * time.Second, 20 * time.Second, 40 * time.Second},
	}

	var single Engine
	var want []ev
	for src, ts := range times { // wiring order: source 0 first
		src, ts := src, ts
		for _, at := range ts {
			at := at
			single.Schedule(at, func() { want = append(want, ev{src, at}) })
		}
	}
	single.Run()

	shards := []*Engine{{}, {}}
	var got []ev
	for src, ts := range times {
		src := src
		for _, at := range ts {
			at := at
			shards[src].Schedule(at, func() { got = append(got, ev{src, at}) })
		}
	}
	r, err := NewShardedRunner(0, shards...)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()

	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged order:\n got %v\nwant %v", got, want)
	}
}

// TestMergedBarrierOrdering pins barrier semantics under window 0: a
// barrier at T runs after every event strictly before T and before any
// event at or after T; trailing barriers still run.
func TestMergedBarrierOrdering(t *testing.T) {
	shards := []*Engine{{}, {}}
	var log []string
	shards[0].Schedule(1*time.Second, func() { log = append(log, "a@1") })
	shards[1].Schedule(2*time.Second, func() { log = append(log, "b@2") })
	shards[0].Schedule(2*time.Second, func() { log = append(log, "a@2") })
	shards[1].Schedule(3*time.Second, func() { log = append(log, "b@3") })

	r, err := NewShardedRunner(0, shards...)
	if err != nil {
		t.Fatal(err)
	}
	r.AddBarrier(2*time.Second, func() { log = append(log, "bar@2") })
	r.AddBarrier(10*time.Second, func() { log = append(log, "bar@10") })
	r.Run()

	want := []string{"a@1", "bar@2", "a@2", "b@2", "b@3", "bar@10"}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

// TestWindowedLockstep checks windowed mode executes every event
// exactly once and keeps each shard's own events in time order.
// Cross-shard order inside a window is unspecified.
func TestWindowedLockstep(t *testing.T) {
	const window = 10 * time.Second
	shards := []*Engine{{}, {}, {}}
	var mu sync.Mutex
	executed := make(map[int][]time.Duration)

	total := 0
	for s, e := range shards {
		s, e := s, e
		for i := 0; i < 50; i++ {
			at := time.Duration(i*(s+2)) * time.Second / 2
			total++
			e.Schedule(at, func() {
				mu.Lock()
				executed[s] = append(executed[s], at)
				mu.Unlock()
			})
		}
	}

	r, err := NewShardedRunner(window, shards...)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()

	ran := 0
	for s, ts := range executed {
		ran += len(ts)
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Errorf("shard %d executed out of order: %v before %v", s, ts[i-1], ts[i])
			}
		}
	}
	if ran != total {
		t.Errorf("executed %d events, want %d", ran, total)
	}
}

// TestWindowedBarrier checks that a barrier in windowed mode runs with
// every shard parked exactly at the barrier time: no event before it
// is pending, no event at or after it has run.
func TestWindowedBarrier(t *testing.T) {
	shards := []*Engine{{}, {}}
	var mu sync.Mutex
	var before, after int
	for _, e := range shards {
		e := e
		for i := 0; i < 20; i++ {
			at := time.Duration(i) * 7 * time.Second
			e.Schedule(at, func() {
				mu.Lock()
				if at < 60*time.Second {
					before++
				} else {
					after++
				}
				mu.Unlock()
			})
		}
	}
	r, err := NewShardedRunner(13*time.Second, shards...)
	if err != nil {
		t.Fatal(err)
	}
	var seenBefore, seenAfter int
	r.AddBarrier(60*time.Second, func() {
		mu.Lock()
		seenBefore, seenAfter = before, after
		mu.Unlock()
		for i, e := range shards {
			if e.Now() != 60*time.Second {
				t.Errorf("shard %d clock at barrier = %v, want 60s", i, e.Now())
			}
		}
	})
	r.Run()

	if seenBefore != 2*9 { // events at 0,7,...,56 per shard
		t.Errorf("events before barrier when it ran = %d, want 18", seenBefore)
	}
	if seenAfter != 0 {
		t.Errorf("events at/after barrier already run = %d, want 0", seenAfter)
	}
}

// TestBarrierInEventGap pins the clock invariant when a barrier falls
// inside an event gap longer than the window (and after the last
// event): every shard must still park exactly at the barrier time
// before the action runs, in both windowed and merged modes.
func TestBarrierInEventGap(t *testing.T) {
	for _, window := range []time.Duration{0, 10 * time.Second} {
		shards := []*Engine{{}, {}}
		for _, e := range shards {
			e := e
			e.Schedule(0, func() {})
			e.Schedule(100*time.Second, func() {})
		}
		r, err := NewShardedRunner(window, shards...)
		if err != nil {
			t.Fatal(err)
		}
		check := func(at time.Duration) func() {
			return func() {
				for i, e := range shards {
					if e.Now() != at {
						t.Errorf("window %v: shard %d clock at %v-barrier = %v", window, i, at, e.Now())
					}
				}
			}
		}
		r.AddBarrier(50*time.Second, check(50*time.Second))   // mid-gap
		r.AddBarrier(200*time.Second, check(200*time.Second)) // past the last event
		r.Run()
	}
}

// TestShardedRunnerValidation rejects bad construction.
func TestShardedRunnerValidation(t *testing.T) {
	if _, err := NewShardedRunner(0); err == nil {
		t.Error("no shards must be rejected")
	}
	if _, err := NewShardedRunner(-time.Second, &Engine{}); err == nil {
		t.Error("negative window must be rejected")
	}
}

// TestMergedCrossShardTieBreak pins the merge's deterministic
// tie-break: equal-time events on different shards run in shard-index
// order, regardless of the order the shards were wired. Sub-VP
// sharding relies on this being deterministic (one vantage point's
// hour batches land on several shards at exactly coinciding times);
// bit-identity to a single engine additionally requires such tied
// events not to touch shared state, which the ytcdn-level property
// suite pins.
func TestMergedCrossShardTieBreak(t *testing.T) {
	a, b, c := &Engine{}, &Engine{}, &Engine{}
	var order []string
	for _, at := range []time.Duration{time.Second, 2 * time.Second} {
		at := at
		// Wire in reverse shard order to prove wiring order is irrelevant.
		c.Schedule(at, func() { order = append(order, "c") })
		b.Schedule(at, func() { order = append(order, "b") })
		a.Schedule(at, func() { order = append(order, "a") })
	}
	r, err := NewShardedRunner(0, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	want := "abcabc"
	if got := strings.Join(order, ""); got != want {
		t.Errorf("tied events ran in order %q, want shard-index order %q", got, want)
	}
}
