package des

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// ShardedRunner advances several independent engines ("shards") over
// one shared simulated timeline. It exists because the simulated
// vantage points couple only through slowly-varying shared state (the
// selection engine's load view): their event streams can run on
// separate goroutines as long as no shard races arbitrarily far ahead
// of the others.
//
// Synchronization is conservative time-windowed lockstep, controlled
// by the window passed to NewShardedRunner:
//
//   - window == 0 degenerates to a sequential k-way merge: the runner
//     repeatedly steps the shard with the earliest pending event (ties
//     by shard index), which executes the union of all shards' events
//     in exactly the order a single engine would. There is no
//     concurrency and no staleness — the run is bit-identical to the
//     unsharded simulation.
//   - window > 0 runs the shards concurrently, one goroutine per
//     shard, in half-open windows [t, t+window): every shard executes
//     all of its events inside the window, then all shards barrier
//     before the next window begins. A shard can therefore observe
//     shared state that is stale by at most one window — the price of
//     near-linear speedup.
//
// Barriers registered with At run between windows, when every shard's
// clock sits exactly on the barrier time: they are the hook for global
// scenario actions (a mid-run policy switch) that must not interleave
// with event execution. With window == 0 a barrier runs after all
// events strictly before its time and before any event at or after it.
type ShardedRunner struct {
	shards   []*Engine
	window   time.Duration
	barriers []barrier

	// Optional instruments (see Instrument). All three count pure
	// event-structure facts — windows advanced, barriers fired, shards
	// idle across a window — so recording them never perturbs the run.
	windows      *obs.Counter
	barrierFires *obs.Counter
	stalls       *obs.Counter
}

type barrier struct {
	at  time.Duration
	seq int // preserves registration order among equal times
	run func()
}

// NewShardedRunner wraps the given engines. window selects the
// synchronization mode (see the type comment); it must be >= 0 and at
// least one engine must be given.
func NewShardedRunner(window time.Duration, shards ...*Engine) (*ShardedRunner, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("des: sharded runner needs at least one engine")
	}
	if window < 0 {
		return nil, fmt.Errorf("des: sync window %v must be >= 0", window)
	}
	return &ShardedRunner{shards: shards, window: window}, nil
}

// Instrument publishes the runner's progress into reg:
// "sim.runner.windows" (lockstep windows completed),
// "sim.runner.barriers" (global barrier actions fired), and
// "sim.runner.window_stalls" (shard-windows in which a shard executed
// no events — shards parked at the barrier waiting for stragglers).
// It also registers per-shard live gauges "sim.shard.<i>.queue_depth",
// "sim.shard.<i>.events" and "sim.shard.<i>.now_seconds", plus the
// aggregate "sim.des.events". Instrument must be called before Run.
func (r *ShardedRunner) Instrument(reg *obs.Registry) {
	r.windows = reg.Counter("sim.runner.windows")
	r.barrierFires = reg.Counter("sim.runner.barriers")
	r.stalls = reg.Counter("sim.runner.window_stalls")
	for i, e := range r.shards {
		e := e
		prefix := fmt.Sprintf("sim.shard.%d.", i)
		reg.GaugeFunc(prefix+"events", func() float64 {
			executed, _, _ := e.LiveStats()
			return float64(executed)
		})
		reg.GaugeFunc(prefix+"queue_depth", func() float64 {
			_, depth, _ := e.LiveStats()
			return float64(depth)
		})
		reg.GaugeFunc(prefix+"now_seconds", func() float64 {
			_, _, now := e.LiveStats()
			return now.Seconds()
		})
	}
	shards := r.shards
	reg.GaugeFunc("sim.des.events", func() float64 {
		var total int64
		for _, e := range shards {
			total += e.Executed()
		}
		return float64(total)
	})
}

// AddBarrier registers a global action at the given simulated time.
// Barriers at the same time run in registration order. AddBarrier must
// not be called after Run has started.
func (r *ShardedRunner) AddBarrier(at time.Duration, run func()) {
	r.barriers = append(r.barriers, barrier{at: at, seq: len(r.barriers), run: run})
}

// Run executes all shards to exhaustion, honouring the registered
// barriers. Any barriers beyond the last event still run, in order.
func (r *ShardedRunner) Run() {
	sort.Slice(r.barriers, func(i, j int) bool {
		if r.barriers[i].at != r.barriers[j].at {
			return r.barriers[i].at < r.barriers[j].at
		}
		return r.barriers[i].seq < r.barriers[j].seq
	})
	if r.window == 0 {
		r.runMerged()
	} else {
		r.runWindowed()
	}
}

// runMerged is the window-0 mode: a sequential k-way merge that steps
// one event at a time, always from the shard whose next event is
// earliest. Equal-time events on different shards run in shard-index
// order — a deterministic tie-break, but NOT in general a single
// engine's scheduling order (round-robin bucket→shard wiring puts e.g.
// VP 2 on shard 0 ahead of VP 1 on shard 1, and sub-VP sharding puts
// several buckets of ONE vantage point on different shards with their
// hour batches exactly coinciding). Bit-identity to the single engine
// therefore rests on two properties of the event population, not on
// tie order: events wired before the run at coinciding times (the
// per-subnet hour batches of the workload generators) draw only from
// their own forked RNG streams, touch no shared state and record
// nothing, so their relative order is unobservable; and events
// scheduled during the run carry continuous time offsets, so
// cross-shard ties among them are measure-zero. Anyone adding
// pre-wired tied events that touch the selector, placement or sink
// breaks the guarantee — the sharding property tests pin it
// empirically at both granularities.
func (r *ShardedRunner) runMerged() {
	bi := 0
	for {
		best := -1
		var bestAt time.Duration
		for i, e := range r.shards {
			at, ok := e.PeekTime()
			if !ok {
				continue
			}
			if best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			break
		}
		for bi < len(r.barriers) && r.barriers[bi].at <= bestAt {
			r.fireBarrier(r.barriers[bi])
			bi++
		}
		r.shards[best].Step()
	}
	for ; bi < len(r.barriers); bi++ {
		r.fireBarrier(r.barriers[bi])
	}
}

// fireBarrier parks every shard's clock exactly at the barrier time,
// then runs the action. By the time a barrier fires no shard has a
// pending event before it, so the RunBefore calls execute nothing —
// they only advance clocks, keeping the documented invariant (every
// shard sits at the barrier time) even when the barrier falls in an
// event gap or after the last event.
func (r *ShardedRunner) fireBarrier(b barrier) {
	for _, e := range r.shards {
		e.RunBefore(b.at)
	}
	b.run()
	if r.barrierFires != nil {
		r.barrierFires.Inc()
	}
}

// runWindowed is the concurrent mode: shards advance in lockstep
// windows, each on its own goroutine. Windows are anchored at the
// earliest pending event so stretches with no events are skipped in
// one step instead of being walked window by window.
func (r *ShardedRunner) runWindowed() {
	bi := 0
	for {
		lo := time.Duration(-1)
		for _, e := range r.shards {
			if at, ok := e.PeekTime(); ok && (lo < 0 || at < lo) {
				lo = at
			}
		}
		if lo < 0 {
			break
		}
		next := lo + r.window
		for bi < len(r.barriers) && r.barriers[bi].at <= lo {
			r.fireBarrier(r.barriers[bi])
			bi++
		}
		if bi < len(r.barriers) && r.barriers[bi].at < next {
			next = r.barriers[bi].at
		}
		before := make([]int64, len(r.shards))
		for i, e := range r.shards {
			before[i] = e.Executed()
		}
		var wg sync.WaitGroup
		for _, e := range r.shards {
			e := e
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.RunBefore(next)
			}()
		}
		wg.Wait()
		if r.windows != nil {
			r.windows.Inc()
			for i, e := range r.shards {
				if e.Executed() == before[i] {
					r.stalls.Inc()
				}
			}
		}
	}
	for ; bi < len(r.barriers); bi++ {
		r.fireBarrier(r.barriers[bi])
	}
}
