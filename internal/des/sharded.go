package des

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// ShardedRunner advances several independent engines ("shards") over
// one shared simulated timeline. It exists because the simulated
// vantage points couple only through slowly-varying shared state (the
// selection engine's load view): their event streams can run on
// separate goroutines as long as no shard races arbitrarily far ahead
// of the others.
//
// Synchronization is conservative time-windowed lockstep, controlled
// by the window passed to NewShardedRunner:
//
//   - window == 0 degenerates to a sequential k-way merge: the runner
//     repeatedly steps the shard with the earliest pending event (ties
//     by shard index), which executes the union of all shards' events
//     in exactly the order a single engine would. There is no
//     concurrency and no staleness — the run is bit-identical to the
//     unsharded simulation.
//   - window > 0 runs the shards concurrently, one goroutine per
//     shard, in half-open windows [t, t+window): every shard executes
//     all of its events inside the window, then all shards barrier
//     before the next window begins. A shard can therefore observe
//     shared state that is stale by at most one window — the price of
//     near-linear speedup.
//
// A third protocol, optimistic (Time Warp) execution, is enabled by
// SetOptimistic on a window-0 runner: shards speculate through each
// interval concurrently and a journal-validation pass commits clean
// intervals or rolls back and re-executes violated ones sequentially,
// keeping results bit-identical to the merge while still extracting
// parallelism (see runOptimistic).
//
// Barriers registered with At run between windows, when every shard's
// clock sits exactly on the barrier time: they are the hook for global
// scenario actions (a mid-run policy switch) that must not interleave
// with event execution. With window == 0 a barrier runs after all
// events strictly before its time and before any event at or after it.
type ShardedRunner struct {
	shards   []*Engine
	window   time.Duration
	barriers []barrier
	// started flips when Run begins; AddBarrier panics afterwards
	// (a barrier registered mid-run would be silently missorted or
	// skipped depending on how far the run has progressed).
	started bool

	// Optimistic (Time Warp) mode, enabled by SetOptimistic: shards
	// speculate through optWindow-sized intervals concurrently and the
	// hooks validate/commit or roll back each interval (see the method
	// comment).
	optWindow time.Duration
	hooks     OptimisticHooks

	// Optional instruments (see Instrument). All count pure
	// event-structure facts — windows advanced, barriers fired, shards
	// idle across a window, intervals rolled back or committed — so
	// recording them never perturbs the run.
	windows      *obs.Counter
	barrierFires *obs.Counter
	stalls       *obs.Counter
	rollbacks    *obs.Counter
	commits      *obs.Counter
}

// OptimisticHooks is the coordinator side of the optimistic protocol.
// The runner drives the control flow — checkpoint, speculate, validate,
// commit or roll back — and the hooks own the simulation state the
// engine layer cannot see (load trackers, placement, RNG tapes, staged
// sinks, the engines' own snapshots). All four methods are called with
// every shard parked, single-threaded.
type OptimisticHooks interface {
	// Checkpoint captures all shared and per-shard state at the current
	// horizon, immediately before a speculative interval.
	Checkpoint()
	// Validate reports whether the just-speculated interval is free of
	// cross-shard causality violations.
	Validate() bool
	// Rollback restores the Checkpoint state after a failed validation.
	// The runner then re-executes the interval sequentially.
	Rollback()
	// Commit finalizes the interval ending at horizon: journal entries
	// become permanent and staged side effects (capture records) are
	// released downstream.
	Commit(horizon time.Duration)
}

type barrier struct {
	at  time.Duration
	seq int // preserves registration order among equal times
	run func()
}

// NewShardedRunner wraps the given engines. window selects the
// synchronization mode (see the type comment); it must be >= 0 and at
// least one engine must be given.
func NewShardedRunner(window time.Duration, shards ...*Engine) (*ShardedRunner, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("des: sharded runner needs at least one engine")
	}
	if window < 0 {
		return nil, fmt.Errorf("des: sync window %v must be >= 0", window)
	}
	seen := make(map[*Engine]int, len(shards))
	for i, e := range shards {
		if e == nil {
			return nil, fmt.Errorf("des: shard %d is nil", i)
		}
		if j, dup := seen[e]; dup {
			return nil, fmt.Errorf("des: shards %d and %d are the same engine", j, i)
		}
		seen[e] = i
	}
	return &ShardedRunner{shards: shards, window: window}, nil
}

// SetOptimistic switches the runner to optimistic (Time Warp) mode:
// shards speculate concurrently through window-sized intervals with
// shared state live, and the hooks checkpoint, validate and commit (or
// roll back and let the runner re-execute sequentially) each interval.
// It must be called before Run, on a runner constructed with sync
// window 0 — optimistic and conservative windowing are alternative
// synchronization protocols, not layers.
func (r *ShardedRunner) SetOptimistic(window time.Duration, hooks OptimisticHooks) error {
	if r.started {
		return fmt.Errorf("des: SetOptimistic after Run")
	}
	if window <= 0 {
		return fmt.Errorf("des: optimistic window %v must be > 0", window)
	}
	if hooks == nil {
		return fmt.Errorf("des: optimistic mode needs hooks")
	}
	if r.window != 0 {
		return fmt.Errorf("des: optimistic mode requires sync window 0, have %v", r.window)
	}
	r.optWindow = window
	r.hooks = hooks
	return nil
}

// Instrument publishes the runner's progress into reg:
// "sim.runner.windows" (lockstep or speculative windows completed),
// "sim.runner.barriers" (global barrier actions fired),
// "sim.runner.window_stalls" (shard-windows in which a shard executed
// no events — shards parked at the barrier waiting for stragglers),
// "sim.runner.rollbacks" (optimistic intervals that failed validation
// and were re-executed sequentially) and "sim.runner.commits"
// (optimistic intervals finalized). The rollback/commit counters are
// protocol telemetry: they vary with goroutine scheduling even though
// every simulation result is deterministic.
// It also registers per-shard live gauges "sim.shard.<i>.queue_depth",
// "sim.shard.<i>.events" and "sim.shard.<i>.now_seconds", plus the
// aggregate "sim.des.events". Instrument must be called before Run.
func (r *ShardedRunner) Instrument(reg *obs.Registry) {
	r.windows = reg.Counter("sim.runner.windows")
	r.barrierFires = reg.Counter("sim.runner.barriers")
	r.stalls = reg.Counter("sim.runner.window_stalls")
	r.rollbacks = reg.Counter("sim.runner.rollbacks")
	r.commits = reg.Counter("sim.runner.commits")
	for i, e := range r.shards {
		e := e
		prefix := fmt.Sprintf("sim.shard.%d.", i)
		reg.GaugeFunc(prefix+"events", func() float64 {
			executed, _, _ := e.LiveStats()
			return float64(executed)
		})
		reg.GaugeFunc(prefix+"queue_depth", func() float64 {
			_, depth, _ := e.LiveStats()
			return float64(depth)
		})
		reg.GaugeFunc(prefix+"now_seconds", func() float64 {
			_, _, now := e.LiveStats()
			return now.Seconds()
		})
	}
	shards := r.shards
	reg.GaugeFunc("sim.des.events", func() float64 {
		var total int64
		for _, e := range shards {
			total += e.Executed()
		}
		return float64(total)
	})
}

// AddBarrier registers a global action at the given simulated time.
// Barriers at the same time run in registration order. AddBarrier
// panics if called after Run has started: the barrier schedule is
// sorted once at Run, so a late registration would be silently
// missorted or skipped.
func (r *ShardedRunner) AddBarrier(at time.Duration, run func()) {
	if r.started {
		panic("des: AddBarrier after Run has started")
	}
	r.barriers = append(r.barriers, barrier{at: at, seq: len(r.barriers), run: run})
}

// Run executes all shards to exhaustion, honouring the registered
// barriers. Any barriers beyond the last event still run, in order.
func (r *ShardedRunner) Run() {
	r.started = true
	sort.Slice(r.barriers, func(i, j int) bool {
		if r.barriers[i].at != r.barriers[j].at {
			return r.barriers[i].at < r.barriers[j].at
		}
		return r.barriers[i].seq < r.barriers[j].seq
	})
	switch {
	case r.hooks != nil:
		r.runOptimistic()
	case r.window == 0:
		r.runMerged()
	default:
		r.runWindowed()
	}
}

// runMerged is the window-0 mode: a sequential k-way merge that steps
// one event at a time, always from the shard whose next event is
// earliest. Equal-time events on different shards run in shard-index
// order — a deterministic tie-break, but NOT in general a single
// engine's scheduling order (round-robin bucket→shard wiring puts e.g.
// VP 2 on shard 0 ahead of VP 1 on shard 1, and sub-VP sharding puts
// several buckets of ONE vantage point on different shards with their
// hour batches exactly coinciding). Bit-identity to the single engine
// therefore rests on two properties of the event population, not on
// tie order: events wired before the run at coinciding times (the
// per-subnet hour batches of the workload generators) draw only from
// their own forked RNG streams, touch no shared state and record
// nothing, so their relative order is unobservable; and events
// scheduled during the run carry continuous time offsets, so
// cross-shard ties among them are measure-zero. Anyone adding
// pre-wired tied events that touch the selector, placement or sink
// breaks the guarantee — the sharding property tests pin it
// empirically at both granularities.
// Barrier actions may schedule events, so the loop re-peeks after
// every barrier instead of stepping a pre-barrier best (which could
// have been overtaken by an event the barrier just scheduled), and
// barriers beyond the last event fire inside the same loop so that
// events THEY schedule are merged too rather than orphaned.
func (r *ShardedRunner) runMerged() {
	bi := 0
	for {
		best := -1
		var bestAt time.Duration
		for i, e := range r.shards {
			at, ok := e.PeekTime()
			if !ok {
				continue
			}
			if best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			// No events pending; remaining barriers still fire, and any
			// events a barrier schedules re-enter the merge.
			if bi >= len(r.barriers) {
				return
			}
			r.fireBarrier(r.barriers[bi])
			bi++
			continue
		}
		if bi < len(r.barriers) && r.barriers[bi].at <= bestAt {
			r.fireBarrier(r.barriers[bi])
			bi++
			continue
		}
		r.shards[best].Step()
	}
}

// fireBarrier parks every shard's clock exactly at the barrier time,
// then runs the action. By the time a barrier fires no shard has a
// pending event before it, so the RunBefore calls execute nothing —
// they only advance clocks, keeping the documented invariant (every
// shard sits at the barrier time) even when the barrier falls in an
// event gap or after the last event.
func (r *ShardedRunner) fireBarrier(b barrier) {
	for _, e := range r.shards {
		e.RunBefore(b.at)
	}
	b.run()
	if r.barrierFires != nil {
		r.barrierFires.Inc()
	}
}

// runWindowed is the concurrent mode: shards advance in lockstep
// windows, each on its own goroutine. Windows are anchored at the
// earliest pending event so stretches with no events are skipped in
// one step instead of being walked window by window.
// Like runMerged, the loop fires one barrier at a time and re-peeks:
// a barrier that schedules events must see them anchor the next
// window, and trailing barriers fold into the main loop for the same
// reason. A barrier exactly on a window boundary needs no special
// case — the window runs strictly-before semantics, so the boundary
// event population is untouched and the barrier fires next iteration
// with every clock parked on it.
func (r *ShardedRunner) runWindowed() {
	bi := 0
	for {
		lo := time.Duration(-1)
		for _, e := range r.shards {
			if at, ok := e.PeekTime(); ok && (lo < 0 || at < lo) {
				lo = at
			}
		}
		if lo < 0 {
			if bi >= len(r.barriers) {
				return
			}
			r.fireBarrier(r.barriers[bi])
			bi++
			continue
		}
		if bi < len(r.barriers) && r.barriers[bi].at <= lo {
			r.fireBarrier(r.barriers[bi])
			bi++
			continue
		}
		next := lo + r.window
		if bi < len(r.barriers) && r.barriers[bi].at < next {
			next = r.barriers[bi].at
		}
		before := make([]int64, len(r.shards))
		for i, e := range r.shards {
			before[i] = e.Executed()
		}
		var wg sync.WaitGroup
		for _, e := range r.shards {
			e := e
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.RunBefore(next)
			}()
		}
		wg.Wait()
		if r.windows != nil {
			r.windows.Inc()
			for i, e := range r.shards {
				if e.Executed() == before[i] {
					r.stalls.Inc()
				}
			}
		}
	}
}

// runOptimistic is the Time Warp mode: each interval is checkpointed,
// speculated concurrently with shared state live (the hooks journal
// every cross-shard-visible effect), then validated single-threaded.
// A clean interval commits as-is — the speculation already produced
// the sequential state. A causality violation rolls everything back to
// the checkpoint and re-executes the interval through the sequential
// merge, which cannot be wrong, then commits. Either way the state at
// each commit horizon is bit-identical to the sequential run; only the
// rollback/commit protocol counters depend on scheduling.
func (r *ShardedRunner) runOptimistic() {
	bi := 0
	for {
		lo := time.Duration(-1)
		for _, e := range r.shards {
			if at, ok := e.PeekTime(); ok && (lo < 0 || at < lo) {
				lo = at
			}
		}
		if lo < 0 {
			if bi >= len(r.barriers) {
				return
			}
			r.fireBarrier(r.barriers[bi])
			bi++
			continue
		}
		if bi < len(r.barriers) && r.barriers[bi].at <= lo {
			// Barriers fire between committed intervals: every effect
			// before the barrier is final, so a global action (policy
			// switch) can never be rolled back — even when several
			// equal-time barriers straddle a rollback horizon they all
			// run here, after the horizon's commit, in registration
			// order.
			r.fireBarrier(r.barriers[bi])
			bi++
			continue
		}
		next := lo + r.optWindow
		if bi < len(r.barriers) && r.barriers[bi].at < next {
			next = r.barriers[bi].at
		}
		r.hooks.Checkpoint()
		var wg sync.WaitGroup
		for _, e := range r.shards {
			e := e
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.RunBefore(next)
			}()
		}
		wg.Wait()
		if !r.hooks.Validate() {
			r.hooks.Rollback()
			r.runMergedUntil(next)
			if r.rollbacks != nil {
				r.rollbacks.Inc()
			}
		}
		r.hooks.Commit(next)
		if r.commits != nil {
			r.commits.Inc()
		}
		if r.windows != nil {
			r.windows.Inc()
		}
	}
}

// runMergedUntil re-executes one rolled-back interval sequentially:
// the k-way merge of all events strictly before deadline, then every
// clock parked exactly at deadline. Barriers never fall inside an
// interval (the window is capped at the next barrier), so none are
// consulted here.
func (r *ShardedRunner) runMergedUntil(deadline time.Duration) {
	for {
		best := -1
		var bestAt time.Duration
		for i, e := range r.shards {
			at, ok := e.PeekTime()
			if !ok || at >= deadline {
				continue
			}
			if best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			break
		}
		r.shards[best].Step()
	}
	for _, e := range r.shards {
		e.RunBefore(deadline)
	}
}
