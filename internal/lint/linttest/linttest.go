// Package linttest is the analysistest counterpart for the
// internal/lint framework: it loads a fixture module from a testdata
// directory with the real go toolchain, runs one analyzer over the
// requested packages, and diffs the diagnostics against `// want`
// expectations written next to the flagged code:
//
//	total += w // want "float accumulation"
//
// Each want string is a regular expression that must match the
// message of a diagnostic reported on that line, and every diagnostic
// must be covered by a want — so clean fixtures are simply packages
// with no want comments, and suppression fixtures carry //lint:ok
// directives and likewise expect silence.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/lint"
)

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// expectation is one // want comment, located by file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture module rooted at dir, analyzes the packages
// matching patterns with a, and reports any mismatch between the
// diagnostics and the fixture's // want expectations.
func Run(t *testing.T, dir string, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	units, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s %v: %v", dir, patterns, err)
	}
	if len(units) == 0 {
		t.Fatalf("fixture %s %v matched no packages", dir, patterns)
	}
	for _, u := range units {
		checkUnit(t, u, a)
	}
}

// RunModule is Run for a module analyzer: the fixture module is loaded
// whole, analyzed once (the call graph sees every package), and the
// diagnostics are diffed against the // want expectations of all
// loaded files together.
func RunModule(t *testing.T, dir string, a *lint.ModuleAnalyzer, patterns ...string) {
	t.Helper()
	units, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s %v: %v", dir, patterns, err)
	}
	if len(units) == 0 {
		t.Fatalf("fixture %s %v matched no packages", dir, patterns)
	}
	var wants []*expectation
	for _, u := range units {
		for _, f := range u.Files {
			wants = append(wants, fileWants(u, f)...)
		}
	}
	fset := units[0].Fset
	diags, _ := lint.RunModuleAll(units, []*lint.ModuleAnalyzer{a})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func checkUnit(t *testing.T, u *lint.Unit, a *lint.Analyzer) {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		wants = append(wants, fileWants(u, f)...)
	}

	diags := lint.Run(u.Fset, u.Files, u.Pkg, u.Info, []*lint.Analyzer{a})
	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func fileWants(u *lint.Unit, f *ast.File) []*expectation {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
				pos := u.Fset.Position(c.Pos())
				re, err := regexp.Compile(m[1])
				if err != nil {
					panic(fmt.Sprintf("%s: bad want regexp %q: %v", pos, m[1], err))
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}
