module example.com/rngpurityfix

go 1.21
