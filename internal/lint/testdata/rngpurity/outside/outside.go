// Package outside is not a simulation/analysis package, so rngpurity
// leaves it alone.
package outside

import (
	"math/rand"
	"time"
)

// Jitter may use whatever randomness it likes out of scope.
func Jitter() time.Duration {
	_ = time.Now()
	return time.Duration(rand.Intn(100)) * time.Millisecond
}
