// Package core stands in for a simulation package whose RNG use
// follows the rules: seeds pass through untouched, streams derive via
// Fork/ForkIndexed, and time is only ever a duration.
package core

import (
	"time"

	"example.com/rngpurityfix/internal/stats"
)

// Config carries the study seed.
type Config struct{ Seed int64 }

// Root builds the root stream from a passed-through seed.
func Root(cfg Config) *stats.RNG { return stats.NewRNG(cfg.Seed) }

// RootFromValue passes a plain identifier.
func RootFromValue(seed int64) *stats.RNG { return stats.NewRNG(seed) }

// RootConverted converts without computing.
func RootConverted(seed int) *stats.RNG { return stats.NewRNG(int64(seed)) }

// Children derive with Fork and ForkIndexed.
func Children(g *stats.RNG, i int) *stats.RNG {
	child := g.Fork("placement")
	return child.ForkIndexed("subnet", i)
}

// Span manipulates durations, not instants.
func Span(d time.Duration) time.Duration { return d * 2 }
