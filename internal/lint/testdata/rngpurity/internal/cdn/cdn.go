// Package cdn stands in for a simulation package (in-scope import
// path) and exercises every rngpurity trigger.
package cdn

import (
	crand "crypto/rand" // want "crypto/rand"
	mrand "math/rand"   // want "math/rand"
	"time"

	"example.com/rngpurityfix/internal/stats"
)

// WallClock reads the wall clock on a simulation path.
func WallClock() int64 {
	start := time.Now() // want "wall clock"
	_ = mrand.Int()
	var b [4]byte
	_, _ = crand.Read(b[:])
	return time.Since(start).Nanoseconds() // want "wall clock"
}

// ComputedSeed derives a stream by seed arithmetic instead of Fork.
func ComputedSeed(seed int64, i int) *stats.RNG {
	return stats.NewRNG(seed + int64(i)*7) // want "computed seed"
}

// HashedSeed launders the seed through a helper call.
func HashedSeed(seed int64) *stats.RNG {
	return stats.NewRNG(mix(seed)) // want "computed seed"
}

func mix(seed int64) int64 { return seed * 31 }
