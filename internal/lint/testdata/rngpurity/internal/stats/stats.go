// Package stats is a stand-in for the real deterministic-stream
// package; the rngpurity analyzer recognizes it by its import-path
// suffix.
package stats

// RNG is a deterministic stream.
type RNG struct{ seed int64 }

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: seed} }

// Fork derives an independent child stream.
func (g *RNG) Fork(name string) *RNG { return NewRNG(g.seed ^ int64(len(name))) }

// ForkIndexed derives the i-th stream of a bucketed family.
func (g *RNG) ForkIndexed(name string, i int) *RNG { return g.Fork(name) }

// Float64 draws from the stream.
func (g *RNG) Float64() float64 { return 0.5 }
