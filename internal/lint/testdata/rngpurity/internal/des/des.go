// Package des demonstrates a reasoned rngpurity suppression.
package des

import "time"

// Deadline is a watchdog, not a simulation input: it bounds how long a
// stuck run may hold a CI worker.
func Deadline() time.Time {
	//lint:ok rngpurity watchdog deadline only — the value never feeds simulated state
	return time.Now().Add(10 * time.Minute)
}
