module example.com/lockorderfix

go 1.21
