// Package locks exercises the lockorder analyzer: a direct AB/BA
// cycle, a cycle visible only through a callee's may-acquire set, a
// lock that escapes on one return path, and the clean and suppressed
// counterparts of each.
package locks

import "sync"

// Direct AB/BA cycle: both orders appear in one type's methods.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// AB locks a then b.
func (p *Pair) AB() {
	p.a.Lock()
	p.b.Lock() // want "lock order cycle: b\(locks.go:\d+\) acquired while holding a\(locks.go:\d+\)"
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// BA locks b then a: the opposite order.
func (p *Pair) BA() {
	p.b.Lock()
	p.a.Lock() // want "lock order cycle: a\(locks.go:\d+\) acquired while holding b\(locks.go:\d+\)"
	p.n--
	p.a.Unlock()
	p.b.Unlock()
}

// Interprocedural cycle: XthenY never touches y directly — the edge
// comes from lockY's may-acquire set.
type Nested struct {
	x sync.Mutex
	y sync.Mutex
	n int
}

func (m *Nested) lockY() {
	m.y.Lock()
	defer m.y.Unlock()
	m.n++
}

// XthenY acquires y through the helper while holding x.
func (m *Nested) XthenY() {
	m.x.Lock()
	defer m.x.Unlock()
	m.lockY() // want "lock order cycle: y\(locks.go:\d+\) acquired while holding x\(locks.go:\d+\) \(through call to \(\*locks.Nested\).lockY\)"
}

// YthenX is the opposite order, directly.
func (m *Nested) YthenX() {
	m.y.Lock()
	m.x.Lock() // want "lock order cycle: x\(locks.go:\d+\) acquired while holding y\(locks.go:\d+\)"
	m.n--
	m.x.Unlock()
	m.y.Unlock()
}

// Leaky demonstrates the unlock-on-all-paths check.
type Leaky struct {
	mu sync.Mutex
	n  int
}

// Bad returns while holding mu on the early path.
func (l *Leaky) Bad(skip bool) int {
	l.mu.Lock() // want "locked here but not released on every return path"
	if skip {
		return 0
	}
	n := l.n
	l.mu.Unlock()
	return n
}

// Good defers the unlock: every exit is covered.
func (l *Leaky) Good(skip bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if skip {
		return 0
	}
	return l.n
}

// Branches unlocks on each path explicitly, including out of a loop
// and a switch — the abstract interpreter must follow all of them.
func (l *Leaky) Branches(xs []int) int {
	l.mu.Lock()
	for _, x := range xs {
		if x < 0 {
			l.mu.Unlock()
			return x
		}
	}
	switch {
	case l.n > 0:
		l.mu.Unlock()
		return 1
	default:
		l.mu.Unlock()
	}
	return 0
}

// Handoff intentionally returns locked: ownership transfers to the
// caller, which is exactly what the reasoned suppression documents.
type Handoff struct {
	mu sync.Mutex
	n  int
}

// Acquire locks and hands the locked struct back.
func (h *Handoff) Acquire() *Handoff {
	//lint:ok lockorder ownership transfers to the caller, which must call Release
	h.mu.Lock()
	return h
}

// Release returns the lock taken by Acquire.
func (h *Handoff) Release() { h.mu.Unlock() }

// Consistent uses two locks in one order everywhere: no cycle, no
// findings.
type Consistent struct {
	outer sync.Mutex
	inner sync.Mutex
	n     int
}

// Both nests inner inside outer.
func (c *Consistent) Both() {
	c.outer.Lock()
	defer c.outer.Unlock()
	c.inner.Lock()
	defer c.inner.Unlock()
	c.n++
}

// OuterOnly takes just the outer lock.
func (c *Consistent) OuterOnly() {
	c.outer.Lock()
	defer c.outer.Unlock()
	c.n--
}
