// Package clean holds deterministic map iterations detmap must not
// flag.
package clean

import "sort"

// SortedAppend accumulates, then restores a deterministic order.
func SortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortedSliceAppend restores order with sort.Slice.
func SortedSliceAppend(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// LoopLocal accumulates into a slice scoped to one iteration.
func LoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

// KeyedWrites are order-independent.
func KeyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// IntSum is exact: integer addition is associative.
func IntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

type holder struct{ fields []string }

// FieldAppendSorted sorts the field after the loop.
func FieldAppendSorted(h *holder, m map[string]int) {
	for k := range m {
		h.fields = append(h.fields, k)
	}
	sort.Strings(h.fields)
}
