// Package flagged exercises every detmap trigger.
package flagged

import "example.com/detmapfix/internal/capture"

// UnsortedAppend accumulates map keys and never sorts them.
func UnsortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out"
	}
	return out
}

// FloatSum accumulates floats in map iteration order.
func FloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation into total"
	}
	return total
}

// FloatSumExplicit uses the x = x + v spelling.
func FloatSumExplicit(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation into total"
	}
	return total
}

// SinkWrite emits trace records in map iteration order.
func SinkWrite(sink capture.Sink, m map[string]int) {
	for k := range m {
		sink.Record(k, 1) // want "capture-sink write"
	}
}

// MemSinkWrite emits through a concrete sink type.
func MemSinkWrite(sink *capture.MemSink, m map[string]int) {
	for k, v := range m {
		sink.Record(k, v) // want "capture-sink write"
	}
}

type acc struct{ names []string }

// FieldAppend accumulates into a field of an outer struct.
func FieldAppend(a *acc, m map[string]int) {
	for k := range m {
		a.names = append(a.names, k) // want "append to a.names"
	}
}
