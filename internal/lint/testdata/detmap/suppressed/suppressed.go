// Package suppressed demonstrates a reasoned //lint:ok escape: the
// finding is real but the surrounding contract makes it safe, and the
// directive records why.
package suppressed

// SetKeys returns the keys in arbitrary order.
func SetKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ok detmap callers consume the result as an unordered set, never as a sequence
		out = append(out, k)
	}
	return out
}
