// Package capture is a stand-in for the real trace sink package; the
// detmap analyzer recognizes it by its import-path suffix.
package capture

// Sink consumes records.
type Sink interface {
	Record(dataset string, v int)
}

// MemSink is a concrete sink.
type MemSink struct{ n int }

// Record implements Sink.
func (m *MemSink) Record(dataset string, v int) { m.n++ }
