// Package badok carries a //lint:ok directive with no reason: the
// directive itself must be reported, and it must not suppress the
// finding it sits on.
package badok

// Keys returns map keys in arbitrary order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ok detmap
		out = append(out, k)
	}
	return out
}
