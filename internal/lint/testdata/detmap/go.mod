module example.com/detmapfix

go 1.21
