module example.com/goleakfix

go 1.21
