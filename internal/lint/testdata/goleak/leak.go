// Package leak exercises the goleak analyzer: one goroutine with no
// join evidence, each of the three accepted handshakes (WaitGroup,
// result channel, quit channel), join evidence that is only visible
// transitively through a helper, and a reasoned suppression.
package leak

import "sync"

var state int

func bgSpin() {
	for {
		state++
	}
}

// Orphan launches a goroutine nothing ever joins.
func Orphan() {
	go bgSpin() // want "goroutine has no join evidence"
}

// Waited joins its worker through a WaitGroup captured by the closure.
func Waited(n int) int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		total += n
	}()
	wg.Wait()
	return total
}

// Collected joins its worker through a result channel: the goroutine
// sends, the launcher receives.
func Collected(n int) int {
	ch := make(chan int)
	go func() {
		ch <- n * 2
	}()
	return <-ch
}

// worker hangs its WaitGroup on a struct field so the Done inside
// finish and the Wait inside Join name the same *types.Var, two call
// frames apart — only the graph summaries connect them.
type worker struct {
	wg sync.WaitGroup
	n  int
}

func (w *worker) run() {
	w.n++
	w.finish()
}

func (w *worker) finish() {
	w.wg.Done()
}

// Start launches run as a named payload: the join evidence is Done
// reached transitively via finish.
func (w *worker) Start() {
	w.wg.Add(1)
	go w.run()
}

// Join is the collector half of the handshake.
func (w *worker) Join() {
	w.wg.Wait()
}

// quitter demonstrates the quit-channel shape: the goroutine receives
// from quit, and Stop closes it.
type quitter struct {
	quit chan struct{}
	n    int
}

// Loop runs until the quit channel is closed.
func (q *quitter) Loop() {
	go func() {
		for {
			select {
			case <-q.quit:
				return
			default:
				q.n++
			}
		}
	}()
}

// Stop releases the loop goroutine.
func (q *quitter) Stop() {
	close(q.quit)
}

// Pinned launches an intentionally process-long goroutine; the
// reasoned directive documents why no join exists.
func Pinned() {
	//lint:ok goleak fixture: documents an intentionally process-long goroutine
	go bgSpin()
}
