// Package core is a deterministic core stand-in using the sim-time
// instruments the legal way: the obs root package only.
package core

import "example.com/obsplanefix/internal/obs"

// Decide records into a deterministic-plane counter.
func Decide(c *obs.Counter) {
	c.Inc()
}
