// Package obshttp is a stand-in for the live metrics endpoint.
package obshttp

// Serve pretends to serve metrics.
func Serve(addr string) error { return nil }
