// Package profile is a stand-in for the wall-clock plane: free to
// read the clock, forbidden to the deterministic core.
package profile

import "time"

// Phase times a phase on the wall clock (legal here: profile is the
// wall-clock plane, outside obsplane's scope).
func Phase() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}
