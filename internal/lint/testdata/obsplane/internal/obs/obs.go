// Package obs is a stand-in for the deterministic-plane instrument
// package: it must stay wall-clock-free.
package obs

import "time"

// Counter is a stand-in instrument.
type Counter struct{ v int64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.v++ }

// Stamp smuggles the wall clock into the instrument package.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in internal/obs"
}

// Age does the same through Since.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in internal/obs"
}
