// Package cdn is a deterministic core stand-in that reaches the
// wall-clock plane through an import — the route obsplane closes.
package cdn

import (
	"example.com/obsplanefix/internal/obs/obshttp" // want "import of example.com/obsplanefix/internal/obs/obshttp in a deterministic core package"
	"example.com/obsplanefix/internal/obs/profile" // want "import of example.com/obsplanefix/internal/obs/profile in a deterministic core package"
)

// Simulate would acquire a clock via the profiler.
func Simulate() {
	done := profile.Phase()
	defer done()
	_ = obshttp.Serve(":0")
}
