// Package des is a deterministic core stand-in exercising the
// suppression escape hatch.
package des

import (
	//lint:ok obsplane fixture demonstrating a reasoned suppression
	"example.com/obsplanefix/internal/obs/profile"
)

// Step uses the suppressed wall-clock import.
func Step() {
	done := profile.Phase()
	done()
}
