module example.com/obsplanefix

go 1.21
