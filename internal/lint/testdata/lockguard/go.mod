module example.com/lockguardfix

go 1.21
