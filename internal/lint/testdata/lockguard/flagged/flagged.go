// Package flagged exercises the lockguard triggers.
package flagged

import "sync"

// Counter is a mutex-guarded counter.
type Counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

// Add locks correctly.
func (c *Counter) Add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek reads the guarded field without the lock.
func (c *Counter) Peek() int {
	return c.n // want "guarded by mu"
}

// Reset writes it without the lock from outside a method.
func Reset(c *Counter) {
	c.n = 0 // want "guarded by mu"
}

// WrongMutex locks a different receiver's mutex.
func WrongMutex(a, b *Counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.n++ // want "guarded by mu"
}
