// Package clean holds guarded-field access patterns lockguard accepts.
package clean

import "sync"

// Gauge is an RWMutex-guarded value.
type Gauge struct {
	mu sync.RWMutex
	// guarded by mu
	v float64
}

// NewGauge constructs before sharing; composite-literal keys are
// exempt by shape.
func NewGauge(v float64) *Gauge {
	return &Gauge{v: v}
}

// Set takes the write lock.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

// Get takes the read lock.
func (g *Gauge) Get() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// Sum goes through the locking accessor, never the field.
func Sum(gs []*Gauge) float64 {
	total := 0.0
	for _, g := range gs {
		total += g.Get()
	}
	return total
}

// TwoGauges locks both receivers it touches.
func TwoGauges(a, b *Gauge) float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	b.mu.RLock()
	defer b.mu.RUnlock()
	return a.v + b.v
}
