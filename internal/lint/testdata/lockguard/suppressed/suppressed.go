// Package suppressed demonstrates a reasoned lockguard escape for a
// contract-level exemption the analyzer cannot see.
package suppressed

import "sync"

// Table is populated single-threaded, then read-only.
type Table struct {
	mu sync.Mutex
	// guarded by mu
	rows []string
}

// Seed runs before any concurrency starts.
func (t *Table) Seed(rows []string) {
	//lint:ok lockguard Seed runs during single-threaded setup, before the table is shared
	t.rows = rows
}

// Len is called concurrently and locks.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}
