// Package suppressed demonstrates a reasoned hotalloc escape for a
// cold branch inside a hot function.
package suppressed

// hotCold allocates only on the rare spill branch; the steady state
// is measured at 0 allocs/op.
//
//perf:hot
func hotCold(spill bool) map[string]int {
	if !spill {
		return nil
	}
	//lint:ok hotalloc cold spill branch, taken at most once per overload episode; steady state measured at 0 allocs/op
	return map[string]int{"spill": 1}
}
