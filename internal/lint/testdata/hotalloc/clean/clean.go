// Package clean holds hot-path code that satisfies its contracts.
package clean

// Table interns byte strings.
type Table struct{ m map[string]string }

// hotPrealloc uses the tolerated preallocation idiom: a make with
// explicit capacity and appends into it.
//
//perf:hot
func hotPrealloc(in []int) []int {
	out := make([]int, 0, len(in))
	for _, v := range in {
		out = append(out, v)
	}
	return out
}

// Intern hits the map-index conversion exemption: the compiler elides
// the []byte->string copy for a direct map lookup.
//
//perf:hot
func (t *Table) Intern(b []byte) (string, bool) {
	s, ok := t.m[string(b)]
	return s, ok
}

// hotScalar allocates nothing at all.
//
//perf:noalloc
func hotScalar(a, b uint64) uint64 {
	a ^= a >> 30
	a *= b
	return a ^ a>>27
}

// plain is unannotated: the contract does not apply.
func plain() []int {
	var out []int
	out = append(out, 1)
	return append(out, 2)
}
