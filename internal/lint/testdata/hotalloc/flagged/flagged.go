// Package flagged exercises the hotalloc allocation triggers.
package flagged

// Record is a sample payload value.
type Record struct{ A, B int }

// Sink consumes anything.
func Sink(v any) {}

// hotAppend grows a slice without preallocating it.
//
//perf:hot
func hotAppend(in []int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v) // want "un-preallocated append"
	}
	return out
}

// hotLiterals runs through the literal and builtin allocators.
//
//perf:hot
func hotLiterals() {
	m := map[string]int{} // want "map literal allocates"
	_ = m
	s := []int{1, 2} // want "slice literal allocates"
	_ = s
	r := &Record{} // want "&composite literal allocates"
	_ = r
	p := new(Record) // want "new allocates"
	_ = p
	q := make(map[string]int) // want "make allocates"
	_ = q
	f := func() {} // want "closure literal allocates"
	f()
}

// hotConvert converts and boxes.
//
//perf:hot
func hotConvert(b []byte, s string, r Record) {
	_ = string(b) // want "conversion allocates"
	_ = []byte(s) // want "conversion allocates"
	v := any(r)   // want "boxes"
	_ = v
	Sink(r) // want "argument boxes"
}

// noallocStrict rejects even the preallocation idiom.
//
//perf:noalloc
func noallocStrict(n int) []int {
	out := make([]int, 0, n) // want "make allocates"
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append may allocate"
	}
	return out
}
