module example.com/hotallocfix

go 1.21
