// Package badperf exercises the annotation-language findings: each
// malformed //perf: directive below is itself a hotalloc diagnostic.
// The expectations live in TestHotAllocAnnotationErrors rather than in
// // want comments, because the findings sit on the directive lines.
package badperf

//perf:fast
var speedy = 1

//perf:hot
var notAFunc = 2

// withArg carries a trailing argument on a contract verb.
//
//perf:noalloc always
func withArg() {}

// badCheck names an unknown compiler check.
func badCheck() {
	//perf:ok allocs because reasons
	_ = speedy
}

// reasonless has a check but no reason.
func reasonless() {
	//perf:ok escape
	_ = notAFunc
}
