// Package analysis is the fixture's aggregation layer: the *Iter
// naming convention makes these functions detreach entry points.
package analysis

import (
	"math/rand"
	"sort"
)

// SummarizeIter accumulates map-ordered output and draws ambient
// randomness, both on the deterministic plane.
func SummarizeIter(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k) // want "map-order: append to out under range over map"
	}
	if rand.Intn(2) == 1 { // want "ambient RNG on the deterministic plane: math/rand.Intn"
		return nil
	}
	return out
}

// SortedIter is the clean counterpart: sorted accumulation, no
// randomness.
func SortedIter(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
