// Package stats is the stand-in for the sanctioned RNG wrapper; the
// detreach analyzer exempts it by import-path suffix, so its internals
// may touch math/rand without tripping the purity walk.
package stats

import "math/rand"

// RNG is a deterministic stream.
type RNG struct{ r *rand.Rand }

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Fork derives an independent child stream.
func (g *RNG) Fork(name string) *RNG { return NewRNG(int64(len(name))) }

// Float64 draws from the stream.
func (g *RNG) Float64() float64 { return g.r.Float64() }
