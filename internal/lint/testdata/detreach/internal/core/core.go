// Package core is the fixture's deterministic plane: a SelectionPolicy
// stand-in whose implementations become detreach entry points, with
// impurities hidden several calls deep — one behind an interface, so
// only class-hierarchy analysis can see the path.
package core

import (
	"time"

	"example.com/detreachfix/internal/stats"
)

// SelectionPolicy mirrors the real interface detreach roots on.
type SelectionPolicy interface {
	ResolveDNS(id int, vid int) int
	ServeOrRedirect(srv int, vid int) int
}

// Clock is the indirection hiding the wall clock: Greedy's helper
// calls Stamp through this interface, and only CHA connects it to the
// impure implementation below.
type Clock interface{ Stamp() int64 }

// WallClock is the impure implementation.
type WallClock struct{}

// Stamp reads the wall clock; reachable from ResolveDNS via stampOf.
func (WallClock) Stamp() int64 {
	return time.Now().UnixNano() // want "wall clock on the deterministic plane: time.Now"
}

// FixedClock is a pure implementation, to give CHA a real choice.
type FixedClock struct{ At int64 }

// Stamp returns the fixed instant.
func (c FixedClock) Stamp() int64 { return c.At }

// Greedy implements SelectionPolicy, making its methods entry points.
type Greedy struct {
	clock Clock
	rng   *stats.RNG
}

// ResolveDNS reaches the wall clock through two frames and an
// interface dispatch.
func (g *Greedy) ResolveDNS(id int, vid int) int {
	return int(stampOf(g.clock)) + vid
}

// ServeOrRedirect constructs an unforked stream on the deterministic
// plane instead of deriving one.
func (g *Greedy) ServeOrRedirect(srv int, vid int) int {
	fresh := stats.NewRNG(int64(srv)) // want "unforked RNG construction on the deterministic plane"
	if fresh.Float64() < 0.5 {
		return srv
	}
	return forked(g.rng, vid)
}

func stampOf(c Clock) int64 { return c.Stamp() }

// forked is the clean shape: child streams derive from the parent.
func forked(g *stats.RNG, vid int) int {
	child := g.Fork("serve")
	return int(child.Float64() * float64(vid))
}

// Unreached uses the wall clock but is not reachable from any entry
// point, so detreach must stay silent about it (rngpurity would flag
// it per package; that is a different analyzer's contract).
func Unreached() int64 { return time.Now().UnixNano() }

// Allowed is reachable and impure, but documented: the reasoned
// directive silences the finding.
type Allowed struct{ Greedy }

// ResolveDNS is an entry point whose wall-clock read carries a
// suppression with a reason.
func (a *Allowed) ResolveDNS(id int, vid int) int {
	//lint:ok detreach fixture: documents the suppression path for reachable impurity
	return int(time.Now().UnixNano()) + id
}
