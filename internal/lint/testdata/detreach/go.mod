module example.com/detreachfix

go 1.21
