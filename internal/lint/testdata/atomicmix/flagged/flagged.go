// Package flagged exercises the atomicmix triggers.
package flagged

import "sync/atomic"

// Gauge mixes atomic and plain access to its fields.
type Gauge struct {
	n     int64
	peaks []int64
}

// Inc is the atomic whole-field path.
func (g *Gauge) Inc() {
	atomic.AddInt64(&g.n, 1)
}

// Read reads the atomically-written field plainly, no lock.
func (g *Gauge) Read() int64 {
	return g.n // want "plain access races"
}

// Reset writes it plainly.
func (g *Gauge) Reset() {
	g.n = 0 // want "plain access races"
}

// Bump is the atomic element path.
func (g *Gauge) Bump(i int) {
	atomic.AddInt64(&g.peaks[i], 1)
}

// Peek reads an element plainly.
func (g *Gauge) Peek(i int) int64 {
	return g.peaks[i] // want "element access races"
}

// Swap replaces the whole slice out from under concurrent adders.
func (g *Gauge) Swap(s []int64) {
	g.peaks = s // want "whole-field write races"
}

// Size only reads the slice header, which no element atomic touches.
func (g *Gauge) Size() int {
	return len(g.peaks)
}
