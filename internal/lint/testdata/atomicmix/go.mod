module example.com/atomicmixfix

go 1.21
