// Package suppressed demonstrates a reasoned atomicmix escape for a
// happens-after read the analyzer cannot see.
package suppressed

import "sync/atomic"

// Stat is written atomically while workers run, read after the pool
// is joined.
type Stat struct{ hits int64 }

// Hit is the concurrent path.
func (s *Stat) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

// Final runs strictly after every writer has been joined.
func (s *Stat) Final() int64 {
	//lint:ok atomicmix read happens after the worker pool is joined; no concurrent atomic access remains
	return s.hits
}
