// Package clean keeps atomic and plain access disciplined: every
// plain access happens under a mutex on the same receiver chain.
package clean

import (
	"sync"
	"sync/atomic"
)

// Tracker counts atomically on the hot path and snapshots under mu.
type Tracker struct {
	mu     sync.Mutex
	counts []int64
	total  int64
}

// NewTracker constructs before the value is shared — composite
// literals are exempt by shape.
func NewTracker(n int) *Tracker {
	return &Tracker{counts: make([]int64, n)}
}

// Add is the lock-free hot path.
func (t *Tracker) Add(i int) {
	atomic.AddInt64(&t.counts[i], 1)
	atomic.AddInt64(&t.total, 1)
}

// Snapshot reads plainly, guarded by the receiver's mutex.
func (t *Tracker) Snapshot() ([]int64, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, len(t.counts))
	for i := range t.counts {
		out[i] = t.counts[i]
	}
	return out, t.total
}

// Len reads only the slice header of the element-atomic field.
func (t *Tracker) Len() int {
	return len(t.counts)
}
