// Package par is a stand-in for the real worker-pool package; the
// rngshare analyzer recognizes it by its import-path suffix and treats
// closures passed to it as running on multiple goroutines.
package par

// ForEach runs fn(0..n-1) across workers goroutines.
func ForEach(n, workers int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
