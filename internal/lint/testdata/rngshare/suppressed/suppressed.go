// Package suppressed demonstrates a reasoned rngshare escape.
package suppressed

import "example.com/rngsharefix/internal/stats"

// PingPong alternates ownership: the spawning path blocks on the
// channel before its next draw, so the stream is never drawn from by
// two goroutines at once.
func PingPong(g *stats.RNG, turn chan struct{}) {
	go func() {
		//lint:ok rngshare ownership alternates over the turn channel; draws never overlap
		_ = g.Float64()
		turn <- struct{}{}
	}()
	<-turn
	_ = g.Float64()
}
