// Package flagged exercises every rngshare trigger.
package flagged

import (
	"example.com/rngsharefix/internal/par"
	"example.com/rngsharefix/internal/stats"
)

// BothSides draws on the goroutine and on the spawning path.
func BothSides(g *stats.RNG, done chan struct{}) {
	go func() {
		_ = g.Float64() // want "both this goroutine and its spawning path"
		close(done)
	}()
	_ = g.Float64()
	<-done
}

// Looped spawns goroutines in a loop; its instances share one stream.
func Looped(g *stats.RNG, done chan struct{}) {
	for i := 0; i < 4; i++ {
		go func() {
			_ = g.Intn(10) // want "spawned in a loop"
			done <- struct{}{}
		}()
	}
}

// Pooled draws from one stream on every pool worker.
func Pooled(g *stats.RNG) {
	par.ForEach(8, 4, func(i int) {
		_ = g.Float64() // want "worker-pool closure"
	})
}

// Passed hands the stream to a goroutine and keeps drawing.
func Passed(g *stats.RNG, done chan struct{}) {
	go drain(g, done) // want "both this goroutine and its spawning path"
	_ = g.Float64()
	<-done
}

func drain(g *stats.RNG, done chan struct{}) {
	_ = g.Float64()
	close(done)
}
