// Package clean holds goroutine/RNG patterns that follow the
// fork-per-owner contract.
package clean

import (
	"example.com/rngsharefix/internal/par"
	"example.com/rngsharefix/internal/stats"
)

// ForkPerGoroutine derives one child per goroutine; Fork reads only
// the immutable seed and is safe on a shared stream.
func ForkPerGoroutine(g *stats.RNG, done chan struct{}) {
	for i := 0; i < 4; i++ {
		go func(i int) {
			child := g.ForkIndexed("worker", i)
			_ = child.Float64()
			done <- struct{}{}
		}(i)
	}
}

// HandOffChild passes a forked child and keeps the parent.
func HandOffChild(g *stats.RNG, done chan struct{}) {
	go use(g.Fork("child"), done)
	_ = g.Float64()
	<-done
}

// ExclusiveHandOff gives the stream away entirely: the spawning path
// never draws again, so ownership transfers.
func ExclusiveHandOff(g *stats.RNG, done chan struct{}) {
	go use(g, done)
	<-done
}

// PoolForks derives a per-item stream inside the pool closure.
func PoolForks(g *stats.RNG) {
	par.ForEach(8, 4, func(i int) {
		_ = g.ForkIndexed("item", i).Float64()
	})
}

// GoroutineLocal creates its stream inside the goroutine.
func GoroutineLocal(seed int64, done chan struct{}) {
	go func() {
		g := stats.NewRNG(seed)
		_ = g.Float64()
		close(done)
	}()
	<-done
}

func use(g *stats.RNG, done chan struct{}) {
	_ = g.Float64()
	close(done)
}
