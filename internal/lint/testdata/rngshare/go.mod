module example.com/rngsharefix

go 1.21
