// Package shapes exercises the call-graph builder's edge cases: CHA
// interface dispatch, method values handed to a worker pool,
// function-typed struct fields, deferred calls, and goroutine
// launches. The expectations live in callgraph_test.go as direct graph
// assertions, not // want comments — the graph is the artifact under
// test, not diagnostics.
package shapes

// Policy mimics core.SelectionPolicy: one interface, several
// implementations, dispatch through the interface.
type Policy interface{ Pick() int }

// A implements Policy on the value receiver.
type A struct{}

func (A) Pick() int { return 1 }

// B implements Policy on the pointer receiver.
type B struct{ n int }

func (b *B) Pick() int { return b.n }

// Dispatch calls through the interface: CHA must fan out to both
// A.Pick and (*B).Pick.
func Dispatch(p Policy) int { return p.Pick() }

// Handler carries a function-typed field, the internal/par worker
// shape.
type Handler struct{ fn func() int }

// Invoke calls the field: a dynamic edge to every address-taken
// func() int in the module.
func (h Handler) Invoke() int { return h.fn() }

func candidate() int { return 3 }

// NewHandler takes candidate's address via the field assignment.
func NewHandler() Handler { return Handler{fn: candidate} }

// Pool mimics a worker pool accepting a job function.
type Pool struct{}

// Do calls its parameter: a dynamic edge to every address-taken
// func(int).
func (Pool) Do(f func(int)) { f(0) }

// Worker's Step is passed as a method value, which must mark it
// address-taken and give Do a dynamic edge to it.
type Worker struct{ n int }

func (w *Worker) Step(i int) { w.n += i }

// Drive hands the method value to the pool.
func Drive(p Pool, w *Worker) { p.Do(w.Step) }

func finishing() {}

func spinning() {}

// Lifecycle defers one call and launches another on a goroutine; the
// edge kinds must survive.
func Lifecycle() {
	defer finishing()
	go spinning()
}
