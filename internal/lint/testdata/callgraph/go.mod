module example.com/callgraphfix

go 1.21
