package lint

import (
	"path/filepath"
	"testing"
)

// treeSuppressions is the exact //lint:ok inventory of the repository,
// as (file base name, analyzer) pairs. The tree must be clean under
// the full suite, and every suppression is accounted for here: adding
// one means extending this list in the same change, so the escape
// hatches stay enumerable in review.
var treeSuppressions = map[[2]string]int{
	{"asdb.go", "lockguard"}: 1, // single-threaded registration by type contract
	{"des.go", "hotalloc"}:   1, // amortized event-queue growth in push
	{"obshttp.go", "goleak"}: 1, // /metrics listener is joined by srv.Shutdown inside net/http
}

// TestTreeClean is the whole-repository contract: zero unsuppressed
// findings from the full suite — the seven per-package analyzers plus
// the three interprocedural module analyzers — and exactly the
// documented suppression inventory, no more, no fewer.
func TestTreeClean(t *testing.T) {
	units, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("loaded no packages")
	}
	got := make(map[[2]string]int)
	for _, u := range units {
		kept, silenced := RunAll(u.Fset, u.Files, u.Pkg, u.Info, Analyzers())
		for _, d := range kept {
			t.Errorf("%s: [%s] %s", u.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		for _, s := range silenced {
			key := [2]string{filepath.Base(u.Fset.Position(s.Pos).Filename), s.Analyzer}
			got[key]++
		}
	}
	keptMod, silencedMod := RunModuleAll(units, ModuleAnalyzers())
	for _, d := range keptMod {
		t.Errorf("%s: [%s] %s", units[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	for _, s := range silencedMod {
		key := [2]string{filepath.Base(units[0].Fset.Position(s.Pos).Filename), s.Analyzer}
		got[key]++
	}
	for key, n := range treeSuppressions {
		if got[key] != n {
			t.Errorf("suppression inventory: want %d silenced %s finding(s) in %s, got %d", n, key[1], key[0], got[key])
		}
	}
	for key, n := range got {
		if treeSuppressions[key] == 0 {
			t.Errorf("undocumented suppression: %d silenced %s finding(s) in %s — extend treeSuppressions with why", n, key[1], key[0])
		}
	}
}
