package lint

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs/report"
)

// TestLintBenchArtifact emits BENCH_lint.json (schema ytcdn.report/v1)
// for CI when BENCH_LINT_JSON names the output path: wall time for the
// three phases of a whole-tree analysis — loading and type-checking
// the module, building the call graph, and running the full analyzer
// suite — plus the graph's size, so a structural regression in the
// static layer (an accidentally quadratic pass, a CHA fan-out
// explosion) shows up as a tracked number rather than a slower CI job.
func TestLintBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_LINT_JSON")
	if out == "" {
		t.Skip("set BENCH_LINT_JSON to emit the benchmark artifact")
	}

	t0 := time.Now()
	units, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	loadSecs := time.Since(t0).Seconds()

	t1 := time.Now()
	graph := BuildGraph(units)
	buildSecs := time.Since(t1).Seconds()
	nodes := graph.Nodes()
	edges := 0
	for _, n := range nodes {
		edges += len(n.Calls)
	}

	t2 := time.Now()
	findings, suppressed := 0, 0
	for _, u := range units {
		kept, silenced := RunAll(u.Fset, u.Files, u.Pkg, u.Info, Analyzers())
		findings += len(kept)
		suppressed += len(silenced)
	}
	keptMod, silencedMod := RunModuleAll(units, ModuleAnalyzers())
	findings += len(keptMod)
	suppressed += len(silencedMod)
	analysisSecs := time.Since(t2).Seconds()

	rep := report.New("lint-bench").
		Set("scope", "./... (full module, per-package + module analyzers)").
		Add("lint.load_seconds", loadSecs, "s").
		Add("lint.graph_build_seconds", buildSecs, "s").
		Add("lint.analysis_seconds", analysisSecs, "s").
		Add("lint.packages", float64(len(units)), "count").
		Add("lint.graph_nodes", float64(len(nodes)), "count").
		Add("lint.graph_edges", float64(edges), "count").
		Add("lint.findings", float64(findings), "count").
		Add("lint.suppressed", float64(suppressed), "count")
	if err := rep.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
