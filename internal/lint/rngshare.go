package lint

import (
	"go/ast"
	"go/types"
)

// RNGShare enforces the fork-per-owner contract on *stats.RNG: a
// stream's draw methods mutate internal generator state and are not
// safe for concurrent use, so a stream captured by a `go` closure (or
// handed to a worker-pool closure from internal/par) must not also be
// drawn from on the spawning path, and a stream drawn from inside a
// goroutine spawned in a loop is shared between the loop's goroutine
// instances. Calling Fork, ForkIndexed or Seed on a shared stream is
// fine — those read only the immutable seed, which is exactly why the
// contract is fork-per-owner: each goroutine derives its own child.
var RNGShare = &Analyzer{
	Name: "rngshare",
	Doc: "flag *stats.RNG streams drawn from by both a goroutine and " +
		"its spawning path (or by looped/pooled goroutines)",
	Run: runRNGShare,
}

func runRNGShare(pass *Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, fd := range enclosingFuncs(f) {
			checkFuncRNGShare(pass, fd)
		}
	}
}

// spawnSite is one place a function hands work to other goroutines:
// a go statement, or a closure passed to an internal/par pool helper.
type spawnSite struct {
	node   ast.Node // the subtree whose RNG uses run concurrently
	pooled bool     // closure runs on multiple pool workers at once
	looped bool     // go statement sits inside a loop
}

func checkFuncRNGShare(pass *Pass, fd *ast.FuncDecl) {
	var sites []spawnSite

	var visit func(n ast.Node, inLoop bool)
	visit = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		case *ast.GoStmt:
			sites = append(sites, spawnSite{node: n, looped: inLoop})
		case *ast.CallExpr:
			if isParPoolCall(pass, n) {
				for _, arg := range n.Args {
					if fl, ok := arg.(*ast.FuncLit); ok {
						sites = append(sites, spawnSite{node: fl, pooled: true})
					}
				}
			}
		}
		for _, c := range childNodes(n) {
			visit(c, inLoop)
		}
	}
	visit(fd.Body, false)

	for _, site := range sites {
		for _, use := range capturedDrawUses(pass, site.node) {
			obj := pass.Info.Uses[use]
			switch {
			case site.pooled:
				pass.Reportf(use.Pos(), "*stats.RNG %s is drawn from inside a worker-pool closure: pool workers run it concurrently; fork a per-item stream with Fork/ForkIndexed", obj.Name())
			case site.looped:
				pass.Reportf(use.Pos(), "*stats.RNG %s is drawn from inside a goroutine spawned in a loop: the loop's goroutines share one stream; fork a per-goroutine stream with Fork/ForkIndexed", obj.Name())
			case drawnOutside(pass, fd, site.node, obj):
				pass.Reportf(use.Pos(), "*stats.RNG %s is drawn from by both this goroutine and its spawning path: streams are fork-per-owner; give the goroutine its own Fork/ForkIndexed child", obj.Name())
			}
		}
	}
}

// isParPoolCall reports whether call invokes a function from the
// internal/par worker-pool package.
func isParPoolCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && pkgPathHasSuffix(fn.Pkg().Path(), "internal/par")
}

// capturedDrawUses returns identifiers inside the spawn subtree that
// draw from a *stats.RNG declared outside it.
func capturedDrawUses(pass *Pass, site ast.Node) []*ast.Ident {
	var out []*ast.Ident
	parentOf := map[ast.Node]ast.Node{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		for _, c := range childNodes(n) {
			parentOf[c] = n
			walk(c)
		}
	}
	walk(site)

	ast.Inspect(site, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || !isStatsRNG(obj.Type()) {
			return true
		}
		if obj.Pos() >= site.Pos() && obj.Pos() <= site.End() {
			return true // stream local to the goroutine: owned, not shared
		}
		if isSafeStreamUse(parentOf, id) {
			return true
		}
		out = append(out, id)
		return true
	})
	return out
}

// safeStreamMethods are the *stats.RNG methods that read only the
// immutable seed and are documented safe for concurrent use.
var safeStreamMethods = map[string]bool{"Fork": true, "ForkIndexed": true, "Seed": true}

// isSafeStreamUse reports whether the identifier is the receiver of a
// Fork/ForkIndexed/Seed call — the one concurrency-safe way to touch a
// shared stream.
func isSafeStreamUse(parentOf map[ast.Node]ast.Node, id *ast.Ident) bool {
	sel, ok := parentOf[id].(*ast.SelectorExpr)
	if !ok || sel.X != ast.Expr(id) || !safeStreamMethods[sel.Sel.Name] {
		return false
	}
	call, ok := parentOf[sel].(*ast.CallExpr)
	return ok && call.Fun == ast.Expr(sel)
}

// drawnOutside reports whether obj is drawn from in fd's body outside
// the spawn subtree (its declaration and safe Fork-style uses do not
// count).
func drawnOutside(pass *Pass, fd *ast.FuncDecl, site ast.Node, obj types.Object) bool {
	parentOf := map[ast.Node]ast.Node{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		for _, c := range childNodes(n) {
			parentOf[c] = n
			walk(c)
		}
	}
	walk(fd.Body)

	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || (n != nil && within(n, site)) {
			return !found
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pass.Info.Uses[id] != obj {
			return true
		}
		if isSafeStreamUse(parentOf, id) {
			return true
		}
		found = true
		return false
	})
	return found
}

// childNodes lists the direct AST children of n, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}
