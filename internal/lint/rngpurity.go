package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// rngPurityScope lists the package-path suffixes rngpurity polices:
// everything whose output feeds the bit-identical parity suites. The
// stats package itself is exempt (it is the sanctioned wrapper around
// math/rand), as are cmd/ mains and _test.go files (benchmark timing
// legitimately reads the wall clock).
var rngPurityScope = []string{
	"internal/cdn",
	"internal/des",
	"internal/core",
	"internal/workload",
	"internal/analysis",
	"internal/experiments",
}

// RNGPurity forbids ambient sources of nondeterminism in simulation
// and analysis packages: the wall clock (time.Now/Since/Until), the
// global math/rand generator (and ad-hoc rand.New sources), and
// crypto/rand. All randomness must flow from the study seed through
// stats.RNG streams, and new streams must be derived with
// Fork/ForkIndexed — stats.NewRNG with a computed (arithmetic) seed
// re-invents seed derivation and breaks order-independence, so only a
// passed-through seed value is accepted as its argument.
var RNGPurity = &Analyzer{
	Name: "rngpurity",
	Doc: "forbid wall-clock and ambient RNG use in simulation/analysis " +
		"packages; require Fork/ForkIndexed for stream derivation",
	Run: runRNGPurity,
}

func runRNGPurity(pass *Pass) {
	inScope := false
	for _, s := range rngPurityScope {
		if pkgPathHasSuffix(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s in a simulation/analysis package: all randomness must come from seeded stats.RNG streams", path)
			case "crypto/rand":
				pass.Reportf(imp.Pos(), "import of crypto/rand in a simulation/analysis package: cryptographic randomness is never reproducible; use seeded stats.RNG streams")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range []string{"Now", "Since", "Until"} {
				if isPkgFunc(pass.Info, call, "time", fn) {
					pass.Reportf(call.Pos(), "time.%s in a simulation/analysis package: the wall clock is not reproducible; derive instants from the simulated clock", fn)
				}
			}
			if isPkgFunc(pass.Info, call, "internal/stats", "NewRNG") && len(call.Args) == 1 && !isAtomicSeedExpr(pass, call.Args[0]) {
				pass.Reportf(call.Pos(), "stats.NewRNG with a computed seed: ad-hoc seed arithmetic is order- and layout-dependent; derive child streams with Fork or ForkIndexed on a constant label")
			}
			return true
		})
	}
}

// isAtomicSeedExpr reports whether the seed expression merely passes a
// value through — an identifier, a field chain, a literal (possibly
// negated), or a plain conversion of one of those. Anything with
// arithmetic or a real call is a computed seed.
func isAtomicSeedExpr(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return isAtomicSeedExpr(pass, e.X)
	case *ast.ParenExpr:
		return isAtomicSeedExpr(pass, e.X)
	case *ast.UnaryExpr:
		return (e.Op == token.SUB || e.Op == token.ADD) && isAtomicSeedExpr(pass, e.X)
	case *ast.CallExpr:
		// Allow a conversion of an atomic value, e.g. int64(seed) —
		// but only a real type conversion; any function call is
		// computation.
		if len(e.Args) != 1 {
			return false
		}
		if tv, ok := pass.Info.Types[e.Fun]; !ok || !tv.IsType() {
			return false
		}
		return isAtomicSeedExpr(pass, e.Args[0])
	}
	return false
}
