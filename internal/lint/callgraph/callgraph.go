// Package callgraph constructs a whole-module call graph from parsed,
// type-checked packages, using nothing beyond go/ast and go/types — the
// same stdlib-only constraint the rest of the lint layer honours.
//
// Interface dispatch is resolved by class-hierarchy analysis (CHA):
// a call through an interface method gets an edge to that method on
// every named type in the module that implements the interface. Calls
// through function-typed values (function-typed struct fields, params,
// variables, and method values) get edges to every address-taken
// function in the module with a matching signature. Both are
// over-approximations, which is the right direction for the analyses
// built on top: reachability must never miss a real path.
//
// Function literals are not separate nodes: a closure's calls are
// attributed to the enclosing declared function. For reachability that
// is conservative (if the enclosing function runs, the closure may),
// and it keeps the graph aligned with where a human looks for the
// code. Calls with no source in the module (standard library,
// vendored export data) are recorded as external edges — they form
// the purity frontier the detreach analyzer pins.
//
// Known soundness caveats, shared with every CHA construction:
// reflection (reflect.Value.Call), method expressions used as values
// (T.Method), and code generated at runtime are invisible; conversely
// CHA edges over-approximate (a dynamic call gets edges to impossible
// targets of the right shape). See TESTING.md, "Interprocedural
// layer".
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Pkg is one loaded package: the unit of input to Build.
type Pkg struct {
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// EdgeKind classifies how a call site invokes its callee.
type EdgeKind uint8

const (
	// Call is an ordinary static call: the callee is known exactly.
	Call EdgeKind = iota
	// Dynamic is a call through an interface method (resolved by CHA)
	// or a function-typed value (resolved by signature matching).
	Dynamic
	// Defer is a deferred call; it runs on the caller's return path.
	Defer
	// Go launches the callee on a new goroutine.
	Go
)

func (k EdgeKind) String() string {
	switch k {
	case Call:
		return "call"
	case Dynamic:
		return "dynamic"
	case Defer:
		return "defer"
	case Go:
		return "go"
	}
	return "?"
}

// Node is one declared function or method with source in the module.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	// Pkg and Info are the declaring package and its type information,
	// for analyzers that inspect the body.
	Pkg  *types.Package
	Info *types.Info
	// Name is the stable full render, e.g.
	// "(*path/to/cdn.Simulator).runChain" or "path/to/analysis.SummarizeIter".
	Name string
	// AddressTaken reports that the function's value escapes somewhere
	// in the module (method value, assignment, argument) — making it a
	// candidate target for calls through function-typed values.
	AddressTaken bool
	// Calls are edges to module functions, in source order of their
	// sites (dynamic fan-outs sorted by callee name within a site).
	Calls []Edge
	// External are calls to functions with no source in the module
	// (standard library and export-data-only dependencies).
	External []ExternalEdge
}

// Edge is one call from a node to another module node.
type Edge struct {
	Callee *Node
	Site   token.Pos
	Kind   EdgeKind
}

// ExternalEdge is one call leaving the module.
type ExternalEdge struct {
	Func *types.Func
	Site token.Pos
	Kind EdgeKind
}

// Graph is the whole-module call graph.
type Graph struct {
	Fset  *token.FileSet
	nodes map[*types.Func]*Node
	// sorted caches Nodes() order.
	sorted []*Node
}

// Node returns the graph node for fn, or nil when fn has no source in
// the module. Instantiated generic functions resolve to their origin's
// node — the graph has one node per declaration, not per instantiation.
func (g *Graph) Node(fn *types.Func) *Node {
	if n := g.nodes[fn]; n != nil {
		return n
	}
	if o := fn.Origin(); o != fn {
		return g.nodes[o]
	}
	return nil
}

// Nodes returns every node sorted by Name (position-free, so the order
// survives unrelated edits).
func (g *Graph) Nodes() []*Node { return g.sorted }

// FuncName renders fn the way the graph names nodes: methods as
// "(*pkg/path.Recv).Name", functions as "pkg/path.Name".
func FuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
			ptr = "*"
		}
		return "(" + ptr + types.TypeString(t, nil) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// ShortName renders fn with bare package names instead of full import
// paths — for diagnostics, where full paths drown the message.
func ShortName(fn *types.Func) string {
	qual := func(p *types.Package) string { return p.Name() }
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
			ptr = "*"
		}
		return "(" + ptr + types.TypeString(t, qual) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// Build constructs the graph over the given packages, which must all
// share fset. Pass every package of the module: CHA and address-taken
// resolution are only as complete as the source they see.
func Build(fset *token.FileSet, pkgs []Pkg) *Graph {
	b := &builder{
		g:           &Graph{Fset: fset, nodes: make(map[*types.Func]*Node)},
		pkgs:        pkgs,
		calleeIdent: make(map[*ast.Ident]bool),
		ifaceCache:  make(map[*types.Func][]*Node),
	}
	b.collectNodes()
	b.collectNamedTypes()
	b.collectAddressTaken()
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, okf := p.Info.Defs[fd.Name].(*types.Func)
				if !okf {
					continue
				}
				b.addCalls(b.g.nodes[fn], p.Info, fd.Body)
			}
		}
	}
	b.g.sorted = make([]*Node, 0, len(b.g.nodes))
	for _, n := range b.g.nodes {
		b.g.sorted = append(b.g.sorted, n)
	}
	sort.Slice(b.g.sorted, func(i, j int) bool { return b.g.sorted[i].Name < b.g.sorted[j].Name })
	return b.g
}

type builder struct {
	g    *Graph
	pkgs []Pkg
	// named holds every non-interface named type declared in the
	// module, sorted by type name — the CHA class hierarchy.
	named []*types.Named
	// funcValueTargets maps a receiver-stripped signature render to the
	// address-taken functions matching it.
	funcValueTargets map[string][]*Node
	// calleeIdent marks identifiers that appear as the function operand
	// of a call — every *other* use of a function-valued identifier is
	// an address taken.
	calleeIdent map[*ast.Ident]bool
	ifaceCache  map[*types.Func][]*Node
}

func (b *builder) collectNodes() {
	for _, p := range b.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, okf := p.Info.Defs[fd.Name].(*types.Func)
				if !okf {
					continue
				}
				b.g.nodes[fn] = &Node{
					Func: fn, Decl: fd, Pkg: p.Pkg, Info: p.Info,
					Name: FuncName(fn),
				}
			}
		}
	}
}

func (b *builder) collectNamedTypes() {
	for _, p := range b.pkgs {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.named = append(b.named, named)
		}
	}
	sort.Slice(b.named, func(i, j int) bool {
		return b.named[i].Obj().Id() < b.named[j].Obj().Id()
	})
}

// collectAddressTaken finds every use of a declared function outside a
// call position and indexes the nodes by receiver-stripped signature.
func (b *builder) collectAddressTaken() {
	// Pass 1: mark the identifiers that are call operands.
	for _, p := range b.pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id := calleeNameIdent(call.Fun); id != nil {
					b.calleeIdent[id] = true
				}
				return true
			})
		}
	}
	// Pass 2: every other use of a *types.Func is an address taken.
	b.funcValueTargets = make(map[string][]*Node)
	for _, p := range b.pkgs {
		for id, obj := range p.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || b.calleeIdent[id] {
				continue
			}
			node := b.g.Node(fn)
			if node == nil || node.AddressTaken {
				continue
			}
			node.AddressTaken = true
		}
	}
	// Build the signature index in deterministic order.
	var taken []*Node
	for _, n := range b.g.nodes {
		if n.AddressTaken {
			taken = append(taken, n)
		}
	}
	sort.Slice(taken, func(i, j int) bool { return taken[i].Name < taken[j].Name })
	for _, n := range taken {
		key := strippedSig(n.Func)
		b.funcValueTargets[key] = append(b.funcValueTargets[key], n)
	}
}

// calleeNameIdent returns the identifier naming the called function in
// a call operand expression, unwrapping parens and generic
// instantiation: f(...), pkg.F(...), x.m(...), f[T](...).
func calleeNameIdent(fun ast.Expr) *ast.Ident {
	switch e := unparen(fun).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.IndexExpr:
		return calleeNameIdent(e.X)
	case *ast.IndexListExpr:
		return calleeNameIdent(e.X)
	}
	return nil
}

// unparen strips parentheses (go.mod pins a language version predating
// ast.Unparen).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// strippedSig renders fn's signature with any receiver removed, the key
// used to match function values to address-taken functions (a method
// value's type has no receiver).
func strippedSig(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Type().String()
	}
	return sigKey(sig)
}

// sigKey renders a signature with receiver and parameter names erased,
// so `func(i int)` on the declaration matches `func(int)` at the value
// type — names are not part of the call compatibility being modeled.
func sigKey(sig *types.Signature) string {
	unname := func(t *types.Tuple) *types.Tuple {
		vars := make([]*types.Var, t.Len())
		for i := 0; i < t.Len(); i++ {
			vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
		}
		return types.NewTuple(vars...)
	}
	return types.TypeString(types.NewSignatureType(nil, nil, nil, unname(sig.Params()), unname(sig.Results()), sig.Variadic()), nil)
}

// addCalls walks body (function literals included) and records every
// call as an edge of node.
func (b *builder) addCalls(node *Node, info *types.Info, body ast.Node) {
	if node == nil {
		return
	}
	// Kind of each call expression that is the operand of go/defer.
	kinds := make(map[*ast.CallExpr]EdgeKind)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			kinds[s.Call] = Go
		case *ast.DeferStmt:
			kinds[s.Call] = Defer
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, okk := kinds[call]
		if !okk {
			kind = Call
		}
		b.resolveCall(node, info, call, kind)
		return true
	})
}

// resolveCall classifies one call site and appends the resulting
// edge(s) to node.
func (b *builder) resolveCall(node *Node, info *types.Info, call *ast.CallExpr, kind EdgeKind) {
	fun := unparen(call.Fun)
	// Type conversions are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	// Unwrap generic instantiation.
	switch e := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := info.Types[e.X]; ok && tv.IsValue() {
			fun = e.X
		}
	case *ast.IndexListExpr:
		fun = e.X
	}

	switch e := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			b.addStatic(node, obj, call.Pos(), kind)
			return
		case *types.Builtin, *types.TypeName, *types.Nil:
			return
		}
		// Function-typed variable or parameter.
		b.addFuncValue(node, info, fun, call.Pos(), kind)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				fn := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					b.addInterfaceCall(node, fn, call.Pos(), kind)
				} else {
					b.addStatic(node, fn, call.Pos(), kind)
				}
			case types.FieldVal:
				// Calling a function-typed struct field.
				b.addFuncValue(node, info, fun, call.Pos(), kind)
			case types.MethodExpr:
				// (T).m used as a function and called immediately.
				if fn, okf := sel.Obj().(*types.Func); okf {
					b.addStatic(node, fn, call.Pos(), kind)
				}
			}
			return
		}
		// Qualified identifier: pkg.F or pkg.Var.
		switch obj := info.Uses[e.Sel].(type) {
		case *types.Func:
			b.addStatic(node, obj, call.Pos(), kind)
		case *types.Var:
			b.addFuncValue(node, info, fun, call.Pos(), kind)
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already attributed
		// to this node by the enclosing walk.
	default:
		// Arbitrary function-typed expression (call result, index...).
		b.addFuncValue(node, info, fun, call.Pos(), kind)
	}
}

func (b *builder) addStatic(node *Node, fn *types.Func, site token.Pos, kind EdgeKind) {
	if callee := b.g.Node(fn); callee != nil {
		node.Calls = append(node.Calls, Edge{Callee: callee, Site: site, Kind: kind})
		return
	}
	node.External = append(node.External, ExternalEdge{Func: fn, Site: site, Kind: kind})
}

// addInterfaceCall fans an interface-method call out to every module
// type implementing the interface (CHA).
func (b *builder) addInterfaceCall(node *Node, m *types.Func, site token.Pos, kind EdgeKind) {
	targets, ok := b.ifaceCache[m]
	if !ok {
		targets = b.chaTargets(m)
		b.ifaceCache[m] = targets
	}
	if len(targets) == 0 {
		// No module implementation in sight: the dispatch leaves the
		// module (an implementation supplied by a dependency or test).
		node.External = append(node.External, ExternalEdge{Func: m, Site: site, Kind: kind})
		return
	}
	if kind == Call {
		kind = Dynamic // preserve go/defer kinds on the fan-out
	}
	for _, t := range targets {
		node.Calls = append(node.Calls, Edge{Callee: t, Site: site, Kind: kind})
	}
}

// chaTargets lists the module methods an interface method may dispatch
// to, sorted by node name.
func (b *builder) chaTargets(m *types.Func) []*Node {
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Node
	seen := make(map[*Node]bool)
	for _, named := range b.named {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		fn, okf := obj.(*types.Func)
		if !okf {
			continue
		}
		if n := b.g.Node(fn); n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// addFuncValue fans a call through a function-typed value out to every
// address-taken module function with the same signature.
func (b *builder) addFuncValue(node *Node, info *types.Info, fun ast.Expr, site token.Pos, kind EdgeKind) {
	tv, ok := info.Types[fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	key := sigKey(sig)
	for _, t := range b.funcValueTargets[key] {
		k := kind
		if k == Call {
			k = Dynamic
		}
		node.Calls = append(node.Calls, Edge{Callee: t, Site: site, Kind: k})
	}
}

// ReachableFrom walks the graph breadth-first from roots and returns,
// for every reachable node, its BFS predecessor (roots map to nil).
// The traversal order is deterministic: roots sorted by name, edges in
// recorded order.
func (g *Graph) ReachableFrom(roots []*Node) map[*Node]*Node {
	parents := make(map[*Node]*Node)
	sorted := append([]*Node(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	queue := make([]*Node, 0, len(sorted))
	for _, r := range sorted {
		if _, ok := parents[r]; ok {
			continue
		}
		parents[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Calls {
			if _, ok := parents[e.Callee]; ok {
				continue
			}
			parents[e.Callee] = n
			queue = append(queue, e.Callee)
		}
	}
	return parents
}

// PathFrom reconstructs the BFS path root → ... → n from a
// ReachableFrom result.
func PathFrom(parents map[*Node]*Node, n *Node) []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = parents[cur] {
		rev = append(rev, cur)
		if parents[cur] == nil {
			break
		}
	}
	out := make([]*Node, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// Dump renders the whole graph deterministically: nodes by name, each
// with its module edges and external calls. The -graph flag of
// cmd/ytcdn-lint ships this as a CI artifact.
func (g *Graph) Dump(w io.StringWriter) {
	nodes := g.Nodes()
	edges := 0
	for _, n := range nodes {
		edges += len(n.Calls)
	}
	w.WriteString(fmt.Sprintf("ytcdn callgraph v1: %d nodes, %d edges\n", len(nodes), edges))
	for _, n := range nodes {
		flags := ""
		if n.AddressTaken {
			flags = " address-taken"
		}
		w.WriteString(fmt.Sprintf("func %s%s\n", n.Name, flags))
		for _, e := range n.Calls {
			w.WriteString(fmt.Sprintf("  %s %s @%s\n", e.Kind, e.Callee.Name, g.pos(e.Site)))
		}
		ext := make([]string, 0, len(n.External))
		for _, e := range n.External {
			ext = append(ext, fmt.Sprintf("  external %s %s @%s\n", e.Kind, FuncName(e.Func), g.pos(e.Site)))
		}
		sort.Strings(ext)
		for _, line := range ext {
			w.WriteString(line)
		}
	}
}

// pos renders a position with a base filename, keeping the dump free
// of absolute paths.
func (g *Graph) pos(p token.Pos) string {
	pos := g.Fset.Position(p)
	name := pos.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, pos.Line)
}
