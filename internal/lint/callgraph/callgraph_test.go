package callgraph_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/lint"
	"github.com/ytcdn-sim/ytcdn/internal/lint/callgraph"
)

// buildFixture loads the shapes fixture module and builds its graph.
func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	units, err := lint.Load(filepath.Join("..", "testdata", "callgraph"), "./...")
	if err != nil {
		t.Fatal(err)
	}
	return lint.BuildGraph(units)
}

// node finds the unique graph node whose name ends in suffix.
func node(t *testing.T, g *callgraph.Graph, suffix string) *callgraph.Node {
	t.Helper()
	var found *callgraph.Node
	for _, n := range g.Nodes() {
		if strings.HasSuffix(n.Name, suffix) {
			if found != nil {
				t.Fatalf("node suffix %q is ambiguous: %s and %s", suffix, found.Name, n.Name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node with suffix %q", suffix)
	}
	return found
}

// edgeTo reports whether from has an edge of kind to the node named by
// suffix.
func edgeTo(from *callgraph.Node, suffix string, kind callgraph.EdgeKind) bool {
	for _, e := range from.Calls {
		if e.Kind == kind && strings.HasSuffix(e.Callee.Name, suffix) {
			return true
		}
	}
	return false
}

func TestInterfaceDispatchFansOutCHA(t *testing.T) {
	g := buildFixture(t)
	dispatch := node(t, g, "callgraphfix.Dispatch")
	if !edgeTo(dispatch, "(example.com/callgraphfix.A).Pick", callgraph.Dynamic) {
		t.Errorf("Dispatch missing dynamic edge to A.Pick; edges: %v", edgeNames(dispatch))
	}
	if !edgeTo(dispatch, "(*example.com/callgraphfix.B).Pick", callgraph.Dynamic) {
		t.Errorf("Dispatch missing dynamic edge to (*B).Pick; edges: %v", edgeNames(dispatch))
	}
}

func TestMethodValueToWorkerPool(t *testing.T) {
	g := buildFixture(t)
	step := node(t, g, "(*example.com/callgraphfix.Worker).Step")
	if !step.AddressTaken {
		t.Error("(*Worker).Step passed as a method value should be address-taken")
	}
	do := node(t, g, "(example.com/callgraphfix.Pool).Do")
	if !edgeTo(do, "(*example.com/callgraphfix.Worker).Step", callgraph.Dynamic) {
		t.Errorf("Pool.Do missing dynamic edge to the pooled method value; edges: %v", edgeNames(do))
	}
}

func TestFuncTypedFieldCall(t *testing.T) {
	g := buildFixture(t)
	cand := node(t, g, "callgraphfix.candidate")
	if !cand.AddressTaken {
		t.Error("candidate assigned to a struct field should be address-taken")
	}
	invoke := node(t, g, "(example.com/callgraphfix.Handler).Invoke")
	if !edgeTo(invoke, "callgraphfix.candidate", callgraph.Dynamic) {
		t.Errorf("Invoke missing dynamic edge to candidate; edges: %v", edgeNames(invoke))
	}
}

func TestDeferAndGoEdgeKinds(t *testing.T) {
	g := buildFixture(t)
	lc := node(t, g, "callgraphfix.Lifecycle")
	if !edgeTo(lc, "callgraphfix.finishing", callgraph.Defer) {
		t.Errorf("Lifecycle missing defer edge to finishing; edges: %v", edgeNames(lc))
	}
	if !edgeTo(lc, "callgraphfix.spinning", callgraph.Go) {
		t.Errorf("Lifecycle missing go edge to spinning; edges: %v", edgeNames(lc))
	}
}

func TestReachabilityAndPath(t *testing.T) {
	g := buildFixture(t)
	drive := node(t, g, "callgraphfix.Drive")
	step := node(t, g, "(*example.com/callgraphfix.Worker).Step")
	parents := g.ReachableFrom([]*callgraph.Node{drive})
	if _, ok := parents[step]; !ok {
		t.Fatal("Step should be reachable from Drive through the pooled method value")
	}
	path := callgraph.PathFrom(parents, step)
	if len(path) != 3 || path[0] != drive || path[2] != step {
		t.Errorf("unexpected path: %v", nodeNames(path))
	}
}

func TestDumpIsDeterministic(t *testing.T) {
	g := buildFixture(t)
	var a, b strings.Builder
	g.Dump(&a)
	g.Dump(&b)
	if a.String() != b.String() {
		t.Error("two dumps of the same graph differ")
	}
	if !strings.HasPrefix(a.String(), "ytcdn callgraph v1: ") {
		t.Errorf("dump header missing: %q", firstLine(a.String()))
	}
}

func edgeNames(n *callgraph.Node) []string {
	var out []string
	for _, e := range n.Calls {
		out = append(out, e.Kind.String()+" "+e.Callee.Name)
	}
	return out
}

func nodeNames(nodes []*callgraph.Node) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Name)
	}
	return out
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
