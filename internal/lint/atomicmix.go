package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix flags mixed atomic/plain access to a struct field: once
// any code in the package reaches a field through sync/atomic
// (atomic.AddInt64(&x.f, 1), atomic.LoadInt64(&x.f[i]), ...), every
// plain read or write of that field is a data race unless a mutex
// serializes it against the atomic path. The Go memory model gives
// mixed access no guarantees at all — the race detector only catches
// the interleavings it happens to see, while this check makes the
// contract structural: a field is either fully atomic, or
// mutex-guarded at every plain access.
//
// Like lockguard, the check is intra-package, flow-insensitive and
// textual: a plain access under any lock on the same receiver chain
// (x.mu.Lock() guarding x.f) is accepted, composite-literal
// construction is exempt by shape, and deliberate unguarded reads
// (single-threaded init, test-only introspection) take a reasoned
// //lint:ok atomicmix directive. Fields reached atomically only at
// element granularity (&x.f[i]) permit plain slice-header reads —
// len, cap, range, reslicing — since those never touch element
// memory; element reads/writes and whole-field writes are still
// findings.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed both via sync/atomic and by " +
		"plain read/write without a guarding mutex",
	Run: runAtomicMix,
}

// atomicFieldUse records how a field is reached atomically. elemOnly
// is true while every atomic access indexes into the field
// (&x.f[i]); any whole-field atomic access (&x.f) clears it.
type atomicFieldUse struct {
	elemOnly bool
}

func runAtomicMix(pass *Pass) {
	fields, exempt := collectAtomicFields(pass)
	if len(fields) == 0 {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, fd := range enclosingFuncs(f) {
			checkAtomicMix(pass, fd, fields, exempt)
		}
	}
}

// collectAtomicFields finds every struct field whose address feeds a
// sync/atomic function and the AST nodes of those atomic accesses
// (exempt from the plain-access pass).
func collectAtomicFields(pass *Pass) (map[*types.Var]atomicFieldUse, map[ast.Node]bool) {
	fields := map[*types.Var]atomicFieldUse{}
	exempt := map[ast.Node]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				switch target := un.X.(type) {
				case *ast.SelectorExpr: // atomic.AddInt64(&x.f, 1)
					if v := fieldVar(pass.Info, target); v != nil {
						fields[v] = atomicFieldUse{elemOnly: false}
						exempt[target] = true
					}
				case *ast.IndexExpr: // atomic.AddInt64(&x.f[i], 1)
					sel, ok := target.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if v := fieldVar(pass.Info, sel); v != nil {
						if u, seen := fields[v]; !seen || u.elemOnly {
							fields[v] = atomicFieldUse{elemOnly: true}
						}
						exempt[target] = true
						exempt[sel] = true
					}
				}
			}
			return true
		})
	}
	return fields, exempt
}

// isAtomicCall reports whether the call invokes a package-level
// function of sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// fieldVar resolves a selector to the struct field it reads, or nil.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return nil
	}
	return v
}

func checkAtomicMix(pass *Pass, fd *ast.FuncDecl, fields map[*types.Var]atomicFieldUse, exempt map[ast.Node]bool) {
	// Pass 1: receiver chains this function locks (see lockguard) —
	// "lt.mu" for lt.mu.Lock()/RLock() calls anywhere in the body.
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if base := baseExprString(sel.X); base != "" {
				locked[base] = true
			}
		}
		return true
	})

	// mutexGuards reports whether the function locks any mutex hanging
	// off the access's receiver chain — x.mu covers x.f, s.lt.mu covers
	// s.lt.counts.
	mutexGuards := func(base string) bool {
		for l := range locked {
			if l == base || strings.HasPrefix(l, base+".") {
				return true
			}
		}
		return false
	}

	report := func(pos ast.Node, base string, v *types.Var, how string) {
		pass.Reportf(pos.Pos(), "%s.%s is accessed via sync/atomic elsewhere in this package; this plain %s races with it (guard both with a mutex or make every access atomic)", base, v.Name(), how)
	}

	// Pass 2: plain accesses. Whole-field atomics flag every selector
	// access; element-only atomics flag indexed accesses and whole-field
	// writes but allow slice-header reads (len/cap/range/reslice).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if exempt[n] {
				return true
			}
			v := fieldVar(pass.Info, n)
			if v == nil {
				return true
			}
			u, tracked := fields[v]
			if !tracked || u.elemOnly {
				return true
			}
			base := baseExprString(n.X)
			if base == "" || mutexGuards(base) {
				return true
			}
			report(n, base, v, "access")
		case *ast.IndexExpr:
			if exempt[n] {
				return true
			}
			sel, ok := n.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldVar(pass.Info, sel)
			if v == nil {
				return true
			}
			u, tracked := fields[v]
			if !tracked || !u.elemOnly {
				return true // whole-field case already flagged at the selector
			}
			base := baseExprString(sel.X)
			if base == "" || mutexGuards(base) {
				return true
			}
			report(n, base, v, "element access")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v := fieldVar(pass.Info, sel)
				if v == nil {
					continue
				}
				u, tracked := fields[v]
				if !tracked || !u.elemOnly {
					continue // whole-field case already flagged at the selector
				}
				base := baseExprString(sel.X)
				if base == "" || mutexGuards(base) {
					continue
				}
				report(sel, base, v, "whole-field write")
			}
		}
		return true
	})
}
