package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc enforces the //perf:hot and //perf:noalloc annotation
// contracts at the AST/types level: inside an annotated function it
// flags the constructs that (may) heap-allocate — un-preallocated
// append, map and slice literals, &composite literals, new, make,
// closures, string<->[]byte conversions, and interface boxing at
// conversions and call arguments. //perf:hot tolerates the
// preallocation idiom (a make with explicit capacity and appends into
// it); //perf:noalloc flags every construct. The check is syntactic
// and deliberately stricter than the compiler's escape analysis
// (which internal/perfgate consults) — a construct the compiler proves
// stack-allocatable is still a finding here, silenced with a reasoned
// //lint:ok hotalloc directive so the proof is written down.
//
// HotAlloc also polices the annotation language itself: unknown
// //perf: verbs, contract verbs with trailing text or not attached to
// a function declaration, and malformed //perf:ok directives are all
// findings (stale annotations must not silently stop guarding).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation constructs inside //perf:hot///perf:noalloc " +
		"functions and malformed //perf: annotations",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		checkPerfAnnotations(pass, f)
		for _, fd := range enclosingFuncs(f) {
			contracts := perfContracts(fd)
			if contracts[perfHot] || contracts[perfNoAlloc] {
				checkAllocs(pass, fd, contracts[perfNoAlloc])
			}
		}
	}
}

// checkPerfAnnotations validates every //perf: directive in the file:
// verbs must be known, contract verbs must be bare and sit in a
// function declaration's doc comment, and //perf:ok needs a known
// check plus a reason.
func checkPerfAnnotations(pass *Pass, f *ast.File) {
	// The set of comments that form function doc groups.
	docComments := map[*ast.Comment]bool{}
	for _, fd := range enclosingFuncs(f) {
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				docComments[c] = true
			}
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parsePerfDirective(c)
			if !ok {
				continue
			}
			switch d.verb {
			case perfHot, perfNoAlloc, perfInline:
				if d.arg != "" {
					pass.Reportf(d.pos, "//perf:%s takes no argument (got %q)", d.verb, d.arg)
				}
				if !docComments[c] {
					pass.Reportf(d.pos, "stale //perf:%s: not attached to a function declaration", d.verb)
				}
			case perfOK:
				check, reason, _ := cutSpace(d.arg)
				if !perfOKChecks[check] {
					pass.Reportf(d.pos, "//perf:ok wants a check (escape or inline), got %q", check)
				} else if reason == "" {
					pass.Reportf(d.pos, "//perf:ok %s needs a reason: state why the flagged code is safe", check)
				}
			default:
				pass.Reportf(d.pos, "unknown //perf: directive %q (want hot, noalloc, inline or ok)", d.verb)
			}
		}
	}
}

// cutSpace splits s at the first run of spaces.
func cutSpace(s string) (head, tail string, found bool) {
	for i, r := range s {
		if r == ' ' || r == '\t' {
			head = s[:i]
			tail = s[i:]
			for len(tail) > 0 && (tail[0] == ' ' || tail[0] == '\t') {
				tail = tail[1:]
			}
			return head, tail, true
		}
	}
	return s, "", false
}

// checkAllocs walks one annotated function body. strict is true for
// //perf:noalloc (no preallocation exemption).
func checkAllocs(pass *Pass, fd *ast.FuncDecl, strict bool) {
	contract := perfHot
	if strict {
		contract = perfNoAlloc
	}
	prealloc := preallocatedSlices(pass, fd)
	// Map-index string conversions (m[string(b)]) are exempt: the
	// compiler elides the copy for direct map lookups, and the idiom is
	// exactly how an intern table avoids allocating on the hit path.
	exemptConv := mapIndexConversions(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal allocates in a //perf:%s function", contract)
			return false
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in a //perf:%s function", contract)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in a //perf:%s function", contract)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in a //perf:%s function", contract)
				}
			}
		case *ast.CallExpr:
			checkCallAlloc(pass, n, contract, strict, prealloc, exemptConv)
		}
		return true
	})
}

// checkCallAlloc classifies one call inside an annotated function.
func checkCallAlloc(pass *Pass, call *ast.CallExpr, contract string, strict bool, prealloc map[types.Object]bool, exemptConv map[*ast.CallExpr]bool) {
	switch fn := builtinName(pass.Info, call); fn {
	case "new":
		pass.Reportf(call.Pos(), "new allocates in a //perf:%s function", contract)
		return
	case "make":
		if t := pass.Info.TypeOf(call); t != nil && !strict && len(call.Args) == 3 {
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				return // preallocation idiom: make with explicit capacity in a hot function
			}
		}
		pass.Reportf(call.Pos(), "make allocates in a //perf:%s function", contract)
		return
	case "append":
		if !strict && len(call.Args) > 0 {
			if id, ok := call.Args[0].(*ast.Ident); ok && prealloc[objectOf(pass.Info, id)] {
				return // append into a slice preallocated in this function
			}
		}
		pass.Reportf(call.Pos(), "un-preallocated append may allocate in a //perf:%s function", contract)
		return
	case "":
	default:
		return // other builtins (len, cap, copy, delete, panic, ...) do not allocate
	}

	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, tv.Type, contract, exemptConv)
		return
	}
	checkCallBoxing(pass, call, contract)
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// checkConversion flags allocating conversions: string<->byte/rune
// slices and boxing into an interface type.
func checkConversion(pass *Pass, call *ast.CallExpr, target types.Type, contract string, exemptConv map[*ast.CallExpr]bool) {
	if len(call.Args) != 1 {
		return
	}
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isString(target) && isByteOrRuneSlice(src):
		if exemptConv[call] {
			return
		}
		pass.Reportf(call.Pos(), "[]byte->string conversion allocates in a //perf:%s function", contract)
	case isByteOrRuneSlice(target) && isString(src):
		pass.Reportf(call.Pos(), "string->[]byte conversion allocates in a //perf:%s function", contract)
	case types.IsInterface(target.Underlying()) && !types.IsInterface(src.Underlying()) && !isUntypedNil(src):
		pass.Reportf(call.Pos(), "conversion boxes %s into an interface in a //perf:%s function", src, contract)
	}
}

// checkCallBoxing flags non-interface arguments passed to interface
// parameters — each such argument may allocate its box.
func checkCallBoxing(pass *Pass, call *ast.CallExpr, contract string) {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if ok && sig.Params() != nil {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
				if call.Ellipsis.IsValid() {
					continue // s... passes the slice through, no per-element boxing
				}
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			at := pass.Info.TypeOf(arg)
			if at == nil || isUntypedNil(at) {
				continue
			}
			if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) {
				pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in a //perf:%s function", at, pt, contract)
			}
		}
	}
}

// preallocatedSlices collects locals bound by `x := make([]T, n, c)`
// (explicit capacity) anywhere in the function — the destinations the
// //perf:hot append exemption recognizes.
func preallocatedSlices(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || builtinName(pass.Info, call) != "make" || len(call.Args) != 3 {
				continue
			}
			if _, isSlice := pass.Info.TypeOf(call).Underlying().(*types.Slice); !isSlice {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objectOf(pass.Info, id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// mapIndexConversions collects string(b) conversions used directly as
// a map index.
func mapIndexConversions(pass *Pass, fd *ast.FuncDecl) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if _, isMap := pass.Info.TypeOf(ix.X).Underlying().(*types.Map); !isMap {
			return true
		}
		if call, ok := ix.Index.(*ast.CallExpr); ok {
			if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && isString(tv.Type) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
