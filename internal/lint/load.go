package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Unit is one parsed, type-checked package ready for Run.
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load loads the module packages matching patterns under dir, using
// the go toolchain to produce compiler export data for every
// dependency (`go list -json -export -deps`) and the standard
// library's gc importer to consume it. This is the in-process
// counterpart of the `go vet -vettool` protocol, used by the
// standalone driver's fixtures and the linttest runner; it needs no
// dependencies beyond the toolchain itself.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exportFile := make(map[string]string)
	var ordered []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		ordered = append(ordered, p)
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	// Every module package is type-checked from source in ONE shared
	// universe — dependencies first (`go list -deps` emits them in
	// dependency order), with the importer preferring the source-checked
	// package over its export data. This is what makes object identity
	// hold across package boundaries: the module analyzers match
	// *types.Func and *types.Var objects through the call graph, and a
	// package imported as export data would be a parallel universe whose
	// objects never compare equal, silently truncating reachability at
	// every package edge. Only out-of-module dependencies come from
	// export data.
	imp := &moduleImporter{base: gc, src: make(map[string]*types.Package)}
	var units []*Unit
	for _, p := range ordered {
		if p.Standard || p.Module == nil {
			continue
		}
		u, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles, "")
		if err != nil {
			return nil, err
		}
		imp.src[p.ImportPath] = u.Pkg
		if !p.DepOnly {
			units = append(units, u)
		}
	}
	return units, nil
}

// moduleImporter resolves module-internal imports to their
// source-checked packages and everything else through the gc export
// importer.
type moduleImporter struct {
	base types.Importer
	src  map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.src[path]; p != nil {
		return p, nil
	}
	return m.base.Import(path)
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string, goVersion string) (*Unit, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Unit{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
