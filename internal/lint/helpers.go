package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgPathHasSuffix reports whether path is exactly suffix or ends in
// "/"+suffix. Matching by suffix rather than full import path lets the
// analyzers recognize both the real module packages
// (github.com/ytcdn-sim/ytcdn/internal/stats) and the stand-in
// packages the testdata fixtures declare under their own module paths.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isStatsRNG reports whether t is (a pointer to) the stats.RNG stream
// type.
func isStatsRNG(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && pkgPathHasSuffix(obj.Pkg().Path(), "internal/stats")
}

// typeFromPkg reports whether t is declared in (or is an interface
// named name from) a package whose import path ends in pkgSuffix.
func typeFromPkg(t types.Type, pkgSuffix string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && pkgPathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// objectOf resolves an identifier to its object, following Uses then
// Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// baseExprString renders the receiver chain of a selector (everything
// left of the final field) as source text — "p", "h.inner" — for the
// textual base matching lockguard and rngshare use. Parens are
// stripped; anything non-trivial renders as "" and never matches.
func baseExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := baseExprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return baseExprString(e.X)
	case *ast.StarExpr:
		return baseExprString(e.X)
	}
	return ""
}

// enclosingFuncs returns every function declaration in the file, in
// order. Function literals are visited as part of their enclosing
// declaration.
func enclosingFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// within reports whether node n (by position) lies inside the span of
// outer.
func within(n, outer ast.Node) bool {
	return n.Pos() >= outer.Pos() && n.End() <= outer.End()
}

// isPkgFunc reports whether the call invokes the package-level
// function pkgSuffix.funcName (e.g. "internal/stats".NewRNG or
// "time".Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix, funcName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if fn.Name() != funcName || fn.Pkg() == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return pkgPathHasSuffix(fn.Pkg().Path(), pkgSuffix)
}

// methodName returns the called method's name and receiver type when
// call is a method call, or "", nil otherwise.
func methodName(info *types.Info, call *ast.CallExpr) (string, types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", nil
	}
	return fn.Name(), sig.Recv().Type()
}
