package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockGuard verifies `// guarded by <mutex>` field annotations: a
// struct field so annotated may only be read or written in functions
// that also lock the named mutex on the same receiver chain (x.F needs
// an x.mu.Lock or x.mu.RLock somewhere in the function). The check is
// intra-package and deliberately best-effort — it matches lock and
// access by the textual receiver chain, it does not prove ordering,
// and code that reaches a guarded field only through locking accessor
// methods is trivially clean because only direct selector accesses are
// examined. Composite-literal initialization (construction before the
// value is shared) is exempt. Contract-level escapes — registration
// phases that are single-threaded by convention, immutable-after-sort
// reads — are expressed with a reasoned //lint:ok directive.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "check that fields annotated `// guarded by <mutex>` are only " +
		"accessed in functions that lock that mutex",
	Run: runLockGuard,
}

// guardedByRe matches the annotation form only — a comment line that
// starts with "guarded by" — so prose mentioning guards in passing
// ("each guarded by its own once") does not create an annotation.
var guardedByRe = regexp.MustCompile(`(?m)^guarded by (\w+)`)

// guardedField records one annotated field and the mutex field name
// protecting it.
type guardedField struct {
	mutex      string
	structName string
}

func runLockGuard(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, fd := range enclosingFuncs(f) {
			checkFuncGuards(pass, fd, guards)
		}
	}
}

// collectGuards scans struct declarations for `// guarded by <mutex>`
// annotations on fields (line comment or doc comment) and resolves the
// annotated fields to their types.Var objects.
func collectGuards(pass *Pass) map[*types.Var]guardedField {
	guards := make(map[*types.Var]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardedField{mutex: mutex, structName: ts.Name.Name}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkFuncGuards(pass *Pass, fd *ast.FuncDecl, guards map[*types.Var]guardedField) {
	// Pass 1: the set of receiver chains this function locks, e.g.
	// "p.mu" for p.mu.Lock(), p.mu.RLock() or a defer of either.
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if base := baseExprString(sel.X); base != "" {
				locked[base] = true
			}
		}
		return true
	})

	// Pass 2: every direct selector access to a guarded field must have
	// a matching <base>.<mutex> lock in this function. Composite-literal
	// field keys are not selector expressions, so construction is
	// exempt by shape.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, ok := guards[v]
		if !ok {
			return true
		}
		base := baseExprString(sel.X)
		if base == "" {
			return true // unmatchable chain: best-effort, stay silent
		}
		if !locked[base+"."+g.mutex] {
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but this function never locks %s.%s (annotation on %s.%s)", base, v.Name(), g.mutex, base, g.mutex, g.structName, v.Name())
		}
		return true
	})
}
