package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/ytcdn-sim/ytcdn/internal/lint/callgraph"
)

// LockOrder builds a lock-acquisition graph over the whole module and
// reports two hazards lockguard's per-field view cannot see:
//
//   - acquisition-order cycles: one path locks A then B while another
//     locks B then A (directly, or through a callee that may acquire B
//     — the call graph supplies the transitive may-acquire sets), the
//     classic AB/BA deadlock;
//   - a lock taken but not released on every return path, checked by
//     abstract interpretation over the function's control flow (defers
//     count as covering every exit).
//
// Lock identity is the declared mutex object (*types.Var): a struct
// field identifies the lock class across all instances — conservative,
// since two instances never alias, but cycles between distinct fields
// are real hazards regardless — and a local variable identifies
// itself. Embedded sync.Mutex receivers (t.Lock() on a struct that
// embeds the mutex) are not resolved; name the field. Sequencing
// within a function is source-order, best-effort; function literals
// run on their own schedule and are skipped. Intentional
// hand-off patterns (a locked return transferring ownership) are
// expressed with a reasoned //lint:ok directive.
var LockOrder = &ModuleAnalyzer{
	Name: "lockorder",
	Doc: "flag lock-acquisition-order cycles (AB/BA deadlocks, transitively " +
		"through calls) and locks not released on every return path",
	Version: 1,
	Run:     runLockOrder,
}

func runLockOrder(p *ModulePass) {
	mayAcq := mayAcquireAll(p.Graph)
	lg := &lockGraph{adj: make(map[*types.Var]map[*types.Var]bool)}
	for _, n := range p.Graph.Nodes() {
		lockOrderWalk(n, mayAcq, lg)
	}
	lg.reportCycles(p)
	for _, n := range p.Graph.Nodes() {
		checkUnlockPaths(p, n)
	}
}

// lockVarOf resolves call to a (mutex variable, operation) pair when it
// is a Lock/RLock/Unlock/RUnlock on a sync.Mutex or sync.RWMutex
// reached through an identifier or a field chain.
func lockVarOf(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	v := varOf(info, sel.X)
	if v == nil || !isSyncLock(v.Type()) {
		return nil, ""
	}
	return v, op
}

// varOf resolves an identifier or field-selector chain to the variable
// object it denotes, or nil for anything more dynamic.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := unparenExpr(e).(type) {
	case *ast.Ident:
		v, _ := objectOf(info, e).(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		// Qualified package-level variable: pkg.Var.
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isSyncLock reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isSyncLock(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockSet is a set of mutex objects.
type lockSet map[*types.Var]bool

// mayAcquireAll computes, for every node, the set of mutexes the
// function may acquire directly or through any callee (goroutine
// launches excluded: a spawned goroutine's acquisitions are not
// ordered under the caller's held set).
func mayAcquireAll(g *callgraph.Graph) map[*callgraph.Node]lockSet {
	acq := make(map[*callgraph.Node]lockSet, len(g.Nodes()))
	for _, n := range g.Nodes() {
		s := lockSet{}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if v, op := lockVarOf(n.Info, call); v != nil && (op == "Lock" || op == "RLock") {
				s[v] = true
			}
			return true
		})
		acq[n] = s
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			s := acq[n]
			for _, e := range n.Calls {
				if e.Kind == callgraph.Go {
					continue
				}
				for v := range acq[e.Callee] {
					if !s[v] {
						s[v] = true
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// lockGraph is the acquisition-order graph: an edge a→b means some
// path acquires b while holding a.
type lockGraph struct {
	adj   map[*types.Var]map[*types.Var]bool
	edges []lockGraphEdge // insertion order, for deterministic reporting
}

type lockGraphEdge struct {
	from, to *types.Var
	site     token.Pos
	via      string // callee short name for interprocedural edges, "" for direct
}

func (lg *lockGraph) add(from, to *types.Var, site token.Pos, via string) {
	if lg.adj[from] == nil {
		lg.adj[from] = make(map[*types.Var]bool)
	}
	if lg.adj[from][to] {
		return
	}
	lg.adj[from][to] = true
	lg.edges = append(lg.edges, lockGraphEdge{from: from, to: to, site: site, via: via})
}

// reaches reports whether to can reach from through the order graph.
func (lg *lockGraph) reaches(from, to *types.Var) bool {
	seen := lockSet{}
	var dfs func(v *types.Var) bool
	dfs = func(v *types.Var) bool {
		if v == to {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		for next := range lg.adj[v] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// reportCycles flags every edge that participates in a cycle, at its
// first recorded site. Both directions of an AB/BA pair are reported,
// so each mis-ordered site gets its own finding (and its own
// suppression, if one side is the sanctioned order).
func (lg *lockGraph) reportCycles(p *ModulePass) {
	for _, e := range lg.edges {
		if !lg.reaches(e.to, e.from) {
			continue
		}
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (through call to %s)", e.via)
		}
		p.Reportf(e.site, "lock order cycle: %s acquired while holding %s%s, but another path acquires them in the opposite order, which can deadlock; pick one order and document it",
			lockName(p.Fset, e.to), lockName(p.Fset, e.from), via)
	}
}

// lockName renders a mutex variable with its declaration site, which
// disambiguates same-named fields across structs ("mu(writer.go:14)").
func lockName(fset *token.FileSet, v *types.Var) string {
	pos := fset.Position(v.Pos())
	name := pos.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s(%s:%d)", v.Name(), name, pos.Line)
}

// lockOrderWalk walks one function in source order, maintaining the
// held set, recording direct order edges at each acquisition and
// interprocedural edges at each call whose callee may acquire.
// Function literals are skipped: a closure runs on its own schedule,
// and its body gets no held-set context from the enclosing walk.
func lockOrderWalk(n *callgraph.Node, mayAcq map[*callgraph.Node]lockSet, lg *lockGraph) {
	deferred := deferredCalls(n.Decl.Body)
	siteEdges := make(map[token.Pos][]callgraph.Edge)
	for _, e := range n.Calls {
		if e.Kind == callgraph.Call || e.Kind == callgraph.Dynamic {
			siteEdges[e.Site] = append(siteEdges[e.Site], e)
		}
	}
	var held []*types.Var
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, op := lockVarOf(n.Info, call); v != nil {
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					if h != v {
						lg.add(h, v, call.Pos(), "")
					}
				}
				held = appendHeld(held, v)
			case "Unlock", "RUnlock":
				if !deferred[call] { // a deferred unlock releases at return, not here
					held = removeHeld(held, v)
				}
			}
			return true
		}
		for _, e := range siteEdges[call.Pos()] {
			for v := range mayAcq[e.Callee] {
				for _, h := range held {
					if h != v {
						lg.add(h, v, call.Pos(), callgraph.ShortName(e.Callee.Func))
					}
				}
			}
		}
		return true
	})
}

func appendHeld(held []*types.Var, v *types.Var) []*types.Var {
	for _, h := range held {
		if h == v {
			return held
		}
	}
	return append(held, v)
}

func removeHeld(held []*types.Var, v *types.Var) []*types.Var {
	out := held[:0]
	for _, h := range held {
		if h != v {
			out = append(out, h)
		}
	}
	return out
}

// deferredCalls collects the call expressions that are defer operands.
func deferredCalls(body ast.Node) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if d, ok := x.(*ast.DeferStmt); ok {
			out[d.Call] = true
		}
		return true
	})
	return out
}

// checkUnlockPaths runs the abstract interpreter over one function and
// reports every mutex that some return path leaves locked, at its
// acquisition site. A deferred unlock anywhere in the function covers
// all exits (conservative in the no-false-positive direction: a
// conditional defer still counts).
func checkUnlockPaths(p *ModulePass, n *callgraph.Node) {
	flow := newLockFlow(n.Info, n.Decl.Body)
	exits, ok := flow.run(n.Decl.Body)
	if !ok {
		return // goto or state explosion: stay silent rather than guess
	}
	reported := lockSet{}
	for _, exit := range exits {
		for v := range exit {
			if flow.deferredUnlock[v] || reported[v] {
				continue
			}
			reported[v] = true
			site, okSite := flow.lockSite[v]
			if !okSite {
				continue
			}
			p.Reportf(site, "%s is locked here but not released on every return path; unlock on each exit or defer the unlock", lockName(p.Fset, v))
		}
	}
}
