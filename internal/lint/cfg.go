package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockFlow is a small abstract interpreter over one function body for
// the lockorder unlock-on-all-paths check. The abstract state is a set
// of locksets: each lockset is one possible combination of mutexes
// held (acquired non-deferred, not yet released) at a program point.
// Branches union their outgoing states, loops contribute their
// zero-iteration and one-iteration states plus collected break states,
// and every return statement (plus the implicit return at the end of
// the body) snapshots the current states as exits. goto and label-
// targeted branches abort the analysis for the function — dropping to
// silence rather than guessing keeps the check free of control-flow
// false positives.
type lockFlow struct {
	info *types.Info
	// deferredUnlock marks mutexes with a `defer x.Unlock()` anywhere in
	// the function; they are considered released on every exit.
	deferredUnlock lockSet
	// lockSite records the first non-deferred acquisition site per
	// mutex, where findings are reported.
	lockSite map[*types.Var]token.Pos
	exits    []lockSet
	// breaks collects states reaching a break, per enclosing
	// breakable statement (loop, switch, select).
	breaks [][]lockSet
	bailed bool
}

// maxLockStates bounds the state-set size; functions whose branching
// exceeds it are skipped (bailed) instead of analyzed partially.
const maxLockStates = 64

func newLockFlow(info *types.Info, body ast.Node) *lockFlow {
	f := &lockFlow{
		info:           info,
		deferredUnlock: lockSet{},
		lockSite:       make(map[*types.Var]token.Pos),
	}
	ast.Inspect(body, func(x ast.Node) bool {
		d, ok := x.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if v, op := lockVarOf(info, d.Call); v != nil && (op == "Unlock" || op == "RUnlock") {
			f.deferredUnlock[v] = true
		}
		return true
	})
	return f
}

// run interprets body and returns the exit states; ok is false when
// the function was too complex to analyze.
func (f *lockFlow) run(body *ast.BlockStmt) ([]lockSet, bool) {
	out := f.stmts(body.List, []lockSet{{}})
	if f.bailed {
		return nil, false
	}
	f.exits = append(f.exits, out...) // implicit return
	return f.exits, true
}

func (f *lockFlow) stmts(list []ast.Stmt, in []lockSet) []lockSet {
	for _, s := range list {
		if f.bailed {
			return nil
		}
		in = f.stmt(s, in)
	}
	return in
}

func (f *lockFlow) stmt(s ast.Stmt, in []lockSet) []lockSet {
	if f.bailed {
		return nil
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return f.stmts(s.List, in)

	case *ast.ExprStmt:
		return f.exprStmt(s, in)

	case *ast.IfStmt:
		if s.Init != nil {
			in = f.stmt(s.Init, in)
		}
		then := f.stmts(s.Body.List, in)
		els := in
		if s.Else != nil {
			els = f.stmt(s.Else, in)
		}
		return f.union(then, els)

	case *ast.ForStmt:
		if s.Init != nil {
			in = f.stmt(s.Init, in)
		}
		f.pushBreaks()
		once := f.stmts(s.Body.List, in)
		brk := f.popBreaks()
		if s.Cond == nil {
			// `for {}`: the only ways past the loop are break states.
			return f.union(brk, nil)
		}
		return f.union(f.union(in, once), brk)

	case *ast.RangeStmt:
		f.pushBreaks()
		once := f.stmts(s.Body.List, in)
		brk := f.popBreaks()
		return f.union(f.union(in, once), brk)

	case *ast.SwitchStmt:
		return f.switchLike(s.Init, s.Body, in, hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		return f.switchLike(s.Init, s.Body, in, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		// A select with no default blocks until a clause fires, so the
		// incoming state does not flow around it.
		return f.switchLike(nil, s.Body, in, hasDefaultClause(s.Body))

	case *ast.ReturnStmt:
		f.exits = append(f.exits, in...)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				f.bailed = true
				return nil
			}
			if n := len(f.breaks); n > 0 {
				f.breaks[n-1] = append(f.breaks[n-1], in...)
			}
			return nil
		case token.CONTINUE:
			return nil // back edge; the body union already covers it
		case token.GOTO:
			f.bailed = true
			return nil
		case token.FALLTHROUGH:
			return in
		}
		return in

	case *ast.LabeledStmt:
		return f.stmt(s.Stmt, in)

	case *ast.DeferStmt, *ast.GoStmt:
		return in // handled by the defer pre-pass / out of scope

	default:
		return in
	}
}

// exprStmt applies a lock operation or terminates the path on panic.
func (f *lockFlow) exprStmt(s *ast.ExprStmt, in []lockSet) []lockSet {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return in
	}
	if id, ok := unparenExpr(call.Fun).(*ast.Ident); ok {
		if b, ok := f.info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return nil // deferred unlocks run during panic unwinding
		}
	}
	v, op := lockVarOf(f.info, call)
	if v == nil {
		return in
	}
	switch op {
	case "Lock", "RLock":
		if _, seen := f.lockSite[v]; !seen {
			f.lockSite[v] = call.Pos()
		}
		return f.mapStates(in, func(s lockSet) { s[v] = true })
	case "Unlock", "RUnlock":
		return f.mapStates(in, func(s lockSet) { delete(s, v) })
	}
	return in
}

// switchLike unions the clause bodies of a switch/type-switch/select;
// without a default clause the incoming states pass around it too
// (for select that would be wrong, so the caller decides).
func (f *lockFlow) switchLike(init ast.Stmt, body *ast.BlockStmt, in []lockSet, hasDefault bool) []lockSet {
	if init != nil {
		in = f.stmt(init, in)
	}
	f.pushBreaks()
	var out []lockSet
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		out = f.union(out, f.stmts(list, in))
	}
	brk := f.popBreaks()
	out = f.union(out, brk)
	if !hasDefault {
		out = f.union(out, in)
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

func (f *lockFlow) pushBreaks() { f.breaks = append(f.breaks, nil) }

func (f *lockFlow) popBreaks() []lockSet {
	n := len(f.breaks)
	out := f.breaks[n-1]
	f.breaks = f.breaks[:n-1]
	return out
}

// mapStates applies fn to a copy of every state.
func (f *lockFlow) mapStates(in []lockSet, fn func(lockSet)) []lockSet {
	out := make([]lockSet, len(in))
	for i, s := range in {
		c := make(lockSet, len(s))
		for v := range s {
			c[v] = true
		}
		fn(c)
		out[i] = c
	}
	return out
}

// union concatenates two state sets, dedupes them, and enforces the
// size bound.
func (f *lockFlow) union(a, b []lockSet) []lockSet {
	merged := append(append([]lockSet{}, a...), b...)
	seen := make(map[string]bool, len(merged))
	out := merged[:0]
	for _, s := range merged {
		k := stateKey(s)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	if len(out) > maxLockStates {
		f.bailed = true
		return nil
	}
	return out
}

func stateKey(s lockSet) string {
	keys := make([]string, 0, len(s))
	for v := range s {
		keys = append(keys, fmt.Sprint(int(v.Pos())))
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}
