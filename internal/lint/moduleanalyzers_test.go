package lint_test

import (
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/lint"
	"github.com/ytcdn-sim/ytcdn/internal/lint/linttest"
)

// The module-analyzer fixtures are whole modules, not per-package
// directories: the interprocedural analyzers need the full call graph
// (interface dispatch in one package, implementation in another) to
// reproduce the shapes they exist to catch.

func TestDetReachFixture(t *testing.T) {
	linttest.RunModule(t, "testdata/detreach", lint.DetReach, "./...")
}

func TestLockOrderFixture(t *testing.T) {
	linttest.RunModule(t, "testdata/lockorder", lint.LockOrder, "./...")
}

func TestGoLeakFixture(t *testing.T) {
	linttest.RunModule(t, "testdata/goleak", lint.GoLeak, "./...")
}
