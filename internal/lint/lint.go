// Package lint is the repo's static layer: a small, dependency-free
// analysis framework (in the spirit of golang.org/x/tools/go/analysis,
// which this module deliberately does not depend on) plus the seven
// analyzers that encode the invariants every parity suite in this
// repository leans on — map-iteration determinism, RNG purity, RNG
// stream ownership, mutex guard discipline, the observability plane
// split, and the hot-path performance contracts (allocation discipline
// in //perf:-annotated functions, no mixed atomic/plain field access).
//
// The framework runs one package at a time over parsed, type-checked
// source. It is driven two ways: by cmd/ytcdn-lint speaking the
// `go vet -vettool` unit-checker protocol (see unitchecker.go), and by
// the in-process loader used by the analysistest-style fixture tests
// (see load.go and the linttest package).
//
// Findings are suppressed line by line with
//
//	//lint:ok <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory: a suppression without one is itself reported, so every
// escape hatch in the tree documents why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ok
	// suppression directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Version is bumped on any behavior change, so -json artifacts are
	// diffable across analyzer revisions. The zero value renders as 1.
	Version int
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// AnalyzerVersions maps every registered analyzer (package-level and
// module-level) to its "name/vN" version tag, the value the -json
// analyzer_version field carries.
func AnalyzerVersions() map[string]string {
	out := make(map[string]string)
	tag := func(name string, v int) {
		if v == 0 {
			v = 1
		}
		out[name] = fmt.Sprintf("%s/v%d", name, v)
	}
	for _, a := range Analyzers() {
		tag(a.Name, a.Version)
	}
	for _, a := range ModuleAnalyzers() {
		tag(a.Name, a.Version)
	}
	return out
}

// Pass carries one package's parsed and type-checked source to an
// analyzer and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned in the file set of the pass
// that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos sits in a _test.go file. All
// analyzers skip test files: the dynamic suites already execute tests
// under the race detector and with fixed seeds, and test-local
// shortcuts (wall-clock timing in benchmarks, ad-hoc RNGs) are part of
// their job. The static layer polices the production paths.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzers returns the full suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetMap, RNGPurity, RNGShare, LockGuard, ObsPlane, HotAlloc, AtomicMix}
}

// suppressionRe matches a //lint:ok directive. Group 1 is the analyzer
// name, group 2 the (possibly empty) reason.
var suppressionRe = regexp.MustCompile(`//lint:ok\s+([A-Za-z0-9_-]+)\s*(.*)`)

// suppression is one parsed //lint:ok directive.
type suppression struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// collectSuppressions parses every //lint:ok directive in the files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressionRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, suppression{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					line:     fset.Position(c.Pos()).Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// SuppressedDiagnostic pairs a finding with the reasoned //lint:ok
// directive that silenced it, for machine-readable output.
type SuppressedDiagnostic struct {
	Diagnostic
	Reason string
}

// Run executes the analyzers over one package and returns the
// surviving diagnostics sorted by position. Suppressions are applied
// here: a finding whose line (or the line above it) carries a
// //lint:ok directive naming the same analyzer is dropped, and a
// directive naming an analyzer in this run but missing its reason is
// reported as a finding of that analyzer.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	kept, _ := RunAll(fset, files, pkg, info, analyzers)
	return kept
}

// RunAll is Run plus the findings that reasoned directives silenced —
// the -json output reports both, so downstream tooling can audit the
// suppression inventory as well as the live findings.
func RunAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, []SuppressedDiagnostic) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}

	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	return finishRun(fset, files, running, diags)
}

// finishRun applies the suppression protocol shared by the per-package
// and module paths: report reasonless directives naming a running
// analyzer, silence findings covered by reasoned directives, and sort
// both lists by position.
func finishRun(fset *token.FileSet, files []*ast.File, running map[string]bool, diags []Diagnostic) ([]Diagnostic, []SuppressedDiagnostic) {
	sups := collectSuppressions(fset, files)
	for _, s := range sups {
		if running[s.analyzer] && s.reason == "" {
			diags = append(diags, Diagnostic{
				Pos:      s.pos,
				Analyzer: s.analyzer,
				Message:  fmt.Sprintf("//lint:ok %s needs a reason: state why the flagged code is safe", s.analyzer),
			})
		}
	}

	kept := diags[:0]
	var silenced []SuppressedDiagnostic
	for _, d := range diags {
		if reason, ok := suppressedBy(fset, sups, d); ok {
			silenced = append(silenced, SuppressedDiagnostic{Diagnostic: d, Reason: reason})
		} else {
			kept = append(kept, d)
		}
	}
	byPos := func(a, b Diagnostic) bool {
		pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		return a.Message < b.Message
	}
	sort.Slice(kept, func(i, j int) bool { return byPos(kept[i], kept[j]) })
	sort.Slice(silenced, func(i, j int) bool { return byPos(silenced[i].Diagnostic, silenced[j].Diagnostic) })
	return kept, silenced
}

// suppressedBy returns the reason of the reasoned directive covering d
// — on its own line or the line directly above — if any.
func suppressedBy(fset *token.FileSet, sups []suppression, d Diagnostic) (string, bool) {
	pos := fset.Position(d.Pos)
	for _, s := range sups {
		if s.analyzer != d.Analyzer || s.reason == "" {
			continue
		}
		if fset.Position(s.pos).Filename != pos.Filename {
			continue
		}
		if s.line == pos.Line || s.line == pos.Line-1 {
			return s.reason, true
		}
	}
	return "", false
}
