package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap flags `range` statements over maps whose iteration order can
// leak into output: appending to a slice that the function never
// sorts afterwards, writing to a capture sink (trace emission order is
// pinned by the parity goldens), and accumulating floats (addition is
// not associative, so the sum depends on iteration order at ulp
// level). Map-order nondeterminism is the canonical way to silently
// break the repo's bit-identical parity claims, because Go randomizes
// the order on every run.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc: "flag map iterations whose order feeds order-sensitive output " +
		"(unsorted accumulation, capture-sink writes, float sums)",
	Run: runDetMap,
}

func runDetMap(pass *Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, fd := range enclosingFuncs(f) {
			forEachMapRangeIssue(pass.Info, fd, pass.Reportf)
		}
	}
}

// forEachMapRangeIssue runs the order-sensitivity checks over every
// map-range in fd, emitting findings through report. It is shared by
// detmap (per package, every function) and detreach (whole module,
// functions reachable from the deterministic plane).
func forEachMapRangeIssue(info *types.Info, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(info, fd, rs, report)
		return true
	})
}

func checkMapRangeBody(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, report func(token.Pos, string, ...any)) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(info, fd, rs, n, report)
		case *ast.CallExpr:
			if name, recv := methodName(info, n); name == "Record" && recv != nil && typeFromPkg(recv, "internal/capture") {
				report(n.Pos(), "capture-sink write inside range over map: emission order becomes nondeterministic; iterate keys in sorted order")
			}
		}
		return true
	})
}

func checkMapRangeAssign(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	if !outerTarget(info, rs, lhs) {
		return
	}
	target := types.ExprString(lhs)

	// x = append(x, ...) with no later sort of x in this function.
	if as.Tok == token.ASSIGN {
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) &&
			len(call.Args) > 0 && types.ExprString(call.Args[0]) == target {
			if !sortedAfter(fd, rs, target) {
				report(as.Pos(), "append to %s under range over map without a later sort in this function: element order is nondeterministic; sort the result or iterate keys in sorted order", target)
			}
			return
		}
	}

	// Float accumulation: x += v, x -= v, or x = x + v.
	if isFloat(info.TypeOf(lhs)) {
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			report(as.Pos(), "float accumulation into %s in map iteration order: addition is not associative, so the result depends on the random order; accumulate over sorted keys", target)
		case token.ASSIGN:
			if be, ok := rhs.(*ast.BinaryExpr); ok && (be.Op == token.ADD || be.Op == token.SUB) &&
				types.ExprString(be.X) == target {
				report(as.Pos(), "float accumulation into %s in map iteration order: addition is not associative, so the result depends on the random order; accumulate over sorted keys", target)
			}
		}
	}
}

// outerTarget reports whether the assignment target lives outside the
// range statement: an identifier (or the root of a selector chain)
// declared before the loop. Loop-local accumulators reset every
// iteration and carry no cross-iteration order; keyed writes (m2[k] =
// ...) are order-independent.
func outerTarget(info *types.Info, rs *ast.RangeStmt, lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := objectOf(info, lhs)
		return obj != nil && !(obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End())
	case *ast.SelectorExpr:
		// Walk to the root of the chain: s.field is loop-local when s
		// is. An unresolvable root (method call result) counts as
		// outer.
		root := lhs.X
		for {
			switch r := root.(type) {
			case *ast.SelectorExpr:
				root = r.X
				continue
			case *ast.ParenExpr:
				root = r.X
				continue
			case *ast.Ident:
				obj := objectOf(info, r)
				return obj == nil || !(obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End())
			}
			return true
		}
	}
	return false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortNames are the sort entry points accepted as restoring
// determinism when the accumulated slice is passed to one of them.
var sortNames = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether, after the range statement, the function
// passes target to a sort.* or slices.Sort* call (or target itself
// receives a .Sort() style method call).
func sortedAfter(fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortNames[sel.Sel.Name] {
			return true
		}
		// sort.X(target, ...) / slices.X(target, ...)
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
				return false
			}
		}
		// target.Sort() and friends.
		if types.ExprString(sel.X) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
