package lint

import (
	"go/ast"
	"strconv"
)

// obsPlaneCoreScope lists the deterministic core packages: the ones
// whose event execution must be bit-identical with metrics on or off.
// They may record into the sim-time instruments of internal/obs, but
// they must not reach the wall-clock plane — not even indirectly
// through an observability helper.
var obsPlaneCoreScope = []string{
	"internal/cdn",
	"internal/core",
	"internal/des",
	"internal/workload",
}

// obsPlaneWallPkgs lists the wall-clock-plane packages the core is
// forbidden to import.
var obsPlaneWallPkgs = []string{
	"internal/obs/profile",
	"internal/obs/obshttp",
	"internal/obscli",
}

// ObsPlane enforces the two-plane observability split. rngpurity
// already bans lexical time.Now/Since/Until inside the deterministic
// core; obsplane closes the remaining routes around it:
//
//   - the deterministic core packages (internal/{cdn,core,des,
//     workload}) may not import the wall-clock plane (obs/profile,
//     obs/obshttp, obscli), so a core package cannot acquire a clock
//     by calling through an observability helper; and
//   - internal/obs itself — the instrument package the core records
//     into — may not touch the wall clock, so enabling metrics cannot
//     smuggle wall-clock reads into event execution.
//
// Together with rngpurity this makes the zero-perturbation guarantee
// structural: instruments reachable from the core are keyed on sim
// time and event counts only.
var ObsPlane = &Analyzer{
	Name: "obsplane",
	Doc: "keep the deterministic core off the wall-clock observability " +
		"plane: no obs/profile, obs/obshttp or obscli imports in core " +
		"packages, and no wall clock inside internal/obs",
	Run: runObsPlane,
}

func runObsPlane(pass *Pass) {
	path := pass.Pkg.Path()
	inCore := false
	for _, s := range obsPlaneCoreScope {
		if pkgPathHasSuffix(path, s) {
			inCore = true
			break
		}
	}
	isObsRoot := pkgPathHasSuffix(path, "internal/obs")
	if !inCore && !isObsRoot {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if inCore {
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				for _, wall := range obsPlaneWallPkgs {
					if pkgPathHasSuffix(ipath, wall) {
						pass.Reportf(imp.Pos(), "import of %s in a deterministic core package: the wall-clock observability plane is harness/cmd-only; record into sim-time instruments (internal/obs) instead", ipath)
					}
				}
			}
		}
		if isObsRoot {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, fn := range []string{"Now", "Since", "Until"} {
					if isPkgFunc(pass.Info, call, "time", fn) {
						pass.Reportf(call.Pos(), "time.%s in internal/obs: the deterministic-plane instrument package must stay wall-clock-free; wall-clock metrics belong in obs/profile", fn)
					}
				}
				return true
			})
		}
	}
}
