package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
)

// vetConfig mirrors the JSON configuration `go vet` writes for each
// compilation unit when driving an external -vettool. The field set is
// the stable contract cmd/go has used since Go 1.12 (the same one
// golang.org/x/tools/go/analysis/unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Exit codes of the unit-checker protocol: 0 clean, 1 tool/typecheck
// failure, 2 diagnostics reported (go vet treats any nonzero exit as a
// finding and relays stderr).
const (
	ExitClean       = 0
	ExitError       = 1
	ExitDiagnostics = 2
)

// RunVetUnit analyzes the single compilation unit described by the
// go vet config file at cfgPath and returns the process exit code.
// Diagnostics and errors are printed to stderr — as position-prefixed
// text, or as one JSON record per line when jsonOut is set (go vet
// relays a vettool's stderr verbatim, so JSONL survives the driver
// where a single document would be interleaved across units).
// Packages outside any module (the standard library and
// toolchain-internal dependencies go vet also schedules) are skipped:
// the suite encodes this repo's invariants, not Go's.
func RunVetUnit(cfgPath string, analyzers []*Analyzer, stderr io.Writer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "ytcdn-lint: %v\n", err)
		return ExitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "ytcdn-lint: parsing %s: %v\n", cfgPath, err)
		return ExitError
	}

	// The facts file must exist for cmd/go to cache the result. The
	// suite is intra-package and passes no facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "ytcdn-lint: %v\n", err)
			return ExitError
		}
	}
	if cfg.ModulePath == "" || cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return ExitClean
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	resolver := mappedImporter{imp: imp, importMap: cfg.ImportMap}

	unit, err := checkPackage(fset, resolver, cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return ExitClean
		}
		fmt.Fprintf(stderr, "ytcdn-lint: %v\n", err)
		return ExitError
	}

	diags, silenced := RunAll(unit.Fset, unit.Files, unit.Pkg, unit.Info, analyzers)
	if jsonOut {
		enc := json.NewEncoder(stderr)
		for _, f := range FindingsJSON(unit.Fset, diags, silenced) {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(stderr, "ytcdn-lint: %v\n", err)
				return ExitError
			}
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return ExitDiagnostics
	}
	return ExitClean
}

// mappedImporter applies the config's ImportMap (source import path →
// canonical package path) before delegating to the gc importer.
type mappedImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}
