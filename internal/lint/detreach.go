package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/ytcdn-sim/ytcdn/internal/lint/callgraph"
)

// DetReach is the interprocedural extension of rngpurity and detmap:
// starting from the deterministic-plane entry points — the simulator's
// session intake, the DES engine loop, every SelectionPolicy
// implementation, and the analysis-layer iterator aggregators — every
// function reachable through the call graph must be determinism-pure.
// A wall-clock read or ambient-RNG call three frames below a policy
// method breaks bit-identical replay just as surely as one written
// directly into it, and the per-package analyzers cannot see across
// that boundary. Each finding carries the call-graph path from the
// entry point to the offending site, so the reader can judge whether
// the edge is real or a CHA over-approximation (and, if the latter,
// suppress it with a reason saying so).
//
// The reachable set's boundary — every call that leaves the module —
// is pinned in testdata/detreach.golden; see DetReachFrontier.
var DetReach = &ModuleAnalyzer{
	Name: "detreach",
	Doc: "require every function reachable from a deterministic-plane entry " +
		"point to be determinism-pure (no transitive wall clock, ambient RNG, " +
		"unforked RNG construction, or order-sensitive map iteration)",
	Version: 1,
	Run:     runDetReach,
}

// detReachEntryPoints documents the root set in one place; the logic
// lives in detReachRoots. Package matching is by import-path suffix so
// the fixture modules' stand-in packages participate.
//
//	(*internal/cdn.Simulator).SubmitSession  — session intake, runs the redirection chain
//	(*internal/des.Engine).Run               — the event loop itself
//	ResolveDNS / ServeOrRedirect             — on every type implementing internal/core.SelectionPolicy
//	internal/analysis.*Iter, StreamSessions  — the trace aggregators behind the parity goldens

// runDetReach reports every determinism-impure fact in functions
// reachable from the entry points, with the BFS path that reaches them.
func runDetReach(p *ModulePass) {
	roots := detReachRoots(p.Units, p.Graph)
	parents := p.Graph.ReachableFrom(roots)
	for _, n := range p.Graph.Nodes() {
		if _, ok := parents[n]; !ok {
			continue
		}
		if statsExempt(n) {
			continue
		}
		facts := detReachFacts(n)
		if len(facts) == 0 {
			continue
		}
		path := detReachPath(parents, n)
		for _, f := range facts {
			p.Reportf(f.pos, "%s; deterministic path: %s", f.what, path)
		}
	}
}

// statsExempt reports whether n lives in internal/stats, the sanctioned
// wrapper around math/rand: its internals are where the module's
// randomness is supposed to live, fed only by the study seed.
func statsExempt(n *callgraph.Node) bool {
	return n.Func.Pkg() != nil && pkgPathHasSuffix(n.Func.Pkg().Path(), "internal/stats")
}

// detReachRoots selects the deterministic-plane entry points from the
// graph. The result is sorted by node name because g.Nodes() is.
func detReachRoots(units []*Unit, g *callgraph.Graph) []*callgraph.Node {
	ifaces := policyInterfaces(units)
	var roots []*callgraph.Node
	for _, n := range g.Nodes() {
		fn := n.Func
		pkg := fn.Pkg()
		if pkg == nil {
			continue
		}
		recv := fn.Type().(*types.Signature).Recv()
		switch {
		case recv != nil && fn.Name() == "SubmitSession" &&
			recvNamed(recv) == "Simulator" && pkgPathHasSuffix(pkg.Path(), "internal/cdn"):
			roots = append(roots, n)
		case recv != nil && fn.Name() == "Run" &&
			recvNamed(recv) == "Engine" && pkgPathHasSuffix(pkg.Path(), "internal/des"):
			roots = append(roots, n)
		case recv != nil && (fn.Name() == "ResolveDNS" || fn.Name() == "ServeOrRedirect") &&
			implementsAny(recv.Type(), ifaces):
			roots = append(roots, n)
		case recv == nil && pkgPathHasSuffix(pkg.Path(), "internal/analysis") &&
			(strings.HasSuffix(fn.Name(), "Iter") || fn.Name() == "StreamSessions"):
			roots = append(roots, n)
		}
	}
	return roots
}

// policyInterfaces finds SelectionPolicy in every loaded internal/core
// package (the real one, plus any fixture stand-in).
func policyInterfaces(units []*Unit) []*types.Interface {
	var out []*types.Interface
	for _, u := range units {
		if !pkgPathHasSuffix(u.Pkg.Path(), "internal/core") {
			continue
		}
		tn, ok := u.Pkg.Scope().Lookup("SelectionPolicy").(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			out = append(out, iface)
		}
	}
	return out
}

func recvNamed(recv *types.Var) string {
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func implementsAny(t types.Type, ifaces []*types.Interface) bool {
	for _, iface := range ifaces {
		if types.Implements(t, iface) {
			return true
		}
	}
	return false
}

// detFact is one determinism-impure fact inside a reachable function.
type detFact struct {
	pos  token.Pos
	what string
}

// detReachFacts collects the impure facts of a single node: wall-clock
// and ambient-RNG calls leaving the module, unforked stats.NewRNG
// construction, and order-sensitive map iteration (the detmap checks,
// re-run here because the deterministic plane is exactly where they
// are load-bearing).
func detReachFacts(n *callgraph.Node) []detFact {
	var out []detFact
	for _, e := range n.External {
		fn := e.Func
		if fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				out = append(out, detFact{e.Site, fmt.Sprintf("wall clock on the deterministic plane: time.%s", fn.Name())})
			}
		case "math/rand", "math/rand/v2":
			out = append(out, detFact{e.Site, fmt.Sprintf("ambient RNG on the deterministic plane: %s.%s", fn.Pkg().Path(), fn.Name())})
		case "crypto/rand":
			out = append(out, detFact{e.Site, fmt.Sprintf("crypto/rand on the deterministic plane: crypto/rand.%s is never reproducible", fn.Name())})
		}
	}
	for _, e := range n.Calls {
		cf := e.Callee.Func
		if cf.Name() == "NewRNG" && cf.Pkg() != nil && pkgPathHasSuffix(cf.Pkg().Path(), "internal/stats") {
			out = append(out, detFact{e.Site, "unforked RNG construction on the deterministic plane: stats.NewRNG; derive child streams with Fork or ForkIndexed"})
		}
	}
	forEachMapRangeIssue(n.Info, n.Decl, func(pos token.Pos, format string, args ...any) {
		out = append(out, detFact{pos, "map-order: " + fmt.Sprintf(format, args...)})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].what < out[j].what
	})
	return out
}

// detReachPath renders the BFS path entry point → node with short
// names: "(*cdn.Simulator).SubmitSession -> cdn.pickServer -> ...".
func detReachPath(parents map[*callgraph.Node]*callgraph.Node, n *callgraph.Node) string {
	nodes := callgraph.PathFrom(parents, n)
	parts := make([]string, len(nodes))
	for i, pn := range nodes {
		parts[i] = callgraph.ShortName(pn.Func)
	}
	return strings.Join(parts, " -> ")
}

// DetReachFrontier renders the purity frontier of the loaded module:
// the entry points, every module function reachable from them, and the
// sorted set of external (out-of-module) calls the reachable set
// makes. The render is position-free — names only, module path prefix
// trimmed — so unrelated edits do not churn it. The frontier for this
// repository is pinned in internal/lint/testdata/detreach.golden and
// enforced by TestDetReachFrontierGolden; regenerate with
// DETREACH_REGEN=1 after an intentional change, the same contract
// perfgate uses for performance envelopes.
func DetReachFrontier(units []*Unit) string {
	g := BuildGraph(units)
	roots := detReachRoots(units, g)
	parents := g.ReachableFrom(roots)
	trim := moduleTrimmer(units)

	var b strings.Builder
	b.WriteString("ytcdn detreach frontier v1\n")
	b.WriteString("\nentrypoints:\n")
	for _, r := range roots {
		b.WriteString("  " + trim(r.Name) + "\n")
	}

	b.WriteString("\nreachable:\n")
	external := make(map[string]bool)
	for _, n := range g.Nodes() {
		if _, ok := parents[n]; !ok {
			continue
		}
		b.WriteString("  " + trim(n.Name) + "\n")
		for _, e := range n.External {
			external[callgraph.FuncName(e.Func)] = true
		}
	}

	b.WriteString("\nexternal frontier:\n")
	names := make([]string, 0, len(external))
	for name := range external {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString("  " + trim(name) + "\n")
	}
	return b.String()
}

// moduleTrimmer returns a function that strips the module import-path
// prefix (the longest common "/"-separated prefix of the loaded
// packages) from rendered names, keeping the golden independent of
// where the module is hosted.
func moduleTrimmer(units []*Unit) func(string) string {
	var parts []string
	for i, u := range units {
		ps := strings.Split(u.ImportPath, "/")
		if i == 0 {
			parts = ps
			continue
		}
		j := 0
		for j < len(parts) && j < len(ps) && parts[j] == ps[j] {
			j++
		}
		parts = parts[:j]
	}
	prefix := strings.Join(parts, "/")
	if prefix == "" {
		return func(s string) string { return s }
	}
	return func(s string) string { return strings.ReplaceAll(s, prefix+"/", "") }
}
