package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/ytcdn-sim/ytcdn/internal/lint/callgraph"
)

// GoLeak requires every goroutine launched in a non-test package to
// carry join evidence: something the goroutine does must tie its
// lifetime to a collector elsewhere in the module. Three handshakes
// count, all matched by the identity of the declared variable
// (*types.Var), transitively through the goroutine's callees:
//
//   - it calls Done on a WaitGroup that some code Waits on;
//   - it sends on or closes a channel that some code receives from;
//   - it receives from (or ranges over) a channel that some code sends
//     on or closes — the quit-channel shape.
//
// A goroutine with none of these outlives the run that spawned it: in
// a simulator that executes many deterministic runs per process, a
// leaked worker from run N keeps mutating shared state while run N+1
// measures, which is a nondeterminism bug wearing a concurrency hat.
// Intentionally process-long goroutines (an HTTP listener serving
// /metrics until exit) are declared with a reasoned //lint:ok.
//
// Identity matching is conservative: a WaitGroup or channel passed as
// a plain argument into a separately-declared function binds to the
// callee's parameter variable, not the caller's, and will not match —
// capture it in a closure or hang it on a shared struct field to make
// the evidence visible.
var GoLeak = &ModuleAnalyzer{
	Name: "goleak",
	Doc: "flag goroutines with no join evidence (no Done on a Waited " +
		"WaitGroup, no channel handshake tying their lifetime to a collector)",
	Version: 1,
	Run:     runGoLeak,
}

// joinFacts is what a goroutine (or any function) does that can serve
// as its half of a join handshake.
type joinFacts struct {
	done map[*types.Var]bool // WaitGroups Done()'d
	sent map[*types.Var]bool // channels sent on or closed
	recv map[*types.Var]bool // channels received from or ranged over
}

func newJoinFacts() *joinFacts {
	return &joinFacts{
		done: make(map[*types.Var]bool),
		sent: make(map[*types.Var]bool),
		recv: make(map[*types.Var]bool),
	}
}

func (f *joinFacts) absorb(o *joinFacts) bool {
	changed := false
	for v := range o.done {
		if !f.done[v] {
			f.done[v] = true
			changed = true
		}
	}
	for v := range o.sent {
		if !f.sent[v] {
			f.sent[v] = true
			changed = true
		}
	}
	for v := range o.recv {
		if !f.recv[v] {
			f.recv[v] = true
			changed = true
		}
	}
	return changed
}

// joinIndex is the module-wide other half: who waits, who receives,
// who sends.
type joinIndex struct {
	waited map[*types.Var]bool // WaitGroups with a Wait() call
	recv   map[*types.Var]bool // channels received from somewhere
	sent   map[*types.Var]bool // channels sent on or closed somewhere
}

func runGoLeak(p *ModulePass) {
	idx := buildJoinIndex(p.Units)
	sums := goroutineSummaries(p.Graph)
	for _, n := range p.Graph.Nodes() {
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			gs, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			facts := payloadFacts(n, gs, sums)
			if joined(facts, idx) {
				return true
			}
			p.Reportf(gs.Pos(), "goroutine has no join evidence: it never calls Done on a Waited WaitGroup and no channel handshake ties its lifetime to a collector; join it (WaitGroup, result channel, or quit channel) so it cannot outlive the run")
			return true
		})
	}
}

func joined(f *joinFacts, idx *joinIndex) bool {
	for v := range f.done {
		if idx.waited[v] {
			return true
		}
	}
	for v := range f.sent {
		if idx.recv[v] {
			return true
		}
	}
	for v := range f.recv {
		if idx.sent[v] {
			return true
		}
	}
	return false
}

// buildJoinIndex scans every loaded file for the collector half of the
// handshakes.
func buildJoinIndex(units []*Unit) *joinIndex {
	idx := &joinIndex{
		waited: make(map[*types.Var]bool),
		recv:   make(map[*types.Var]bool),
		sent:   make(map[*types.Var]bool),
	}
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.CallExpr:
					if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						if v := varOf(u.Info, sel.X); v != nil && isWaitGroup(v.Type()) {
							idx.waited[v] = true
						}
					}
					if isCloseBuiltin(u.Info, x) && len(x.Args) == 1 {
						if v := chanVarOf(u.Info, x.Args[0]); v != nil {
							idx.sent[v] = true
						}
					}
				case *ast.SendStmt:
					if v := chanVarOf(u.Info, x.Chan); v != nil {
						idx.sent[v] = true
					}
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						if v := chanVarOf(u.Info, x.X); v != nil {
							idx.recv[v] = true
						}
					}
				case *ast.RangeStmt:
					if v := chanVarOf(u.Info, x.X); v != nil {
						idx.recv[v] = true
					}
				}
				return true
			})
		}
	}
	return idx
}

// goroutineSummaries computes each node's joinFacts, transitively
// through Call/Dynamic/Defer edges (a nested `go` is its own
// goroutine's business, not this one's join evidence).
func goroutineSummaries(g *callgraph.Graph) map[*callgraph.Node]*joinFacts {
	sums := make(map[*callgraph.Node]*joinFacts, len(g.Nodes()))
	for _, n := range g.Nodes() {
		f := newJoinFacts()
		collectJoinFacts(n.Info, n.Decl.Body, f)
		sums[n] = f
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			for _, e := range n.Calls {
				if e.Kind == callgraph.Go {
					continue
				}
				if sums[n].absorb(sums[e.Callee]) {
					changed = true
				}
			}
		}
	}
	return sums
}

// collectJoinFacts gathers the direct handshake actions in node.
func collectJoinFacts(info *types.Info, node ast.Node, f *joinFacts) {
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if v := varOf(info, sel.X); v != nil && isWaitGroup(v.Type()) {
					f.done[v] = true
				}
			}
			if isCloseBuiltin(info, x) && len(x.Args) == 1 {
				if v := chanVarOf(info, x.Args[0]); v != nil {
					f.sent[v] = true
				}
			}
		case *ast.SendStmt:
			if v := chanVarOf(info, x.Chan); v != nil {
				f.sent[v] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if v := chanVarOf(info, x.X); v != nil {
					f.recv[v] = true
				}
			}
		case *ast.RangeStmt:
			if v := chanVarOf(info, x.X); v != nil {
				f.recv[v] = true
			}
		}
		return true
	})
}

// payloadFacts computes the goroutine's side of the handshake: a
// closure payload contributes its body plus the summaries of everything
// it calls (the enclosing node's edges whose sites fall inside the
// literal); a named payload contributes the callee summaries recorded
// for the go statement's site.
func payloadFacts(n *callgraph.Node, gs *ast.GoStmt, sums map[*callgraph.Node]*joinFacts) *joinFacts {
	f := newJoinFacts()
	if lit, ok := unparenExpr(gs.Call.Fun).(*ast.FuncLit); ok {
		collectJoinFacts(n.Info, lit.Body, f)
		for _, e := range n.Calls {
			if e.Site >= lit.Pos() && e.Site <= lit.End() {
				f.absorb(sums[e.Callee])
			}
		}
		return f
	}
	for _, e := range n.Calls {
		if e.Kind == callgraph.Go && e.Site == gs.Call.Pos() {
			f.absorb(sums[e.Callee])
		}
	}
	return f
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// chanVarOf resolves e to a variable of channel type.
func chanVarOf(info *types.Info, e ast.Expr) *types.Var {
	v := varOf(info, e)
	if v == nil {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return v
}

func isCloseBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparenExpr(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}
