package lint_test

import (
	"os/exec"
	"path/filepath"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/lint"
)

// TestMultichecker runs the real multichecker binary over
// ./internal/stats through the `go vet -vettool` protocol — the exact
// invocation CI uses — and asserts zero diagnostics.
func TestMultichecker(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes go vet")
	}
	bin := filepath.Join(t.TempDir(), "ytcdn-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ytcdn-lint")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ytcdn-lint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/stats")
	vet.Dir = "../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over ./internal/stats reported diagnostics or failed: %v\n%s", err, out)
	}
}

// TestSuiteCleanInProcess re-checks ./internal/stats with the
// in-process loader: the same analyzers must be silent regardless of
// the driver.
func TestSuiteCleanInProcess(t *testing.T) {
	units, err := lint.Load("../..", "./internal/stats")
	if err != nil {
		t.Fatalf("loading ./internal/stats: %v", err)
	}
	for _, u := range units {
		if diags := lint.Run(u.Fset, u.Files, u.Pkg, u.Info, lint.Analyzers()); len(diags) != 0 {
			for _, d := range diags {
				t.Errorf("%s: [%s] %s", u.Fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		}
	}
}
