package lint

import "go/token"

// JSONFinding is the machine-readable form of one finding, as emitted
// by `ytcdn-lint -json`. Suppressed findings are included with their
// directive's reason so tooling can audit the suppression inventory;
// only unsuppressed findings make the run fail. AnalyzerVersion tags
// each record with the producing analyzer's "name/vN" revision so CI
// artifacts stay diffable across analyzer changes.
type JSONFinding struct {
	File            string `json:"file"`
	Line            int    `json:"line"`
	Col             int    `json:"col"`
	Analyzer        string `json:"analyzer"`
	AnalyzerVersion string `json:"analyzer_version"`
	Message         string `json:"message"`
	Suppressed      bool   `json:"suppressed,omitempty"`
	SuppressReason  string `json:"suppress_reason,omitempty"`
}

// FindingsJSON renders surviving and suppressed diagnostics into the
// -json record form, surviving findings first.
func FindingsJSON(fset *token.FileSet, kept []Diagnostic, silenced []SuppressedDiagnostic) []JSONFinding {
	versions := AnalyzerVersions()
	out := make([]JSONFinding, 0, len(kept)+len(silenced))
	for _, d := range kept {
		p := fset.Position(d.Pos)
		out = append(out, JSONFinding{
			File: p.Filename, Line: p.Line, Col: p.Column,
			Analyzer: d.Analyzer, AnalyzerVersion: versions[d.Analyzer],
			Message: d.Message,
		})
	}
	for _, s := range silenced {
		p := fset.Position(s.Pos)
		out = append(out, JSONFinding{
			File: p.Filename, Line: p.Line, Col: p.Column,
			Analyzer: s.Analyzer, AnalyzerVersion: versions[s.Analyzer],
			Message:    s.Message,
			Suppressed: true, SuppressReason: s.Reason,
		})
	}
	return out
}
