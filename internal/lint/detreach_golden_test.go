package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const frontierGoldenPath = "testdata/detreach.golden"

// TestDetReachFrontierGolden pins the deterministic plane's purity
// frontier — its entry points, everything reachable from them, and
// every call that leaves the module — byte for byte, the same contract
// perfgate applies to performance envelopes. Growing the reachable set
// or the external surface is not forbidden, but it must be visible: an
// intentional change is re-pinned with
//
//	DETREACH_REGEN=1 go test ./internal/lint -run TestDetReachFrontierGolden
//
// and reviewed as part of the diff. DETREACH_SNAPSHOT_OUT additionally
// writes the freshly computed frontier to the named file (without
// re-pinning), which CI uploads as an artifact so a red run shows the
// would-be golden.
func TestDetReachFrontierGolden(t *testing.T) {
	units, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatal(err)
	}
	got := DetReachFrontier(units)

	if out := os.Getenv("DETREACH_SNAPSHOT_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote frontier snapshot to %s", out)
	}
	if os.Getenv("DETREACH_REGEN") != "" {
		if err := os.WriteFile(frontierGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("re-pinned %s", frontierGoldenPath)
		return
	}

	want, err := os.ReadFile(frontierGoldenPath)
	if err != nil {
		t.Fatalf("no pinned frontier (%v); pin it with DETREACH_REGEN=1 go test ./internal/lint -run TestDetReachFrontierGolden", err)
	}
	if got == string(want) {
		return
	}
	for _, line := range diffLines(string(want), got) {
		t.Error(line)
	}
	t.Errorf("detreach frontier drifted from %s; if the change is intentional, re-pin with DETREACH_REGEN=1 and review the diff", frontierGoldenPath)
}

// diffLines renders a set-style diff: lines only in want as "-", lines
// only in got as "+", in file order.
func diffLines(want, got string) []string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var out []string
	for _, l := range strings.Split(want, "\n") {
		if !gotSet[l] {
			out = append(out, "- "+l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if !wantSet[l] {
			out = append(out, "+ "+l)
		}
	}
	return out
}
