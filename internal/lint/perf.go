package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The //perf: annotation language marks hot-path performance contracts
// on function declarations. Three contract verbs go in a function's doc
// comment:
//
//	//perf:hot      — on a hot path: the hotalloc analyzer flags
//	                  allocation constructs, but preallocation idioms
//	                  (make with explicit capacity, appends into them)
//	                  are tolerated.
//	//perf:noalloc  — must not heap-allocate: hotalloc flags every
//	                  allocation construct, and internal/perfgate holds
//	                  the function to the compiler's own escape
//	                  analysis (any "escapes to heap" inside the body
//	                  is a finding).
//	//perf:inline   — must stay inlinable: internal/perfgate fails when
//	                  the compiler reports "cannot inline".
//
// Compiler-level findings are suppressed in place with
//
//	//perf:ok <check> <reason>
//
// where <check> is "escape" or "inline"; like //lint:ok, the reason is
// mandatory. Analyzer-level (hotalloc/atomicmix) findings use the
// normal //lint:ok directive. hotalloc also polices the annotation
// language itself: unknown verbs, contract verbs with trailing text,
// contract verbs not attached to a function declaration, and reasonless
// //perf:ok directives are all findings.

// perfDirectiveRe matches any //perf: comment: group 1 is the verb,
// group 2 the (possibly empty) trailing text.
var perfDirectiveRe = regexp.MustCompile(`^//perf:([A-Za-z0-9_-]+)(?:[ \t]+(.*))?$`)

// Contract verbs and the suppression checks //perf:ok accepts.
const (
	perfHot     = "hot"
	perfNoAlloc = "noalloc"
	perfInline  = "inline"
	perfOK      = "ok"
)

// perfOKChecks are the compiler-level checks a //perf:ok directive can
// suppress (internal/perfgate consumes these; hotalloc validates them).
var perfOKChecks = map[string]bool{"escape": true, "inline": true}

// perfDirective is one parsed //perf: comment.
type perfDirective struct {
	verb string
	arg  string // trailing text after the verb
	pos  token.Pos
}

// parsePerfDirective parses a single comment, returning ok=false for
// comments that are not //perf: directives at all.
func parsePerfDirective(c *ast.Comment) (perfDirective, bool) {
	verb, arg, ok := ParsePerfText(c.Text)
	if !ok {
		return perfDirective{}, false
	}
	return perfDirective{verb: verb, arg: arg, pos: c.Pos()}, true
}

// ParsePerfText parses the raw text of one comment line as a //perf:
// directive; ok is false when the comment is not one. Exported for
// internal/perfgate, which scans the same annotation language straight
// from source.
func ParsePerfText(text string) (verb, arg string, ok bool) {
	m := perfDirectiveRe.FindStringSubmatch(text)
	if m == nil {
		return "", "", false
	}
	return m[1], strings.TrimSpace(m[2]), true
}

// perfContracts returns the contract verbs (hot/noalloc/inline) in a
// function's doc comment.
func perfContracts(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fd.Doc == nil {
		return out
	}
	for _, c := range fd.Doc.List {
		d, ok := parsePerfDirective(c)
		if !ok {
			continue
		}
		switch d.verb {
		case perfHot, perfNoAlloc, perfInline:
			out[d.verb] = true
		}
	}
	return out
}
