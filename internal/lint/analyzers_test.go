package lint_test

import (
	"strings"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/lint"
	"github.com/ytcdn-sim/ytcdn/internal/lint/linttest"
)

func TestDetMapFlagged(t *testing.T) {
	linttest.Run(t, "testdata/detmap", lint.DetMap, "./flagged")
}

func TestDetMapClean(t *testing.T) {
	linttest.Run(t, "testdata/detmap", lint.DetMap, "./clean")
}

func TestDetMapSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/detmap", lint.DetMap, "./suppressed")
}

func TestRNGPurityFlagged(t *testing.T) {
	linttest.Run(t, "testdata/rngpurity", lint.RNGPurity, "./internal/cdn")
}

func TestRNGPurityClean(t *testing.T) {
	linttest.Run(t, "testdata/rngpurity", lint.RNGPurity, "./internal/core")
}

func TestRNGPurityOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/rngpurity", lint.RNGPurity, "./outside")
}

func TestRNGPuritySuppressed(t *testing.T) {
	linttest.Run(t, "testdata/rngpurity", lint.RNGPurity, "./internal/des")
}

func TestRNGShareFlagged(t *testing.T) {
	linttest.Run(t, "testdata/rngshare", lint.RNGShare, "./flagged")
}

func TestRNGShareClean(t *testing.T) {
	linttest.Run(t, "testdata/rngshare", lint.RNGShare, "./clean")
}

func TestRNGShareSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/rngshare", lint.RNGShare, "./suppressed")
}

func TestLockGuardFlagged(t *testing.T) {
	linttest.Run(t, "testdata/lockguard", lint.LockGuard, "./flagged")
}

func TestLockGuardClean(t *testing.T) {
	linttest.Run(t, "testdata/lockguard", lint.LockGuard, "./clean")
}

func TestLockGuardSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/lockguard", lint.LockGuard, "./suppressed")
}

func TestObsPlaneFlaggedImport(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/cdn")
}

func TestObsPlaneFlaggedWallClock(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/obs")
}

func TestObsPlaneClean(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/core")
}

func TestObsPlaneWallPlaneOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/obs/profile")
}

func TestObsPlaneSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/des")
}

func TestHotAllocFlagged(t *testing.T) {
	linttest.Run(t, "testdata/hotalloc", lint.HotAlloc, "./flagged")
}

func TestHotAllocClean(t *testing.T) {
	linttest.Run(t, "testdata/hotalloc", lint.HotAlloc, "./clean")
}

func TestHotAllocSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/hotalloc", lint.HotAlloc, "./suppressed")
}

// TestHotAllocAnnotationErrors pins the annotation-language findings.
// They sit on the //perf: directive lines themselves, where a // want
// comment would change the directive text, so the fixture is checked
// by message here instead (same pattern as TestSuppressionNeedsReason).
func TestHotAllocAnnotationErrors(t *testing.T) {
	units, err := lint.Load("testdata/hotalloc", "./badperf")
	if err != nil {
		t.Fatalf("loading badperf fixture: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	u := units[0]
	diags := lint.Run(u.Fset, u.Files, u.Pkg, u.Info, []*lint.Analyzer{lint.HotAlloc})
	wants := []string{
		`unknown //perf: directive "fast"`,
		"stale //perf:hot",
		"//perf:noalloc takes no argument",
		"//perf:ok wants a check",
		"//perf:ok escape needs a reason",
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got: %v", w, diags)
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics, want exactly %d: %v", len(diags), len(wants), diags)
	}
}

func TestAtomicMixFlagged(t *testing.T) {
	linttest.Run(t, "testdata/atomicmix", lint.AtomicMix, "./flagged")
}

func TestAtomicMixClean(t *testing.T) {
	linttest.Run(t, "testdata/atomicmix", lint.AtomicMix, "./clean")
}

func TestAtomicMixSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/atomicmix", lint.AtomicMix, "./suppressed")
}

// TestSuppressionNeedsReason pins the directive contract: a //lint:ok
// with no reason is itself reported and does not suppress the finding
// it sits on.
func TestSuppressionNeedsReason(t *testing.T) {
	units, err := lint.Load("testdata/detmap", "./badok")
	if err != nil {
		t.Fatalf("loading badok fixture: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	u := units[0]
	diags := lint.Run(u.Fset, u.Files, u.Pkg, u.Info, []*lint.Analyzer{lint.DetMap})
	var reasonless, finding bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "needs a reason"):
			reasonless = true
		case strings.Contains(d.Message, "append to out"):
			finding = true
		}
	}
	if !reasonless {
		t.Errorf("reasonless //lint:ok was not reported; diagnostics: %v", diags)
	}
	if !finding {
		t.Errorf("reasonless //lint:ok suppressed the finding it sits on; diagnostics: %v", diags)
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want exactly 2 (finding + reasonless directive): %v", len(diags), diags)
	}
}
