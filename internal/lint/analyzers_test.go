package lint_test

import (
	"strings"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/lint"
	"github.com/ytcdn-sim/ytcdn/internal/lint/linttest"
)

func TestDetMapFlagged(t *testing.T) {
	linttest.Run(t, "testdata/detmap", lint.DetMap, "./flagged")
}

func TestDetMapClean(t *testing.T) {
	linttest.Run(t, "testdata/detmap", lint.DetMap, "./clean")
}

func TestDetMapSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/detmap", lint.DetMap, "./suppressed")
}

func TestRNGPurityFlagged(t *testing.T) {
	linttest.Run(t, "testdata/rngpurity", lint.RNGPurity, "./internal/cdn")
}

func TestRNGPurityClean(t *testing.T) {
	linttest.Run(t, "testdata/rngpurity", lint.RNGPurity, "./internal/core")
}

func TestRNGPurityOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/rngpurity", lint.RNGPurity, "./outside")
}

func TestRNGPuritySuppressed(t *testing.T) {
	linttest.Run(t, "testdata/rngpurity", lint.RNGPurity, "./internal/des")
}

func TestRNGShareFlagged(t *testing.T) {
	linttest.Run(t, "testdata/rngshare", lint.RNGShare, "./flagged")
}

func TestRNGShareClean(t *testing.T) {
	linttest.Run(t, "testdata/rngshare", lint.RNGShare, "./clean")
}

func TestRNGShareSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/rngshare", lint.RNGShare, "./suppressed")
}

func TestLockGuardFlagged(t *testing.T) {
	linttest.Run(t, "testdata/lockguard", lint.LockGuard, "./flagged")
}

func TestLockGuardClean(t *testing.T) {
	linttest.Run(t, "testdata/lockguard", lint.LockGuard, "./clean")
}

func TestLockGuardSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/lockguard", lint.LockGuard, "./suppressed")
}

func TestObsPlaneFlaggedImport(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/cdn")
}

func TestObsPlaneFlaggedWallClock(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/obs")
}

func TestObsPlaneClean(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/core")
}

func TestObsPlaneWallPlaneOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/obs/profile")
}

func TestObsPlaneSuppressed(t *testing.T) {
	linttest.Run(t, "testdata/obsplane", lint.ObsPlane, "./internal/des")
}

// TestSuppressionNeedsReason pins the directive contract: a //lint:ok
// with no reason is itself reported and does not suppress the finding
// it sits on.
func TestSuppressionNeedsReason(t *testing.T) {
	units, err := lint.Load("testdata/detmap", "./badok")
	if err != nil {
		t.Fatalf("loading badok fixture: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	u := units[0]
	diags := lint.Run(u.Fset, u.Files, u.Pkg, u.Info, []*lint.Analyzer{lint.DetMap})
	var reasonless, finding bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "needs a reason"):
			reasonless = true
		case strings.Contains(d.Message, "append to out"):
			finding = true
		}
	}
	if !reasonless {
		t.Errorf("reasonless //lint:ok was not reported; diagnostics: %v", diags)
	}
	if !finding {
		t.Errorf("reasonless //lint:ok suppressed the finding it sits on; diagnostics: %v", diags)
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want exactly 2 (finding + reasonless directive): %v", len(diags), diags)
	}
}
