package lint

import (
	"fmt"
	"go/ast"
	"go/token"

	"github.com/ytcdn-sim/ytcdn/internal/lint/callgraph"
)

// ModuleAnalyzer is one named check over the whole loaded module. Where
// an Analyzer sees one package at a time, a ModuleAnalyzer sees every
// unit plus the call graph over them — the shape interprocedural
// checks (detreach, lockorder, goleak) need. Module analyzers cannot
// run under the per-unit `go vet -vettool` protocol; they are driven
// by the standalone cmd/ytcdn-lint modes, the fixture tests, and
// TestTreeClean, always over whole-module loads (`./...`) — a partial
// load would truncate the class hierarchy and silently weaken CHA.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ok
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Version is bumped on any behavior change, so -json artifacts are
	// diffable across analyzer revisions.
	Version int
	// Run inspects the module and reports findings through the pass.
	Run func(*ModulePass)
}

// ModulePass carries the loaded module and its call graph to a module
// analyzer and collects its diagnostics.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	Units    []*Unit
	Graph    *callgraph.Graph

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModuleAnalyzers returns the interprocedural suite in deterministic
// order.
func ModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{DetReach, LockOrder, GoLeak}
}

// BuildGraph constructs the whole-module call graph over units (which
// must share one FileSet, as units from a single Load call do).
func BuildGraph(units []*Unit) *callgraph.Graph {
	if len(units) == 0 {
		return callgraph.Build(token.NewFileSet(), nil)
	}
	pkgs := make([]callgraph.Pkg, 0, len(units))
	for _, u := range units {
		pkgs = append(pkgs, callgraph.Pkg{Files: u.Files, Pkg: u.Pkg, Info: u.Info})
	}
	return callgraph.Build(units[0].Fset, pkgs)
}

// RunModuleAll executes the module analyzers over the loaded units and
// returns surviving diagnostics plus the findings reasoned //lint:ok
// directives silenced, both sorted by position. Suppression semantics
// are identical to the per-package path: same directive syntax, same
// mandatory reason, same line/line-above placement.
func RunModuleAll(units []*Unit, analyzers []*ModuleAnalyzer) ([]Diagnostic, []SuppressedDiagnostic) {
	if len(units) == 0 {
		return nil, nil
	}
	fset := units[0].Fset
	graph := BuildGraph(units)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{Analyzer: a, Fset: fset, Units: units, Graph: graph}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}

	var files []*ast.File
	for _, u := range units {
		files = append(files, u.Files...)
	}
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	return finishRun(fset, files, running, diags)
}
