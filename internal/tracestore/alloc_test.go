package tracestore

import (
	"os"
	"testing"
)

// TestScanPathAllocs pins the zero-allocation contract of the
// steady-state scan path: once a scanIterator's decodeBuf has seen the
// shard's segment sizes and string vocabulary, decoding further
// segments must not allocate at all — the payload, record array and
// dictionaries recycle, and dictionary strings come from the intern
// table. The assertion is opt-in (PERF_ASSERT=1, run by the CI
// perfgate job): allocation counts depend on the compiler, so a dev
// box on a different toolchain should not fail the ordinary suite.
func TestScanPathAllocs(t *testing.T) {
	if os.Getenv("PERF_ASSERT") != "1" {
		t.Skip("set PERF_ASSERT=1 to assert scan-path allocation counts")
	}
	dir, _ := benchStore(t, 20_000, 1<<10)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	sh := r.shards["bench"]
	if len(sh.segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(sh.segs))
	}
	f, err := os.Open(sh.path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Warm-up: one pass over every segment grows the recycled arrays to
	// the shard maximum and fills the intern table.
	var buf decodeBuf
	for i := range sh.segs {
		_, fp, err := r.loadSegment(f, sh, i, &buf)
		if err != nil {
			t.Fatal(err)
		}
		r.release(fp)
	}

	seg := 0
	allocs := testing.AllocsPerRun(200, func() {
		_, fp, err := r.loadSegment(f, sh, seg, &buf)
		if err != nil {
			t.Fatal(err)
		}
		r.release(fp)
		seg = (seg + 1) % len(sh.segs)
	})
	if allocs != 0 {
		t.Errorf("steady-state segment decode allocates %.1f times per segment, want 0", allocs)
	}
}
