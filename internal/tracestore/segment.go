package tracestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// segHeaderSize is the fixed on-disk segment header:
// magic u32 | count u32 | payloadLen u32 | crc u32 | minStart i64 | maxStart i64.
const segHeaderSize = 32

// segHeader describes one segment without its payload.
type segHeader struct {
	count      uint32
	payloadLen uint32
	crc        uint32
	minStart   time.Duration
	maxStart   time.Duration
}

// marshal renders the header in little-endian layout.
func (h segHeader) marshal() []byte {
	buf := make([]byte, segHeaderSize)
	binary.LittleEndian.PutUint32(buf[0:], segMagic)
	binary.LittleEndian.PutUint32(buf[4:], h.count)
	binary.LittleEndian.PutUint32(buf[8:], h.payloadLen)
	binary.LittleEndian.PutUint32(buf[12:], h.crc)
	binary.LittleEndian.PutUint64(buf[16:], uint64(h.minStart))
	binary.LittleEndian.PutUint64(buf[24:], uint64(h.maxStart))
	return buf
}

// parseSegHeader validates the magic and unpacks the header fields.
func parseSegHeader(buf []byte) (segHeader, error) {
	if len(buf) < segHeaderSize {
		return segHeader{}, fmt.Errorf("tracestore: segment header short (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != segMagic {
		return segHeader{}, fmt.Errorf("tracestore: bad segment magic")
	}
	return segHeader{
		count:      binary.LittleEndian.Uint32(buf[4:]),
		payloadLen: binary.LittleEndian.Uint32(buf[8:]),
		crc:        binary.LittleEndian.Uint32(buf[12:]),
		minStart:   time.Duration(binary.LittleEndian.Uint64(buf[16:])),
		maxStart:   time.Duration(binary.LittleEndian.Uint64(buf[24:])),
	}, nil
}

// dict assigns dense ids to values in first-appearance order, so the
// encoded stream is deterministic for a given record sequence.
type dict[K comparable] struct {
	ids    map[K]int
	values []K
}

func (d *dict[K]) id(v K) int {
	if d.ids == nil {
		d.ids = make(map[K]int)
	}
	if id, ok := d.ids[v]; ok {
		return id
	}
	id := len(d.values)
	d.ids[v] = id
	d.values = append(d.values, v)
	return id
}

// encodeSegment sorts recs by start time (stable, preserving emission
// order among equal starts) and encodes them column by column. It
// returns the ready-to-append header bytes and payload. recs must be
// non-empty; the slice is reordered in place.
func encodeSegment(recs []capture.FlowRecord) (header, payload []byte) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })

	var buf []byte
	// Column 1: start times — zigzag first value, plain deltas after.
	buf = binary.AppendVarint(buf, int64(recs[0].Start))
	for i := 1; i < len(recs); i++ {
		buf = binary.AppendUvarint(buf, uint64(recs[i].Start-recs[i-1].Start))
	}
	// Column 2: durations (End - Start), zigzag (defensively signed).
	for _, r := range recs {
		buf = binary.AppendVarint(buf, int64(r.End-r.Start))
	}
	// Column 3: byte counts, zigzag.
	for _, r := range recs {
		buf = binary.AppendVarint(buf, r.Bytes)
	}
	// Column 4: client addresses, raw uvarints.
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, uint64(r.Client))
	}
	// Column 5: server addresses, dictionary-encoded.
	var servers dict[ipnet.Addr]
	ids := make([]int, len(recs))
	for i, r := range recs {
		ids[i] = servers.id(r.Server)
	}
	buf = binary.AppendUvarint(buf, uint64(len(servers.values)))
	for _, a := range servers.values {
		buf = binary.AppendUvarint(buf, uint64(a))
	}
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	// Columns 6-7: VideoID and Resolution, dictionary-encoded strings.
	for _, col := range []func(capture.FlowRecord) string{
		func(r capture.FlowRecord) string { return r.VideoID },
		func(r capture.FlowRecord) string { return r.Resolution },
	} {
		var d dict[string]
		for i, r := range recs {
			ids[i] = d.id(col(r))
		}
		buf = binary.AppendUvarint(buf, uint64(len(d.values)))
		for _, s := range d.values {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}

	h := segHeader{
		count:      uint32(len(recs)),
		payloadLen: uint32(len(buf)),
		crc:        crc32.ChecksumIEEE(buf),
		minStart:   recs[0].Start,
		maxStart:   recs[len(recs)-1].Start,
	}
	return h.marshal(), buf
}

// payloadReader walks an encoded payload.
type payloadReader struct {
	buf []byte
	pos int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("tracestore: malformed uvarint at offset %d", p.pos)
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("tracestore: malformed varint at offset %d", p.pos)
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) stringDict() ([]string, error) {
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.buf)-p.pos) {
		return nil, fmt.Errorf("tracestore: dictionary of %d entries exceeds payload", n)
	}
	out := make([]string, n)
	for i := range out {
		l, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if l > uint64(len(p.buf)-p.pos) {
			return nil, fmt.Errorf("tracestore: dictionary string of %d bytes exceeds payload", l)
		}
		out[i] = string(p.buf[p.pos : p.pos+int(l)])
		p.pos += int(l)
	}
	return out, nil
}

// decodeSegment reconstructs the records of one segment. Records come
// back in stored (start-sorted) order; dictionary strings are shared
// across the records of the segment.
func decodeSegment(payload []byte, count int) ([]capture.FlowRecord, error) {
	// The header is not covered by the payload CRC, so validate the
	// count before allocating: every record contributes at least one
	// byte to the start-delta column alone, so a count exceeding the
	// payload length is provably a corrupted header — reject it
	// instead of attempting a giant allocation.
	if count < 0 || count > len(payload) {
		return nil, fmt.Errorf("tracestore: segment count %d impossible for %d payload bytes", count, len(payload))
	}
	recs := make([]capture.FlowRecord, count)
	if count == 0 {
		return recs, nil
	}
	p := &payloadReader{buf: payload}

	first, err := p.varint()
	if err != nil {
		return nil, err
	}
	recs[0].Start = time.Duration(first)
	for i := 1; i < count; i++ {
		d, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		recs[i].Start = recs[i-1].Start + time.Duration(d)
	}
	for i := range recs {
		d, err := p.varint()
		if err != nil {
			return nil, err
		}
		recs[i].End = recs[i].Start + time.Duration(d)
	}
	for i := range recs {
		b, err := p.varint()
		if err != nil {
			return nil, err
		}
		recs[i].Bytes = b
	}
	for i := range recs {
		c, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		recs[i].Client = ipnet.Addr(c)
	}
	nsrv, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if nsrv > uint64(len(payload)) {
		return nil, fmt.Errorf("tracestore: server dictionary of %d entries exceeds payload", nsrv)
	}
	srvDict := make([]ipnet.Addr, nsrv)
	for i := range srvDict {
		a, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		srvDict[i] = ipnet.Addr(a)
	}
	for i := range recs {
		id, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if id >= nsrv {
			return nil, fmt.Errorf("tracestore: server dictionary index %d out of range", id)
		}
		recs[i].Server = srvDict[id]
	}
	for _, assign := range []func(i int, s string){
		func(i int, s string) { recs[i].VideoID = s },
		func(i int, s string) { recs[i].Resolution = s },
	} {
		d, err := p.stringDict()
		if err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			id, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if id >= uint64(len(d)) {
				return nil, fmt.Errorf("tracestore: string dictionary index %d out of range", id)
			}
			assign(i, d[id])
		}
	}
	if p.pos != len(payload) {
		return nil, fmt.Errorf("tracestore: %d trailing payload bytes", len(payload)-p.pos)
	}
	return recs, nil
}

// decodedFootprint estimates the in-memory size of a decoded segment,
// for the reader's buffering gauge: the record array plus the
// dictionary string bytes (shared across records).
func decodedFootprint(recs []capture.FlowRecord) int64 {
	n := int64(len(recs)) * int64(flowRecordSize)
	seen := make(map[string]struct{})
	for i := range recs {
		for _, s := range []string{recs[i].VideoID, recs[i].Resolution} {
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				n += int64(len(s))
			}
		}
	}
	return n
}

// flowRecordSize is the struct size used by the buffering gauge.
const flowRecordSize = 64
