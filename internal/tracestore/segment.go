package tracestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// segHeaderSize is the fixed on-disk segment header:
// magic u32 | count u32 | payloadLen u32 | crc u32 | minStart i64 | maxStart i64.
const segHeaderSize = 32

// segHeader describes one segment without its payload.
type segHeader struct {
	count      uint32
	payloadLen uint32
	crc        uint32
	minStart   time.Duration
	maxStart   time.Duration
}

// marshal renders the header in little-endian layout.
func (h segHeader) marshal() []byte {
	buf := make([]byte, segHeaderSize)
	binary.LittleEndian.PutUint32(buf[0:], segMagic)
	binary.LittleEndian.PutUint32(buf[4:], h.count)
	binary.LittleEndian.PutUint32(buf[8:], h.payloadLen)
	binary.LittleEndian.PutUint32(buf[12:], h.crc)
	binary.LittleEndian.PutUint64(buf[16:], uint64(h.minStart))
	binary.LittleEndian.PutUint64(buf[24:], uint64(h.maxStart))
	return buf
}

// parseSegHeader validates the magic and unpacks the header fields.
func parseSegHeader(buf []byte) (segHeader, error) {
	if len(buf) < segHeaderSize {
		return segHeader{}, fmt.Errorf("tracestore: segment header short (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != segMagic {
		return segHeader{}, fmt.Errorf("tracestore: bad segment magic")
	}
	return segHeader{
		count:      binary.LittleEndian.Uint32(buf[4:]),
		payloadLen: binary.LittleEndian.Uint32(buf[8:]),
		crc:        binary.LittleEndian.Uint32(buf[12:]),
		minStart:   time.Duration(binary.LittleEndian.Uint64(buf[16:])),
		maxStart:   time.Duration(binary.LittleEndian.Uint64(buf[24:])),
	}, nil
}

// dict assigns dense ids to values in first-appearance order, so the
// encoded stream is deterministic for a given record sequence.
type dict[K comparable] struct {
	ids    map[K]int
	values []K
}

func (d *dict[K]) id(v K) int {
	if d.ids == nil {
		d.ids = make(map[K]int)
	}
	if id, ok := d.ids[v]; ok {
		return id
	}
	id := len(d.values)
	d.ids[v] = id
	d.values = append(d.values, v)
	return id
}

// encodeSegment sorts recs by start time (stable, preserving emission
// order among equal starts) and encodes them column by column. It
// returns the ready-to-append header bytes and payload. recs must be
// non-empty; the slice is reordered in place.
func encodeSegment(recs []capture.FlowRecord) (header, payload []byte) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })

	var buf []byte
	// Column 1: start times — zigzag first value, plain deltas after.
	buf = binary.AppendVarint(buf, int64(recs[0].Start))
	for i := 1; i < len(recs); i++ {
		buf = binary.AppendUvarint(buf, uint64(recs[i].Start-recs[i-1].Start))
	}
	// Column 2: durations (End - Start), zigzag (defensively signed).
	for _, r := range recs {
		buf = binary.AppendVarint(buf, int64(r.End-r.Start))
	}
	// Column 3: byte counts, zigzag.
	for _, r := range recs {
		buf = binary.AppendVarint(buf, r.Bytes)
	}
	// Column 4: client addresses, raw uvarints.
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, uint64(r.Client))
	}
	// Column 5: server addresses, dictionary-encoded.
	var servers dict[ipnet.Addr]
	ids := make([]int, len(recs))
	for i, r := range recs {
		ids[i] = servers.id(r.Server)
	}
	buf = binary.AppendUvarint(buf, uint64(len(servers.values)))
	for _, a := range servers.values {
		buf = binary.AppendUvarint(buf, uint64(a))
	}
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	// Columns 6-7: VideoID and Resolution, dictionary-encoded strings.
	for _, col := range []func(capture.FlowRecord) string{
		func(r capture.FlowRecord) string { return r.VideoID },
		func(r capture.FlowRecord) string { return r.Resolution },
	} {
		var d dict[string]
		for i, r := range recs {
			ids[i] = d.id(col(r))
		}
		buf = binary.AppendUvarint(buf, uint64(len(d.values)))
		for _, s := range d.values {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}

	h := segHeader{
		count:      uint32(len(recs)),
		payloadLen: uint32(len(buf)),
		crc:        crc32.ChecksumIEEE(buf),
		minStart:   recs[0].Start,
		maxStart:   recs[len(recs)-1].Start,
	}
	return h.marshal(), buf
}

// payloadReader walks an encoded payload. Errors are sticky: the
// first malformed read records err and every later read returns a
// zero value, so the column decode loops stay branch-light — and,
// because all error construction happens inside these methods rather
// than in the //perf:noalloc column decoders that call them,
// allocation-free on well-formed input.
type payloadReader struct {
	buf []byte
	pos int
	err error
}

// fail records the first error. This is the cold path: the fmt state
// and boxed operands it allocates exist only on malformed input.
func (p *payloadReader) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

func (p *payloadReader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n <= 0 {
		p.fail("tracestore: malformed uvarint at offset %d", p.pos)
		return 0
	}
	p.pos += n
	return v
}

func (p *payloadReader) varint() int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		p.fail("tracestore: malformed varint at offset %d", p.pos)
		return 0
	}
	p.pos += n
	return v
}

// dictID reads one dictionary index and range-checks it against n.
func (p *payloadReader) dictID(n uint64) uint64 {
	id := p.uvarint()
	if p.err == nil && id >= n {
		p.fail("tracestore: dictionary index %d out of range", id)
		return 0
	}
	return id
}

// decodeBuf owns the reusable state of one streaming decoder. A
// scanIterator keeps one for its lifetime and decodes every segment
// into it, so the steady-state scan path allocates nothing: the
// payload buffer, record array and dictionaries recycle their backing
// arrays, and dictionary strings are interned across segments (a
// shard reuses a small vocabulary of video ids and resolutions over
// and over). One-shot callers use a fresh zero value.
type decodeBuf struct {
	payload  []byte
	recs     []capture.FlowRecord
	srvDict  []ipnet.Addr
	strDict  []string
	interned map[string]string
}

// maxInterned bounds the intern table so an adversarial shard with an
// unbounded string vocabulary degrades to per-segment allocation
// instead of unbounded growth.
const maxInterned = 1 << 17

// payloadSlot returns a length-n buffer backed by recycled capacity.
func (b *decodeBuf) payloadSlot(n int) []byte {
	if cap(b.payload) < n {
		b.payload = make([]byte, n)
	}
	b.payload = b.payload[:n]
	return b.payload
}

// intern returns the canonical copy of raw, allocating only on first
// sight. The map-index conversion does not allocate on the hit path.
func (b *decodeBuf) intern(raw []byte) string {
	if s, ok := b.interned[string(raw)]; ok {
		return s
	}
	s := string(raw)
	if len(b.interned) < maxInterned {
		if b.interned == nil {
			b.interned = make(map[string]string, 64)
		}
		b.interned[s] = s
	}
	return s
}

// decode reconstructs the records of b.payload. Records come back in
// stored (start-sorted) order in a slice aliasing b.recs — valid until
// the next decode on this buffer. The second result is the decoded
// footprint for the buffering gauge: the record array plus the
// dictionary string bytes (shared across records).
func (b *decodeBuf) decode(count int) ([]capture.FlowRecord, int64, error) {
	payload := b.payload
	// The header is not covered by the payload CRC, so validate the
	// count before allocating: every record contributes at least one
	// byte to the start-delta column alone, so a count exceeding the
	// payload length is provably a corrupted header — reject it
	// instead of attempting a giant allocation.
	if count < 0 || count > len(payload) {
		return nil, 0, fmt.Errorf("tracestore: segment count %d impossible for %d payload bytes", count, len(payload))
	}
	if cap(b.recs) < count {
		b.recs = make([]capture.FlowRecord, count)
	}
	recs := b.recs[:count]
	if count == 0 {
		return recs, 0, nil
	}
	p := payloadReader{buf: payload}

	decodeFixedCols(&p, recs)

	nsrv := p.uvarint()
	if p.err == nil && nsrv > uint64(len(payload)) {
		p.fail("tracestore: server dictionary of %d entries exceeds payload", nsrv)
	}
	if p.err == nil {
		if cap(b.srvDict) < int(nsrv) {
			b.srvDict = make([]ipnet.Addr, nsrv)
		}
		srv := b.srvDict[:nsrv]
		for i := range srv {
			srv[i] = ipnet.Addr(p.uvarint())
		}
		assignServers(&p, recs, srv)
	}

	footprint := int64(count) * int64(flowRecordSize)
	var strBytes int64
	b.strDict, strBytes = b.stringDictInto(&p, b.strDict)
	footprint += strBytes
	assignStringCol(&p, recs, b.strDict, false)
	b.strDict, strBytes = b.stringDictInto(&p, b.strDict)
	footprint += strBytes
	assignStringCol(&p, recs, b.strDict, true)

	if p.err != nil {
		return nil, 0, p.err
	}
	if p.pos != len(payload) {
		return nil, 0, fmt.Errorf("tracestore: %d trailing payload bytes", len(payload)-p.pos)
	}
	return recs, footprint, nil
}

// decodeFixedCols decodes the start/duration/bytes/client columns.
//
//perf:hot
//perf:noalloc
func decodeFixedCols(p *payloadReader, recs []capture.FlowRecord) {
	recs[0].Start = time.Duration(p.varint())
	for i := 1; i < len(recs); i++ {
		recs[i].Start = recs[i-1].Start + time.Duration(p.uvarint())
	}
	for i := range recs {
		recs[i].End = recs[i].Start + time.Duration(p.varint())
	}
	for i := range recs {
		recs[i].Bytes = p.varint()
	}
	for i := range recs {
		recs[i].Client = ipnet.Addr(p.uvarint())
	}
}

// assignServers decodes the server-id column against the dictionary.
//
//perf:hot
//perf:noalloc
func assignServers(p *payloadReader, recs []capture.FlowRecord, srv []ipnet.Addr) {
	n := uint64(len(srv))
	for i := range recs {
		id := p.dictID(n)
		if p.err != nil {
			return
		}
		recs[i].Server = srv[id]
	}
}

// stringDictInto decodes one string dictionary into dst's recycled
// capacity, interning entries through b. It returns the (possibly
// regrown) dictionary and the summed entry bytes for the footprint
// gauge; on error it returns an empty dictionary.
func (b *decodeBuf) stringDictInto(p *payloadReader, dst []string) ([]string, int64) {
	n := p.uvarint()
	if p.err == nil && n > uint64(len(p.buf)-p.pos) {
		p.fail("tracestore: dictionary of %d entries exceeds payload", n)
	}
	if p.err != nil {
		return dst[:0], 0
	}
	if cap(dst) < int(n) {
		dst = make([]string, n)
	}
	dst = dst[:n]
	var strBytes int64
	for i := range dst {
		l := p.uvarint()
		if p.err != nil {
			return dst[:0], 0
		}
		if l > uint64(len(p.buf)-p.pos) {
			p.fail("tracestore: dictionary string of %d bytes exceeds payload", l)
			return dst[:0], 0
		}
		dst[i] = b.intern(p.buf[p.pos : p.pos+int(l)])
		p.pos += int(l)
		strBytes += int64(l)
	}
	return dst, strBytes
}

// assignStringCol decodes one string-id column against the dictionary
// into the VideoID (resolution=false) or Resolution column.
//
//perf:hot
//perf:noalloc
func assignStringCol(p *payloadReader, recs []capture.FlowRecord, d []string, resolution bool) {
	n := uint64(len(d))
	for i := range recs {
		id := p.dictID(n)
		if p.err != nil {
			return
		}
		if resolution {
			recs[i].Resolution = d[id]
		} else {
			recs[i].VideoID = d[id]
		}
	}
}

// decodeSegment reconstructs the records of one segment through a
// fresh one-shot buffer — the compatibility path for callers that keep
// several decoded segments alive at once (the start-ordered merge
// arms) or hand the records out (tests, fuzzing). Streaming callers
// reuse a decodeBuf instead.
func decodeSegment(payload []byte, count int) ([]capture.FlowRecord, error) {
	b := decodeBuf{payload: payload}
	recs, _, err := b.decode(count)
	return recs, err
}

// flowRecordSize is the struct size used by the buffering gauge.
const flowRecordSize = 64
