// Package tracestore is the disk-backed columnar trace store: it
// spills capture.FlowRecord streams to disk in fixed-size segments so
// paper-scale (and beyond) studies run with flat RSS instead of
// holding millions of flow records in capture.MemSink slices.
//
// # Layout
//
// A store is a directory with one shard file per dataset
// ("<escaped-dataset>.shard"). Sharding per dataset means the five
// monitored networks write concurrently without lock contention: each
// shard has its own buffer, mutex and file handle.
//
// A shard file is a small header (magic, format version, the dataset
// name — the filename is only a sanitized hint) followed by a sequence
// of self-describing segments. Each segment holds up to SegmentRecords
// records, sorted by flow start time, in a compact binary columnar
// encoding:
//
//   - Start times: varint deltas (sorted, so deltas are non-negative),
//     with the first value zigzag-encoded.
//   - Durations (End-Start) and byte counts: zigzag varints.
//   - Client addresses: raw uvarints.
//   - Server addresses, VideoIDs and Resolutions: per-segment
//     dictionaries (few distinct values repeat across many flows) with
//     uvarint indices.
//
// Every segment header carries the record count, payload length, a
// CRC-32 of the payload, and the segment's min/max start time, so a
// reader can index a shard without decoding payloads and can stream
// start-ordered views opening only the segments whose time ranges
// overlap the merge frontier.
//
// # Durability
//
// Segments are appended atomically from the writer's point of view: a
// crash mid-write leaves at most one truncated segment at the tail of
// a shard. Readers detect the truncation (short header, short payload,
// or CRC mismatch on the final segment) and recover every complete
// segment before it; corruption anywhere else is reported as an error.
//
// # When to use disk vs memory
//
// capture.MemSink remains the default for tests and small studies
// (Scale below ~0.2): no files, no serialization. The tracestore is
// for paper scale and above — Options.Store in the public API routes
// capture through a Writer here, and the analysis side consumes the
// Reader's streaming iterators in bounded memory (at most one decoded
// segment per scanned shard). At any scale the tables and figures are
// bit-identical between the two paths.
package tracestore

import (
	"fmt"
	"strings"
)

const (
	// shardMagic opens every shard file.
	shardMagic = "YTTS1\n"
	// segMagic opens every segment header.
	segMagic = 0x59534547 // "YSEG"
	// DefaultSegmentRecords is the default per-shard spill threshold.
	// At roughly 60-100 bytes per decoded record this keeps a decoded
	// segment in the low single-digit megabytes.
	DefaultSegmentRecords = 1 << 16
)

// Options configures a Writer.
type Options struct {
	// SegmentRecords is the number of records buffered per shard
	// before a segment spills to disk. Zero means
	// DefaultSegmentRecords.
	SegmentRecords int
}

// shardFileName maps a dataset name to its file name: bytes outside
// [A-Za-z0-9._-] are %XX-escaped, so distinct datasets always map to
// distinct files and round-trip through any filesystem. The authentic
// name is stored inside the shard header; the filename is a hint.
func shardFileName(dataset string) string {
	var b strings.Builder
	for i := 0; i < len(dataset); i++ {
		c := dataset[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String() + shardSuffix
}

const shardSuffix = ".shard"
