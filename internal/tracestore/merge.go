package tracestore

import (
	"container/heap"
	"fmt"
	"os"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
)

// ScanByStart returns an iterator over one dataset ordered by flow
// start time. Records are start-sorted within every segment, so the
// iterator runs a k-way merge across the shard's segments — but opens
// a segment only when the merge frontier reaches its minimum start
// time and drops it as soon as it drains. Flow lifetimes are short
// relative to a segment's capture window, so consecutive segments
// overlap only at their edges and the merge holds a small constant
// number of decoded segments, not the whole shard.
func (r *Reader) ScanByStart(dataset string) capture.Iterator {
	sh, ok := r.shards[dataset]
	if !ok {
		return capture.IterSlice(nil)
	}
	it := &startIterator{r: r, sh: sh}
	// Pending segments in ascending min-start order; ties resolve by
	// spill order for determinism.
	it.pending = make([]int, len(sh.segs))
	for i := range it.pending {
		it.pending[i] = i
	}
	sortSegsByMinStart(sh, it.pending)
	return it
}

// sortSegsByMinStart orders segment indices by (minStart, spill order).
func sortSegsByMinStart(sh *rshard, idx []int) {
	for i := 1; i < len(idx); i++ { // insertion sort: spill order is nearly sorted already
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if sh.segs[a].minStart < sh.segs[b].minStart ||
				(sh.segs[a].minStart == sh.segs[b].minStart && a < b) {
				break
			}
			idx[j-1], idx[j] = b, a
		}
	}
}

// startArm is one open segment inside the start-ordered merge.
type startArm struct {
	seg       int // spill-order index, the deterministic tie-break
	recs      []capture.FlowRecord
	i         int
	footprint int64
}

// armHeap orders open segments by (current record start, spill order).
type armHeap []*startArm

func (h armHeap) Len() int { return len(h) }
func (h armHeap) Less(a, b int) bool {
	ra, rb := h[a].recs[h[a].i], h[b].recs[h[b].i]
	if ra.Start != rb.Start {
		return ra.Start < rb.Start
	}
	return h[a].seg < h[b].seg
}
func (h armHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *armHeap) Push(x any)   { *h = append(*h, x.(*startArm)) }
func (h *armHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// startIterator merges a shard's segments into global start order.
type startIterator struct {
	r       *Reader
	sh      *rshard
	f       *os.File
	pending []int // unopened segment indices, ascending minStart
	arms    armHeap
	err     error
	done    bool
}

// Next implements capture.Iterator.
func (it *startIterator) Next() (capture.FlowRecord, bool) {
	if it.done {
		return capture.FlowRecord{}, false
	}
	// Open every pending segment that could hold the next record: while
	// the heap is empty, or the earliest unopened segment starts at or
	// before the heap's current minimum.
	for len(it.pending) > 0 {
		next := it.pending[0]
		if len(it.arms) > 0 {
			top := it.arms[0]
			if it.sh.segs[next].minStart > top.recs[top.i].Start {
				break
			}
		}
		if !it.openSegment(next) {
			return capture.FlowRecord{}, false
		}
		it.pending = it.pending[1:]
	}
	if len(it.arms) == 0 {
		it.finish(nil)
		return capture.FlowRecord{}, false
	}
	top := it.arms[0]
	rec := top.recs[top.i]
	top.i++
	if top.i >= len(top.recs) {
		heap.Pop(&it.arms)
		it.r.release(top.footprint)
	} else {
		heap.Fix(&it.arms, 0)
	}
	return rec, true
}

// openSegment decodes segment seg into a new merge arm.
func (it *startIterator) openSegment(seg int) bool {
	if it.f == nil {
		f, err := os.Open(it.sh.path)
		if err != nil {
			it.finish(fmt.Errorf("tracestore: %w", err))
			return false
		}
		it.f = f
	}
	// A fresh buffer per arm: arms coexist on the merge heap, so their
	// record slices must not share backing arrays.
	recs, fp, err := it.r.loadSegment(it.f, it.sh, seg, &decodeBuf{})
	if err != nil {
		it.finish(err)
		return false
	}
	if len(recs) == 0 {
		it.r.release(fp)
		return true
	}
	heap.Push(&it.arms, &startArm{seg: seg, recs: recs, footprint: fp})
	return true
}

// Err implements capture.Iterator.
func (it *startIterator) Err() error { return it.err }

// Close releases the iterator early; idempotent.
func (it *startIterator) Close() error {
	it.finish(it.err)
	return it.err
}

// finish releases all open arms and the file handle.
func (it *startIterator) finish(err error) {
	if it.done {
		return
	}
	it.done = true
	if it.err == nil {
		it.err = err
	}
	for _, arm := range it.arms {
		it.r.release(arm.footprint)
	}
	it.arms = nil
	it.pending = nil
	if it.f != nil {
		if cerr := it.f.Close(); cerr != nil && it.err == nil {
			it.err = fmt.Errorf("tracestore: %w", cerr)
		}
		it.f = nil
	}
}

// MergeIterator is a start-time-ordered view across several datasets:
// a k-way merge of per-dataset ScanByStart streams that also reports
// which dataset each record came from. Ties break by dataset name so
// the merged stream is deterministic.
type MergeIterator struct {
	arms []mergeArm
	heap mergeHeap
	err  error
	done bool
}

// mergeArm is one dataset's stream plus its lookahead record.
type mergeArm struct {
	dataset string
	it      capture.Iterator
	cur     capture.FlowRecord
}

// mergeHeap orders arm indices by (current start, dataset name).
type mergeHeap struct {
	arms []mergeArm
	idx  []int
}

func (h mergeHeap) Len() int { return len(h.idx) }
func (h mergeHeap) Less(a, b int) bool {
	ra, rb := h.arms[h.idx[a]], h.arms[h.idx[b]]
	if ra.cur.Start != rb.cur.Start {
		return ra.cur.Start < rb.cur.Start
	}
	return ra.dataset < rb.dataset
}
func (h mergeHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *mergeHeap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *mergeHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// MergeByStart merges the given datasets (all of them when none are
// named) into one start-ordered stream. Memory stays bounded by the
// per-dataset ScanByStart guarantee: a few decoded segments per shard.
func (r *Reader) MergeByStart(datasets ...string) *MergeIterator {
	if len(datasets) == 0 {
		datasets = r.Datasets()
	}
	m := &MergeIterator{}
	for _, name := range datasets {
		m.arms = append(m.arms, mergeArm{dataset: name, it: r.ScanByStart(name)})
	}
	m.heap.arms = m.arms
	for i := range m.arms {
		if m.advance(i) {
			m.heap.idx = append(m.heap.idx, i)
		}
		if m.done {
			return m
		}
	}
	heap.Init(&m.heap)
	return m
}

// advance pulls the next lookahead record into arm i, reporting
// whether the arm is still live.
func (m *MergeIterator) advance(i int) bool {
	rec, ok := m.arms[i].it.Next()
	if !ok {
		if err := m.arms[i].it.Err(); err != nil {
			m.fail(err)
		}
		return false
	}
	m.arms[i].cur = rec
	return true
}

// Next returns the next record in global start order with its dataset.
func (m *MergeIterator) Next() (dataset string, rec capture.FlowRecord, ok bool) {
	if m.done || m.heap.Len() == 0 {
		m.done = true
		return "", capture.FlowRecord{}, false
	}
	i := m.heap.idx[0]
	dataset, rec = m.arms[i].dataset, m.arms[i].cur
	if m.advance(i) {
		heap.Fix(&m.heap, 0)
	} else {
		if m.done { // a stream failed mid-merge
			return "", capture.FlowRecord{}, false
		}
		heap.Pop(&m.heap)
	}
	return dataset, rec, true
}

// Err returns the first stream error.
func (m *MergeIterator) Err() error { return m.err }

// fail closes every arm after the first error.
func (m *MergeIterator) fail(err error) {
	if m.err == nil {
		m.err = err
	}
	m.done = true
	for _, arm := range m.arms {
		if c, ok := arm.it.(interface{ Close() error }); ok {
			c.Close()
		}
	}
}
