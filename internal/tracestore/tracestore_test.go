package tracestore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// genRecords produces a deterministic pseudo-random record stream that
// looks like a capture: clustered servers, a small resolution set,
// mostly-increasing start times with jitter.
func genRecords(seed int64, n int) []capture.FlowRecord {
	g := rand.New(rand.NewSource(seed))
	out := make([]capture.FlowRecord, n)
	base := time.Duration(0)
	for i := range out {
		base += time.Duration(g.Intn(2000)) * time.Millisecond
		start := base - time.Duration(g.Intn(5000))*time.Millisecond
		if start < 0 {
			start = 0
		}
		out[i] = capture.FlowRecord{
			Client:     ipnet.Addr(0x0A000000 + uint32(g.Intn(1<<16))),
			Server:     ipnet.Addr(0xADC20000 + uint32(g.Intn(64))),
			Start:      start,
			End:        start + time.Duration(g.Intn(120_000))*time.Millisecond,
			Bytes:      int64(g.Intn(10_000_000)),
			VideoID:    fmt.Sprintf("vid%08d", g.Intn(500)),
			Resolution: []string{"240p", "360p", "480p", "720p"}[g.Intn(4)],
		}
	}
	return out
}

// writeStore spills recs into per-dataset shards and closes the store.
func writeStore(t *testing.T, dir string, segRecords int, byDS map[string][]capture.FlowRecord) {
	t.Helper()
	w, err := NewWriter(dir, Options{SegmentRecords: segRecords})
	if err != nil {
		t.Fatal(err)
	}
	for ds, recs := range byDS {
		for _, r := range recs {
			w.Record(ds, r)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// expectStored reorders recs the way the store does: chunked into
// spill-sized segments, each stable-sorted by start time.
func expectStored(recs []capture.FlowRecord, segRecords int) []capture.FlowRecord {
	out := make([]capture.FlowRecord, len(recs))
	copy(out, recs)
	for off := 0; off < len(out); off += segRecords {
		end := off + segRecords
		if end > len(out) {
			end = len(out)
		}
		seg := out[off:end]
		sort.SliceStable(seg, func(i, j int) bool { return seg[i].Start < seg[j].Start })
	}
	return out
}

func TestSegmentRoundTrip(t *testing.T) {
	recs := genRecords(1, 1000)
	want := expectStored(recs, len(recs))
	header, payload := encodeSegment(recs)
	h, err := parseSegHeader(header)
	if err != nil {
		t.Fatal(err)
	}
	if int(h.count) != len(recs) {
		t.Fatalf("count = %d", h.count)
	}
	if h.minStart != want[0].Start || h.maxStart != want[len(want)-1].Start {
		t.Errorf("min/max start %v/%v, want %v/%v", h.minStart, h.maxStart, want[0].Start, want[len(want)-1].Start)
	}
	got, err := decodeSegment(payload, int(h.count))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestSegmentRoundTripExtremes(t *testing.T) {
	recs := []capture.FlowRecord{
		{Start: -5 * time.Second, End: -6 * time.Second, Bytes: -42, VideoID: "", Resolution: ""},
		{Client: 0xFFFFFFFF, Server: 0xFFFFFFFF, Start: 1<<62 - 1, End: 1<<62 - 1, Bytes: 1<<63 - 1, VideoID: "x", Resolution: "y"},
		{Start: 0, End: 0},
	}
	header, payload := encodeSegment(recs)
	h, err := parseSegHeader(header)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSegment(payload, int(h.count))
	if err != nil {
		t.Fatal(err)
	}
	want := expectStored(recs, len(recs))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const segRecords = 128
	byDS := map[string][]capture.FlowRecord{
		"US-Campus": genRecords(2, 1000), // 7 full segments + partial
		"EU2":       genRecords(3, 128),  // exactly one segment
		"tiny":      genRecords(4, 5),    // partial only
	}
	writeStore(t, dir, segRecords, byDS)

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := r.Datasets()
	if len(names) != 3 || names[0] != "EU2" || names[1] != "US-Campus" || names[2] != "tiny" {
		t.Fatalf("Datasets = %v", names)
	}
	if r.TotalRecords() != 1133 {
		t.Errorf("TotalRecords = %d", r.TotalRecords())
	}
	for ds, recs := range byDS {
		if r.Truncated(ds) {
			t.Errorf("%s reported truncated", ds)
		}
		if got := r.Records(ds); got != int64(len(recs)) {
			t.Errorf("%s Records = %d, want %d", ds, got, len(recs))
		}
		got, err := r.Trace(ds)
		if err != nil {
			t.Fatal(err)
		}
		want := expectStored(recs, segRecords)
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d", ds, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s record %d: got %+v want %+v", ds, i, got[i], want[i])
			}
		}
	}
	if segs := r.Segments("US-Campus"); segs != 8 {
		t.Errorf("US-Campus segments = %d, want 8", segs)
	}
	if recs, err := r.Trace("missing"); err != nil || recs != nil {
		t.Errorf("missing dataset: %v, %v", recs, err)
	}
	if r.BufferedBytes() != 0 {
		t.Errorf("BufferedBytes = %d after full drains", r.BufferedBytes())
	}
}

func TestFunkyDatasetNames(t *testing.T) {
	dir := t.TempDir()
	names := []string{"a/b", "ü — spaces & sláshes", "plain", ""}
	byDS := make(map[string][]capture.FlowRecord)
	for i, name := range names {
		byDS[name] = genRecords(int64(10+i), 10)
	}
	writeStore(t, dir, 4, byDS)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Datasets()) != len(names) {
		t.Fatalf("Datasets = %v", r.Datasets())
	}
	for _, name := range names {
		if r.Records(name) != 10 {
			t.Errorf("dataset %q: %d records", name, r.Records(name))
		}
	}
}

func TestScanByStartOrdered(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(5, 3000)
	writeStore(t, dir, 256, map[string][]capture.FlowRecord{"ds": recs})
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := capture.Collect(r.ScanByStart("ds"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatalf("order violated at %d: %v after %v", i, got[i].Start, got[i-1].Start)
		}
	}
	// Same multiset: compare against a fully sorted copy.
	want := make([]capture.FlowRecord, len(recs))
	copy(want, recs)
	sort.SliceStable(want, func(i, j int) bool { return want[i].Start < want[j].Start })
	sortTies(want)
	sortTies(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch after normalization", i)
		}
	}
	if r.BufferedBytes() != 0 {
		t.Errorf("BufferedBytes = %d after drain", r.BufferedBytes())
	}
}

// sortTies canonicalizes runs of equal start times so two start-ordered
// streams can be compared record by record.
func sortTies(recs []capture.FlowRecord) {
	i := 0
	for i < len(recs) {
		j := i + 1
		for j < len(recs) && recs[j].Start == recs[i].Start {
			j++
		}
		run := recs[i:j]
		sort.Slice(run, func(a, b int) bool {
			if run[a].End != run[b].End {
				return run[a].End < run[b].End
			}
			if run[a].Client != run[b].Client {
				return run[a].Client < run[b].Client
			}
			return run[a].Bytes < run[b].Bytes
		})
		i = j
	}
}

func TestMergeByStart(t *testing.T) {
	dir := t.TempDir()
	byDS := map[string][]capture.FlowRecord{
		"a": genRecords(6, 500),
		"b": genRecords(7, 700),
	}
	writeStore(t, dir, 64, byDS)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := r.MergeByStart()
	var prev capture.FlowRecord
	var prevDS string
	counts := map[string]int{}
	n := 0
	for {
		ds, rec, ok := m.Next()
		if !ok {
			break
		}
		if n > 0 {
			if rec.Start < prev.Start {
				t.Fatalf("merge order violated at %d", n)
			}
			// Equal-start runs must list datasets in name order.
			if rec.Start == prev.Start && ds < prevDS {
				t.Fatalf("tie-break violated at %d: %s after %s", n, ds, prevDS)
			}
		}
		prev, prevDS = rec, ds
		counts[ds]++
		n++
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 500 || counts["b"] != 700 {
		t.Errorf("per-dataset counts = %v", counts)
	}
}

func TestCrashTruncation(t *testing.T) {
	dir := t.TempDir()
	const segRecords = 100
	recs := genRecords(8, 950) // 9 full segments + partial tail
	writeStore(t, dir, segRecords, map[string][]capture.FlowRecord{"ds": recs})
	path := filepath.Join(dir, shardFileName("ds"))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop increasing amounts off the tail; every prefix must recover
	// all segments that remain complete, with no error.
	for _, chop := range []int64{1, 17, segHeaderSize - 1, segHeaderSize + 5, 200, 1000} {
		trimmed := filepath.Join(t.TempDir(), "trunc.shard")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if chop >= info.Size() {
			t.Fatalf("chop %d exceeds file size %d", chop, info.Size())
		}
		if err := os.WriteFile(trimmed, data[:info.Size()-chop], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(filepath.Dir(trimmed))
		if err != nil {
			t.Fatalf("chop %d: %v", chop, err)
		}
		if !r.Truncated("ds") {
			t.Errorf("chop %d: truncation not reported", chop)
		}
		got, err := r.Trace("ds")
		if err != nil {
			t.Fatalf("chop %d: %v", chop, err)
		}
		if len(got)%segRecords != 0 || len(got) > 900 {
			t.Errorf("chop %d: recovered %d records, want a complete-segment multiple <= 900", chop, len(got))
		}
		want := expectStored(recs, segRecords)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chop %d: record %d corrupted", chop, i)
			}
		}
	}
}

// TestTruncatedShardHeaderSkipped covers a crash between shard-file
// creation and the first header write: the artifact must be skipped,
// leaving every intact shard readable.
func TestTruncatedShardHeaderSkipped(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 16, map[string][]capture.FlowRecord{"good": genRecords(30, 40)})
	for i, raw := range [][]byte{
		{},                               // zero-byte file
		[]byte(shardMagic[:3]),           // crash mid-magic
		[]byte(shardMagic),               // crash before the name length
		append([]byte(shardMagic), 0x10), // name length present, name missing
	} {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("crash%d.shard", i)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names := r.Datasets(); len(names) != 1 || names[0] != "good" {
		t.Errorf("Datasets = %v, want [good]", names)
	}
	if r.Records("good") != 40 {
		t.Errorf("good shard lost records: %d", r.Records("good"))
	}
}

// TestNonShardFileRejected pins the distinction: a file that is not a
// crash artifact (wrong magic) is an error, not a silent skip.
func TestNonShardFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "alien.shard"), []byte("NOTASHARDFILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(dir); err == nil {
		t.Error("foreign file must be rejected")
	}
}

// TestCorruptCountRejected flips the count field of a segment header:
// the reader must report corruption instead of attempting a giant
// allocation.
func TestCorruptCountRejected(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 50, map[string][]capture.FlowRecord{"ds": genRecords(31, 100)})
	path := filepath.Join(dir, shardFileName("ds"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// First segment header sits after magic + uvarint(len("ds")) + "ds";
	// count is bytes 4-7 of the header.
	countOff := len(shardMagic) + 1 + 2 + 4
	data[countOff+3] = 0x7F // count becomes ~2^31
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(dir); err == nil {
		t.Error("corrupt segment count must be rejected at open")
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 50, map[string][]capture.FlowRecord{"ds": genRecords(9, 200)})
	path := filepath.Join(dir, shardFileName("ds"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the first segment's payload.
	data[len(shardMagic)+10+segHeaderSize+8] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Trace("ds"); err == nil {
		t.Error("corrupt payload must surface an error")
	}
}

func TestWriterConcurrentDatasets(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		k := k
		go func() {
			defer wg.Done()
			ds := fmt.Sprintf("ds-%d", k%4) // two goroutines share each shard
			recs := genRecords(int64(100+k), perWorker)
			for _, r := range recs {
				w.Record(ds, r)
			}
		}()
	}
	wg.Wait()
	if w.TotalRecords() != workers*perWorker {
		t.Errorf("TotalRecords = %d", w.TotalRecords())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRecords() != workers*perWorker {
		t.Errorf("reader TotalRecords = %d", r.TotalRecords())
	}
	for _, ds := range r.Datasets() {
		if r.Records(ds) != 2*perWorker {
			t.Errorf("%s = %d records", ds, r.Records(ds))
		}
	}
}

func TestWriterReplacesStaleStore(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 16, map[string][]capture.FlowRecord{"old-a": genRecords(11, 50), "old-b": genRecords(12, 50)})
	writeStore(t, dir, 16, map[string][]capture.FlowRecord{"new": genRecords(13, 20)})
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names := r.Datasets(); len(names) != 1 || names[0] != "new" {
		t.Errorf("stale shards survived: %v", names)
	}
}

func TestRecordAfterCloseIsSafe(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	w.Record("ds", genRecords(14, 1)[0])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Record("other", genRecords(15, 1)[0]) // must not panic or create files
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Datasets()) != 1 {
		t.Errorf("Datasets = %v", r.Datasets())
	}
}

// TestScanBoundedMemory is the paper-scale acceptance check: scanning
// over a million records across five shards must never buffer more
// than one decoded segment per shard (the reader's gauge is exact, so
// this is deterministic, not a ReadMemStats guess).
func TestScanBoundedMemory(t *testing.T) {
	perDS := 210_000
	if testing.Short() {
		perDS = 30_000
	}
	const segRecords = 4096
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentRecords: segRecords})
	if err != nil {
		t.Fatal(err)
	}
	datasets := []string{"US-Campus", "EU1-Campus", "EU1-ADSL", "EU1-FTTH", "EU2"}
	for i, ds := range datasets {
		for _, r := range genRecords(int64(20+i), perDS) {
			w.Record(ds, r)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	totals := make([]int64, len(datasets))
	errs := make([]error, len(datasets))
	for i, ds := range datasets {
		i, ds := i, ds
		wg.Add(1)
		go func() {
			defer wg.Done()
			it := r.Iter(ds)
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				totals[i]++
			}
			errs[i] = it.Err()
		}()
	}
	wg.Wait()
	var scanned int64
	for i := range totals {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		scanned += totals[i]
	}
	if !testing.Short() && scanned < 1_000_000 {
		t.Fatalf("scanned %d records, want >= 1M", scanned)
	}
	// One decoded segment per shard: segRecords records plus the
	// per-segment dictionary strings (a generous 64 KiB allowance).
	perSegmentBound := int64(segRecords*flowRecordSize + 64*1024)
	bound := int64(len(datasets)) * perSegmentBound
	if peak := r.PeakBufferedBytes(); peak == 0 || peak > bound {
		t.Errorf("peak buffered %d bytes, want (0, %d]", peak, bound)
	}
	if r.BufferedBytes() != 0 {
		t.Errorf("BufferedBytes = %d after drain", r.BufferedBytes())
	}
}
