package tracestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// Reader opens a store directory for analysis. It indexes every shard
// once (headers only — payloads stay on disk) and hands out streaming
// iterators that decode one segment at a time, so scanning a shard
// buffers at most one decoded segment regardless of trace size.
//
// Reader implements capture.TraceSource, so the analysis side consumes
// a disk store and an in-memory sink through the same interface. It is
// safe for concurrent use; the iterators it returns are not (use one
// per goroutine).
type Reader struct {
	dir    string
	shards map[string]*rshard
	names  []string

	// buffered tracks the decoded-segment bytes currently held by live
	// iterators; peak remembers the high-water mark. These power the
	// bounded-memory benchmark: scanning a store must never buffer more
	// than ~one segment per shard.
	buffered atomic.Int64
	peak     atomic.Int64
	// bytesRead / segsDecoded account scan I/O for the metrics layer
	// (see Instrument).
	bytesRead   atomic.Int64
	segsDecoded atomic.Int64
}

// rshard is one dataset's read-side index.
type rshard struct {
	dataset   string
	path      string
	segs      []segMeta
	records   int64
	truncated bool
}

// segMeta locates one segment inside a shard file.
type segMeta struct {
	payloadOff int64
	segHeader
}

// OpenReader indexes a store directory. Shards with a truncated final
// segment (a crash mid-spill) lose only the truncated tail: every
// complete segment before it is served, and Truncated reports the
// recovery. A shard whose own header never finished (a crash between
// file creation and the first write) carries no recoverable records
// and no dataset name, so it is skipped entirely. Corruption anywhere
// else is an error.
func OpenReader(dir string) (*Reader, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+shardSuffix))
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	sort.Strings(paths)
	r := &Reader{dir: dir, shards: make(map[string]*rshard, len(paths))}
	for _, path := range paths {
		sh, err := indexShard(path)
		if err != nil {
			return nil, err
		}
		if sh == nil {
			continue // truncated shard header: nothing recoverable
		}
		if _, dup := r.shards[sh.dataset]; dup {
			return nil, fmt.Errorf("tracestore: dataset %q appears in two shard files", sh.dataset)
		}
		r.shards[sh.dataset] = sh
		r.names = append(r.names, sh.dataset)
	}
	sort.Strings(r.names)
	return r, nil
}

// indexShard reads a shard's header and walks its segment headers. A
// nil, nil return means the shard header itself was cut short by a
// crash — a skippable artifact, distinct from a non-shard file.
func indexShard(path string) (*rshard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}

	magic := make([]byte, len(shardMagic))
	if n, err := f.ReadAt(magic, 0); err != nil {
		if err == io.EOF && string(magic[:n]) == shardMagic[:n] {
			return nil, nil // crash before the magic finished
		}
		return nil, fmt.Errorf("tracestore: %s is not a shard file", path)
	}
	if string(magic) != shardMagic {
		return nil, fmt.Errorf("tracestore: %s is not a shard file", path)
	}
	// The dataset name is a uvarint length + bytes right after the magic.
	nameHdr := make([]byte, binary.MaxVarintLen64)
	n, err := f.ReadAt(nameHdr, int64(len(shardMagic)))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	nameLen, used := binary.Uvarint(nameHdr[:n])
	if used == 0 {
		return nil, nil // crash before the name length finished
	}
	if used < 0 || nameLen > 1<<16 {
		return nil, fmt.Errorf("tracestore: %s has a malformed shard header", path)
	}
	name := make([]byte, nameLen)
	nameOff := int64(len(shardMagic)) + int64(used)
	if _, err := f.ReadAt(name, nameOff); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, nil // crash before the name finished
		}
		return nil, fmt.Errorf("tracestore: %s shard header: %w", path, err)
	}

	sh := &rshard{dataset: string(name), path: path}
	off := nameOff + int64(nameLen)
	hdr := make([]byte, segHeaderSize)
	for off < size {
		if size-off < segHeaderSize {
			sh.truncated = true // crash mid-header
			break
		}
		if _, err := f.ReadAt(hdr, off); err != nil {
			return nil, fmt.Errorf("tracestore: %s at %d: %w", path, off, err)
		}
		h, err := parseSegHeader(hdr)
		if err != nil {
			return nil, fmt.Errorf("tracestore: %s at %d: %w", path, off, err)
		}
		if size-off-segHeaderSize < int64(h.payloadLen) {
			sh.truncated = true // crash mid-payload
			break
		}
		// Each record costs at least one payload byte (see
		// decodeSegment), so a larger count is a corrupted header.
		if h.count > h.payloadLen {
			return nil, fmt.Errorf("tracestore: %s at %d: segment count %d impossible for %d payload bytes",
				path, off, h.count, h.payloadLen)
		}
		sh.segs = append(sh.segs, segMeta{payloadOff: off + segHeaderSize, segHeader: h})
		sh.records += int64(h.count)
		off += segHeaderSize + int64(h.payloadLen)
	}
	return sh, nil
}

// Dir returns the store directory.
func (r *Reader) Dir() string { return r.dir }

// Datasets implements capture.TraceSource.
func (r *Reader) Datasets() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Records returns the record count of one dataset (0 if absent).
func (r *Reader) Records(dataset string) int64 {
	if sh, ok := r.shards[dataset]; ok {
		return sh.records
	}
	return 0
}

// TotalRecords returns the record count across datasets.
func (r *Reader) TotalRecords() int64 {
	var n int64
	for _, sh := range r.shards {
		n += sh.records
	}
	return n
}

// Segments returns how many complete segments a dataset has.
func (r *Reader) Segments(dataset string) int {
	if sh, ok := r.shards[dataset]; ok {
		return len(sh.segs)
	}
	return 0
}

// Truncated reports whether a dataset's shard ended in a truncated
// segment that was dropped during recovery.
func (r *Reader) Truncated(dataset string) bool {
	if sh, ok := r.shards[dataset]; ok {
		return sh.truncated
	}
	return false
}

// BufferedBytes returns the decoded-segment bytes currently held by
// this reader's live iterators.
func (r *Reader) BufferedBytes() int64 { return r.buffered.Load() }

// PeakBufferedBytes returns the high-water mark of BufferedBytes.
func (r *Reader) PeakBufferedBytes() int64 { return r.peak.Load() }

// acquire charges decoded bytes to the gauge.
func (r *Reader) acquire(n int64) {
	cur := r.buffered.Add(n)
	for {
		p := r.peak.Load()
		if cur <= p || r.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// release returns decoded bytes to the gauge.
func (r *Reader) release(n int64) { r.buffered.Add(-n) }

// loadSegment reads, CRC-checks and decodes one segment into buf. The
// returned records alias buf's arrays: callers that keep a segment
// alive across loads (the start-ordered merge arms) must pass a fresh
// buffer per call, while the sequential scan iterator reuses one for
// its whole walk.
func (r *Reader) loadSegment(f *os.File, sh *rshard, i int, buf *decodeBuf) ([]capture.FlowRecord, int64, error) {
	m := sh.segs[i]
	payload := buf.payloadSlot(int(m.payloadLen))
	if _, err := f.ReadAt(payload, m.payloadOff); err != nil {
		return nil, 0, fmt.Errorf("tracestore: %s segment %d: %w", sh.dataset, i, err)
	}
	if crc32.ChecksumIEEE(payload) != m.crc {
		return nil, 0, fmt.Errorf("tracestore: %s segment %d: checksum mismatch", sh.dataset, i)
	}
	recs, fp, err := buf.decode(int(m.count))
	if err != nil {
		return nil, 0, fmt.Errorf("tracestore: %s segment %d: %w", sh.dataset, i, err)
	}
	r.acquire(fp)
	r.bytesRead.Add(int64(m.payloadLen))
	r.segsDecoded.Add(1)
	return recs, fp, nil
}

// BytesScanned returns the payload bytes read and decoded so far. Safe
// from any goroutine.
func (r *Reader) BytesScanned() int64 { return r.bytesRead.Load() }

// Instrument publishes the reader's live scan accounting into reg:
// "store.scan.bytes", "store.scan.segments",
// "store.scan.buffered_bytes" and "store.scan.peak_buffered_bytes".
func (r *Reader) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("store.scan.bytes", func() float64 { return float64(r.bytesRead.Load()) })
	reg.GaugeFunc("store.scan.segments", func() float64 { return float64(r.segsDecoded.Load()) })
	reg.GaugeFunc("store.scan.buffered_bytes", func() float64 { return float64(r.buffered.Load()) })
	reg.GaugeFunc("store.scan.peak_buffered_bytes", func() float64 { return float64(r.peak.Load()) })
}

// Iter implements capture.TraceSource: a streaming iterator over one
// dataset in stored order (segments in spill order, records
// start-sorted within each segment). It decodes one segment at a time
// and closes its file handle at exhaustion or first error; abandon it
// early with Close.
func (r *Reader) Iter(dataset string) capture.Iterator {
	sh, ok := r.shards[dataset]
	if !ok {
		return capture.IterSlice(nil)
	}
	return &scanIterator{r: r, sh: sh}
}

// scanIterator walks a shard segment by segment. It owns one decodeBuf
// for its lifetime, so steady-state scanning recycles the payload,
// record and dictionary arrays instead of reallocating them per
// segment; the records handed out by Next are therefore valid only
// until the iterator advances past their segment — which is exactly
// the capture.Iterator contract (records are returned by value).
type scanIterator struct {
	r         *Reader
	sh        *rshard
	f         *os.File
	seg       int
	recs      []capture.FlowRecord
	i         int
	footprint int64
	buf       decodeBuf
	err       error
	done      bool
}

// Next implements capture.Iterator.
func (it *scanIterator) Next() (capture.FlowRecord, bool) {
	for {
		if it.i < len(it.recs) {
			rec := it.recs[it.i]
			it.i++
			return rec, true
		}
		if it.done {
			return capture.FlowRecord{}, false
		}
		it.dropSegment()
		if it.seg >= len(it.sh.segs) {
			it.finish(nil)
			return capture.FlowRecord{}, false
		}
		if it.f == nil {
			f, err := os.Open(it.sh.path)
			if err != nil {
				it.finish(fmt.Errorf("tracestore: %w", err))
				return capture.FlowRecord{}, false
			}
			it.f = f
		}
		recs, fp, err := it.r.loadSegment(it.f, it.sh, it.seg, &it.buf)
		if err != nil {
			it.finish(err)
			return capture.FlowRecord{}, false
		}
		it.seg++
		it.recs, it.i, it.footprint = recs, 0, fp
	}
}

// Err implements capture.Iterator.
func (it *scanIterator) Err() error { return it.err }

// Close releases the iterator early. It is idempotent and unnecessary
// after Next has returned false.
func (it *scanIterator) Close() error {
	it.finish(it.err)
	return it.err
}

// dropSegment returns the current decoded segment to the gauge.
func (it *scanIterator) dropSegment() {
	if it.footprint != 0 {
		it.r.release(it.footprint)
		it.footprint = 0
	}
	it.recs, it.i = nil, 0
}

// finish records the terminal state and closes the file.
func (it *scanIterator) finish(err error) {
	if it.done {
		return
	}
	it.done = true
	if it.err == nil {
		it.err = err
	}
	it.dropSegment()
	if it.f != nil {
		if cerr := it.f.Close(); cerr != nil && it.err == nil {
			it.err = fmt.Errorf("tracestore: %w", cerr)
		}
		it.f = nil
	}
}

// Trace materializes a full dataset in stored order — the
// compatibility path for callers that need a slice. Large stores
// should prefer Iter.
func (r *Reader) Trace(dataset string) ([]capture.FlowRecord, error) {
	return capture.Collect(r.Iter(dataset))
}

var _ capture.TraceSource = (*Reader)(nil)
