package tracestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// Writer is a capture.Sink that spills flow records to a disk store.
// It keeps one shard per dataset, each with its own buffer, mutex and
// file, so concurrent datasets (the five monitored networks) record
// without contending on a shared lock. Write errors are sticky per
// shard and surfaced by Close.
type Writer struct {
	dir        string
	segRecords int

	mu     sync.RWMutex // guards the shards map, not the shards
	shards map[string]*wshard
	closed bool

	// Cross-shard I/O accounting, readable mid-run by the metrics
	// scrape goroutine (see Instrument).
	bytesWritten atomic.Int64
	segments     atomic.Int64
	recordsLive  atomic.Int64
}

// wshard is one dataset's write state.
type wshard struct {
	mu      sync.Mutex
	f       *os.File
	buf     []capture.FlowRecord
	records int64
	err     error
	w       *Writer // owner, for cross-shard accounting
}

// NewWriter creates (or truncates into) a store directory and returns
// a writer over it. The directory is created if missing; existing
// shard files in it are removed, so a writer always produces a
// self-consistent store.
func NewWriter(dir string, opts Options) (*Writer, error) {
	if opts.SegmentRecords == 0 {
		opts.SegmentRecords = DefaultSegmentRecords
	}
	if opts.SegmentRecords < 1 {
		return nil, fmt.Errorf("tracestore: SegmentRecords %d < 1", opts.SegmentRecords)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(dir, "*"+shardSuffix))
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	for _, path := range stale {
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("tracestore: removing stale shard: %w", err)
		}
	}
	return &Writer{
		dir:        dir,
		segRecords: opts.SegmentRecords,
		shards:     make(map[string]*wshard),
	}, nil
}

// Dir returns the store directory.
func (w *Writer) Dir() string { return w.dir }

// SegmentRecords returns the per-shard spill threshold.
func (w *Writer) SegmentRecords() int { return w.segRecords }

// shard returns (creating on first use) the dataset's shard.
func (w *Writer) shard(dataset string) (*wshard, error) {
	w.mu.RLock()
	s, ok := w.shards[dataset]
	closed := w.closed
	w.mu.RUnlock()
	if ok {
		return s, nil
	}
	if closed {
		return nil, fmt.Errorf("tracestore: Record after Close")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.shards[dataset]; ok {
		return s, nil
	}
	f, err := os.Create(filepath.Join(w.dir, shardFileName(dataset)))
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	// Shard header: magic, then the authentic dataset name.
	hdr := append([]byte(shardMagic), appendUvarintLen(dataset)...)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracestore: shard header: %w", err)
	}
	s = &wshard{f: f, buf: make([]capture.FlowRecord, 0, w.segRecords), w: w}
	w.bytesWritten.Add(int64(len(hdr)))
	w.shards[dataset] = s
	return s, nil
}

// Record implements capture.Sink. A shard whose file has failed drops
// further records and reports the first error at Close.
func (w *Writer) Record(dataset string, rec capture.FlowRecord) {
	s, err := w.shard(dataset)
	if err != nil {
		// The map-level failure (e.g. Create) is rare and unreportable
		// through the Sink interface; remember it for Close.
		w.mu.Lock()
		if w.shards[dataset] == nil {
			w.shards[dataset] = &wshard{err: err}
		}
		w.mu.Unlock()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = append(s.buf, rec)
	s.records++
	w.recordsLive.Add(1)
	if len(s.buf) >= w.segRecords {
		s.spillLocked()
	}
}

// spillLocked encodes and appends the buffered records as one segment.
// Callers hold s.mu.
func (s *wshard) spillLocked() {
	if len(s.buf) == 0 || s.err != nil {
		return
	}
	header, payload := encodeSegment(s.buf)
	if _, err := s.f.Write(header); err != nil {
		s.err = fmt.Errorf("tracestore: segment header: %w", err)
		return
	}
	if _, err := s.f.Write(payload); err != nil {
		s.err = fmt.Errorf("tracestore: segment payload: %w", err)
		return
	}
	if s.w != nil {
		s.w.bytesWritten.Add(int64(len(header) + len(payload)))
		s.w.segments.Add(1)
	}
	s.buf = s.buf[:0]
}

// BytesWritten returns the shard-file bytes written so far (headers
// and spilled segments; buffered records are not yet counted). Safe
// from any goroutine.
func (w *Writer) BytesWritten() int64 { return w.bytesWritten.Load() }

// SegmentsWritten returns how many segments have been spilled. Safe
// from any goroutine.
func (w *Writer) SegmentsWritten() int64 { return w.segments.Load() }

// Instrument publishes the writer's live I/O accounting into reg:
// "store.write.records", "store.write.bytes" and
// "store.write.segments". The gauges read atomics the writer keeps
// anyway, so scraping mid-run contends with nothing.
func (w *Writer) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("store.write.records", func() float64 { return float64(w.recordsLive.Load()) })
	reg.GaugeFunc("store.write.bytes", func() float64 { return float64(w.bytesWritten.Load()) })
	reg.GaugeFunc("store.write.segments", func() float64 { return float64(w.segments.Load()) })
}

// Flush spills every shard's buffered records as (possibly short)
// segments without closing the writer. It returns the first error in
// dataset order.
func (w *Writer) Flush() error {
	w.mu.RLock()
	names := make([]string, 0, len(w.shards))
	for name := range w.shards {
		names = append(names, name)
	}
	w.mu.RUnlock()
	sort.Strings(names)
	var first error
	for _, name := range names {
		w.mu.RLock()
		s := w.shards[name]
		w.mu.RUnlock()
		s.mu.Lock()
		s.spillLocked()
		if s.err != nil && first == nil {
			first = s.err
		}
		s.mu.Unlock()
	}
	return first
}

// Close spills all buffers, syncs and closes every shard file, and
// returns the first error in dataset order. The writer is unusable
// afterwards.
func (w *Writer) Close() error {
	first := w.Flush()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	names := make([]string, 0, len(w.shards))
	for name := range w.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := w.shards[name]
		s.mu.Lock()
		if s.err != nil && first == nil {
			first = s.err
		}
		if s.f != nil {
			if err := s.f.Sync(); err != nil && first == nil {
				first = fmt.Errorf("tracestore: %w", err)
			}
			if err := s.f.Close(); err != nil && first == nil {
				first = fmt.Errorf("tracestore: %w", err)
			}
			s.f = nil
		}
		s.mu.Unlock()
	}
	return first
}

// TotalRecords returns the number of records accepted so far.
func (w *Writer) TotalRecords() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var n int64
	for _, s := range w.shards {
		s.mu.Lock()
		n += s.records
		s.mu.Unlock()
	}
	return n
}

var _ capture.Sink = (*Writer)(nil)

// appendUvarintLen renders a length-prefixed string.
func appendUvarintLen(s string) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(s)))
	return append(buf, s...)
}
