package tracestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// fuzzRecords builds a small realistic record batch whose encoding
// seeds the fuzz corpora with genuine segment bytes.
func fuzzRecords(n int) []capture.FlowRecord {
	recs := make([]capture.FlowRecord, n)
	for i := range recs {
		recs[i] = capture.FlowRecord{
			Client:     ipnet.Addr(0x80D20000 + uint32(i)),
			Server:     ipnet.Addr(0x4A7D0000 + uint32(i%7)),
			Start:      time.Duration(i) * 13 * time.Millisecond,
			End:        time.Duration(i)*13*time.Millisecond + 40*time.Second,
			Bytes:      1000 + int64(i)*7919,
			VideoID:    fmt.Sprintf("vid%08d", i%5),
			Resolution: []string{"360p", "480p", "720p"}[i%3],
		}
	}
	return recs
}

// FuzzDecodeSegment hammers the segment payload decoder: whatever the
// bytes and the claimed record count, it must return an error or valid
// records — never panic, and never allocate proportionally to a
// corrupted (huge) count or dictionary length rather than to the
// actual payload.
func FuzzDecodeSegment(f *testing.F) {
	// Seed with real encoded payloads at a few sizes, plus their
	// corruptions: flipped dictionary length, truncation, bit flips.
	for _, n := range []int{1, 5, 64} {
		_, payload := encodeSegment(fuzzRecords(n))
		f.Add(payload, n)
		f.Add(payload, n+1)                // count off by one
		f.Add(payload, 1<<30)              // absurd count
		f.Add(payload[:len(payload)/2], n) // truncated payload
		if len(payload) > 10 {
			mut := bytes.Clone(payload)
			mut[len(mut)/3] ^= 0xFF // corrupt a column mid-stream
			f.Add(mut, n)
		}
	}
	f.Add([]byte{}, 0)
	f.Add([]byte{0xFF}, 1)

	f.Fuzz(func(t *testing.T, payload []byte, count int) {
		recs, err := decodeSegment(payload, count)
		if err != nil {
			return
		}
		// On success the decode must be internally consistent: exactly
		// count records, and bounded by what the payload can encode
		// (>= 1 byte per record in the start column alone).
		if len(recs) != count {
			t.Fatalf("decoded %d records, header said %d", len(recs), count)
		}
		if count > len(payload) {
			t.Fatalf("decoded %d records from a %d-byte payload", count, len(payload))
		}
	})
}

// FuzzParseSegHeader checks the fixed-size header parser never panics
// and never accepts a wrong magic.
func FuzzParseSegHeader(f *testing.F) {
	hdr, payload := encodeSegment(fuzzRecords(8))
	f.Add(hdr)
	f.Add(hdr[:16])
	f.Add(append([]byte{}, payload[:min(len(payload), segHeaderSize)]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := parseSegHeader(data)
		if err != nil {
			return
		}
		if len(data) < segHeaderSize {
			t.Fatalf("parsed a %d-byte header (need %d)", len(data), segHeaderSize)
		}
		if binary.LittleEndian.Uint32(data) != segMagic {
			t.Fatalf("accepted header with magic %#x", binary.LittleEndian.Uint32(data))
		}
		_ = h
	})
}

// FuzzOpenShard feeds whole shard files — seeded from a real one —
// through the reader's index + scan path: corrupted shard headers,
// segment headers, CRCs and dictionaries must surface as errors (or
// clean truncation recovery), never as panics or runaway allocations.
func FuzzOpenShard(f *testing.F) {
	// Build a genuine two-segment shard in memory via the writer.
	dir := f.TempDir()
	w, err := NewWriter(dir, Options{SegmentRecords: 8})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range fuzzRecords(20) {
		w.Record("fuzz-ds", r)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*"+shardSuffix))
	if err != nil || len(paths) != 1 {
		f.Fatalf("shard glob: %v (%d files)", err, len(paths))
	}
	shard, err := os.ReadFile(paths[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(shard)
	f.Add(shard[:len(shard)/2])      // mid-segment truncation
	f.Add(shard[:len(shardMagic)+1]) // truncated shard header
	for _, off := range []int{4, 20, len(shard) / 2, len(shard) - 3} {
		if off < len(shard) {
			mut := bytes.Clone(shard)
			mut[off] ^= 0xA5 // header / CRC / dictionary corruption
			f.Add(mut)
		}
	}
	f.Add([]byte("not a shard file at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, "fuzz"+shardSuffix), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(fdir)
		if err != nil {
			return // rejected at indexing: fine
		}
		for _, name := range r.Datasets() {
			// Both scan orders must either stream records or error —
			// CRC mismatches and malformed payloads surface here.
			for _, it := range []capture.Iterator{r.Iter(name), r.ScanByStart(name)} {
				n := 0
				for {
					_, ok := it.Next()
					if !ok {
						break
					}
					n++
					if int64(n) > r.Records(name) {
						t.Fatalf("%s yielded %d records, index says %d", name, n, r.Records(name))
					}
				}
				_ = it.Err() // error or nil — only panics are failures
			}
		}
		if r.BufferedBytes() != 0 {
			t.Fatalf("iterators leaked %d buffered bytes", r.BufferedBytes())
		}
	})
}
