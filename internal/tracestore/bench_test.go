package tracestore

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs/report"
)

// benchStore writes n synthetic records into a fresh store and returns
// the directory plus the on-disk byte size.
func benchStore(tb testing.TB, n, segRecords int) (string, int64) {
	tb.Helper()
	dir := tb.TempDir()
	w, err := NewWriter(dir, Options{SegmentRecords: segRecords})
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range genRecords(42, n) {
		w.Record("bench", r)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return dir, storeBytes(tb, dir)
}

// storeBytes sums the shard file sizes of a store.
func storeBytes(tb testing.TB, dir string) int64 {
	tb.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*"+shardSuffix))
	if err != nil {
		tb.Fatal(err)
	}
	var total int64
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			tb.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

func BenchmarkWrite(b *testing.B) {
	recs := genRecords(42, 100_000)
	b.ResetTimer()
	var disk int64
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		w, err := NewWriter(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			w.Record("bench", r)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		disk = storeBytes(b, dir)
		b.StartTimer()
	}
	b.ReportMetric(float64(disk)/float64(len(recs)), "disk_bytes/record")
	b.SetBytes(disk)
}

func BenchmarkScan(b *testing.B) {
	dir, disk := benchStore(b, 100_000, DefaultSegmentRecords)
	r, err := OpenReader(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(disk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := r.Iter("bench")
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if it.Err() != nil || n != 100_000 {
			b.Fatalf("scan: %d records, err %v", n, it.Err())
		}
	}
	b.ReportMetric(float64(r.PeakBufferedBytes()), "peak_buffered_bytes")
}

func BenchmarkScanByStart(b *testing.B) {
	dir, disk := benchStore(b, 100_000, DefaultSegmentRecords)
	r, err := OpenReader(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(disk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := r.ScanByStart("bench")
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if it.Err() != nil || n != 100_000 {
			b.Fatalf("scan: %d records, err %v", n, it.Err())
		}
	}
	b.ReportMetric(float64(r.PeakBufferedBytes()), "peak_buffered_bytes")
}

// TestBenchArtifact emits BENCH_tracestore.json for the CI benchmark
// smoke step when BENCH_TRACESTORE_JSON names the output path. It
// measures write and scan throughput plus the storage density and the
// bounded-memory gauge over a one-million-record store.
func TestBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_TRACESTORE_JSON")
	if out == "" {
		t.Skip("set BENCH_TRACESTORE_JSON to emit the benchmark artifact")
	}
	const n = 1_000_000
	const segRecords = 1 << 14
	recs := genRecords(42, n)

	dir := t.TempDir()
	wStart := time.Now()
	w, err := NewWriter(dir, Options{SegmentRecords: segRecords})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		w.Record("bench", r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	writeSecs := time.Since(wStart).Seconds()
	disk := storeBytes(t, dir)

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Bracket the scan with memory accounting: Mallocs/TotalAlloc are
	// monotonic, so the deltas are exact even if a GC cycle runs
	// mid-scan. The zero-alloc decode path should keep both per-record
	// rates near zero — the numbers regress visibly if it breaks.
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	sStart := time.Now()
	it := r.Iter("bench")
	scanned := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		scanned++
	}
	if it.Err() != nil || scanned != n {
		t.Fatalf("scan: %d records, err %v", scanned, it.Err())
	}
	scanSecs := time.Since(sStart).Seconds()
	runtime.ReadMemStats(&ms1)

	rep := report.New("tracestore-bench").
		Set("records", strconv.Itoa(n)).
		Set("segment_records", strconv.Itoa(segRecords)).
		Add("store.disk.bytes", float64(disk), "bytes").
		Add("store.disk.bytes_per_record", float64(disk)/float64(n), "bytes").
		Add("store.write.bytes_per_sec", float64(disk)/writeSecs, "bytes/sec").
		Add("store.write.records_per_sec", float64(n)/writeSecs, "events/sec").
		Add("store.scan.bytes_per_sec", float64(disk)/scanSecs, "bytes/sec").
		Add("store.scan.records_per_sec", float64(n)/scanSecs, "events/sec").
		Add("store.scan.peak_buffered_bytes", float64(r.PeakBufferedBytes()), "bytes").
		Add("store.scan.allocs_per_record", float64(ms1.Mallocs-ms0.Mallocs)/float64(n), "allocs/op").
		Add("store.scan.alloc_bytes_per_record", float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(n), "bytes/op")
	if err := rep.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
