package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/obs"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// Config tunes the selection engine.
type Config struct {
	// MaxRedirects bounds an application-layer redirect chain.
	MaxRedirects int
	// Policy is the selection policy the engine delegates to. Nil
	// means the paper's behaviour: a PaperPolicy assembled from the
	// three legacy ablation fields below.
	Policy SelectionPolicy
	// DNSLoadBalancing enables adaptive spilling away from an
	// overloaded preferred DC. Disabling it is the §VII-A ablation.
	// Consumed by the default PaperPolicy; ignored when Policy is set.
	DNSLoadBalancing bool
	// HotspotRedirection enables server-level overload redirects.
	// Disabling it is the §VII-C hot-spot ablation. Consumed by the
	// default PaperPolicy; ignored when Policy is set.
	HotspotRedirection bool
	// SpillCandidates is how many next-best DCs a spilled resolution
	// considers. Consumed by the default PaperPolicy; ignored when
	// Policy is set.
	SpillCandidates int
}

// DefaultConfig returns the engine configuration matching the paper's
// observed behaviour.
func DefaultConfig() Config {
	return Config{
		MaxRedirects:       3,
		DNSLoadBalancing:   true,
		HotspotRedirection: true,
		SpillCandidates:    3,
	}
}

// Decision is a content server's answer to a video request.
type Decision struct {
	// Redirected is false when the contacted server serves the video.
	Redirected bool
	// Target is the server the client is redirected to (valid when
	// Redirected).
	Target topology.ServerID
	// Reason records why the request was redirected, for ablation
	// accounting; it is ground truth the analysis pipeline never sees.
	Reason RedirectReason
}

// RedirectReason labels the cause of an application-layer redirect.
type RedirectReason int

// Redirect reasons.
const (
	ReasonNone    RedirectReason = iota
	ReasonMiss                   // video absent at this data center
	ReasonHotspot                // server above capacity
)

// String implements fmt.Stringer.
func (r RedirectReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonMiss:
		return "miss"
	case ReasonHotspot:
		return "hotspot"
	default:
		return "invalid"
	}
}

// Selector is the server-selection engine. Since the policy split it
// is deliberately thin: it owns the ground truth a policy consults
// (the per-LDNS preferred map and RTT ranking), the shared load
// trackers, the placement layer (including pull-through on misses)
// and the mechanism counters — and delegates every actual decision to
// its SelectionPolicy through a restricted PolicyView.
//
// The Selector is the one point where the otherwise-independent
// vantage-point shards of a simulation couple, so it is safe for
// concurrent use: load trackers and mechanism counters are atomic,
// placement pull-through is mutex-guarded, and the active policy sits
// behind an atomic pointer so a mid-run SetPolicy (scenario timelines)
// cannot race in-flight decisions.
type Selector struct {
	w         *topology.World
	placement *Placement
	cfg       Config
	policy    atomic.Pointer[SelectionPolicy]

	// prefByLDNS is the ground-truth preferred DC per local DNS
	// server: RTT-best unless overridden by assignment policy.
	prefByLDNS []topology.DataCenterID
	// rankByLDNS lists Google DCs in increasing RTT order per LDNS.
	rankByLDNS [][]topology.DataCenterID
	// rankIndex inverts rankByLDNS: rankIndex[ldns][dc] is dc's rank,
	// -1 for DCs outside the ranking. Built once so the miss-redirect
	// hot path (closestTo) never allocates.
	rankIndex [][]int32

	dcFlows  *LoadTracker // concurrent video flows per DC (DNS view)
	srvSess  *LoadTracker // concurrent sessions per server
	spills   atomic.Int64 // resolutions answered off-preferred
	hotspots atomic.Int64 // hotspot redirect count
	misses   atomic.Int64 // miss redirect count
}

// NewSelector builds the engine for a world. The preferred map is
// computed from base RTTs between each vantage point and each Google
// DC, then patched with the world's assignment-policy overrides.
func NewSelector(w *topology.World, placement *Placement, cfg Config) (*Selector, error) {
	if cfg.MaxRedirects < 1 {
		return nil, fmt.Errorf("core: MaxRedirects must be >= 1, got %d", cfg.MaxRedirects)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = &PaperPolicy{
			DNSLoadBalancing:   cfg.DNSLoadBalancing,
			HotspotRedirection: cfg.HotspotRedirection,
			SpillCandidates:    cfg.SpillCandidates,
		}
	}
	if err := ValidatePolicy(policy); err != nil {
		return nil, err
	}
	s := &Selector{
		w:          w,
		placement:  placement,
		cfg:        cfg,
		prefByLDNS: make([]topology.DataCenterID, len(w.LDNSes)),
		rankByLDNS: make([][]topology.DataCenterID, len(w.LDNSes)),
		rankIndex:  make([][]int32, len(w.LDNSes)),
		dcFlows:    NewLoadTracker("dc-flows", len(w.DataCenters)),
		srvSess:    NewLoadTracker("server-sessions", len(w.Servers)),
	}
	s.policy.Store(&policy)
	google := w.GoogleDCs()
	for _, ldns := range w.LDNSes {
		vp := w.VantagePoints[ldns.VantagePoint]
		ep := vp.Endpoint()
		ranked := make([]topology.DataCenterID, len(google))
		copy(ranked, google)
		sort.Slice(ranked, func(i, j int) bool {
			return w.Net.BaseRTT(ep, w.DC(ranked[i]).Endpoint()) <
				w.Net.BaseRTT(ep, w.DC(ranked[j]).Endpoint())
		})
		s.rankByLDNS[ldns.ID] = ranked
		idx := make([]int32, len(w.DataCenters))
		for i := range idx {
			idx[i] = -1
		}
		for rank, dc := range ranked {
			idx[dc] = int32(rank)
		}
		s.rankIndex[ldns.ID] = idx
		if dc, ok := w.PreferredOverrides[ldns.ID]; ok {
			s.prefByLDNS[ldns.ID] = dc
		} else {
			s.prefByLDNS[ldns.ID] = ranked[0]
		}
	}
	return s, nil
}

// Policy returns the active selection policy.
func (s *Selector) Policy() SelectionPolicy { return *s.policy.Load() }

// SetPolicy swaps the active selection policy, modelling the
// assignment-policy change the paper observed between its 2010 capture
// and the February 2011 follow-up. Load trackers, placement state and
// mechanism counters carry over — only future decisions change. The
// swap is atomic: decisions already holding the old policy finish
// under it, later decisions see the new one.
func (s *Selector) SetPolicy(p SelectionPolicy) error {
	if err := ValidatePolicy(p); err != nil {
		return err
	}
	s.policy.Store(&p)
	return nil
}

// MaxRedirects returns the engine's redirect-chain bound.
func (s *Selector) MaxRedirects() int { return s.cfg.MaxRedirects }

// view builds the restricted policy window for one decision.
func (s *Selector) view(g *stats.RNG) PolicyView { return PolicyView{RNG: g, sel: s} }

// viewTruth builds a policy window whose mutable-state reads come from
// an optimistic-validation truth view (see TruthView).
func (s *Selector) viewTruth(g *stats.RNG, tv *TruthView) PolicyView {
	return PolicyView{RNG: g, sel: s, tv: tv}
}

// Preferred returns the ground-truth preferred DC of an LDNS.
func (s *Selector) Preferred(id topology.LDNSID) topology.DataCenterID {
	return s.prefByLDNS[id]
}

// RankedDCs returns the LDNS's Google DCs in increasing RTT order.
// The slice is a copy: the ranking is ground truth shared by every
// policy decision, so callers must not be able to corrupt it.
func (s *Selector) RankedDCs(id topology.LDNSID) []topology.DataCenterID {
	ranked := s.rankByLDNS[id]
	out := make([]topology.DataCenterID, len(ranked))
	copy(out, ranked)
	return out
}

// serverFor returns the server a video maps to inside a DC, by
// consistent hashing. One server absorbs all of a video's load within
// a DC — the precondition for hot-spots.
//
//perf:hot
//perf:noalloc
func (s *Selector) serverFor(dc topology.DataCenterID, v content.VideoID) topology.ServerID {
	fleet := s.w.DC(dc).Servers
	idx := hashU64("video-server", int64(dc), int64(v)) % uint64(len(fleet))
	return fleet[idx].ID
}

// ResolveDNS models step 3 of the paper's Fig 1: the authoritative DNS
// answers the LDNS's query for a video-specific content hostname. The
// policy picks the data center; the engine maps it to the video's
// hashed server and counts off-preferred answers as spills.
func (s *Selector) ResolveDNS(id topology.LDNSID, v content.VideoID, g *stats.RNG) topology.ServerID {
	dc := s.Policy().ResolveDNS(s.view(g), id, v)
	if dc != s.prefByLDNS[id] {
		s.spills.Add(1)
	}
	return s.serverFor(dc, v)
}

// RaceCandidates returns the policy's candidate servers for
// client-side racing, or nil when the active policy does not race.
// The caller (the player) commits to a winner via CommitRace.
func (s *Selector) RaceCandidates(id topology.LDNSID, v content.VideoID, g *stats.RNG) []topology.ServerID {
	rp, ok := s.Policy().(RacingPolicy)
	if !ok {
		return nil
	}
	return rp.RaceCandidates(s.view(g), id, v)
}

// CommitRace records the server a racing player committed to, keeping
// the spill ground truth consistent with the DNS path: a commitment
// outside the requester's preferred DC counts as a spill.
func (s *Selector) CommitRace(id topology.LDNSID, srv topology.ServerID) {
	if s.w.Server(srv).DC != s.prefByLDNS[id] {
		s.spills.Add(1)
	}
}

// Home carries the requester-side origin parameters of a vantage
// point: its continent plus the foreign-tail bias (see Placement).
type Home struct {
	Continent   geo.Continent
	ForeignProb float64
	Weights     map[geo.Continent]float64
}

// HomeOf derives the Home parameters of a vantage point.
func HomeOf(vp *topology.VantagePoint) Home {
	return Home{
		Continent:   vp.HomeContinent(),
		ForeignProb: vp.TailForeignProb,
		Weights:     vp.ForeignWeights,
	}
}

// ServeOrRedirect models step 4 of Fig 1: the contacted server either
// serves the video or answers with a redirect, as decided by the
// policy. The engine applies the decision's side effects: a miss
// redirect pulls the video into the contacted server's DC
// (pull-through caching, so only the first access pays — paper Figs
// 17/18) and bumps the miss counter; a hotspot redirect bumps the
// hotspot counter. home parameterizes tail-video origin lookup for
// the requesting network (see Placement); g is the per-decision RNG
// (the built-in policies draw nothing here, so nil is acceptable for
// them).
func (s *Selector) ServeOrRedirect(srv topology.ServerID, v content.VideoID, ldns topology.LDNSID, home Home, g *stats.RNG) Decision {
	d := s.Policy().ServeOrRedirect(s.view(g), srv, v, ldns, home)
	if !d.Redirected {
		return d
	}
	switch d.Reason {
	case ReasonMiss:
		s.placement.Pull(s.w.Server(srv).DC, v)
		s.misses.Add(1)
	case ReasonHotspot:
		s.hotspots.Add(1)
	}
	return d
}

// ServeFinal models the forced serve at the end of a bounded redirect
// chain: a client that has exhausted MaxRedirects is served by the
// last redirect target no matter what. The policy is still consulted
// so a content miss at the final hop keeps its real-world side effects
// — the serving data center must fetch the video, so the engine pulls
// it through and counts the miss — but the redirect itself is
// suppressed. A hotspot decision at the bound needs no side effects
// (nothing was redirected and serving requires no placement change),
// so it is dropped without touching the hotspot counter. The
// suppressed decision is returned so the optimistic journal can
// validate it like any other.
func (s *Selector) ServeFinal(srv topology.ServerID, v content.VideoID, ldns topology.LDNSID, home Home, g *stats.RNG) Decision {
	d := s.Policy().ServeOrRedirect(s.view(g), srv, v, ldns, home)
	if d.Redirected && d.Reason == ReasonMiss {
		s.placement.Pull(s.w.Server(srv).DC, v)
		s.misses.Add(1)
	}
	return d
}

// closestTo returns the candidate DC ranked best for the LDNS, via the
// precomputed rank-index table (the map-free hot path under miss
// redirection). The candidates slice is never empty in practice
// (origins of a tail video always exist); if it were, the preferred DC
// is returned. Candidates outside the ranking lose to any ranked one;
// an all-unranked set yields the first candidate.
//
//perf:hot
//perf:noalloc
func (s *Selector) closestTo(id topology.LDNSID, candidates []topology.DataCenterID) topology.DataCenterID {
	if len(candidates) == 0 {
		return s.prefByLDNS[id]
	}
	idx := s.rankIndex[id]
	best := candidates[0]
	bestRank := int32(-1)
	for _, dc := range candidates {
		rank := idx[dc]
		if rank >= 0 && (bestRank < 0 || rank < bestRank) {
			best, bestRank = dc, rank
		}
	}
	return best
}

// BeginFlow records a video flow starting at server srv: the server
// gains a session and its DC gains a flow. The caller must invoke
// EndFlow exactly once when the flow finishes.
func (s *Selector) BeginFlow(srv topology.ServerID) {
	s.srvSess.Acquire(int(srv))
	s.dcFlows.Acquire(int(s.w.Server(srv).DC))
}

// EndFlow balances BeginFlow.
func (s *Selector) EndFlow(srv topology.ServerID) {
	s.srvSess.Release(int(srv))
	s.dcFlows.Release(int(s.w.Server(srv).DC))
}

// DCLoad returns the current concurrent flow count of a DC.
func (s *Selector) DCLoad(dc topology.DataCenterID) int { return s.dcFlows.Load(int(dc)) }

// ServerLoad returns the current concurrent session count of a server.
func (s *Selector) ServerLoad(srv topology.ServerID) int { return s.srvSess.Load(int(srv)) }

// Counters returns ground-truth mechanism counts (off-preferred DNS
// answers or race commitments, hotspot redirects, miss redirects) for
// ablation studies and the policy-comparison harness.
func (s *Selector) Counters() (spills, hotspots, misses int) {
	return int(s.spills.Load()), int(s.hotspots.Load()), int(s.misses.Load())
}

// Instrument publishes the selector's live state into reg as derived
// gauges: the mechanism counters ("sim.selector.spills" / ".hotspots"
// / ".misses"), total concurrent flows and sessions, and one
// "sim.selector.dc_load.dc-<id>-<city>" gauge per Google DC. Derived
// gauges only read atomics the selector maintains anyway, so a scrape
// mid-run neither blocks nor perturbs decisions.
func (s *Selector) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("sim.selector.spills", func() float64 { return float64(s.spills.Load()) })
	reg.GaugeFunc("sim.selector.hotspots", func() float64 { return float64(s.hotspots.Load()) })
	reg.GaugeFunc("sim.selector.misses", func() float64 { return float64(s.misses.Load()) })
	reg.GaugeFunc("sim.selector.flows_active", func() float64 { return float64(s.dcFlows.Total()) })
	reg.GaugeFunc("sim.selector.sessions_active", func() float64 { return float64(s.srvSess.Total()) })
	for _, id := range s.w.GoogleDCs() {
		id := id
		dc := s.w.DC(id)
		name := fmt.Sprintf("sim.selector.dc_load.dc-%d-%s", dc.ID, dc.City.Name)
		reg.GaugeFunc(name, func() float64 { return float64(s.dcFlows.Load(int(id))) })
	}
}

// ServerForVideo exposes the within-DC consistent hash (used by the
// probe harness and tests).
func (s *Selector) ServerForVideo(dc topology.DataCenterID, v content.VideoID) topology.ServerID {
	return s.serverFor(dc, v)
}

// PlacementOrigins exposes the origin set of a tail video for a
// requester (convenience for experiments and tests).
func (s *Selector) PlacementOrigins(v content.VideoID, home Home) []topology.DataCenterID {
	return s.placement.Origins(v, home.Continent, home.ForeignProb, home.Weights)
}
