package core

import (
	"fmt"
	"sort"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// Config tunes the selection engine.
type Config struct {
	// MaxRedirects bounds an application-layer redirect chain.
	MaxRedirects int
	// DNSLoadBalancing enables adaptive spilling away from an
	// overloaded preferred DC. Disabling it is the §VII-A ablation.
	DNSLoadBalancing bool
	// HotspotRedirection enables server-level overload redirects.
	// Disabling it is the §VII-C hot-spot ablation.
	HotspotRedirection bool
	// SpillCandidates is how many next-best DCs a spilled resolution
	// considers.
	SpillCandidates int
}

// DefaultConfig returns the engine configuration matching the paper's
// observed behaviour.
func DefaultConfig() Config {
	return Config{
		MaxRedirects:       3,
		DNSLoadBalancing:   true,
		HotspotRedirection: true,
		SpillCandidates:    3,
	}
}

// Decision is a content server's answer to a video request.
type Decision struct {
	// Redirected is false when the contacted server serves the video.
	Redirected bool
	// Target is the server the client is redirected to (valid when
	// Redirected).
	Target topology.ServerID
	// Reason records why the request was redirected, for ablation
	// accounting; it is ground truth the analysis pipeline never sees.
	Reason RedirectReason
}

// RedirectReason labels the cause of an application-layer redirect.
type RedirectReason int

// Redirect reasons.
const (
	ReasonNone    RedirectReason = iota
	ReasonMiss                   // video absent at this data center
	ReasonHotspot                // server above capacity
)

// String implements fmt.Stringer.
func (r RedirectReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonMiss:
		return "miss"
	case ReasonHotspot:
		return "hotspot"
	default:
		return "invalid"
	}
}

// Selector is the server-selection engine: the authoritative DNS
// policy plus the content servers' serve-or-redirect logic, sharing
// load trackers and the placement layer. Not safe for concurrent use.
type Selector struct {
	w         *topology.World
	placement *Placement
	cfg       Config

	// prefByLDNS is the ground-truth preferred DC per local DNS
	// server: RTT-best unless overridden by assignment policy.
	prefByLDNS []topology.DataCenterID
	// rankByLDNS lists Google DCs in increasing RTT order per LDNS.
	rankByLDNS [][]topology.DataCenterID

	dcFlows  *LoadTracker // concurrent video flows per DC (DNS view)
	srvSess  *LoadTracker // concurrent sessions per server
	spills   int          // DNS spill count (ablation accounting)
	hotspots int          // hotspot redirect count
	misses   int          // miss redirect count
}

// NewSelector builds the engine for a world. The preferred map is
// computed from base RTTs between each vantage point and each Google
// DC, then patched with the world's assignment-policy overrides.
func NewSelector(w *topology.World, placement *Placement, cfg Config) (*Selector, error) {
	if cfg.MaxRedirects < 1 {
		return nil, fmt.Errorf("core: MaxRedirects must be >= 1, got %d", cfg.MaxRedirects)
	}
	if cfg.SpillCandidates < 1 {
		return nil, fmt.Errorf("core: SpillCandidates must be >= 1, got %d", cfg.SpillCandidates)
	}
	s := &Selector{
		w:          w,
		placement:  placement,
		cfg:        cfg,
		prefByLDNS: make([]topology.DataCenterID, len(w.LDNSes)),
		rankByLDNS: make([][]topology.DataCenterID, len(w.LDNSes)),
		dcFlows:    NewLoadTracker("dc-flows", len(w.DataCenters)),
		srvSess:    NewLoadTracker("server-sessions", len(w.Servers)),
	}
	google := w.GoogleDCs()
	for _, ldns := range w.LDNSes {
		vp := w.VantagePoints[ldns.VantagePoint]
		ep := vp.Endpoint()
		ranked := make([]topology.DataCenterID, len(google))
		copy(ranked, google)
		sort.Slice(ranked, func(i, j int) bool {
			return w.Net.BaseRTT(ep, w.DC(ranked[i]).Endpoint()) <
				w.Net.BaseRTT(ep, w.DC(ranked[j]).Endpoint())
		})
		s.rankByLDNS[ldns.ID] = ranked
		if dc, ok := w.PreferredOverrides[ldns.ID]; ok {
			s.prefByLDNS[ldns.ID] = dc
		} else {
			s.prefByLDNS[ldns.ID] = ranked[0]
		}
	}
	return s, nil
}

// Preferred returns the ground-truth preferred DC of an LDNS.
func (s *Selector) Preferred(id topology.LDNSID) topology.DataCenterID {
	return s.prefByLDNS[id]
}

// RankedDCs returns the LDNS's Google DCs in increasing RTT order.
func (s *Selector) RankedDCs(id topology.LDNSID) []topology.DataCenterID {
	return s.rankByLDNS[id]
}

// serverFor returns the server a video maps to inside a DC, by
// consistent hashing. One server absorbs all of a video's load within
// a DC — the precondition for hot-spots.
func (s *Selector) serverFor(dc topology.DataCenterID, v content.VideoID) topology.ServerID {
	fleet := s.w.DC(dc).Servers
	idx := hashU64("video-server", int64(dc), int64(v)) % uint64(len(fleet))
	return fleet[idx].ID
}

// ResolveDNS models step 3 of the paper's Fig 1: the authoritative DNS
// answers the LDNS's query for a video-specific content hostname. It
// returns the server the client will contact first. With DNS load
// balancing on, an overloaded preferred DC sheds a load-proportional
// fraction of resolutions to the next-best DCs.
func (s *Selector) ResolveDNS(id topology.LDNSID, v content.VideoID, g *stats.RNG) topology.ServerID {
	pref := s.prefByLDNS[id]
	dc := pref
	if s.cfg.DNSLoadBalancing {
		cap := s.w.DC(pref).DNSCapacity
		load := s.dcFlows.Load(int(pref))
		if cap > 0 && load >= cap {
			// The data center is full: spill this resolution. Keeping
			// accepted concurrency pinned at capacity makes the
			// accepted fraction track capacity/demand, which is the
			// paper's Fig 11 behaviour (the internal DC serves ~100%
			// at night and ~30% at daytime overload).
			dc = s.spillTarget(id, v, g)
			if dc != pref {
				s.spills++
			}
		}
	}
	return s.serverFor(dc, v)
}

// spillTarget picks the spill DC: the next-ranked DCs after the
// preferred, skipping ones that are themselves above DNS capacity.
func (s *Selector) spillTarget(id topology.LDNSID, v content.VideoID, g *stats.RNG) topology.DataCenterID {
	ranked := s.rankByLDNS[id]
	candidates := make([]topology.DataCenterID, 0, s.cfg.SpillCandidates)
	for _, dc := range ranked {
		if dc == s.prefByLDNS[id] {
			continue
		}
		cap := s.w.DC(dc).DNSCapacity
		if cap > 0 && s.dcFlows.Load(int(dc)) > cap {
			continue
		}
		candidates = append(candidates, dc)
		if len(candidates) == s.cfg.SpillCandidates {
			break
		}
	}
	if len(candidates) == 0 {
		return s.prefByLDNS[id]
	}
	// Strongly favour the closest spill candidate: the paper's EU2
	// sees essentially one external data center absorb the spill.
	if len(candidates) == 1 || g.Bool(0.95) {
		return candidates[0]
	}
	return candidates[1+g.Intn(len(candidates)-1)]
}

// Home carries the requester-side origin parameters of a vantage
// point: its continent plus the foreign-tail bias (see Placement).
type Home struct {
	Continent   geo.Continent
	ForeignProb float64
	Weights     map[geo.Continent]float64
}

// HomeOf derives the Home parameters of a vantage point.
func HomeOf(vp *topology.VantagePoint) Home {
	return Home{
		Continent:   vp.HomeContinent(),
		ForeignProb: vp.TailForeignProb,
		Weights:     vp.ForeignWeights,
	}
}

// ServeOrRedirect models step 4 of Fig 1: the contacted server either
// serves the video or answers with a redirect. home parameterizes
// tail-video origin lookup for the requesting network (see Placement).
func (s *Selector) ServeOrRedirect(srv topology.ServerID, v content.VideoID, ldns topology.LDNSID, home Home) Decision {
	server := s.w.Server(srv)
	dc := server.DC

	// Cause (iv): the data center does not hold the video. Redirect
	// toward the closest origin copy and pull the video through so
	// only the first access pays (paper Figs 17/18).
	if !s.placement.Has(dc, v, home.Continent, home.ForeignProb, home.Weights) {
		origins := s.placement.Origins(v, home.Continent, home.ForeignProb, home.Weights)
		target := s.pickOrigin(ldns, v, origins)
		s.placement.Pull(dc, v)
		s.misses++
		return Decision{Redirected: true, Target: s.serverFor(target, v), Reason: ReasonMiss}
	}

	// Cause (iii): the hashed server is above capacity; shed to a
	// server in a non-preferred data center.
	if s.cfg.HotspotRedirection && server.Capacity > 0 && s.srvSess.Load(int(srv)) >= server.Capacity {
		target := s.hotspotTarget(ldns, dc)
		if target != dc {
			s.hotspots++
			return Decision{Redirected: true, Target: s.serverFor(target, v), Reason: ReasonHotspot}
		}
	}
	return Decision{}
}

// pickOrigin chooses which origin copy a miss is redirected to:
// usually the closest to the requester, but a quarter of videos
// (deterministically, by hash) use another copy — origin selection in
// the real CDN balances load as well as proximity, and this spread is
// what makes traces touch servers in nearly every data center of the
// requester's continent (Table III).
func (s *Selector) pickOrigin(id topology.LDNSID, v content.VideoID, origins []topology.DataCenterID) topology.DataCenterID {
	if len(origins) > 1 && hashU64("origin-pick", int64(v))%4 == 0 {
		alt := origins[hashU64("origin-alt", int64(v))%uint64(len(origins))]
		if alt != s.closestTo(id, origins) {
			return alt
		}
		return origins[hashU64("origin-alt2", int64(v))%uint64(len(origins))]
	}
	return s.closestTo(id, origins)
}

// closestTo returns the candidate DC ranked best for the LDNS. The
// candidates slice is never empty in practice (origins of a tail video
// always exist); if it were, the preferred DC is returned.
func (s *Selector) closestTo(id topology.LDNSID, candidates []topology.DataCenterID) topology.DataCenterID {
	if len(candidates) == 0 {
		return s.prefByLDNS[id]
	}
	in := make(map[topology.DataCenterID]bool, len(candidates))
	for _, dc := range candidates {
		in[dc] = true
	}
	for _, dc := range s.rankByLDNS[id] {
		if in[dc] {
			return dc
		}
	}
	return candidates[0]
}

// hotspotTarget picks where an overloaded server sheds a request: the
// best-ranked DC other than its own whose DC-level load is within DNS
// capacity. Returns the server's own DC when nothing qualifies.
func (s *Selector) hotspotTarget(id topology.LDNSID, own topology.DataCenterID) topology.DataCenterID {
	for _, dc := range s.rankByLDNS[id] {
		if dc == own {
			continue
		}
		cap := s.w.DC(dc).DNSCapacity
		if cap > 0 && s.dcFlows.Load(int(dc)) > cap {
			continue
		}
		return dc
	}
	return own
}

// BeginFlow records a video flow starting at server srv: the server
// gains a session and its DC gains a flow. The caller must invoke
// EndFlow exactly once when the flow finishes.
func (s *Selector) BeginFlow(srv topology.ServerID) {
	s.srvSess.Acquire(int(srv))
	s.dcFlows.Acquire(int(s.w.Server(srv).DC))
}

// EndFlow balances BeginFlow.
func (s *Selector) EndFlow(srv topology.ServerID) {
	s.srvSess.Release(int(srv))
	s.dcFlows.Release(int(s.w.Server(srv).DC))
}

// DCLoad returns the current concurrent flow count of a DC.
func (s *Selector) DCLoad(dc topology.DataCenterID) int { return s.dcFlows.Load(int(dc)) }

// ServerLoad returns the current concurrent session count of a server.
func (s *Selector) ServerLoad(srv topology.ServerID) int { return s.srvSess.Load(int(srv)) }

// Counters returns ground-truth mechanism counts (DNS spills, hotspot
// redirects, miss redirects) for ablation studies.
func (s *Selector) Counters() (spills, hotspots, misses int) {
	return s.spills, s.hotspots, s.misses
}

// ServerForVideo exposes the within-DC consistent hash (used by the
// probe harness and tests).
func (s *Selector) ServerForVideo(dc topology.DataCenterID, v content.VideoID) topology.ServerID {
	return s.serverFor(dc, v)
}

// PlacementOrigins exposes the origin set of a tail video for a
// requester (convenience for experiments and tests).
func (s *Selector) PlacementOrigins(v content.VideoID, home Home) []topology.DataCenterID {
	return s.placement.Origins(v, home.Continent, home.ForeignProb, home.Weights)
}
