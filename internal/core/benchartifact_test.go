package core

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/obs/report"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// TestBenchArtifact emits BENCH_selector.json for the CI policy-matrix
// job when BENCH_SELECTOR_JSON names the output path: full selection
// decisions per second (one DNS resolution or race plus one
// serve-or-redirect) for every built-in policy, measured over a mixed
// popular/tail video stream on the paper world.
func TestBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_SELECTOR_JSON")
	if out == "" {
		t.Skip("set BENCH_SELECTOR_JSON to emit the benchmark artifact")
	}
	const decisions = 2_000_000

	policies := []SelectionPolicy{
		DefaultPaperPolicy(),
		ProximityOnly{},
		&LeastLoadedDC{},
		&ClientRace{},
	}
	rep := report.New("selector-bench").
		Set("workload", "round-robin LDNS x 1000-video mix, unloaded trackers").
		Set("decisions_per_policy", strconv.Itoa(decisions))
	for _, p := range policies {
		cfg := DefaultConfig()
		cfg.Policy = p
		r := newRig(t, cfg)
		g := stats.NewRNG(1)
		ldnses := r.w.LDNSes
		homes := make([]Home, len(r.w.VantagePoints))
		for i, vp := range r.w.VantagePoints {
			homes[i] = HomeOf(vp)
		}

		n := 0
		// Monotonic Mallocs/TotalAlloc deltas make the per-decision
		// allocation rates exact even across mid-loop GC cycles.
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; n < decisions; i++ {
			ldns := ldnses[i%len(ldnses)]
			vid := content.VideoID(i % 1000) // mixes replicated and tail ranks
			var srv topology.ServerID
			if cands := r.sel.RaceCandidates(ldns.ID, vid, g); len(cands) > 0 {
				srv = cands[i%len(cands)]
				r.sel.CommitRace(ldns.ID, srv)
			} else {
				srv = r.sel.ResolveDNS(ldns.ID, vid, g)
			}
			r.sel.ServeOrRedirect(srv, vid, ldns.ID, homes[ldns.VantagePoint], g)
			n += 2
		}
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		spills, hotspots, misses := r.sel.Counters()
		prefix := "selector." + p.Name() + "."
		rep.Add(prefix+"decisions", float64(n), "count").
			Add(prefix+"decisions_per_sec", float64(n)/secs, "events/sec").
			Add(prefix+"allocs_per_decision", float64(ms1.Mallocs-ms0.Mallocs)/float64(n), "allocs/op").
			Add(prefix+"alloc_bytes_per_decision", float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(n), "bytes/op").
			Add(prefix+"spills", float64(spills), "count").
			Add(prefix+"hotspots", float64(hotspots), "count").
			Add(prefix+"misses", float64(misses), "count")
	}

	if err := rep.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
