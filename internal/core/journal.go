package core

import (
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// This file is the effect/decision journal of the optimistic (Time
// Warp) sharded mode. During a speculative interval every shard records
// two kinds of entries, in its own event order:
//
//   - effects: the shared-state mutations it performed live (flow
//     begin/end on the load trackers; placement pull-throughs ride
//     along inside decision entries, see below);
//   - decisions: every policy consultation that read shared mutable
//     state (DNS resolution, serve-or-redirect, the race winner),
//     together with the RNG tape segment it consumed and a rerun
//     closure that replays the decision against a truth view.
//
// At the barrier the driver merges all shards' entries by (time, shard,
// record order) — exactly the order the sequential k-way merge would
// have executed them in — and sweeps once: effects advance the truth
// view, decisions are re-run against it with a replay RNG fed the
// recorded tape. A decision whose replayed outcome differs, or that
// consumes a different number of RNG values than the live run did (the
// spill path draws conditionally on load, so the COUNT is part of the
// outcome), is a causality violation: some shard read a load or
// placement value that the true interleaving invalidates. The driver
// then rolls every shard back to the checkpoint and re-runs the
// interval sequentially. If the sweep is clean, every decision — and
// therefore every downstream draw, record and side effect — matches the
// sequential execution, and because the live effects commute (load
// counts are sums; the pulled set is a first-insert-deduplicated
// union), the shared state already equals the sequential end-of-interval
// state: the interval commits with no further work.

// journalKind tags a journal entry.
type journalKind uint8

const (
	journalBegin journalKind = iota // BeginFlow effect
	journalEnd                      // EndFlow effect
	journalDecision
)

// journalEntry is one recorded effect or decision.
type journalEntry struct {
	at   time.Duration
	kind journalKind
	srv  topology.ServerID // begin/end effects
	// steps is the RNG tape segment a decision consumed.
	steps []uint64
	// rerun replays a decision against the truth view with a replay
	// stream, returning false when the outcome diverges. On success it
	// applies the decision's placement side effects to the view's
	// overlay so later decisions in the sweep observe them.
	rerun func(*TruthView, *stats.RNG) bool
}

// Journal is one shard's effect/decision log for the current
// speculative interval. It is written only by the shard's own engine
// goroutine and read only by the driver at the barrier (the runner's
// WaitGroup orders the two), so it needs no locking.
type Journal struct {
	entries []journalEntry
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// AddBegin records a BeginFlow effect at simulated time at.
func (j *Journal) AddBegin(at time.Duration, srv topology.ServerID) {
	j.entries = append(j.entries, journalEntry{at: at, kind: journalBegin, srv: srv})
}

// AddEnd records an EndFlow effect at simulated time at.
func (j *Journal) AddEnd(at time.Duration, srv topology.ServerID) {
	j.entries = append(j.entries, journalEntry{at: at, kind: journalEnd, srv: srv})
}

// AddDecision records a shared-state-reading decision: the RNG tape
// segment it consumed and a closure that replays it against a truth
// view (see Journal's type comment).
func (j *Journal) AddDecision(at time.Duration, steps []uint64, rerun func(*TruthView, *stats.RNG) bool) {
	j.entries = append(j.entries, journalEntry{at: at, kind: journalDecision, steps: steps, rerun: rerun})
}

// Len returns the number of recorded entries.
func (j *Journal) Len() int { return len(j.entries) }

// Reset clears the journal for the next interval.
func (j *Journal) Reset() { j.entries = j.entries[:0] }

// SelectorCheckpoint is the selector's committed state at an optimistic
// horizon: the load-tracker base the truth view builds on, plus the
// mechanism counters for rollback.
type SelectorCheckpoint struct {
	dcBase, srvBase          []int64
	spills, hotspots, misses int64
}

// Checkpoint captures the selector's load and counter state. The
// driver calls it with every shard parked at the horizon.
func (s *Selector) Checkpoint() *SelectorCheckpoint {
	return &SelectorCheckpoint{
		dcBase:   s.dcFlows.Snapshot(),
		srvBase:  s.srvSess.Snapshot(),
		spills:   s.spills.Load(),
		hotspots: s.hotspots.Load(),
		misses:   s.misses.Load(),
	}
}

// Restore rolls the selector back to a checkpoint. Placement state is
// rolled back separately (Placement.Rollback).
func (s *Selector) Restore(ck *SelectorCheckpoint) {
	s.dcFlows.Restore(ck.dcBase)
	s.srvSess.Restore(ck.srvBase)
	s.spills.Store(ck.spills)
	s.hotspots.Store(ck.hotspots)
	s.misses.Store(ck.misses)
}

// TruthView reconstructs, entry by merged entry, the shared state the
// sequential execution would have presented to each decision: committed
// load bases plus the interval's deltas so far, and committed placement
// plus the pull-throughs of already-validated decisions. Policies read
// it through PolicyView's overlay hook; everything it does is
// single-threaded inside the validation sweep.
type TruthView struct {
	sel *Selector
	ck  *SelectorCheckpoint
	// dcDelta/srvDelta accumulate the sweep's flow effects relative to
	// the checkpoint base. They are delta trackers: a flow begun before
	// the horizon and ended inside the interval is a legitimate -1.
	dcDelta, srvDelta *LoadTracker
	// overlay holds the pull-throughs applied by validated decisions.
	overlay map[pullKey]struct{}
}

// NewTruthView builds the truth view of one validation sweep over the
// given checkpoint.
func NewTruthView(sel *Selector, ck *SelectorCheckpoint) *TruthView {
	return &TruthView{
		sel:      sel,
		ck:       ck,
		dcDelta:  NewDeltaTracker("truth-dc-flows", len(ck.dcBase)),
		srvDelta: NewDeltaTracker("truth-server-sessions", len(ck.srvBase)),
		overlay:  make(map[pullKey]struct{}),
	}
}

// DCLoad returns the truth flow count of a DC: committed base plus the
// sweep's delta.
func (tv *TruthView) DCLoad(dc topology.DataCenterID) int {
	return int(tv.ck.dcBase[dc]) + tv.dcDelta.Load(int(dc))
}

// ServerLoad returns the truth session count of a server.
func (tv *TruthView) ServerLoad(srv topology.ServerID) int {
	return int(tv.ck.srvBase[srv]) + tv.srvDelta.Load(int(srv))
}

// HasVideo reports whether dc holds vid in the truth state: committed
// placement (pre-mark) or a pull applied earlier in the sweep.
func (tv *TruthView) HasVideo(dc topology.DataCenterID, vid content.VideoID, home Home) bool {
	if _, ok := tv.overlay[pullKey{dc, vid}]; ok {
		return true
	}
	return tv.sel.placement.hasBase(dc, vid, home.Continent, home.ForeignProb, home.Weights)
}

// Pull applies a validated decision's pull-through to the overlay.
func (tv *TruthView) Pull(dc topology.DataCenterID, vid content.VideoID) {
	tv.overlay[pullKey{dc, vid}] = struct{}{}
}

// begin/end advance the truth loads by one flow effect.
func (tv *TruthView) begin(srv topology.ServerID) {
	tv.srvDelta.Acquire(int(srv))
	tv.dcDelta.Acquire(int(tv.sel.w.Server(srv).DC))
}

func (tv *TruthView) end(srv topology.ServerID) {
	tv.srvDelta.Release(int(srv))
	tv.dcDelta.Release(int(tv.sel.w.Server(srv).DC))
}

// ResolveDecision replays a DNS decision against the truth view with
// no side effects: the same policy code as ResolveDNS, reading loads
// and placement through the overlay.
func (s *Selector) ResolveDecision(tv *TruthView, id topology.LDNSID, vid content.VideoID, g *stats.RNG) topology.ServerID {
	dc := s.Policy().ResolveDNS(s.viewTruth(g, tv), id, vid)
	return s.serverFor(dc, vid)
}

// ServeDecision replays a serve-or-redirect decision against the truth
// view with no side effects.
func (s *Selector) ServeDecision(tv *TruthView, srv topology.ServerID, vid content.VideoID, ldns topology.LDNSID, home Home, g *stats.RNG) Decision {
	return s.Policy().ServeOrRedirect(s.viewTruth(g, tv), srv, vid, ldns, home)
}

// RaceCandidatesDecision replays the racing policy's candidate pick
// against the truth view (nil when the active policy does not race).
func (s *Selector) RaceCandidatesDecision(tv *TruthView, id topology.LDNSID, vid content.VideoID, g *stats.RNG) []topology.ServerID {
	rp, ok := s.Policy().(RacingPolicy)
	if !ok {
		return nil
	}
	return rp.RaceCandidates(s.viewTruth(g, tv), id, vid)
}

// ValidateJournals runs the validation sweep: it merges every shard's
// journal by (time, shard, record order) — the sequential merge order —
// and replays each decision against the truth state built from the
// checkpoint and the preceding entries. It returns false on the first
// causality violation: a decision whose replayed outcome differs from
// what the shard committed to, or whose replay consumes a different
// number of RNG values than the live run recorded.
func ValidateJournals(sel *Selector, ck *SelectorCheckpoint, journals []*Journal) bool {
	tv := NewTruthView(sel, ck)
	idx := make([]int, len(journals))
	for {
		best := -1
		var bestAt time.Duration
		for sh, j := range journals {
			if idx[sh] >= len(j.entries) {
				continue
			}
			at := j.entries[idx[sh]].at
			if best < 0 || at < bestAt {
				best, bestAt = sh, at
			}
		}
		if best < 0 {
			return true
		}
		e := &journals[best].entries[idx[best]]
		idx[best]++
		switch e.kind {
		case journalBegin:
			tv.begin(e.srv)
		case journalEnd:
			tv.end(e.srv)
		case journalDecision:
			rg := stats.NewReplayRNG(e.steps)
			if !e.rerun(tv, rg) {
				return false
			}
			if rg.ReplayOverdrawn() || !rg.ReplayExhausted() {
				return false
			}
		}
	}
}
