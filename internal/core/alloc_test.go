package core

import (
	"os"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// TestSelectionDecisionAllocs pins the zero-allocation contract of the
// steady-state selection decision: a DNS resolution plus a
// serve-or-redirect for a replicated video on an unloaded world must
// not allocate — the paths through hashU64, the load trackers and the
// rank-index tables are all heap-free. The spill and miss paths do
// allocate (candidate and origin slices) and are exercised elsewhere;
// this is the per-request fast path the simulator runs millions of
// times. Opt-in via PERF_ASSERT=1 (the CI perfgate job): allocation
// counts are a compiler property, not a correctness property.
func TestSelectionDecisionAllocs(t *testing.T) {
	if os.Getenv("PERF_ASSERT") != "1" {
		t.Skip("set PERF_ASSERT=1 to assert decision-path allocation counts")
	}
	r := newRig(t, DefaultConfig())
	g := stats.NewRNG(7)
	ldns := r.w.LDNSes[0]
	home := HomeOf(r.w.VantagePoints[ldns.VantagePoint])
	const vid = content.VideoID(3) // replicated rank: everywhere, no miss path

	allocs := testing.AllocsPerRun(1000, func() {
		srv := r.sel.ResolveDNS(ldns.ID, vid, g)
		if d := r.sel.ServeOrRedirect(srv, vid, ldns.ID, home, g); d.Redirected {
			t.Fatalf("replicated video redirected on an unloaded world: %+v", d)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state selection decision allocates %.1f times, want 0", allocs)
	}
}
