package core

import (
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// policyRig builds a rig whose engine delegates to the given policy.
func policyRig(t *testing.T, p SelectionPolicy) *testRig {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = p
	return newRig(t, cfg)
}

// TestRankedDCsReturnsCopy is the regression test for the leaked
// internal ranking slice: corrupting the returned slice must not
// change the engine's ground truth.
func TestRankedDCsReturnsCopy(t *testing.T) {
	r := newRig(t, DefaultConfig())
	ldns := r.w.LDNSes[0].ID
	ranked := r.sel.RankedDCs(ldns)
	want := ranked[0]
	for i := range ranked {
		ranked[i] = topology.DataCenterID(-1)
	}
	if got := r.sel.RankedDCs(ldns)[0]; got != want {
		t.Fatalf("mutating RankedDCs result corrupted the engine ranking: got %d, want %d", got, want)
	}
	if got := r.sel.Preferred(ldns); got != want {
		t.Fatalf("preferred DC corrupted: got %d, want %d", got, want)
	}
}

// saturate pins the preferred DC of the LDNS at its DNS capacity and
// returns the held servers.
func saturate(r *testRig, pref topology.DataCenterID) []topology.ServerID {
	dc := r.w.DC(pref)
	var held []topology.ServerID
	for i := 0; i < dc.DNSCapacity; i++ {
		srv := dc.Servers[i%len(dc.Servers)].ID
		r.sel.BeginFlow(srv)
		held = append(held, srv)
	}
	return held
}

func TestProximityOnlyNeverSpills(t *testing.T) {
	r := policyRig(t, ProximityOnly{})
	g := stats.NewRNG(11)
	eu2 := r.vp(topology.DatasetEU2)
	ldns := eu2.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)
	if r.w.DC(pref).DNSCapacity == 0 {
		t.Fatal("EU2 preferred must have bounded DNS capacity")
	}
	saturate(r, pref)
	for i := 0; i < 2000; i++ {
		srv := r.sel.ResolveDNS(ldns, content.VideoID(i%300), g)
		if r.w.Server(srv).DC != pref {
			t.Fatal("ProximityOnly resolution left the preferred DC")
		}
	}
	spills, hotspots, _ := r.sel.Counters()
	if spills != 0 || hotspots != 0 {
		t.Errorf("ProximityOnly: spills=%d hotspots=%d, want 0,0", spills, hotspots)
	}
}

func TestProximityOnlyNoHotspotRedirect(t *testing.T) {
	r := policyRig(t, ProximityOnly{})
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)
	v := content.VideoID(3)
	srv := r.sel.ServerForVideo(pref, v)
	for i := 0; i < r.w.Server(srv).Capacity+5; i++ {
		r.sel.BeginFlow(srv)
	}
	if d := r.sel.ServeOrRedirect(srv, v, ldns, HomeOf(us), nil); d.Redirected {
		t.Errorf("ProximityOnly hot-spot redirected: %+v", d)
	}
}

func TestProximityOnlyMissGoesToClosestOrigin(t *testing.T) {
	r := policyRig(t, ProximityOnly{})
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	home := HomeOf(us)
	pref := r.sel.Preferred(ldns)

	checked := 0
	for cand := content.VideoID(400); cand < 600; cand++ {
		origins := r.pl.Origins(cand, home.Continent, home.ForeignProb, home.Weights)
		onPref := false
		for _, o := range origins {
			if o == pref {
				onPref = true
			}
		}
		if onPref {
			continue
		}
		srv := r.sel.ServerForVideo(pref, cand)
		d := r.sel.ServeOrRedirect(srv, cand, ldns, home, nil)
		if !d.Redirected || d.Reason != ReasonMiss {
			t.Fatalf("video %d: %+v, want miss redirect", cand, d)
		}
		// Always the best-ranked origin — no load-balancing spread.
		targetDC := r.w.Server(d.Target).DC
		bestRank := int32(-1)
		var best topology.DataCenterID
		for _, o := range origins {
			if rank := r.sel.rankIndex[ldns][o]; rank >= 0 && (bestRank < 0 || rank < bestRank) {
				best, bestRank = o, rank
			}
		}
		if targetDC != best {
			t.Fatalf("video %d: redirected to DC %d, want closest origin %d", cand, targetDC, best)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no cold videos exercised")
	}
}

func TestLeastLoadedDCPicksLeastLoaded(t *testing.T) {
	r := policyRig(t, &LeastLoadedDC{Candidates: 3})
	g := stats.NewRNG(12)
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	ranked := r.sel.RankedDCs(ldns)

	// All DCs idle: proximity breaks the tie.
	srv := r.sel.ResolveDNS(ldns, 7, g)
	if r.w.Server(srv).DC != ranked[0] {
		t.Fatalf("idle resolution went to DC %d, want closest %d", r.w.Server(srv).DC, ranked[0])
	}

	// Load the closest DC just one flow above its neighbours: unlike
	// PaperPolicy (which tolerates anything below DNS capacity), the
	// least-loaded policy immediately prefers an emptier candidate.
	r.sel.BeginFlow(r.w.DC(ranked[0]).Servers[0].ID)
	srv = r.sel.ResolveDNS(ldns, 7, g)
	if got := r.w.Server(srv).DC; got != ranked[1] {
		t.Fatalf("loaded resolution went to DC %d, want next-closest %d", got, ranked[1])
	}

	// The candidate window is respected: loading the first three
	// pushes resolutions to the least-loaded inside the window, never
	// to the fourth.
	r.sel.BeginFlow(r.w.DC(ranked[1]).Servers[0].ID)
	r.sel.BeginFlow(r.w.DC(ranked[1]).Servers[0].ID)
	r.sel.BeginFlow(r.w.DC(ranked[2]).Servers[0].ID)
	srv = r.sel.ResolveDNS(ldns, 7, g)
	if got := r.w.Server(srv).DC; got != ranked[0] && got != ranked[2] {
		t.Fatalf("resolution left the candidate window: DC %d", got)
	}
}

func TestClientRaceCandidates(t *testing.T) {
	r := policyRig(t, &ClientRace{K: 3})
	g := stats.NewRNG(13)
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	ranked := r.sel.RankedDCs(ldns)
	v := content.VideoID(9)

	cands := r.sel.RaceCandidates(ldns, v, g)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3", len(cands))
	}
	for i, srv := range cands {
		if want := r.sel.ServerForVideo(ranked[i], v); srv != want {
			t.Errorf("candidate %d = server %d, want hashed server %d of DC %d", i, srv, want, ranked[i])
		}
	}

	// The fallback DNS path stays on the preferred DC.
	srv := r.sel.ResolveDNS(ldns, v, g)
	if r.w.Server(srv).DC != r.sel.Preferred(ldns) {
		t.Error("ClientRace DNS fallback left the preferred DC")
	}
}

func TestRaceCandidatesNilForNonRacingPolicy(t *testing.T) {
	r := newRig(t, DefaultConfig())
	ldns := r.w.LDNSes[0].ID
	if cands := r.sel.RaceCandidates(ldns, 1, nil); cands != nil {
		t.Fatalf("PaperPolicy returned race candidates: %v", cands)
	}
}

func TestCommitRaceCountsSpills(t *testing.T) {
	r := policyRig(t, &ClientRace{})
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	ranked := r.sel.RankedDCs(ldns)

	r.sel.CommitRace(ldns, r.sel.ServerForVideo(ranked[0], 1)) // preferred: not a spill
	r.sel.CommitRace(ldns, r.sel.ServerForVideo(ranked[1], 1)) // off-preferred: a spill
	spills, _, _ := r.sel.Counters()
	if spills != 1 {
		t.Fatalf("spills = %d after one off-preferred commit, want 1", spills)
	}
}

func TestSetPolicySwapsDecisions(t *testing.T) {
	r := policyRig(t, ProximityOnly{})
	g := stats.NewRNG(14)
	eu2 := r.vp(topology.DatasetEU2)
	ldns := eu2.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)
	held := saturate(r, pref)

	if srv := r.sel.ResolveDNS(ldns, 5, g); r.w.Server(srv).DC != pref {
		t.Fatal("ProximityOnly spilled")
	}
	if err := r.sel.SetPolicy(DefaultPaperPolicy()); err != nil {
		t.Fatal(err)
	}
	if r.sel.Policy().Name() != "paper" {
		t.Fatalf("active policy = %q, want paper", r.sel.Policy().Name())
	}
	// Same saturation, new policy: the paper engine spills.
	if srv := r.sel.ResolveDNS(ldns, 5, g); r.w.Server(srv).DC == pref {
		t.Fatal("PaperPolicy did not spill after the switch")
	}
	for _, srv := range held {
		r.sel.EndFlow(srv)
	}
}

func TestPolicyValidation(t *testing.T) {
	if err := ValidatePolicy(nil); err == nil {
		t.Error("nil policy must be rejected")
	}
	if err := ValidatePolicy(&PaperPolicy{SpillCandidates: 0}); err == nil {
		t.Error("PaperPolicy.SpillCandidates=0 must be rejected")
	}
	if err := ValidatePolicy(&LeastLoadedDC{Candidates: -1}); err == nil {
		t.Error("LeastLoadedDC.Candidates=-1 must be rejected")
	}
	if err := ValidatePolicy(&ClientRace{K: -1}); err == nil {
		t.Error("ClientRace.K=-1 must be rejected")
	}
	if err := ValidatePolicy(&ClientRace{}); err != nil {
		t.Errorf("zero ClientRace must validate, got %v", err)
	}

	r := newRig(t, DefaultConfig())
	if err := r.sel.SetPolicy(nil); err == nil {
		t.Error("SetPolicy(nil) must fail")
	}
	cfg := DefaultConfig()
	cfg.Policy = &PaperPolicy{SpillCandidates: -2}
	if _, err := NewSelector(r.w, r.pl, cfg); err == nil {
		t.Error("NewSelector must reject an invalid policy")
	}
}

// TestClosestToMatchesReference pins the rank-index fast path against
// the original map-based reference implementation.
func TestClosestToMatchesReference(t *testing.T) {
	r := newRig(t, DefaultConfig())
	g := stats.NewRNG(15)
	google := r.w.GoogleDCs()
	for _, ldns := range r.w.LDNSes {
		for trial := 0; trial < 50; trial++ {
			n := 1 + g.Intn(4)
			cands := make([]topology.DataCenterID, n)
			for i := range cands {
				cands[i] = google[g.Intn(len(google))]
			}
			got := r.sel.closestTo(ldns.ID, cands)
			want := closestToMapReference(r.sel, ldns.ID, cands)
			if got != want {
				t.Fatalf("closestTo(%d, %v) = %d, reference %d", ldns.ID, cands, got, want)
			}
		}
		if got := r.sel.closestTo(ldns.ID, nil); got != r.sel.prefByLDNS[ldns.ID] {
			t.Fatalf("closestTo with no candidates = %d, want preferred", got)
		}
	}
}
