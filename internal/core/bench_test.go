package core

import (
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// benchCandidates builds deterministic origin-like candidate sets (the
// shape closestTo sees on the miss-redirect hot path: 2-3 origin DCs).
func benchCandidates(r *testRig, n int) [][]topology.DataCenterID {
	google := r.w.GoogleDCs()
	out := make([][]topology.DataCenterID, 64)
	for i := range out {
		set := make([]topology.DataCenterID, n)
		for j := range set {
			set[j] = google[(i*7+j*13)%len(google)]
		}
		out[i] = set
	}
	return out
}

// BenchmarkClosestTo measures the rank-index lookup path used by miss
// redirection (one call per cold tail access).
func BenchmarkClosestTo(b *testing.B) {
	r := newRig(b, DefaultConfig())
	cands := benchCandidates(r, 2)
	ldns := r.w.LDNSes[0].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.sel.closestTo(ldns, cands[i%len(cands)])
	}
}

// BenchmarkClosestToMapBaseline is the pre-refactor implementation (a
// per-call candidate map plus a scan of the full ranking), kept as the
// comparison baseline for the rank-index table.
func BenchmarkClosestToMapBaseline(b *testing.B) {
	r := newRig(b, DefaultConfig())
	cands := benchCandidates(r, 2)
	ldns := r.w.LDNSes[0].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = closestToMapReference(r.sel, ldns, cands[i%len(cands)])
	}
}

// BenchmarkResolveDNS measures raw DNS-decision throughput per
// built-in policy (no load, so the paper policy never spills).
func BenchmarkResolveDNS(b *testing.B) {
	policies := []SelectionPolicy{
		DefaultPaperPolicy(),
		ProximityOnly{},
		&LeastLoadedDC{},
		&ClientRace{},
	}
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Policy = p
			r := newRig(b, cfg)
			g := stats.NewRNG(1)
			ldns := r.w.LDNSes[0].ID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = r.sel.ResolveDNS(ldns, content.VideoID(i%500), g)
			}
		})
	}
}
