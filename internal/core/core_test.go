package core

import (
	"testing"
	"testing/quick"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// testRig bundles a small world, catalog, placement and selector.
type testRig struct {
	w   *topology.World
	cat *content.Catalog
	pl  *Placement
	sel *Selector
}

func newRig(t testing.TB, selCfg Config) *testRig {
	t.Helper()
	w, err := topology.BuildPaperWorld(topology.PaperConfig{
		Scale:             0.001,
		ServersPerDCNA:    8,
		ServersPerDCEU:    6,
		ServersPerDCOther: 4,
		LegacyServers:     16,
		ThirdPartyServers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := content.NewCatalog(content.Config{
		N: 1000, ZipfExponent: 1, TailRank: 400, VOTDShare: 0.05, Days: 7,
		MedianDuration: content.DefaultConfig().MedianDuration,
		DurationSigma:  content.DefaultConfig().DurationSigma,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacement(w, cat, OriginPolicy{CopiesPerVideo: 2})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(w, pl, selCfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{w: w, cat: cat, pl: pl, sel: sel}
}

func (r *testRig) vp(name string) *topology.VantagePoint {
	return r.w.VantagePoints[r.w.VPIndex(name)]
}

// closestToMapReference is the pre-refactor map-based closestTo,
// kept as the single behavioural reference for both the rank-index
// parity test and the benchmark baseline.
func closestToMapReference(sel *Selector, id topology.LDNSID, candidates []topology.DataCenterID) topology.DataCenterID {
	if len(candidates) == 0 {
		return sel.prefByLDNS[id]
	}
	in := make(map[topology.DataCenterID]bool, len(candidates))
	for _, dc := range candidates {
		in[dc] = true
	}
	for _, dc := range sel.rankByLDNS[id] {
		if in[dc] {
			return dc
		}
	}
	return candidates[0]
}

func TestNewSelectorValidation(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if _, err := NewSelector(r.w, r.pl, Config{MaxRedirects: 0, SpillCandidates: 1}); err == nil {
		t.Error("MaxRedirects=0 must be rejected")
	}
	if _, err := NewSelector(r.w, r.pl, Config{MaxRedirects: 1, SpillCandidates: 0}); err == nil {
		t.Error("SpillCandidates=0 must be rejected")
	}
}

func TestPreferredMatchesRTTBest(t *testing.T) {
	r := newRig(t, DefaultConfig())
	for _, ldns := range r.w.LDNSes {
		pref := r.sel.Preferred(ldns.ID)
		if over, ok := r.w.PreferredOverrides[ldns.ID]; ok {
			if pref != over {
				t.Errorf("LDNS %s: preferred %d, want override %d", ldns.Name, pref, over)
			}
			continue
		}
		if pref != r.sel.RankedDCs(ldns.ID)[0] {
			t.Errorf("LDNS %s: preferred %d is not RTT-best", ldns.Name, pref)
		}
	}
}

func TestRankedDCsSortedByRTT(t *testing.T) {
	r := newRig(t, DefaultConfig())
	for _, ldns := range r.w.LDNSes {
		vp := r.w.VantagePoints[ldns.VantagePoint]
		ep := vp.Endpoint()
		ranked := r.sel.RankedDCs(ldns.ID)
		if len(ranked) != 33 {
			t.Fatalf("ranked DCs = %d, want 33", len(ranked))
		}
		for i := 1; i < len(ranked); i++ {
			a := r.w.Net.BaseRTT(ep, r.w.DC(ranked[i-1]).Endpoint())
			b := r.w.Net.BaseRTT(ep, r.w.DC(ranked[i]).Endpoint())
			if a > b {
				t.Fatalf("LDNS %s: rank order violated at %d", ldns.Name, i)
			}
		}
	}
}

func TestResolveDNSNoSpillWhenUnloaded(t *testing.T) {
	r := newRig(t, DefaultConfig())
	g := stats.NewRNG(1)
	for _, ldns := range r.w.LDNSes {
		pref := r.sel.Preferred(ldns.ID)
		for v := content.VideoID(0); v < 50; v++ {
			srv := r.sel.ResolveDNS(ldns.ID, v, g)
			if r.w.Server(srv).DC != pref {
				t.Fatalf("unloaded resolution left preferred DC")
			}
		}
	}
}

func TestResolveDNSSpillsUnderLoad(t *testing.T) {
	r := newRig(t, DefaultConfig())
	g := stats.NewRNG(2)
	eu2 := r.vp(topology.DatasetEU2)
	ldns := eu2.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)
	dc := r.w.DC(pref)
	if dc.DNSCapacity == 0 {
		t.Fatal("EU2 preferred must have bounded DNS capacity")
	}
	// Saturate the preferred DC to exactly its capacity.
	var held []topology.ServerID
	for i := 0; i < dc.DNSCapacity; i++ {
		srv := dc.Servers[i%len(dc.Servers)].ID
		r.sel.BeginFlow(srv)
		held = append(held, srv)
	}
	spilled, total := 0, 2000
	for i := 0; i < total; i++ {
		srv := r.sel.ResolveDNS(ldns, content.VideoID(i%300), g)
		if r.w.Server(srv).DC != pref {
			spilled++
		}
	}
	// At capacity, every resolution spills (the accepted concurrency
	// is pinned at capacity).
	if spilled != total {
		t.Errorf("spilled %d of %d at full capacity, want all", spilled, total)
	}
	for _, srv := range held {
		r.sel.EndFlow(srv)
	}
	// After release, resolutions return to the preferred DC.
	srv := r.sel.ResolveDNS(ldns, 7, g)
	if r.w.Server(srv).DC != pref {
		t.Error("resolution did not return to preferred after load release")
	}
}

func TestResolveDNSNoSpillWhenDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DNSLoadBalancing = false
	r := newRig(t, cfg)
	g := stats.NewRNG(3)
	eu2 := r.vp(topology.DatasetEU2)
	ldns := eu2.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)
	dc := r.w.DC(pref)
	for i := 0; i < 5*dc.DNSCapacity; i++ {
		r.sel.BeginFlow(dc.Servers[i%len(dc.Servers)].ID)
	}
	for i := 0; i < 500; i++ {
		srv := r.sel.ResolveDNS(ldns, content.VideoID(i), g)
		if r.w.Server(srv).DC != pref {
			t.Fatal("spill happened with DNSLoadBalancing disabled")
		}
	}
}

func TestServerForVideoStableAndSpread(t *testing.T) {
	r := newRig(t, DefaultConfig())
	dc := r.sel.RankedDCs(0)[0]
	seen := make(map[topology.ServerID]bool)
	for v := content.VideoID(0); v < 200; v++ {
		s1 := r.sel.ServerForVideo(dc, v)
		s2 := r.sel.ServerForVideo(dc, v)
		if s1 != s2 {
			t.Fatal("video->server hash unstable")
		}
		if r.w.Server(s1).DC != dc {
			t.Fatal("hashed server outside DC")
		}
		seen[s1] = true
	}
	if len(seen) < len(r.w.DC(dc).Servers)/2 {
		t.Errorf("hash spread too narrow: %d servers hit", len(seen))
	}
}

func TestServeReplicatedVideoLocally(t *testing.T) {
	r := newRig(t, DefaultConfig())
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)
	srv := r.sel.ServerForVideo(pref, 5) // rank 5: replicated
	d := r.sel.ServeOrRedirect(srv, 5, ldns, HomeOf(us), nil)
	if d.Redirected {
		t.Errorf("replicated video redirected: %+v", d)
	}
}

func TestTailVideoFirstAccessRedirectsThenCaches(t *testing.T) {
	r := newRig(t, DefaultConfig())
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	home := HomeOf(us)
	pref := r.sel.Preferred(ldns)

	// Find a tail video whose origins exclude the preferred DC.
	var v content.VideoID = -1
	for cand := content.VideoID(400); cand < 1000; cand++ {
		onPref := false
		for _, o := range r.pl.Origins(cand, home.Continent, home.ForeignProb, home.Weights) {
			if o == pref {
				onPref = true
			}
		}
		if !onPref {
			v = cand
			break
		}
	}
	if v < 0 {
		t.Fatal("no cold tail video found")
	}

	srv := r.sel.ServerForVideo(pref, v)
	d := r.sel.ServeOrRedirect(srv, v, ldns, home, nil)
	if !d.Redirected || d.Reason != ReasonMiss {
		t.Fatalf("first tail access: %+v, want miss redirect", d)
	}
	if r.w.Server(d.Target).DC == pref {
		t.Error("miss redirect target must be another DC")
	}
	// The target must hold the video.
	if !r.pl.Has(r.w.Server(d.Target).DC, v, home.Continent, home.ForeignProb, home.Weights) {
		t.Error("redirect target does not hold the video")
	}
	// Second access: served locally thanks to pull-through.
	d2 := r.sel.ServeOrRedirect(srv, v, ldns, home, nil)
	if d2.Redirected {
		t.Errorf("second tail access redirected: %+v", d2)
	}
	_, _, misses := r.sel.Counters()
	if misses != 1 {
		t.Errorf("miss counter = %d, want 1", misses)
	}
}

func TestHotspotRedirection(t *testing.T) {
	r := newRig(t, DefaultConfig())
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)
	v := content.VideoID(3)
	srv := r.sel.ServerForVideo(pref, v)
	capacity := r.w.Server(srv).Capacity
	for i := 0; i < capacity; i++ {
		r.sel.BeginFlow(srv)
	}
	d := r.sel.ServeOrRedirect(srv, v, ldns, HomeOf(us), nil)
	if !d.Redirected || d.Reason != ReasonHotspot {
		t.Fatalf("saturated server answered %+v, want hotspot redirect", d)
	}
	if r.w.Server(d.Target).DC == pref {
		t.Error("hotspot target must be a non-preferred DC")
	}
	_, hotspots, _ := r.sel.Counters()
	if hotspots != 1 {
		t.Errorf("hotspot counter = %d", hotspots)
	}
}

func TestHotspotDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotspotRedirection = false
	r := newRig(t, cfg)
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)
	v := content.VideoID(3)
	srv := r.sel.ServerForVideo(pref, v)
	for i := 0; i < r.w.Server(srv).Capacity+5; i++ {
		r.sel.BeginFlow(srv)
	}
	if d := r.sel.ServeOrRedirect(srv, v, ldns, HomeOf(us), nil); d.Redirected {
		t.Errorf("redirect with hotspot disabled: %+v", d)
	}
}

func TestPlacementReplicatedEverywhere(t *testing.T) {
	r := newRig(t, DefaultConfig())
	for _, dc := range r.w.GoogleDCs() {
		if !r.pl.Has(dc, 10, geo.Europe, 0, nil) {
			t.Fatalf("replicated video missing at DC %d", dc)
		}
	}
}

func TestPlacementOriginsDeterministic(t *testing.T) {
	r := newRig(t, DefaultConfig())
	us := r.vp(topology.DatasetUSCampus)
	home := HomeOf(us)
	for v := content.VideoID(400); v < 450; v++ {
		o1 := r.pl.Origins(v, home.Continent, home.ForeignProb, home.Weights)
		o2 := r.pl.Origins(v, home.Continent, home.ForeignProb, home.Weights)
		if len(o1) != 2 || len(o2) != 2 || o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatalf("origins not deterministic: %v vs %v", o1, o2)
		}
	}
}

func TestPlacementForeignFraction(t *testing.T) {
	r := newRig(t, DefaultConfig())
	weights := map[geo.Continent]float64{geo.NorthAmerica: 1}
	foreign := 0
	const n = 4000
	for v := content.VideoID(0); v < n; v++ {
		if r.pl.OriginContinent(v, geo.Europe, 0.25, weights) != geo.Europe {
			foreign++
		}
	}
	frac := float64(foreign) / n
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("foreign origin fraction = %.3f, want ~0.25", frac)
	}
	// Zero probability means never foreign.
	for v := content.VideoID(0); v < 500; v++ {
		if r.pl.OriginContinent(v, geo.Europe, 0, weights) != geo.Europe {
			t.Fatal("foreign origin with zero probability")
		}
	}
}

func TestPlacementPullIdempotent(t *testing.T) {
	r := newRig(t, DefaultConfig())
	dc := r.w.GoogleDCs()[0]
	r.pl.Pull(dc, 500)
	r.pl.Pull(dc, 500)
	if r.pl.Pulls() != 1 || r.pl.PulledCount() != 1 {
		t.Errorf("Pulls = %d, PulledCount = %d, want 1,1", r.pl.Pulls(), r.pl.PulledCount())
	}
}

// TestForcedOriginsCopyDiscipline pins the aliasing contract around
// the forced-origin map: ForceOrigins must not retain the caller's
// slice, and Origins must not hand out the stored one.
func TestForcedOriginsCopyDiscipline(t *testing.T) {
	r := newRig(t, DefaultConfig())
	us := r.vp(topology.DatasetUSCampus)
	home := HomeOf(us)
	dcs := r.w.GoogleDCs()
	if len(dcs) < 2 {
		t.Fatalf("need at least 2 DCs, have %d", len(dcs))
	}
	v := content.VideoID(700) // tail: rig TailRank is 400
	pinned := []topology.DataCenterID{dcs[0]}
	r.pl.ForceOrigins(v, pinned)

	pinned[0] = dcs[1] // caller scribbles on its slice after pinning
	got := r.pl.Origins(v, home.Continent, home.ForeignProb, home.Weights)
	if len(got) != 1 || got[0] != dcs[0] {
		t.Fatalf("pinned origin corrupted by caller-side mutation: got %v, want [%d]", got, dcs[0])
	}

	got[0] = dcs[1] // reader scribbles on the returned slice
	again := r.pl.Origins(v, home.Continent, home.ForeignProb, home.Weights)
	if len(again) != 1 || again[0] != dcs[0] {
		t.Fatalf("pinned origin corrupted by reader-side mutation: got %v, want [%d]", again, dcs[0])
	}
}

func TestNewPlacementValidation(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if _, err := NewPlacement(r.w, r.cat, OriginPolicy{CopiesPerVideo: 0}); err == nil {
		t.Error("CopiesPerVideo=0 must be rejected")
	}
}

func TestLoadTrackerBalance(t *testing.T) {
	lt := NewLoadTracker("test", 3)
	lt.Acquire(0)
	lt.Acquire(0)
	lt.Acquire(2)
	if lt.Load(0) != 2 || lt.Load(2) != 1 || lt.Total() != 3 {
		t.Errorf("loads wrong: %d %d %d", lt.Load(0), lt.Load(2), lt.Total())
	}
	lt.Release(0)
	if lt.Load(0) != 1 {
		t.Error("release failed")
	}
}

func TestLoadTrackerPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative load must panic")
		}
	}()
	NewLoadTracker("test", 1).Release(0)
}

func TestLoadConservationProperty(t *testing.T) {
	// Any balanced sequence of Begin/End leaves all loads at zero.
	r := newRig(t, DefaultConfig())
	f := func(ops []uint16) bool {
		var open []topology.ServerID
		for _, op := range ops {
			srv := topology.ServerID(int(op) % len(r.w.Servers))
			r.sel.BeginFlow(srv)
			open = append(open, srv)
		}
		for _, srv := range open {
			r.sel.EndFlow(srv)
		}
		for _, s := range r.w.Servers {
			if r.sel.ServerLoad(s.ID) != 0 {
				return false
			}
		}
		for _, dc := range r.w.DataCenters {
			if r.sel.DCLoad(dc.ID) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRedirectReasonString(t *testing.T) {
	if ReasonNone.String() != "none" || ReasonMiss.String() != "miss" ||
		ReasonHotspot.String() != "hotspot" || RedirectReason(9).String() != "invalid" {
		t.Error("RedirectReason.String broken")
	}
}

func TestMissRedirectTargetsOrigins(t *testing.T) {
	r := newRig(t, DefaultConfig())
	us := r.vp(topology.DatasetUSCampus)
	ldns := us.Subnets[0].LDNS
	home := HomeOf(us)
	pref := r.sel.Preferred(ldns)

	total, closest := 0, 0
	for cand := content.VideoID(400); cand < 600; cand++ {
		origins := r.pl.Origins(cand, home.Continent, home.ForeignProb, home.Weights)
		onPref := false
		for _, o := range origins {
			if o == pref {
				onPref = true
			}
		}
		if onPref {
			continue
		}
		srv := r.sel.ServerForVideo(pref, cand)
		d := r.sel.ServeOrRedirect(srv, cand, ldns, home, nil)
		if !d.Redirected {
			t.Fatal("expected miss redirect")
		}
		targetDC := r.w.Server(d.Target).DC
		// The target must be one of the video's origins.
		isOrigin := false
		for _, o := range origins {
			if o == targetDC {
				isOrigin = true
			}
		}
		if !isOrigin {
			t.Fatalf("video %d: redirect target DC %d is not an origin %v", cand, targetDC, origins)
		}
		// Track how often the closest origin wins (should dominate:
		// ~75% by construction).
		bestRank, targetRank := -1, -1
		for rank, dc := range r.sel.RankedDCs(ldns) {
			for _, o := range origins {
				if dc == o && bestRank < 0 {
					bestRank = rank
				}
			}
			if dc == targetDC {
				targetRank = rank
			}
		}
		total++
		if targetRank == bestRank {
			closest++
		}
	}
	if total == 0 {
		t.Fatal("no cold videos exercised")
	}
	if frac := float64(closest) / float64(total); frac < 0.6 || frac > 0.95 {
		t.Errorf("closest-origin fraction = %.2f, want ~0.75", frac)
	}
}
