package core

import (
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

func TestLoadTrackerSnapshotRestore(t *testing.T) {
	lt := NewLoadTracker("t", 3)
	lt.Acquire(0)
	lt.Acquire(1)
	lt.Acquire(1)
	snap := lt.Snapshot()
	lt.Acquire(2)
	lt.Release(1)
	lt.Restore(snap)
	for i, want := range []int{1, 2, 0} {
		if got := lt.Load(i); got != want {
			t.Errorf("entity %d: load %d after restore, want %d", i, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("restore with mismatched length did not panic")
		}
	}()
	lt.Restore(make([]int64, 2))
}

func TestLiveTrackerPanicsNegative(t *testing.T) {
	lt := NewLoadTracker("t", 1)
	defer func() {
		if recover() == nil {
			t.Error("live tracker tolerated a negative count")
		}
	}()
	lt.Release(0)
}

// TestDeltaTrackerToleratesNegative pins the rollback-aware Release
// semantics: a delta tracker accumulates an interval's effects from
// zero, so ending a flow begun before the horizon is a legitimate -1.
func TestDeltaTrackerToleratesNegative(t *testing.T) {
	lt := NewDeltaTracker("delta", 2)
	lt.Release(0) // pre-horizon flow ending in-interval
	lt.Release(0)
	lt.Acquire(1)
	if got := lt.Load(0); got != -2 {
		t.Errorf("delta load = %d, want -2", got)
	}
	if got := lt.Load(1); got != 1 {
		t.Errorf("delta load = %d, want 1", got)
	}
}

// TestPlacementMarkRollback pins the pull-through undo journal: every
// insertion since Mark is deleted by Rollback, the pulls counter is
// restored, and pre-mark state is untouched.
func TestPlacementMarkRollback(t *testing.T) {
	r := newRig(t, DefaultConfig())
	home := HomeOf(r.vp("US-Campus"))
	var tail content.VideoID = -1
	for v := content.VideoID(0); int(v) < r.cat.N(); v++ {
		if r.cat.IsTail(v) {
			tail = v
			break
		}
	}
	if tail < 0 {
		t.Fatal("no tail video in catalog")
	}
	// A DC that does not hold the tail video.
	var dc topology.DataCenterID = -1
	for _, cand := range r.w.GoogleDCs() {
		if !r.pl.Has(cand, tail, home.Continent, home.ForeignProb, home.Weights) {
			dc = cand
			break
		}
	}
	if dc < 0 {
		t.Fatal("tail video present everywhere")
	}

	r.pl.Pull(dc, tail) // committed before the mark
	base := r.pl.Pulls()
	r.pl.Mark()

	// Speculative pulls: a fresh one and a duplicate of the committed one.
	var tail2 content.VideoID = -1
	for v := tail + 1; int(v) < r.cat.N(); v++ {
		if r.cat.IsTail(v) {
			tail2 = v
			break
		}
	}
	if tail2 < 0 {
		t.Fatal("need a second tail video")
	}
	r.pl.Pull(dc, tail2)
	r.pl.Pull(dc, tail) // duplicate: no insertion, nothing journaled
	if got := r.pl.Pulls(); got != base+1 {
		t.Fatalf("pulls = %d, want %d", got, base+1)
	}
	// hasBase must exclude the speculative pull but keep the committed one.
	if r.pl.hasBase(dc, tail2, home.Continent, home.ForeignProb, home.Weights) {
		t.Error("hasBase sees a speculative pull")
	}
	if !r.pl.hasBase(dc, tail, home.Continent, home.ForeignProb, home.Weights) {
		t.Error("hasBase lost a committed pull")
	}

	r.pl.Rollback()
	if r.pl.Has(dc, tail2, home.Continent, home.ForeignProb, home.Weights) {
		t.Error("rollback left the speculative pull in place")
	}
	if !r.pl.Has(dc, tail, home.Continent, home.ForeignProb, home.Weights) {
		t.Error("rollback deleted a committed pull")
	}
	if got := r.pl.Pulls(); got != base {
		t.Errorf("pulls = %d after rollback, want %d", got, base)
	}

	// A second Mark commits: Rollback then undoes nothing.
	r.pl.Pull(dc, tail2)
	r.pl.Mark()
	r.pl.Rollback()
	if !r.pl.Has(dc, tail2, home.Continent, home.ForeignProb, home.Weights) {
		t.Error("rollback crossed a commit boundary")
	}
}

func TestSelectorCheckpointRestore(t *testing.T) {
	r := newRig(t, DefaultConfig())
	srv := r.w.DC(r.w.GoogleDCs()[0]).Servers[0].ID
	r.sel.BeginFlow(srv)
	ck := r.sel.Checkpoint()
	r.sel.BeginFlow(srv)
	r.sel.spills.Add(3)
	r.sel.misses.Add(1)
	r.sel.Restore(ck)
	if got := r.sel.ServerLoad(srv); got != 1 {
		t.Errorf("server load = %d after restore, want 1", got)
	}
	if got := r.sel.DCLoad(r.w.Server(srv).DC); got != 1 {
		t.Errorf("dc load = %d after restore, want 1", got)
	}
	sp, _, mi := r.sel.Counters()
	if sp != 0 || mi != 0 {
		t.Errorf("counters (%d, %d) after restore, want zeros", sp, mi)
	}
}

// TestValidateJournalsMergeOrder pins the sweep semantics: journals
// merge by time across shards, effects advance the truth loads, and a
// decision fails exactly when the truth state it replays against
// contradicts what the shard observed live.
func TestValidateJournalsMergeOrder(t *testing.T) {
	r := newRig(t, DefaultConfig())
	srv := r.w.DC(r.w.GoogleDCs()[0]).Servers[0].ID
	dc := r.w.Server(srv).DC
	ck := r.sel.Checkpoint()

	// Shard 0 decided at t=5 having observed DCLoad(dc) == 0.
	decide := func(wantLoad int) func(*TruthView, *stats.RNG) bool {
		return func(tv *TruthView, _ *stats.RNG) bool {
			return tv.DCLoad(dc) == wantLoad
		}
	}
	j0 := NewJournal()
	j0.AddDecision(5*time.Second, nil, decide(0))

	// Shard 1's begin at t=3 precedes the decision in merge order: the
	// decision read a load the true interleaving invalidates.
	j1 := NewJournal()
	j1.AddBegin(3*time.Second, srv)
	if ValidateJournals(r.sel, ck, []*Journal{j0, j1}) {
		t.Error("cross-shard begin before the decision must be a violation")
	}

	// The same begin after the decision is harmless.
	j0.Reset()
	j1.Reset()
	j0.AddDecision(5*time.Second, nil, decide(0))
	j1.AddBegin(7*time.Second, srv)
	if !ValidateJournals(r.sel, ck, []*Journal{j0, j1}) {
		t.Error("begin after the decision must validate")
	}

	// Begin/end pairs cancel; a pre-horizon flow's end is a -1 delta the
	// sweep must tolerate (relaxed delta tracker) and expose as truth.
	j0.Reset()
	j1.Reset()
	r.sel.BeginFlow(srv) // committed before the checkpoint
	ck2 := r.sel.Checkpoint()
	j1.AddEnd(1*time.Second, srv)
	j0.AddDecision(2*time.Second, nil, decide(0))
	if !ValidateJournals(r.sel, ck2, []*Journal{j0, j1}) {
		t.Error("pre-horizon flow end must yield truth load 0")
	}
}

// TestValidateJournalsStepCount pins that RNG draw count is part of a
// decision's outcome: a replay consuming more or fewer values than the
// live run recorded is a violation even if the return value matches.
func TestValidateJournalsStepCount(t *testing.T) {
	r := newRig(t, DefaultConfig())
	ck := r.sel.Checkpoint()

	draws := func(n int) func(*TruthView, *stats.RNG) bool {
		return func(_ *TruthView, rg *stats.RNG) bool {
			for i := 0; i < n; i++ {
				rg.Float64()
			}
			return true
		}
	}
	tape := func(n int) []uint64 {
		g := stats.NewRNG(1)
		g.Mark()
		for i := 0; i < n; i++ {
			g.Float64()
		}
		return g.TapeSince(0)
	}

	j := NewJournal()
	j.AddDecision(1*time.Second, tape(2), draws(2))
	if !ValidateJournals(r.sel, ck, []*Journal{j}) {
		t.Error("exact replay must validate")
	}
	j.Reset()
	j.AddDecision(1*time.Second, tape(2), draws(1))
	if ValidateJournals(r.sel, ck, []*Journal{j}) {
		t.Error("under-consuming replay must be a violation")
	}
	j.Reset()
	j.AddDecision(1*time.Second, tape(1), draws(2))
	if ValidateJournals(r.sel, ck, []*Journal{j}) {
		t.Error("over-consuming replay must be a violation")
	}
}

// TestTruthViewOverlay pins placement reads during the sweep: committed
// state plus validated pulls, never speculative live pulls.
func TestTruthViewOverlay(t *testing.T) {
	r := newRig(t, DefaultConfig())
	home := HomeOf(r.vp("US-Campus"))
	var tail content.VideoID = -1
	for v := content.VideoID(0); int(v) < r.cat.N(); v++ {
		if r.cat.IsTail(v) {
			tail = v
			break
		}
	}
	var dc topology.DataCenterID = -1
	for _, cand := range r.w.GoogleDCs() {
		if !r.pl.Has(cand, tail, home.Continent, home.ForeignProb, home.Weights) {
			dc = cand
			break
		}
	}
	if tail < 0 || dc < 0 {
		t.Fatal("no suitable tail video / DC")
	}
	r.pl.Mark()
	ck := r.sel.Checkpoint()
	r.pl.Pull(dc, tail) // speculative live pull

	tv := NewTruthView(r.sel, ck)
	if tv.HasVideo(dc, tail, home) {
		t.Error("truth view sees a speculative pull")
	}
	tv.Pull(dc, tail) // the validated decision applies it
	if !tv.HasVideo(dc, tail, home) {
		t.Error("truth view misses a validated pull")
	}
}
