package core

import (
	"fmt"
	"sync/atomic"
)

// LoadTracker counts concurrent units (flows or sessions) per entity.
// Acquire/Release must balance; the tracker panics on negative counts
// because that always indicates a simulator bug that would corrupt
// every load-dependent result downstream.
//
// Counters are atomic so that sharded simulations (one goroutine per
// vantage-point shard, see des.ShardedRunner) can begin and end flows
// concurrently. Reads are plain atomic loads: under windowed lockstep
// a policy may observe a load that is stale by up to the sync window,
// which is the documented staleness/throughput trade.
type LoadTracker struct {
	counts []int64
	label  string
}

// NewLoadTracker creates a tracker for n entities.
func NewLoadTracker(label string, n int) *LoadTracker {
	return &LoadTracker{counts: make([]int64, n), label: label}
}

// Acquire increments the load of entity i.
//
//perf:hot
//perf:inline
//perf:noalloc
func (lt *LoadTracker) Acquire(i int) { atomic.AddInt64(&lt.counts[i], 1) }

// Release decrements the load of entity i.
//
//perf:hot
//perf:inline
//perf:noalloc
func (lt *LoadTracker) Release(i int) {
	if atomic.AddInt64(&lt.counts[i], -1) < 0 {
		lt.negative(i)
	}
}

// negative reports the balance bug. Split out of Release — and pinned
// out of line — so the Sprintf machinery stays off Release's inlining
// budget and allocation contract: Release runs once per flow end on
// the hot path, the panic never in a correct run.
//
//go:noinline
func (lt *LoadTracker) negative(i int) {
	panic(fmt.Sprintf("core: %s load of entity %d went negative", lt.label, i))
}

// Load returns the current load of entity i.
//
//perf:inline
//perf:noalloc
func (lt *LoadTracker) Load(i int) int { return int(atomic.LoadInt64(&lt.counts[i])) }

// Total returns the summed load across entities.
func (lt *LoadTracker) Total() int {
	sum := int64(0)
	for i := range lt.counts {
		sum += atomic.LoadInt64(&lt.counts[i])
	}
	return int(sum)
}
