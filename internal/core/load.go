package core

import (
	"fmt"
	"sync/atomic"
)

// LoadTracker counts concurrent units (flows or sessions) per entity.
// Acquire/Release must balance; the tracker panics on negative counts
// because that always indicates a simulator bug that would corrupt
// every load-dependent result downstream.
//
// Counters are atomic so that sharded simulations (one goroutine per
// vantage-point shard, see des.ShardedRunner) can begin and end flows
// concurrently. Reads are plain atomic loads: under windowed lockstep
// a policy may observe a load that is stale by up to the sync window,
// which is the documented staleness/throughput trade.
type LoadTracker struct {
	counts []int64
	label  string
	// relaxed disables the negative-count panic. It is set only on
	// delta trackers used by the optimistic validation sweep (see
	// NewDeltaTracker): a delta tracker starts every interval at zero,
	// so releasing a flow whose matching begin happened before the
	// rollback horizon legitimately drives its count negative — the
	// true load is the committed base plus the (possibly negative)
	// delta. Live trackers keep the panic: their counts are absolute
	// and a negative there is still always a simulator bug.
	relaxed bool
}

// NewLoadTracker creates a tracker for n entities.
func NewLoadTracker(label string, n int) *LoadTracker {
	return &LoadTracker{counts: make([]int64, n), label: label}
}

// NewDeltaTracker creates a rollback-aware tracker that accumulates an
// interval's load deltas relative to a committed base snapshot.
// Release tolerates negative counts (see the relaxed field): during an
// optimistic interval a flow begun before the commit horizon can end
// inside it, which is a -1 delta with no matching +1.
func NewDeltaTracker(label string, n int) *LoadTracker {
	return &LoadTracker{counts: make([]int64, n), label: label, relaxed: true}
}

// Snapshot returns a copy of the current counts, for checkpointing and
// as the committed base of a delta tracker. Safe to call while other
// goroutines acquire and release (each count is an atomic load).
func (lt *LoadTracker) Snapshot() []int64 {
	out := make([]int64, len(lt.counts))
	for i := range lt.counts {
		out[i] = atomic.LoadInt64(&lt.counts[i])
	}
	return out
}

// Restore overwrites the counts from a Snapshot (rollback to a commit
// horizon). The caller must guarantee no concurrent Acquire/Release —
// the optimistic driver restores only with every shard parked.
func (lt *LoadTracker) Restore(snap []int64) {
	if len(snap) != len(lt.counts) {
		panic(fmt.Sprintf("core: %s restore with %d counts, want %d", lt.label, len(snap), len(lt.counts)))
	}
	for i := range lt.counts {
		atomic.StoreInt64(&lt.counts[i], snap[i])
	}
}

// Acquire increments the load of entity i.
//
//perf:hot
//perf:inline
//perf:noalloc
func (lt *LoadTracker) Acquire(i int) { atomic.AddInt64(&lt.counts[i], 1) }

// Release decrements the load of entity i.
//
//perf:hot
//perf:inline
//perf:noalloc
func (lt *LoadTracker) Release(i int) {
	if atomic.AddInt64(&lt.counts[i], -1) < 0 && !lt.relaxed {
		lt.negative(i)
	}
}

// negative reports the balance bug. Split out of Release — and pinned
// out of line — so the Sprintf machinery stays off Release's inlining
// budget and allocation contract: Release runs once per flow end on
// the hot path, the panic never in a correct run.
//
//go:noinline
func (lt *LoadTracker) negative(i int) {
	panic(fmt.Sprintf("core: %s load of entity %d went negative", lt.label, i))
}

// Load returns the current load of entity i.
//
//perf:inline
//perf:noalloc
func (lt *LoadTracker) Load(i int) int { return int(atomic.LoadInt64(&lt.counts[i])) }

// Total returns the summed load across entities.
func (lt *LoadTracker) Total() int {
	sum := int64(0)
	for i := range lt.counts {
		sum += atomic.LoadInt64(&lt.counts[i])
	}
	return int(sum)
}
