package core

import "fmt"

// LoadTracker counts concurrent units (flows or sessions) per entity.
// Acquire/Release must balance; the tracker panics on negative counts
// because that always indicates a simulator bug that would corrupt
// every load-dependent result downstream.
type LoadTracker struct {
	counts []int
	label  string
}

// NewLoadTracker creates a tracker for n entities.
func NewLoadTracker(label string, n int) *LoadTracker {
	return &LoadTracker{counts: make([]int, n), label: label}
}

// Acquire increments the load of entity i.
func (lt *LoadTracker) Acquire(i int) { lt.counts[i]++ }

// Release decrements the load of entity i.
func (lt *LoadTracker) Release(i int) {
	lt.counts[i]--
	if lt.counts[i] < 0 {
		panic(fmt.Sprintf("core: %s load of entity %d went negative", lt.label, i))
	}
}

// Load returns the current load of entity i.
func (lt *LoadTracker) Load(i int) int { return lt.counts[i] }

// Total returns the summed load across entities.
func (lt *LoadTracker) Total() int {
	sum := 0
	for _, c := range lt.counts {
		sum += c
	}
	return sum
}
