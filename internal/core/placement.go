// Package core implements the paper's primary contribution in
// executable form: the YouTube CDN server-selection machinery that the
// measurement study reverse-engineers. It has four cooperating parts,
// one per cause of non-preferred accesses identified in §VII:
//
//   - a preferred-data-center DNS map keyed by local DNS server, with
//     per-LDNS assignment-policy overrides (§VII-B, Fig 12);
//   - adaptive DNS-level load balancing that spills resolutions away
//     from an overloaded preferred data center (§VII-A, Fig 11);
//   - within-data-center video→server consistent hashing plus
//     hot-spot application-layer redirection when a server saturates
//     (§VII-C, Figs 14-16);
//   - popularity-tiered content placement with pull-through caching,
//     so the first access to an unpopular video is redirected to an
//     origin copy (§VII-C, Figs 13, 17, 18).
package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// FNV-1a 64-bit parameters (hash/fnv's, inlined below).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashU64 hashes a label plus integers into a 64-bit value. The
// splitmix64 finalizer matters: two FNV hashes of the same small
// integers under different labels stay correlated in their low bits
// (FNV is affine mod 2^k), which would make residues used for
// different decisions — origin-DC choice mod 14, in-DC server choice
// mod 56 — structurally dependent. The finalizer breaks that.
//
// The FNV-1a core is written out by hand, byte-identical to
// hash/fnv.New64a: the stdlib constructor returns a hash.Hash64
// interface whose receiver escapes, one heap allocation per call on
// the selection path that runs per decision.
//
//perf:hot
//perf:noalloc
func hashU64(label string, vals ...int64) uint64 {
	h := fnvOffset64
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime64
	}
	for _, v := range vals {
		u := uint64(v)
		for s := 0; s < 64; s += 8 {
			h ^= uint64(byte(u >> s))
			h *= fnvPrime64
		}
	}
	x := h
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0,1).
//
//perf:inline
//perf:noalloc
func unit(h uint64) float64 { return float64(h%1_000_000_000) / 1_000_000_000 }

// OriginPolicy controls where unreplicated (tail) videos live.
type OriginPolicy struct {
	// CopiesPerVideo is the number of origin data centers holding a
	// tail video.
	CopiesPerVideo int
}

// Placement tracks which Google data centers hold which videos.
// Replicated videos (below the catalog's tail rank) are everywhere;
// tail videos start at CopiesPerVideo origin DCs and spread by
// pull-through as they get requested. Placement is safe for concurrent
// use: the mutable state (pull-through set, forced origins, the pull
// counter) sits behind a read/write mutex so that vantage-point shards
// running on separate goroutines can look up and pull videos
// concurrently.
type Placement struct {
	catalog *content.Catalog
	policy  OriginPolicy
	// dcsByContinent indexes Google-class DCs for origin selection.
	dcsByContinent map[geo.Continent][]topology.DataCenterID
	continents     []geo.Continent // deterministic iteration order

	// mu guards everything that mutates after construction; the
	// guarded fields below carry machine-checked annotations (see
	// internal/lint's lockguard analyzer).
	mu sync.RWMutex
	// pulled records (dc, video) pairs added by pull-through.
	// guarded by mu
	pulled map[pullKey]struct{}
	// forced overrides the hashed origin set for specific videos
	// (controlled experiments: a fresh upload lands where the ingest
	// system put it).
	// guarded by mu
	forced map[content.VideoID][]topology.DataCenterID
	// pulls counts pull-through insertions (exposed for ablations).
	// guarded by mu
	pulls int
	// sinceMark journals the keys Pull inserted since the last Mark —
	// the undo log of the optimistic mode. Nil when no mark is active;
	// then Pull journals nothing and pays nothing.
	// guarded by mu
	sinceMark map[pullKey]struct{}
	// pullsAtMark is the pulls counter value captured by Mark.
	// guarded by mu
	pullsAtMark int
}

type pullKey struct {
	dc topology.DataCenterID
	v  content.VideoID
}

// NewPlacement builds the placement layer over a world and catalog.
func NewPlacement(w *topology.World, cat *content.Catalog, policy OriginPolicy) (*Placement, error) {
	if policy.CopiesPerVideo < 1 {
		return nil, fmt.Errorf("core: CopiesPerVideo must be >= 1, got %d", policy.CopiesPerVideo)
	}
	p := &Placement{
		catalog:        cat,
		policy:         policy,
		dcsByContinent: make(map[geo.Continent][]topology.DataCenterID),
		pulled:         make(map[pullKey]struct{}),
	}
	for _, id := range w.GoogleDCs() {
		cont := w.DC(id).City.Continent
		p.dcsByContinent[cont] = append(p.dcsByContinent[cont], id)
	}
	for cont := range p.dcsByContinent {
		p.continents = append(p.continents, cont)
	}
	sort.Slice(p.continents, func(i, j int) bool { return p.continents[i] < p.continents[j] })
	return p, nil
}

// OriginContinent returns the continent hosting the origin copies of a
// tail video as requested from a network homed on `home`. With
// probability foreignProb (deterministic per video and home) the
// origin is abroad, distributed according to weights.
func (p *Placement) OriginContinent(v content.VideoID, home geo.Continent, foreignProb float64, weights map[geo.Continent]float64) geo.Continent {
	u := unit(hashU64("origin-cont", int64(v), int64(home)))
	if u >= foreignProb || len(weights) == 0 {
		return home
	}
	// Rescale u into [0,1) over the foreign draw and walk the weights
	// in deterministic continent order. The normalizing sum runs over
	// the sorted keys too: float addition is not associative, so
	// summing in map order would make the total — and potentially the
	// chosen continent — depend on Go's randomized iteration order.
	u /= foreignProb
	ordered := make([]geo.Continent, 0, len(weights))
	for cont := range weights {
		ordered = append(ordered, cont)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	total := 0.0
	for _, cont := range ordered {
		total += weights[cont]
	}
	if total <= 0 {
		return home
	}
	acc := 0.0
	for _, cont := range ordered {
		acc += weights[cont] / total
		if u < acc {
			if len(p.dcsByContinent[cont]) > 0 {
				return cont
			}
			return home
		}
	}
	return home
}

// Origins returns the origin data centers of a tail video for a
// requester homed on `home`. The result is deterministic. For
// replicated videos it returns nil (they are everywhere). The returned
// slice is freshly allocated and the caller's to keep or mutate.
func (p *Placement) Origins(v content.VideoID, home geo.Continent, foreignProb float64, weights map[geo.Continent]float64) []topology.DataCenterID {
	if !p.catalog.IsTail(v) {
		return nil
	}
	p.mu.RLock()
	dcs, ok := p.forced[v]
	p.mu.RUnlock()
	if ok {
		return append([]topology.DataCenterID(nil), dcs...)
	}
	cont := p.OriginContinent(v, home, foreignProb, weights)
	pool := p.dcsByContinent[cont]
	if len(pool) == 0 {
		// Fall back to any continent with DCs.
		for _, c := range p.continents {
			if len(p.dcsByContinent[c]) > 0 {
				pool = p.dcsByContinent[c]
				break
			}
		}
	}
	n := p.policy.CopiesPerVideo
	if n > len(pool) {
		n = len(pool)
	}
	out := make([]topology.DataCenterID, 0, n)
	start := int(hashU64("origin-dc", int64(v), int64(cont)) % uint64(len(pool)))
	for i := 0; i < n; i++ {
		out = append(out, pool[(start+i)%len(pool)])
	}
	return out
}

// Has reports whether dc currently holds video v for a requester homed
// on `home` (origin parameters as in Origins).
func (p *Placement) Has(dc topology.DataCenterID, v content.VideoID, home geo.Continent, foreignProb float64, weights map[geo.Continent]float64) bool {
	if !p.catalog.IsTail(v) {
		return true
	}
	p.mu.RLock()
	_, ok := p.pulled[pullKey{dc, v}]
	p.mu.RUnlock()
	if ok {
		return true
	}
	for _, o := range p.Origins(v, home, foreignProb, weights) {
		if o == dc {
			return true
		}
	}
	return false
}

// Pull records that dc fetched v (pull-through caching). Subsequent
// Has calls return true for (dc, v).
func (p *Placement) Pull(dc topology.DataCenterID, v content.VideoID) {
	k := pullKey{dc, v}
	p.mu.Lock()
	if _, ok := p.pulled[k]; !ok {
		p.pulled[k] = struct{}{}
		p.pulls++
		if p.sinceMark != nil {
			p.sinceMark[k] = struct{}{}
		}
	}
	p.mu.Unlock()
}

// Mark opens an undo journal at the current state: every key Pull
// inserts from now on is journaled, so Rollback can delete exactly
// those insertions instead of copying the whole (potentially
// multi-million-entry) pulled set per checkpoint. Calling Mark again
// commits the previous journal (the insertions become permanent) and
// starts a fresh one.
func (p *Placement) Mark() {
	p.mu.Lock()
	p.sinceMark = make(map[pullKey]struct{})
	p.pullsAtMark = p.pulls
	p.mu.Unlock()
}

// Rollback undoes every pull-through insertion since the last Mark and
// restores the pulls counter, then starts a fresh journal at the
// restored state. It is the placement half of an optimistic rollback;
// without an active Mark it is a no-op.
func (p *Placement) Rollback() {
	p.mu.Lock()
	if p.sinceMark != nil {
		for k := range p.sinceMark {
			delete(p.pulled, k)
		}
		p.pulls = p.pullsAtMark
		p.sinceMark = make(map[pullKey]struct{})
	}
	p.mu.Unlock()
}

// hasBase reports whether dc held v at the last Mark — the committed
// placement state an optimistic validation sweep measures decisions
// against. Keys inserted since the Mark (speculative pull-throughs of
// any shard) are excluded; whether a key predates the mark does not
// depend on speculation scheduling, so the answer is deterministic.
// Without an active Mark it degrades to Has.
func (p *Placement) hasBase(dc topology.DataCenterID, v content.VideoID, home geo.Continent, foreignProb float64, weights map[geo.Continent]float64) bool {
	if !p.catalog.IsTail(v) {
		return true
	}
	k := pullKey{dc, v}
	p.mu.RLock()
	_, ok := p.pulled[k]
	if ok && p.sinceMark != nil {
		if _, speculative := p.sinceMark[k]; speculative {
			ok = false
		}
	}
	p.mu.RUnlock()
	if ok {
		return true
	}
	for _, o := range p.Origins(v, home, foreignProb, weights) {
		if o == dc {
			return true
		}
	}
	return false
}

// Pulls returns the number of pull-through insertions (exposed for
// ablations).
func (p *Placement) Pulls() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pulls
}

// PulledCount returns the number of distinct (dc, video) pull-through
// entries.
func (p *Placement) PulledCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pulled)
}

// ForceOrigins pins a tail video's origin set, overriding the hashed
// assignment. Used by controlled experiments that upload a fresh video
// to a known ingest location (paper §VII-C). The slice is copied, so
// later caller-side mutations do not leak into the placement.
func (p *Placement) ForceOrigins(v content.VideoID, dcs []topology.DataCenterID) {
	p.mu.Lock()
	if p.forced == nil {
		p.forced = make(map[content.VideoID][]topology.DataCenterID)
	}
	p.forced[v] = append([]topology.DataCenterID(nil), dcs...)
	p.mu.Unlock()
}
