package core

import (
	"sync"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// TestSelectorConcurrentUse hammers the selection engine from several
// goroutines — resolutions, serve-or-redirect chains, flow accounting,
// placement pull-through and a mid-run policy swap — the access pattern
// of a sharded simulation. It proves nothing about outcomes (those are
// pinned by the parity tests); its job is to fail under -race if any
// of the shared structures loses its guard.
func TestSelectorConcurrentUse(t *testing.T) {
	r := newRig(t, DefaultConfig())
	homes := make([]Home, len(r.w.VantagePoints))
	for i, vp := range r.w.VantagePoints {
		homes[i] = HomeOf(vp)
	}

	const workers = 8
	const perWorker = 4000
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := stats.NewRNG(int64(wk + 1))
			for i := 0; i < perWorker; i++ {
				ldns := r.w.LDNSes[(wk+i)%len(r.w.LDNSes)]
				vid := content.VideoID((wk*perWorker + i) % r.cat.N())
				srv := r.sel.ResolveDNS(ldns.ID, vid, g)
				home := homes[ldns.VantagePoint]
				d := r.sel.ServeOrRedirect(srv, vid, ldns.ID, home, g)
				if d.Redirected {
					srv = d.Target
					r.sel.ServeFinal(srv, vid, ldns.ID, home, g)
				}
				r.sel.BeginFlow(srv)
				if i%2 == 0 {
					r.sel.EndFlow(srv)
				} else {
					// Balance from another goroutine's perspective
					// too: release later in the loop.
					defer r.sel.EndFlow(srv)
				}
				if wk == 0 && i == perWorker/2 {
					if err := r.sel.SetPolicy(ProximityOnly{}); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	if r.sel.Policy().Name() != "proximity" {
		t.Errorf("policy after swap = %s, want proximity", r.sel.Policy().Name())
	}
	if got := r.sel.dcFlows.Total(); got != 0 {
		t.Errorf("DC flow total after balanced acquire/release = %d, want 0", got)
	}
	spills, hotspots, misses := r.sel.Counters()
	if spills < 0 || hotspots < 0 || misses < 0 {
		t.Errorf("negative counters: %d %d %d", spills, hotspots, misses)
	}
	if r.pl.Pulls() != r.pl.PulledCount() {
		t.Errorf("Pulls %d != PulledCount %d (duplicate pulls must not double-count)",
			r.pl.Pulls(), r.pl.PulledCount())
	}
}

var _ = topology.ServerID(0)
