package core

import (
	"fmt"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// SelectionPolicy is the pluggable brain of the selection engine: it
// answers the two questions the paper reverse-engineers — which data
// center the authoritative DNS resolves a (LDNS, video) query to, and
// whether a contacted server serves or redirects. The engine
// (Selector) keeps everything that is *not* policy: the RTT-ranked DC
// map, load accounting, placement mutation (pull-through on misses)
// and the ground-truth mechanism counters.
//
// Policies observe engine state only through the restricted PolicyView
// and must be deterministic given the view and the per-decision RNG:
// all randomness has to come from draws on view.RNG so that runs stay
// bit-reproducible under a fixed seed.
type SelectionPolicy interface {
	// Name returns a short stable identifier ("paper", "proximity",
	// ...) used by the comparison harness and command-line flags.
	Name() string

	// ResolveDNS picks the data center the authoritative DNS answers
	// with (step 3 of the paper's Fig 1). The engine maps the returned
	// DC to the video's consistently-hashed server and counts the
	// resolution as a spill when it leaves the preferred DC.
	ResolveDNS(v PolicyView, id topology.LDNSID, vid content.VideoID) topology.DataCenterID

	// ServeOrRedirect decides whether the contacted server serves the
	// video or answers with a redirect (step 4 of Fig 1). On a miss
	// redirect the engine pulls the video into the contacted server's
	// DC (pull-through caching) and bumps the miss counter; hotspot
	// redirects bump the hotspot counter.
	ServeOrRedirect(v PolicyView, srv topology.ServerID, vid content.VideoID, id topology.LDNSID, home Home) Decision
}

// RacingPolicy is implemented by policies whose DNS step hands the
// player several candidate servers to race ("go-with-the-winner"): the
// player samples each candidate's response time and commits to the
// first responder, reporting the commitment back through
// Selector.CommitRace. A policy that returns no candidates falls back
// to the ordinary ResolveDNS path for that query.
type RacingPolicy interface {
	SelectionPolicy

	// RaceCandidates lists the servers the player should race for this
	// query, in deterministic order.
	RaceCandidates(v PolicyView, id topology.LDNSID, vid content.VideoID) []topology.ServerID
}

// validatingPolicy lets a policy reject bad configuration at selector
// construction time.
type validatingPolicy interface {
	Validate() error
}

// ValidatePolicy checks a policy's configuration without installing
// it: nil policies are rejected, and policies exposing Validate get
// it called. The selector applies the same checks in NewSelector and
// SetPolicy; callers that schedule a policy for later (scenario
// timelines) use this to fail fast instead.
func ValidatePolicy(p SelectionPolicy) error {
	if p == nil {
		return fmt.Errorf("core: nil SelectionPolicy")
	}
	if v, ok := p.(validatingPolicy); ok {
		return v.Validate()
	}
	return nil
}

// PolicyView is the restricted, read-only window a policy gets into
// the engine: the per-LDNS RTT ranking, live DC/server loads and
// capacities, placement lookups, the within-DC video hash, and the
// per-decision RNG. It deliberately exposes no mutation — load
// accounting, pull-through and counters stay with the engine — and no
// raw internal slices, so a policy cannot corrupt ground truth.
//
// PolicyView is a value; constructing one allocates nothing.
type PolicyView struct {
	// RNG is the per-decision random stream. It is the requesting
	// player's session stream threaded through the engine, so policy
	// draws interleave deterministically with player draws.
	RNG *stats.RNG

	sel *Selector
	// tv, when non-nil, redirects the mutable-state reads (loads,
	// placement) to an optimistic-validation truth view instead of the
	// live trackers. Static ground truth (rankings, capacities, origin
	// hashing) is identical either way and stays on the selector.
	tv *TruthView
}

// Preferred returns the ground-truth preferred DC of the LDNS.
func (v PolicyView) Preferred(id topology.LDNSID) topology.DataCenterID {
	return v.sel.prefByLDNS[id]
}

// NumRanked returns the number of Google DCs in the LDNS's ranking.
func (v PolicyView) NumRanked(id topology.LDNSID) int {
	return len(v.sel.rankByLDNS[id])
}

// RankedDC returns the i-th closest Google DC of the LDNS (0 = lowest
// base RTT). Indexed access instead of a slice keeps the hot path free
// of defensive copies.
func (v PolicyView) RankedDC(id topology.LDNSID, i int) topology.DataCenterID {
	return v.sel.rankByLDNS[id][i]
}

// DCLoad returns the DC's current concurrent video-flow count (the
// DNS-level load signal).
func (v PolicyView) DCLoad(dc topology.DataCenterID) int {
	if v.tv != nil {
		return v.tv.DCLoad(dc)
	}
	return v.sel.dcFlows.Load(int(dc))
}

// DCCapacity returns the DC's DNS-level flow capacity; 0 means
// unbounded.
func (v PolicyView) DCCapacity(dc topology.DataCenterID) int {
	return v.sel.w.DC(dc).DNSCapacity
}

// ServerLoad returns the server's current concurrent session count.
func (v PolicyView) ServerLoad(srv topology.ServerID) int {
	if v.tv != nil {
		return v.tv.ServerLoad(srv)
	}
	return v.sel.srvSess.Load(int(srv))
}

// ServerCapacity returns the server's session capacity; 0 means
// unbounded.
func (v PolicyView) ServerCapacity(srv topology.ServerID) int {
	return v.sel.w.Server(srv).Capacity
}

// ServerDC returns the data center a server belongs to.
func (v PolicyView) ServerDC(srv topology.ServerID) topology.DataCenterID {
	return v.sel.w.Server(srv).DC
}

// ServerForVideo returns the server a video maps to inside a DC by the
// engine's consistent hash.
func (v PolicyView) ServerForVideo(dc topology.DataCenterID, vid content.VideoID) topology.ServerID {
	return v.sel.serverFor(dc, vid)
}

// HasVideo reports whether dc currently holds the video for a
// requester with the given origin parameters.
func (v PolicyView) HasVideo(dc topology.DataCenterID, vid content.VideoID, home Home) bool {
	if v.tv != nil {
		return v.tv.HasVideo(dc, vid, home)
	}
	return v.sel.placement.Has(dc, vid, home.Continent, home.ForeignProb, home.Weights)
}

// Origins returns the origin DCs of a tail video for the requester
// (nil for replicated videos — they are everywhere).
func (v PolicyView) Origins(vid content.VideoID, home Home) []topology.DataCenterID {
	return v.sel.placement.Origins(vid, home.Continent, home.ForeignProb, home.Weights)
}

// ClosestOf returns the candidate DC ranked best for the LDNS, using
// the engine's precomputed rank-index table (no per-call allocation).
// An empty candidate set yields the preferred DC; candidates outside
// the ranking lose to any ranked one, and an all-unranked set yields
// the first candidate.
func (v PolicyView) ClosestOf(id topology.LDNSID, candidates []topology.DataCenterID) topology.DataCenterID {
	return v.sel.closestTo(id, candidates)
}
