package core

import (
	"fmt"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// Load-threshold semantics shared by the built-in policies. The two
// comparisons are intentionally asymmetric and the asymmetry is
// calibrated behaviour, not an accident:
//
//   - sheds (load >= capacity) decides when an entity stops accepting
//     *load arriving on its own primary path*: a DC receiving new DNS
//     resolutions of its own clients, or a server receiving its
//     hashed video's requests. Shedding the moment the entity reaches
//     capacity pins its accepted concurrency at exactly the capacity,
//     which is what makes the accepted fraction track capacity/demand
//     (the paper's Fig 11 diurnal shape) and what arms hot-spot
//     redirects at saturation (Figs 14-16).
//   - refuses (load > capacity) decides when a DC is skipped as a
//     *target for load shed from elsewhere* (DNS spills, hotspot
//     redirects). A DC sitting exactly at capacity still absorbs
//     redirected load; only strictly exceeding it closes the door.
//     Using >= here would let the preferred DC's shed load bounce
//     between secondary DCs that hover at their own capacity.
//
// Keep both helpers in sync with this comment; every built-in policy
// goes through them rather than comparing inline.

// sheds reports whether an entity at (load, capacity) sheds load
// arriving on its own primary path — a DC facing its own clients'
// resolutions, or a server facing its hashed video's requests.
// Capacity 0 means unbounded.
//
//perf:inline
//perf:noalloc
func sheds(load, capacity int) bool { return capacity > 0 && load >= capacity }

// refuses reports whether a DC at (load, capacity) refuses load shed
// from elsewhere. Capacity 0 means unbounded.
//
//perf:inline
//perf:noalloc
func refuses(load, capacity int) bool { return capacity > 0 && load > capacity }

// PaperPolicy is the selection policy the paper reverse-engineers:
// RTT-preferred DNS resolution with adaptive spilling away from an
// overloaded preferred DC (§VII-A), miss redirection toward an origin
// copy with pull-through (§VII-C, Figs 13/17/18), and hot-spot
// redirection off saturated servers (§VII-C, Figs 14-16). It is the
// engine default; the §VII ablations are its two booleans.
type PaperPolicy struct {
	// DNSLoadBalancing enables adaptive spilling away from an
	// overloaded preferred DC. Disabling it is the §VII-A ablation.
	DNSLoadBalancing bool
	// HotspotRedirection enables server-level overload redirects.
	// Disabling it is the §VII-C hot-spot ablation.
	HotspotRedirection bool
	// SpillCandidates is how many next-best DCs a spilled resolution
	// considers.
	SpillCandidates int
}

// DefaultPaperPolicy returns the configuration matching the paper's
// observed behaviour.
func DefaultPaperPolicy() *PaperPolicy {
	return &PaperPolicy{DNSLoadBalancing: true, HotspotRedirection: true, SpillCandidates: 3}
}

// Name implements SelectionPolicy.
func (p *PaperPolicy) Name() string { return "paper" }

// Validate rejects unusable configuration.
func (p *PaperPolicy) Validate() error {
	if p.SpillCandidates < 1 {
		return fmt.Errorf("core: SpillCandidates must be >= 1, got %d", p.SpillCandidates)
	}
	return nil
}

// ResolveDNS answers with the preferred DC unless it is shedding, in
// which case the resolution spills to a next-best DC.
func (p *PaperPolicy) ResolveDNS(v PolicyView, id topology.LDNSID, vid content.VideoID) topology.DataCenterID {
	pref := v.Preferred(id)
	if p.DNSLoadBalancing && sheds(v.DCLoad(pref), v.DCCapacity(pref)) {
		// The data center is full: spill this resolution. Keeping
		// accepted concurrency pinned at capacity makes the accepted
		// fraction track capacity/demand, which is the paper's Fig 11
		// behaviour (the internal DC serves ~100% at night and ~30% at
		// daytime overload).
		return p.spillTarget(v, id)
	}
	return pref
}

// spillTarget picks the spill DC: the next-ranked DCs after the
// preferred, skipping ones that refuse shed load.
func (p *PaperPolicy) spillTarget(v PolicyView, id topology.LDNSID) topology.DataCenterID {
	pref := v.Preferred(id)
	candidates := make([]topology.DataCenterID, 0, p.SpillCandidates)
	for i, n := 0, v.NumRanked(id); i < n; i++ {
		dc := v.RankedDC(id, i)
		if dc == pref {
			continue
		}
		if refuses(v.DCLoad(dc), v.DCCapacity(dc)) {
			continue
		}
		candidates = append(candidates, dc)
		if len(candidates) == p.SpillCandidates {
			break
		}
	}
	if len(candidates) == 0 {
		return pref
	}
	// Strongly favour the closest spill candidate: the paper's EU2
	// sees essentially one external data center absorb the spill.
	if len(candidates) == 1 || v.RNG.Bool(0.95) {
		return candidates[0]
	}
	return candidates[1+v.RNG.Intn(len(candidates)-1)]
}

// ServeOrRedirect applies the paper's two redirect causes in observed
// priority order: content miss first, then hot-spot shedding.
func (p *PaperPolicy) ServeOrRedirect(v PolicyView, srv topology.ServerID, vid content.VideoID, id topology.LDNSID, home Home) Decision {
	dc := v.ServerDC(srv)

	// Cause (iv): the data center does not hold the video. Redirect
	// toward the closest origin copy (with the paper's load-balancing
	// spread); the engine pulls the video through so only the first
	// access pays (paper Figs 17/18).
	if !v.HasVideo(dc, vid, home) {
		target := paperPickOrigin(v, id, vid, v.Origins(vid, home))
		return Decision{Redirected: true, Target: v.ServerForVideo(target, vid), Reason: ReasonMiss}
	}

	// Cause (iii): the hashed server is above capacity; shed to a
	// server in a non-preferred data center.
	if p.HotspotRedirection && sheds(v.ServerLoad(srv), v.ServerCapacity(srv)) {
		if target := hotspotTarget(v, id, dc); target != dc {
			return Decision{Redirected: true, Target: v.ServerForVideo(target, vid), Reason: ReasonHotspot}
		}
	}
	return Decision{}
}

// paperPickOrigin chooses which origin copy a miss is redirected to:
// usually the closest to the requester, but a quarter of videos
// (deterministically, by hash) use another copy — origin selection in
// the real CDN balances load as well as proximity, and this spread is
// what makes traces touch servers in nearly every data center of the
// requester's continent (Table III).
func paperPickOrigin(v PolicyView, id topology.LDNSID, vid content.VideoID, origins []topology.DataCenterID) topology.DataCenterID {
	if len(origins) > 1 && hashU64("origin-pick", int64(vid))%4 == 0 {
		alt := origins[hashU64("origin-alt", int64(vid))%uint64(len(origins))]
		if alt != v.ClosestOf(id, origins) {
			return alt
		}
		return origins[hashU64("origin-alt2", int64(vid))%uint64(len(origins))]
	}
	return v.ClosestOf(id, origins)
}

// hotspotTarget picks where an overloaded server sheds a request: the
// best-ranked DC other than its own that does not refuse shed load.
// Returns the server's own DC when nothing qualifies.
func hotspotTarget(v PolicyView, id topology.LDNSID, own topology.DataCenterID) topology.DataCenterID {
	for i, n := 0, v.NumRanked(id); i < n; i++ {
		dc := v.RankedDC(id, i)
		if dc == own {
			continue
		}
		if refuses(v.DCLoad(dc), v.DCCapacity(dc)) {
			continue
		}
		return dc
	}
	return own
}

// ProximityOnly is the pre-2010 strawman the paper contrasts against
// (Adhikari et al. [7]): every resolution goes to the RTT-preferred
// DC, no DNS load balancing, no hot-spot shedding. Misses still
// redirect — content that is not there cannot be served — but always
// to the origin copy closest to the requester, with none of the
// paper's load-balancing spread.
type ProximityOnly struct{}

// Name implements SelectionPolicy.
func (ProximityOnly) Name() string { return "proximity" }

// ResolveDNS always answers with the preferred DC.
func (ProximityOnly) ResolveDNS(v PolicyView, id topology.LDNSID, vid content.VideoID) topology.DataCenterID {
	return v.Preferred(id)
}

// ServeOrRedirect redirects only on content misses, to the closest
// origin.
func (ProximityOnly) ServeOrRedirect(v PolicyView, srv topology.ServerID, vid content.VideoID, id topology.LDNSID, home Home) Decision {
	dc := v.ServerDC(srv)
	if !v.HasVideo(dc, vid, home) {
		target := v.ClosestOf(id, v.Origins(vid, home))
		return Decision{Redirected: true, Target: v.ServerForVideo(target, vid), Reason: ReasonMiss}
	}
	return Decision{}
}

// LeastLoadedDC resolves every query to the DC with the fewest
// concurrent flows among the requester's closest Candidates, breaking
// ties toward proximity. It trades RTT for balance — the opposite
// corner of the design space from ProximityOnly — and keeps the
// paper's serve-side behaviour (miss and hot-spot redirection)
// unchanged so the DNS step is the only variable.
type LeastLoadedDC struct {
	// Candidates is how many closest DCs compete; 0 means 5.
	Candidates int
}

// defaultLeastLoadedCandidates is the candidate-window default.
const defaultLeastLoadedCandidates = 5

// Name implements SelectionPolicy.
func (p *LeastLoadedDC) Name() string { return "least-loaded" }

// Validate rejects unusable configuration.
func (p *LeastLoadedDC) Validate() error {
	if p.Candidates < 0 {
		return fmt.Errorf("core: Candidates must be >= 0, got %d", p.Candidates)
	}
	return nil
}

// ResolveDNS picks the least-loaded of the closest candidate DCs.
func (p *LeastLoadedDC) ResolveDNS(v PolicyView, id topology.LDNSID, vid content.VideoID) topology.DataCenterID {
	k := p.Candidates
	if k == 0 {
		k = defaultLeastLoadedCandidates
	}
	if n := v.NumRanked(id); k > n {
		k = n
	}
	best := v.RankedDC(id, 0)
	bestLoad := v.DCLoad(best)
	for i := 1; i < k; i++ {
		dc := v.RankedDC(id, i)
		if load := v.DCLoad(dc); load < bestLoad {
			best, bestLoad = dc, load
		}
	}
	return best
}

// ServeOrRedirect keeps the paper's serve-side mechanisms.
func (p *LeastLoadedDC) ServeOrRedirect(v PolicyView, srv topology.ServerID, vid content.VideoID, id topology.LDNSID, home Home) Decision {
	return paperServeSide.ServeOrRedirect(v, srv, vid, id, home)
}

// ClientRace is go-with-the-winner selection (Liu et al.,
// "Go-With-The-Winner"): the DNS step hands the player the video's
// hashed server in each of the K closest DCs, the player samples each
// candidate's response time — network RTT plus a queueing delay that
// grows with server load — and commits to the first responder. Busy
// servers answer late, so clients steer around hot-spots themselves;
// the serve side keeps the paper's miss redirection (content that is
// absent still has to come from an origin) but disables server-side
// hot-spot shedding, which racing subsumes.
type ClientRace struct {
	// K is how many candidate servers the player races; 0 means 3.
	K int
}

// defaultRaceK is the candidate-count default.
const defaultRaceK = 3

// Name implements SelectionPolicy.
func (p *ClientRace) Name() string { return "client-race" }

// Validate rejects unusable configuration.
func (p *ClientRace) Validate() error {
	if p.K < 0 {
		return fmt.Errorf("core: K must be >= 0, got %d", p.K)
	}
	return nil
}

// RaceCandidates implements RacingPolicy: the video's hashed server in
// each of the K closest DCs, closest first.
func (p *ClientRace) RaceCandidates(v PolicyView, id topology.LDNSID, vid content.VideoID) []topology.ServerID {
	k := p.K
	if k == 0 {
		k = defaultRaceK
	}
	if n := v.NumRanked(id); k > n {
		k = n
	}
	out := make([]topology.ServerID, k)
	for i := 0; i < k; i++ {
		out[i] = v.ServerForVideo(v.RankedDC(id, i), vid)
	}
	return out
}

// ResolveDNS is the non-racing fallback (players that cannot race):
// the preferred DC.
func (p *ClientRace) ResolveDNS(v PolicyView, id topology.LDNSID, vid content.VideoID) topology.DataCenterID {
	return v.Preferred(id)
}

// ServeOrRedirect redirects on misses like the paper but never sheds
// hot-spots — the race already routed around busy servers.
func (p *ClientRace) ServeOrRedirect(v PolicyView, srv topology.ServerID, vid content.VideoID, id topology.LDNSID, home Home) Decision {
	dc := v.ServerDC(srv)
	if !v.HasVideo(dc, vid, home) {
		target := paperPickOrigin(v, id, vid, v.Origins(vid, home))
		return Decision{Redirected: true, Target: v.ServerForVideo(target, vid), Reason: ReasonMiss}
	}
	return Decision{}
}

// paperServeSide is the shared serve-or-redirect implementation for
// policies that only vary the DNS step.
var paperServeSide = DefaultPaperPolicy()
