package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Point
		wantKm float64
		tolKm  float64
	}{
		{"same point", Point{45, 7}, Point{45, 7}, 0, 0.001},
		{"london-paris", London.Point, Paris.Point, 344, 10},
		{"nyc-la", NewYork.Point, LosAngeles.Point, 3936, 50},
		{"london-nyc", London.Point, NewYork.Point, 5570, 60},
		{"sydney-london", Sydney.Point, London.Point, 16994, 150},
		{"equator quarter", Point{0, 0}, Point{0, 90}, math.Pi * EarthRadiusKm / 2, 1},
		{"pole to pole", Point{90, 0}, Point{-90, 0}, math.Pi * EarthRadiusKm, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Distance(tt.a, tt.b)
			if math.Abs(got-tt.wantKm) > tt.tolKm {
				t.Errorf("Distance(%v, %v) = %.1f km, want %.1f±%.1f", tt.a, tt.b, got, tt.wantKm, tt.tolKm)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Point{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		d1, d2 := Distance(a, b), Distance(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegativeAndBounded(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Point{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		d := Distance(a, b)
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Point{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		c := Point{Lat: math.Mod(lat3, 90), Lon: math.Mod(lon3, 180)}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	// Travelling d km away from a point must produce a point at
	// great-circle distance d (for d well below half circumference).
	f := func(latRaw, lonRaw, brgRaw, distRaw float64) bool {
		start := Point{Lat: math.Mod(latRaw, 80), Lon: math.Mod(lonRaw, 180)}
		bearing := math.Mod(math.Abs(brgRaw), 360)
		dist := math.Mod(math.Abs(distRaw), 5000)
		end := Destination(start, bearing, dist)
		got := Distance(start, end)
		return math.Abs(got-dist) < 1.0 // within 1 km
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationZeroDistance(t *testing.T) {
	p := Point{45.07, 7.69}
	q := Destination(p, 123, 0)
	if Distance(p, q) > 1e-6 {
		t.Errorf("Destination with zero distance moved: %v -> %v", p, q)
	}
}

func TestMidpointIsEquidistant(t *testing.T) {
	pairs := [][2]Point{
		{London.Point, NewYork.Point},
		{Turin.Point, Madrid.Point},
		{Tokyo.Point, Sydney.Point},
	}
	for _, pair := range pairs {
		m := Midpoint(pair[0], pair[1])
		d1, d2 := Distance(pair[0], m), Distance(pair[1], m)
		if math.Abs(d1-d2) > 1.0 {
			t.Errorf("Midpoint(%v, %v)=%v not equidistant: %.2f vs %.2f", pair[0], pair[1], m, d1, d2)
		}
	}
}

func TestPointValid(t *testing.T) {
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{-91, 0}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("%v.Valid() = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestContinentString(t *testing.T) {
	if NorthAmerica.String() != "N. America" {
		t.Errorf("NorthAmerica.String() = %q", NorthAmerica.String())
	}
	if Continent(99).String() != "Continent(99)" {
		t.Errorf("unknown continent String() = %q", Continent(99).String())
	}
}

func TestContinentIsOther(t *testing.T) {
	if NorthAmerica.IsOther() || Europe.IsOther() {
		t.Error("NorthAmerica/Europe must not be Other")
	}
	for _, c := range []Continent{Asia, SouthAmerica, Oceania, Africa} {
		if !c.IsOther() {
			t.Errorf("%v must be Other", c)
		}
	}
}

func TestDataCenterCitiesSplit(t *testing.T) {
	cities := DataCenterCities()
	if len(cities) != 33 {
		t.Fatalf("len(DataCenterCities()) = %d, want 33", len(cities))
	}
	var us, eu, other int
	for _, c := range cities {
		switch {
		case c.Continent == NorthAmerica:
			us++
		case c.Continent == Europe:
			eu++
		default:
			other++
		}
	}
	// Paper, Section V: 14 in Europe, 13 in USA, 6 elsewhere.
	if us != 13 || eu != 14 || other != 6 {
		t.Errorf("continental split = US:%d EU:%d other:%d, want 13/14/6", us, eu, other)
	}
}

func TestDataCenterCitiesDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range DataCenterCities() {
		if seen[c.Name] {
			t.Errorf("duplicate data-center city %q", c.Name)
		}
		seen[c.Name] = true
		if !c.Point.Valid() {
			t.Errorf("city %q has invalid point %v", c.Name, c.Point)
		}
	}
}

func TestLandmarkSeedCitiesCoverContinents(t *testing.T) {
	have := make(map[Continent]bool)
	for _, c := range LandmarkSeedCities() {
		have[c.Continent] = true
	}
	for _, want := range []Continent{NorthAmerica, Europe, Asia, SouthAmerica, Oceania, Africa} {
		if !have[want] {
			t.Errorf("landmark seeds missing continent %v", want)
		}
	}
}

func TestCityString(t *testing.T) {
	if got := Turin.String(); got != "Turin, IT" {
		t.Errorf("Turin.String() = %q", got)
	}
}

func TestContinentOfClassifiesAllCities(t *testing.T) {
	// The classifier must agree with the gazetteer for every city the
	// world model uses — Table III depends on it.
	all := append(DataCenterCities(), LandmarkSeedCities()...)
	all = append(all, WestLafayette, Turin, Bologna, Budapest)
	for _, c := range all {
		if got := ContinentOf(c.Point); got != c.Continent {
			t.Errorf("ContinentOf(%s) = %v, want %v", c.Name, got, c.Continent)
		}
	}
}

func TestContinentOfUnknownRegions(t *testing.T) {
	// Mid-Pacific and Antarctic points classify as unknown.
	for _, p := range []Point{{0, -150}, {-75, 60}} {
		if got := ContinentOf(p); got != ContinentUnknown {
			t.Errorf("ContinentOf(%v) = %v, want unknown", p, got)
		}
	}
}

func TestContinentOfNearCityJitter(t *testing.T) {
	// CBG estimates carry tens of km of error; classification must be
	// stable under a ~40 km displacement of each DC city.
	for _, c := range DataCenterCities() {
		for _, brg := range []float64{0, 90, 180, 270} {
			p := Destination(c.Point, brg, 40)
			if got := ContinentOf(p); got != c.Continent {
				t.Errorf("ContinentOf(%s + 40km @ %v) = %v, want %v", c.Name, brg, got, c.Continent)
			}
		}
	}
}
