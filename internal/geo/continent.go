package geo

// ContinentOf classifies a point into a continent using coarse
// bounding boxes. It is the classifier the analysis pipeline applies
// to *estimated* server positions (Table III), so it only needs to be
// accurate to a few hundred kilometers around populated areas.
func ContinentOf(p Point) Continent {
	switch {
	case p.Lon >= -170 && p.Lon <= -52 && p.Lat >= 14 && p.Lat <= 85:
		return NorthAmerica
	case p.Lon >= -90 && p.Lon <= -30 && p.Lat >= -60 && p.Lat < 14:
		return SouthAmerica
	case p.Lon >= -25 && p.Lon <= 45 && p.Lat >= 36 && p.Lat <= 72:
		return Europe
	case p.Lon >= 110 && p.Lon <= 180 && p.Lat >= -50 && p.Lat < -10:
		return Oceania
	case p.Lon > 45 && p.Lon <= 180 && p.Lat >= -12 && p.Lat <= 80:
		return Asia
	case p.Lon >= -20 && p.Lon <= 52 && p.Lat >= -35 && p.Lat < 36:
		return Africa
	default:
		return ContinentUnknown
	}
}
