package geo

// Gazetteer entries for every city used by the default world model.
// Coordinates are approximate city centroids; the simulator only needs
// them to be mutually consistent, not survey-grade.
//
// The paper found 33 data centers: 14 in Europe, 13 in the USA and 6
// elsewhere (Section V). The DC list below matches that split. Vantage
// point and landmark seed cities follow.

// Data-center host cities: 13 in the USA.
var (
	MountainView  = City{"Mountain View", "US", NorthAmerica, Point{37.3861, -122.0839}}
	TheDalles     = City{"The Dalles", "US", NorthAmerica, Point{45.5946, -121.1787}}
	Seattle       = City{"Seattle", "US", NorthAmerica, Point{47.6062, -122.3321}}
	LosAngeles    = City{"Los Angeles", "US", NorthAmerica, Point{34.0522, -118.2437}}
	Dallas        = City{"Dallas", "US", NorthAmerica, Point{32.7767, -96.7970}}
	CouncilBluffs = City{"Council Bluffs", "US", NorthAmerica, Point{41.2619, -95.8608}}
	Chicago       = City{"Chicago", "US", NorthAmerica, Point{41.8781, -87.6298}}
	Atlanta       = City{"Atlanta", "US", NorthAmerica, Point{33.7490, -84.3880}}
	Miami         = City{"Miami", "US", NorthAmerica, Point{25.7617, -80.1918}}
	WashingtonDC  = City{"Washington DC", "US", NorthAmerica, Point{38.9072, -77.0369}}
	NewYork       = City{"New York", "US", NorthAmerica, Point{40.7128, -74.0060}}
	Denver        = City{"Denver", "US", NorthAmerica, Point{39.7392, -104.9903}}
	SaintLouis    = City{"Saint Louis", "US", NorthAmerica, Point{38.6270, -90.1994}}
)

// Data-center host cities: 14 in Europe.
var (
	London    = City{"London", "GB", Europe, Point{51.5074, -0.1278}}
	Amsterdam = City{"Amsterdam", "NL", Europe, Point{52.3676, 4.9041}}
	Frankfurt = City{"Frankfurt", "DE", Europe, Point{50.1109, 8.6821}}
	Paris     = City{"Paris", "FR", Europe, Point{48.8566, 2.3522}}
	Madrid    = City{"Madrid", "ES", Europe, Point{40.4168, -3.7038}}
	Milan     = City{"Milan", "IT", Europe, Point{45.4642, 9.1900}}
	Zurich    = City{"Zurich", "CH", Europe, Point{47.3769, 8.5417}}
	Brussels  = City{"Brussels", "BE", Europe, Point{50.8503, 4.3517}}
	Dublin    = City{"Dublin", "IE", Europe, Point{53.3498, -6.2603}}
	Stockholm = City{"Stockholm", "SE", Europe, Point{59.3293, 18.0686}}
	Hamburg   = City{"Hamburg", "DE", Europe, Point{53.5511, 9.9937}}
	Vienna    = City{"Vienna", "AT", Europe, Point{48.2082, 16.3738}}
	Warsaw    = City{"Warsaw", "PL", Europe, Point{52.2297, 21.0122}}
	Lisbon    = City{"Lisbon", "PT", Europe, Point{38.7223, -9.1393}}
)

// Data-center host cities: 6 in other continents.
var (
	Tokyo        = City{"Tokyo", "JP", Asia, Point{35.6762, 139.6503}}
	HongKong     = City{"Hong Kong", "HK", Asia, Point{22.3193, 114.1694}}
	Singapore    = City{"Singapore", "SG", Asia, Point{1.3521, 103.8198}}
	Sydney       = City{"Sydney", "AU", Oceania, Point{-33.8688, 151.2093}}
	SaoPaulo     = City{"Sao Paulo", "BR", SouthAmerica, Point{-23.5505, -46.6333}}
	BuenosAires  = City{"Buenos Aires", "AR", SouthAmerica, Point{-34.6037, -58.3816}}
	Johannesburg = City{"Johannesburg", "ZA", Africa, Point{-26.2041, 28.0473}}
	Mumbai       = City{"Mumbai", "IN", Asia, Point{19.0760, 72.8777}}
	Taipei       = City{"Taipei", "TW", Asia, Point{25.0330, 121.5654}}
)

// Vantage-point cities. The paper anonymizes its networks; we pick
// plausible stand-ins consistent with the text (a US midwest campus, an
// Italian campus+ISP, and a second European country's largest ISP with
// an in-network Google data center).
var (
	WestLafayette = City{"West Lafayette", "US", NorthAmerica, Point{40.4259, -86.9081}}
	Turin         = City{"Turin", "IT", Europe, Point{45.0703, 7.6869}}
	Bologna       = City{"Bologna", "IT", Europe, Point{44.4949, 11.3426}}
	Budapest      = City{"Budapest", "HU", Europe, Point{47.4979, 19.0402}}
)

// DataCenterCities returns the 33 data-center host cities in a stable
// order: 13 US, then 14 Europe, then 6 others. The slice is freshly
// allocated on each call so callers may mutate it.
func DataCenterCities() []City {
	return []City{
		// USA (13)
		MountainView, TheDalles, Seattle, LosAngeles, Dallas,
		CouncilBluffs, Chicago, Atlanta, Miami, WashingtonDC,
		NewYork, Denver, SaintLouis,
		// Europe (14). Budapest hosts the data center deployed inside
		// the EU2 ISP's network (paper, Table II "Same AS" column).
		London, Amsterdam, Frankfurt, Paris, Madrid, Milan, Zurich,
		Brussels, Dublin, Stockholm, Budapest, Vienna, Warsaw, Lisbon,
		// Others (6)
		Tokyo, HongKong, Singapore, Sydney, SaoPaulo, BuenosAires,
	}
}

// LandmarkSeedCities returns seed cities used to spread synthetic
// PlanetLab-style landmarks with the paper's continental mix
// (97 North America, 82 Europe, 24 Asia, 8 South America, 3 Oceania,
// 1 Africa). Landmarks are placed at jittered offsets around these.
func LandmarkSeedCities() []City {
	return []City{
		// North America seeds.
		MountainView, Seattle, LosAngeles, Dallas, Chicago, Atlanta,
		Miami, WashingtonDC, NewYork, Denver, SaintLouis, CouncilBluffs,
		// Europe seeds.
		London, Amsterdam, Frankfurt, Paris, Madrid, Milan, Zurich,
		Brussels, Dublin, Stockholm, Vienna, Warsaw,
		// Asia seeds.
		Tokyo, HongKong, Singapore, Mumbai, Taipei,
		// South America seeds.
		SaoPaulo, BuenosAires,
		// Oceania seed.
		Sydney,
		// Africa seed.
		Johannesburg,
	}
}
