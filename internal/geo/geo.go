// Package geo provides geographic primitives used throughout the
// simulator: latitude/longitude points, great-circle (haversine)
// distances, continents, and a small gazetteer of the cities hosting
// data centers, vantage points, and measurement landmarks.
//
// All distances are in kilometers. The Earth is modelled as a sphere of
// radius 6371 km, the same approximation used by CBG-style geolocation
// tools.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle math.
const EarthRadiusKm = 6371.0

// Point is a geographic position in decimal degrees.
type Point struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.4f, %.4f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the usual coordinate ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// radians converts degrees to radians.
func radians(deg float64) float64 { return deg * math.Pi / 180 }

// Distance returns the great-circle distance in kilometers between a
// and b using the haversine formula, which is numerically stable for
// small distances.
func Distance(a, b Point) float64 {
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Destination returns the point reached by travelling distanceKm from
// start along the given initial bearing (degrees clockwise from north).
// It is used to synthesize landmark positions around seed cities.
func Destination(start Point, bearingDeg, distanceKm float64) Point {
	ang := distanceKm / EarthRadiusKm // angular distance
	brg := radians(bearingDeg)
	lat1 := radians(start.Lat)
	lon1 := radians(start.Lon)

	sinLat2 := math.Sin(lat1)*math.Cos(ang) + math.Cos(lat1)*math.Sin(ang)*math.Cos(brg)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(brg) * math.Sin(ang) * math.Cos(lat1)
	x := math.Cos(ang) - math.Sin(lat1)*sinLat2
	lon2 := lon1 + math.Atan2(y, x)

	// Normalize longitude to [-180, 180).
	lonDeg := math.Mod(lon2*180/math.Pi+540, 360) - 180
	return Point{Lat: lat2 * 180 / math.Pi, Lon: lonDeg}
}

// Midpoint returns the great-circle midpoint of a and b. It is used as
// a cheap centroid for pairs when intersecting constraint regions.
func Midpoint(a, b Point) Point {
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	dLon := lon2 - lon1

	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)

	lonDeg := math.Mod(lon3*180/math.Pi+540, 360) - 180
	return Point{Lat: lat3 * 180 / math.Pi, Lon: lonDeg}
}

// Continent identifies a continental region. The paper buckets server
// locations into North America, Europe, and "Others" (Table III); we
// keep the finer breakdown and collapse when rendering.
type Continent int

// Continents, starting at 1 so the zero value is invalid
// (ContinentUnknown).
const (
	ContinentUnknown Continent = iota
	NorthAmerica
	Europe
	Asia
	SouthAmerica
	Oceania
	Africa
)

var continentNames = map[Continent]string{
	ContinentUnknown: "Unknown",
	NorthAmerica:     "N. America",
	Europe:           "Europe",
	Asia:             "Asia",
	SouthAmerica:     "S. America",
	Oceania:          "Oceania",
	Africa:           "Africa",
}

// String implements fmt.Stringer.
func (c Continent) String() string {
	if s, ok := continentNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Continent(%d)", int(c))
}

// IsOther reports whether the continent falls in the paper's "Others"
// bucket (anything but North America and Europe).
func (c Continent) IsOther() bool {
	return c != NorthAmerica && c != Europe
}

// City is a named location with a continent tag.
type City struct {
	Name      string
	Country   string
	Continent Continent
	Point     Point
}

// String implements fmt.Stringer.
func (c City) String() string {
	return fmt.Sprintf("%s, %s", c.Name, c.Country)
}
