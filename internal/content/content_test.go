package content

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := NewCatalog(Config{
		N: 10000, ZipfExponent: 1, TailRank: 4000, VOTDShare: 0.05, Days: 7,
		MedianDuration: 150 * time.Second, DurationSigma: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCatalogValidation(t *testing.T) {
	base := Config{N: 10, ZipfExponent: 1, TailRank: 5, VOTDShare: 0.1, Days: 1,
		MedianDuration: time.Minute, DurationSigma: 0.5}
	bad := base
	bad.N = 0
	if _, err := NewCatalog(bad); err == nil {
		t.Error("N=0 must fail")
	}
	bad = base
	bad.TailRank = 11
	if _, err := NewCatalog(bad); err == nil {
		t.Error("TailRank > N must fail")
	}
	bad = base
	bad.VOTDShare = 1.0
	if _, err := NewCatalog(bad); err == nil {
		t.Error("VOTDShare=1 must fail")
	}
}

func TestDefaultConfigBuilds(t *testing.T) {
	if _, err := NewCatalog(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestIsTail(t *testing.T) {
	c := testCatalog(t)
	if c.IsTail(0) || c.IsTail(3999) {
		t.Error("head videos classified as tail")
	}
	if !c.IsTail(4000) || !c.IsTail(9999) {
		t.Error("tail videos not classified as tail")
	}
}

func TestVideoOfDaySchedule(t *testing.T) {
	c := testCatalog(t)
	seen := make(map[VideoID]bool)
	for d := 0; d < 7; d++ {
		v := c.VideoOfDay(d)
		if c.IsTail(v) {
			t.Errorf("VOTD day %d is a tail video", d)
		}
		if seen[v] {
			t.Errorf("VOTD day %d repeats video %d", d, v)
		}
		seen[v] = true
	}
	// Clamping.
	if c.VideoOfDay(-1) != c.VideoOfDay(0) {
		t.Error("negative day must clamp")
	}
	if c.VideoOfDay(99) != c.VideoOfDay(6) {
		t.Error("overflow day must clamp")
	}
}

func TestSampleVOTDBoost(t *testing.T) {
	c := testCatalog(t)
	g := stats.NewRNG(1)
	day3 := 3*24*time.Hour + 5*time.Hour
	votd := c.VideoOfDay(3)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if c.Sample(g, day3) == votd {
			hits++
		}
	}
	frac := float64(hits) / n
	// VOTDShare 0.05 plus the video's tiny organic mass.
	if frac < 0.04 || frac > 0.08 {
		t.Errorf("VOTD hit fraction = %.3f, want ~0.05", frac)
	}
	// Outside its day, the video is back to organic popularity.
	hits = 0
	for i := 0; i < n; i++ {
		if c.Sample(g, 24*time.Hour) == votd {
			hits++
		}
	}
	if frac2 := float64(hits) / n; frac2 > 0.01 {
		t.Errorf("off-day VOTD fraction = %.3f, want ~0", frac2)
	}
}

func TestSampleInRange(t *testing.T) {
	c := testCatalog(t)
	g := stats.NewRNG(2)
	for i := 0; i < 5000; i++ {
		v := c.Sample(g, time.Duration(i)*time.Minute)
		if v < 0 || int(v) >= c.N() {
			t.Fatalf("sample out of range: %d", v)
		}
	}
}

func TestDurationDeterministicAndBounded(t *testing.T) {
	c := testCatalog(t)
	for v := VideoID(0); v < 2000; v++ {
		d1, d2 := c.Duration(v), c.Duration(v)
		if d1 != d2 {
			t.Fatal("duration not deterministic")
		}
		if d1 < 20*time.Second || d1 > 30*time.Minute {
			t.Fatalf("duration %v out of bounds", d1)
		}
	}
}

func TestDurationMedianRoughlyConfigured(t *testing.T) {
	c := testCatalog(t)
	cdf := &stats.CDF{}
	for v := VideoID(0); v < 5000; v++ {
		cdf.Add(c.Duration(v).Seconds())
	}
	med := cdf.Median()
	if med < 100 || med > 220 {
		t.Errorf("median duration = %.0fs, want ~150s", med)
	}
}

func TestSizeScalesWithResolution(t *testing.T) {
	c := testCatalog(t)
	v := VideoID(42)
	s360 := c.SizeBytes(v, Res360p)
	s480 := c.SizeBytes(v, Res480p)
	s720 := c.SizeBytes(v, Res720p)
	if !(s360 < s480 && s480 < s720) {
		t.Errorf("sizes not ordered: %d %d %d", s360, s480, s720)
	}
	if s360 <= 0 {
		t.Error("non-positive size")
	}
}

func TestSampleResolutionMix(t *testing.T) {
	c := testCatalog(t)
	g := stats.NewRNG(3)
	counts := map[Resolution]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[c.SampleResolution(g)]++
	}
	if f := float64(counts[Res360p]) / n; f < 0.65 || f > 0.75 {
		t.Errorf("360p fraction = %.3f", f)
	}
	if f := float64(counts[Res720p]) / n; f < 0.05 || f > 0.12 {
		t.Errorf("720p fraction = %.3f", f)
	}
}

func TestStringIDFormat(t *testing.T) {
	id := StringID(12345)
	if len(id) != 11 {
		t.Fatalf("StringID length = %d, want 11", len(id))
	}
	for _, r := range id {
		ok := (r >= 'A' && r <= 'Z') || (r >= 'a' && r <= 'z') ||
			(r >= '0' && r <= '9') || r == '-' || r == '_'
		if !ok {
			t.Fatalf("invalid character %q in %q", r, id)
		}
	}
}

func TestStringIDInjective(t *testing.T) {
	seen := make(map[string]VideoID, 100000)
	for v := VideoID(0); v < 100000; v++ {
		id := StringID(v)
		if prev, ok := seen[id]; ok {
			t.Fatalf("collision: videos %d and %d both map to %q", prev, v, id)
		}
		seen[id] = v
	}
}

func TestStringIDInjectiveProperty(t *testing.T) {
	f := func(a, b int32) bool {
		if a == b {
			return true
		}
		return StringID(VideoID(a)) != StringID(VideoID(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResolutionRoundTrip(t *testing.T) {
	for _, r := range []Resolution{Res360p, Res480p, Res720p} {
		got, err := ParseResolution(r.String())
		if err != nil || got != r {
			t.Errorf("round trip %v failed: %v %v", r, got, err)
		}
	}
	if _, err := ParseResolution("1080p"); err == nil {
		t.Error("unknown resolution must fail to parse")
	}
	if Resolution(0).String() != "unknown" {
		t.Error("zero resolution String broken")
	}
}

func TestZipfHeadDominates(t *testing.T) {
	c := testCatalog(t)
	g := stats.NewRNG(4)
	head := 0
	const n = 50000
	for i := 0; i < n; i++ {
		// Sample far from any VOTD window influence by using share of
		// organic draws only; VOTD is itself a head video anyway.
		if int(c.Sample(g, 0)) < 1000 {
			head++
		}
	}
	frac := float64(head) / n
	// Zipf(1) over 10k: mass of top 1000 = H(1000)/H(10000) ~ 0.75.
	if frac < 0.65 || frac > 0.85 {
		t.Errorf("head mass = %.3f, want ~0.75", frac)
	}
}
