// Package content models the video corpus: identifiers, durations,
// resolutions and sizes, a Zipf popularity law, the replication tier of
// each video, and the "video of the day" schedule that produces the
// popularity hot-spots of paper §VII-C.
package content

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// VideoID identifies a video. IDs double as popularity ranks: ID 0 is
// the most popular video. The exported string form (StringID) is an
// 11-character YouTube-style identifier.
type VideoID int32

// Resolution is the video resolution requested by the player, one of
// the formats Tstat records.
type Resolution int

// Supported resolutions.
const (
	Res360p Resolution = iota + 1
	Res480p
	Res720p
)

// String implements fmt.Stringer.
func (r Resolution) String() string {
	switch r {
	case Res360p:
		return "360p"
	case Res480p:
		return "480p"
	case Res720p:
		return "720p"
	default:
		return "unknown"
	}
}

// ParseResolution inverts String.
func ParseResolution(s string) (Resolution, error) {
	switch s {
	case "360p":
		return Res360p, nil
	case "480p":
		return Res480p, nil
	case "720p":
		return Res720p, nil
	default:
		return 0, fmt.Errorf("content: unknown resolution %q", s)
	}
}

// bitrateBps returns the nominal media bitrate in bits per second.
func (r Resolution) bitrateBps() float64 {
	switch r {
	case Res360p:
		return 400_000
	case Res480p:
		return 750_000
	case Res720p:
		return 1_500_000
	default:
		return 400_000
	}
}

// Config parameterizes a Catalog.
type Config struct {
	// N is the corpus size.
	N int
	// ZipfExponent is the popularity skew (≈1 for YouTube).
	ZipfExponent float64
	// TailRank is the first rank NOT replicated across all data
	// centers; videos at rank >= TailRank live only at their origin
	// DCs until pulled (paper §VII-C "availability of unpopular
	// videos").
	TailRank int
	// VOTDShare is the fraction of requests that target the video of
	// the day during its 24-hour window (paper Fig 14: these videos
	// were "played by default when accessing the youtube.com web page
	// for exactly 24 hours").
	VOTDShare float64
	// Days is the number of scheduled video-of-the-day slots.
	Days int
	// MedianDuration is the median video duration; durations follow a
	// log-normal around it.
	MedianDuration time.Duration
	// DurationSigma is the log-normal sigma of durations.
	DurationSigma float64
}

// DefaultConfig returns the corpus used by the paper world. The Zipf
// exponent of 0.8 keeps the head video near 1.5% of requests (so
// organic popularity alone does not saturate a server — hot-spots come
// from the video-of-the-day bursts, as in the paper), and the tail
// threshold puts ~8% of request mass on unreplicated videos, which
// after the first-access pull-through effect yields the non-preferred
// access rates of Figs 9-10.
func DefaultConfig() Config {
	return Config{
		N:              400_000,
		ZipfExponent:   0.8,
		TailRank:       260_000,
		VOTDShare:      0.055,
		Days:           7,
		MedianDuration: 150 * time.Second,
		DurationSigma:  0.7,
	}
}

// Catalog is an immutable video corpus. Safe for concurrent use.
type Catalog struct {
	cfg  Config
	zipf *stats.Zipf
	votd []VideoID
}

// NewCatalog builds a catalog, validating the configuration.
func NewCatalog(cfg Config) (*Catalog, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("content: catalog needs N >= 1, got %d", cfg.N)
	}
	if cfg.TailRank < 0 || cfg.TailRank > cfg.N {
		return nil, fmt.Errorf("content: TailRank %d out of [0, %d]", cfg.TailRank, cfg.N)
	}
	if cfg.VOTDShare < 0 || cfg.VOTDShare >= 1 {
		return nil, fmt.Errorf("content: VOTDShare %g out of [0, 1)", cfg.VOTDShare)
	}
	z, err := stats.NewZipf(cfg.N, cfg.ZipfExponent)
	if err != nil {
		return nil, err
	}
	c := &Catalog{cfg: cfg, zipf: z}
	// Videos of the day: moderately popular videos (well inside the
	// replicated range) that receive a one-day burst. Spaced so each
	// day has a distinct video.
	for d := 0; d < cfg.Days; d++ {
		rank := 400 + 37*d
		if rank >= cfg.N {
			rank = d % cfg.N
		}
		c.votd = append(c.votd, VideoID(rank))
	}
	return c, nil
}

// Config returns the catalog configuration.
func (c *Catalog) Config() Config { return c.cfg }

// N returns the corpus size.
func (c *Catalog) N() int { return c.cfg.N }

// VideoOfDay returns the scheduled video for the given day index
// (clamped to the schedule).
func (c *Catalog) VideoOfDay(day int) VideoID {
	if day < 0 {
		day = 0
	}
	if day >= len(c.votd) {
		day = len(c.votd) - 1
	}
	return c.votd[day]
}

// Sample draws a video for a request arriving at time t. With
// probability VOTDShare the request goes to the current video of the
// day; otherwise it follows the Zipf law.
func (c *Catalog) Sample(g *stats.RNG, t time.Duration) VideoID {
	if c.cfg.VOTDShare > 0 && g.Bool(c.cfg.VOTDShare) {
		return c.VideoOfDay(int(t / (24 * time.Hour)))
	}
	return VideoID(c.zipf.Sample(g))
}

// IsTail reports whether the video is in the unreplicated tail.
func (c *Catalog) IsTail(v VideoID) bool { return int(v) >= c.cfg.TailRank }

// hash64 gives a per-video deterministic 64-bit value with a label.
func hash64(v VideoID, label string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	_, _ = h.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	return h.Sum64()
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h%1_000_000_000) / 1_000_000_000 }

// Duration returns the deterministic duration of a video: log-normal
// around the configured median, clamped to [20s, 30m].
func (c *Catalog) Duration(v VideoID) time.Duration {
	// Two independent uniforms -> one normal via Box-Muller.
	u1 := unit(hash64(v, "dur-a"))
	u2 := unit(hash64(v, "dur-b"))
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	n := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	d := time.Duration(float64(c.cfg.MedianDuration) * math.Exp(c.cfg.DurationSigma*n))
	if d < 20*time.Second {
		d = 20 * time.Second
	}
	if d > 30*time.Minute {
		d = 30 * time.Minute
	}
	return d
}

// SizeBytes returns the full-file size of a video at a resolution.
func (c *Catalog) SizeBytes(v VideoID, r Resolution) int64 {
	return int64(c.Duration(v).Seconds() * r.bitrateBps() / 8)
}

// SampleResolution draws a resolution from the 2010-era mix
// (mostly 360p).
func (c *Catalog) SampleResolution(g *stats.RNG) Resolution {
	u := g.Float64()
	switch {
	case u < 0.70:
		return Res360p
	case u < 0.92:
		return Res480p
	default:
		return Res720p
	}
}

// base64ish is the alphabet of YouTube video identifiers.
const base64ish = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_"

// StringID renders the 11-character YouTube-style identifier of v.
// The mapping is injective: multiplication by an odd constant is a
// bijection on 64-bit integers, and the 11 base-64 digits are exactly
// its base-64 representation (64 bits < 66 = 11*6 bits).
func StringID(v VideoID) string {
	var buf [11]byte
	x := uint64(uint32(v)) * 0x9E3779B97F4A7C15
	for i := 0; i < 11; i++ {
		buf[i] = base64ish[x%64]
		x /= 64
	}
	return string(buf[:])
}

// ParseStringID is not provided: traces carry the opaque string form,
// and the simulator keeps a side map when it needs to invert it.
