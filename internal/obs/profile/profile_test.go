package profile

import (
	"strings"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// TestNilProfilerPhase pins the typed-nil contract: a nil *Profiler
// handed through an interface (experiments.Profiler) defeats the
// caller's == nil check, so Phase itself must be the no-op.
func TestNilProfilerPhase(t *testing.T) {
	var p *Profiler
	done := p.Phase("anything")
	done() // must not panic
}

func TestProfilerAccumulates(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewProfiler(reg)
	for i := 0; i < 3; i++ {
		done := p.Phase("probing")
		done()
	}
	snap := reg.Snapshot()
	if got := snap.Counters["wall.phase.probing.calls"]; got != 3 {
		t.Errorf("calls = %d, want 3", got)
	}
	if _, ok := snap.Gauges["wall.phase.probing.seconds"]; !ok {
		t.Error("wall.phase.probing.seconds gauge not registered")
	}
}

func TestProcessGauges(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterProcessGauges(reg, time.Now())
	snap := reg.Snapshot()
	for _, name := range []string{
		"wall.process.goroutines", "wall.process.heap_alloc_bytes",
		"wall.process.total_alloc_bytes", "wall.process.gc_cycles",
		"wall.process.uptime_seconds",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not registered", name)
		}
	}
	if snap.Gauges["wall.process.goroutines"] < 1 {
		t.Error("goroutine gauge < 1")
	}
}

// TestProgressLine: the periodic reporter writes progress lines to the
// writer and the stop function flushes a final one.
func TestProgressLine(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sim.cdn.sessions").Add(5)
	var sb strings.Builder
	stop := StartProgress(&sb, reg, time.Hour) // interval never fires; stop writes the final line
	stop()
	out := sb.String()
	if !strings.Contains(out, "sim.cdn.sessions=5") {
		t.Errorf("progress line missing counter: %q", out)
	}
	if !strings.Contains(out, "progress ") {
		t.Errorf("progress line missing prefix: %q", out)
	}
}
