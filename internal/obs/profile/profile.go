// Package profile is the wall-clock plane of the observability layer:
// per-phase pipeline timing, process gauges and the periodic stderr
// progress line. It reads the wall clock, so the obsplane lint rule
// forbids the deterministic core packages (internal/{cdn,core,des,
// workload}) from importing it — only the harness and cmd layers may.
package profile

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// Profiler accumulates wall-clock time per named pipeline phase and
// publishes each phase as the gauges "wall.phase.<name>.seconds" and
// "wall.phase.<name>.calls". It is safe for concurrent use; nested and
// repeated phases accumulate.
type Profiler struct {
	reg *obs.Registry

	mu sync.Mutex
	// guarded by mu
	phases map[string]*phaseStat
}

type phaseStat struct {
	nanos *obs.Counter
	calls *obs.Counter
}

// NewProfiler returns a profiler publishing into reg.
func NewProfiler(reg *obs.Registry) *Profiler {
	return &Profiler{reg: reg, phases: make(map[string]*phaseStat)}
}

// Phase starts timing the named phase and returns the function that
// stops it. A nil *Profiler is a valid no-op — callers hand profilers
// through interfaces (experiments.Profiler), where a typed-nil pointer
// survives the caller's == nil check. Typical use:
//
//	done := prof.Phase("probing")
//	defer done()
func (p *Profiler) Phase(name string) func() {
	if p == nil {
		return func() {}
	}
	st := p.stat(name)
	start := time.Now()
	return func() {
		st.nanos.Add(time.Since(start).Nanoseconds())
		st.calls.Inc()
	}
}

func (p *Profiler) stat(name string) *phaseStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.phases[name]
	if !ok {
		nanos := p.reg.Counter("wall.phase." + name + ".nanos")
		st = &phaseStat{nanos: nanos, calls: p.reg.Counter("wall.phase." + name + ".calls")}
		p.reg.GaugeFunc("wall.phase."+name+".seconds", func() float64 {
			return float64(nanos.Value()) / float64(time.Second)
		})
		p.phases[name] = st
	}
	return st
}

// RegisterProcessGauges publishes process-level wall-clock gauges:
// goroutine count, heap bytes, total allocated bytes, GC cycles and
// uptime since start.
func RegisterProcessGauges(reg *obs.Registry, start time.Time) {
	reg.GaugeFunc("wall.process.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("wall.process.heap_alloc_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.GaugeFunc("wall.process.total_alloc_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.TotalAlloc)
	})
	reg.GaugeFunc("wall.process.gc_cycles", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
	reg.GaugeFunc("wall.process.uptime_seconds", func() float64 {
		return time.Since(start).Seconds()
	})
}

// StartProgress launches a goroutine writing one compact progress line
// to w every interval, summarizing the registry's counters plus
// goroutine count and uptime. The returned stop function writes one
// final line and waits for the goroutine to exit.
func StartProgress(w io.Writer, reg *obs.Registry, interval time.Duration) (stop func()) {
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				writeProgressLine(w, reg, start)
				return
			case <-t.C:
				writeProgressLine(w, reg, start)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

func writeProgressLine(w io.Writer, reg *obs.Registry, start time.Time) {
	s := reg.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "progress t=%.1fs goroutines=%d", time.Since(start).Seconds(), runtime.NumGoroutine())
	for _, n := range names {
		if strings.HasPrefix(n, "wall.phase.") {
			continue // the .seconds gauges summarize these better
		}
		fmt.Fprintf(&b, " %s=%d", n, s.Counters[n])
	}
	fmt.Fprintln(w, b.String())
}
