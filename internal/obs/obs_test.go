package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestBucketUpper pins the reported upper bound of every interesting
// bucket: 0 for the non-positive bucket, 2^i-1 elsewhere, saturating at
// MaxInt64 from bucket 64 up.
func TestBucketUpper(t *testing.T) {
	cases := []struct {
		bucket int
		want   int64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 7},
		{10, 1023},
		{32, (1 << 32) - 1},
		{63, (1 << 63) - 1},
		{64, math.MaxInt64},
		{65, math.MaxInt64},
	}
	for _, c := range cases {
		if got := BucketUpper(c.bucket); got != c.want {
			t.Errorf("BucketUpper(%d) = %d, want %d", c.bucket, got, c.want)
		}
	}
}

// TestHistogramExactAtBoundaries pins the quantile contract at the
// bucket edges: an observation of exactly 2^k-1 is the upper bound of
// its own bucket, so the reported quantile is exact (no overestimate);
// an observation of 2^k opens the next bucket and is overestimated by
// its upper bound 2^(k+1)-1.
func TestHistogramExactAtBoundaries(t *testing.T) {
	for k := 1; k <= 62; k++ {
		edge := int64(1)<<k - 1
		h := NewHistogram()
		h.Observe(edge)
		if got := h.Quantile(1); got != edge {
			t.Fatalf("k=%d: Quantile(1) after Observe(2^%d-1=%d) = %d, want exact %d", k, k, edge, got, edge)
		}

		power := int64(1) << k
		h = NewHistogram()
		h.Observe(power)
		want := int64(1)<<(k+1) - 1
		if got := h.Quantile(1); got != want {
			t.Fatalf("k=%d: Quantile(1) after Observe(2^%d=%d) = %d, want bucket upper %d", k, k, power, got, want)
		}
	}
}

// TestHistogramQuantileRanks walks the rank arithmetic on a tiny known
// multiset. Observations 1,2,3,4 land in buckets 1 (just {1}), 2
// ({2,3}) and 3 ({4}), so:
//
//	rank 1 (q<=0.25) -> bucket 1, upper 1
//	rank 2..3        -> bucket 2, upper 3
//	rank 4 (q=1)     -> bucket 3, upper 7
func TestHistogramQuantileRanks(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 4} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1},
		{0.25, 1},
		{0.26, 3},
		{0.5, 3},
		{0.75, 3},
		{0.76, 7},
		{0.99, 7},
		{1, 7},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.q, got, c.want)
		}
	}
	// Out-of-range q clamps rather than panics.
	if got := h.Quantile(-1); got != 1 {
		t.Errorf("Quantile(-1) = %d, want 1 (clamped to q=0)", got)
	}
	if got := h.Quantile(2); got != 7 {
		t.Errorf("Quantile(2) = %d, want 7 (clamped to q=1)", got)
	}
}

// TestHistogramNonPositive: zero and negative observations share bucket
// 0 (reported upper bound 0) but still feed count, sum, min and max.
func TestHistogramNonPositive(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	if got := h.Quantile(1); got != 0 {
		t.Errorf("Quantile(1) = %d, want 0 for non-positive observations", got)
	}
	s := h.SnapshotValues()
	if s.Count != 2 || s.Sum != -5 || s.Min != -5 || s.Max != 0 {
		t.Errorf("snapshot = %+v, want count=2 sum=-5 min=-5 max=0", s)
	}
}

// TestHistogramEmpty: an untouched histogram reports zeros, including
// min/max (the sentinel seeds must not leak into snapshots).
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
	s := h.SnapshotValues()
	if s != (HistogramSnapshot{}) {
		t.Errorf("empty snapshot = %+v, want all zeros", s)
	}
}

func TestHistogramMinMaxSum(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{100, 3, 512, 7} {
		h.Observe(v)
	}
	s := h.SnapshotValues()
	if s.Count != 4 || s.Sum != 622 || s.Min != 3 || s.Max != 512 {
		t.Errorf("snapshot = %+v, want count=4 sum=622 min=3 max=512", s)
	}
	// p50: rank 2 of {3,7,100,512} -> 7, bucket 3, upper 7 (exact).
	if s.P50 != 7 {
		t.Errorf("P50 = %d, want 7", s.P50)
	}
	// p99: rank 4 -> 512, bucket 10, upper 1023.
	if s.P99 != 1023 {
		t.Errorf("P99 = %d, want 1023", s.P99)
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

// TestRegistryGetOrCreate pins the aggregation mechanism: looking a
// name up twice returns the same instrument, which is how per-shard
// simulators recording under one name produce run-wide totals.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter(\"a\") returned distinct instruments")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Error("Gauge(\"b\") returned distinct instruments")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Error("Histogram(\"c\") returned distinct instruments")
	}
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count")
	r.Gauge("a.gauge")
	r.GaugeFunc("m.func", func() float64 { return 1 })
	r.Histogram("k.hist")
	got := r.Names()
	want := []string{"a.gauge", "k.hist", "m.func", "z.count"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

// TestSnapshotDeterministic: two snapshots of the same instrument state
// marshal byte-identically (fixed field order, sorted map keys), and
// the result passes the shared validator.
func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.cdn.sessions").Add(7)
	r.Gauge("sim.selector.flows_active").Set(3)
	r.GaugeFunc("wall.process.goroutines", func() float64 { return 5 })
	r.Histogram("sim.cdn.chain_depth_hops").Observe(2)

	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("identical state marshalled differently:\n%s\n%s", a, b)
	}
	if err := ValidateSnapshotJSON(a); err != nil {
		t.Errorf("snapshot failed its own validator: %v", err)
	}
}

func TestValidateSnapshotJSON(t *testing.T) {
	cases := []struct {
		name string
		data string
		ok   bool
	}{
		{"valid", `{"schema":"ytcdn.metrics/v1","counters":{},"gauges":{},"histograms":{}}`, true},
		{"wrong schema", `{"schema":"ytcdn.metrics/v0","counters":{},"gauges":{},"histograms":{}}`, false},
		{"missing section", `{"schema":"ytcdn.metrics/v1","counters":{},"gauges":{}}`, false},
		{"not json", `nope`, false},
	}
	for _, c := range cases {
		err := ValidateSnapshotJSON([]byte(c.data))
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validated but should not", c.name)
		}
	}
}

// TestConcurrentObserveAndSnapshot hammers one histogram and counter
// from many goroutines while snapshotting — the -race exercise for the
// scrape-during-run path.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer.count")
			h := r.Histogram("hammer.hist")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i%1024 + 1))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := r.Snapshot()
			if _, err := json.Marshal(s); err != nil {
				t.Errorf("snapshot %d failed to marshal: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("hammer.count").Value(); got != workers*perWorker {
		t.Errorf("final count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("hammer.hist").Count(); got != workers*perWorker {
		t.Errorf("final histogram count = %d, want %d", got, workers*perWorker)
	}
}
