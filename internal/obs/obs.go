// Package obs is the deterministic half of the observability layer:
// lock-free counters, gauges and fixed-bucket log histograms that the
// simulation core updates while it runs, and a registry that renders
// them as a JSON snapshot for the /metrics endpoint and the end-of-run
// report.
//
// The package is split across two planes by construction:
//
//   - The DETERMINISTIC plane is this package. Instruments here are
//     keyed on simulated time and event counts only — they never read
//     the wall clock, never draw randomness, and never feed back into
//     the simulation, so recording into them is provably
//     zero-perturbation: a run with metrics enabled is bit-identical
//     to one without. The obsplane lint analyzer enforces the
//     invariant (no time.Now/Since/Until anywhere in this package, and
//     the deterministic core packages may not reach the wall-clock
//     subpackages below).
//   - The WALL-CLOCK plane lives in the subpackages obs/profile
//     (per-phase pipeline timing, process gauges, progress lines) and
//     obs/obshttp (the live HTTP endpoint). Only the harness and cmd
//     layers may use them.
//
// All instruments are safe for concurrent use: sharded simulation
// goroutines record while the HTTP scrape goroutine snapshots.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//perf:hot
//perf:inline
//perf:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//perf:hot
//perf:inline
//perf:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//perf:inline
//perf:noalloc
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by delta.
//
//perf:inline
//perf:noalloc
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count of a Histogram: bucket 0 holds
// observations <= 0, bucket k (1..64) holds 2^(k-1) <= v < 2^k.
const histBuckets = 65

// Histogram accumulates int64 observations into fixed power-of-two
// buckets. The bucket layout is static — no sampling, no rebalancing —
// so concurrent observation order cannot change what a snapshot
// reports for a given multiset of observations, and quantiles are a
// pure function of the recorded counts. Quantile returns the upper
// bound of the bucket containing the requested rank, a deterministic
// overestimate that is exact at bucket boundaries.
//
// Build histograms with NewHistogram (the registry does): the min/max
// trackers rely on sentinel initial values.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 until the first observation
	max     atomic.Int64 // MinInt64 until the first observation
}

// NewHistogram returns a ready histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketOf maps an observation to its bucket index.
//
//perf:inline
//perf:noalloc
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound reported for bucket i:
// 0 for bucket 0, otherwise 2^i - 1 (the largest value the bucket
// holds).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxInt64
	}
	return (int64(1) << i) - 1
}

// Observe records one value.
//
//perf:hot
//perf:noalloc
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns the value at quantile q in [0, 1]: the upper bound
// of the bucket holding the ceil(q*count)-th smallest observation
// (rank 1 for q == 0). With zero observations it returns 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	// Concurrent observers may have bumped count after our bucket
	// reads; report the highest non-empty bucket seen.
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// HistogramState is the raw internal state of a Histogram — every
// bucket plus the scalar trackers, including the MaxInt64/MinInt64
// min/max sentinels of an empty histogram. Unlike HistogramSnapshot it
// is lossless: RestoreState(State()) is an exact round trip, which is
// what the optimistic rollback path needs.
type HistogramState struct {
	Buckets              [histBuckets]int64
	Count, Sum, Min, Max int64
}

// State captures the histogram's raw state. Call it only while no
// observer is concurrently recording (the optimistic driver does, with
// every shard parked).
func (h *Histogram) State() HistogramState {
	var s HistogramState
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	return s
}

// RestoreState rolls the histogram back to a captured state. Same
// quiescence requirement as State.
func (h *Histogram) RestoreState(s HistogramState) {
	for i := range s.Buckets {
		h.buckets[i].Store(s.Buckets[i])
	}
	h.count.Store(s.Count)
	h.sum.Store(s.Sum)
	h.min.Store(s.Min)
	h.max.Store(s.Max)
}

// HistogramSnapshot is the rendered state of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// SnapshotValues renders the histogram's summary statistics.
func (h *Histogram) SnapshotValues() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}
