package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// SnapshotSchema identifies the /metrics JSON shape. Bump it when the
// snapshot layout changes incompatibly.
const SnapshotSchema = "ytcdn.metrics/v1"

// Registry holds named instruments. Names are dotted paths carrying
// the plane as their first segment by convention: "sim.*" for
// deterministic (sim-time / event-count) instruments, "wall.*" for
// wall-clock instruments registered by the harness and cmd layers,
// "store.*" for tracestore byte accounting. Lookups get-or-create, so
// independent subsystems recording under one name share the
// instrument (how per-shard simulators aggregate into one counter).
//
// A Registry is safe for concurrent use; a nil *Registry is a valid
// no-op target for Snapshot-free helpers, but instrument lookups
// require a non-nil registry (callers gate on their own nil handles).
type Registry struct {
	mu sync.Mutex // guards the maps; instruments themselves are atomic
	// guarded by mu
	counters map[string]*Counter
	// guarded by mu
	gauges map[string]*Gauge
	// guarded by mu
	gaugeFuncs map[string]func() float64
	// guarded by mu
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a derived gauge evaluated at snapshot time. The
// function must be safe to call from any goroutine; registering a name
// twice keeps the latest function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot is one consistent-enough rendering of every instrument:
// counters and gauges are atomic loads, histograms summarize whatever
// observations had landed by the time their buckets were read. Derived
// gauges (GaugeFunc) are evaluated during the snapshot.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot renders the registry. The maps are fresh copies, safe for
// the caller to hold while instruments keep moving.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		funcs[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()

	// Evaluate outside the lock: gauge funcs may themselves snapshot
	// other state, and instrument reads are atomic.
	s := Snapshot{
		Schema:     SnapshotSchema,
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)+len(funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = float64(g.Value())
	}
	for name, fn := range funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range hists {
		s.Histograms[name] = h.SnapshotValues()
	}
	return s
}

// MarshalJSON renders the snapshot with a fixed field order and sorted
// keys (encoding/json sorts map keys), so two snapshots of identical
// instrument state are byte-identical.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // strip the method to avoid recursion
	return json.Marshal(alias(s))
}

// ValidateSnapshotJSON checks that data parses as a metrics snapshot
// of the current schema with all three sections present. It is the
// check the golden scrape test and the CI /metrics smoke share.
func ValidateSnapshotJSON(data []byte) error {
	var s struct {
		Schema     string                        `json:"schema"`
		Counters   *map[string]int64             `json:"counters"`
		Gauges     *map[string]float64           `json:"gauges"`
		Histograms *map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("obs: metrics snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return fmt.Errorf("obs: metrics snapshot schema %q, want %q", s.Schema, SnapshotSchema)
	}
	for section, missing := range map[string]bool{
		"counters":   s.Counters == nil,
		"gauges":     s.Gauges == nil,
		"histograms": s.Histograms == nil,
	} {
		if missing {
			return fmt.Errorf("obs: metrics snapshot has no %q section", section)
		}
	}
	return nil
}

// State is a lossless capture of every value-holding instrument in a
// registry: counter and gauge values plus raw histogram states.
// Derived gauges (GaugeFunc) are recomputed from other state at
// snapshot time, so they carry no state of their own and are excluded.
// It exists for the optimistic rollback path: RestoreState(State())
// round-trips exactly, sentinels included.
type State struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramState
}

// State captures the registry's instrument values. Call it only while
// no recorder is concurrently writing (the optimistic driver does,
// with every shard parked at the horizon).
func (r *Registry) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := State{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramState, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.State()
	}
	return s
}

// RestoreState rolls every instrument captured in s back to its saved
// value. Instruments registered after the capture are untouched — the
// optimistic driver registers everything before the first checkpoint,
// and its own protocol counters (rollbacks, commits, violations) are
// deliberately bumped after the restore so they survive it.
func (r *Registry) RestoreState(s State) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range s.Counters {
		if c, ok := r.counters[name]; ok {
			c.v.Store(v)
		}
	}
	for name, v := range s.Gauges {
		if g, ok := r.gauges[name]; ok {
			g.v.Store(v)
		}
	}
	for name, hs := range s.Histograms {
		if h, ok := r.histograms[name]; ok {
			h.RestoreState(hs)
		}
	}
}

// Names returns every registered instrument name, sorted — handy for
// tests asserting the instrument population.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.gaugeFuncs {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
