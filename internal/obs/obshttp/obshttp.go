// Package obshttp serves a registry over HTTP: /metrics as a JSON
// snapshot, /debug/vars via expvar, and the net/http/pprof handlers.
// It is part of the wall-clock plane — the obsplane lint rule forbids
// the deterministic core packages from importing it.
package obshttp

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// Server is a running metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port) and serves reg until
// Close. The listener is bound synchronously, so Addr is valid as soon
// as Serve returns.
func Serve(addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	//lint:ok goleak the listener is joined by srv.Shutdown in Close, a handshake inside net/http the call graph cannot see
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43121".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Handler returns the endpoint's routes on a fresh mux:
//
//	/metrics       JSON snapshot of every instrument (schema ytcdn.metrics/v1)
//	/debug/vars    expvar (cmdline, memstats, and the same snapshot)
//	/debug/pprof/  the standard pprof handlers
func Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot()) //nolint:errcheck // client gone mid-write
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	publishExpvar(reg)
	return mux
}

// publishExpvar exposes the registry snapshot as the expvar "ytcdn".
// expvar's namespace is process-global and Publish panics on reuse, so
// the var is published once and re-publishing swaps the registry it
// reads (the latest Handler wins).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[obs.Registry]
)

func publishExpvar(reg *obs.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("ytcdn", expvar.Func(func() any {
			r := expvarReg.Load()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})
}
