package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// scrapeGolden pins the exact /metrics bytes for a fixed registry
// state: schema header, sorted keys, two-space indent, histogram
// summary fields. Regenerate after an intentional schema change with:
//
//	YTCDN_REGEN_GOLDEN=1 go test -run TestMetricsScrapeGolden ./internal/obs/obshttp
const scrapeGolden = "testdata/metrics_scrape.golden"

// fixedRegistry builds the deterministic instrument population the
// golden captures.
func fixedRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("sim.cdn.sessions").Add(12)
	reg.Counter("sim.cdn.chains").Add(34)
	reg.Gauge("sim.selector.flows_active").Set(5)
	reg.GaugeFunc("store.write.bytes", func() float64 { return 4096 })
	h := reg.Histogram("sim.cdn.chain_depth_hops")
	for _, v := range []int64{1, 1, 2, 3} {
		h.Observe(v)
	}
	return reg
}

func scrape(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestMetricsScrapeGolden(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", fixedRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got := scrape(t, "http://"+srv.Addr()+"/metrics")
	if err := obs.ValidateSnapshotJSON(got); err != nil {
		t.Fatalf("scrape failed snapshot validation: %v", err)
	}

	if os.Getenv("YTCDN_REGEN_GOLDEN") != "" {
		if err := os.WriteFile(scrapeGolden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", scrapeGolden, len(got))
		return
	}
	want, err := os.ReadFile(scrapeGolden)
	if err != nil {
		t.Fatalf("golden missing (run with YTCDN_REGEN_GOLDEN=1 to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("/metrics diverged from golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricsScrapeLive: the endpoint reports current values, not the
// state at Serve time.
func TestMetricsScrapeLive(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("live.count")
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	read := func() int64 {
		var s struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal(scrape(t, "http://"+srv.Addr()+"/metrics"), &s); err != nil {
			t.Fatal(err)
		}
		return s.Counters["live.count"]
	}
	if got := read(); got != 0 {
		t.Errorf("initial scrape = %d, want 0", got)
	}
	c.Add(17)
	if got := read(); got != 17 {
		t.Errorf("post-increment scrape = %d, want 17", got)
	}
}

func TestDebugVarsAndPprofServe(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", fixedRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	vars := scrape(t, "http://"+srv.Addr()+"/debug/vars")
	var published map[string]json.RawMessage
	if err := json.Unmarshal(vars, &published); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	snap, ok := published["ytcdn"]
	if !ok {
		t.Fatal("/debug/vars has no \"ytcdn\" var")
	}
	if err := obs.ValidateSnapshotJSON(snap); err != nil {
		t.Errorf("expvar ytcdn snapshot invalid: %v", err)
	}

	if body := scrape(t, "http://"+srv.Addr()+"/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline returned empty body")
	}
}
