package obs

import (
	"os"
	"testing"
)

// TestValidateMetricsArtifact is the CI half of the /metrics smoke: the
// workflow scrapes a live endpoint into a file and points
// OBS_VALIDATE_METRICS at it; this test applies the same validator the
// golden scrape test uses. Skipped unless the env var is set.
func TestValidateMetricsArtifact(t *testing.T) {
	path := os.Getenv("OBS_VALIDATE_METRICS")
	if path == "" {
		t.Skip("set OBS_VALIDATE_METRICS to a scraped /metrics file to validate it")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON(data); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	t.Logf("%s: valid %s snapshot (%d bytes)", path, SnapshotSchema, len(data))
}
