package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

func TestReportRoundTrip(t *testing.T) {
	rep := New("unit-test").
		Set("scale", "0.05").
		Add("sim.cdn.sessions", 42, "count").
		Add("wall_seconds", 1.5, "seconds")
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSON(data); err != nil {
		t.Errorf("marshalled report failed validation: %v", err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("marshalled report lacks trailing newline")
	}
}

func TestReportWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	rep := New("write-test").Set("seed", "1").Add("m", 1, "count")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSON(data); err != nil {
		t.Errorf("written report failed validation: %v", err)
	}
}

func TestReportValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		rep  *Report
		want string
	}{
		{"wrong schema", &Report{Schema: "other", Name: "x"}, "schema"},
		{"no name", &Report{Schema: Schema, Name: "  "}, "no name"},
		{"unnamed metric", &Report{Schema: Schema, Name: "x",
			Metrics: []Metric{{Name: "", Value: 1}}}, "metric 0 has no name"},
	}
	for _, c := range cases {
		err := c.rep.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestValidateJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", "nope"},
		{"no config", `{"schema":"ytcdn.report/v1","name":"x","metrics":[]}`},
		{"wrong schema", `{"schema":"v0","name":"x","config":{},"metrics":[]}`},
	}
	for _, c := range cases {
		if err := ValidateJSON([]byte(c.data)); err == nil {
			t.Errorf("%s: validated but should not", c.name)
		}
	}
}

// TestAddSnapshotFlattens pins the snapshot-to-report flattening:
// sorted names, counters with unit "count", histograms expanded into
// their seven summary fields.
func TestAddSnapshotFlattens(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Add(1)
	reg.Gauge("g").Set(9)
	reg.Histogram("h").Observe(5)

	rep := New("flatten").AddSnapshot(reg.Snapshot())
	byName := make(map[string]Metric, len(rep.Metrics))
	for _, m := range rep.Metrics {
		byName[m.Name] = m
	}
	if m := byName["a.count"]; m.Value != 1 || m.Unit != "count" {
		t.Errorf("a.count = %+v, want value 1 unit count", m)
	}
	if m := byName["g"]; m.Value != 9 {
		t.Errorf("g = %+v, want value 9", m)
	}
	for _, suffix := range []string{".count", ".sum", ".min", ".max", ".p50", ".p90", ".p99"} {
		if _, ok := byName["h"+suffix]; !ok {
			t.Errorf("histogram field h%s missing from flattened report", suffix)
		}
	}
	if byName["h.count"].Value != 1 || byName["h.sum"].Value != 5 || byName["h.max"].Value != 5 {
		t.Errorf("histogram h flattened wrong: count=%v sum=%v max=%v",
			byName["h.count"].Value, byName["h.sum"].Value, byName["h.max"].Value)
	}
	// Counters arrive sorted: a.count before b.count.
	var ai, bi int
	for i, m := range rep.Metrics {
		switch m.Name {
		case "a.count":
			ai = i
		case "b.count":
			bi = i
		}
	}
	if ai > bi {
		t.Errorf("counters not sorted: a.count at %d, b.count at %d", ai, bi)
	}
}
