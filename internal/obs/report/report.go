// Package report defines the shared end-of-run artifact schema: the
// one JSON shape emitted by ytcdn-sim/ytcdn-experiments -report and by
// the BENCH_*.json benchmark artifacts, so CI tooling parses a single
// format.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strings"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
)

// Schema identifies the report JSON shape. Bump on incompatible change.
const Schema = "ytcdn.report/v1"

// Metric is one named measurement. Unit is free-form but should come
// from a small shared vocabulary: "count", "seconds", "bytes",
// "bytes/sec", "events/sec", "ns/op", "ratio".
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Report is an end-of-run artifact: what ran (Name, Config, Commit)
// and what was measured (Metrics, sorted by name).
type Report struct {
	Schema  string            `json:"schema"`
	Name    string            `json:"name"`
	Commit  string            `json:"commit,omitempty"`
	Config  map[string]string `json:"config"`
	Metrics []Metric          `json:"metrics"`
}

// New returns an empty report for the named run, stamped with the
// build's commit when one is discoverable.
func New(name string) *Report {
	return &Report{
		Schema: Schema,
		Name:   name,
		Commit: Commit(),
		Config: make(map[string]string),
	}
}

// Set records one config key (scale, seed, policy, shards, ...).
func (r *Report) Set(key, value string) *Report {
	r.Config[key] = value
	return r
}

// Add appends one metric.
func (r *Report) Add(name string, value float64, unit string) *Report {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
	return r
}

// AddSnapshot flattens a registry snapshot into metrics: counters as
// "count", gauges unitless, histograms expanded to .count/.sum/.min/
// .max/.p50/.p90/.p99. Names arrive sorted so the report is stable.
func (r *Report) AddSnapshot(s obs.Snapshot) *Report {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Add(n, float64(s.Counters[n]), "count")
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Add(n, s.Gauges[n], "")
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		r.Add(n+".count", float64(h.Count), "count")
		r.Add(n+".sum", float64(h.Sum), "")
		r.Add(n+".min", float64(h.Min), "")
		r.Add(n+".max", float64(h.Max), "")
		r.Add(n+".p50", float64(h.P50), "")
		r.Add(n+".p90", float64(h.P90), "")
		r.Add(n+".p99", float64(h.P99), "")
	}
	return r
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r *Report) Marshal() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile validates and writes the report to path.
func (r *Report) WriteFile(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return fmt.Errorf("report %q: %w", r.Name, err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Validate checks structural invariants: schema, a non-empty name, and
// named metrics.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("report schema %q, want %q", r.Schema, Schema)
	}
	if strings.TrimSpace(r.Name) == "" {
		return fmt.Errorf("report has no name")
	}
	for i, m := range r.Metrics {
		if strings.TrimSpace(m.Name) == "" {
			return fmt.Errorf("report %q: metric %d has no name", r.Name, i)
		}
	}
	return nil
}

// ValidateJSON checks that data parses as a current-schema report.
// CI's artifact-validation step and the report tests share it.
func ValidateJSON(data []byte) error {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if r.Config == nil {
		return fmt.Errorf("report %q has no config section", r.Name)
	}
	return r.Validate()
}

// Commit returns the commit hash the binary was built from: GITHUB_SHA
// when CI sets it, otherwise the vcs.revision baked into build info,
// otherwise "".
func Commit() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return ""
}
