package report

import (
	"os"
	"testing"
)

// TestValidateReportArtifact validates an emitted report file (the
// -report artifact of ytcdn-sim/ytcdn-experiments, or a BENCH_*.json)
// named by OBS_VALIDATE_REPORT — CI's artifact-validation step.
// Skipped unless the env var is set.
func TestValidateReportArtifact(t *testing.T) {
	path := os.Getenv("OBS_VALIDATE_REPORT")
	if path == "" {
		t.Skip("set OBS_VALIDATE_REPORT to a report JSON file to validate it")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSON(data); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	t.Logf("%s: valid %s report (%d bytes)", path, Schema, len(data))
}
