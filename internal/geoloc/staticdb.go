package geoloc

import (
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// StaticDB is the stand-in for commercial IP-to-location databases
// (the paper cites Maxmind GeoLite). Such databases attribute a
// corporate network's whole address space to its headquarters; for the
// Google CDN that means every content server "is" in Mountain View,
// California — the §V negative result that motivates CBG.
type StaticDB struct {
	entries []staticEntry
	def     geo.Point
	hasDef  bool
}

type staticEntry struct {
	prefix ipnet.Prefix
	loc    geo.Point
}

// NewStaticDB returns an empty database.
func NewStaticDB() *StaticDB { return &StaticDB{} }

// NewMountainViewDB returns the database the paper effectively got
// from Maxmind: every queried address resolves to Mountain View.
func NewMountainViewDB() *StaticDB {
	db := NewStaticDB()
	db.SetDefault(geo.MountainView.Point)
	return db
}

// Register maps a prefix to a fixed location.
func (db *StaticDB) Register(p ipnet.Prefix, loc geo.Point) {
	db.entries = append(db.entries, staticEntry{prefix: p, loc: loc})
}

// SetDefault sets the location returned for unmatched addresses.
func (db *StaticDB) SetDefault(loc geo.Point) {
	db.def = loc
	db.hasDef = true
}

// Locate returns the database's location for addr.
func (db *StaticDB) Locate(addr ipnet.Addr) (geo.Point, bool) {
	best := -1
	for i, e := range db.entries {
		if e.prefix.Contains(addr) && (best < 0 || e.prefix.Bits > db.entries[best].prefix.Bits) {
			best = i
		}
	}
	if best >= 0 {
		return db.entries[best].loc, true
	}
	if db.hasDef {
		return db.def, true
	}
	return geo.Point{}, false
}
