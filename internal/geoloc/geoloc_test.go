package geoloc

import (
	"math"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/netmodel"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// synthetic landmark set around Europe and the US.
func testLandmarks() []LandmarkInfo {
	cities := []geo.City{
		geo.London, geo.Paris, geo.Amsterdam, geo.Frankfurt, geo.Milan,
		geo.Madrid, geo.Zurich, geo.Vienna, geo.Stockholm, geo.Dublin,
		geo.NewYork, geo.Chicago, geo.Dallas, geo.Seattle, geo.MountainView,
		geo.Atlanta, geo.Miami, geo.Denver, geo.WashingtonDC, geo.LosAngeles,
	}
	var out []LandmarkInfo
	for i, c := range cities {
		out = append(out, LandmarkInfo{Name: c.Name + string(rune('a'+i%26)), Loc: c.Point})
	}
	return out
}

// modelRTT builds a cross-RTT function from the net model.
func modelRTT(lms []LandmarkInfo, m *netmodel.Model, g *stats.RNG) func(i, j int) time.Duration {
	ep := func(i int) netmodel.Endpoint {
		return netmodel.Endpoint{ID: "lm-" + lms[i].Name, Loc: lms[i].Loc, Access: netmodel.AccessBackbone}
	}
	return func(i, j int) time.Duration {
		return m.MinRTT(ep(i), ep(j), 5, g)
	}
}

func TestCalibrateNeedsLandmarks(t *testing.T) {
	if _, err := Calibrate(testLandmarks()[:2], func(i, j int) time.Duration { return time.Millisecond }); err == nil {
		t.Error("fewer than 3 landmarks must fail")
	}
}

func TestBestlinesSound(t *testing.T) {
	lms := testLandmarks()
	m := netmodel.New(netmodel.DefaultConfig())
	g := stats.NewRNG(1)
	rtt := modelRTT(lms, m, g)
	// Freeze measurements so soundness is checked against the same
	// values calibration saw.
	n := len(lms)
	mat := make([][]time.Duration, n)
	for i := range mat {
		mat[i] = make([]time.Duration, n)
		for j := range mat[i] {
			if i != j {
				mat[i][j] = rtt(i, j)
			}
		}
	}
	cbg, err := Calibrate(lms, func(i, j int) time.Duration { return mat[i][j] })
	if err != nil {
		t.Fatal(err)
	}
	// Soundness: every calibration point lies under its landmark's
	// bestline.
	for i := range lms {
		line := cbg.Line(i)
		if line.SlopeKmPerMs <= 0 || line.SlopeKmPerMs > 100 {
			t.Fatalf("landmark %d slope %f out of (0, 100]", i, line.SlopeKmPerMs)
		}
		for j := range lms {
			if i == j {
				continue
			}
			ms := mat[i][j].Seconds() * 1000
			dist := geo.Distance(lms[i].Loc, lms[j].Loc)
			if dist > line.SlopeKmPerMs*ms+line.InterceptKm+1e-6 {
				t.Fatalf("bestline of landmark %d underestimates pair (%d,%d): %f > %f",
					i, i, j, dist, line.SlopeKmPerMs*ms+line.InterceptKm)
			}
		}
	}
}

func TestLocateFindsTarget(t *testing.T) {
	lms := testLandmarks()
	m := netmodel.New(netmodel.DefaultConfig())
	g := stats.NewRNG(2)
	cbg, err := Calibrate(lms, modelRTT(lms, m, g))
	if err != nil {
		t.Fatal(err)
	}
	targets := []geo.City{geo.Brussels, geo.Turin, geo.CouncilBluffs, geo.Warsaw}
	for _, city := range targets {
		ep := netmodel.Endpoint{ID: "target-" + city.Name, Loc: city.Point, Access: netmodel.AccessDataCenter}
		rtts := make([]time.Duration, len(lms))
		for i, lm := range lms {
			rtts[i] = m.MinRTT(netmodel.Endpoint{ID: "lm-" + lm.Name, Loc: lm.Loc, Access: netmodel.AccessBackbone}, ep, 5, g)
		}
		region := cbg.Locate(rtts)
		errKm := geo.Distance(region.Centroid, city.Point)
		if errKm > 400 {
			t.Errorf("%s: CBG error %f km (radius %f)", city.Name, errKm, region.RadiusKm)
		}
		if region.RadiusKm <= 0 {
			t.Errorf("%s: non-positive radius", city.Name)
		}
	}
}

func TestLocateDistinguishesContinents(t *testing.T) {
	lms := testLandmarks()
	m := netmodel.New(netmodel.DefaultConfig())
	g := stats.NewRNG(3)
	cbg, err := Calibrate(lms, modelRTT(lms, m, g))
	if err != nil {
		t.Fatal(err)
	}
	for _, city := range []geo.City{geo.Milan, geo.Dallas} {
		ep := netmodel.Endpoint{ID: "t-" + city.Name, Loc: city.Point, Access: netmodel.AccessDataCenter}
		rtts := make([]time.Duration, len(lms))
		for i, lm := range lms {
			rtts[i] = m.MinRTT(netmodel.Endpoint{ID: "lm-" + lm.Name, Loc: lm.Loc, Access: netmodel.AccessBackbone}, ep, 5, g)
		}
		region := cbg.Locate(rtts)
		if got, want := geo.ContinentOf(region.Centroid), city.Continent; got != want {
			t.Errorf("%s located on %v, want %v", city.Name, got, want)
		}
	}
}

func TestLocateEmptyInput(t *testing.T) {
	lms := testLandmarks()
	m := netmodel.New(netmodel.DefaultConfig())
	g := stats.NewRNG(4)
	cbg, err := Calibrate(lms, modelRTT(lms, m, g))
	if err != nil {
		t.Fatal(err)
	}
	region := cbg.Locate(nil)
	if region.Feasible {
		t.Error("empty RTT vector cannot be feasible")
	}
	// Negative RTTs are skipped.
	rtts := make([]time.Duration, len(lms))
	region = cbg.Locate(rtts)
	if region.Feasible {
		t.Error("all-zero RTT vector cannot be feasible")
	}
}

func TestFitBestlineSimple(t *testing.T) {
	// Points on the line y = 50x + 10 with one lower outlier: the
	// bestline must stay above all points and track the envelope.
	pts := []point2{
		{x: 1, y: 60}, {x: 2, y: 110}, {x: 4, y: 210}, {x: 8, y: 410},
		{x: 5, y: 100}, // well under the envelope
	}
	line, err := fitBestline(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.y > line.SlopeKmPerMs*p.x+line.InterceptKm+1e-6 {
			t.Fatalf("point (%f,%f) above bestline", p.x, p.y)
		}
	}
	if math.Abs(line.SlopeKmPerMs-50) > 1 || math.Abs(line.InterceptKm-10) > 5 {
		t.Errorf("bestline = %+v, want ~{50, 10}", line)
	}
}

func TestFitBestlineTooFewPoints(t *testing.T) {
	if _, err := fitBestline([]point2{{1, 1}}); err == nil {
		t.Error("single point must fail")
	}
}

func TestFitBestlineSlopeClamp(t *testing.T) {
	// Points implying a super-luminal slope must clamp to 100 km/ms.
	pts := []point2{{x: 1, y: 500}, {x: 2, y: 1000}, {x: 3, y: 1500}}
	line, err := fitBestline(pts)
	if err != nil {
		t.Fatal(err)
	}
	if line.SlopeKmPerMs > 100 {
		t.Errorf("slope %f exceeds physical limit", line.SlopeKmPerMs)
	}
	for _, p := range pts {
		if p.y > line.SlopeKmPerMs*p.x+line.InterceptKm+1e-6 {
			t.Error("clamped line must still cover all points")
		}
	}
}

func TestUpperHullConcave(t *testing.T) {
	pts := []point2{{0, 0}, {1, 3}, {2, 4}, {3, 4.5}, {4, 4.6}, {2, 1}}
	hull := upperHull(pts)
	if len(hull) < 2 {
		t.Fatal("hull too small")
	}
	// Slopes must be non-increasing along the upper hull.
	for i := 2; i < len(hull); i++ {
		s1 := (hull[i-1].y - hull[i-2].y) / (hull[i-1].x - hull[i-2].x)
		s2 := (hull[i].y - hull[i-1].y) / (hull[i].x - hull[i-1].x)
		if s2 > s1+1e-9 {
			t.Fatalf("hull slopes increase: %f then %f", s1, s2)
		}
	}
}

func TestStaticDB(t *testing.T) {
	db := NewStaticDB()
	if _, ok := db.Locate(ipnet.MustParseAddr("8.8.8.8")); ok {
		t.Error("empty DB must miss")
	}
	db.Register(ipnet.MustParsePrefix("173.194.0.0/16"), geo.MountainView.Point)
	db.Register(ipnet.MustParsePrefix("173.194.5.0/24"), geo.Dublin.Point)
	db.SetDefault(geo.London.Point)

	if loc, ok := db.Locate(ipnet.MustParseAddr("173.194.1.1")); !ok || loc != geo.MountainView.Point {
		t.Errorf("coarse prefix: %v %v", loc, ok)
	}
	if loc, ok := db.Locate(ipnet.MustParseAddr("173.194.5.7")); !ok || loc != geo.Dublin.Point {
		t.Errorf("longest prefix must win: %v %v", loc, ok)
	}
	if loc, ok := db.Locate(ipnet.MustParseAddr("9.9.9.9")); !ok || loc != geo.London.Point {
		t.Errorf("default: %v %v", loc, ok)
	}
}

func TestMountainViewDBIsWrongForDistributedServers(t *testing.T) {
	// The paper's §V negative result in miniature: the static database
	// puts every server at Mountain View, so a European server's
	// database position disagrees with its true position by thousands
	// of kilometers.
	db := NewMountainViewDB()
	loc, ok := db.Locate(ipnet.MustParseAddr("173.194.77.1"))
	if !ok {
		t.Fatal("default DB must always answer")
	}
	if d := geo.Distance(loc, geo.Milan.Point); d < 5000 {
		t.Errorf("DB location only %f km from Milan; expected transatlantic error", d)
	}
}
