// Package geoloc implements the two geolocation approaches the paper
// contrasts in §V: a static IP-to-location database (which places
// every Google server in Mountain View and is therefore useless for
// this infrastructure) and CBG — Constraint-Based Geolocation (Gueye
// et al., IEEE/ACM ToN 2006) — the delay-based multilateration the
// authors actually use.
//
// CBG works in two phases. Calibration: each landmark measures RTTs to
// all other landmarks (whose positions are known) and fits its
// "bestline" — the lowest line lying above every (RTT, distance)
// point, found on the upper convex hull. Location: the landmark's
// bestline converts a measured RTT to the target into a distance upper
// bound, i.e. a disc around the landmark; the target must lie in the
// intersection of all discs. The centroid of the intersection is the
// position estimate and sqrt(area/π) its confidence radius (Fig 3).
package geoloc

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/geo"
)

// LandmarkInfo is a measurement host with known position.
type LandmarkInfo struct {
	Name string
	Loc  geo.Point
}

// Bestline is a landmark's calibrated RTT→distance conversion:
// distance_km <= Slope * rtt_ms + InterceptKm.
type Bestline struct {
	SlopeKmPerMs float64
	InterceptKm  float64
}

// maxSlopeKmPerMs is the physical limit: light in fiber covers ~100 km
// per millisecond of RTT (200 km/ms one-way over half the RTT).
const maxSlopeKmPerMs = 100.0

// CBG is a calibrated constraint-based geolocator.
type CBG struct {
	landmarks []LandmarkInfo
	lines     []Bestline
}

// Calibrate fits each landmark's bestline from the cross-RTT matrix
// crossRTT(i, j), the measured (minimum) RTT between landmarks i and j.
func Calibrate(landmarks []LandmarkInfo, crossRTT func(i, j int) time.Duration) (*CBG, error) {
	if len(landmarks) < 3 {
		return nil, fmt.Errorf("geoloc: CBG needs at least 3 landmarks, got %d", len(landmarks))
	}
	c := &CBG{landmarks: landmarks, lines: make([]Bestline, len(landmarks))}
	for i := range landmarks {
		pts := make([]point2, 0, len(landmarks)-1)
		for j := range landmarks {
			if i == j {
				continue
			}
			rtt := crossRTT(i, j).Seconds() * 1000
			dist := geo.Distance(landmarks[i].Loc, landmarks[j].Loc)
			if rtt <= 0 {
				continue
			}
			pts = append(pts, point2{x: rtt, y: dist})
		}
		line, err := fitBestline(pts)
		if err != nil {
			return nil, fmt.Errorf("geoloc: landmark %s: %w", landmarks[i].Name, err)
		}
		c.lines[i] = line
	}
	return c, nil
}

// Landmarks returns the calibrated landmark set.
func (c *CBG) Landmarks() []LandmarkInfo { return c.landmarks }

// Line returns landmark i's bestline.
func (c *CBG) Line(i int) Bestline { return c.lines[i] }

type point2 struct{ x, y float64 }

// fitBestline solves the CBG linear program: minimize the total
// overshoot sum(m*x_j + b - y_j) subject to every point lying on or
// below the line and 0 < m <= maxSlope. The optimum is supported by an
// edge of the upper convex hull (or by the slope clamp), so only hull
// edges need to be evaluated.
func fitBestline(pts []point2) (Bestline, error) {
	if len(pts) < 2 {
		return Bestline{}, fmt.Errorf("need at least 2 calibration points, got %d", len(pts))
	}
	hull := upperHull(pts)

	var sumX, sumY float64
	for _, p := range pts {
		sumX += p.x
		sumY += p.y
	}
	n := float64(len(pts))
	// objective(m, b) = m*sumX + n*b - sumY (all constraints satisfied
	// means every term non-negative).
	objective := func(m, b float64) float64 { return m*sumX + n*b - sumY }
	feasible := func(m, b float64) bool {
		for _, p := range hull { // hull points dominate all others
			if p.y > m*p.x+b+1e-9 {
				return false
			}
		}
		return true
	}

	best := Bestline{SlopeKmPerMs: maxSlopeKmPerMs, InterceptKm: 0}
	bestObj := math.Inf(1)
	if feasible(best.SlopeKmPerMs, best.InterceptKm) {
		bestObj = objective(best.SlopeKmPerMs, best.InterceptKm)
	}
	consider := func(m, b float64) {
		if m <= 0 || m > maxSlopeKmPerMs {
			return
		}
		if !feasible(m, b) {
			return
		}
		if obj := objective(m, b); obj < bestObj {
			bestObj = obj
			best = Bestline{SlopeKmPerMs: m, InterceptKm: b}
		}
	}
	// Hull edges.
	for i := 1; i < len(hull); i++ {
		p, q := hull[i-1], hull[i]
		if q.x == p.x {
			continue
		}
		m := (q.y - p.y) / (q.x - p.x)
		b := p.y - m*p.x
		consider(m, b)
	}
	// Slope clamp through each hull vertex (binding m = maxSlope).
	for _, p := range hull {
		consider(maxSlopeKmPerMs, p.y-maxSlopeKmPerMs*p.x)
	}
	if math.IsInf(bestObj, 1) {
		return Bestline{}, fmt.Errorf("no feasible bestline")
	}
	return best, nil
}

// upperHull returns the upper convex hull of pts, left to right
// (Andrew's monotone chain).
func upperHull(pts []point2) []point2 {
	sorted := make([]point2, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].x != sorted[j].x {
			return sorted[i].x < sorted[j].x
		}
		return sorted[i].y < sorted[j].y
	})
	var hull []point2
	for _, p := range sorted {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Keep the chain turning clockwise (concave down).
			if (b.x-a.x)*(p.y-a.y)-(b.y-a.y)*(p.x-a.x) >= 0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, p)
	}
	return hull
}

// Region is a CBG location estimate.
type Region struct {
	// Centroid is the position estimate.
	Centroid geo.Point
	// RadiusKm is the confidence radius: the radius of a circle with
	// the same area as the feasible intersection region.
	RadiusKm float64
	// Feasible is false when the discs had no common intersection even
	// after relaxation (the estimate falls back to the tightest disc).
	Feasible bool
}

// Locate estimates the position of a target from its per-landmark
// measured RTTs. Entries with non-positive RTT are skipped (landmark
// unreachable).
func (c *CBG) Locate(rtts []time.Duration) Region {
	type disc struct {
		center geo.Point
		radius float64
	}
	discs := make([]disc, 0, len(rtts))
	for i, rtt := range rtts {
		if i >= len(c.landmarks) || rtt <= 0 {
			continue
		}
		ms := rtt.Seconds() * 1000
		r := c.lines[i].SlopeKmPerMs*ms + c.lines[i].InterceptKm
		// The physical bound always applies.
		if phys := ms * maxSlopeKmPerMs; r > phys {
			r = phys
		}
		if r < 1 {
			r = 1
		}
		discs = append(discs, disc{center: c.landmarks[i].Loc, radius: r})
	}
	if len(discs) == 0 {
		return Region{Feasible: false}
	}
	// Tightest discs first: they prune the grid fastest and define the
	// search box.
	sort.Slice(discs, func(i, j int) bool { return discs[i].radius < discs[j].radius })

	inAll := func(p geo.Point, slack float64) bool {
		for _, d := range discs {
			if geo.Distance(p, d.center) > d.radius*slack {
				return false
			}
		}
		return true
	}

	// Relaxation loop: CBG underestimation can make the intersection
	// empty; inflate radii until points qualify.
	for _, slack := range []float64{1.0, 1.1, 1.25, 1.5, 2.0} {
		region, ok := gridRegion(discs[0].center, discs[0].radius*slack, func(p geo.Point) bool {
			return inAll(p, slack)
		})
		if ok {
			region.Feasible = slack == 1.0
			return region
		}
	}
	return Region{Centroid: discs[0].center, RadiusKm: discs[0].radius, Feasible: false}
}

// gridRegion grid-samples the search box around the tightest disc,
// returning the centroid and equivalent radius of the feasible cells.
// Two passes: a coarse pass over the disc's bounding box, then a
// refined pass over the feasible sub-box.
func gridRegion(center geo.Point, radius float64, feasible func(geo.Point) bool) (Region, bool) {
	const n = 26
	box := boxAround(center, radius)
	for pass := 0; pass < 2; pass++ {
		var latSum, lonSum float64
		var minLat, maxLat, minLon, maxLon float64
		count := 0
		dLat := (box.maxLat - box.minLat) / n
		dLon := (box.maxLon - box.minLon) / n
		if dLat <= 0 || dLon <= 0 {
			return Region{}, false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := geo.Point{
					Lat: box.minLat + (float64(i)+0.5)*dLat,
					Lon: box.minLon + (float64(j)+0.5)*dLon,
				}
				if !feasible(p) {
					continue
				}
				if count == 0 {
					minLat, maxLat, minLon, maxLon = p.Lat, p.Lat, p.Lon, p.Lon
				} else {
					minLat = math.Min(minLat, p.Lat)
					maxLat = math.Max(maxLat, p.Lat)
					minLon = math.Min(minLon, p.Lon)
					maxLon = math.Max(maxLon, p.Lon)
				}
				latSum += p.Lat
				lonSum += p.Lon
				count++
			}
		}
		if count == 0 {
			return Region{}, false
		}
		centroid := geo.Point{Lat: latSum / float64(count), Lon: lonSum / float64(count)}
		// Cell area in km²: lat cell × lon cell at the centroid.
		cellKm2 := (dLat * 111.19) * (dLon * 111.19 * math.Cos(centroid.Lat*math.Pi/180))
		area := float64(count) * math.Abs(cellKm2)
		region := Region{Centroid: centroid, RadiusKm: math.Sqrt(area / math.Pi), Feasible: true}
		if pass == 1 || count > n*n/4 {
			return region, true
		}
		// Refine around the feasible cells.
		box = latLonBox{
			minLat: minLat - dLat, maxLat: maxLat + dLat,
			minLon: minLon - dLon, maxLon: maxLon + dLon,
		}
	}
	return Region{}, false
}

type latLonBox struct {
	minLat, maxLat, minLon, maxLon float64
}

// boxAround returns the lat/lon bounding box of a disc.
func boxAround(center geo.Point, radiusKm float64) latLonBox {
	dLat := radiusKm / 111.19
	cos := math.Cos(center.Lat * math.Pi / 180)
	if cos < 0.05 {
		cos = 0.05
	}
	dLon := radiusKm / (111.19 * cos)
	return latLonBox{
		minLat: center.Lat - dLat, maxLat: center.Lat + dLat,
		minLon: center.Lon - dLon, maxLon: center.Lon + dLon,
	}
}
