package workload

import (
	"math"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/cdn"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

func testWorldAndCatalog(t *testing.T) (*topology.World, *content.Catalog) {
	t.Helper()
	w, err := topology.BuildPaperWorld(topology.PaperConfig{
		Scale:             0.01,
		ServersPerDCNA:    4,
		ServersPerDCEU:    4,
		ServersPerDCOther: 4,
		LegacyServers:     8,
		ThirdPartyServers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := content.NewCatalog(content.Config{
		N: 1000, ZipfExponent: 0.8, TailRank: 500, VOTDShare: 0.05, Days: 7,
		MedianDuration: time.Minute, DurationSigma: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, cat
}

func TestDiurnalWeightShape(t *testing.T) {
	peak := DiurnalWeight(20*time.Hour, 20, 0.1)
	trough := DiurnalWeight(8*time.Hour, 20, 0.1)
	if math.Abs(peak-1.0) > 1e-9 {
		t.Errorf("peak weight = %f, want 1", peak)
	}
	if math.Abs(trough-0.1) > 1e-9 {
		t.Errorf("trough weight = %f, want minFrac", trough)
	}
	// 24h periodicity.
	if math.Abs(DiurnalWeight(44*time.Hour, 20, 0.1)-peak) > 1e-9 {
		t.Error("weight must be 24h-periodic")
	}
}

func TestDiurnalWeightBounds(t *testing.T) {
	for h := 0.0; h < 48; h += 0.25 {
		w := DiurnalWeight(time.Duration(h*float64(time.Hour)), 15, 0.07)
		if w < 0.07-1e-9 || w > 1+1e-9 {
			t.Fatalf("weight %f out of [minFrac, 1] at hour %f", w, h)
		}
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	if _, err := NewGenerator(w, -1, cat, time.Hour, stats.NewRNG(1)); err == nil {
		t.Error("negative VP index must fail")
	}
	if _, err := NewGenerator(w, 99, cat, time.Hour, stats.NewRNG(1)); err == nil {
		t.Error("out-of-range VP index must fail")
	}
	if _, err := NewGenerator(w, 0, cat, 0, stats.NewRNG(1)); err == nil {
		t.Error("zero span must fail")
	}
}

func TestGeneratorVolumeMatchesTarget(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	span := 7 * 24 * time.Hour
	gen, err := NewGenerator(w, 0, cat, span, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var eng des.Engine
	count := 0
	gen.Schedule(&eng, func(cdn.Request) { count++ })
	eng.Run()
	want := gen.TotalSessions()
	if math.Abs(float64(count)-want) > want*0.1 {
		t.Errorf("sessions = %d, want ~%.0f", count, want)
	}
}

func TestGeneratorDiurnalPattern(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	span := 7 * 24 * time.Hour
	gen, err := NewGenerator(w, 4, cat, span, stats.NewRNG(3)) // EU2
	if err != nil {
		t.Fatal(err)
	}
	var eng des.Engine
	perHour := make([]int, 24)
	gen.Schedule(&eng, func(cdn.Request) {
		perHour[int(eng.Now().Hours())%24]++
	})
	eng.Run()
	vp := w.VantagePoints[4]
	peakHour := int(vp.DiurnalPeakHour)
	troughHour := (peakHour + 12) % 24
	if perHour[peakHour] < 3*perHour[troughHour] {
		t.Errorf("no diurnal pattern: peak %d vs trough %d", perHour[peakHour], perHour[troughHour])
	}
}

func TestGeneratorSubnetWeights(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	gen, err := NewGenerator(w, 0, cat, 7*24*time.Hour, stats.NewRNG(4)) // US-Campus
	if err != nil {
		t.Fatal(err)
	}
	var eng des.Engine
	counts := make(map[string]int)
	total := 0
	gen.Schedule(&eng, func(req cdn.Request) {
		counts[req.Subnet.Name]++
		total++
	})
	eng.Run()
	if total == 0 {
		t.Fatal("no sessions generated")
	}
	for _, sn := range w.VantagePoints[0].Subnets {
		frac := float64(counts[sn.Name]) / float64(total)
		if math.Abs(frac-sn.Weight) > 0.03 {
			t.Errorf("subnet %s share = %.3f, want %.3f", sn.Name, frac, sn.Weight)
		}
	}
}

func TestGeneratorClientsStayInSubnet(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	gen, err := NewGenerator(w, 1, cat, 24*time.Hour, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	var eng des.Engine
	gen.Schedule(&eng, func(req cdn.Request) {
		if !req.Subnet.Prefix.Contains(req.Client) {
			t.Fatalf("client %s outside subnet %s", req.Client, req.Subnet.Prefix)
		}
	})
	eng.Run()
}

func TestGeneratorDeterministic(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	collect := func() []cdn.Request {
		gen, err := NewGenerator(w, 2, cat, 24*time.Hour, stats.NewRNG(6))
		if err != nil {
			t.Fatal(err)
		}
		var eng des.Engine
		var out []cdn.Request
		gen.Schedule(&eng, func(req cdn.Request) { out = append(out, req) })
		eng.Run()
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Client != b[i].Client || a[i].Video != b[i].Video {
			t.Fatal("request streams differ between identical runs")
		}
	}
}

func TestGeneratorVideoDistributionSkewed(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	gen, err := NewGenerator(w, 0, cat, 7*24*time.Hour, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	var eng des.Engine
	head, total := 0, 0
	gen.Schedule(&eng, func(req cdn.Request) {
		total++
		if int(req.Video) < 100 {
			head++
		}
	})
	eng.Run()
	frac := float64(head) / float64(total)
	if frac < 0.15 {
		t.Errorf("top-100 video share = %.3f; catalog skew missing", frac)
	}
}

// TestGeneratorSubsetValidation covers NewGeneratorSubset's error
// paths.
func TestGeneratorSubsetValidation(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	if _, err := NewGeneratorSubset(w, 0, []int{99}, cat, time.Hour, stats.NewRNG(1)); err == nil {
		t.Error("out-of-range subnet index must fail")
	}
	if _, err := NewGeneratorSubset(w, 0, []int{-1}, cat, time.Hour, stats.NewRNG(1)); err == nil {
		t.Error("negative subnet index must fail")
	}
	if _, err := NewGeneratorSubset(w, 0, []int{0, 0}, cat, time.Hour, stats.NewRNG(1)); err == nil {
		t.Error("duplicate subnet index must fail")
	}
}

// TestGeneratorDecompositionInvariance is the workload-level half of
// the sub-VP determinism guarantee: generating a vantage point's
// workload as one full generator, or as any partition of its subnets
// across several generators, must produce the exact same request
// population with the exact same timestamps — because every subnet
// draws from its own "subnet/<j>" fork of the VP parent.
func TestGeneratorDecompositionInvariance(t *testing.T) {
	w, cat := testWorldAndCatalog(t)
	span := 3 * 24 * time.Hour
	const vp = 0 // US-Campus, 5 subnets

	type stamped struct {
		at  time.Duration
		req cdn.Request
	}
	collect := func(partition [][]int) map[int][]stamped {
		// One engine for everything: within a subnet, events stay in
		// time order regardless of which generator scheduled them.
		var eng des.Engine
		bySubnet := make(map[int][]stamped)
		for _, subnets := range partition {
			gen, err := NewGeneratorSubset(w, vp, subnets, cat, span, stats.NewRNG(42))
			if err != nil {
				t.Fatal(err)
			}
			gen.Schedule(&eng, func(req cdn.Request) {
				bySubnet[req.SubnetIdx] = append(bySubnet[req.SubnetIdx], stamped{at: eng.Now(), req: req})
			})
		}
		eng.Run()
		return bySubnet
	}

	full := collect([][]int{nil}) // nil = all subnets, one generator
	for _, partition := range [][][]int{
		{{0}, {1}, {2}, {3}, {4}}, // fully split
		{{0, 2, 4}, {1, 3}},       // interleaved grouping
		{{4, 3}, {0}, {2, 1}},     // reordered within groups
	} {
		split := collect(partition)
		if len(split) != len(full) {
			t.Fatalf("partition %v: %d subnets with sessions, want %d", partition, len(split), len(full))
		}
		for j, want := range full {
			got := split[j]
			if len(got) != len(want) {
				t.Errorf("partition %v subnet %d: %d sessions, want %d", partition, j, len(got), len(want))
				continue
			}
			for i := range got {
				if got[i].at != want[i].at || got[i].req != want[i].req {
					t.Errorf("partition %v subnet %d: session %d differs (%v vs %v)",
						partition, j, i, got[i], want[i])
					break
				}
			}
		}
	}
}
