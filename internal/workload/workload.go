// Package workload generates the request streams of the five monitored
// networks: an inhomogeneous Poisson arrival process with a diurnal
// profile per vantage point, subnet/client selection, and video and
// resolution sampling from the shared catalog.
package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/cdn"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// DiurnalWeight returns the relative demand at simulated time t for a
// profile with the given peak hour and night/peak floor: a raised
// cosine over the 24-hour day. The mean over a day is
// minFrac + (1-minFrac)/2.
func DiurnalWeight(t time.Duration, peakHour, minFrac float64) float64 {
	h := math.Mod(t.Hours(), 24)
	bump := (1 + math.Cos(2*math.Pi*(h-peakHour)/24)) / 2
	return minFrac + (1-minFrac)*bump
}

// Generator produces the session stream of one vantage point over a
// capture window.
type Generator struct {
	vpIndex int
	vp      *topology.VantagePoint
	cat     *content.Catalog
	span    time.Duration
	g       *stats.RNG

	// clientsPerSubnet is the client pool size of each subnet.
	clientsPerSubnet []int
	// subnetCDF is the cumulative weight of subnets for sampling.
	subnetCDF []float64
}

// NewGenerator builds a generator for vantage point vpIndex of the
// world, covering [0, span).
func NewGenerator(w *topology.World, vpIndex int, cat *content.Catalog, span time.Duration, g *stats.RNG) (*Generator, error) {
	if vpIndex < 0 || vpIndex >= len(w.VantagePoints) {
		return nil, fmt.Errorf("workload: vantage point index %d out of range", vpIndex)
	}
	if span <= 0 {
		return nil, fmt.Errorf("workload: span must be positive, got %v", span)
	}
	vp := w.VantagePoints[vpIndex]
	gen := &Generator{
		vpIndex: vpIndex,
		vp:      vp,
		cat:     cat,
		span:    span,
		g:       g,
	}
	acc := 0.0
	for _, sn := range vp.Subnets {
		acc += sn.Weight
		gen.subnetCDF = append(gen.subnetCDF, acc)
		n := int(float64(vp.NumClients) * sn.Weight)
		if n < 1 {
			n = 1
		}
		gen.clientsPerSubnet = append(gen.clientsPerSubnet, n)
	}
	return gen, nil
}

// TotalSessions returns the expected number of sessions over the
// window, scaled from the weekly target.
func (gen *Generator) TotalSessions() float64 {
	return float64(gen.vp.WeeklySessions) * gen.span.Hours() / (7 * 24)
}

// ratePerHour returns the expected arrival rate at time t.
func (gen *Generator) ratePerHour(t time.Duration) float64 {
	w := DiurnalWeight(t, gen.vp.DiurnalPeakHour, gen.vp.DiurnalMinFrac)
	meanW := gen.vp.DiurnalMinFrac + (1-gen.vp.DiurnalMinFrac)/2
	return gen.TotalSessions() / gen.span.Hours() * w / meanW
}

// sampleSubnet draws a subnet index by weight.
func (gen *Generator) sampleSubnet() int {
	u := gen.g.Float64()
	for i, c := range gen.subnetCDF {
		if u < c {
			return i
		}
	}
	return len(gen.subnetCDF) - 1
}

// sampleClient draws a client address within the subnet.
func (gen *Generator) sampleClient(subnetIdx int) ipnet.Addr {
	sn := gen.vp.Subnets[subnetIdx]
	idx := 1 + gen.g.Intn(gen.clientsPerSubnet[subnetIdx])
	addr, err := sn.Prefix.Nth(idx % (sn.Prefix.Size() - 1))
	if err != nil {
		// Subnet prefixes are /18s and pools ≤ ~10k clients, so this
		// cannot happen with a validated world.
		panic(fmt.Sprintf("workload: client allocation: %v", err))
	}
	return addr
}

// request assembles one session request at time t.
func (gen *Generator) request(t time.Duration) cdn.Request {
	snIdx := gen.sampleSubnet()
	return cdn.Request{
		VP:     gen.vpIndex,
		Subnet: gen.vp.Subnets[snIdx],
		Client: gen.sampleClient(snIdx),
		Video:  gen.cat.Sample(gen.g, t),
		Res:    gen.cat.SampleResolution(gen.g),
	}
}

// Schedule installs hourly batch events on the engine; each batch
// draws its hour's Poisson arrival count and schedules the individual
// sessions at uniform offsets. submit is invoked inside engine events.
func (gen *Generator) Schedule(eng *des.Engine, submit func(cdn.Request)) {
	hours := int(gen.span / time.Hour)
	if gen.span%time.Hour != 0 {
		hours++
	}
	for h := 0; h < hours; h++ {
		h := h
		at := time.Duration(h) * time.Hour
		eng.Schedule(at, func() {
			gen.emitHour(eng, at, submit)
		})
	}
}

// emitHour schedules one hour's arrivals.
func (gen *Generator) emitHour(eng *des.Engine, start time.Duration, submit func(cdn.Request)) {
	width := time.Hour
	if start+width > gen.span {
		width = gen.span - start
	}
	mean := gen.ratePerHour(start+width/2) * width.Hours()
	n := gen.g.Poisson(mean)
	for i := 0; i < n; i++ {
		at := start + time.Duration(gen.g.Float64()*float64(width))
		eng.Schedule(at, func() {
			submit(gen.request(at))
		})
	}
}
