// Package workload generates the request streams of the five monitored
// networks: an inhomogeneous Poisson arrival process with a diurnal
// profile per vantage point, subnet/client selection, and video and
// resolution sampling from the shared catalog.
//
// Arrivals decompose per subnet: a vantage point's Poisson process is
// thinned into one independent process per subnet (rate = VP rate ×
// subnet weight), each drawing from its own forked RNG stream
// ("subnet/<j>" under the VP's workload parent). The union of the
// per-subnet processes is distributed exactly like the undecomposed
// VP process, and — because each subnet's draws depend only on its own
// stream — the generated request population is bit-identical no matter
// how the subnets are grouped into generators or placed on simulation
// engines. That invariance is what makes sub-VP sharding exact.
package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/cdn"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/obs"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// DiurnalWeight returns the relative demand at simulated time t for a
// profile with the given peak hour and night/peak floor: a raised
// cosine over the 24-hour day. The mean over a day is
// minFrac + (1-minFrac)/2.
func DiurnalWeight(t time.Duration, peakHour, minFrac float64) float64 {
	h := math.Mod(t.Hours(), 24)
	bump := (1 + math.Cos(2*math.Pi*(h-peakHour)/24)) / 2
	return minFrac + (1-minFrac)*bump
}

// bucket is one subnet's independent arrival stream.
type bucket struct {
	// subnet indexes the covered subnet in VantagePoint.Subnets.
	subnet int
	// g is the subnet's own stream: a "subnet/<j>" fork of the VP's
	// workload parent, so the draws are identical in every grouping.
	g *stats.RNG
	// share is the subnet's fraction of the VP's session volume.
	share float64
	// clients is the subnet's client-pool size.
	clients int
}

// Generator produces the session stream of one vantage point — or of a
// subset of its subnets, when built with NewGeneratorSubset — over a
// capture window.
type Generator struct {
	vpIndex int
	vp      *topology.VantagePoint
	cat     *content.Catalog
	span    time.Duration
	buckets []bucket

	// Optional instruments (see Instrument); nil when metrics are off.
	// The counted quantities (arrival draws, hour batches) fall out of
	// draws the generator makes regardless, so recording them is
	// zero-perturbation.
	arrivals *obs.Counter
	batches  *obs.Counter
}

// Instrument publishes the generator's progress into reg:
// "sim.workload.arrivals" (sessions scheduled) and
// "sim.workload.hour_batches" (per-subnet hour batches emitted).
// Generators instrumented into the same registry share the counters,
// so the values are run-wide totals. Call before Schedule.
func (gen *Generator) Instrument(reg *obs.Registry) {
	gen.arrivals = reg.Counter("sim.workload.arrivals")
	gen.batches = reg.Counter("sim.workload.hour_batches")
}

// NewGenerator builds a generator covering every subnet of vantage
// point vpIndex over [0, span). g is the VP's workload parent stream;
// the generator never draws from it directly — it forks one
// "subnet/<j>" child per subnet.
func NewGenerator(w *topology.World, vpIndex int, cat *content.Catalog, span time.Duration, g *stats.RNG) (*Generator, error) {
	return NewGeneratorSubset(w, vpIndex, nil, cat, span, g)
}

// NewGeneratorSubset builds a generator covering only the given subnet
// indices of vantage point vpIndex (nil means all). Splitting one VP's
// subnets across several generators — each wired to its own simulation
// engine — produces exactly the arrivals of a single full generator,
// because every subnet owns an independent forked stream and a rate
// share that does not depend on the grouping.
func NewGeneratorSubset(w *topology.World, vpIndex int, subnets []int, cat *content.Catalog, span time.Duration, g *stats.RNG) (*Generator, error) {
	if vpIndex < 0 || vpIndex >= len(w.VantagePoints) {
		return nil, fmt.Errorf("workload: vantage point index %d out of range", vpIndex)
	}
	if span <= 0 {
		return nil, fmt.Errorf("workload: span must be positive, got %v", span)
	}
	vp := w.VantagePoints[vpIndex]
	if subnets == nil {
		subnets = make([]int, len(vp.Subnets))
		for j := range subnets {
			subnets[j] = j
		}
	}
	gen := &Generator{
		vpIndex: vpIndex,
		vp:      vp,
		cat:     cat,
		span:    span,
	}
	seen := make(map[int]bool, len(subnets))
	for _, j := range subnets {
		if j < 0 || j >= len(vp.Subnets) {
			return nil, fmt.Errorf("workload: subnet index %d out of range for %s", j, vp.Name)
		}
		if seen[j] {
			return nil, fmt.Errorf("workload: subnet index %d listed twice", j)
		}
		seen[j] = true
		sn := vp.Subnets[j]
		n := int(float64(vp.NumClients) * sn.Weight)
		if n < 1 {
			n = 1
		}
		gen.buckets = append(gen.buckets, bucket{
			subnet:  j,
			g:       g.ForkIndexed("subnet", j),
			share:   sn.Weight,
			clients: n,
		})
	}
	return gen, nil
}

// MarkStreams Marks every covered subnet's RNG tape at the current
// position — the generator half of an optimistic checkpoint. The
// generator keeps no other mutable state: everything it schedules
// lives in the engine (snapshotted separately), so marking the streams
// is the whole checkpoint.
func (gen *Generator) MarkStreams() {
	for i := range gen.buckets {
		gen.buckets[i].g.Mark()
	}
}

// RewindStreams rewinds every covered subnet's RNG tape to the last
// MarkStreams: re-executed hour batches replay the identical Poisson
// counts, offsets and video draws.
func (gen *Generator) RewindStreams() {
	for i := range gen.buckets {
		gen.buckets[i].g.Rewind()
	}
}

// TotalSessions returns the expected number of sessions over the
// window for the covered subnets, scaled from the VP's weekly target
// (subnet weights sum to 1, so a full generator returns the VP total).
func (gen *Generator) TotalSessions() float64 {
	share := 0.0
	for _, b := range gen.buckets {
		share += b.share
	}
	return float64(gen.vp.WeeklySessions) * share * gen.span.Hours() / (7 * 24)
}

// vpSessions returns the VP-level expected session count over the
// window (the pre-split rate the bucket shares multiply).
func (gen *Generator) vpSessions() float64 {
	return float64(gen.vp.WeeklySessions) * gen.span.Hours() / (7 * 24)
}

// ratePerHour returns the expected VP-level arrival rate at time t.
func (gen *Generator) ratePerHour(t time.Duration) float64 {
	w := DiurnalWeight(t, gen.vp.DiurnalPeakHour, gen.vp.DiurnalMinFrac)
	meanW := gen.vp.DiurnalMinFrac + (1-gen.vp.DiurnalMinFrac)/2
	return gen.vpSessions() / gen.span.Hours() * w / meanW
}

// sampleClient draws a client address within the bucket's subnet.
func (gen *Generator) sampleClient(b *bucket) ipnet.Addr {
	sn := gen.vp.Subnets[b.subnet]
	idx := 1 + b.g.Intn(b.clients)
	addr, err := sn.Prefix.Nth(idx % (sn.Prefix.Size() - 1))
	if err != nil {
		// Subnet prefixes are /18s and pools ≤ ~10k clients, so this
		// cannot happen with a validated world.
		panic(fmt.Sprintf("workload: client allocation: %v", err))
	}
	return addr
}

// request assembles one session request at time t for a bucket.
func (gen *Generator) request(b *bucket, t time.Duration) cdn.Request {
	return cdn.Request{
		VP:        gen.vpIndex,
		SubnetIdx: b.subnet,
		Subnet:    gen.vp.Subnets[b.subnet],
		Client:    gen.sampleClient(b),
		Video:     gen.cat.Sample(b.g, t),
		Res:       gen.cat.SampleResolution(b.g),
	}
}

// Schedule installs hourly batch events on the engine, one per covered
// subnet per hour; each batch draws its hour's Poisson arrival count
// from the subnet's own stream and schedules the individual sessions
// at uniform offsets. submit is invoked inside engine events.
func (gen *Generator) Schedule(eng *des.Engine, submit func(cdn.Request)) {
	hours := int(gen.span / time.Hour)
	if gen.span%time.Hour != 0 {
		hours++
	}
	for i := range gen.buckets {
		b := &gen.buckets[i]
		for h := 0; h < hours; h++ {
			at := time.Duration(h) * time.Hour
			eng.Schedule(at, func() {
				gen.emitHour(eng, b, at, submit)
			})
		}
	}
}

// emitHour schedules one hour's arrivals for one subnet bucket.
func (gen *Generator) emitHour(eng *des.Engine, b *bucket, start time.Duration, submit func(cdn.Request)) {
	width := time.Hour
	if start+width > gen.span {
		width = gen.span - start
	}
	mean := gen.ratePerHour(start+width/2) * b.share * width.Hours()
	n := b.g.Poisson(mean)
	if gen.arrivals != nil {
		gen.arrivals.Add(int64(n))
		gen.batches.Inc()
	}
	for i := 0; i < n; i++ {
		at := start + time.Duration(b.g.Float64()*float64(width))
		eng.Schedule(at, func() {
			submit(gen.request(b, at))
		})
	}
}
