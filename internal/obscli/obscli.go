// Package obscli wires the observability layer into the command-line
// tools: the -metrics-addr / -report / -progress flags, the live HTTP
// endpoint, the periodic stderr progress line, and the end-of-run
// report artifact. It sits in the wall-clock plane (cmd layer), which
// is exactly where the obsplane lint rule allows it.
package obscli

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/obs"
	"github.com/ytcdn-sim/ytcdn/internal/obs/obshttp"
	"github.com/ytcdn-sim/ytcdn/internal/obs/profile"
	"github.com/ytcdn-sim/ytcdn/internal/obs/report"
)

// Flags holds the observability flag values of one command.
type Flags struct {
	MetricsAddr string
	ReportPath  string
	Progress    time.Duration
}

// Register installs the shared observability flags on the default
// flag set.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve /metrics (JSON), /debug/vars and /debug/pprof on this address while running (e.g. :9090; empty = off)")
	flag.StringVar(&f.ReportPath, "report", "",
		"write an end-of-run JSON report ("+report.Schema+") to this file (empty = off)")
	flag.DurationVar(&f.Progress, "progress", 0,
		"print a progress line to stderr at this interval (e.g. 2s; 0 = off)")
	return f
}

// Enabled reports whether any observability feature was requested.
func (f *Flags) Enabled() bool {
	return f.MetricsAddr != "" || f.ReportPath != "" || f.Progress > 0
}

// Session is the running observability state of one command. A nil
// *Session (observability off) is valid: every method is a no-op, and
// Registry/Profiler return nil — which downstream (ytcdn.Options,
// experiments.Input) interpret as "don't instrument".
type Session struct {
	name     string
	reg      *obs.Registry
	prof     *profile.Profiler
	server   *obshttp.Server
	stopProg func()
	flags    *Flags
	start    time.Time
}

// Start brings up whatever was requested: the registry and profiler
// always (when any flag is set), the HTTP endpoint and progress
// reporter if configured. name becomes the report's run name.
func (f *Flags) Start(name string) (*Session, error) {
	if !f.Enabled() {
		return nil, nil
	}
	s := &Session{
		name:  name,
		reg:   obs.NewRegistry(),
		flags: f,
		start: time.Now(),
	}
	s.prof = profile.NewProfiler(s.reg)
	profile.RegisterProcessGauges(s.reg, s.start)
	if f.MetricsAddr != "" {
		srv, err := obshttp.Serve(f.MetricsAddr, s.reg)
		if err != nil {
			return nil, fmt.Errorf("metrics endpoint: %w", err)
		}
		s.server = srv
		log.Printf("metrics: serving /metrics on http://%s", srv.Addr())
	}
	if f.Progress > 0 {
		s.stopProg = profile.StartProgress(os.Stderr, s.reg, f.Progress)
	}
	return s, nil
}

// Registry returns the instrument registry (nil when observability is
// off) — pass it as ytcdn.Options.Metrics.
func (s *Session) Registry() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Profiler returns the phase profiler (nil when observability is off)
// — pass it as ytcdn.Options.Profiler.
func (s *Session) Profiler() *profile.Profiler {
	if s == nil {
		return nil
	}
	return s.prof
}

// Phase times a command-level pipeline phase (no-op when off).
func (s *Session) Phase(name string) func() {
	if s == nil {
		return func() {}
	}
	return s.prof.Phase(name)
}

// Close stops the progress reporter, writes the -report artifact (with
// the given run config), and shuts the HTTP endpoint down. Call it
// once, after the run finishes.
func (s *Session) Close(config map[string]string) error {
	if s == nil {
		return nil
	}
	if s.stopProg != nil {
		s.stopProg()
	}
	var err error
	if s.flags.ReportPath != "" {
		rep := report.New(s.name)
		for k, v := range config {
			rep.Set(k, v)
		}
		rep.Set("wall_seconds", fmt.Sprintf("%.3f", time.Since(s.start).Seconds()))
		rep.AddSnapshot(s.reg.Snapshot())
		if werr := rep.WriteFile(s.flags.ReportPath); werr != nil {
			err = werr
		} else {
			log.Printf("report: written to %s", s.flags.ReportPath)
		}
	}
	if s.server != nil {
		if cerr := s.server.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
