package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseDiagnostics pins the -m=2 line formats the parser
// understands, including the double-printed escape and indented flow
// lines it must fold away.
func TestParseDiagnostics(t *testing.T) {
	out := `# example.com/mod
./a.go:10:6: can inline Add with cost 4 as: func(int64, int64) int64 { return a + b }
internal/x/b.go:20:6: cannot inline Big: function too complex: cost 200 exceeds budget 80
internal/x/b.go:25:9: &Box{...} escapes to heap:
internal/x/b.go:25:9:   flow: {heap} = &{storage for &Box{...}}:
internal/x/b.go:25:9:     from &Box{...} (spill) at internal/x/b.go:25:9
internal/x/b.go:25:9: &Box{...} escapes to heap
internal/x/b.go:30:2: moved to heap: buf
internal/x/b.go:19:14: leaking param: name
internal/x/b.go:21:6: inlining call to Add
`
	events := ParseDiagnostics(out)
	want := []Event{
		{File: "a.go", Line: 10, Col: 6, Kind: CanInline, Detail: "Add"},
		{File: "internal/x/b.go", Line: 20, Col: 6, Kind: CannotInline, Detail: "Big: function too complex: cost 200 exceeds budget 80"},
		{File: "internal/x/b.go", Line: 25, Col: 9, Kind: Escape, Detail: "&Box{...}"},
		{File: "internal/x/b.go", Line: 30, Col: 2, Kind: HeapMove, Detail: "buf"},
		{File: "internal/x/b.go", Line: 19, Col: 14, Kind: Leak, Detail: "leaking param: name"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(events), len(want), events)
	}
	for i, e := range events {
		if e != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, e, want[i])
		}
	}
}

// TestGateFailsOnInjectedEscape is the negative path the CI job relies
// on: a module with a deliberate heap escape in a //perf:noalloc
// function and a non-inlinable //perf:inline function must fail the
// gate, while the suppressed escape is recorded without failing it.
func TestGateFailsOnInjectedEscape(t *testing.T) {
	r, err := Check(filepath.Join("testdata", "escapemod"))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(r.Contracts) != 3 {
		t.Fatalf("got %d contracts, want 3: %+v", len(r.Contracts), r.Contracts)
	}
	var escapeInLeak, inlineInHeavy bool
	for _, f := range r.Findings {
		switch {
		case f.Check == "escape" && f.Func == "Leak":
			escapeInLeak = true
		case f.Check == "inline" && f.Func == "Heavy":
			inlineInHeavy = true
		case f.Func == "Tolerated":
			t.Errorf("suppressed escape in Tolerated leaked into findings: %v", f)
		}
	}
	if !escapeInLeak {
		t.Errorf("injected heap escape in Leak did not fail the gate; findings: %v", r.Findings)
	}
	if !inlineInHeavy {
		t.Errorf("non-inlinable Heavy did not fail the gate; findings: %v", r.Findings)
	}
	if len(r.Suppressed) != 1 || r.Suppressed[0].Func != "Tolerated" || r.Suppressed[0].SuppressReason == "" {
		t.Errorf("want exactly one reasoned suppression on Tolerated, got %v", r.Suppressed)
	}
	snap := r.Snapshot()
	for _, want := range []string{"Leak contracts=noalloc noalloc=FAIL", "Heavy contracts=inline inline=FAIL", "suppressed escapemod.go:"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

// TestGateCleanModule is the matching positive path.
func TestGateCleanModule(t *testing.T) {
	r, err := Check(filepath.Join("testdata", "cleanmod"))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(r.Findings) != 0 {
		t.Fatalf("clean module produced findings: %v", r.Findings)
	}
	if len(r.Suppressed) != 0 {
		t.Fatalf("clean module produced suppressions: %v", r.Suppressed)
	}
	snap := r.Snapshot()
	for _, want := range []string{
		"func cleanmod.go:9 Add contracts=inline,noalloc inline=ok noalloc=ok",
		"func cleanmod.go:17 Fill contracts=hot,noalloc noalloc=ok",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

// TestPerfGateTree runs the gate over the real module and pins the
// verdict snapshot at testdata/perfgate.golden. Inlining decisions
// move between compiler releases, so the test is opt-in: CI runs it in
// the perfgate job with the pinned toolchain (PERFGATE=1), and the
// golden is re-pinned with PERFGATE_REGEN=1 after an intentional
// change. PERFGATE_SNAPSHOT_OUT writes the full diagnostics dump for
// the CI artifact.
func TestPerfGateTree(t *testing.T) {
	if os.Getenv("PERFGATE") != "1" && os.Getenv("PERFGATE_REGEN") != "1" {
		t.Skip("tree-level gate is toolchain-pinned; set PERFGATE=1 (CI perfgate job) to run")
	}
	r, err := Check(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(r.Contracts) == 0 {
		t.Fatal("no //perf: contracts found in the tree — annotation scan is broken")
	}
	for _, f := range r.Findings {
		t.Errorf("perfgate: %s", f)
	}
	if out := os.Getenv("PERFGATE_SNAPSHOT_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(r.Diagnostics()+"\n"+r.Snapshot()), 0o644); err != nil {
			t.Fatalf("writing diagnostics artifact: %v", err)
		}
	}
	golden := filepath.Join("testdata", "perfgate.golden")
	snap := r.Snapshot()
	if os.Getenv("PERFGATE_REGEN") == "1" {
		if err := os.WriteFile(golden, []byte(snap), 0o644); err != nil {
			t.Fatalf("re-pinning golden: %v", err)
		}
		t.Logf("re-pinned %s (%d contracts)", golden, len(r.Contracts))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (re-pin with PERFGATE_REGEN=1): %v", err)
	}
	if snap != string(want) {
		t.Errorf("perfgate snapshot drifted from %s.\nIf the change is intentional, re-pin with:\n  PERFGATE_REGEN=1 go test ./internal/perfgate -run TestPerfGateTree\n--- golden ---\n%s--- got ---\n%s", golden, want, snap)
	}
}

// TestTreePerfOKInventory pins the //perf:ok suppression inventory of
// the repository without needing the compiler: the real tree currently
// carries none (the fixture modules under testdata are skipped by the
// scanner), so a new //perf:ok anywhere is a deliberate decision that
// must update this count — the perfgate golden records the where and
// why. The companion //lint:ok inventory lives in internal/lint's
// TestTreeClean.
func TestTreePerfOKInventory(t *testing.T) {
	contracts, sups, err := scanContracts(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(contracts) == 0 {
		t.Fatal("no //perf: contracts found in the tree — annotation scan is broken")
	}
	const wantSuppressions = 0
	if len(sups) != wantSuppressions {
		t.Errorf("tree carries %d //perf:ok suppression(s), inventory documents %d: %+v", len(sups), wantSuppressions, sups)
	}
}
