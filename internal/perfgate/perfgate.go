// Package perfgate turns the Go compiler's own optimizer diagnostics
// into an enforceable contract. It builds a module with
// `go build -gcflags=-m=2`, parses the escape-analysis and inlining
// output into a structured event stream, and checks the events against
// the //perf: annotations in the source (see internal/lint/perf.go for
// the language): a `//perf:noalloc` function with a heap escape inside
// its body, or a `//perf:inline` function the compiler reports as
// "cannot inline", is a finding.
//
// Deliberate exceptions are suppressed in place with
//
//	//perf:ok <check> <reason>
//
// on the offending line or the line above, where <check> is "escape"
// or "inline" and the reason is mandatory — a reasonless directive
// suppresses nothing (and the hotalloc analyzer reports it).
//
// The verdict for every annotated function is rendered by Snapshot
// into a deterministic report pinned at testdata/perfgate.golden, so a
// regression — a function falling out of its contract, a contract
// silently disappearing, a new suppression — fails CI as a golden
// diff even when it is not an outright finding. Inlining decisions
// move between compiler releases, so the tree-level golden test is
// opt-in (PERFGATE=1) and CI pins the toolchain for it; the fixture
// tests in this package are version-robust and always run.
package perfgate

import (
	"fmt"
	"os/exec"
	"runtime"
	"sort"
	"strings"
)

// EventKind classifies one compiler diagnostic line.
type EventKind string

const (
	// CanInline is "can inline f with cost N as: ...".
	CanInline EventKind = "can-inline"
	// CannotInline is "cannot inline f: reason".
	CannotInline EventKind = "cannot-inline"
	// Escape is "expr escapes to heap" — a heap allocation at that site.
	Escape EventKind = "escape"
	// HeapMove is "moved to heap: x" — a local forced onto the heap.
	HeapMove EventKind = "heap-move"
	// Leak is "leaking param[ content]: x" — the param flows to the
	// heap, but any allocation happens at the caller. Recorded for the
	// diagnostics artifact, not a noalloc violation by itself.
	Leak EventKind = "leak"
)

// Event is one parsed -m=2 diagnostic, positioned module-relative.
type Event struct {
	File string
	Line int
	Col  int
	Kind EventKind
	// Detail is the function name for inline events, the escaping
	// expression for escapes, the variable for heap moves, and the
	// parameter description for leaks.
	Detail string
}

// FuncContract is one //perf:-annotated function found in the source.
type FuncContract struct {
	File     string
	DeclLine int // line of the func keyword (where inline events land)
	EndLine  int // last body line (escape events attribute by span)
	Name     string
	Hot      bool
	NoAlloc  bool
	Inline   bool
}

// Contracts returns the annotation verbs as a sorted comma list.
func (c FuncContract) Contracts() string {
	var v []string
	if c.Hot {
		v = append(v, "hot")
	}
	if c.Inline {
		v = append(v, "inline")
	}
	if c.NoAlloc {
		v = append(v, "noalloc")
	}
	return strings.Join(v, ",")
}

// Finding is one contract violation.
type Finding struct {
	File    string
	Line    int
	Col     int
	Func    string
	Check   string // "escape" or "inline"
	Message string
	// SuppressReason is the //perf:ok reason when the finding was
	// suppressed (such findings live in Result.Suppressed).
	SuppressReason string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s: %s", f.File, f.Line, f.Col, f.Check, f.Func, f.Message)
	if f.SuppressReason != "" {
		s += " (suppressed: " + f.SuppressReason + ")"
	}
	return s
}

// Result is one gate evaluation over a module.
type Result struct {
	Toolchain  string // go major.minor, the axis the golden depends on
	Contracts  []FuncContract
	Events     []Event
	Findings   []Finding // unsuppressed violations — the gate fails on any
	Suppressed []Finding
}

// Check builds the module rooted at dir with escape/inline diagnostics
// enabled, scans its sources for //perf: contracts, and evaluates one
// against the other.
func Check(dir string) (*Result, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=2", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2 in %s: %v\n%s", dir, err, out)
	}
	events := ParseDiagnostics(string(out))

	contracts, sups, err := scanContracts(dir)
	if err != nil {
		return nil, err
	}

	r := &Result{
		Toolchain: toolchainMinor(),
		Contracts: contracts,
		Events:    events,
	}
	r.evaluate(sups)
	return r, nil
}

// toolchainMinor reduces runtime.Version() to its go1.N prefix —
// patch releases do not move inlining or escape analysis.
func toolchainMinor() string {
	v := runtime.Version()
	if i := strings.LastIndex(v, "."); strings.Count(v, ".") == 2 && i > 0 {
		return v[:i]
	}
	return v
}

// evaluate matches events to contracts and applies suppressions.
func (r *Result) evaluate(sups []suppression) {
	// Index suppressions by file and line for the line/line-above rule.
	type supKey struct {
		file  string
		line  int
		check string
	}
	supAt := map[supKey]string{}
	for _, s := range sups {
		if s.reason == "" {
			continue // reasonless directives suppress nothing
		}
		supAt[supKey{s.file, s.line, s.check}] = s.reason
	}
	reasonFor := func(file string, line int, check string) (string, bool) {
		for _, l := range [2]int{line, line - 1} {
			if reason, ok := supAt[supKey{file, l, check}]; ok {
				return reason, true
			}
		}
		return "", false
	}
	record := func(f Finding) {
		if reason, ok := reasonFor(f.File, f.Line, f.Check); ok {
			f.SuppressReason = reason
			r.Suppressed = append(r.Suppressed, f)
			return
		}
		r.Findings = append(r.Findings, f)
	}

	for _, c := range r.Contracts {
		for _, e := range r.Events {
			if e.File != c.File {
				continue
			}
			switch {
			case c.Inline && e.Kind == CannotInline && e.Line == c.DeclLine:
				record(Finding{
					File: e.File, Line: e.Line, Col: e.Col, Func: c.Name,
					Check:   "inline",
					Message: "//perf:inline function no longer inlines: " + e.Detail,
				})
			case c.NoAlloc && (e.Kind == Escape || e.Kind == HeapMove) &&
				e.Line >= c.DeclLine && e.Line <= c.EndLine:
				what := e.Detail + " escapes to heap"
				if e.Kind == HeapMove {
					what = e.Detail + " moved to heap"
				}
				record(Finding{
					File: e.File, Line: e.Line, Col: e.Col, Func: c.Name,
					Check:   "escape",
					Message: "//perf:noalloc function allocates: " + what,
				})
			}
		}
	}
	sortFindings(r.Findings)
	sortFindings(r.Suppressed)
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		return fs[i].Message < fs[j].Message
	})
}

// Snapshot renders the deterministic per-contract verdict report the
// golden pins. It contains every annotated function with its contract
// verbs and pass/fail verdicts, followed by every suppression in
// effect — so removing an annotation, losing a verdict, or adding an
// escape hatch all show up as a diff.
func (r *Result) Snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ytcdn perfgate snapshot v1 (%s)\n", r.Toolchain)
	cs := append([]FuncContract(nil), r.Contracts...)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].File != cs[j].File {
			return cs[i].File < cs[j].File
		}
		return cs[i].DeclLine < cs[j].DeclLine
	})
	failed := map[string]map[string]bool{} // func key -> check -> failed
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, f := range r.Findings {
		k := key(f.File, f.Line)
		if f.Check == "escape" {
			// escapes land on body lines; attribute via the owning span
			for _, c := range cs {
				if c.File == f.File && f.Line >= c.DeclLine && f.Line <= c.EndLine {
					k = key(c.File, c.DeclLine)
				}
			}
		}
		if failed[k] == nil {
			failed[k] = map[string]bool{}
		}
		failed[k][f.Check] = true
	}
	verdict := func(c FuncContract, check string) string {
		if failed[key(c.File, c.DeclLine)][check] {
			return "FAIL"
		}
		return "ok"
	}
	for _, c := range cs {
		fmt.Fprintf(&b, "func %s:%d %s contracts=%s", c.File, c.DeclLine, c.Name, c.Contracts())
		if c.Inline {
			fmt.Fprintf(&b, " inline=%s", verdict(c, "inline"))
		}
		if c.NoAlloc {
			fmt.Fprintf(&b, " noalloc=%s", verdict(c, "escape"))
		}
		b.WriteString("\n")
	}
	for _, f := range r.Suppressed {
		fmt.Fprintf(&b, "suppressed %s:%d %s %s: %s\n", f.File, f.Line, f.Check, f.Func, f.SuppressReason)
	}
	return b.String()
}

// Diagnostics renders the full parsed event stream, for the CI
// artifact — the raw material behind the snapshot verdicts.
func (r *Result) Diagnostics() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ytcdn perfgate diagnostics (%s): %d events\n", r.Toolchain, len(r.Events))
	for _, e := range r.Events {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", e.File, e.Line, e.Col, e.Kind, e.Detail)
	}
	return b.String()
}
