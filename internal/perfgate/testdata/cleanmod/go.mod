module example.com/cleanmod

go 1.21
