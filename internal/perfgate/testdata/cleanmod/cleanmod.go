// Package cleanmod is the perfgate positive fixture: every contract
// holds, in ways that are stable across compiler releases.
package cleanmod

// Add is trivially inlinable and allocation-free.
//
//perf:noalloc
//perf:inline
func Add(a, b int64) int64 {
	return a + b
}

// Fill writes into caller-provided storage only.
//
//perf:hot
//perf:noalloc
func Fill(dst []int64, v int64) {
	for i := range dst {
		dst[i] = v
	}
}
