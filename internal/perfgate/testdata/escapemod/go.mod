module example.com/escapemod

go 1.21
