// Package escapemod is the perfgate negative fixture: functions whose
// //perf: contracts the compiler provably violates, in ways that are
// stable across compiler releases (a store to a global always escapes;
// a recursive function never inlines).
package escapemod

// Box is big enough to matter.
type Box struct{ V [4]int64 }

// Sink makes escapes observable to the escape analysis.
var Sink *Box

// Leak violates //perf:noalloc: the box flows to the global.
//
//perf:noalloc
func Leak(v int64) {
	b := &Box{}
	b.V[0] = v
	Sink = b
}

// Heavy violates //perf:inline: recursion is never inlinable.
//
//perf:inline
func Heavy(n int) int {
	if n <= 0 {
		return 0
	}
	return n + Heavy(n-1)
}

// Tolerated allocates knowingly: the escape carries a reasoned
// suppression, so it is recorded but does not fail the gate.
//
//perf:noalloc
func Tolerated() *Box {
	//perf:ok escape setup-time constructor, runs once before the hot loop
	return &Box{}
}
