package perfgate

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"github.com/ytcdn-sim/ytcdn/internal/lint"
)

// suppression is one reasoned //perf:ok <check> <reason> directive.
type suppression struct {
	file   string
	line   int
	check  string
	reason string
}

// scanContracts walks the module rooted at dir and parses every
// production .go file for //perf: contract annotations and //perf:ok
// suppressions. testdata trees, hidden directories and nested modules
// are skipped — they are outside the `go build ./...` the events came
// from.
func scanContracts(dir string) ([]FuncContract, []suppression, error) {
	var contracts []FuncContract
	var sups []suppression
	fset := token.NewFileSet()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if path != dir {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		fileContracts(fset, f, rel, &contracts)
		fileSuppressions(fset, f, rel, &sups)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return contracts, sups, nil
}

// fileContracts collects the //perf:-annotated function declarations.
func fileContracts(fset *token.FileSet, f *ast.File, rel string, out *[]FuncContract) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		c := FuncContract{
			File:     rel,
			DeclLine: fset.Position(fd.Pos()).Line,
			EndLine:  fset.Position(fd.End()).Line,
			Name:     funcDisplayName(fd),
		}
		for _, cm := range fd.Doc.List {
			verb, _, ok := lint.ParsePerfText(cm.Text)
			if !ok {
				continue
			}
			switch verb {
			case "hot":
				c.Hot = true
			case "noalloc":
				c.NoAlloc = true
			case "inline":
				c.Inline = true
			}
		}
		if c.Hot || c.NoAlloc || c.Inline {
			*out = append(*out, c)
		}
	}
}

// fileSuppressions collects every //perf:ok directive in the file.
// Reasonless ones are kept (with reason "") so callers can see them,
// but evaluate ignores them — and the hotalloc analyzer reports them.
func fileSuppressions(fset *token.FileSet, f *ast.File, rel string, out *[]suppression) {
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			verb, arg, ok := lint.ParsePerfText(cm.Text)
			if !ok || verb != "ok" {
				continue
			}
			check, reason, _ := strings.Cut(arg, " ")
			*out = append(*out, suppression{
				file:   rel,
				line:   fset.Position(cm.Pos()).Line,
				check:  check,
				reason: strings.TrimSpace(reason),
			})
		}
	}
}

// funcDisplayName renders a function's name the way the compiler
// prints it in -m diagnostics: F, T.M, or (*T).M.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
