package perfgate

import (
	"regexp"
	"strconv"
	"strings"
)

// posLineRe matches one positioned diagnostic: path:line:col: message.
var posLineRe = regexp.MustCompile(`^([^ :]+):(\d+):(\d+): (.*)$`)

// ParseDiagnostics parses `go build -gcflags=-m=2` output into the
// structured event stream. The raw stream interleaves `# importpath`
// group headers, positioned one-liners, and indented escape-flow
// detail; with -m=2 each escape is additionally printed twice (once
// with a trailing colon introducing the flow, once bare), so events
// are deduplicated by position, kind and detail.
func ParseDiagnostics(out string) []Event {
	var events []Event
	seen := map[Event]bool{}
	add := func(e Event) {
		if !seen[e] {
			seen[e] = true
			events = append(events, e)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := posLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if msg == "" || msg[0] == ' ' || msg[0] == '\t' {
			continue // escape-flow detail lines are indented after the position
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		e := Event{File: strings.TrimPrefix(m[1], "./"), Line: ln, Col: col}
		switch {
		case strings.HasPrefix(msg, "can inline "):
			e.Kind = CanInline
			e.Detail = msg[len("can inline "):]
			if i := strings.Index(e.Detail, " with cost "); i >= 0 {
				e.Detail = e.Detail[:i]
			}
		case strings.HasPrefix(msg, "cannot inline "):
			e.Kind = CannotInline
			e.Detail = msg[len("cannot inline "):]
		case strings.HasPrefix(msg, "moved to heap: "):
			e.Kind = HeapMove
			e.Detail = msg[len("moved to heap: "):]
		case strings.HasPrefix(msg, "leaking param"):
			e.Kind = Leak
			e.Detail = msg
		case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
			e.Kind = Escape
			e.Detail = strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
		default:
			continue // "inlining call to", debug chatter, build noise
		}
		add(e)
	}
	return events
}
