package analysis

import (
	"sort"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// Session is a group of related flows: same client, same VideoID,
// adjacent in time (paper §VI-A). Flows are ordered by start time.
type Session struct {
	Client  ipnet.Addr
	VideoID string
	Flows   []capture.FlowRecord
}

// Start returns the session's first flow start.
func (s Session) Start() time.Duration { return s.Flows[0].Start }

// sessionKey groups flows before temporal splitting.
type sessionKey struct {
	client ipnet.Addr
	video  string
}

// Sessionize groups a trace into video sessions: flows with the same
// (client, VideoID) belong to one session when the gap between the end
// of one flow and the start of the next is below gap (the paper's T;
// overlapping flows always group). The result is ordered by session
// start time, and flows within each session by start time.
func Sessionize(recs []capture.FlowRecord, gap time.Duration) []Session {
	groups := make(map[sessionKey][]capture.FlowRecord)
	for _, r := range recs {
		k := sessionKey{client: r.Client, video: r.VideoID}
		groups[k] = append(groups[k], r)
	}

	var out []Session
	for k, flows := range groups {
		sort.Slice(flows, func(i, j int) bool {
			if flows[i].Start != flows[j].Start {
				return flows[i].Start < flows[j].Start
			}
			return flows[i].End < flows[j].End
		})
		cur := Session{Client: k.client, VideoID: k.video}
		// latestEnd tracks the furthest end seen, so a long flow
		// swallowing short ones does not split the session.
		var latestEnd time.Duration
		for _, f := range flows {
			if len(cur.Flows) > 0 && f.Start > latestEnd+gap {
				out = append(out, cur)
				cur = Session{Client: k.client, VideoID: k.video}
				latestEnd = 0
			}
			cur.Flows = append(cur.Flows, f)
			if f.End > latestEnd {
				latestEnd = f.End
			}
		}
		out = append(out, cur)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() < out[j].Start()
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].VideoID < out[j].VideoID
	})
	return out
}

// FlowsPerSessionHistogram returns the fraction of sessions having
// 1, 2, ..., maxBucket flows; the last bucket aggregates everything
// >= maxBucket (the paper's ">9" bucket with maxBucket=10).
func FlowsPerSessionHistogram(sessions []Session, maxBucket int) []float64 {
	hist := make([]float64, maxBucket)
	if len(sessions) == 0 {
		return hist
	}
	for _, s := range sessions {
		n := len(s.Flows)
		if n > maxBucket {
			n = maxBucket
		}
		hist[n-1]++
	}
	for i := range hist {
		hist[i] /= float64(len(sessions))
	}
	return hist
}
