package analysis

import (
	"fmt"
	"sort"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// Session is a group of related flows: same client, same VideoID,
// adjacent in time (paper §VI-A). Flows are ordered by start time.
type Session struct {
	Client  ipnet.Addr
	VideoID string
	Flows   []capture.FlowRecord
}

// Start returns the session's first flow start.
func (s Session) Start() time.Duration { return s.Flows[0].Start }

// sessionKey groups flows before temporal splitting.
type sessionKey struct {
	client ipnet.Addr
	video  string
}

// Sessionize groups a trace into video sessions: flows with the same
// (client, VideoID) belong to one session when the gap between the end
// of one flow and the start of the next is below gap (the paper's T;
// overlapping flows always group). The result is ordered by session
// start time, and flows within each session by start time.
func Sessionize(recs []capture.FlowRecord, gap time.Duration) []Session {
	groups := make(map[sessionKey][]capture.FlowRecord)
	for _, r := range recs {
		k := sessionKey{client: r.Client, video: r.VideoID}
		groups[k] = append(groups[k], r)
	}

	var out []Session
	for k, flows := range groups {
		sort.Slice(flows, func(i, j int) bool {
			if flows[i].Start != flows[j].Start {
				return flows[i].Start < flows[j].Start
			}
			return flows[i].End < flows[j].End
		})
		cur := Session{Client: k.client, VideoID: k.video}
		// latestEnd tracks the furthest end seen, so a long flow
		// swallowing short ones does not split the session.
		var latestEnd time.Duration
		for _, f := range flows {
			if len(cur.Flows) > 0 && f.Start > latestEnd+gap {
				out = append(out, cur)
				cur = Session{Client: k.client, VideoID: k.video}
				latestEnd = 0
			}
			cur.Flows = append(cur.Flows, f)
			if f.End > latestEnd {
				latestEnd = f.End
			}
		}
		out = append(out, cur)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() < out[j].Start()
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].VideoID < out[j].VideoID
	})
	return out
}

// SessionizeIter is Sessionize over a record stream. It materializes
// the records first (sessionization in arbitrary order needs the full
// per-key groups), so its memory is the trace size — use it for
// compatibility, and StreamSessions for bounded memory over
// start-ordered input. The result is identical to Sessionize on the
// collected records.
func SessionizeIter(it capture.Iterator, gap time.Duration) ([]Session, error) {
	recs, err := capture.Collect(it)
	if err != nil {
		return nil, err
	}
	return Sessionize(recs, gap), nil
}

// StreamSessions is the bounded-memory sessionizer: it consumes an
// iterator whose records are ordered by start time (for a disk store,
// tracestore.Reader.ScanByStart) and invokes emit for every completed
// session. Memory is bounded by the sessions open at any instant —
// those whose temporal window can still accept a flow — never the
// whole trace.
//
// The session partition matches Sessionize: flows with the same
// (client, VideoID) group while each flow starts within gap of the
// furthest end seen. Sessions are emitted as they close (ordered by
// closing time, with deterministic tie-breaks), not by session start;
// callers needing the globally sorted slice should use SessionizeIter.
func StreamSessions(it capture.Iterator, gap time.Duration, emit func(Session)) error {
	open := make(map[sessionKey]*Session)
	latest := make(map[sessionKey]time.Duration)
	var cursor time.Duration
	const sweepEvery = 4096
	n := 0
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if r.Start < cursor {
			return fmt.Errorf("analysis: StreamSessions input not ordered by start time (%v after %v)", r.Start, cursor)
		}
		cursor = r.Start
		k := sessionKey{client: r.Client, video: r.VideoID}
		s, ok := open[k]
		if ok && r.Start > latest[k]+gap {
			emit(*s)
			delete(open, k)
			ok = false
		}
		if !ok {
			open[k] = &Session{Client: r.Client, VideoID: r.VideoID, Flows: []capture.FlowRecord{r}}
			latest[k] = r.End
		} else {
			s.Flows = append(s.Flows, r)
			if r.End > latest[k] {
				latest[k] = r.End
			}
		}
		n++
		if n%sweepEvery == 0 {
			sweepClosed(open, latest, cursor, gap, emit)
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	// Close everything left: no future flow can arrive.
	sweepClosed(open, latest, time.Duration(1<<63-1), 0, emit)
	return nil
}

// sweepClosed emits (in deterministic order) every open session that
// can no longer grow: its window end precedes the stream cursor.
func sweepClosed(open map[sessionKey]*Session, latest map[sessionKey]time.Duration, cursor, gap time.Duration, emit func(Session)) {
	var closed []sessionKey
	for k, end := range latest {
		if cursor > end+gap {
			closed = append(closed, k)
		}
	}
	sort.Slice(closed, func(i, j int) bool {
		a, b := open[closed[i]], open[closed[j]]
		if a.Start() != b.Start() {
			return a.Start() < b.Start()
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.VideoID < b.VideoID
	})
	for _, k := range closed {
		emit(*open[k])
		delete(open, k)
		delete(latest, k)
	}
}

// FlowsPerSessionHistogram returns the fraction of sessions having
// 1, 2, ..., maxBucket flows; the last bucket aggregates everything
// >= maxBucket (the paper's ">9" bucket with maxBucket=10).
func FlowsPerSessionHistogram(sessions []Session, maxBucket int) []float64 {
	hist := make([]float64, maxBucket)
	if len(sessions) == 0 {
		return hist
	}
	for _, s := range sessions {
		n := len(s.Flows)
		if n > maxBucket {
			n = maxBucket
		}
		hist[n-1]++
	}
	for i := range hist {
		hist[i] /= float64(len(sessions))
	}
	return hist
}
