package analysis

import (
	"sort"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// PrefMask reports, per flow of a session, whether it went to the
// preferred data center.
func PrefMask(s Session, m *DCMap, preferred int) []bool {
	mask := make([]bool, len(s.Flows))
	for i, f := range s.Flows {
		dc, ok := m.DCOf(f.Server)
		mask[i] = ok && dc == preferred
	}
	return mask
}

// SingleFlowBreakdown is Fig 10a: among all sessions, the fraction
// consisting of exactly one flow that went to the preferred /
// non-preferred data center.
type SingleFlowBreakdown struct {
	Preferred    float64
	NonPreferred float64
}

// TwoFlowBreakdown is Fig 10b: among all sessions, the fraction of
// two-flow sessions per (first, second) preferred pattern.
type TwoFlowBreakdown struct {
	PrefPref       float64
	PrefNonPref    float64
	NonPrefPref    float64
	NonPrefNonPref float64
}

// BreakdownSessions computes Figs 10a/10b for a session list.
func BreakdownSessions(sessions []Session, m *DCMap, preferred int) (SingleFlowBreakdown, TwoFlowBreakdown) {
	tally := NewSessionTally(0)
	for _, s := range sessions {
		tally.Add(s, m, preferred)
	}
	return tally.Breakdown()
}

// SessionTally accumulates the per-session aggregates that previously
// required a materialized []Session: the flows-per-session histogram
// (Figs 5/6) and the 1-/2-flow preferred-pattern breakdown (Fig 10).
// Feed it one session at a time — e.g. as the emit callback of
// StreamSessions — so a trace's sessions never need to exist at once.
// All internal state is integer counts, making the results independent
// of the order sessions are added in (stream emission order differs
// between storage backends).
type SessionTally struct {
	n    int
	hist []int // flows-per-session counts; last bucket aggregates the tail
	one  [2]int
	two  [4]int
}

// NewSessionTally sizes the histogram (maxBucket <= 0 disables it;
// the breakdown is always tallied). m may be nil in Add when only the
// histogram is wanted.
func NewSessionTally(maxBucket int) *SessionTally {
	t := &SessionTally{}
	if maxBucket > 0 {
		t.hist = make([]int, maxBucket)
	}
	return t
}

// Add tallies one session. m may be nil when the caller only needs the
// histogram (the preferred-pattern breakdown is skipped).
func (t *SessionTally) Add(s Session, m *DCMap, preferred int) {
	t.n++
	if t.hist != nil {
		n := len(s.Flows)
		if n > len(t.hist) {
			n = len(t.hist)
		}
		t.hist[n-1]++
	}
	if m == nil {
		return
	}
	mask := PrefMask(s, m, preferred)
	switch len(s.Flows) {
	case 1:
		if mask[0] {
			t.one[0]++
		} else {
			t.one[1]++
		}
	case 2:
		switch {
		case mask[0] && mask[1]:
			t.two[0]++
		case mask[0] && !mask[1]:
			t.two[1]++
		case !mask[0] && mask[1]:
			t.two[2]++
		default:
			t.two[3]++
		}
	}
}

// Sessions returns how many sessions were tallied.
func (t *SessionTally) Sessions() int { return t.n }

// Histogram returns the flows-per-session fractions (FlowsPerSession-
// Histogram's shape): index i is the fraction of sessions with i+1
// flows, the last bucket aggregating everything at or beyond it.
func (t *SessionTally) Histogram() []float64 {
	out := make([]float64, len(t.hist))
	if t.n == 0 {
		return out
	}
	for i, c := range t.hist {
		out[i] = float64(c) / float64(t.n)
	}
	return out
}

// Breakdown returns the Fig 10a/10b fractions.
func (t *SessionTally) Breakdown() (SingleFlowBreakdown, TwoFlowBreakdown) {
	var one SingleFlowBreakdown
	var two TwoFlowBreakdown
	if t.n == 0 {
		return one, two
	}
	n := float64(t.n)
	one.Preferred = float64(t.one[0]) / n
	one.NonPreferred = float64(t.one[1]) / n
	two.PrefPref = float64(t.two[0]) / n
	two.PrefNonPref = float64(t.two[1]) / n
	two.NonPrefPref = float64(t.two[2]) / n
	two.NonPrefNonPref = float64(t.two[3]) / n
	return one, two
}

// HourlyNonPreferred computes the per-hour fraction of video flows
// served by non-preferred data centers (Figs 9 and 11). Flows outside
// any known cluster are ignored, mirroring the paper's Google-AS
// filter. It returns the per-bin fractions (only bins with traffic)
// plus the total and non-preferred hourly counts.
func HourlyNonPreferred(videoFlows []capture.FlowRecord, m *DCMap, preferred int, span time.Duration) (fracs []float64, all, nonPref *stats.TimeBins) {
	fracs, all, nonPref, _ = HourlyNonPreferredIter(capture.IterSlice(videoFlows), m, preferred, span)
	return fracs, all, nonPref
}

// HourlyNonPreferredIter is the streaming HourlyNonPreferred: one pass
// over the iterator, memory bounded by the hourly bins.
func HourlyNonPreferredIter(it capture.Iterator, m *DCMap, preferred int, span time.Duration) (fracs []float64, all, nonPref *stats.TimeBins, err error) {
	if span < time.Hour {
		span = time.Hour
	}
	all = stats.NewTimeBins(span, time.Hour)
	nonPref = stats.NewTimeBins(span, time.Hour)
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		all.Incr(r.Start)
		if dc != preferred {
			nonPref.Incr(r.Start)
		}
	}
	vals, mask := stats.Ratio(nonPref, all)
	for i, v := range vals {
		if mask[i] {
			fracs = append(fracs, v)
		}
	}
	return fracs, all, nonPref, it.Err()
}

// SubnetShare is one bar pair of Fig 12.
type SubnetShare struct {
	Name string
	// AllFrac is the subnet's share of all video flows.
	AllFrac float64
	// NonPrefFrac is the subnet's share of video flows that went to
	// non-preferred data centers.
	NonPrefFrac float64
}

// NamedPrefix labels a client subnet for Fig 12.
type NamedPrefix struct {
	Name   string
	Prefix ipnet.Prefix
}

// BySubnet attributes video flows and non-preferred video flows to
// client subnets (Fig 12).
func BySubnet(videoFlows []capture.FlowRecord, m *DCMap, preferred int, subnets []NamedPrefix) []SubnetShare {
	out, _ := BySubnetIter(capture.IterSlice(videoFlows), m, preferred, subnets)
	return out
}

// BySubnetIter is the streaming BySubnet: one pass, memory bounded by
// the subnet list.
func BySubnetIter(it capture.Iterator, m *DCMap, preferred int, subnets []NamedPrefix) ([]SubnetShare, error) {
	all := make([]float64, len(subnets))
	nonPref := make([]float64, len(subnets))
	var totAll, totNon float64
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		idx := -1
		for i, sn := range subnets {
			if sn.Prefix.Contains(r.Client) {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		all[idx]++
		totAll++
		if dc != preferred {
			nonPref[idx]++
			totNon++
		}
	}
	out := make([]SubnetShare, len(subnets))
	for i, sn := range subnets {
		out[i].Name = sn.Name
		if totAll > 0 {
			out[i].AllFrac = all[i] / totAll
		}
		if totNon > 0 {
			out[i].NonPrefFrac = nonPref[i] / totNon
		}
	}
	return out, it.Err()
}

// VideoNonPrefCount pairs a video with how many of its video flows
// were served from non-preferred data centers.
type VideoNonPrefCount struct {
	VideoID string
	Count   int
	Total   int
}

// NonPreferredPerVideo counts, per video, the video flows served from
// non-preferred DCs (Fig 13's distribution; its top entries feed
// Fig 14). Only videos with at least one non-preferred access are
// returned, sorted by decreasing count then VideoID.
func NonPreferredPerVideo(videoFlows []capture.FlowRecord, m *DCMap, preferred int) []VideoNonPrefCount {
	out, _ := NonPreferredPerVideoIter(capture.IterSlice(videoFlows), m, preferred)
	return out
}

// NonPreferredPerVideoIter is the streaming NonPreferredPerVideo: one
// pass, memory bounded by the distinct-video set.
func NonPreferredPerVideoIter(it capture.Iterator, m *DCMap, preferred int) ([]VideoNonPrefCount, error) {
	nonPref := make(map[string]int)
	total := make(map[string]int)
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		total[r.VideoID]++
		if dc != preferred {
			nonPref[r.VideoID]++
		}
	}
	out := make([]VideoNonPrefCount, 0, len(nonPref))
	for id, c := range nonPref {
		out = append(out, VideoNonPrefCount{VideoID: id, Count: c, Total: total[id]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].VideoID < out[j].VideoID
	})
	return out, it.Err()
}

// VideoHourlySeries returns the hourly request series of one video:
// all accesses and non-preferred accesses (one panel of Fig 14).
func VideoHourlySeries(videoFlows []capture.FlowRecord, m *DCMap, preferred int, videoID string, span time.Duration) (all, nonPref *stats.TimeBins) {
	all, nonPref, _ = VideoHourlySeriesIter(capture.IterSlice(videoFlows), m, preferred, videoID, span)
	return all, nonPref
}

// VideoHourlySeriesIter is the streaming VideoHourlySeries.
func VideoHourlySeriesIter(it capture.Iterator, m *DCMap, preferred int, videoID string, span time.Duration) (all, nonPref *stats.TimeBins, err error) {
	if span < time.Hour {
		span = time.Hour
	}
	all = stats.NewTimeBins(span, time.Hour)
	nonPref = stats.NewTimeBins(span, time.Hour)
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if r.VideoID != videoID {
			continue
		}
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		all.Incr(r.Start)
		if dc != preferred {
			nonPref.Incr(r.Start)
		}
	}
	return all, nonPref, it.Err()
}

// ServerLoadStats returns, per hour, the average and maximum number of
// video flows handled by servers of the preferred data center
// (Fig 15).
func ServerLoadStats(videoFlows []capture.FlowRecord, m *DCMap, preferred int, span time.Duration) (avg, max []float64) {
	avg, max, _ = ServerLoadStatsIter(capture.IterSlice(videoFlows), m, preferred, span)
	return avg, max
}

// ServerLoadStatsIter is the streaming ServerLoadStats: memory is
// bounded by (preferred-DC servers × hourly bins).
func ServerLoadStatsIter(it capture.Iterator, m *DCMap, preferred int, span time.Duration) (avg, max []float64, err error) {
	if span < time.Hour {
		span = time.Hour
	}
	nBins := int(span / time.Hour)
	if span%time.Hour != 0 {
		nBins++
	}
	perServer := make(map[ipnet.Addr][]float64)
	serverCount := len(m.Cluster(preferred).Servers)
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		dc, ok := m.DCOf(r.Server)
		if !ok || dc != preferred {
			continue
		}
		bins, ok := perServer[r.Server]
		if !ok {
			bins = make([]float64, nBins)
			perServer[r.Server] = bins
		}
		idx := int(r.Start / time.Hour)
		if idx < 0 {
			idx = 0
		}
		if idx >= nBins {
			idx = nBins - 1
		}
		bins[idx]++
	}
	avg = make([]float64, nBins)
	max = make([]float64, nBins)
	for _, bins := range perServer {
		for i, v := range bins {
			avg[i] += v
			if v > max[i] {
				max[i] = v
			}
		}
	}
	if serverCount > 0 {
		for i := range avg {
			avg[i] /= float64(serverCount)
		}
	}
	return avg, max, it.Err()
}

// ServerSessionPattern classifies the sessions that touch a given
// server by their preferred pattern (Fig 16).
type ServerSessionPattern struct {
	AllPreferred  *stats.TimeBins // every flow to the preferred DC
	FirstPrefOnly *stats.TimeBins // first flow preferred, later ones not
	Others        *stats.TimeBins
}

// NewServerSessionPattern returns an empty pattern accumulator for the
// given span; feed sessions through Add (e.g. from StreamSessions).
func NewServerSessionPattern(span time.Duration) ServerSessionPattern {
	if span < time.Hour {
		span = time.Hour
	}
	return ServerSessionPattern{
		AllPreferred:  stats.NewTimeBins(span, time.Hour),
		FirstPrefOnly: stats.NewTimeBins(span, time.Hour),
		Others:        stats.NewTimeBins(span, time.Hour),
	}
}

// Add classifies one session if it touches the server, binning it by
// its preferred pattern.
func (p ServerSessionPattern) Add(s Session, m *DCMap, preferred int, server ipnet.Addr) {
	touches := false
	for _, f := range s.Flows {
		if f.Server == server {
			touches = true
			break
		}
	}
	if !touches {
		return
	}
	mask := PrefMask(s, m, preferred)
	allPref := true
	for _, pr := range mask {
		if !pr {
			allPref = false
			break
		}
	}
	switch {
	case allPref:
		p.AllPreferred.Incr(s.Start())
	case mask[0] && len(mask) > 1:
		p.FirstPrefOnly.Incr(s.Start())
	default:
		p.Others.Incr(s.Start())
	}
}

// SessionsAtServer computes Fig 16 for one server address.
func SessionsAtServer(sessions []Session, m *DCMap, preferred int, server ipnet.Addr, span time.Duration) ServerSessionPattern {
	out := NewServerSessionPattern(span)
	for _, s := range sessions {
		out.Add(s, m, preferred, server)
	}
	return out
}
