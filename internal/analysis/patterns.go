package analysis

import (
	"sort"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
)

// PrefMask reports, per flow of a session, whether it went to the
// preferred data center.
func PrefMask(s Session, m *DCMap, preferred int) []bool {
	mask := make([]bool, len(s.Flows))
	for i, f := range s.Flows {
		dc, ok := m.DCOf(f.Server)
		mask[i] = ok && dc == preferred
	}
	return mask
}

// SingleFlowBreakdown is Fig 10a: among all sessions, the fraction
// consisting of exactly one flow that went to the preferred /
// non-preferred data center.
type SingleFlowBreakdown struct {
	Preferred    float64
	NonPreferred float64
}

// TwoFlowBreakdown is Fig 10b: among all sessions, the fraction of
// two-flow sessions per (first, second) preferred pattern.
type TwoFlowBreakdown struct {
	PrefPref       float64
	PrefNonPref    float64
	NonPrefPref    float64
	NonPrefNonPref float64
}

// BreakdownSessions computes Figs 10a/10b for a session list.
func BreakdownSessions(sessions []Session, m *DCMap, preferred int) (SingleFlowBreakdown, TwoFlowBreakdown) {
	var one SingleFlowBreakdown
	var two TwoFlowBreakdown
	if len(sessions) == 0 {
		return one, two
	}
	n := float64(len(sessions))
	for _, s := range sessions {
		mask := PrefMask(s, m, preferred)
		switch len(s.Flows) {
		case 1:
			if mask[0] {
				one.Preferred += 1 / n
			} else {
				one.NonPreferred += 1 / n
			}
		case 2:
			switch {
			case mask[0] && mask[1]:
				two.PrefPref += 1 / n
			case mask[0] && !mask[1]:
				two.PrefNonPref += 1 / n
			case !mask[0] && mask[1]:
				two.NonPrefPref += 1 / n
			default:
				two.NonPrefNonPref += 1 / n
			}
		}
	}
	return one, two
}

// HourlyNonPreferred computes the per-hour fraction of video flows
// served by non-preferred data centers (Figs 9 and 11). Flows outside
// any known cluster are ignored, mirroring the paper's Google-AS
// filter. It returns the per-bin fractions (only bins with traffic)
// plus the total and non-preferred hourly counts.
func HourlyNonPreferred(videoFlows []capture.FlowRecord, m *DCMap, preferred int, span time.Duration) (fracs []float64, all, nonPref *stats.TimeBins) {
	if span < time.Hour {
		span = time.Hour
	}
	all = stats.NewTimeBins(span, time.Hour)
	nonPref = stats.NewTimeBins(span, time.Hour)
	for _, r := range videoFlows {
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		all.Incr(r.Start)
		if dc != preferred {
			nonPref.Incr(r.Start)
		}
	}
	vals, mask := stats.Ratio(nonPref, all)
	for i, v := range vals {
		if mask[i] {
			fracs = append(fracs, v)
		}
	}
	return fracs, all, nonPref
}

// SubnetShare is one bar pair of Fig 12.
type SubnetShare struct {
	Name string
	// AllFrac is the subnet's share of all video flows.
	AllFrac float64
	// NonPrefFrac is the subnet's share of video flows that went to
	// non-preferred data centers.
	NonPrefFrac float64
}

// NamedPrefix labels a client subnet for Fig 12.
type NamedPrefix struct {
	Name   string
	Prefix ipnet.Prefix
}

// BySubnet attributes video flows and non-preferred video flows to
// client subnets (Fig 12).
func BySubnet(videoFlows []capture.FlowRecord, m *DCMap, preferred int, subnets []NamedPrefix) []SubnetShare {
	all := make([]float64, len(subnets))
	nonPref := make([]float64, len(subnets))
	var totAll, totNon float64
	for _, r := range videoFlows {
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		idx := -1
		for i, sn := range subnets {
			if sn.Prefix.Contains(r.Client) {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		all[idx]++
		totAll++
		if dc != preferred {
			nonPref[idx]++
			totNon++
		}
	}
	out := make([]SubnetShare, len(subnets))
	for i, sn := range subnets {
		out[i].Name = sn.Name
		if totAll > 0 {
			out[i].AllFrac = all[i] / totAll
		}
		if totNon > 0 {
			out[i].NonPrefFrac = nonPref[i] / totNon
		}
	}
	return out
}

// VideoNonPrefCount pairs a video with how many of its video flows
// were served from non-preferred data centers.
type VideoNonPrefCount struct {
	VideoID string
	Count   int
	Total   int
}

// NonPreferredPerVideo counts, per video, the video flows served from
// non-preferred DCs (Fig 13's distribution; its top entries feed
// Fig 14). Only videos with at least one non-preferred access are
// returned, sorted by decreasing count then VideoID.
func NonPreferredPerVideo(videoFlows []capture.FlowRecord, m *DCMap, preferred int) []VideoNonPrefCount {
	nonPref := make(map[string]int)
	total := make(map[string]int)
	for _, r := range videoFlows {
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		total[r.VideoID]++
		if dc != preferred {
			nonPref[r.VideoID]++
		}
	}
	out := make([]VideoNonPrefCount, 0, len(nonPref))
	for id, c := range nonPref {
		out = append(out, VideoNonPrefCount{VideoID: id, Count: c, Total: total[id]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].VideoID < out[j].VideoID
	})
	return out
}

// VideoHourlySeries returns the hourly request series of one video:
// all accesses and non-preferred accesses (one panel of Fig 14).
func VideoHourlySeries(videoFlows []capture.FlowRecord, m *DCMap, preferred int, videoID string, span time.Duration) (all, nonPref *stats.TimeBins) {
	if span < time.Hour {
		span = time.Hour
	}
	all = stats.NewTimeBins(span, time.Hour)
	nonPref = stats.NewTimeBins(span, time.Hour)
	for _, r := range videoFlows {
		if r.VideoID != videoID {
			continue
		}
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		all.Incr(r.Start)
		if dc != preferred {
			nonPref.Incr(r.Start)
		}
	}
	return all, nonPref
}

// ServerLoadStats returns, per hour, the average and maximum number of
// video flows handled by servers of the preferred data center
// (Fig 15).
func ServerLoadStats(videoFlows []capture.FlowRecord, m *DCMap, preferred int, span time.Duration) (avg, max []float64) {
	if span < time.Hour {
		span = time.Hour
	}
	nBins := int(span / time.Hour)
	if span%time.Hour != 0 {
		nBins++
	}
	perServer := make(map[ipnet.Addr][]float64)
	serverCount := len(m.Cluster(preferred).Servers)
	for _, r := range videoFlows {
		dc, ok := m.DCOf(r.Server)
		if !ok || dc != preferred {
			continue
		}
		bins, ok := perServer[r.Server]
		if !ok {
			bins = make([]float64, nBins)
			perServer[r.Server] = bins
		}
		idx := int(r.Start / time.Hour)
		if idx < 0 {
			idx = 0
		}
		if idx >= nBins {
			idx = nBins - 1
		}
		bins[idx]++
	}
	avg = make([]float64, nBins)
	max = make([]float64, nBins)
	for _, bins := range perServer {
		for i, v := range bins {
			avg[i] += v
			if v > max[i] {
				max[i] = v
			}
		}
	}
	if serverCount > 0 {
		for i := range avg {
			avg[i] /= float64(serverCount)
		}
	}
	return avg, max
}

// ServerSessionPattern classifies the sessions that touch a given
// server by their preferred pattern (Fig 16).
type ServerSessionPattern struct {
	AllPreferred  *stats.TimeBins // every flow to the preferred DC
	FirstPrefOnly *stats.TimeBins // first flow preferred, later ones not
	Others        *stats.TimeBins
}

// SessionsAtServer computes Fig 16 for one server address.
func SessionsAtServer(sessions []Session, m *DCMap, preferred int, server ipnet.Addr, span time.Duration) ServerSessionPattern {
	if span < time.Hour {
		span = time.Hour
	}
	out := ServerSessionPattern{
		AllPreferred:  stats.NewTimeBins(span, time.Hour),
		FirstPrefOnly: stats.NewTimeBins(span, time.Hour),
		Others:        stats.NewTimeBins(span, time.Hour),
	}
	for _, s := range sessions {
		touches := false
		for _, f := range s.Flows {
			if f.Server == server {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		mask := PrefMask(s, m, preferred)
		allPref := true
		for _, p := range mask {
			if !p {
				allPref = false
				break
			}
		}
		switch {
		case allPref:
			out.AllPreferred.Incr(s.Start())
		case mask[0] && len(mask) > 1:
			out.FirstPrefOnly.Incr(s.Start())
		default:
			out.Others.Incr(s.Start())
		}
	}
	return out
}
