package analysis

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/asdb"
	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// rec builds a flow record for tests.
func rec(client, server string, start, end time.Duration, bytes int64, video string) capture.FlowRecord {
	return capture.FlowRecord{
		Client:     ipnet.MustParseAddr(client),
		Server:     ipnet.MustParseAddr(server),
		Start:      start,
		End:        end,
		Bytes:      bytes,
		VideoID:    video,
		Resolution: "360p",
	}
}

func TestSplitFlows(t *testing.T) {
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 500, "v1"),
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 999, "v1"),
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 1000, "v1"),
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 5_000_000, "v1"),
	}
	video, control := SplitFlows(recs)
	if len(video) != 2 || len(control) != 2 {
		t.Fatalf("split = %d video, %d control; want 2,2", len(video), len(control))
	}
	for _, r := range control {
		if IsVideoFlow(r) {
			t.Error("control flow classified as video")
		}
	}
}

func TestSummarize(t *testing.T) {
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 100, "v1"),
		rec("10.0.0.2", "1.1.1.2", 0, time.Second, 200, "v2"),
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 300, "v3"),
	}
	s := Summarize(recs)
	if s.Flows != 3 || s.Bytes != 600 || s.Servers != 2 || s.Clients != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestSpan(t *testing.T) {
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, 3*time.Hour, 100, "v1"),
		rec("10.0.0.1", "1.1.1.1", time.Hour, 2*time.Hour, 100, "v1"),
	}
	if got := Span(recs); got != 3*time.Hour {
		t.Errorf("Span = %v", got)
	}
	if Span(nil) != 0 {
		t.Error("empty span must be 0")
	}
}

func TestSessionizeGroupsRedirectChains(t *testing.T) {
	// Control flow then video flow 200ms later: one session.
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, 50*time.Millisecond, 400, "v1"),
		rec("10.0.0.1", "2.2.2.2", 250*time.Millisecond, 60*time.Second, 5e6, "v1"),
	}
	sessions := Sessionize(recs, time.Second)
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	if len(sessions[0].Flows) != 2 {
		t.Fatalf("flows in session = %d, want 2", len(sessions[0].Flows))
	}
	if sessions[0].Flows[0].Server.String() != "1.1.1.1" {
		t.Error("flows not ordered by start")
	}
}

func TestSessionizeSplitsOnGap(t *testing.T) {
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 5e6, "v1"),
		rec("10.0.0.1", "1.1.1.1", 3*time.Second, 5*time.Second, 5e6, "v1"),
	}
	if got := len(Sessionize(recs, time.Second)); got != 2 {
		t.Errorf("T=1s sessions = %d, want 2", got)
	}
	if got := len(Sessionize(recs, 5*time.Second)); got != 1 {
		t.Errorf("T=5s sessions = %d, want 1", got)
	}
}

func TestSessionizeSeparatesClientsAndVideos(t *testing.T) {
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 5e6, "v1"),
		rec("10.0.0.2", "1.1.1.1", 0, time.Second, 5e6, "v1"),
		rec("10.0.0.1", "1.1.1.1", 0, time.Second, 5e6, "v2"),
	}
	if got := len(Sessionize(recs, time.Second)); got != 3 {
		t.Errorf("sessions = %d, want 3", got)
	}
}

func TestSessionizeOverlappingFlows(t *testing.T) {
	// A long flow swallowing a short one: still one session even
	// though the short flow ends long before the long one.
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, 100*time.Second, 5e6, "v1"),
		rec("10.0.0.1", "2.2.2.2", 10*time.Second, 12*time.Second, 5e6, "v1"),
		rec("10.0.0.1", "2.2.2.2", 99*time.Second, 120*time.Second, 5e6, "v1"),
	}
	if got := len(Sessionize(recs, time.Second)); got != 1 {
		t.Errorf("sessions = %d, want 1 (latest-end tracking)", got)
	}
}

func TestSessionizeMonotoneInT(t *testing.T) {
	// Property: a larger gap can only produce fewer or equal sessions.
	f := func(startsRaw []uint16) bool {
		var recs []capture.FlowRecord
		for _, s := range startsRaw {
			start := time.Duration(s) * 100 * time.Millisecond
			recs = append(recs, rec("10.0.0.1", "1.1.1.1", start, start+2*time.Second, 5e6, "v1"))
		}
		if len(recs) == 0 {
			return true
		}
		n1 := len(Sessionize(recs, time.Second))
		n2 := len(Sessionize(recs, 10*time.Second))
		n3 := len(Sessionize(recs, 100*time.Second))
		return n1 >= n2 && n2 >= n3 && n3 >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSessionizeConservesFlows(t *testing.T) {
	f := func(startsRaw []uint16, clients []bool) bool {
		var recs []capture.FlowRecord
		for i, s := range startsRaw {
			client := "10.0.0.1"
			if i < len(clients) && clients[i] {
				client = "10.0.0.2"
			}
			start := time.Duration(s) * time.Second
			recs = append(recs, rec(client, "1.1.1.1", start, start+time.Second, 5e6, "v1"))
		}
		total := 0
		for _, s := range Sessionize(recs, time.Second) {
			total += len(s.Flows)
		}
		return total == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFlowsPerSessionHistogram(t *testing.T) {
	sessions := []Session{
		{Flows: make([]capture.FlowRecord, 1)},
		{Flows: make([]capture.FlowRecord, 1)},
		{Flows: make([]capture.FlowRecord, 2)},
		{Flows: make([]capture.FlowRecord, 15)},
	}
	hist := FlowsPerSessionHistogram(sessions, 10)
	if hist[0] != 0.5 || hist[1] != 0.25 || hist[9] != 0.25 {
		t.Errorf("hist = %v", hist)
	}
	if len(FlowsPerSessionHistogram(nil, 10)) != 10 {
		t.Error("empty histogram must still have buckets")
	}
}

func TestBuildDCMapMergesSlash24(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
		ipnet.MustParseAddr("1.1.1.2"): geo.Paris.Point, // same /24, crazy estimate
		ipnet.MustParseAddr("2.2.2.1"): geo.NewYork.Point,
	}
	m := BuildDCMap(locs, 100)
	if m.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", m.NumClusters())
	}
	a, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	b, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.2"))
	if a != b {
		t.Error("same /24 must map to the same cluster")
	}
}

func TestBuildDCMapMergesNearbyCities(t *testing.T) {
	nearMilan := geo.Point{Lat: geo.Milan.Point.Lat + 0.3, Lon: geo.Milan.Point.Lon}
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
		ipnet.MustParseAddr("2.2.2.1"): nearMilan, // ~33 km away
		ipnet.MustParseAddr("3.3.3.1"): geo.NewYork.Point,
	}
	m := BuildDCMap(locs, 100)
	if m.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2 (Milan pair merged)", m.NumClusters())
	}
	a, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	b, _ := m.DCOf(ipnet.MustParseAddr("2.2.2.1"))
	if a != b {
		t.Error("nearby /24s must merge")
	}
}

func TestDCOfUnknown(t *testing.T) {
	m := BuildDCMap(map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
	}, 100)
	if _, ok := m.DCOf(ipnet.MustParseAddr("9.9.9.9")); ok {
		t.Error("unknown address must miss")
	}
	// An ungeolocated sibling in a known /24 aggregates with it.
	if _, ok := m.DCOf(ipnet.MustParseAddr("1.1.1.77")); !ok {
		// Only the /24 network address is indexed as fallback; the
		// sibling resolves through its Slash24.
		t.Skip("sibling fallback relies on /24 network key")
	}
}

func TestBreakdownByAS(t *testing.T) {
	reg := asdb.NewRegistry()
	reg.Register(ipnet.MustParsePrefix("1.0.0.0/8"), asdb.AS{Number: asdb.ASGoogle, Name: "Google"})
	reg.Register(ipnet.MustParsePrefix("2.0.0.0/8"), asdb.AS{Number: asdb.ASYouTubeEU, Name: "YT-EU"})
	reg.Register(ipnet.MustParsePrefix("3.0.0.0/8"), asdb.AS{Number: 5483, Name: "ISP"})
	reg.Register(ipnet.MustParsePrefix("4.0.0.0/8"), asdb.AS{Number: 1273, Name: "CW"})

	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, 1, 700, "v"),
		rec("10.0.0.1", "2.1.1.1", 0, 1, 200, "v"),
		rec("10.0.0.1", "3.1.1.1", 0, 1, 50, "v"),
		rec("10.0.0.1", "4.1.1.1", 0, 1, 50, "v"),
	}
	bd := BreakdownByAS(recs, reg, 5483)
	if bd.Google.ByteFrac != 0.7 || bd.YouTubeEU.ByteFrac != 0.2 ||
		bd.SameAS.ByteFrac != 0.05 || bd.Others.ByteFrac != 0.05 {
		t.Errorf("byte fractions: %+v", bd)
	}
	if bd.Google.ServerFrac != 0.25 {
		t.Errorf("server fraction: %+v", bd.Google)
	}
}

func TestGoogleFilter(t *testing.T) {
	reg := asdb.NewRegistry()
	reg.Register(ipnet.MustParsePrefix("1.0.0.0/8"), asdb.AS{Number: asdb.ASGoogle, Name: "Google"})
	reg.Register(ipnet.MustParsePrefix("2.0.0.0/8"), asdb.AS{Number: asdb.ASYouTubeEU, Name: "YT-EU"})
	reg.Register(ipnet.MustParsePrefix("3.0.0.0/8"), asdb.AS{Number: 5483, Name: "ISP"})

	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, 1, 700, "v"), // google: keep
		rec("10.0.0.1", "2.1.1.1", 0, 1, 200, "v"), // legacy: drop
		rec("10.0.0.1", "3.1.1.1", 0, 1, 50, "v"),  // same AS: keep
		rec("10.0.0.1", "9.1.1.1", 0, 1, 50, "v"),  // unrouted: drop
	}
	got := GoogleFilter(recs, reg, 5483)
	if len(got) != 2 {
		t.Fatalf("filtered = %d, want 2", len(got))
	}
}

func TestCountServersByContinent(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.NewYork.Point,
		ipnet.MustParseAddr("1.1.2.1"): geo.Milan.Point,
		ipnet.MustParseAddr("1.1.3.1"): geo.Tokyo.Point,
	}
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, 1, 1, "v"),
		rec("10.0.0.1", "1.1.1.1", 0, 1, 1, "v"), // duplicate server
		rec("10.0.0.1", "1.1.2.1", 0, 1, 1, "v"),
		rec("10.0.0.1", "1.1.3.1", 0, 1, 1, "v"),
		rec("10.0.0.1", "8.8.8.8", 0, 1, 1, "v"), // no location
	}
	c := CountServersByContinent(recs, locs)
	if c.NorthAmerica != 1 || c.Europe != 1 || c.Others != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestFindPreferredDominant(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
		ipnet.MustParseAddr("2.2.2.1"): geo.Frankfurt.Point,
	}
	m := BuildDCMap(locs, 100)
	var video []capture.FlowRecord
	for i := 0; i < 9; i++ {
		video = append(video, rec("10.0.0.1", "1.1.1.1", 0, 1, 1e6, "v"))
	}
	video = append(video, rec("10.0.0.1", "2.2.2.1", 0, 1, 1e6, "v"))
	rtts := map[ipnet.Addr]float64{
		ipnet.MustParseAddr("1.1.1.1"): 3,
		ipnet.MustParseAddr("2.2.2.1"): 9,
	}
	res := FindPreferred(video, m, rtts, geo.Turin.Point)
	milan, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	if res.Preferred != milan {
		t.Errorf("preferred = %d, want Milan cluster %d", res.Preferred, milan)
	}
	if res.PreferredByteShare != 0.9 {
		t.Errorf("share = %f", res.PreferredByteShare)
	}
	if !res.PreferredIsMinRTT {
		t.Error("Milan is min-RTT, flag must be true")
	}
}

func TestFindPreferredEU2Rule(t *testing.T) {
	// No majority, two DCs dominate, the smaller-RTT one wins even
	// with fewer bytes (the paper's EU2 labelling).
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Budapest.Point,
		ipnet.MustParseAddr("2.2.2.1"): geo.Vienna.Point,
	}
	m := BuildDCMap(locs, 100)
	var video []capture.FlowRecord
	for i := 0; i < 40; i++ {
		video = append(video, rec("10.0.0.1", "1.1.1.1", 0, 1, 1e6, "v"))
	}
	for i := 0; i < 55; i++ {
		video = append(video, rec("10.0.0.1", "2.2.2.1", 0, 1, 1e6, "v"))
	}
	rtts := map[ipnet.Addr]float64{
		ipnet.MustParseAddr("1.1.1.1"): 2,
		ipnet.MustParseAddr("2.2.2.1"): 6,
	}
	res := FindPreferred(video, m, rtts, geo.Budapest.Point)
	budapest, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	if res.Preferred != budapest {
		t.Errorf("preferred = %d, want Budapest (min-RTT of dominant pair)", res.Preferred)
	}
}

func TestFindPreferredEmpty(t *testing.T) {
	m := BuildDCMap(map[ipnet.Addr]geo.Point{}, 100)
	res := FindPreferred(nil, m, nil, geo.Turin.Point)
	if res.Preferred != -1 {
		t.Errorf("preferred of empty trace = %d, want -1", res.Preferred)
	}
}

func TestCumulativeByteCurve(t *testing.T) {
	perDC := []DCTraffic{
		{Cluster: 0, Bytes: 100, MinRTTMs: 30},
		{Cluster: 1, Bytes: 800, MinRTTMs: 5},
		{Cluster: 2, Bytes: 100, MinRTTMs: 90},
	}
	curve := CumulativeByteCurve(perDC, func(d DCTraffic) float64 { return d.MinRTTMs })
	if len(curve) != 3 {
		t.Fatalf("curve points = %d", len(curve))
	}
	if curve[0].X != 5 || curve[0].F != 0.8 {
		t.Errorf("first point = %+v", curve[0])
	}
	if curve[2].F != 1.0 {
		t.Errorf("curve must end at 1, got %f", curve[2].F)
	}
}

func TestBreakdownSessionsPatterns(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,  // preferred
		ipnet.MustParseAddr("2.2.2.1"): geo.Madrid.Point, // non-preferred
	}
	m := BuildDCMap(locs, 100)
	pref, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	sessions := []Session{
		{Flows: []capture.FlowRecord{rec("10.0.0.1", "1.1.1.1", 0, 1, 5e6, "a")}},
		{Flows: []capture.FlowRecord{rec("10.0.0.1", "2.2.2.1", 0, 1, 5e6, "b")}},
		{Flows: []capture.FlowRecord{
			rec("10.0.0.1", "1.1.1.1", 0, 1, 400, "c"),
			rec("10.0.0.1", "2.2.2.1", 2, 3, 5e6, "c"),
		}},
		{Flows: []capture.FlowRecord{
			rec("10.0.0.1", "1.1.1.1", 0, 1, 400, "d"),
			rec("10.0.0.1", "1.1.1.1", 2, 3, 5e6, "d"),
		}},
	}
	one, two := BreakdownSessions(sessions, m, pref)
	if one.Preferred != 0.25 || one.NonPreferred != 0.25 {
		t.Errorf("single breakdown = %+v", one)
	}
	if two.PrefNonPref != 0.25 || two.PrefPref != 0.25 || two.NonPrefPref != 0 || two.NonPrefNonPref != 0 {
		t.Errorf("two-flow breakdown = %+v", two)
	}
}

func TestHourlyNonPreferred(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
		ipnet.MustParseAddr("2.2.2.1"): geo.Madrid.Point,
	}
	m := BuildDCMap(locs, 100)
	pref, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	flows := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 10*time.Minute, 11*time.Minute, 5e6, "a"),
		rec("10.0.0.1", "2.2.2.1", 20*time.Minute, 21*time.Minute, 5e6, "b"),
		rec("10.0.0.1", "1.1.1.1", 70*time.Minute, 71*time.Minute, 5e6, "c"),
	}
	fracs, all, nonPref := HourlyNonPreferred(flows, m, pref, 2*time.Hour)
	if len(fracs) != 2 {
		t.Fatalf("fracs = %v", fracs)
	}
	if fracs[0] != 0.5 || fracs[1] != 0 {
		t.Errorf("fracs = %v", fracs)
	}
	if all.Total() != 3 || nonPref.Total() != 1 {
		t.Errorf("bins: all=%v nonpref=%v", all.Total(), nonPref.Total())
	}
}

func TestBySubnet(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
		ipnet.MustParseAddr("2.2.2.1"): geo.Madrid.Point,
	}
	m := BuildDCMap(locs, 100)
	pref, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	subnets := []NamedPrefix{
		{Name: "Net-1", Prefix: ipnet.MustParsePrefix("10.0.0.0/24")},
		{Name: "Net-2", Prefix: ipnet.MustParsePrefix("10.0.1.0/24")},
	}
	flows := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 0, 1, 5e6, "a"),
		rec("10.0.0.2", "1.1.1.1", 0, 1, 5e6, "b"),
		rec("10.0.0.3", "2.2.2.1", 0, 1, 5e6, "c"),
		rec("10.0.1.1", "2.2.2.1", 0, 1, 5e6, "d"),
	}
	shares := BySubnet(flows, m, pref, subnets)
	if shares[0].AllFrac != 0.75 || shares[1].AllFrac != 0.25 {
		t.Errorf("all shares: %+v", shares)
	}
	if shares[0].NonPrefFrac != 0.5 || shares[1].NonPrefFrac != 0.5 {
		t.Errorf("non-pref shares: %+v", shares)
	}
}

func TestNonPreferredPerVideo(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
		ipnet.MustParseAddr("2.2.2.1"): geo.Madrid.Point,
	}
	m := BuildDCMap(locs, 100)
	pref, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	flows := []capture.FlowRecord{
		rec("10.0.0.1", "2.2.2.1", 0, 1, 5e6, "hot"),
		rec("10.0.0.1", "2.2.2.1", 0, 1, 5e6, "hot"),
		rec("10.0.0.1", "2.2.2.1", 0, 1, 5e6, "once"),
		rec("10.0.0.1", "1.1.1.1", 0, 1, 5e6, "never"),
	}
	counts := NonPreferredPerVideo(flows, m, pref)
	if len(counts) != 2 {
		t.Fatalf("counts = %+v", counts)
	}
	if counts[0].VideoID != "hot" || counts[0].Count != 2 {
		t.Errorf("top = %+v", counts[0])
	}
	if counts[1].VideoID != "once" || counts[1].Count != 1 {
		t.Errorf("second = %+v", counts[1])
	}
}

func TestServerLoadStats(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
		ipnet.MustParseAddr("1.1.1.2"): geo.Milan.Point,
	}
	m := BuildDCMap(locs, 100)
	pref, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	var flows []capture.FlowRecord
	for i := 0; i < 10; i++ {
		flows = append(flows, rec("10.0.0.1", "1.1.1.1", 0, 1, 5e6, "a"))
	}
	flows = append(flows, rec("10.0.0.1", "1.1.1.2", 0, 1, 5e6, "b"))
	avg, max := ServerLoadStats(flows, m, pref, time.Hour)
	if max[0] != 10 {
		t.Errorf("max = %v", max)
	}
	if avg[0] != 5.5 {
		t.Errorf("avg = %v (2 servers, 11 flows)", avg)
	}
}

func TestSessionsAtServer(t *testing.T) {
	locs := map[ipnet.Addr]geo.Point{
		ipnet.MustParseAddr("1.1.1.1"): geo.Milan.Point,
		ipnet.MustParseAddr("2.2.2.1"): geo.Madrid.Point,
	}
	m := BuildDCMap(locs, 100)
	pref, _ := m.DCOf(ipnet.MustParseAddr("1.1.1.1"))
	target := ipnet.MustParseAddr("1.1.1.1")
	sessions := []Session{
		// All-preferred at target.
		{Flows: []capture.FlowRecord{rec("10.0.0.1", "1.1.1.1", 0, 1, 5e6, "a")}},
		// First preferred (target) then redirected.
		{Flows: []capture.FlowRecord{
			rec("10.0.0.2", "1.1.1.1", 0, 1, 400, "b"),
			rec("10.0.0.2", "2.2.2.1", 2, 3, 5e6, "b"),
		}},
		// Does not touch the target at all.
		{Flows: []capture.FlowRecord{rec("10.0.0.3", "2.2.2.1", 0, 1, 5e6, "c")}},
	}
	p := SessionsAtServer(sessions, m, pref, target, time.Hour)
	if p.AllPreferred.Total() != 1 || p.FirstPrefOnly.Total() != 1 || p.Others.Total() != 0 {
		t.Errorf("pattern totals = %v %v %v",
			p.AllPreferred.Total(), p.FirstPrefOnly.Total(), p.Others.Total())
	}
}
