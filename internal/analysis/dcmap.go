package analysis

import (
	"sort"

	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// DCMap clusters the server addresses seen in traces into inferred
// data centers, following the paper's rule (§V): servers are grouped
// by geolocated city, and servers in the same /24 always land in the
// same data center.
type DCMap struct {
	clusters []Cluster
	byAddr   map[ipnet.Addr]int
}

// Cluster is one inferred data center.
type Cluster struct {
	// Centroid is the mean of the member location estimates.
	Centroid geo.Point
	// Servers lists the member addresses.
	Servers []ipnet.Addr
}

// BuildDCMap clusters server locations. mergeKm is the radius within
// which two /24 groups count as the same city (the paper's CBG median
// confidence radius is ~41 km; 100 km merges estimates of co-located
// servers without merging distinct metros).
func BuildDCMap(locs map[ipnet.Addr]geo.Point, mergeKm float64) *DCMap {
	// Step 1: group by /24, averaging member estimates.
	type slashGroup struct {
		prefix  ipnet.Addr
		members []ipnet.Addr
		center  geo.Point
	}
	byPrefix := make(map[ipnet.Addr]*slashGroup)
	for addr := range locs {
		p := addr.Slash24()
		g, ok := byPrefix[p]
		if !ok {
			g = &slashGroup{prefix: p}
			byPrefix[p] = g
		}
		g.members = append(g.members, addr)
	}
	groups := make([]*slashGroup, 0, len(byPrefix))
	for _, g := range byPrefix {
		var lat, lon float64
		// Sort members for deterministic centroids.
		sort.Slice(g.members, func(i, j int) bool { return g.members[i] < g.members[j] })
		for _, a := range g.members {
			lat += locs[a].Lat
			lon += locs[a].Lon
		}
		n := float64(len(g.members))
		g.center = geo.Point{Lat: lat / n, Lon: lon / n}
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].prefix < groups[j].prefix })

	// Step 2: agglomerate /24 groups whose centers fall within
	// mergeKm, via union-find.
	parent := make([]int, len(groups))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			if geo.Distance(groups[i].center, groups[j].center) <= mergeKm {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}

	// Step 3: materialize clusters in deterministic order.
	rootIdx := make(map[int]int)
	m := &DCMap{byAddr: make(map[ipnet.Addr]int, len(locs))}
	for i, g := range groups {
		root := find(i)
		ci, ok := rootIdx[root]
		if !ok {
			ci = len(m.clusters)
			rootIdx[root] = ci
			m.clusters = append(m.clusters, Cluster{})
		}
		c := &m.clusters[ci]
		c.Servers = append(c.Servers, g.members...)
		for _, a := range g.members {
			m.byAddr[a] = ci
		}
	}
	for i := range m.clusters {
		var lat, lon float64
		for _, a := range m.clusters[i].Servers {
			lat += locs[a].Lat
			lon += locs[a].Lon
		}
		n := float64(len(m.clusters[i].Servers))
		m.clusters[i].Centroid = geo.Point{Lat: lat / n, Lon: lon / n}
	}
	return m
}

// NumClusters returns the number of inferred data centers.
func (m *DCMap) NumClusters() int { return len(m.clusters) }

// Cluster returns cluster i.
func (m *DCMap) Cluster(i int) Cluster { return m.clusters[i] }

// DCOf maps a server address to its cluster. Addresses that were not
// geolocated (e.g. filtered out as non-Google) return ok=false.
func (m *DCMap) DCOf(addr ipnet.Addr) (int, bool) {
	// Exact address first, then its /24 (an ungeolocated server in a
	// known /24 still aggregates with its prefix).
	if i, ok := m.byAddr[addr]; ok {
		return i, true
	}
	i, ok := m.byAddr[addr.Slash24()]
	return i, ok
}

// Centroid returns the centroid of cluster i.
func (m *DCMap) Centroid(i int) geo.Point { return m.clusters[i].Centroid }
