package analysis

import (
	"sort"

	"github.com/ytcdn-sim/ytcdn/internal/asdb"
	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// ASShare is one row group of Table II: the share of distinct servers
// and of bytes attributed to an AS bucket.
type ASShare struct {
	ServerFrac float64
	ByteFrac   float64
}

// ASBreakdown is the Table II accounting for one dataset.
type ASBreakdown struct {
	Google     ASShare
	YouTubeEU  ASShare
	SameAS     ASShare
	Others     ASShare
	TotalSrv   int
	TotalBytes int64
}

// BreakdownByAS attributes a trace's servers and bytes to the paper's
// four AS buckets via whois lookups. clientAS is the AS of the
// monitored network (for the "Same AS" bucket).
func BreakdownByAS(recs []capture.FlowRecord, reg *asdb.Registry, clientAS asdb.ASN) ASBreakdown {
	bd, _ := BreakdownByASIter(capture.IterSlice(recs), reg, clientAS)
	return bd
}

// BreakdownByASIter is the streaming BreakdownByAS: one pass over the
// iterator, memory bounded by the distinct server set.
func BreakdownByASIter(it capture.Iterator, reg *asdb.Registry, clientAS asdb.ASN) (ASBreakdown, error) {
	type agg struct {
		bytes   int64
		servers map[uint32]struct{}
	}
	buckets := map[string]*agg{
		"google": {servers: map[uint32]struct{}{}},
		"yteu":   {servers: map[uint32]struct{}{}},
		"same":   {servers: map[uint32]struct{}{}},
		"other":  {servers: map[uint32]struct{}{}},
	}
	var total agg
	total.servers = map[uint32]struct{}{}
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		as, ok := reg.Lookup(r.Server)
		key := "other"
		if ok {
			switch {
			case as.Number == asdb.ASGoogle:
				key = "google"
			case as.Number == asdb.ASYouTubeEU:
				key = "yteu"
			case as.Number == clientAS:
				key = "same"
			}
		}
		b := buckets[key]
		b.bytes += r.Bytes
		b.servers[uint32(r.Server)] = struct{}{}
		total.bytes += r.Bytes
		total.servers[uint32(r.Server)] = struct{}{}
	}
	share := func(b *agg) ASShare {
		if len(total.servers) == 0 || total.bytes == 0 {
			return ASShare{}
		}
		return ASShare{
			ServerFrac: float64(len(b.servers)) / float64(len(total.servers)),
			ByteFrac:   float64(b.bytes) / float64(total.bytes),
		}
	}
	return ASBreakdown{
		Google:     share(buckets["google"]),
		YouTubeEU:  share(buckets["yteu"]),
		SameAS:     share(buckets["same"]),
		Others:     share(buckets["other"]),
		TotalSrv:   len(total.servers),
		TotalBytes: total.bytes,
	}, it.Err()
}

// GoogleFilter returns the subset of a trace served from the Google AS
// or from the monitored network's own AS (the paper's §IV filtering:
// "we only focus on accesses to video servers located in the Google
// AS; for the EU2 dataset, we include accesses to the data center
// located inside the corresponding ISP").
func GoogleFilter(recs []capture.FlowRecord, reg *asdb.Registry, clientAS asdb.ASN) []capture.FlowRecord {
	out, _ := GoogleFilterIter(capture.IterSlice(recs), reg, clientAS)
	return out
}

// GoogleFilterIter is the materializing GoogleFilter over a stream: it
// retains only the filtered subset. Consumers that can aggregate on the
// fly should wrap the stream with GoogleIter instead and keep nothing.
func GoogleFilterIter(it capture.Iterator, reg *asdb.Registry, clientAS asdb.ASN) ([]capture.FlowRecord, error) {
	return capture.Collect(GoogleIter(it, reg, clientAS))
}

// GoogleIter applies the §IV Google filter lazily: the returned
// iterator yields exactly the records GoogleFilter would keep, one
// upstream record at a time, so nothing is materialized.
func GoogleIter(it capture.Iterator, reg *asdb.Registry, clientAS asdb.ASN) capture.Iterator {
	return capture.FilterIter(it, func(r capture.FlowRecord) bool {
		as, ok := reg.Lookup(r.Server)
		return ok && (as.Number == asdb.ASGoogle || as.Number == clientAS)
	})
}

// VideoIter narrows a stream to video flows (the ≥1000-byte side of
// the paper's classification cut), lazily.
func VideoIter(it capture.Iterator) capture.Iterator {
	return capture.FilterIter(it, IsVideoFlow)
}

// ContinentCounts is one Table III row: distinct servers per continent
// bucket.
type ContinentCounts struct {
	NorthAmerica int
	Europe       int
	Others       int
}

// CountServersByContinent classifies each distinct server address by
// its estimated location (Table III).
func CountServersByContinent(recs []capture.FlowRecord, locs map[ipnet.Addr]geo.Point) ContinentCounts {
	seen := make(map[ipnet.Addr]struct{})
	var addrs []ipnet.Addr
	for _, r := range recs {
		if _, ok := seen[r.Server]; ok {
			continue
		}
		seen[r.Server] = struct{}{}
		addrs = append(addrs, r.Server)
	}
	return CountAddrsByContinent(addrs, locs)
}

// CountAddrsByContinent is CountServersByContinent over an
// already-deduplicated address set — the shape the streaming harness
// caches (distinct servers are bounded; the trace is not).
func CountAddrsByContinent(addrs []ipnet.Addr, locs map[ipnet.Addr]geo.Point) ContinentCounts {
	var out ContinentCounts
	for _, a := range addrs {
		loc, ok := locs[a]
		if !ok {
			continue
		}
		switch geo.ContinentOf(loc) {
		case geo.NorthAmerica:
			out.NorthAmerica++
		case geo.Europe:
			out.Europe++
		default:
			out.Others++
		}
	}
	return out
}

// DCTraffic describes one inferred data center's traffic from a
// vantage point, with its active-measurement annotations.
type DCTraffic struct {
	Cluster    int
	Bytes      int64
	VideoFlows int
	// MinRTT is the smallest ping RTT to any member server, in
	// milliseconds (Fig 7).
	MinRTTMs float64
	// DistanceKm is the great-circle distance from the vantage point
	// to the cluster centroid (Fig 8).
	DistanceKm float64
}

// PreferredResult is the per-dataset outcome of the paper's §VI-B
// preferred-data-center analysis.
type PreferredResult struct {
	// PerDC is sorted by decreasing bytes.
	PerDC []DCTraffic
	// Preferred is the cluster index serving the most bytes.
	Preferred int
	// PreferredByteShare is its share of total bytes.
	PreferredByteShare float64
	// PreferredIsMinRTT reports whether the preferred DC is also the
	// lowest-RTT one.
	PreferredIsMinRTT bool
}

// FindPreferred identifies the preferred data center of a trace from
// byte volumes, annotating each cluster with min RTT (from rttMs, in
// milliseconds per server address) and distance from vpLoc.
func FindPreferred(videoFlows []capture.FlowRecord, m *DCMap, rttMs map[ipnet.Addr]float64, vpLoc geo.Point) PreferredResult {
	res, _ := FindPreferredIter(capture.IterSlice(videoFlows), m, rttMs, vpLoc)
	return res
}

// FindPreferredIter is the streaming FindPreferred: the per-DC byte
// and flow accounting consumes the iterator in one pass with memory
// bounded by the cluster count.
func FindPreferredIter(it capture.Iterator, m *DCMap, rttMs map[ipnet.Addr]float64, vpLoc geo.Point) (PreferredResult, error) {
	bytes := make([]int64, m.NumClusters())
	flows := make([]int, m.NumClusters())
	var total int64
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		dc, ok := m.DCOf(r.Server)
		if !ok {
			continue
		}
		bytes[dc] += r.Bytes
		flows[dc]++
		total += r.Bytes
	}
	res := PreferredResult{}
	for i := 0; i < m.NumClusters(); i++ {
		if flows[i] == 0 {
			continue
		}
		minRTT := -1.0
		for _, srv := range m.Cluster(i).Servers {
			if v, ok := rttMs[srv]; ok && (minRTT < 0 || v < minRTT) {
				minRTT = v
			}
		}
		res.PerDC = append(res.PerDC, DCTraffic{
			Cluster:    i,
			Bytes:      bytes[i],
			VideoFlows: flows[i],
			MinRTTMs:   minRTT,
			DistanceKm: geo.Distance(vpLoc, m.Centroid(i)),
		})
	}
	sort.Slice(res.PerDC, func(i, j int) bool { return res.PerDC[i].Bytes > res.PerDC[j].Bytes })
	if len(res.PerDC) == 0 {
		res.Preferred = -1
		return res, it.Err()
	}
	// The paper's rule (§VI-B): normally the dominant data center is
	// the preferred one; when no single DC dominates but two together
	// do (the EU2 case, >95% from two DCs), the one with the smallest
	// RTT is labelled preferred.
	prefIdx := 0
	if total > 0 && len(res.PerDC) >= 2 {
		top1 := float64(res.PerDC[0].Bytes) / float64(total)
		top2 := float64(res.PerDC[0].Bytes+res.PerDC[1].Bytes) / float64(total)
		if top1 < 0.6 && top2 > 0.8 &&
			res.PerDC[1].MinRTTMs >= 0 && res.PerDC[0].MinRTTMs >= 0 &&
			res.PerDC[1].MinRTTMs < res.PerDC[0].MinRTTMs {
			prefIdx = 1
		}
	}
	res.Preferred = res.PerDC[prefIdx].Cluster
	if total > 0 {
		res.PreferredByteShare = float64(res.PerDC[prefIdx].Bytes) / float64(total)
	}
	res.PreferredIsMinRTT = true
	for i, d := range res.PerDC {
		if i == prefIdx {
			continue
		}
		if d.MinRTTMs >= 0 && res.PerDC[prefIdx].MinRTTMs >= 0 && d.MinRTTMs < res.PerDC[prefIdx].MinRTTMs {
			res.PreferredIsMinRTT = false
		}
	}
	return res, it.Err()
}

// CumulativeByteCurve returns (x, cumulative byte fraction) points
// with clusters ordered by the given key (RTT for Fig 7, distance for
// Fig 8).
func CumulativeByteCurve(perDC []DCTraffic, key func(DCTraffic) float64) []struct{ X, F float64 } {
	sorted := make([]DCTraffic, len(perDC))
	copy(sorted, perDC)
	sort.Slice(sorted, func(i, j int) bool { return key(sorted[i]) < key(sorted[j]) })
	var total int64
	for _, d := range sorted {
		total += d.Bytes
	}
	out := make([]struct{ X, F float64 }, 0, len(sorted))
	var acc int64
	for _, d := range sorted {
		acc += d.Bytes
		out = append(out, struct{ X, F float64 }{X: key(d), F: float64(acc) / float64(total)})
	}
	return out
}
