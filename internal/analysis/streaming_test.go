package analysis

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/asdb"
	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
)

// testRegistry builds a small AS registry for streaming tests.
func testRegistry(t *testing.T) *asdb.Registry {
	t.Helper()
	reg := asdb.NewRegistry()
	reg.Register(ipnet.MustParsePrefix("1.0.0.0/8"), asdb.AS{Number: asdb.ASGoogle, Name: "Google"})
	reg.Register(ipnet.MustParsePrefix("3.0.0.0/8"), asdb.AS{Number: 7018, Name: "ISP"})
	return reg
}

// randomTrace builds a deterministic pseudo-random trace with enough
// key collisions to exercise session grouping.
func randomTrace(seed int64, n int) []capture.FlowRecord {
	g := rand.New(rand.NewSource(seed))
	out := make([]capture.FlowRecord, n)
	for i := range out {
		start := time.Duration(g.Intn(100_000)) * time.Millisecond
		out[i] = capture.FlowRecord{
			Client:     ipnet.Addr(0x0A000000 + uint32(g.Intn(20))),
			Server:     ipnet.Addr(0xADC20000 + uint32(g.Intn(10))),
			Start:      start,
			End:        start + time.Duration(1+g.Intn(8000))*time.Millisecond,
			Bytes:      int64(g.Intn(2_000_000)),
			VideoID:    fmt.Sprintf("v%d", g.Intn(15)),
			Resolution: "360p",
		}
	}
	return out
}

// TestSummarizeIterMatchesSlice pins the delegation: the streaming and
// slice paths are one implementation.
func TestSummarizeIterMatchesSlice(t *testing.T) {
	recs := randomTrace(1, 500)
	want := Summarize(recs)
	got, err := SummarizeIter(capture.IterSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("SummarizeIter = %+v, want %+v", got, want)
	}
}

// failingIter yields a few records then fails, to check error
// propagation through the streaming aggregations.
type failingIter struct {
	recs []capture.FlowRecord
	i    int
}

var errStream = errors.New("stream broke")

func (f *failingIter) Next() (capture.FlowRecord, bool) {
	if f.i >= len(f.recs) {
		return capture.FlowRecord{}, false
	}
	r := f.recs[f.i]
	f.i++
	return r, true
}

func (f *failingIter) Err() error { return errStream }

func TestStreamingAggregationsPropagateErrors(t *testing.T) {
	recs := randomTrace(2, 10)
	if _, err := SummarizeIter(&failingIter{recs: recs}); !errors.Is(err, errStream) {
		t.Errorf("SummarizeIter err = %v", err)
	}
	if _, err := GoogleFilterIter(&failingIter{recs: recs}, testRegistry(t), 7018); !errors.Is(err, errStream) {
		t.Errorf("GoogleFilterIter err = %v", err)
	}
	if _, err := SessionizeIter(&failingIter{recs: recs}, time.Second); !errors.Is(err, errStream) {
		t.Errorf("SessionizeIter err = %v", err)
	}
	if err := StreamSessions(sortedIter(recs), time.Second, func(Session) {}); err != nil {
		t.Errorf("StreamSessions over clean input: %v", err)
	}
}

// sortedIter yields recs in start order (StreamSessions' precondition).
func sortedIter(recs []capture.FlowRecord) capture.Iterator {
	sorted := make([]capture.FlowRecord, len(recs))
	copy(sorted, recs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	return capture.IterSlice(sorted)
}

// canonicalize sorts sessions (and nothing inside them) the way
// Sessionize orders its result, so partitions can be compared.
func canonicalize(sessions []Session) []Session {
	out := make([]Session, len(sessions))
	copy(out, sessions)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() < out[j].Start()
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].VideoID < out[j].VideoID
	})
	return out
}

// TestStreamSessionsMatchesSessionize feeds the same trace through the
// batch sessionizer and the bounded-memory streaming one and requires
// the identical session partition.
func TestStreamSessionsMatchesSessionize(t *testing.T) {
	for _, gap := range []time.Duration{time.Second, 5 * time.Second, time.Minute} {
		recs := randomTrace(3, 2000)
		want := Sessionize(recs, gap)

		var got []Session
		if err := StreamSessions(sortedIter(recs), gap, func(s Session) { got = append(got, s) }); err != nil {
			t.Fatal(err)
		}
		got = canonicalize(got)
		if len(got) != len(want) {
			t.Fatalf("gap %v: %d sessions streamed, want %d", gap, len(got), len(want))
		}
		for i := range want {
			if got[i].Client != want[i].Client || got[i].VideoID != want[i].VideoID ||
				len(got[i].Flows) != len(want[i].Flows) {
				t.Fatalf("gap %v session %d: got (%v,%s,%d flows) want (%v,%s,%d flows)",
					gap, i, got[i].Client, got[i].VideoID, len(got[i].Flows),
					want[i].Client, want[i].VideoID, len(want[i].Flows))
			}
			for j := range want[i].Flows {
				if got[i].Flows[j] != want[i].Flows[j] {
					t.Fatalf("gap %v session %d flow %d differs", gap, i, j)
				}
			}
		}
	}
}

func TestStreamSessionsRejectsUnsortedInput(t *testing.T) {
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.1.1", 10*time.Second, 11*time.Second, 5000, "v1"),
		rec("10.0.0.1", "1.1.1.1", 2*time.Second, 3*time.Second, 5000, "v1"),
	}
	err := StreamSessions(capture.IterSlice(recs), time.Second, func(Session) {})
	if err == nil {
		t.Fatal("unsorted input must be rejected")
	}
}

// TestStreamSessionsBoundedOpenSet checks the memory property: with
// short sessions spread over a long window, the open-session set stays
// tiny even though the trace has many sessions in total.
func TestStreamSessionsBoundedOpenSet(t *testing.T) {
	var recs []capture.FlowRecord
	for i := 0; i < 5000; i++ {
		start := time.Duration(i) * 10 * time.Second
		recs = append(recs, capture.FlowRecord{
			Client:  ipnet.Addr(0x0A000000 + uint32(i%7)),
			Start:   start,
			End:     start + time.Second,
			Bytes:   5000,
			VideoID: fmt.Sprintf("v%d", i),
		})
	}
	emitted := 0
	if err := StreamSessions(capture.IterSlice(recs), time.Second, func(Session) {
		emitted++
	}); err != nil {
		t.Fatal(err)
	}
	if emitted != 5000 {
		t.Fatalf("emitted %d sessions, want 5000", emitted)
	}
}

func TestGoogleFilterIterMatchesSlice(t *testing.T) {
	reg := testRegistry(t)
	recs := []capture.FlowRecord{
		rec("10.0.0.1", "1.1.0.1", 0, time.Second, 5000, "v1"), // Google: keep
		rec("10.0.0.1", "8.8.8.8", 0, time.Second, 5000, "v2"), // unrouted: drop
		rec("10.0.0.1", "3.2.0.1", 0, time.Second, 5000, "v3"), // same AS: keep
	}
	want := GoogleFilter(recs, reg, 7018)
	got, err := GoogleFilterIter(capture.IterSlice(recs), reg, 7018)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got) != len(want) {
		t.Fatalf("filter: %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d differs", i)
		}
	}
}
