// Package analysis is the paper's measurement pipeline. It consumes
// only what the authors had: Tstat flow records, active RTT
// measurements, whois lookups, and geolocation estimates. It never
// touches simulator ground truth, so every number it produces is an
// inference that the integration tests then compare against the
// configured mechanisms.
package analysis

import (
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
)

// VideoFlowThreshold is the paper's flow-classification cut: flows
// smaller than 1000 bytes are control flows (signalling, redirects),
// the rest are video flows (§VI-A, Fig 4).
const VideoFlowThreshold int64 = 1000

// IsVideoFlow applies the size heuristic to one record.
func IsVideoFlow(rec capture.FlowRecord) bool {
	return rec.Bytes >= VideoFlowThreshold
}

// SplitFlows partitions a trace into video and control flows.
func SplitFlows(recs []capture.FlowRecord) (video, control []capture.FlowRecord) {
	for _, r := range recs {
		if IsVideoFlow(r) {
			video = append(video, r)
		} else {
			control = append(control, r)
		}
	}
	return video, control
}

// TraceSummary aggregates a dataset the way Table I reports it.
type TraceSummary struct {
	Flows   int
	Bytes   int64
	Servers int
	Clients int
}

// Summarize computes the Table I row of a trace.
func Summarize(recs []capture.FlowRecord) TraceSummary {
	s, _ := SummarizeIter(capture.IterSlice(recs))
	return s
}

// SummarizeIter is the streaming Summarize: it consumes the iterator
// in one pass with memory bounded by the distinct address sets, never
// materializing the trace.
func SummarizeIter(it capture.Iterator) (TraceSummary, error) {
	servers := make(map[uint32]struct{})
	clients := make(map[uint32]struct{})
	var s TraceSummary
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		s.Flows++
		s.Bytes += r.Bytes
		servers[uint32(r.Server)] = struct{}{}
		clients[uint32(r.Client)] = struct{}{}
	}
	s.Servers = len(servers)
	s.Clients = len(clients)
	return s, it.Err()
}

// Span returns the time extent of a trace (start of first flow to end
// of last), which the per-hour figures bin over.
func Span(recs []capture.FlowRecord) time.Duration {
	var max time.Duration
	for _, r := range recs {
		if r.End > max {
			max = r.End
		}
	}
	return max
}
