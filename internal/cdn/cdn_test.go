package cdn

import (
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

type rig struct {
	w    *topology.World
	cat  *content.Catalog
	sel  *core.Selector
	eng  *des.Engine
	sink *capture.MemSink
	sim  *Simulator
}

func newRig(t *testing.T, cfg Config) *rig {
	return newRigSpan(t, cfg, core.DefaultConfig(), 0)
}

func newRigSpan(t *testing.T, cfg Config, selCfg core.Config, span time.Duration) *rig {
	t.Helper()
	w, err := topology.BuildPaperWorld(topology.PaperConfig{
		Scale:             0.001,
		ServersPerDCNA:    6,
		ServersPerDCEU:    5,
		ServersPerDCOther: 4,
		LegacyServers:     16,
		ThirdPartyServers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := content.NewCatalog(content.Config{
		N: 2000, ZipfExponent: 0.8, TailRank: 800, VOTDShare: 0.05, Days: 7,
		MedianDuration: 120 * time.Second, DurationSigma: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlacement(w, cat, core.OriginPolicy{CopiesPerVideo: 2})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.NewSelector(w, pl, selCfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	sink := capture.NewMemSink()
	sim, err := NewSimulator(w, cat, sel, eng, sink, cfg, stats.NewRNG(5), span)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{w: w, cat: cat, sel: sel, eng: eng, sink: sink, sim: sim}
}

func (r *rig) request(vp int, video content.VideoID) Request {
	v := r.w.VantagePoints[vp]
	sn := v.Subnets[0]
	addr, _ := sn.Prefix.Nth(5)
	return Request{VP: vp, Subnet: sn, Client: addr, Video: video, Res: content.Res360p}
}

func TestNewSimulatorValidation(t *testing.T) {
	r := newRig(t, DefaultConfig())
	bad := DefaultConfig()
	bad.ControlBytesMax = 1500
	if _, err := NewSimulator(r.w, r.cat, r.sel, r.eng, r.sink, bad, stats.NewRNG(1), 0); err == nil {
		t.Error("control bytes above threshold must be rejected")
	}
	bad = DefaultConfig()
	bad.ControlBytesMin = 0
	if _, err := NewSimulator(r.w, r.cat, r.sel, r.eng, r.sink, bad, stats.NewRNG(1), 0); err == nil {
		t.Error("zero ControlBytesMin must be rejected")
	}
	bad = DefaultConfig()
	bad.MinWatchFrac = 0
	if _, err := NewSimulator(r.w, r.cat, r.sel, r.eng, r.sink, bad, stats.NewRNG(1), 0); err == nil {
		t.Error("zero MinWatchFrac must be rejected")
	}
}

func TestReplicatedSessionSingleVideoFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreludeProb = 0
	cfg.FollowUpProb = 0
	r := newRig(t, cfg)
	req := r.request(0, 10) // replicated video
	r.eng.Schedule(0, func() { r.sim.SubmitSession(req) })
	r.eng.Run()

	trace := r.sink.Trace(topology.DatasetUSCampus)
	if len(trace) != 1 {
		t.Fatalf("flows = %d, want 1", len(trace))
	}
	if trace[0].Bytes < 1000 {
		t.Error("single flow must be a video flow")
	}
	if trace[0].VideoID != content.StringID(10) {
		t.Errorf("VideoID = %s", trace[0].VideoID)
	}
	// Served from the preferred DC.
	srv, ok := r.w.ServerByAddr(trace[0].Server)
	if !ok {
		t.Fatal("server not found")
	}
	pref := r.sel.Preferred(req.Subnet.LDNS)
	if srv.DC != pref {
		t.Errorf("served from DC %d, want preferred %d", srv.DC, pref)
	}
}

func TestColdTailSessionHasRedirectChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreludeProb = 0
	cfg.FollowUpProb = 0
	r := newRig(t, cfg)
	us := r.w.VantagePoints[0]
	home := core.HomeOf(us)
	pref := r.sel.Preferred(us.Subnets[0].LDNS)

	// Find a tail video not at the preferred DC.
	var video content.VideoID = -1
	for cand := content.VideoID(800); cand < 2000; cand++ {
		onPref := false
		for _, o := range r.sim.placementOrigins(cand, home) {
			if o == pref {
				onPref = true
			}
		}
		if !onPref {
			video = cand
			break
		}
	}
	if video < 0 {
		t.Fatal("no cold video found")
	}
	req := r.request(0, video)
	r.eng.Schedule(0, func() { r.sim.SubmitSession(req) })
	r.eng.Run()

	trace := r.sink.Trace(topology.DatasetUSCampus)
	if len(trace) != 2 {
		t.Fatalf("flows = %d, want control+video", len(trace))
	}
	if trace[0].Bytes >= 1000 || trace[1].Bytes < 1000 {
		t.Errorf("flow sizes: %d then %d; want control then video", trace[0].Bytes, trace[1].Bytes)
	}
	// The control flow goes to the preferred DC; the video flow to a
	// different one.
	first, _ := r.w.ServerByAddr(trace[0].Server)
	second, _ := r.w.ServerByAddr(trace[1].Server)
	if first.DC != pref {
		t.Errorf("control flow DC = %d, want preferred %d", first.DC, pref)
	}
	if second.DC == pref {
		t.Error("video flow must come from a non-preferred DC")
	}
	// The two flows are close enough in time to form one session at
	// T=1s.
	if gap := trace[1].Start - trace[0].End; gap <= 0 || gap > time.Second {
		t.Errorf("inter-flow gap = %v, want (0, 1s]", gap)
	}
}

// placementOrigins exposes origin lookup for tests.
func (s *Simulator) placementOrigins(v content.VideoID, home core.Home) []topology.DataCenterID {
	return s.sel.PlacementOrigins(v, home)
}

func TestPreludeProducesTwoFlowSession(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreludeProb = 1.0
	cfg.FollowUpProb = 0
	r := newRig(t, cfg)
	req := r.request(0, 10)
	r.eng.Schedule(0, func() { r.sim.SubmitSession(req) })
	r.eng.Run()

	trace := r.sink.Trace(topology.DatasetUSCampus)
	if len(trace) != 2 {
		t.Fatalf("flows = %d, want prelude+video", len(trace))
	}
	if trace[0].Bytes >= 1000 {
		t.Error("prelude must be a control flow")
	}
}

func TestFollowUpScheduledLater(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreludeProb = 0
	cfg.FollowUpProb = 1.0
	r := newRig(t, cfg)
	req := r.request(0, 10)
	r.eng.Schedule(0, func() { r.sim.SubmitSession(req) })
	r.eng.Run()

	trace := r.sink.Trace(topology.DatasetUSCampus)
	if len(trace) != 2 {
		t.Fatalf("flows = %d, want initial + follow-up", len(trace))
	}
	gap := trace[1].Start - trace[0].Start
	if gap < cfg.FollowUpGapMin {
		t.Errorf("follow-up gap %v below minimum %v", gap, cfg.FollowUpGapMin)
	}
}

func TestLegacySessionServedFromLegacyPool(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FollowUpProb = 0
	r := newRig(t, cfg)
	// Force the legacy path for every session of US-Campus.
	r.w.VantagePoints[0].LegacyProb = 1.0
	req := r.request(0, 10)
	r.eng.Schedule(0, func() { r.sim.SubmitSession(req) })
	r.eng.Run()

	trace := r.sink.Trace(topology.DatasetUSCampus)
	if len(trace) != 1 {
		t.Fatalf("flows = %d, want 1", len(trace))
	}
	srv, _ := r.w.ServerByAddr(trace[0].Server)
	if srv.Class != topology.ClassLegacyEU {
		t.Errorf("server class = %v, want legacy", srv.Class)
	}
	// American networks must hit American legacy caches only.
	if r.w.DC(srv.DC).City.Continent != r.w.VantagePoints[0].HomeContinent() {
		t.Error("US legacy session escaped the continent")
	}
}

func TestLoadBalancedAccounting(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	for i := 0; i < 200; i++ {
		i := i
		r.eng.Schedule(time.Duration(i)*time.Second, func() {
			r.sim.SubmitSession(r.request(i%5, content.VideoID(i%50)))
		})
	}
	r.eng.Run()
	// After the engine drains, all flows have ended: every load must
	// be zero.
	for _, srv := range r.w.Servers {
		if r.sel.ServerLoad(srv.ID) != 0 {
			t.Fatalf("server %d load %d after drain", srv.ID, r.sel.ServerLoad(srv.ID))
		}
	}
	if r.sim.Sessions() != 200 {
		t.Errorf("sessions = %d", r.sim.Sessions())
	}
	if r.sim.Flows() < 200 {
		t.Errorf("flows = %d, want >= sessions", r.sim.Flows())
	}
}

func TestVideoFlowBytesFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreludeProb = 0
	cfg.FollowUpProb = 0
	r := newRig(t, cfg)
	for i := 0; i < 300; i++ {
		i := i
		r.eng.Schedule(time.Duration(i)*time.Second, func() {
			r.sim.SubmitSession(r.request(0, content.VideoID(i)))
		})
	}
	r.eng.Run()
	// Every session ends with a video flow of >= 1000 bytes (the
	// classification floor); sub-1000 flows are redirect controls.
	largest := make(map[string]int64)
	for _, rec := range r.sink.Trace(topology.DatasetUSCampus) {
		if rec.End <= rec.Start {
			t.Fatalf("non-positive flow duration")
		}
		if rec.Bytes > largest[rec.VideoID] {
			largest[rec.VideoID] = rec.Bytes
		}
	}
	for id, max := range largest {
		if max < 1000 {
			t.Fatalf("video %s never produced a video flow (max %d bytes)", id, max)
		}
	}
}

func TestClientAddrPreserved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FollowUpProb = 0
	r := newRig(t, cfg)
	req := r.request(2, 10) // EU1-ADSL
	r.eng.Schedule(0, func() { r.sim.SubmitSession(req) })
	r.eng.Run()
	trace := r.sink.Trace(topology.DatasetEU1ADSL)
	if len(trace) == 0 {
		t.Fatal("no flows")
	}
	for _, rec := range trace {
		if rec.Client != req.Client {
			t.Errorf("client = %s, want %s", rec.Client, req.Client)
		}
		if rec.Resolution != "360p" {
			t.Errorf("resolution = %s", rec.Resolution)
		}
	}
}

var _ = ipnet.Addr(0) // keep ipnet imported for request helper clarity
