// Package cdn executes video sessions against the selection engine:
// it models the Flash-player side of the paper's Fig 1 (DNS lookup,
// HTTP request, possible redirect chain, video download) and emits the
// flow records a Tstat probe at the vantage point would log.
package cdn

import (
	"fmt"
	"math"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/netmodel"
	"github.com/ytcdn-sim/ytcdn/internal/obs"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// Config tunes player-side behaviour.
type Config struct {
	// PreludeProb is the probability a session opens with a short
	// control exchange (e.g. format negotiation) before the video
	// request, producing the paper's (preferred, preferred) two-flow
	// sessions (Fig 10b).
	PreludeProb float64
	// FollowUpProb is the probability the user interacts with the
	// player (seek, resolution change) causing an extra video flow
	// after a multi-second gap — the flows that merge into one session
	// only at large T in Fig 5.
	FollowUpProb float64
	// FollowUpGapMin/Max bound the user-interaction gap.
	FollowUpGapMin, FollowUpGapMax time.Duration
	// RedirectGapMax bounds the client-side pause between a redirect
	// control flow and the next connection (well under the paper's
	// T=1s so system-triggered flows stay in one session).
	RedirectGapMax time.Duration
	// ControlBytesMin/Max bound control-flow sizes; they must stay
	// below the paper's 1000-byte classification threshold.
	ControlBytesMin, ControlBytesMax int64
	// WatchFullProb is the probability a viewer watches to the end.
	WatchFullProb float64
	// MinWatchFrac is the minimum watched fraction for early-abort
	// viewers.
	MinWatchFrac float64
	// StartupDelay is the fixed connection+buffering overhead added to
	// every video flow's lifetime.
	StartupDelay time.Duration
}

// DefaultConfig returns calibrated player behaviour.
func DefaultConfig() Config {
	return Config{
		PreludeProb:     0.085,
		FollowUpProb:    0.19,
		FollowUpGapMin:  12 * time.Second,
		FollowUpGapMax:  650 * time.Second,
		RedirectGapMax:  400 * time.Millisecond,
		ControlBytesMin: 220,
		ControlBytesMax: 980,
		WatchFullProb:   0.55,
		MinWatchFrac:    0.04,
		StartupDelay:    700 * time.Millisecond,
	}
}

// raceQueuePenalty scales the queueing delay a racing player observes
// from a loaded candidate server. At full utilisation the penalty
// (one raceQueuePenalty) dwarfs typical inter-DC RTT differences, so
// a saturated nearby server loses the race to an idle farther one —
// the property that lets go-with-the-winner clients steer around
// hot-spots without server cooperation.
const raceQueuePenalty = 400 * time.Millisecond

// SelectionMetrics aggregates ground-truth outcomes of the selection
// chains executed through the Google selection path (legacy and
// third-party quirk sessions are excluded: no policy controls them).
// It is what the policy-comparison harness tabulates per policy.
type SelectionMetrics struct {
	// Chains counts executed selection chains (DNS answer or race
	// commitment through serve, including follow-up interactions).
	Chains int
	// ServedPreferred counts chains whose serving server sits in the
	// requester's ground-truth preferred DC.
	ServedPreferred int
	// Redirects is the total number of redirect hops followed.
	Redirects int
	// MaxChain is the longest redirect chain observed.
	MaxChain int
	// SumServedRTT accumulates the deterministic base RTT between the
	// vantage point and the serving server, one term per chain.
	SumServedRTT time.Duration
	// RaceWins counts chains resolved by client-side racing.
	RaceWins int
}

// PreferredFrac returns the fraction of chains served from the
// requester's preferred DC.
func (m SelectionMetrics) PreferredFrac() float64 {
	if m.Chains == 0 {
		return 0
	}
	return float64(m.ServedPreferred) / float64(m.Chains)
}

// MeanRedirects returns the mean redirect-chain length in hops.
func (m SelectionMetrics) MeanRedirects() float64 {
	if m.Chains == 0 {
		return 0
	}
	return float64(m.Redirects) / float64(m.Chains)
}

// MeanServedRTTms returns the mean base RTT to the serving server in
// milliseconds.
func (m SelectionMetrics) MeanServedRTTms() float64 {
	if m.Chains == 0 {
		return 0
	}
	return float64(m.SumServedRTT) / float64(m.Chains) / float64(time.Millisecond)
}

// Merge folds another simulator's metrics into m. Every field is a sum
// or a max, so merging per-shard metrics yields the same totals no
// matter how vantage points were grouped into shards.
func (m *SelectionMetrics) Merge(o SelectionMetrics) {
	m.Chains += o.Chains
	m.ServedPreferred += o.ServedPreferred
	m.Redirects += o.Redirects
	if o.MaxChain > m.MaxChain {
		m.MaxChain = o.MaxChain
	}
	m.SumServedRTT += o.SumServedRTT
	m.RaceWins += o.RaceWins
}

// Request is one user-initiated video session.
type Request struct {
	VP int // index into World.VantagePoints
	// SubnetIdx indexes the client's subnet in the VP's Subnets; it
	// selects the per-subnet player RNG stream the session draws from.
	SubnetIdx int
	Subnet    *topology.Subnet
	Client    ipnet.Addr
	Video     content.VideoID
	Res       content.Resolution
}

// Simulator executes sessions. It owns no clock of its own: callers
// schedule SubmitSession on the shared des.Engine. A Simulator belongs
// to exactly one engine (one shard of a sharded run). Every draw a
// session makes comes from its subnet's own player stream — the
// "player-<vp>" fork of the root, sub-forked per subnet index — so a
// subnet's draw order depends only on that subnet's event sequence.
// That is what lets one vantage point's subnets be split across
// several simulators (sub-VP sharding) while reproducing the
// single-simulator run bit-for-bit: all of a SUBNET's sessions must go
// through the same simulator, but a VP's subnets need not.
type Simulator struct {
	w    *topology.World
	cat  *content.Catalog
	sel  *core.Selector
	eng  *des.Engine
	sink capture.Sink
	cfg  Config
	// root is the seed-level RNG parent the per-subnet player streams
	// fork from; the simulator never draws from it directly.
	root *stats.RNG
	// streams caches the per-(vp, subnet) player forks. Accessed only
	// from the simulator's engine goroutine.
	streams map[streamKey]*stats.RNG
	// span is the capture window: no new chain is admitted at or after
	// it and the probe records no flow starting at or after it (a real
	// Tstat capture stops at teardown). Zero means unbounded.
	span time.Duration

	// vpEndpoints caches per-VP network endpoints.
	vpEndpoints []netmodel.Endpoint
	// homes caches per-VP origin parameters.
	homes []core.Home

	sessions  int
	flows     int
	truncated int // flows dropped because they started at/after span
	metrics   SelectionMetrics

	// journal, when set (optimistic mode), records every cross-shard-
	// visible effect and shared-state-reading decision this simulator
	// executes, for barrier-time validation. Simulators sharing an
	// engine share one journal (same goroutine). ckpt is the state
	// captured by the last Checkpoint.
	journal *core.Journal
	ckpt    *simCheckpoint

	// inst is the optional deterministic-plane instrumentation (see
	// Instrument); nil when metrics are off. Everything recorded here
	// is derived from sim time and event counts the simulator computes
	// anyway, so recording draws no randomness and schedules nothing:
	// a run with inst set is bit-identical to one without.
	inst *instruments
}

// instruments is the simulator's view of the shared registry. The
// counters are separate from the plain sessions/flows/metrics fields
// because a live /metrics scrape reads them from another goroutine
// mid-run — they must be atomic where the plain fields need not be.
type instruments struct {
	sessions     *obs.Counter
	flows        *obs.Counter
	truncated    *obs.Counter
	chains       *obs.Counter
	redirects    *obs.Counter
	raceWins     *obs.Counter
	chainDepth   *obs.Histogram // redirect hops per chain
	chainLatency *obs.Histogram // chain start → video request, sim µs
}

// streamKey identifies one subnet's player stream.
type streamKey struct{ vp, subnet int }

// NewSimulator wires a simulator over a world. g is the seed-level RNG
// parent: session randomness comes from "player-<vp>" / "subnet/<j>"
// forks of it, one stream per subnet, so the same parent handed to any
// partition of the subnets yields the same per-subnet draws. span
// bounds the capture window (see Simulator.span); zero means
// unbounded.
func NewSimulator(w *topology.World, cat *content.Catalog, sel *core.Selector,
	eng *des.Engine, sink capture.Sink, cfg Config, g *stats.RNG, span time.Duration) (*Simulator, error) {
	if cfg.ControlBytesMax >= 1000 {
		return nil, fmt.Errorf("cdn: ControlBytesMax %d crosses the 1000-byte video threshold", cfg.ControlBytesMax)
	}
	if cfg.ControlBytesMin <= 0 || cfg.ControlBytesMin > cfg.ControlBytesMax {
		return nil, fmt.Errorf("cdn: bad control byte bounds [%d, %d]", cfg.ControlBytesMin, cfg.ControlBytesMax)
	}
	if cfg.MinWatchFrac <= 0 || cfg.MinWatchFrac > 1 {
		return nil, fmt.Errorf("cdn: MinWatchFrac %g out of (0, 1]", cfg.MinWatchFrac)
	}
	if cfg.FollowUpGapMin < 0 || cfg.FollowUpGapMin > cfg.FollowUpGapMax {
		return nil, fmt.Errorf("cdn: bad follow-up gap bounds [%v, %v]", cfg.FollowUpGapMin, cfg.FollowUpGapMax)
	}
	if cfg.RedirectGapMax < 0 {
		return nil, fmt.Errorf("cdn: RedirectGapMax %v must be >= 0", cfg.RedirectGapMax)
	}
	if cfg.StartupDelay < 0 {
		return nil, fmt.Errorf("cdn: StartupDelay %v must be >= 0", cfg.StartupDelay)
	}
	if span < 0 {
		return nil, fmt.Errorf("cdn: span %v must be >= 0", span)
	}
	s := &Simulator{w: w, cat: cat, sel: sel, eng: eng, sink: sink, cfg: cfg,
		root: g, streams: make(map[streamKey]*stats.RNG), span: span}
	for _, vp := range w.VantagePoints {
		s.vpEndpoints = append(s.vpEndpoints, vp.Endpoint())
		s.homes = append(s.homes, core.HomeOf(vp))
	}
	return s, nil
}

// Instrument publishes the simulator's progress into reg under the
// "sim.cdn.*" names. Lookups get-or-create, so the shard simulators of
// one run instrumented into the same registry share instruments and
// the published values are run-wide totals. Call before the run
// starts; passing the same registry to every shard is the point.
func (s *Simulator) Instrument(reg *obs.Registry) {
	s.inst = &instruments{
		sessions:     reg.Counter("sim.cdn.sessions"),
		flows:        reg.Counter("sim.cdn.flows"),
		truncated:    reg.Counter("sim.cdn.truncated_flows"),
		chains:       reg.Counter("sim.cdn.chains"),
		redirects:    reg.Counter("sim.cdn.redirects"),
		raceWins:     reg.Counter("sim.cdn.race_wins"),
		chainDepth:   reg.Histogram("sim.cdn.chain_depth_hops"),
		chainLatency: reg.Histogram("sim.cdn.chain_latency_us"),
	}
}

// Sessions returns the number of sessions executed so far.
func (s *Simulator) Sessions() int { return s.sessions }

// Flows returns the number of flows emitted so far.
func (s *Simulator) Flows() int { return s.flows }

// Truncated returns the number of flows the probe dropped because they
// started at or after the capture window.
func (s *Simulator) Truncated() int { return s.truncated }

// Metrics returns the ground-truth selection outcomes accumulated so
// far.
func (s *Simulator) Metrics() SelectionMetrics { return s.metrics }

// rng returns (forking on first use) the player stream of the
// request's subnet. Forking is order-independent, so the stream is the
// same no matter which simulator of which sharding layout serves the
// subnet.
func (s *Simulator) rng(req Request) *stats.RNG {
	k := streamKey{vp: req.VP, subnet: req.SubnetIdx}
	g, ok := s.streams[k]
	if !ok {
		g = s.root.Fork("player-"+s.w.VantagePoints[req.VP].Name).ForkIndexed("subnet", req.SubnetIdx)
		if s.journal != nil {
			// Streams forked mid-interval start recording immediately so
			// their decisions carry tape segments; a rollback deletes
			// the fork (re-forking is pure, so the rerun reproduces it).
			g.Mark()
		}
		s.streams[k] = g
	}
	return g
}

// SetJournal switches the simulator into optimistic journaling mode:
// every flow begin/end and every shared-state-reading decision is
// recorded into j (see core.Journal). Must be set before the run.
func (s *Simulator) SetJournal(j *core.Journal) { s.journal = j }

// simCheckpoint is the simulator state captured at an optimistic
// horizon. Engine state, selector state and sink staging are owned by
// their own layers; this covers only what the Simulator itself
// mutates.
type simCheckpoint struct {
	sessions, flows, truncated int
	metrics                    SelectionMetrics
	// streams is the key set of player forks existing at the horizon:
	// those streams are tape-Marked and rewound on rollback, while
	// forks created during speculation are deleted (re-forking is
	// pure).
	streams map[streamKey]struct{}
}

// Checkpoint captures the simulator's committed state and Marks every
// player stream's RNG tape, immediately before a speculative interval.
func (s *Simulator) Checkpoint() {
	ck := &simCheckpoint{
		sessions: s.sessions, flows: s.flows, truncated: s.truncated,
		metrics: s.metrics,
		streams: make(map[streamKey]struct{}, len(s.streams)),
	}
	for k, g := range s.streams {
		ck.streams[k] = struct{}{}
		g.Mark()
	}
	s.ckpt = ck
}

// Rollback restores the last Checkpoint: session/flow counters and
// metrics rewind, pre-existing player streams rewind their RNG tapes
// (replaying the identical value sequence during re-execution), and
// speculation-born forks are dropped.
func (s *Simulator) Rollback() {
	ck := s.ckpt
	s.sessions, s.flows, s.truncated = ck.sessions, ck.flows, ck.truncated
	s.metrics = ck.metrics
	for k, g := range s.streams {
		if _, ok := ck.streams[k]; ok {
			g.Rewind()
		} else {
			delete(s.streams, k)
		}
	}
}

// SubmitSession executes a session starting at the engine's current
// time. It must be called from within an engine event.
func (s *Simulator) SubmitSession(req Request) {
	s.sessions++
	if s.inst != nil {
		s.inst.sessions.Inc()
	}
	vp := s.w.VantagePoints[req.VP]
	g := s.rng(req)

	// Quirk paths: residual legacy YouTube-EU servers and third-party
	// caches, reached outside Google's DNS selection (Table II).
	if g.Bool(vp.LegacyProb) {
		s.serveFromClass(req, g, topology.ClassLegacyEU)
		return
	}
	if g.Bool(vp.ThirdPartyProb) {
		s.serveFromClass(req, g, topology.ClassThirdParty)
		return
	}

	s.runChain(req, g, s.eng.Now(), 1.0)

	// User interaction: an extra, shorter video flow after a gap that
	// exceeds T=1s (new session at small T, same session at large T).
	// A follow-up landing at or after the capture window is not
	// admitted: the capture has been torn down by then, and admitting
	// it would extend the trace past the configured span (the gap can
	// reach FollowUpGapMax past the last arrival). The gap is drawn
	// either way so the session's RNG stream does not depend on where
	// the session sits in the window.
	if g.Bool(s.cfg.FollowUpProb) {
		gap := time.Duration(g.Uniform(float64(s.cfg.FollowUpGapMin), float64(s.cfg.FollowUpGapMax)))
		if s.span <= 0 || s.eng.Now()+gap < s.span {
			req := req
			s.eng.ScheduleAfter(gap, func() {
				s.runChain(req, g, s.eng.Now(), 0.3)
			})
		}
	}
}

// runChain performs server selection (DNS resolution, or a candidate
// race under a racing policy) and the serve-or-redirect chain,
// emitting control flows for each redirect and one final video flow.
// watchScale shrinks the watched fraction (for follow-up interactions).
func (s *Simulator) runChain(req Request, g *stats.RNG, start time.Duration, watchScale float64) {
	vp := s.w.VantagePoints[req.VP]
	ldns := req.Subnet.LDNS
	home := s.homes[req.VP]

	t := start
	srv, raced := s.selectServer(ldns, req, g)
	if raced {
		s.sel.CommitRace(ldns, srv)
		s.metrics.RaceWins++
		if s.inst != nil {
			s.inst.raceWins.Inc()
		}
	}

	// Optional control prelude to the resolved server.
	if g.Bool(s.cfg.PreludeProb) {
		t = s.emitControl(vp, req, g, srv, t)
	}

	hops := 0
	maxHops := s.sel.MaxRedirects()
	for {
		if hops == maxHops {
			// The redirect bound is exhausted: the last redirect
			// target serves no matter what. The policy is still
			// consulted so a miss at this final hop keeps its
			// pull-through and miss accounting — previously the video
			// was emitted from a DC that might not hold it, with no
			// accounting at all.
			s.serveFinal(srv, req.Video, ldns, home, g)
			break
		}
		d := s.serveOrRedirect(srv, req.Video, ldns, home, g)
		if !d.Redirected {
			break
		}
		// The refused connection is a short control flow.
		t = s.emitControl(vp, req, g, srv, t)
		srv = d.Target
		hops++
	}

	s.metrics.Chains++
	s.metrics.Redirects += hops
	if hops > s.metrics.MaxChain {
		s.metrics.MaxChain = hops
	}
	if s.w.Server(srv).DC == s.sel.Preferred(ldns) {
		s.metrics.ServedPreferred++
	}
	s.metrics.SumServedRTT += s.w.Net.BaseRTT(s.vpEndpoints[req.VP], s.serverEndpoint(srv))

	if s.inst != nil {
		s.inst.chains.Inc()
		s.inst.redirects.Add(int64(hops))
		s.inst.chainDepth.Observe(int64(hops))
		s.inst.chainLatency.Observe(int64((t - start) / time.Microsecond))
	}

	s.emitVideo(vp, req, g, srv, t, watchScale)
}

// selectServer performs the selection step of a chain: a candidate
// race under a racing policy, the DNS resolution otherwise. Under an
// optimistic journal the whole step — candidate pick, per-candidate
// load reads and RTT draws, winner commit — is recorded as ONE
// decision whose replay re-runs it against the truth view; the
// reported bool (raced) and the winner determine every live side
// effect (spill counting via CommitRace is a pure function of the
// winner), so comparing the winner plus the branch validates the step.
func (s *Simulator) selectServer(ldns topology.LDNSID, req Request, g *stats.RNG) (topology.ServerID, bool) {
	if s.journal == nil {
		if cands := s.sel.RaceCandidates(ldns, req.Video, g); len(cands) > 0 {
			return s.raceWinner(req.VP, g, cands, s.sel.ServerLoad), true
		}
		return s.sel.ResolveDNS(ldns, req.Video, g), false
	}
	pos := g.TapePos()
	var srv topology.ServerID
	raced := false
	if cands := s.sel.RaceCandidates(ldns, req.Video, g); len(cands) > 0 {
		srv = s.raceWinner(req.VP, g, cands, s.sel.ServerLoad)
		raced = true
	} else {
		srv = s.sel.ResolveDNS(ldns, req.Video, g)
	}
	sel, vpIdx, vid := s.sel, req.VP, req.Video
	s.journal.AddDecision(s.eng.Now(), g.TapeSince(pos), func(tv *core.TruthView, rg *stats.RNG) bool {
		if cands := sel.RaceCandidatesDecision(tv, ldns, vid, rg); len(cands) > 0 {
			return raced && s.raceWinner(vpIdx, rg, cands, tv.ServerLoad) == srv
		}
		return !raced && sel.ResolveDecision(tv, ldns, vid, rg) == srv
	})
	return srv, raced
}

// serveOrRedirect is the journal-aware ServeOrRedirect: under an
// optimistic journal the decision (with its RNG tape segment) is
// recorded, and its replay re-runs the policy against the truth view —
// applying the miss pull-through to the view's overlay on success so
// later decisions in the validation sweep observe it, exactly as the
// sequential execution would.
func (s *Simulator) serveOrRedirect(srv topology.ServerID, vid content.VideoID, ldns topology.LDNSID, home core.Home, g *stats.RNG) core.Decision {
	if s.journal == nil {
		return s.sel.ServeOrRedirect(srv, vid, ldns, home, g)
	}
	pos := g.TapePos()
	d := s.sel.ServeOrRedirect(srv, vid, ldns, home, g)
	sel, w := s.sel, s.w
	s.journal.AddDecision(s.eng.Now(), g.TapeSince(pos), func(tv *core.TruthView, rg *stats.RNG) bool {
		rd := sel.ServeDecision(tv, srv, vid, ldns, home, rg)
		if rd != d {
			return false
		}
		if rd.Redirected && rd.Reason == core.ReasonMiss {
			tv.Pull(w.Server(srv).DC, vid)
		}
		return true
	})
	return d
}

// serveFinal is the journal-aware ServeFinal (forced serve at the
// redirect bound). The suppressed decision still validates: its miss
// side effects (pull-through, miss count) are shared state.
func (s *Simulator) serveFinal(srv topology.ServerID, vid content.VideoID, ldns topology.LDNSID, home core.Home, g *stats.RNG) {
	if s.journal == nil {
		s.sel.ServeFinal(srv, vid, ldns, home, g)
		return
	}
	pos := g.TapePos()
	d := s.sel.ServeFinal(srv, vid, ldns, home, g)
	sel, w := s.sel, s.w
	s.journal.AddDecision(s.eng.Now(), g.TapeSince(pos), func(tv *core.TruthView, rg *stats.RNG) bool {
		rd := sel.ServeDecision(tv, srv, vid, ldns, home, rg)
		if rd != d {
			return false
		}
		if rd.Redirected && rd.Reason == core.ReasonMiss {
			tv.Pull(w.Server(srv).DC, vid)
		}
		return true
	})
}

// raceWinner models the go-with-the-winner player hook: it opens the
// race to every candidate, observes each one's time to first byte —
// one sampled network RTT plus a queueing delay growing quadratically
// with the server's utilisation — and commits to the first responder.
// The losers' connections are torn down during the handshake, before
// any payload, so they fall below the capture pipeline's flow
// threshold and are not recorded. load abstracts the utilisation read
// so the optimistic validation sweep can replay the race against its
// truth view (pass Selector.ServerLoad on the live path).
func (s *Simulator) raceWinner(vpIdx int, g *stats.RNG, cands []topology.ServerID, load func(topology.ServerID) int) topology.ServerID {
	best := cands[0]
	bestT := time.Duration(math.MaxInt64)
	for _, c := range cands {
		ttfb := s.w.Net.SampleRTT(s.vpEndpoints[vpIdx], s.serverEndpoint(c), g)
		if capacity := s.w.Server(c).Capacity; capacity > 0 {
			util := float64(load(c)) / float64(capacity)
			ttfb += time.Duration(util * util * float64(raceQueuePenalty))
		}
		if ttfb < bestT {
			best, bestT = c, ttfb
		}
	}
	return best
}

// serveFromClass serves a session from a uniformly chosen server of a
// legacy/third-party pool. American networks are pinned to the
// US-located residue of the old infrastructure (the paper's US-Campus
// sees ~310 distinct AS-43515 servers against Europe's ~550, Table
// II), while European networks draw from the whole footprint.
func (s *Simulator) serveFromClass(req Request, g *stats.RNG, class topology.ServerClass) {
	vp := s.w.VantagePoints[req.VP]
	var same, all []*topology.Server
	for _, srv := range s.w.ServersOfClass(class) {
		all = append(all, srv)
		if s.w.DC(srv.DC).City.Continent == vp.HomeContinent() {
			same = append(same, srv)
		}
	}
	if len(all) == 0 {
		return
	}
	pool := all
	if vp.HomeContinent() == geo.NorthAmerica && len(same) > 0 {
		pool = same
	}
	srv := pool[g.Intn(len(pool))]
	s.emitVideo(vp, req, g, srv.ID, s.eng.Now(), 1.0)
}

// emitControl records a sub-1000-byte control flow to srv starting at
// t and returns the time the client moves on.
func (s *Simulator) emitControl(vp *topology.VantagePoint, req Request, g *stats.RNG, srv topology.ServerID, t time.Duration) time.Duration {
	rtt := s.w.Net.SampleRTT(s.vpEndpoints[req.VP], s.serverEndpoint(srv), g)
	dur := 2*rtt + time.Duration(g.Uniform(10, 60))*time.Millisecond
	bytes := int64(g.Uniform(float64(s.cfg.ControlBytesMin), float64(s.cfg.ControlBytesMax)))
	s.record(vp.Name, capture.FlowRecord{
		Client:     req.Client,
		Server:     s.w.Server(srv).Addr,
		Start:      t,
		End:        t + dur,
		Bytes:      bytes,
		VideoID:    content.StringID(req.Video),
		Resolution: req.Res.String(),
	})
	gap := time.Duration(g.Uniform(0, float64(s.cfg.RedirectGapMax)))
	return t + dur + gap
}

// emitVideo records the video flow at srv and manages load accounting.
func (s *Simulator) emitVideo(vp *topology.VantagePoint, req Request, g *stats.RNG, srv topology.ServerID, t time.Duration, watchScale float64) {
	watch := 1.0
	if !g.Bool(s.cfg.WatchFullProb) {
		watch = g.Uniform(s.cfg.MinWatchFrac, 1)
	}
	watch *= watchScale
	if watch > 1 {
		watch = 1
	}

	fullBytes := float64(s.cat.SizeBytes(req.Video, req.Res)) * vp.SizeScale
	bytes := int64(fullBytes * watch)
	if bytes < 1000 {
		bytes = 1000 // a video flow is ≥ the classification threshold
	}
	dur := time.Duration(watch*s.cat.Duration(req.Video).Seconds()*float64(time.Second)) + s.cfg.StartupDelay

	s.sel.BeginFlow(srv)
	if s.journal != nil {
		// Effects are journaled at their EXECUTION time (the engine
		// clock), which is the order the sequential merge interleaves
		// them in — not at the flow's nominal start.
		s.journal.AddBegin(s.eng.Now(), srv)
	}
	end := t + dur
	s.eng.Schedule(end, func() {
		s.sel.EndFlow(srv)
		if s.journal != nil {
			s.journal.AddEnd(s.eng.Now(), srv)
		}
	})

	s.record(vp.Name, capture.FlowRecord{
		Client:     req.Client,
		Server:     s.w.Server(srv).Addr,
		Start:      t,
		End:        end,
		Bytes:      bytes,
		VideoID:    content.StringID(req.Video),
		Resolution: req.Res.String(),
	})
}

// serverEndpoint maps a server to its data center's network endpoint.
// (The DC's cached Endpoint inlines into this body, which puts it past
// the inlining budget — so the contract here is allocation-freedom,
// not inlining.)
//
//perf:noalloc
func (s *Simulator) serverEndpoint(id topology.ServerID) netmodel.Endpoint {
	return s.w.DC(s.w.Server(id).DC).Endpoint()
}

// record logs one flow into the capture sink, honouring the capture
// window. It runs once per emitted flow — the busiest sink call in a
// simulation — so it must stay allocation-free itself (the sink
// behind it owns any buffering).
//
//perf:hot
//perf:noalloc
func (s *Simulator) record(dataset string, rec capture.FlowRecord) {
	// The probe is torn down at the end of the capture window: a flow
	// starting at or after it is never logged (its load accounting
	// still runs — the network does not stop with the capture).
	if s.span > 0 && rec.Start >= s.span {
		s.truncated++
		if s.inst != nil {
			s.inst.truncated.Inc()
		}
		return
	}
	s.flows++
	if s.inst != nil {
		s.inst.flows.Inc()
	}
	s.sink.Record(dataset, rec)
}
