package cdn

import (
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// newPolicyRig builds a player rig whose selection engine runs the
// given policy.
func newPolicyRig(t *testing.T, policy core.SelectionPolicy) *rig {
	t.Helper()
	w, err := topology.BuildPaperWorld(topology.PaperConfig{
		Scale:             0.001,
		ServersPerDCNA:    6,
		ServersPerDCEU:    5,
		ServersPerDCOther: 4,
		LegacyServers:     16,
		ThirdPartyServers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := content.NewCatalog(content.Config{
		N: 2000, ZipfExponent: 0.8, TailRank: 800, VOTDShare: 0.05, Days: 7,
		MedianDuration: 120 * time.Second, DurationSigma: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlacement(w, cat, core.OriginPolicy{CopiesPerVideo: 2})
	if err != nil {
		t.Fatal(err)
	}
	selCfg := core.DefaultConfig()
	selCfg.Policy = policy
	sel, err := core.NewSelector(w, pl, selCfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	sink := capture.NewMemSink()
	sim, err := NewSimulator(w, cat, sel, eng, sink, DefaultConfig(), stats.NewRNG(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{w: w, cat: cat, sel: sel, eng: eng, sink: sink, sim: sim}
}

// hotspotRequest returns a US-Campus request for a replicated (hot)
// video together with its hashed server at the preferred DC.
func hotspotRequest(r *rig) (Request, topology.ServerID, topology.LDNSID) {
	idx := r.w.VPIndex(topology.DatasetUSCampus)
	vp := r.w.VantagePoints[idx]
	sn := vp.Subnets[0]
	client, _ := sn.Prefix.Nth(1)
	v := content.VideoID(3) // well below TailRank: replicated everywhere
	req := Request{VP: idx, Subnet: sn, Client: client, Video: v, Res: content.Res360p}
	pref := r.sel.Preferred(sn.LDNS)
	return req, r.sel.ServerForVideo(pref, v), sn.LDNS
}

// servedResponse models the effective time to first byte a viewer of
// the chain's serving server experiences: base network RTT plus the
// same utilisation-quadratic queueing delay the racing player senses.
// It is the "served RTT" metric under load.
func servedResponse(r *rig, vpEp topology.VantagePoint, srv topology.ServerID) time.Duration {
	resp := r.w.Net.BaseRTT(vpEp.Endpoint(), r.w.DC(r.w.Server(srv).DC).Endpoint())
	if capacity := r.w.Server(srv).Capacity; capacity > 0 {
		util := float64(r.sel.ServerLoad(srv)) / float64(capacity)
		resp += time.Duration(util * util * float64(raceQueuePenalty))
	}
	return resp
}

// runHotspotChains saturates the hot video's preferred server (held
// flows that never end) and schedules n selection chains through the
// DES engine, spaced widely enough that each chain's own video flow
// drains before the next arrives. It returns the mean effective
// served response time and how many chains the saturated server
// absorbed.
func runHotspotChains(t *testing.T, policy core.SelectionPolicy, n int) (mean time.Duration, hotServed int) {
	t.Helper()
	r := newPolicyRig(t, policy)
	req, hot, _ := hotspotRequest(r)
	vp := *r.w.VantagePoints[req.VP]
	for i := 0; i < r.w.Server(hot).Capacity; i++ {
		r.sel.BeginFlow(hot)
	}

	var sum time.Duration
	for i := 0; i < n; i++ {
		at := time.Duration(i) * time.Hour
		r.eng.Schedule(at, func() {
			before := len(r.sink.View(vp.Name))
			r.sim.runChain(req, r.sim.rng(req), r.eng.Now(), 1.0)
			recs := r.sink.View(vp.Name)[before:]
			// The chain's video flow is its last record; map it back
			// to the serving server and read its load right away.
			served, ok := r.w.ServerByAddr(recs[len(recs)-1].Server)
			if !ok {
				t.Error("video flow from unknown server")
				return
			}
			sum += servedResponse(r, vp, served.ID)
			if served.ID == hot {
				hotServed++
			}
		})
	}
	r.eng.Run()
	return sum / time.Duration(n), hotServed
}

// TestClientRaceBeatsProximityUnderHotspot is the go-with-the-winner
// acceptance test: with the hot video's preferred server saturated,
// racing clients steer around the hot-spot on their own, so their
// effective served response time (RTT plus queueing) beats
// ProximityOnly's, which keeps piling sessions onto the saturated
// server. ProximityOnly still wins on raw proximity — that is exactly
// the trade the paper's load-adaptive mechanisms make.
func TestClientRaceBeatsProximityUnderHotspot(t *testing.T) {
	const n = 150
	raceMean, raceHot := runHotspotChains(t, &core.ClientRace{}, n)
	proxMean, proxHot := runHotspotChains(t, core.ProximityOnly{}, n)

	if proxHot != n {
		t.Fatalf("ProximityOnly served %d/%d chains from the saturated server, want all", proxHot, n)
	}
	if raceHot > n/10 {
		t.Errorf("ClientRace still served %d/%d chains from the saturated server", raceHot, n)
	}
	if raceMean*2 >= proxMean {
		t.Errorf("ClientRace mean served response %v not clearly better than ProximityOnly %v", raceMean, proxMean)
	}
}

// TestRaceMetrics checks the ground-truth accounting of raced chains.
func TestRaceMetrics(t *testing.T) {
	r := newPolicyRig(t, &core.ClientRace{})
	req, hot, ldns := hotspotRequest(r)
	for i := 0; i < r.w.Server(hot).Capacity; i++ {
		r.sel.BeginFlow(hot)
	}
	const n = 40
	for i := 0; i < n; i++ {
		r.sim.runChain(req, r.sim.rng(req), 0, 1.0)
	}
	m := r.sim.Metrics()
	if m.Chains != n || m.RaceWins != n {
		t.Fatalf("Chains=%d RaceWins=%d, want %d raced chains", m.Chains, m.RaceWins, n)
	}
	if m.SumServedRTT <= 0 {
		t.Error("SumServedRTT not accumulated")
	}
	spills, _, _ := r.sel.Counters()
	pref := r.sel.Preferred(ldns)
	offPref := n - countServedFrom(r, req, pref)
	if spills != offPref {
		t.Errorf("spills=%d, want one per off-preferred commit (%d)", spills, offPref)
	}
}

// countServedFrom counts video flows of the request's dataset served
// from the given DC.
func countServedFrom(r *rig, req Request, dc topology.DataCenterID) int {
	vp := r.w.VantagePoints[req.VP]
	n := 0
	for _, rec := range r.sink.View(vp.Name) {
		if rec.Bytes < 1000 {
			continue
		}
		if srv, ok := r.w.ServerByAddr(rec.Server); ok && srv.DC == dc {
			n++
		}
	}
	return n
}
