package cdn

import (
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// bouncePolicy redirects every request to another data center: the
// worst case for the redirect bound. It counts serve-or-redirect
// consultations so tests can see whether the final hop of a capped
// chain was asked to serve.
type bouncePolicy struct {
	consults int
}

func (p *bouncePolicy) Name() string { return "bounce" }

func (p *bouncePolicy) ResolveDNS(v core.PolicyView, id topology.LDNSID, vid content.VideoID) topology.DataCenterID {
	return v.Preferred(id)
}

func (p *bouncePolicy) ServeOrRedirect(v core.PolicyView, srv topology.ServerID, vid content.VideoID, id topology.LDNSID, home core.Home) core.Decision {
	p.consults++
	own := v.ServerDC(srv)
	for i, n := 0, v.NumRanked(id); i < n; i++ {
		if dc := v.RankedDC(id, i); dc != own {
			return core.Decision{Redirected: true, Target: v.ServerForVideo(dc, vid), Reason: core.ReasonHotspot}
		}
	}
	return core.Decision{}
}

// TestRedirectBoundForcesFinalServe is the regression test for the
// chain-truncation bug: with MaxRedirects=1 a chain that exhausts the
// bound must still consult ServeOrRedirect at the final hop (forced
// serve, redirect suppressed). Previously the last redirect target
// emitted the video without ever being asked, so a miss there was
// never accounted and the flow could come from a DC not holding the
// video.
func TestRedirectBoundForcesFinalServe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreludeProb = 0
	cfg.FollowUpProb = 0
	bounce := &bouncePolicy{}
	selCfg := core.Config{MaxRedirects: 1, Policy: bounce}
	r := newRigSpan(t, cfg, selCfg, 0)

	req := r.request(0, 10)
	r.eng.Schedule(0, func() { r.sim.SubmitSession(req) })
	r.eng.Run()

	// One redirect followed (one control flow), then the forced serve:
	// the policy must have been consulted twice — once for the hop
	// that redirected, once at the bound.
	if bounce.consults != 2 {
		t.Errorf("policy consulted %d times, want 2 (redirect + forced final serve)", bounce.consults)
	}
	trace := r.sink.Trace(topology.DatasetUSCampus)
	if len(trace) != 2 {
		t.Fatalf("flows = %d, want control + video", len(trace))
	}
	if trace[0].Bytes >= 1000 || trace[1].Bytes < 1000 {
		t.Errorf("flow sizes %d, %d: want control then video", trace[0].Bytes, trace[1].Bytes)
	}
	m := r.sim.Metrics()
	if m.Chains != 1 || m.Redirects != 1 || m.MaxChain != 1 {
		t.Errorf("metrics = %+v, want 1 chain with exactly 1 redirect", m)
	}
}

// TestFinalHopMissAccounted pins the engine-level side of the fix: a
// miss decision at the forced final hop still pulls the video through
// and bumps the miss counter, because the serving DC has to fetch
// content it does not hold.
func TestFinalHopMissAccounted(t *testing.T) {
	r := newRig(t, DefaultConfig())
	us := r.w.VantagePoints[0]
	home := core.HomeOf(us)
	ldns := us.Subnets[0].LDNS
	pref := r.sel.Preferred(ldns)

	// Find a tail video whose origins exclude the preferred DC, so the
	// preferred DC's server misses.
	var video content.VideoID = -1
	for cand := content.VideoID(800); cand < 2000; cand++ {
		onPref := false
		for _, o := range r.sel.PlacementOrigins(cand, home) {
			if o == pref {
				onPref = true
			}
		}
		if !onPref {
			video = cand
			break
		}
	}
	if video < 0 {
		t.Fatal("no cold video found")
	}
	srv := r.sel.ServerForVideo(pref, video)

	_, _, missesBefore := r.sel.Counters()
	r.sel.ServeFinal(srv, video, ldns, home, nil)
	_, _, missesAfter := r.sel.Counters()
	if missesAfter != missesBefore+1 {
		t.Errorf("misses %d -> %d, want +1 for the forced-serve miss", missesBefore, missesAfter)
	}
	// The pull-through happened: the DC now holds the video, so a
	// second forced serve is a clean hit.
	r.sel.ServeFinal(srv, video, ldns, home, nil)
	if _, _, m := r.sel.Counters(); m != missesAfter {
		t.Errorf("second forced serve missed again (misses %d -> %d); pull-through did not stick", missesAfter, m)
	}
}

// TestNoFlowStartsAtOrAfterSpan is the regression test for the
// capture-window overrun: follow-up interactions used to schedule
// chains up to FollowUpGapMax past the span and the engine drained
// them all, so captured traces extended beyond the configured week.
// The probe must record no flow starting at or after span, while
// in-flight flows still drain (their EndFlow load accounting runs).
func TestNoFlowStartsAtOrAfterSpan(t *testing.T) {
	const span = 30 * time.Minute
	cfg := DefaultConfig()
	cfg.FollowUpProb = 1.0 // every session tries to overrun
	cfg.PreludeProb = 1.0
	r := newRigSpan(t, cfg, core.DefaultConfig(), span)

	// Sessions throughout the window, including right at the edge
	// where prelude/redirect control cascades would spill past span.
	for i := 0; i < 60; i++ {
		i := i
		at := time.Duration(i) * span / 60
		r.eng.Schedule(at, func() {
			r.sim.SubmitSession(r.request(i%5, content.VideoID(i)))
		})
	}
	edge := span - time.Millisecond
	r.eng.Schedule(edge, func() {
		r.sim.SubmitSession(r.request(0, content.VideoID(1)))
	})
	r.eng.Run()

	total := 0
	for _, name := range topology.DatasetNames() {
		for _, rec := range r.sink.Trace(name) {
			total++
			if rec.Start >= span {
				t.Fatalf("%s: flow starts at %v, at/after span %v", name, rec.Start, span)
			}
		}
	}
	if total == 0 {
		t.Fatal("no flows captured at all")
	}
	// Sessions at span-ε have no room for a >= 12s follow-up gap: the
	// follow-up chain is not admitted, so chains < 2×sessions.
	m := r.sim.Metrics()
	if m.Chains >= 2*r.sim.Sessions() {
		t.Errorf("chains = %d with %d sessions: some follow-up chains must be refused at span", m.Chains, r.sim.Sessions())
	}
	// And the engine drained every in-flight flow: loads are zero.
	for _, srv := range r.w.Servers {
		if r.sel.ServerLoad(srv.ID) != 0 {
			t.Fatalf("server %d load %d after drain", srv.ID, r.sel.ServerLoad(srv.ID))
		}
	}
}

// TestConfigValidation covers the previously-unvalidated player knobs:
// inverted follow-up gap bounds fed Uniform backwards and silently
// corrupted session timing; negative redirect gaps and startup delays
// made time run backwards.
func TestConfigValidation(t *testing.T) {
	r := newRig(t, DefaultConfig())
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"inverted follow-up gaps", func(c *Config) {
			c.FollowUpGapMin = 500 * time.Second
			c.FollowUpGapMax = 10 * time.Second
		}},
		{"negative follow-up gap", func(c *Config) { c.FollowUpGapMin = -time.Second }},
		{"negative redirect gap", func(c *Config) { c.RedirectGapMax = -time.Millisecond }},
		{"negative startup delay", func(c *Config) { c.StartupDelay = -time.Second }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if _, err := NewSimulator(r.w, r.cat, r.sel, r.eng, r.sink, cfg, nil, 0); err == nil {
			t.Errorf("%s: NewSimulator accepted invalid config", tc.name)
		}
	}
	if _, err := NewSimulator(r.w, r.cat, r.sel, r.eng, r.sink, DefaultConfig(), nil, -time.Hour); err == nil {
		t.Error("negative span: NewSimulator accepted invalid span")
	}
}
