package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/cdn"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/des"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
	"github.com/ytcdn-sim/ytcdn/internal/workload"
)

// buildInput assembles a tiny two-day study without going through the
// public facade (the experiments package cannot import the root
// package).
func buildInput(t *testing.T) Input {
	t.Helper()
	const seed = 7
	span := 2 * 24 * time.Hour
	w, err := topology.BuildPaperWorld(topology.PaperConfig{Scale: 0.02, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := content.NewCatalog(content.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlacement(w, cat, core.OriginPolicy{CopiesPerVideo: 2})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.NewSelector(w, pl, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var eng des.Engine
	sink := capture.NewMemSink()
	root := stats.NewRNG(seed)
	sim, err := cdn.NewSimulator(w, cat, sel, &eng, sink, cdn.DefaultConfig(), root.Fork("player"), span)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.VantagePoints {
		gen, err := workload.NewGenerator(w, i, cat, span, root.Fork("wl-"+w.VantagePoints[i].Name))
		if err != nil {
			t.Fatal(err)
		}
		gen.Schedule(&eng, sim.SubmitSession)
	}
	eng.Run()

	traces := make(map[string][]capture.FlowRecord)
	for _, name := range topology.DatasetNames() {
		traces[name] = sink.Trace(name)
	}
	return Input{World: w, Catalog: cat, Placement: pl, Traces: traces, Span: span, Seed: seed}
}

func TestRunAllRendersEveryExperiment(t *testing.T) {
	h := New(buildInput(t))
	var buf bytes.Buffer
	if err := h.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"TABLE I", "TABLE II", "TABLE III",
		"FIG 2", "FIG 3", "FIG 4", "FIG 5", "FIG 6", "FIG 7", "FIG 8",
		"FIG 9", "FIG 10a", "FIG 10b", "FIG 11", "FIG 12", "FIG 13",
		"FIG 14", "FIG 15", "FIG 16", "FIG 17", "FIG 18",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, name := range topology.DatasetNames() {
		if !strings.Contains(out, name) {
			t.Errorf("output missing dataset %s", name)
		}
	}
}

// TestAccessorCopyDiscipline pins that the exported map accessors hand
// out copies: a caller deleting entries from a returned map must not
// corrupt the harness's cached geolocation pipeline output.
func TestAccessorCopyDiscipline(t *testing.T) {
	h := New(buildInput(t))
	regions, err := h.Geolocate()
	if err != nil {
		t.Fatal(err)
	}
	locs, err := h.Locations()
	if err != nil {
		t.Fatal(err)
	}
	nRegions, nLocs := len(regions), len(locs)
	if nRegions == 0 || nLocs == 0 {
		t.Fatal("geolocation produced no servers; fixture too small for this test")
	}
	for addr := range regions {
		delete(regions, addr)
	}
	for addr := range locs {
		delete(locs, addr)
	}
	regions2, err := h.Geolocate()
	if err != nil {
		t.Fatal(err)
	}
	if len(regions2) != nRegions {
		t.Errorf("cached region map shrank from %d to %d after caller-side deletes", nRegions, len(regions2))
	}
	locs2, err := h.Locations()
	if err != nil {
		t.Fatal(err)
	}
	if len(locs2) != nLocs {
		t.Errorf("cached location map shrank from %d to %d after caller-side deletes", nLocs, len(locs2))
	}
}

func TestHarnessCaching(t *testing.T) {
	h := New(buildInput(t))
	r1, err := h.Geolocate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Geolocate()
	if err != nil {
		t.Fatal(err)
	}
	if &r1 == &r2 {
		t.Skip("map headers differ") // defensive; maps compared below
	}
	if len(r1) != len(r2) {
		t.Error("geolocation not cached consistently")
	}
	ds1, err := h.Dataset(topology.DatasetEU2)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := h.Dataset(topology.DatasetEU2)
	if err != nil {
		t.Fatal(err)
	}
	if ds1 != ds2 {
		t.Error("dataset artifacts not cached")
	}
}

// TestConcurrentHarnessAccess hammers one harness from many
// goroutines; with -race this proves the once-guarded caches hold up,
// and every caller must observe the same cached artifacts.
func TestConcurrentHarnessAccess(t *testing.T) {
	in := buildInput(t)
	in.Parallelism = 4
	h := New(in)
	const workers = 8
	type out struct {
		ds  *dataset
		n   int
		err error
	}
	results := make([]out, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		k := k
		go func() {
			defer wg.Done()
			regions, err := h.Geolocate()
			if err != nil {
				results[k].err = err
				return
			}
			ds, err := h.Dataset(topology.DatasetEU2)
			results[k] = out{ds: ds, n: len(regions), err: err}
		}()
	}
	wg.Wait()
	for k, r := range results {
		if r.err != nil {
			t.Fatalf("worker %d: %v", k, r.err)
		}
		if r.ds != results[0].ds {
			t.Errorf("worker %d got a different dataset pointer", k)
		}
		if r.n != results[0].n {
			t.Errorf("worker %d saw %d regions, worker 0 saw %d", k, r.n, results[0].n)
		}
	}
}

// TestWarmMakesExperimentsCheap warms in parallel and checks every
// dataset cell is populated.
func TestWarmMakesExperimentsCheap(t *testing.T) {
	in := buildInput(t)
	in.Parallelism = 4
	h := New(in)
	if err := h.Warm(); err != nil {
		t.Fatal(err)
	}
	for _, name := range h.DatasetNames() {
		h.mu.Lock()
		c, ok := h.perDS[name]
		h.mu.Unlock()
		if !ok {
			t.Errorf("dataset %s not warmed", name)
			continue
		}
		if c.val == nil || c.err != nil {
			t.Errorf("dataset %s cell: val=%v err=%v", name, c.val, c.err)
		}
	}
}

func TestDatasetUnknownName(t *testing.T) {
	h := New(buildInput(t))
	if _, err := h.Dataset("nope"); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestDatasetNamesOrder(t *testing.T) {
	h := New(buildInput(t))
	names := h.DatasetNames()
	want := topology.DatasetNames()
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("order mismatch at %d: %s vs %s", i, names[i], want[i])
		}
	}
}
