package experiments

import (
	"fmt"
	"strings"

	"github.com/ytcdn-sim/ytcdn/internal/analysis"
)

// TableIRow is one dataset's traffic summary.
type TableIRow struct {
	Dataset string
	Flows   int
	GB      float64
	Servers int
	Clients int
}

// TableIResult reproduces Table I.
type TableIResult struct {
	Rows []TableIRow
}

// TableI computes the traffic summary of every dataset, streaming
// each trace once.
func (h *Harness) TableI() (*TableIResult, error) {
	res := &TableIResult{}
	for _, name := range h.DatasetNames() {
		s, err := analysis.SummarizeIter(h.iter(name))
		if err != nil {
			return nil, fmt.Errorf("experiments: scanning %s: %w", name, err)
		}
		res.Rows = append(res.Rows, TableIRow{
			Dataset: name,
			Flows:   s.Flows,
			GB:      float64(s.Bytes) / 1e9,
			Servers: s.Servers,
			Clients: s.Clients,
		})
	}
	return res, nil
}

// Render formats the table.
func (r *TableIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: TRAFFIC SUMMARY FOR THE DATASETS\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %9s %9s\n", "Dataset", "YouTube flows", "Volume [GB]", "#Servers", "#Clients")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %13d %12.2f %9d %9d\n", row.Dataset, row.Flows, row.GB, row.Servers, row.Clients)
	}
	return b.String()
}

// TableIIRow is one dataset's per-AS breakdown (percentages).
type TableIIRow struct {
	Dataset   string
	Breakdown analysis.ASBreakdown
}

// TableIIResult reproduces Table II.
type TableIIResult struct {
	Rows []TableIIRow
}

// TableII computes the whois-based AS attribution of servers and
// bytes, streaming each trace once.
func (h *Harness) TableII() (*TableIIResult, error) {
	res := &TableIIResult{}
	for _, name := range h.DatasetNames() {
		idx := h.in.World.VPIndex(name)
		vp := h.in.World.VantagePoints[idx]
		bd, err := analysis.BreakdownByASIter(h.iter(name), h.in.World.Registry, vp.AS.Number)
		if err != nil {
			return nil, fmt.Errorf("experiments: scanning %s: %w", name, err)
		}
		res.Rows = append(res.Rows, TableIIRow{Dataset: name, Breakdown: bd})
	}
	return res, nil
}

// Render formats the table.
func (r *TableIIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: PERCENTAGE OF SERVERS AND BYTES RECEIVED PER AS\n")
	fmt.Fprintf(&b, "%-12s | %8s %8s | %8s %8s | %8s %8s | %8s %8s\n",
		"Dataset", "GOOGsrv", "GOOGbyt", "YTEUsrv", "YTEUbyt", "SAMEsrv", "SAMEbyt", "OTHsrv", "OTHbyt")
	for _, row := range r.Rows {
		bd := row.Breakdown
		fmt.Fprintf(&b, "%-12s | %7.1f%% %7.2f%% | %7.1f%% %7.2f%% | %7.1f%% %7.2f%% | %7.1f%% %7.2f%%\n",
			row.Dataset,
			bd.Google.ServerFrac*100, bd.Google.ByteFrac*100,
			bd.YouTubeEU.ServerFrac*100, bd.YouTubeEU.ByteFrac*100,
			bd.SameAS.ServerFrac*100, bd.SameAS.ByteFrac*100,
			bd.Others.ServerFrac*100, bd.Others.ByteFrac*100)
	}
	return b.String()
}

// TableIIIRow is one dataset's continent split of Google servers.
type TableIIIRow struct {
	Dataset string
	Counts  analysis.ContinentCounts
}

// TableIIIResult reproduces Table III.
type TableIIIResult struct {
	Rows []TableIIIRow
}

// TableIII geolocates every Google server seen per dataset and counts
// by continent.
func (h *Harness) TableIII() (*TableIIIResult, error) {
	locs, err := h.liveLocations()
	if err != nil {
		return nil, err
	}
	res := &TableIIIResult{}
	for _, name := range h.DatasetNames() {
		ds, err := h.Dataset(name)
		if err != nil {
			return nil, err
		}
		counts := analysis.CountAddrsByContinent(ds.googleServers, locs)
		res.Rows = append(res.Rows, TableIIIRow{Dataset: name, Counts: counts})
	}
	return res, nil
}

// Render formats the table.
func (r *TableIIIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III: GOOGLE SERVERS PER CONTINENT ON EACH DATASET\n")
	fmt.Fprintf(&b, "%-12s %11s %8s %8s\n", "Dataset", "N. America", "Europe", "Others")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %11d %8d %8d\n", row.Dataset, row.Counts.NorthAmerica, row.Counts.Europe, row.Counts.Others)
	}
	return b.String()
}
