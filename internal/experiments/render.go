package experiments

import (
	"fmt"
	"io"
)

// renderable is any experiment result.
type renderable interface{ Render() string }

// RunAll executes every table and figure in paper order and writes the
// rendered output to w. It stops at the first failing experiment.
//
// The shared artifacts are warmed through the worker pool first, so at
// Parallelism > 1 the expensive stages overlap; the rendered output is
// byte-identical to a sequential run because every experiment reads
// the same cached artifacts. Warm errors are deliberately not
// reported here: the failing step re-surfaces them below with the
// table or figure name attached, exactly as a sequential pass would.
func (h *Harness) RunAll(w io.Writer) error {
	_ = h.Warm()
	steps := []struct {
		name string
		run  func() (renderable, error)
	}{
		{"Table I", func() (renderable, error) { return h.TableI() }},
		{"Table II", func() (renderable, error) { return h.TableII() }},
		{"Table III", func() (renderable, error) { return h.TableIII() }},
		{"Fig 2", func() (renderable, error) { return h.Fig02RTT() }},
		{"Fig 3", func() (renderable, error) { return h.Fig03CBGRadius() }},
		{"Fig 4", func() (renderable, error) { return h.Fig04FlowSizes() }},
		{"Fig 5", func() (renderable, error) { return h.Fig05SessionGapT() }},
		{"Fig 6", func() (renderable, error) { return h.Fig06FlowsPerSession() }},
		{"Fig 7", func() (renderable, error) { return h.Fig07BytesByRTT() }},
		{"Fig 8", func() (renderable, error) { return h.Fig08BytesByDistance() }},
		{"Fig 9", func() (renderable, error) { return h.Fig09NonPreferredHourly() }},
		{"Fig 10", func() (renderable, error) { return h.Fig10SessionPatterns() }},
		{"Fig 11", func() (renderable, error) { return h.Fig11EU2Diurnal() }},
		{"Fig 12", func() (renderable, error) { return h.Fig12SubnetBias() }},
		{"Fig 13", func() (renderable, error) { return h.Fig13VideoNonPref() }},
		{"Fig 14", func() (renderable, error) { return h.Fig14HotVideos() }},
		{"Fig 15", func() (renderable, error) { return h.Fig15ServerLoad() }},
		{"Fig 16", func() (renderable, error) { return h.Fig16Video1Server() }},
	}
	for _, step := range steps {
		res, err := step.run()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", step.name, err)
		}
		if _, err := fmt.Fprintln(w, res.Render()); err != nil {
			return err
		}
	}
	fig17, fig18, err := h.PlanetLab()
	if err != nil {
		return fmt.Errorf("experiments: PlanetLab: %w", err)
	}
	if _, err := fmt.Fprintln(w, fig17.Render()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, fig18.Render()); err != nil {
		return err
	}
	return nil
}
