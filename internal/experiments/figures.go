package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/analysis"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/probe"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// Fig02Result is the CDF of minimum RTT from each vantage point to the
// content servers of its dataset.
type Fig02Result struct {
	// RTTms maps dataset -> RTT samples in milliseconds.
	RTTms map[string]*stats.CDF
}

// Fig02RTT runs the ping campaigns of Fig 2.
func (h *Harness) Fig02RTT() (*Fig02Result, error) {
	res := &Fig02Result{RTTms: make(map[string]*stats.CDF)}
	for _, name := range h.DatasetNames() {
		camp, err := h.campaign(name)
		if err != nil {
			return nil, err
		}
		cdf := &stats.CDF{}
		for _, ms := range camp {
			cdf.Add(ms)
		}
		res.RTTms[name] = cdf
	}
	return res, nil
}

// Render formats Fig 2 as CDF samples.
func (r *Fig02Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 2: RTT TO CONTENT SERVERS (CDF, ms)\n")
	xs := []float64{10, 25, 50, 100, 150, 200, 250}
	for _, name := range topology.DatasetNames() {
		cdf, ok := r.RTTms[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s median=%6.1fms ", name, cdf.Median())
		for _, x := range xs {
			fmt.Fprintf(&b, " F(%3.0f)=%.2f", x, cdf.At(x))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Fig03Result is the CDF of CBG confidence-region radii, split by
// estimated continent as in the paper.
type Fig03Result struct {
	US, Europe *stats.CDF
}

// Fig03CBGRadius geolocates all servers and collects radii.
func (h *Harness) Fig03CBGRadius() (*Fig03Result, error) {
	regions, err := h.geolocate()
	if err != nil {
		return nil, err
	}
	res := &Fig03Result{US: &stats.CDF{}, Europe: &stats.CDF{}}
	for _, region := range regions {
		switch geo.ContinentOf(region.Centroid) {
		case geo.NorthAmerica:
			res.US.Add(region.RadiusKm)
		case geo.Europe:
			res.Europe.Add(region.RadiusKm)
		}
	}
	return res, nil
}

// Render formats Fig 3.
func (r *Fig03Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 3: CBG CONFIDENCE REGION RADIUS (CDF, km)\n")
	for _, row := range []struct {
		name string
		cdf  *stats.CDF
	}{{"US", r.US}, {"Europe", r.Europe}} {
		if row.cdf.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s n=%5d median=%6.1fkm p90=%7.1fkm\n",
			row.name, row.cdf.Len(), row.cdf.Median(), row.cdf.Quantile(0.9))
	}
	return b.String()
}

// Fig04Result is the per-dataset CDF of flow sizes.
type Fig04Result struct {
	Sizes map[string]*stats.CDF
	// ControlFrac is the fraction of flows under the 1000-byte kink.
	ControlFrac map[string]float64
}

// Fig04FlowSizes computes flow-size distributions, building each CDF
// from a single streaming pass over the trace.
func (h *Harness) Fig04FlowSizes() (*Fig04Result, error) {
	res := &Fig04Result{Sizes: make(map[string]*stats.CDF), ControlFrac: make(map[string]float64)}
	for _, name := range h.DatasetNames() {
		cdf := &stats.CDF{}
		small := 0
		it := h.iter(name)
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			cdf.Add(float64(r.Bytes))
			if r.Bytes < analysis.VideoFlowThreshold {
				small++
			}
		}
		if err := it.Err(); err != nil {
			return nil, fmt.Errorf("experiments: scanning %s: %w", name, err)
		}
		res.Sizes[name] = cdf
		if cdf.Len() > 0 {
			res.ControlFrac[name] = float64(small) / float64(cdf.Len())
		}
	}
	return res, nil
}

// Render formats Fig 4.
func (r *Fig04Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 4: CDF OF YOUTUBE FLOW SIZES (bytes)\n")
	for _, name := range topology.DatasetNames() {
		cdf, ok := r.Sizes[name]
		if !ok || cdf.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s control(<1kB)=%5.1f%% F(10k)=%.2f F(1M)=%.2f F(10M)=%.2f median=%.2gB\n",
			name, r.ControlFrac[name]*100, cdf.At(1e4), cdf.At(1e6), cdf.At(1e7), cdf.Median())
	}
	return b.String()
}

// Fig05Result is the US-Campus flows-per-session distribution for
// several values of the session gap T.
type Fig05Result struct {
	// Hist maps T -> 10 buckets (1..9 flows, >9).
	Hist map[time.Duration][]float64
}

// Fig05SessionGapT computes the T-sensitivity of sessionization, one
// start-ordered streaming pass per T — no session list is ever held,
// and no dataset artifacts are needed (pure sessionization).
func (h *Harness) Fig05SessionGapT() (*Fig05Result, error) {
	name := topology.DatasetUSCampus
	googleStart, err := h.googleStartSource(name)
	if err != nil {
		return nil, err
	}
	res := &Fig05Result{Hist: make(map[time.Duration][]float64)}
	for _, T := range []time.Duration{time.Second, 5 * time.Second, 10 * time.Second, 60 * time.Second, 300 * time.Second} {
		tally := analysis.NewSessionTally(10)
		err := analysis.StreamSessions(googleStart(), T, func(s analysis.Session) {
			tally.Add(s, nil, 0)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sessionizing %s at T=%v: %w", name, T, err)
		}
		res.Hist[T] = tally.Histogram()
	}
	return res, nil
}

// Render formats Fig 5 as cumulative fractions.
func (r *Fig05Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 5: FLOWS PER SESSION vs T (US-Campus, CDF)\n")
	var ts []time.Duration
	for t := range r.Hist {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	for _, t := range ts {
		hist := r.Hist[t]
		cum := 0.0
		fmt.Fprintf(&b, "T=%-5s", t)
		for k := 0; k < len(hist); k++ {
			cum += hist[k]
			if k < 4 || k == len(hist)-1 {
				fmt.Fprintf(&b, "  F(%d)=%.3f", k+1, cum)
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Fig06Result is the flows-per-session distribution per dataset at
// T = 1 second.
type Fig06Result struct {
	Hist map[string][]float64
}

// Fig06FlowsPerSession computes the T=1s histogram per dataset.
func (h *Harness) Fig06FlowsPerSession() (*Fig06Result, error) {
	res := &Fig06Result{Hist: make(map[string][]float64)}
	for _, name := range h.DatasetNames() {
		ds, err := h.Dataset(name)
		if err != nil {
			return nil, err
		}
		res.Hist[name] = ds.tally.Histogram()
	}
	return res, nil
}

// SingleFlowFrac returns the fraction of single-flow sessions for a
// dataset (the paper reports 72.5-80.5%).
func (r *Fig06Result) SingleFlowFrac(dataset string) float64 {
	h, ok := r.Hist[dataset]
	if !ok || len(h) == 0 {
		return 0
	}
	return h[0]
}

// Render formats Fig 6.
func (r *Fig06Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 6: FLOWS PER SESSION, T=1s (CDF)\n")
	for _, name := range topology.DatasetNames() {
		hist, ok := r.Hist[name]
		if !ok {
			continue
		}
		cum := 0.0
		fmt.Fprintf(&b, "%-12s", name)
		for k := 0; k < len(hist); k++ {
			cum += hist[k]
			if k < 4 || k == len(hist)-1 {
				fmt.Fprintf(&b, "  F(%d)=%.3f", k+1, cum)
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Fig07Result is the cumulative byte fraction vs data-center RTT.
type Fig07Result struct {
	// Curves maps dataset -> (RTT ms, cumulative fraction) points.
	Curves map[string][]struct{ X, F float64 }
	// PreferredShare maps dataset -> preferred DC byte share.
	PreferredShare map[string]float64
	// PreferredIsMinRTT maps dataset -> whether the byte-dominant DC
	// is also the RTT-closest.
	PreferredIsMinRTT map[string]bool
}

// Fig07BytesByRTT computes the Fig 7 curves.
func (h *Harness) Fig07BytesByRTT() (*Fig07Result, error) {
	res := &Fig07Result{
		Curves:            make(map[string][]struct{ X, F float64 }),
		PreferredShare:    make(map[string]float64),
		PreferredIsMinRTT: make(map[string]bool),
	}
	for _, name := range h.DatasetNames() {
		ds, err := h.Dataset(name)
		if err != nil {
			return nil, err
		}
		res.Curves[name] = analysis.CumulativeByteCurve(ds.pref.PerDC, func(d analysis.DCTraffic) float64 { return d.MinRTTMs })
		res.PreferredShare[name] = ds.pref.PreferredByteShare
		res.PreferredIsMinRTT[name] = ds.pref.PreferredIsMinRTT
	}
	return res, nil
}

// Render formats Fig 7.
func (r *Fig07Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 7: CUMULATIVE BYTES vs DATA-CENTER RTT\n")
	for _, name := range topology.DatasetNames() {
		curve, ok := r.Curves[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s preferred share=%5.1f%% minRTT-preferred=%v first-steps:", name,
			r.PreferredShare[name]*100, r.PreferredIsMinRTT[name])
		for i, pt := range curve {
			if i >= 3 {
				break
			}
			fmt.Fprintf(&b, " (%.0fms,%.2f)", pt.X, pt.F)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Fig08Result is the cumulative byte fraction vs data-center distance.
type Fig08Result struct {
	Curves map[string][]struct{ X, F float64 }
	// ClosestFiveShare maps dataset -> byte share of the five
	// geographically closest data centers.
	ClosestFiveShare map[string]float64
}

// Fig08BytesByDistance computes the Fig 8 curves.
func (h *Harness) Fig08BytesByDistance() (*Fig08Result, error) {
	res := &Fig08Result{
		Curves:           make(map[string][]struct{ X, F float64 }),
		ClosestFiveShare: make(map[string]float64),
	}
	for _, name := range h.DatasetNames() {
		ds, err := h.Dataset(name)
		if err != nil {
			return nil, err
		}
		curve := analysis.CumulativeByteCurve(ds.pref.PerDC, func(d analysis.DCTraffic) float64 { return d.DistanceKm })
		res.Curves[name] = curve
		if len(curve) >= 5 {
			res.ClosestFiveShare[name] = curve[4].F
		} else if len(curve) > 0 {
			res.ClosestFiveShare[name] = curve[len(curve)-1].F
		}
	}
	return res, nil
}

// Render formats Fig 8.
func (r *Fig08Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 8: CUMULATIVE BYTES vs DATA-CENTER DISTANCE\n")
	for _, name := range topology.DatasetNames() {
		curve, ok := r.Curves[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s closest-5 share=%5.1f%% first-steps:", name, r.ClosestFiveShare[name]*100)
		for i, pt := range curve {
			if i >= 3 {
				break
			}
			fmt.Fprintf(&b, " (%.0fkm,%.3f)", pt.X, pt.F)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Fig09Result is the CDF over one-hour samples of the fraction of
// video flows to non-preferred data centers.
type Fig09Result struct {
	Fracs map[string]*stats.CDF
}

// Fig09NonPreferredHourly computes the hourly non-preferred fractions.
func (h *Harness) Fig09NonPreferredHourly() (*Fig09Result, error) {
	res := &Fig09Result{Fracs: make(map[string]*stats.CDF)}
	for _, name := range h.DatasetNames() {
		ds, err := h.Dataset(name)
		if err != nil {
			return nil, err
		}
		fracs, _, _, err := analysis.HourlyNonPreferredIter(h.videoIter(name), ds.dcmap, ds.pref.Preferred, h.in.Span)
		if err != nil {
			return nil, fmt.Errorf("experiments: scanning %s: %w", name, err)
		}
		res.Fracs[name] = stats.NewCDF(fracs)
	}
	return res, nil
}

// Render formats Fig 9.
func (r *Fig09Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 9: HOURLY FRACTION OF VIDEO FLOWS TO NON-PREFERRED DC (CDF)\n")
	for _, name := range topology.DatasetNames() {
		cdf, ok := r.Fracs[name]
		if !ok || cdf.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s median=%.3f p90=%.3f frac-hours>0.4=%.2f\n",
			name, cdf.Median(), cdf.Quantile(0.9), 1-cdf.At(0.4))
	}
	return b.String()
}

// Fig10Result is the session-pattern breakdown.
type Fig10Result struct {
	Single map[string]analysis.SingleFlowBreakdown
	Two    map[string]analysis.TwoFlowBreakdown
}

// Fig10SessionPatterns computes Figs 10a and 10b.
func (h *Harness) Fig10SessionPatterns() (*Fig10Result, error) {
	res := &Fig10Result{
		Single: make(map[string]analysis.SingleFlowBreakdown),
		Two:    make(map[string]analysis.TwoFlowBreakdown),
	}
	for _, name := range h.DatasetNames() {
		ds, err := h.Dataset(name)
		if err != nil {
			return nil, err
		}
		one, two := ds.tally.Breakdown()
		res.Single[name] = one
		res.Two[name] = two
	}
	return res, nil
}

// Render formats Fig 10.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 10a: 1-FLOW SESSIONS (fraction of all sessions)\n")
	for _, name := range topology.DatasetNames() {
		one, ok := r.Single[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s preferred=%.3f non-preferred=%.3f\n", name, one.Preferred, one.NonPreferred)
	}
	fmt.Fprintf(&b, "FIG 10b: 2-FLOW SESSIONS (fraction of all sessions)\n")
	for _, name := range topology.DatasetNames() {
		two, ok := r.Two[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s PP=%.3f PN=%.3f NP=%.3f NN=%.3f\n",
			name, two.PrefPref, two.PrefNonPref, two.NonPrefPref, two.NonPrefNonPref)
	}
	return b.String()
}

// Fig11Result is the EU2 diurnal view: hourly fraction of video flows
// served by the (local, preferred) data center plus hourly volumes.
type Fig11Result struct {
	LocalFrac []float64 // per hour; -1 when the hour had no traffic
	Flows     []float64 // per hour
}

// Fig11EU2Diurnal computes the EU2 time series.
func (h *Harness) Fig11EU2Diurnal() (*Fig11Result, error) {
	ds, err := h.Dataset(topology.DatasetEU2)
	if err != nil {
		return nil, err
	}
	_, all, nonPref, err := analysis.HourlyNonPreferredIter(h.videoIter(topology.DatasetEU2), ds.dcmap, ds.pref.Preferred, h.in.Span)
	if err != nil {
		return nil, fmt.Errorf("experiments: scanning %s: %w", topology.DatasetEU2, err)
	}
	res := &Fig11Result{}
	for i := 0; i < all.N(); i++ {
		res.Flows = append(res.Flows, all.Bin(i))
		if all.Bin(i) > 0 {
			res.LocalFrac = append(res.LocalFrac, 1-nonPref.Bin(i)/all.Bin(i))
		} else {
			res.LocalFrac = append(res.LocalFrac, -1)
		}
	}
	return res, nil
}

// DayNightLocalFrac returns the mean local fraction over peak hours
// (18-23h) and night hours (2-7h).
func (r *Fig11Result) DayNightLocalFrac() (day, night float64) {
	var daySum, nightSum float64
	var dayN, nightN int
	for i, f := range r.LocalFrac {
		if f < 0 {
			continue
		}
		h := i % 24
		if h >= 18 && h <= 23 {
			daySum += f
			dayN++
		}
		if h >= 2 && h <= 7 {
			nightSum += f
			nightN++
		}
	}
	if dayN > 0 {
		day = daySum / float64(dayN)
	}
	if nightN > 0 {
		night = nightSum / float64(nightN)
	}
	return day, night
}

// Render formats Fig 11.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	day, night := r.DayNightLocalFrac()
	maxFlows := 0.0
	for _, f := range r.Flows {
		if f > maxFlows {
			maxFlows = f
		}
	}
	fmt.Fprintf(&b, "FIG 11: EU2 LOCAL-DC FRACTION OVER TIME\n")
	fmt.Fprintf(&b, "peak-hours local frac=%.2f  night local frac=%.2f  peak flows/hour=%.0f\n", day, night, maxFlows)
	return b.String()
}

// Fig12Result is the per-subnet accounting at US-Campus.
type Fig12Result struct {
	Shares []analysis.SubnetShare
}

// Fig12SubnetBias computes Fig 12.
func (h *Harness) Fig12SubnetBias() (*Fig12Result, error) {
	ds, err := h.Dataset(topology.DatasetUSCampus)
	if err != nil {
		return nil, err
	}
	var subnets []analysis.NamedPrefix
	for _, sn := range ds.vp.Subnets {
		subnets = append(subnets, analysis.NamedPrefix{Name: sn.Name, Prefix: sn.Prefix})
	}
	shares, err := analysis.BySubnetIter(h.videoIter(topology.DatasetUSCampus), ds.dcmap, ds.pref.Preferred, subnets)
	if err != nil {
		return nil, fmt.Errorf("experiments: scanning %s: %w", topology.DatasetUSCampus, err)
	}
	return &Fig12Result{Shares: shares}, nil
}

// Render formats Fig 12.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 12: US-CAMPUS INTERNAL SUBNETS (shares of flows)\n")
	for _, s := range r.Shares {
		fmt.Fprintf(&b, "%-8s all=%5.1f%%  of-non-preferred=%5.1f%%\n", s.Name, s.AllFrac*100, s.NonPrefFrac*100)
	}
	return b.String()
}

// Fig13Result is the distribution of per-video non-preferred access
// counts.
type Fig13Result struct {
	Counts map[string]*stats.CDF
	// ExactlyOnce maps dataset -> fraction of such videos fetched from
	// a non-preferred DC exactly once.
	ExactlyOnce map[string]float64
	// TopVideos maps dataset -> the videos with the most non-preferred
	// accesses (feeding Fig 14).
	TopVideos map[string][]analysis.VideoNonPrefCount
}

// Fig13VideoNonPref computes Fig 13.
func (h *Harness) Fig13VideoNonPref() (*Fig13Result, error) {
	res := &Fig13Result{
		Counts:      make(map[string]*stats.CDF),
		ExactlyOnce: make(map[string]float64),
		TopVideos:   make(map[string][]analysis.VideoNonPrefCount),
	}
	for _, name := range h.DatasetNames() {
		ds, err := h.Dataset(name)
		if err != nil {
			return nil, err
		}
		counts := ds.nonPrefVideos
		cdf := &stats.CDF{}
		once := 0
		for _, c := range counts {
			cdf.Add(float64(c.Count))
			if c.Count == 1 {
				once++
			}
		}
		res.Counts[name] = cdf
		if len(counts) > 0 {
			res.ExactlyOnce[name] = float64(once) / float64(len(counts))
		}
		top := counts
		if len(top) > 4 {
			top = top[:4]
		}
		res.TopVideos[name] = top
	}
	return res, nil
}

// Render formats Fig 13.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 13: REQUESTS PER VIDEO TO NON-PREFERRED DCs (CDF)\n")
	for _, name := range topology.DatasetNames() {
		cdf, ok := r.Counts[name]
		if !ok || cdf.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s videos=%6d exactly-once=%5.1f%% max=%5.0f\n",
			name, cdf.Len(), r.ExactlyOnce[name]*100, cdf.Max())
	}
	return b.String()
}

// Fig14Result is the hourly load of the top-4 hot videos at EU1-ADSL.
type Fig14Result struct {
	Videos []Fig14Video
}

// Fig14Video is one panel.
type Fig14Video struct {
	VideoID string
	All     []float64
	NonPref []float64
}

// Fig14HotVideos computes Fig 14.
func (h *Harness) Fig14HotVideos() (*Fig14Result, error) {
	ds, err := h.Dataset(topology.DatasetEU1ADSL)
	if err != nil {
		return nil, err
	}
	counts := ds.nonPrefVideos
	res := &Fig14Result{}
	for i := 0; i < 4 && i < len(counts); i++ {
		all, nonPref, err := analysis.VideoHourlySeriesIter(h.videoIter(topology.DatasetEU1ADSL),
			ds.dcmap, ds.pref.Preferred, counts[i].VideoID, h.in.Span)
		if err != nil {
			return nil, fmt.Errorf("experiments: scanning %s: %w", topology.DatasetEU1ADSL, err)
		}
		res.Videos = append(res.Videos, Fig14Video{
			VideoID: counts[i].VideoID,
			All:     all.Values(),
			NonPref: nonPref.Values(),
		})
	}
	return res, nil
}

// Render formats Fig 14.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 14: TOP-4 HOT VIDEOS AT EU1-ADSL (hourly)\n")
	for i, v := range r.Videos {
		peakAll, peakNon, peakHour := 0.0, 0.0, 0
		var tot, totNon float64
		for h := range v.All {
			tot += v.All[h]
			totNon += v.NonPref[h]
			if v.All[h] > peakAll {
				peakAll, peakHour = v.All[h], h
			}
			if v.NonPref[h] > peakNon {
				peakNon = v.NonPref[h]
			}
		}
		fmt.Fprintf(&b, "video%d %s total=%5.0f non-pref=%5.0f peak=%4.0f/h at hour %3d\n",
			i+1, v.VideoID, tot, totNon, peakAll, peakHour)
	}
	return b.String()
}

// Fig15Result is the average/maximum per-server hourly request count
// in the EU1-ADSL preferred data center.
type Fig15Result struct {
	Avg, Max []float64
}

// Fig15ServerLoad computes Fig 15. Requests include control flows: a
// server that answers with a redirect still handled the request.
func (h *Harness) Fig15ServerLoad() (*Fig15Result, error) {
	ds, err := h.Dataset(topology.DatasetEU1ADSL)
	if err != nil {
		return nil, err
	}
	avg, max, err := analysis.ServerLoadStatsIter(h.googleIter(topology.DatasetEU1ADSL), ds.dcmap, ds.pref.Preferred, h.in.Span)
	if err != nil {
		return nil, fmt.Errorf("experiments: scanning %s: %w", topology.DatasetEU1ADSL, err)
	}
	return &Fig15Result{Avg: avg, Max: max}, nil
}

// PeakRatio returns the largest max/avg ratio over hours with traffic.
func (r *Fig15Result) PeakRatio() float64 {
	best := 0.0
	for i := range r.Avg {
		if r.Avg[i] > 0 {
			if ratio := r.Max[i] / r.Avg[i]; ratio > best {
				best = ratio
			}
		}
	}
	return best
}

// Render formats Fig 15.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	peakAvg, peakMax := 0.0, 0.0
	for i := range r.Avg {
		if r.Avg[i] > peakAvg {
			peakAvg = r.Avg[i]
		}
		if r.Max[i] > peakMax {
			peakMax = r.Max[i]
		}
	}
	fmt.Fprintf(&b, "FIG 15: PER-SERVER LOAD IN EU1-ADSL PREFERRED DC\n")
	fmt.Fprintf(&b, "peak avg=%.1f req/h  peak max=%.0f req/h  max/avg ratio up to %.1f\n",
		peakAvg, peakMax, r.PeakRatio())
	return b.String()
}

// Fig16Result is the hourly session-pattern breakdown at the server
// handling the hottest video.
type Fig16Result struct {
	Pattern analysis.ServerSessionPattern
	Server  string
}

// Fig16Video1Server computes Fig 16, streaming both passes: the
// video1-server election over the video subset, then the session
// patterns at that server over the start-ordered Google stream.
func (h *Harness) Fig16Video1Server() (*Fig16Result, error) {
	name := topology.DatasetEU1ADSL
	ds, err := h.Dataset(name)
	if err != nil {
		return nil, err
	}
	counts := ds.nonPrefVideos
	if len(counts) == 0 {
		return nil, fmt.Errorf("experiments: no non-preferred videos at EU1-ADSL")
	}
	video1 := counts[0].VideoID
	// The server "handling video1" in the preferred DC: the preferred
	// DC server carrying most of video1's flows.
	perServer := make(map[uint32]int)
	it := h.videoIter(name)
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if r.VideoID != video1 {
			continue
		}
		if dc, ok := ds.dcmap.DCOf(r.Server); ok && dc == ds.pref.Preferred {
			perServer[uint32(r.Server)]++
		}
	}
	if err := it.Err(); err != nil {
		return nil, fmt.Errorf("experiments: scanning %s: %w", name, err)
	}
	var best uint32
	bestN := -1
	for srv, n := range perServer {
		if n > bestN || (n == bestN && srv < best) {
			best, bestN = srv, n
		}
	}
	if bestN < 0 {
		// Possible under non-paper selection policies (e.g. pure
		// proximity): the hottest non-preferred video may never touch
		// the preferred DC at all. Render an explicit empty pattern
		// instead of failing the suite.
		return &Fig16Result{
			Pattern: analysis.NewServerSessionPattern(h.in.Span),
			Server:  "none (video1 never served by preferred DC)",
		}, nil
	}
	srvAddr := ipAddrFromU32(best)
	googleStart, err := h.googleStartSource(name)
	if err != nil {
		return nil, err
	}
	pattern := analysis.NewServerSessionPattern(h.in.Span)
	err = analysis.StreamSessions(googleStart(), time.Second, func(s analysis.Session) {
		pattern.Add(s, ds.dcmap, ds.pref.Preferred, srvAddr)
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: sessionizing %s: %w", name, err)
	}
	return &Fig16Result{Pattern: pattern, Server: srvAddr.String()}, nil
}

// Render formats Fig 16.
func (r *Fig16Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 16: SESSIONS/HOUR AT VIDEO1'S SERVER (%s)\n", r.Server)
	fmt.Fprintf(&b, "all-preferred total=%.0f  first-pref-then-redirect total=%.0f  others total=%.0f\n",
		r.Pattern.AllPreferred.Total(), r.Pattern.FirstPrefOnly.Total(), r.Pattern.Others.Total())
	return b.String()
}

// Fig17Result is one PlanetLab node's RTT samples over rounds.
type Fig17Result struct {
	Node    probe.PLNode
	Samples []probe.PLSample
}

// Fig18Result is the CDF of RTT1/RTT2 ratios across PlanetLab nodes.
type Fig18Result struct {
	Ratios *stats.CDF
	Result *probe.PLResult
}

// PlanetLab runs the §VII-C active experiment and derives Figs 17/18.
// Every invocation uploads a distinct fresh video (pull-through makes
// a re-used video warm everywhere, which would erase the first-access
// penalty the experiment measures). Invocations serialize on a
// dedicated mutex: the experiment deliberately mutates the shared
// placement (upload + pull-through), so runs claim videos and mutate
// state in arrival order.
func (h *Harness) PlanetLab() (*Fig17Result, *Fig18Result, error) {
	h.plMu.Lock()
	defer h.plMu.Unlock()
	run := h.plRuns
	h.plRuns++
	cfg := probe.DefaultPlanetLabConfig()
	cfg.Video = content.VideoID(h.in.Catalog.N() - 1 - run)
	if !h.in.Catalog.IsTail(cfg.Video) {
		cfg.Video = content.VideoID(h.in.Catalog.N() - 1) // wrapped: reuse the last
	}
	res, err := probe.RunPlanetLab(h.in.World, h.in.Catalog, h.in.Placement,
		cfg, stats.NewRNG(h.in.Seed).Fork("planetlab"))
	if err != nil {
		return nil, nil, err
	}
	// Fig 17 displays the node with the most dramatic first-access
	// penalty (the paper shows a California node served first from the
	// Netherlands).
	bestNode, bestRatio := 0, 0.0
	for n := range res.Nodes {
		series := res.NodeSeries(n)
		if len(series) >= 2 && series[1].RTTMs > 0 {
			if ratio := series[0].RTTMs / series[1].RTTMs; ratio > bestRatio {
				bestRatio, bestNode = ratio, n
			}
		}
	}
	fig17 := &Fig17Result{Node: res.Nodes[bestNode], Samples: res.NodeSeries(bestNode)}
	fig18 := &Fig18Result{Ratios: stats.NewCDF(res.RTTRatios()), Result: res}
	return fig17, fig18, nil
}

// Render formats Fig 17.
func (r *Fig17Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 17: RTT PER 30-MIN SAMPLE, NODE %s\n", r.Node.Name)
	for i, s := range r.Samples {
		if i < 4 || i == len(r.Samples)-1 {
			fmt.Fprintf(&b, "sample %2d: %.0fms (DC %d)\n", s.Round, s.RTTMs, s.FromDC)
		}
	}
	return b.String()
}

// Render formats Fig 18.
func (r *Fig18Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG 18: RTT1/RTT2 ACROSS %d NODES (CDF)\n", r.Ratios.Len())
	fmt.Fprintf(&b, "frac ratio>1: %.2f  frac ratio>10: %.2f  median=%.2f\n",
		1-r.Ratios.At(1.0000001), 1-r.Ratios.At(10), r.Ratios.Median())
	return b.String()
}

// ipAddrFromU32 rebuilds an address from its stored key.
func ipAddrFromU32(v uint32) ipnet.Addr { return ipnet.Addr(v) }
