// Package experiments regenerates every table and figure of the paper
// from simulated traces and active measurements. Each experiment is a
// method on Harness returning a result struct with the numbers the
// paper plots; render.go turns them into paper-style text output.
//
// The harness caches the expensive shared artifacts — ping campaigns,
// CBG calibration and per-server geolocation, per-dataset
// sessionization — so the full suite runs each step once.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/ytcdn-sim/ytcdn/internal/analysis"
	"github.com/ytcdn-sim/ytcdn/internal/capture"
	"github.com/ytcdn-sim/ytcdn/internal/content"
	"github.com/ytcdn-sim/ytcdn/internal/core"
	"github.com/ytcdn-sim/ytcdn/internal/geo"
	"github.com/ytcdn-sim/ytcdn/internal/geoloc"
	"github.com/ytcdn-sim/ytcdn/internal/ipnet"
	"github.com/ytcdn-sim/ytcdn/internal/probe"
	"github.com/ytcdn-sim/ytcdn/internal/stats"
	"github.com/ytcdn-sim/ytcdn/internal/topology"
)

// Input bundles what a study run produced.
type Input struct {
	World     *topology.World
	Catalog   *content.Catalog
	Placement *core.Placement
	Traces    map[string][]capture.FlowRecord
	Span      time.Duration
	Seed      int64
}

// Harness runs experiments over one study. Not safe for concurrent
// use.
type Harness struct {
	in     Input
	prober *probe.Prober

	// Lazily computed shared state.
	allServers []ipnet.Addr
	cbg        *geoloc.CBG
	regions    map[ipnet.Addr]geoloc.Region
	locations  map[ipnet.Addr]geo.Point
	campaigns  map[string]map[ipnet.Addr]float64 // per-VP ping results (ms)
	perDS      map[string]*dataset
	plRuns     int // PlanetLab invocations (each uploads a fresh video)
}

// dataset caches per-trace analysis artifacts.
type dataset struct {
	vp       *topology.VantagePoint
	raw      []capture.FlowRecord
	google   []capture.FlowRecord // §IV filter applied
	video    []capture.FlowRecord
	control  []capture.FlowRecord
	dcmap    *analysis.DCMap
	pref     analysis.PreferredResult
	sessions []analysis.Session // T = 1s over google flows
}

// New builds a harness.
func New(in Input) *Harness {
	return &Harness{
		in:        in,
		prober:    probe.New(in.World, stats.NewRNG(in.Seed).Fork("probe")),
		campaigns: make(map[string]map[ipnet.Addr]float64),
		perDS:     make(map[string]*dataset),
	}
}

// Input returns the harness input.
func (h *Harness) Input() Input { return h.in }

// servers returns the sorted union of distinct server addresses across
// all traces.
func (h *Harness) servers() []ipnet.Addr {
	if h.allServers != nil {
		return h.allServers
	}
	seen := make(map[ipnet.Addr]struct{})
	for _, recs := range h.in.Traces {
		for _, r := range recs {
			seen[r.Server] = struct{}{}
		}
	}
	out := make([]ipnet.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	h.allServers = out
	return out
}

// campaign returns (caching) the per-server min-RTT ping results from
// one vantage point, in milliseconds.
func (h *Harness) campaign(vpName string) (map[ipnet.Addr]float64, error) {
	if c, ok := h.campaigns[vpName]; ok {
		return c, nil
	}
	targets := h.datasetServers(vpName)
	c, err := h.prober.CampaignFromVP(vpName, targets, 10)
	if err != nil {
		return nil, err
	}
	h.campaigns[vpName] = c
	return c, nil
}

// datasetServers returns the sorted distinct servers of one trace.
func (h *Harness) datasetServers(vpName string) []ipnet.Addr {
	seen := make(map[ipnet.Addr]struct{})
	for _, r := range h.in.Traces[vpName] {
		seen[r.Server] = struct{}{}
	}
	out := make([]ipnet.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Geolocate runs the full CBG pipeline once: calibrate bestlines on
// the landmark cross-RTT matrix, then localize every distinct server
// seen in any trace.
func (h *Harness) Geolocate() (map[ipnet.Addr]geoloc.Region, error) {
	if h.regions != nil {
		return h.regions, nil
	}
	lms := h.prober.LandmarkInfos()
	cross := h.prober.CrossRTTMatrix(5)
	cbg, err := geoloc.Calibrate(lms, func(i, j int) time.Duration { return cross[i][j] })
	if err != nil {
		return nil, fmt.Errorf("experiments: CBG calibration: %w", err)
	}
	h.cbg = cbg
	regions := make(map[ipnet.Addr]geoloc.Region, len(h.servers()))
	locs := make(map[ipnet.Addr]geo.Point, len(h.servers()))
	for _, addr := range h.servers() {
		rtts, err := h.prober.LandmarkRTTs(addr, 3)
		if err != nil {
			continue
		}
		region := cbg.Locate(rtts)
		regions[addr] = region
		locs[addr] = region.Centroid
	}
	h.regions = regions
	h.locations = locs
	return regions, nil
}

// Locations returns the CBG position estimates per server.
func (h *Harness) Locations() (map[ipnet.Addr]geo.Point, error) {
	if _, err := h.Geolocate(); err != nil {
		return nil, err
	}
	return h.locations, nil
}

// Dataset returns (computing on first use) the cached per-trace
// analysis artifacts: the §IV Google filter, flow classification,
// data-center clustering from CBG locations, the preferred DC, and
// T=1s sessions.
func (h *Harness) Dataset(name string) (*dataset, error) {
	if ds, ok := h.perDS[name]; ok {
		return ds, nil
	}
	idx := h.in.World.VPIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	vp := h.in.World.VantagePoints[idx]
	raw, ok := h.in.Traces[name]
	if !ok {
		return nil, fmt.Errorf("experiments: no trace for %q", name)
	}
	locs, err := h.Locations()
	if err != nil {
		return nil, err
	}
	google := analysis.GoogleFilter(raw, h.in.World.Registry, vp.AS.Number)
	video, control := analysis.SplitFlows(google)

	// Cluster only this dataset's Google servers (the paper clusters
	// what each trace saw; /24 aggregation is implicit).
	dsLocs := make(map[ipnet.Addr]geo.Point)
	for _, r := range google {
		if loc, ok := locs[r.Server]; ok {
			dsLocs[r.Server] = loc
		}
	}
	dcmap := analysis.BuildDCMap(dsLocs, 100)

	rtts, err := h.campaign(name)
	if err != nil {
		return nil, err
	}
	pref := analysis.FindPreferred(video, dcmap, rtts, vp.City.Point)
	sessions := analysis.Sessionize(google, time.Second)

	ds := &dataset{
		vp:       vp,
		raw:      raw,
		google:   google,
		video:    video,
		control:  control,
		dcmap:    dcmap,
		pref:     pref,
		sessions: sessions,
	}
	h.perDS[name] = ds
	return ds, nil
}

// DatasetNames returns the dataset names present in the input, in the
// paper's order.
func (h *Harness) DatasetNames() []string {
	var out []string
	for _, name := range topology.DatasetNames() {
		if _, ok := h.in.Traces[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
